#!/usr/bin/env python3
"""Link-lint for the repo's markdown: README.md and docs/*.md.

Checks every relative markdown link — `[text](path)` and `[text](path#anchor)`
— against the working tree, and every intra-document `#anchor` against the
target file's headings (GitHub anchor rules: lowercase, spaces to dashes,
punctuation stripped). External http(s) links are not fetched. Exits
non-zero listing every broken link; CI runs this on every push.

Usage: python3 tools/check_markdown_links.py [file.md ...]
       (no arguments: README.md + docs/**/*.md)
"""
import pathlib
import re
import sys

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)


def github_anchor(heading: str) -> str:
    heading = re.sub(r"`([^`]*)`", r"\1", heading.strip())
    heading = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", heading)  # linked text
    heading = heading.lower().replace(" ", "-")
    return re.sub(r"[^\w\-]", "", heading)


def anchors_of(path: pathlib.Path) -> set:
    return {github_anchor(h) for h in HEADING_RE.findall(path.read_text())}


def check(md: pathlib.Path) -> list:
    errors = []
    for target in LINK_RE.findall(md.read_text()):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        path_part, _, anchor = target.partition("#")
        dest = (md.parent / path_part).resolve() if path_part else md
        if not dest.exists():
            errors.append(f"{md}: broken link -> {target}")
            continue
        if anchor and dest.suffix == ".md":
            if github_anchor(anchor) not in anchors_of(dest):
                errors.append(f"{md}: missing anchor -> {target}")
    return errors


def main() -> int:
    root = pathlib.Path(__file__).resolve().parent.parent
    files = [pathlib.Path(a) for a in sys.argv[1:]] or [
        root / "README.md",
        *sorted((root / "docs").glob("**/*.md")),
    ]
    errors = []
    for md in files:
        errors.extend(check(md))
    for e in errors:
        print(e, file=sys.stderr)
    print(f"checked {len(files)} markdown files: "
          f"{'FAIL' if errors else 'ok'}")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
