#!/usr/bin/env python3
"""CI perf-regression gate for the serving benches.

Compares freshly produced BENCH_serving.json / BENCH_sharded.json /
BENCH_rebuild.json / BENCH_scaling.json / BENCH_obs.json / BENCH_soak.json /
BENCH_persistence.json against the committed baselines in bench/baselines/
and fails when any gated metric regresses by more than the allowed
fraction (default 15%). The soak's SLO fields additionally gate against
absolute ceilings (p999 latency, staleness p95, handover error), and the
persistence bench gates its two acceptance bars (restart speedup,
view-vs-heap serving ratio) as absolute floors — acceptance bars, not
baseline-relative ratios.

Only higher-is-better metrics gate (qps, publish throughput, and the
rebuild bench's speedup ratios); latency percentiles and accuracy numbers
are printed as non-gating context — they are far noisier on shared CI
runners, and a real latency cliff always shows up as a qps/speedup drop on
these closed-loop benches.

Caveat for heterogeneous CI fleets: the baselines are absolute qps from
the machine that recorded them. Runners of a different hardware class
(slower cores, AVX2-only vs AVX-512) shift every metric together and can
trip the gate without a real regression — either refresh the baselines
from the CI runner class, or loosen the floor via --max-regression /
the BENCH_GATE_MAX_REGRESSION env knob in ci.yml.

Usage:
    python3 tools/check_bench_regression.py \
        [--fresh-dir build] [--baseline-dir bench/baselines] \
        [--max-regression 0.15]

Refreshing baselines after an intentional perf change:
    ./build/bench_serving_throughput --smoke &&
    ./build/bench_sharded_serving --smoke &&
    ./build/bench_rebuild_latency --smoke &&
    ./build/bench_obs_overhead --smoke &&
    ./build/bench_soak --smoke &&
    ./build/bench_persistence --smoke &&
    cp build/BENCH_serving.json bench/baselines/serving.json &&
    cp build/BENCH_sharded.json bench/baselines/sharded.json &&
    cp build/BENCH_rebuild.json bench/baselines/rebuild.json &&
    cp build/BENCH_obs.json bench/baselines/obs.json &&
    cp build/BENCH_soak.json bench/baselines/soak.json &&
    cp build/BENCH_persistence.json bench/baselines/persistence.json
(For the rebuild and persistence baselines, prefer the most conservative
of a few runs — gated speedup ratios and fsync-adjacent qps wobble more
than closed-loop qps numbers.)
"""
import argparse
import json
import pathlib
import sys

# (fresh file, baseline file, gated qps keys, context-only keys — dotted
# paths into the JSON, plus optional 5th element: multicore-only gated
# keys, optional 6th element: a dict of absolute floors, metrics that
# must be >= the given value regardless of the baseline, and optional 7th
# element: a dict of absolute ceilings — lower-is-better SLO metrics that
# must stay <= the given value; used for the soak's latency/staleness/
# handover bars, which are acceptance criteria rather than
# baseline-relative throughputs). Context keys are printed for the CI log
# but never gate.
BENCHES = [
    (
        "BENCH_serving.json",
        "serving.json",
        [
            "scalar_qps",
            "batch_qps",
            "partial_batch_qps",
            "index_pruned_qps",
            "server.qps",
            "kernels.gemm",
            "kernels.fastnn",
            "kernels.quant",
        ],
        ["server.p50_us", "server.p95_us", "server.p99_us"],
    ),
    (
        "BENCH_sharded.json",
        "sharded.json",
        [
            "routed_qps",
            "baseline_qps",
        ],
        ["update_scenario.stale_ape_m", "update_scenario.updated_ape_m"],
    ),
    # Rebuild-path latencies are lower-is-better, so the gate watches the
    # higher-is-better derived metrics: the p95/staleness speedups of the
    # parallel-incremental path over the serialized-cold reference, and its
    # publish throughput. The acceptance bar of PR 5 is speedup_p95 >= 3;
    # the committed baseline ratios are deliberately *below* typical
    # measurements (~5.5-7x here) so the 15% floor lands just above the
    # acceptance bar instead of chasing a best run — these ratios wobble
    # more than closed-loop qps.
    (
        "BENCH_rebuild.json",
        "rebuild.json",
        [
            "speedup_p95",
            "speedup_staleness",
            "eight_shard.parallel_incremental.publishes_per_sec",
        ],
        [
            "eight_shard.serialized_cold.p95_ms",
            "eight_shard.parallel_incremental.p95_ms",
            "eight_shard.parallel_incremental.mean_staleness_ms",
            "one_shard.incremental.p95_ms",
        ],
    ),
    # Multicore scaling. The single-thread qps gate everywhere; the
    # 4-thread-vs-1-thread speedup ratios (5th tuple element) only measure
    # real parallelism on a runner with >= 4 cores, so they gate only when
    # the fresh JSON's hardware block reports that — on smaller runners
    # they are demoted to context. The committed speedup baselines are
    # floors chosen so the 15% tolerance lands at the 1.5x acceptance bar,
    # not measurements to chase.
    (
        "BENCH_scaling.json",
        "scaling.json",
        [
            "serving.t1.qps",
            "sharded.t1.qps",
            "rebuild.t1.qps",
        ],
        [
            "serving.t1.p95_us",
            "rebuild_speedup_4t",
            "hardware.hardware_concurrency",
        ],
        [
            "serving_speedup_4t",
            "sharded_speedup_4t",
        ],
    ),
    # Observability overhead A/B. The headline enabled/disabled qps ratio
    # is self-normalizing (both arms run on the same machine in the same
    # process), so it gates against an *absolute* floor — the <= 2%
    # overhead acceptance bar — rather than against the baseline's
    # measured ratio. The raw per-arm qps numbers are machine-dependent
    # and stay context-only.
    (
        "BENCH_obs.json",
        "obs.json",
        [],
        [
            "batch.disabled_qps",
            "batch.enabled_qps",
            "server.disabled_qps",
            "server.enabled_qps",
        ],
        [],
        {"enabled_over_disabled": 0.98},
    ),
    # Persistence. The two acceptance bars gate as absolute floors — the
    # zero-copy view must serve within 5% of the heap estimator
    # (view_over_heap >= 0.95; the bench interleaves the two sides
    # batch-by-batch so the ratio is drift-immune) and a persisted restart
    # must beat a cold re-impute by >= 10x (median-of-3 timings). The raw
    # qps numbers gate baseline-relative like the serving benches, from
    # deliberately conservative committed values. Publish overhead and
    # restart timings are context: absolute milliseconds on shared runners
    # say little, and the fsync-heavy persisted publish cost is expected.
    (
        "BENCH_persistence.json",
        "persistence.json",
        [
            "serving.heap_qps",
            "serving.view_qps",
        ],
        [
            "restart.cold_seconds",
            "restart.restore_seconds",
            "restart.wal_records_replayed",
            "publish.memory_only_ms",
            "publish.persisted_ms",
            "publish.overhead_ratio",
        ],
        [],
        {
            "serving.view_over_heap": 0.95,
            "restart.speedup": 10.0,
        },
    ),
    # Trace-driven soak. achieved_qps is the open-loop pacing outcome and
    # gates against the baseline ratio like the other benches (a stall in
    # serving or a wedged updater collapses it). The SLO fields are
    # lower-is-better acceptance bars, so they gate against absolute
    # ceilings, deliberately far above a healthy run (smoke measures p999
    # ~30 ms, staleness p95 ~10 ms, handover error ~0.02 on one core) —
    # they catch a cliff, not runner-to-runner noise.
    (
        "BENCH_soak.json",
        "soak.json",
        ["load.achieved_qps"],
        [
            "slo.p50_ms",
            "slo.p99_ms",
            "slo.ape_p50_m",
            "slo.ape_p95_m",
            "slo.staleness_p50_ms",
            "churn.rebuilds_completed",
            "churn.rebuild_failures",
        ],
        [],
        {},
        {
            "slo.p999_ms": 500.0,
            "slo.staleness_p95_ms": 1000.0,
            "slo.handover_error_rate": 0.05,
        },
    ),
]


def lookup(doc, dotted):
    node = doc
    for part in dotted.split("."):
        if not isinstance(node, dict) or part not in node:
            return None
        node = node[part]
    return node


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fresh-dir", default="build")
    parser.add_argument("--baseline-dir", default="bench/baselines")
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.15,
        help="largest tolerated fractional qps drop vs baseline",
    )
    args = parser.parse_args()

    fresh_dir = pathlib.Path(args.fresh_dir)
    baseline_dir = pathlib.Path(args.baseline_dir)
    floor = 1.0 - args.max_regression

    failures = []
    for entry in BENCHES:
        fresh_name, baseline_name, keys, context_keys = entry[:4]
        multicore_keys = entry[4] if len(entry) > 4 else []
        absolute_floors = entry[5] if len(entry) > 5 else {}
        absolute_ceilings = entry[6] if len(entry) > 6 else {}
        fresh_path = fresh_dir / fresh_name
        baseline_path = baseline_dir / baseline_name
        if not baseline_path.exists():
            print(f"[gate] no baseline {baseline_path} — skipping {fresh_name}")
            continue
        if not fresh_path.exists():
            failures.append(f"{fresh_path} missing (bench did not run?)")
            continue
        fresh = json.loads(fresh_path.read_text())
        baseline = json.loads(baseline_path.read_text())
        print(f"[gate] {fresh_name} vs {baseline_path}")
        if multicore_keys:
            hw = lookup(fresh, "hardware.hardware_concurrency") or 0
            if hw >= 4:
                keys = list(keys) + list(multicore_keys)
            else:
                print(
                    f"  (runner has {hw} hardware threads < 4 — scaling "
                    "ratios demoted to context)"
                )
                context_keys = list(context_keys) + list(multicore_keys)
        for key in keys:
            base_value = lookup(baseline, key)
            if base_value is None:
                # Baselines predating a metric don't gate it; the next
                # baseline refresh picks it up.
                print(f"  {key:24s} (no baseline value — skipped)")
                continue
            fresh_value = lookup(fresh, key)
            if fresh_value is None:
                failures.append(f"{fresh_name}: metric {key} disappeared")
                continue
            ratio = fresh_value / base_value if base_value > 0 else float("inf")
            verdict = "ok" if ratio >= floor else "REGRESSION"
            print(
                f"  {key:24s} {fresh_value:12.1f} / {base_value:12.1f}"
                f"  ({ratio:6.2f}x)  {verdict}"
            )
            if ratio < floor:
                failures.append(
                    f"{fresh_name}: {key} fell to {ratio:.2f}x of baseline "
                    f"({fresh_value:.1f} vs {base_value:.1f}, floor {floor:.2f}x)"
                )
        for key, floor_value in absolute_floors.items():
            fresh_value = lookup(fresh, key)
            if fresh_value is None:
                failures.append(f"{fresh_name}: metric {key} disappeared")
                continue
            verdict = "ok" if fresh_value >= floor_value else "REGRESSION"
            print(
                f"  {key:24s} {fresh_value:12.4f} >= floor "
                f"{floor_value:.4f}  {verdict}"
            )
            if fresh_value < floor_value:
                failures.append(
                    f"{fresh_name}: {key} = {fresh_value:.4f} below the "
                    f"absolute floor {floor_value:.4f}"
                )
        for key, ceiling_value in absolute_ceilings.items():
            fresh_value = lookup(fresh, key)
            if fresh_value is None:
                failures.append(f"{fresh_name}: metric {key} disappeared")
                continue
            verdict = "ok" if fresh_value <= ceiling_value else "SLO BREACH"
            print(
                f"  {key:24s} {fresh_value:12.4f} <= ceiling "
                f"{ceiling_value:.4f}  {verdict}"
            )
            if fresh_value > ceiling_value:
                failures.append(
                    f"{fresh_name}: {key} = {fresh_value:.4f} above the "
                    f"absolute ceiling {ceiling_value:.4f}"
                )
        for key in context_keys:
            fresh_value = lookup(fresh, key)
            base_value = lookup(baseline, key)
            if fresh_value is None:
                continue
            base_text = f"{base_value:12.1f}" if base_value is not None else "           -"
            print(f"  {key:24s} {fresh_value:12.1f} / {base_text}  (context only)")

    if failures:
        print("\n[gate] FAILED:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("\n[gate] all gated metrics within "
          f"{args.max_regression:.0%} of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
