// Online location estimation (module C, paper Section II-A):
//  * KNN  [57] — mean of the K nearest fingerprints' RPs;
//  * WKNN [19] — inverse-distance-weighted mean;
//  * RF   [28] — random-forest regression from fingerprint to (x, y).
//
// Estimators consume a *complete* radio map (the imputers' output contract).
// Online fingerprints may carry kNull entries (a device rarely hears every
// AP): KNN/WKNN measure distance over the observed dimensions only, and are
// bit-identical to the historical all-dimensions path when the fingerprint
// is complete.
#ifndef RMI_POSITIONING_ESTIMATORS_H_
#define RMI_POSITIONING_ESTIMATORS_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "geometry/geometry.h"
#include "la/matrix.h"
#include "la/quant.h"
#include "radiomap/radio_map.h"

namespace rmi::positioning {

/// Which kernel ranks candidates inside KnnEstimator::EstimateBatch. All
/// three return bit-identical estimates (every path ends in the same exact
/// rescore over a candidate superset); they trade ranking throughput:
///  * kGemm   — the reproducible blocked double kernel (reference path);
///  * kFastNN — relaxed-rounding double kernel, AVX2/AVX-512 dispatch;
///  * kQuant  — int8 fingerprints, int32 accumulation, analytic
///              quantization bound widening the rescore band (default:
///              the fastest — the reference matrix shrinks 8x and ranking
///              arithmetic is exact integer).
enum class RankingKernel { kGemm, kFastNN, kQuant };

/// Extracts the labeled (has_rp) rows of an imputed map, in map order:
/// fingerprints as an R x D matrix plus index-aligned RP labels. Every row
/// must be complete (asserted). The single extraction rule shared by
/// estimator fitting and the serving layer's snapshots — their row indices
/// must agree.
void ExtractLabeledRows(const rmap::RadioMap& map, la::Matrix* fingerprints,
                        std::vector<geom::Point>* labels);

/// Combines exact KNN candidates — (squared distance to reference row,
/// row index) pairs — into a location: the mean of the k nearest labels,
/// inverse-distance weighted when `weighted`. Candidates beyond the true
/// top-k are ignored (partial sort by pair order), so any superset of the
/// top-k yields the same answer. The one combine rule shared by
/// KnnEstimator and the zero-copy snapshot view (store::MapSnapshotView).
geom::Point CombineKnnCandidates(
    std::vector<std::pair<double, size_t>> candidates,
    const geom::Point* labels, size_t k, bool weighted);

/// The int8 ranking + exact-rescore batch KNN core over raw storage:
/// integer cross Gemm (+ masked-norm Gemm for partial rows), integer keys,
/// branchless top-c, then a candidate band widened by the analytic
/// quantization bound and re-scored exactly against the float master
/// `refs` (num_refs x num_aps row-major, row r labeled by labels[r]).
/// `out` receives queries.rows() estimates. Both the fitted KnnEstimator
/// and the mmap-ed snapshot view call this with their own storage, so
/// heap-served and file-served answers are bit-identical by construction.
void KnnQuantEstimateBatch(const la::QuantizedRefsSpan& quant,
                           const double* refs, const geom::Point* labels,
                           size_t num_refs, size_t num_aps, size_t k,
                           bool weighted, const la::Matrix& queries,
                           geom::Point* out);

/// Common interface of the location estimators (module C).
///
/// Lifecycle and thread-safety: Fit() mutates and must complete before any
/// query; estimators never retain references to the map they were fitted
/// on (fitted state is copied out). After Fit, Estimate/EstimateBatch/
/// EstimateFromCandidates are const and safe to call concurrently from
/// multiple threads — no shared mutable scratch. Use Clone() to give
/// parallel evaluation runs private instances.
///
/// Null-fingerprint semantics: online fingerprints may carry kNull entries
/// only when SupportsPartialFingerprints() is true; an all-null fingerprint
/// is always invalid (asserted — it has no distance signal). Reference maps
/// handed to Fit must be complete (the imputers' output contract).
class LocationEstimator {
 public:
  virtual ~LocationEstimator() = default;

  /// Builds the estimator from an imputed radio map.
  virtual void Fit(const rmap::RadioMap& map, Rng& rng) = 0;

  /// Warm re-fit for the live-update loop: fit from `map`, reusing as much
  /// of `previous`'s fitted state as the estimator can justify.
  /// `changed_rows` lists the map rows whose values differ from the map
  /// `previous` was fitted on (appended deltas included). `previous` may
  /// be any estimator (or null) — implementations type-check and fall back
  /// to a cold Fit, which is also the base behavior (cheap fits — KNN's
  /// copy+quantize — gain nothing from reuse). RandomForestEstimator
  /// overrides this with a rotating-tree refresh.
  virtual void FitWarm(const rmap::RadioMap& map, Rng& rng,
                       const LocationEstimator* previous,
                       const std::vector<size_t>& changed_rows);

  /// Estimates the location of one online fingerprint (length D; kNull
  /// entries allowed where the estimator supports partial fingerprints).
  virtual geom::Point Estimate(const std::vector<double>& fingerprint) const = 0;

  /// Estimates every row of `fingerprints` (B x D) in one call — the
  /// serving hot path. The base implementation is the scalar loop over
  /// Estimate; KnnEstimator overrides it with a single-Gemm distance pass.
  /// Must be thread-safe on a fitted estimator (const, no shared scratch).
  virtual std::vector<geom::Point> EstimateBatch(
      const la::Matrix& fingerprints) const;

  /// Whether Estimate/EstimateBatch accept fingerprints with kNull entries.
  /// False by default: a NaN silently mis-compares in tree/threshold logic,
  /// so callers (e.g. the serving layer) must reject partial scans for
  /// estimators that don't opt in.
  virtual bool SupportsPartialFingerprints() const { return false; }

  virtual std::string name() const = 0;

  /// Deep copy (including any fitted state) — lets independent evaluation
  /// runs fan out over threads with private estimator instances.
  virtual std::unique_ptr<LocationEstimator> Clone() const = 0;
};

/// KNN / WKNN (weighted = inverse distance).
class KnnEstimator : public LocationEstimator {
 public:
  explicit KnnEstimator(size_t k = 3, bool weighted = false)
      : k_(k), weighted_(weighted) {}

  void Fit(const rmap::RadioMap& map, Rng& rng) override;
  /// Fingerprints must observe at least one AP (asserted): an all-null
  /// scan has no distance signal and would silently decay to the first k
  /// reference rows.
  geom::Point Estimate(const std::vector<double>& fingerprint) const override;
  /// Batched KNN: all query-to-reference distances in one Gemm via
  /// ||q - f||^2 = ||q||^2 + ||f||^2 - 2 q.f (a masked variant covers
  /// partial fingerprints: the cross term zeroes nulls, the reference-norm
  /// term becomes mask x (F o F)^T — a second Gemm). The Gemm pass only
  /// *ranks*; the top candidates — plus every reference within an error
  /// margin above the selection boundary, so Gemm rounding (or, on the
  /// kQuant kernel, the analytic quantization bound) can never evict a
  /// true neighbor — are re-scored with the exact scalar distance, and
  /// results match per-record Estimate bit-for-bit on every
  /// RankingKernel.
  std::vector<geom::Point> EstimateBatch(
      const la::Matrix& fingerprints) const override;
  /// Distances over observed dimensions only — partial scans are native.
  bool SupportsPartialFingerprints() const override { return true; }
  std::string name() const override { return weighted_ ? "WKNN" : "KNN"; }
  std::unique_ptr<LocationEstimator> Clone() const override {
    return std::make_unique<KnnEstimator>(*this);
  }

  size_t k() const { return k_; }
  bool weighted() const { return weighted_; }
  /// Ranking-kernel selection for EstimateBatch (answers are bit-identical
  /// across kernels; see RankingKernel). May be changed between batches on
  /// a fitted estimator, but not concurrently with queries.
  void set_ranking_kernel(RankingKernel kernel) { kernel_ = kernel; }
  RankingKernel ranking_kernel() const { return kernel_; }
  /// The int8 ranking copy built by Fit — the serving snapshot exposes it
  /// as the quantized fingerprint view.
  const la::QuantizedRefs& quantized() const { return quant_; }
  /// Fitted reference fingerprints as an R x D matrix (row r aligned with
  /// labels()[r]) — the serving layer builds its snapshot views from these.
  const la::Matrix& features() const { return features_mat_; }
  const std::vector<geom::Point>& labels() const { return labels_; }

  /// Serving hook: combines externally produced exact KNN candidates
  /// (squared distance to a features() row, row index) into a location with
  /// this estimator's k/weighting. Equals Estimate() whenever `candidates`
  /// is a superset of the true top-k by (distance, index) order.
  geom::Point EstimateFromCandidates(
      std::vector<std::pair<double, size_t>> candidates) const;

 private:
  /// The int8 ranking path: integer cross Gemm (+ masked-norm Gemm for
  /// partial rows), integer keys, branchless top-c, then the candidate
  /// band widened by the analytic quantization bound and re-scored
  /// exactly — see EstimateBatch's contract.
  std::vector<geom::Point> EstimateBatchQuant(
      const la::Matrix& fingerprints) const;

  size_t k_;
  bool weighted_;
  RankingKernel kernel_ = RankingKernel::kQuant;
  std::vector<geom::Point> labels_;
  /// Fitted reference state. The transposed copies let the batched path
  /// run its two Gemms through the no-transpose kernel (cache-blocked and
  /// auto-vectorizable — the A*B^T row-dot variant is a serial reduction);
  /// accumulation order is identical, so keys don't change.
  la::Matrix features_mat_;    ///< R x D
  la::Matrix features_t_;      ///< D x R
  la::Matrix features_sq_t_;   ///< D x R, elementwise squared
  la::Matrix feature_norms_;   ///< R x 1 row norms
  /// Int8 ranking copy (per-AP scale/zero-point, SoA, padded) for the
  /// kQuant kernel; the float members above stay the rescore master.
  la::QuantizedRefs quant_;
};

/// Random-forest regression (CART trees, bagging, feature subsampling,
/// variance-reduction splits on the combined x/y variance). Does not
/// support partial fingerprints: a kNull (NaN) silently mis-compares in
/// the tree threshold logic, so callers must reject partial scans (the
/// serving layer does).
class RandomForestEstimator : public LocationEstimator {
 public:
  struct Params {
    size_t num_trees = 20;
    size_t max_depth = 12;
    size_t min_leaf = 3;
    /// Features tried per split; 0 = sqrt(D).
    size_t features_per_split = 0;
  };

  RandomForestEstimator() : params_() {}
  explicit RandomForestEstimator(const Params& params) : params_(params) {}

  void Fit(const rmap::RadioMap& map, Rng& rng) override;
  /// Rotating-tree warm start: against a previous forest of identical
  /// shape (same tree count, same feature width) on mostly-unchanged data,
  /// only a deterministic quarter of the trees (at least one) is re-grown
  /// on the fresh map per rebuild; the rest are carried over. Carried
  /// trees predict from slightly stale leaves — the approximation the
  /// incremental-update accuracy tests bound — and every tree is refreshed
  /// within four consecutive warm rebuilds. Falls back to a cold Fit when
  /// `previous` is not a same-shaped forest or the changed set covers more
  /// than half the training rows.
  void FitWarm(const rmap::RadioMap& map, Rng& rng,
               const LocationEstimator* previous,
               const std::vector<size_t>& changed_rows) override;
  geom::Point Estimate(const std::vector<double>& fingerprint) const override;
  std::string name() const override { return "RF"; }
  std::unique_ptr<LocationEstimator> Clone() const override {
    return std::make_unique<RandomForestEstimator>(*this);
  }

 private:
  struct TreeNode {
    int feature = -1;       ///< -1 marks a leaf
    double threshold = 0.0;
    int left = -1, right = -1;
    geom::Point prediction;
  };
  struct Tree {
    std::vector<TreeNode> nodes;
  };

  int BuildNode(Tree* tree, const std::vector<size_t>& rows, size_t depth,
                Rng& rng);
  geom::Point PredictTree(const Tree& tree,
                          const std::vector<double>& fingerprint) const;

  Params params_;
  std::vector<std::vector<double>> features_;
  std::vector<geom::Point> labels_;
  std::vector<Tree> trees_;
  /// Warm-rebuild counter driving which tree block FitWarm re-grows; the
  /// rotation is a pure function of the generation, so warm rebuilds are
  /// as deterministic as cold ones.
  uint64_t warm_generation_ = 0;
};

}  // namespace rmi::positioning

#endif  // RMI_POSITIONING_ESTIMATORS_H_
