// Online location estimation (module C, paper Section II-A):
//  * KNN  [57] — mean of the K nearest fingerprints' RPs;
//  * WKNN [19] — inverse-distance-weighted mean;
//  * RF   [28] — random-forest regression from fingerprint to (x, y).
//
// Estimators consume a *complete* radio map (the imputers' output contract)
// and complete online fingerprints.
#ifndef RMI_POSITIONING_ESTIMATORS_H_
#define RMI_POSITIONING_ESTIMATORS_H_

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "geometry/geometry.h"
#include "radiomap/radio_map.h"

namespace rmi::positioning {

class LocationEstimator {
 public:
  virtual ~LocationEstimator() = default;

  /// Builds the estimator from an imputed radio map.
  virtual void Fit(const rmap::RadioMap& map, Rng& rng) = 0;

  /// Estimates the location of one online fingerprint (length D, complete).
  virtual geom::Point Estimate(const std::vector<double>& fingerprint) const = 0;

  virtual std::string name() const = 0;

  /// Deep copy (including any fitted state) — lets independent evaluation
  /// runs fan out over threads with private estimator instances.
  virtual std::unique_ptr<LocationEstimator> Clone() const = 0;
};

/// KNN / WKNN (weighted = inverse distance).
class KnnEstimator : public LocationEstimator {
 public:
  explicit KnnEstimator(size_t k = 3, bool weighted = false)
      : k_(k), weighted_(weighted) {}

  void Fit(const rmap::RadioMap& map, Rng& rng) override;
  geom::Point Estimate(const std::vector<double>& fingerprint) const override;
  std::string name() const override { return weighted_ ? "WKNN" : "KNN"; }
  std::unique_ptr<LocationEstimator> Clone() const override {
    return std::make_unique<KnnEstimator>(*this);
  }

 private:
  size_t k_;
  bool weighted_;
  std::vector<std::vector<double>> features_;
  std::vector<geom::Point> labels_;
};

/// Random-forest regression (CART trees, bagging, feature subsampling,
/// variance-reduction splits on the combined x/y variance).
class RandomForestEstimator : public LocationEstimator {
 public:
  struct Params {
    size_t num_trees = 20;
    size_t max_depth = 12;
    size_t min_leaf = 3;
    /// Features tried per split; 0 = sqrt(D).
    size_t features_per_split = 0;
  };

  RandomForestEstimator() : params_() {}
  explicit RandomForestEstimator(const Params& params) : params_(params) {}

  void Fit(const rmap::RadioMap& map, Rng& rng) override;
  geom::Point Estimate(const std::vector<double>& fingerprint) const override;
  std::string name() const override { return "RF"; }
  std::unique_ptr<LocationEstimator> Clone() const override {
    return std::make_unique<RandomForestEstimator>(*this);
  }

 private:
  struct TreeNode {
    int feature = -1;       ///< -1 marks a leaf
    double threshold = 0.0;
    int left = -1, right = -1;
    geom::Point prediction;
  };
  struct Tree {
    std::vector<TreeNode> nodes;
  };

  int BuildNode(Tree* tree, const std::vector<size_t>& rows, size_t depth,
                Rng& rng);
  geom::Point PredictTree(const Tree& tree,
                          const std::vector<double>& fingerprint) const;

  Params params_;
  std::vector<std::vector<double>> features_;
  std::vector<geom::Point> labels_;
  std::vector<Tree> trees_;
};

}  // namespace rmi::positioning

#endif  // RMI_POSITIONING_ESTIMATORS_H_
