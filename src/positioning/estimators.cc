#include "positioning/estimators.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"
#include "common/missing.h"

namespace rmi::positioning {

namespace {

/// Extracts complete feature vectors + RP labels from an imputed map.
void ExtractTrainingData(const rmap::RadioMap& map,
                         std::vector<std::vector<double>>* features,
                         std::vector<geom::Point>* labels) {
  features->clear();
  labels->clear();
  for (size_t i = 0; i < map.size(); ++i) {
    const rmap::Record& r = map.record(i);
    if (!r.has_rp) continue;  // estimators need labeled rows
    for (double v : r.rssi) RMI_CHECK(!IsNull(v));
    features->push_back(r.rssi);
    labels->push_back(r.rp);
  }
}

double SquaredDistance(const std::vector<double>& a,
                       const std::vector<double>& b) {
  double s = 0.0;
  for (size_t j = 0; j < a.size(); ++j) {
    const double d = a[j] - b[j];
    s += d * d;
  }
  return s;
}

}  // namespace

void KnnEstimator::Fit(const rmap::RadioMap& map, Rng&) {
  ExtractTrainingData(map, &features_, &labels_);
  RMI_CHECK(!features_.empty());
}

geom::Point KnnEstimator::Estimate(
    const std::vector<double>& fingerprint) const {
  RMI_CHECK(!features_.empty());
  RMI_CHECK_EQ(fingerprint.size(), features_[0].size());
  std::vector<std::pair<double, size_t>> dist;
  dist.reserve(features_.size());
  for (size_t i = 0; i < features_.size(); ++i) {
    dist.emplace_back(SquaredDistance(fingerprint, features_[i]), i);
  }
  const size_t take = std::min(k_, dist.size());
  std::partial_sort(dist.begin(), dist.begin() + take, dist.end());
  geom::Point acc;
  double wsum = 0.0;
  for (size_t t = 0; t < take; ++t) {
    const double w =
        weighted_ ? 1.0 / (std::sqrt(dist[t].first) + 1e-6) : 1.0;
    acc = acc + labels_[dist[t].second] * w;
    wsum += w;
  }
  return acc * (1.0 / wsum);
}

void RandomForestEstimator::Fit(const rmap::RadioMap& map, Rng& rng) {
  ExtractTrainingData(map, &features_, &labels_);
  RMI_CHECK(!features_.empty());
  trees_.clear();
  const size_t n = features_.size();
  for (size_t t = 0; t < params_.num_trees; ++t) {
    // Bootstrap sample.
    std::vector<size_t> rows(n);
    for (size_t i = 0; i < n; ++i) rows[i] = rng.Index(n);
    Tree tree;
    BuildNode(&tree, rows, 0, rng);
    trees_.push_back(std::move(tree));
  }
}

int RandomForestEstimator::BuildNode(Tree* tree,
                                     const std::vector<size_t>& rows,
                                     size_t depth, Rng& rng) {
  auto mean_of = [&](const std::vector<size_t>& rs) {
    geom::Point m;
    for (size_t r : rs) m = m + labels_[r];
    return m * (1.0 / static_cast<double>(rs.size()));
  };
  auto variance_of = [&](const std::vector<size_t>& rs) {
    if (rs.size() < 2) return 0.0;
    const geom::Point m = mean_of(rs);
    double v = 0.0;
    for (size_t r : rs) v += geom::SquaredDistance(labels_[r], m);
    return v;  // un-normalized total variance: fine for split comparison
  };

  const int node_id = static_cast<int>(tree->nodes.size());
  tree->nodes.emplace_back();

  const bool make_leaf = depth >= params_.max_depth ||
                         rows.size() <= 2 * params_.min_leaf ||
                         variance_of(rows) < 1e-9;
  if (!make_leaf) {
    const size_t d = features_[0].size();
    const size_t mtry = params_.features_per_split
                            ? params_.features_per_split
                            : std::max<size_t>(1, static_cast<size_t>(
                                                      std::sqrt(double(d))));
    double best_gain = 0.0;
    int best_feature = -1;
    double best_threshold = 0.0;
    const double parent_var = variance_of(rows);
    for (size_t trial = 0; trial < mtry; ++trial) {
      const size_t f = rng.Index(d);
      // Candidate thresholds: a few random value quantiles.
      for (int q = 0; q < 3; ++q) {
        const double threshold = features_[rows[rng.Index(rows.size())]][f];
        std::vector<size_t> left, right;
        for (size_t r : rows) {
          (features_[r][f] <= threshold ? left : right).push_back(r);
        }
        if (left.size() < params_.min_leaf || right.size() < params_.min_leaf) {
          continue;
        }
        const double gain = parent_var - variance_of(left) - variance_of(right);
        if (gain > best_gain) {
          best_gain = gain;
          best_feature = static_cast<int>(f);
          best_threshold = threshold;
        }
      }
    }
    if (best_feature >= 0) {
      std::vector<size_t> left, right;
      for (size_t r : rows) {
        (features_[r][static_cast<size_t>(best_feature)] <= best_threshold
             ? left
             : right)
            .push_back(r);
      }
      const int l = BuildNode(tree, left, depth + 1, rng);
      const int r = BuildNode(tree, right, depth + 1, rng);
      TreeNode& node = tree->nodes[static_cast<size_t>(node_id)];
      node.feature = best_feature;
      node.threshold = best_threshold;
      node.left = l;
      node.right = r;
      return node_id;
    }
  }
  tree->nodes[static_cast<size_t>(node_id)].prediction = mean_of(rows);
  return node_id;
}

geom::Point RandomForestEstimator::PredictTree(
    const Tree& tree, const std::vector<double>& fingerprint) const {
  int cur = 0;
  while (tree.nodes[static_cast<size_t>(cur)].feature >= 0) {
    const TreeNode& n = tree.nodes[static_cast<size_t>(cur)];
    cur = fingerprint[static_cast<size_t>(n.feature)] <= n.threshold ? n.left
                                                                     : n.right;
  }
  return tree.nodes[static_cast<size_t>(cur)].prediction;
}

geom::Point RandomForestEstimator::Estimate(
    const std::vector<double>& fingerprint) const {
  RMI_CHECK(!trees_.empty());
  geom::Point acc;
  for (const Tree& t : trees_) {
    acc = acc + PredictTree(t, fingerprint);
  }
  return acc * (1.0 / static_cast<double>(trees_.size()));
}

}  // namespace rmi::positioning
