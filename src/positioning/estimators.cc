#include "positioning/estimators.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"
#include "common/missing.h"
#include "common/topc.h"
#include "la/kernels.h"
#include "la/quant.h"
#include "obs/metrics.h"

namespace rmi::positioning {

namespace {

/// Per-batch stage histograms of the batched KNN path (one timer pair per
/// batch — 4 clock reads total, nothing per row). Shared by the float and
/// quantized kernels.
struct EstimatorMetrics {
  obs::Histogram& rank_us = obs::GetHistogram(
      "rmi_estimator_stage_rank_us",
      "Cross-term ranking (Gemm family) per batch, microseconds");
  obs::Histogram& rescore_us = obs::GetHistogram(
      "rmi_estimator_stage_rescore_us",
      "Top-c selection + exact rescore per batch, microseconds");

  static EstimatorMetrics& Get() {
    static EstimatorMetrics* m = new EstimatorMetrics();
    return *m;
  }
};

/// ExtractLabeledRows reshaped into the vector-of-rows form the random
/// forest's split search indexes by.
void ExtractTrainingData(const rmap::RadioMap& map,
                         std::vector<std::vector<double>>* features,
                         std::vector<geom::Point>* labels) {
  la::Matrix fingerprints;
  ExtractLabeledRows(map, &fingerprints, labels);
  features->assign(fingerprints.rows(),
                   std::vector<double>(fingerprints.cols()));
  for (size_t i = 0; i < fingerprints.rows(); ++i) {
    const double* row = fingerprints.data().data() + i * fingerprints.cols();
    std::copy(row, row + fingerprints.cols(), (*features)[i].begin());
  }
}

bool HasNull(const double* v, size_t n) {
  for (size_t j = 0; j < n; ++j) {
    if (IsNull(v[j])) return true;
  }
  return false;
}

bool HasObserved(const double* v, size_t n) {
  for (size_t j = 0; j < n; ++j) {
    if (!IsNull(v[j])) return true;
  }
  return false;
}

}  // namespace

void ExtractLabeledRows(const rmap::RadioMap& map, la::Matrix* fingerprints,
                        std::vector<geom::Point>* labels) {
  labels->clear();
  const size_t d = map.num_aps();
  size_t num_labeled = 0;
  for (size_t i = 0; i < map.size(); ++i) {
    num_labeled += map.record(i).has_rp;
  }
  RMI_CHECK_GT(num_labeled, 0u);
  fingerprints->Reshape(num_labeled, d);
  labels->reserve(num_labeled);
  size_t row = 0;
  for (size_t i = 0; i < map.size(); ++i) {
    const rmap::Record& r = map.record(i);
    if (!r.has_rp) continue;  // estimators need labeled rows
    RMI_CHECK_EQ(r.rssi.size(), d);
    for (double v : r.rssi) RMI_CHECK(!IsNull(v));
    std::copy(r.rssi.begin(), r.rssi.end(),
              fingerprints->data().begin() + static_cast<long>(row * d));
    labels->push_back(r.rp);
    ++row;
  }
}

void LocationEstimator::FitWarm(const rmap::RadioMap& map, Rng& rng,
                                const LocationEstimator* /*previous*/,
                                const std::vector<size_t>& /*changed_rows*/) {
  Fit(map, rng);
}

std::vector<geom::Point> LocationEstimator::EstimateBatch(
    const la::Matrix& fingerprints) const {
  std::vector<geom::Point> out(fingerprints.rows());
  std::vector<double> row(fingerprints.cols());
  for (size_t i = 0; i < fingerprints.rows(); ++i) {
    const double* src = fingerprints.data().data() + i * fingerprints.cols();
    std::copy(src, src + fingerprints.cols(), row.begin());
    out[i] = Estimate(row);
  }
  return out;
}

void KnnEstimator::Fit(const rmap::RadioMap& map, Rng&) {
  ExtractLabeledRows(map, &features_mat_, &labels_);
  features_t_ = features_mat_.Transpose();
  la::CwiseUnaryInto(features_t_, &features_sq_t_,
                     [](double v) { return v * v; });
  la::RowSquaredNorms(features_mat_, &feature_norms_);
  // Int8 ranking copy for the kQuant kernel; the float members above stay
  // the exact-rescore master. Built unconditionally — it is 1/8th the size
  // of the float matrix and the kernel choice may change per batch.
  quant_ = la::QuantizeRefs(features_mat_);
}

geom::Point CombineKnnCandidates(
    std::vector<std::pair<double, size_t>> candidates,
    const geom::Point* labels, size_t k, bool weighted) {
  RMI_CHECK(!candidates.empty());
  const size_t take = std::min(k, candidates.size());
  std::partial_sort(candidates.begin(), candidates.begin() + take,
                    candidates.end());
  geom::Point acc;
  double wsum = 0.0;
  for (size_t t = 0; t < take; ++t) {
    const double w =
        weighted ? 1.0 / (std::sqrt(candidates[t].first) + 1e-6) : 1.0;
    acc = acc + labels[candidates[t].second] * w;
    wsum += w;
  }
  return acc * (1.0 / wsum);
}

geom::Point KnnEstimator::EstimateFromCandidates(
    std::vector<std::pair<double, size_t>> candidates) const {
  return CombineKnnCandidates(std::move(candidates), labels_.data(), k_,
                              weighted_);
}

geom::Point KnnEstimator::Estimate(
    const std::vector<double>& fingerprint) const {
  RMI_CHECK(!labels_.empty());
  RMI_CHECK_EQ(fingerprint.size(), features_mat_.cols());
  RMI_CHECK(HasObserved(fingerprint.data(), fingerprint.size()));
  std::vector<std::pair<double, size_t>> dist;
  dist.reserve(labels_.size());
  for (size_t i = 0; i < labels_.size(); ++i) {
    dist.emplace_back(la::QuerySquaredDistance(fingerprint.data(),
                                               features_mat_, i),
                      i);
  }
  return EstimateFromCandidates(std::move(dist));
}

std::vector<geom::Point> KnnEstimator::EstimateBatch(
    const la::Matrix& fingerprints) const {
  RMI_CHECK(!labels_.empty());
  const size_t b = fingerprints.rows();
  if (b == 0) return {};
  const size_t d = features_mat_.cols();
  const size_t r = labels_.size();
  RMI_CHECK_EQ(fingerprints.cols(), d);
  if (kernel_ == RankingKernel::kQuant) {
    return EstimateBatchQuant(fingerprints);
  }

  // Which rows are partial? The masked path needs two extra operands
  // (null-zeroed queries and the 0/1 observation mask) and a second Gemm.
  std::vector<uint8_t> partial(b, 0);
  bool any_partial = false;
  for (size_t i = 0; i < b; ++i) {
    const double* row = fingerprints.data().data() + i * d;
    RMI_CHECK(HasObserved(row, d));
    partial[i] = HasNull(row, d);
    any_partial |= partial[i] != 0;
  }

  // Cross term: one Gemm computes every query.reference dot product. With
  // partial rows, nulls contribute 0 — exactly the masked cross term.
  // kGemm keeps the reproducible blocked kernel; kFastNN trades ~1 ulp per
  // k-term of rounding for the register-lane SIMD kernel — either way the
  // exact rescore below absorbs the drift.
  const bool fast = kernel_ == RankingKernel::kFastNN;
  la::Matrix cross;  // b x r
  la::Matrix zeroed, mask, masked_norms;
  const la::Matrix* queries = &fingerprints;
  {
    obs::ScopedStageTimer rank_timer(EstimatorMetrics::Get().rank_us);
    if (any_partial) {
      la::CwiseUnaryInto(fingerprints, &zeroed,
                         [](double v) { return IsNull(v) ? 0.0 : v; });
      la::CwiseUnaryInto(fingerprints, &mask,
                         [](double v) { return IsNull(v) ? 0.0 : 1.0; });
      queries = &zeroed;
      // Masked reference norms: sum_j m_ij * f_kj^2 = (M x (F o F)^T)_ik.
      if (fast) {
        la::GemmFastNN(mask, features_sq_t_, &masked_norms);
      } else {
        la::Gemm(1.0, mask, false, features_sq_t_, false, 0.0, &masked_norms);
      }
    }
    if (fast) {
      la::GemmFastNN(*queries, features_t_, &cross);
    } else {
      la::Gemm(1.0, *queries, false, features_t_, false, 0.0, &cross);
    }
  }

  // Per row: rank by (reference norm - 2 cross) — the query norm is
  // constant within a row — then re-score the top candidates exactly so the
  // result matches the scalar path bit-for-bit. The expanded form carries
  // cancellation error ~1e-10 relative on dBm-scale norms, so the rescore
  // takes every reference within a margin far above that error of the
  // c-th-smallest key: Gemm rounding can never evict a true top-k neighbor.
  //
  // Selection is two streaming passes (a branchless top-c buffer finds the
  // threshold, then a gather) — no per-row (key, index) array and no
  // nth_element over all references, which would cost more than the Gemm.
  const size_t num_candidates = std::min(r, k_ + std::max<size_t>(k_, 8));
  std::vector<geom::Point> out(b);
  std::vector<double> keys(r);
  std::vector<std::pair<double, size_t>> exact;
  StreamingTopC<double> top(num_candidates,
                            std::numeric_limits<double>::infinity());
  obs::ScopedStageTimer rescore_timer(EstimatorMetrics::Get().rescore_us);
  for (size_t i = 0; i < b; ++i) {
    const double* crow = cross.data().data() + i * r;
    const double* norms = partial[i] ? masked_norms.data().data() + i * r
                                     : feature_norms_.data().data();
    top.Reset();
    for (size_t j = 0; j < r; ++j) {
      const double key = norms[j] - 2.0 * crow[j];
      keys[j] = key;
      top.Push(key);
    }
    // With fewer pushes than capacity the boundary stays +inf and every
    // reference is re-scored — the vacuous (and correct) small-r case.
    const double boundary = top.worst();
    const double threshold = boundary + 1e-6 * (1.0 + std::fabs(boundary));
    const double* src = fingerprints.data().data() + i * d;
    exact.clear();
    for (size_t j = 0; j < r; ++j) {
      if (keys[j] <= threshold) {
        exact.emplace_back(la::QuerySquaredDistance(src, features_mat_, j),
                           j);
      }
    }
    out[i] = EstimateFromCandidates(exact);
  }
  return out;
}

void KnnQuantEstimateBatch(const la::QuantizedRefsSpan& quant,
                           const double* refs, const geom::Point* labels,
                           size_t num_refs, size_t num_aps, size_t k,
                           bool weighted, const la::Matrix& queries,
                           geom::Point* out) {
  const size_t b = queries.rows();
  const size_t d = num_aps;
  const size_t r = num_refs;
  const size_t rp = quant.padded;
  RMI_CHECK_EQ(quant.rows, r);
  RMI_CHECK_EQ(quant.cols, d);
  RMI_CHECK_EQ(queries.cols(), d);
  if (b == 0) return;

  // Quantize every query row with the reference side's per-AP parameters:
  // int8 values (kNull -> 0), a 0/1 observation mask, the integer query
  // norm over observed dims, and the per-row analytic error bound E.
  std::vector<int8_t> qvals(b * d), qmask(b * d);
  std::vector<int32_t> qnorm(b);
  std::vector<double> qerr(b);
  std::vector<uint8_t> partial(b, 0);
  bool any_partial = false;
  std::vector<int32_t> cross(b * rp);
  std::vector<int32_t> masked_norms;
  {
    obs::ScopedStageTimer rank_timer(EstimatorMetrics::Get().rank_us);
    for (size_t i = 0; i < b; ++i) {
      const double* row = queries.data().data() + i * d;
      RMI_CHECK(HasObserved(row, d));
      partial[i] = HasNull(row, d);
      any_partial |= partial[i] != 0;
      qnorm[i] = la::QuantizeQueryRow(quant, row, qvals.data() + i * d,
                                      qmask.data() + i * d, &qerr[i]);
    }

    // Integer distance expansion: I(i, j) = |dq_i|^2 + |df_j|^2 - 2 dq.df
    // over the observed dims (nulls hold dq = 0 and mask = 0, so they drop
    // out of every term). Exact integer arithmetic — the only information
    // loss is the quantization itself, which E bounds.
    la::GemmQuantNN(qvals.data(), quant.values, cross.data(), b, d, rp);
    if (any_partial) {
      masked_norms.resize(b * rp);
      la::MaskedQuantRowNorms(qmask.data(), quant.squares,
                              masked_norms.data(), b, d, rp);
    }
  }

  const size_t num_candidates = std::min(r, k + std::max<size_t>(k, 8));
  std::vector<int32_t> keys(r);
  std::vector<std::pair<double, size_t>> exact;
  StreamingTopC<int32_t> top(num_candidates,
                             std::numeric_limits<int32_t>::max());
  obs::ScopedStageTimer rescore_timer(EstimatorMetrics::Get().rescore_us);
  for (size_t i = 0; i < b; ++i) {
    const int32_t* crow = cross.data() + i * rp;
    const int32_t* norms =
        partial[i] ? masked_norms.data() + i * rp : quant.norms;
    top.Reset();
    for (size_t j = 0; j < r; ++j) {
      const int32_t key = qnorm[i] + norms[j] - 2 * crow[j];
      keys[j] = key;
      top.Push(key);
    }
    // Candidate band from the quantization bound. With I_c the c-th
    // smallest integer key and E the per-query bound, every one of those c
    // rows has true distance <= (s_max sqrt(I_c) + E)^2, so the k-th
    // smallest true distance does too (k <= c). A row can only belong to
    // the true top-k if its lower bound s_min sqrt(I_j) - E reaches that
    // value, i.e. sqrt(I_j) <= (s_max sqrt(I_c) + 2 E) / s_min — rescore
    // exactly those rows. Conservative slack on the float conversion only
    // ever widens the band.
    const int32_t boundary = top.worst();
    double threshold_sq = std::numeric_limits<double>::infinity();
    if (boundary != std::numeric_limits<int32_t>::max()) {
      const double a_c =
          quant.max_scale * std::sqrt(static_cast<double>(boundary));
      const double t = (a_c + 2.0 * qerr[i]) / quant.min_scale;
      threshold_sq = t * t * (1.0 + 1e-9) + 1.0;
    }
    const int32_t threshold =
        threshold_sq >= static_cast<double>(std::numeric_limits<int32_t>::max())
            ? std::numeric_limits<int32_t>::max()
            : static_cast<int32_t>(threshold_sq);
    const double* src = queries.data().data() + i * d;
    exact.clear();
    for (size_t j = 0; j < r; ++j) {
      if (keys[j] <= threshold) {
        exact.emplace_back(la::QuerySquaredDistanceRow(src, refs + j * d, d),
                           j);
      }
    }
    out[i] = CombineKnnCandidates(exact, labels, k, weighted);
  }
}

std::vector<geom::Point> KnnEstimator::EstimateBatchQuant(
    const la::Matrix& fingerprints) const {
  std::vector<geom::Point> out(fingerprints.rows());
  KnnQuantEstimateBatch(quant_.span(), features_mat_.data().data(),
                        labels_.data(), labels_.size(), features_mat_.cols(),
                        k_, weighted_, fingerprints, out.data());
  return out;
}

void RandomForestEstimator::Fit(const rmap::RadioMap& map, Rng& rng) {
  ExtractTrainingData(map, &features_, &labels_);
  RMI_CHECK(!features_.empty());
  warm_generation_ = 0;
  trees_.clear();
  const size_t n = features_.size();
  for (size_t t = 0; t < params_.num_trees; ++t) {
    // Bootstrap sample.
    std::vector<size_t> rows(n);
    for (size_t i = 0; i < n; ++i) rows[i] = rng.Index(n);
    Tree tree;
    BuildNode(&tree, rows, 0, rng);
    trees_.push_back(std::move(tree));
  }
}

void RandomForestEstimator::FitWarm(const rmap::RadioMap& map, Rng& rng,
                                    const LocationEstimator* previous,
                                    const std::vector<size_t>& changed_rows) {
  ExtractTrainingData(map, &features_, &labels_);
  RMI_CHECK(!features_.empty());
  const auto* prev = dynamic_cast<const RandomForestEstimator*>(previous);
  // Tree reuse is only sound against a same-shaped forest on the same
  // venue whose training data mostly survived: a carried tree must at
  // least pose valid feature-index questions, and refreshing a quarter of
  // the forest only approximates well when the data drift is small.
  const bool reusable =
      prev != nullptr && prev->trees_.size() == params_.num_trees &&
      params_.num_trees > 1 && !prev->features_.empty() &&
      prev->features_[0].size() == features_[0].size() &&
      changed_rows.size() * 2 <= features_.size();
  if (!reusable) {
    Fit(map, rng);
    return;
  }
  trees_ = prev->trees_;
  warm_generation_ = prev->warm_generation_ + 1;
  const size_t total = params_.num_trees;
  const size_t refresh = std::max<size_t>(1, total / 4);
  const size_t n = features_.size();
  for (size_t t = 0; t < refresh; ++t) {
    // Rotating block: generation g re-grows trees [g*refresh, (g+1)*refresh)
    // mod total, so every tree is rebuilt within ceil(total/refresh)
    // consecutive warm rebuilds and no tree's staleness is unbounded.
    const size_t idx =
        (static_cast<size_t>(warm_generation_) * refresh + t) % total;
    std::vector<size_t> rows(n);
    for (size_t i = 0; i < n; ++i) rows[i] = rng.Index(n);
    Tree tree;
    BuildNode(&tree, rows, 0, rng);
    trees_[idx] = std::move(tree);
  }
}

int RandomForestEstimator::BuildNode(Tree* tree,
                                     const std::vector<size_t>& rows,
                                     size_t depth, Rng& rng) {
  auto mean_of = [&](const std::vector<size_t>& rs) {
    geom::Point m;
    for (size_t r : rs) m = m + labels_[r];
    return m * (1.0 / static_cast<double>(rs.size()));
  };
  auto variance_of = [&](const std::vector<size_t>& rs) {
    if (rs.size() < 2) return 0.0;
    const geom::Point m = mean_of(rs);
    double v = 0.0;
    for (size_t r : rs) v += geom::SquaredDistance(labels_[r], m);
    return v;  // un-normalized total variance: fine for split comparison
  };

  const int node_id = static_cast<int>(tree->nodes.size());
  tree->nodes.emplace_back();

  const bool make_leaf = depth >= params_.max_depth ||
                         rows.size() <= 2 * params_.min_leaf ||
                         variance_of(rows) < 1e-9;
  if (!make_leaf) {
    const size_t d = features_[0].size();
    const size_t mtry = params_.features_per_split
                            ? params_.features_per_split
                            : std::max<size_t>(1, static_cast<size_t>(
                                                      std::sqrt(double(d))));
    double best_gain = 0.0;
    int best_feature = -1;
    double best_threshold = 0.0;
    const double parent_var = variance_of(rows);
    for (size_t trial = 0; trial < mtry; ++trial) {
      const size_t f = rng.Index(d);
      // Candidate thresholds: a few random value quantiles.
      for (int q = 0; q < 3; ++q) {
        const double threshold = features_[rows[rng.Index(rows.size())]][f];
        std::vector<size_t> left, right;
        for (size_t r : rows) {
          (features_[r][f] <= threshold ? left : right).push_back(r);
        }
        if (left.size() < params_.min_leaf || right.size() < params_.min_leaf) {
          continue;
        }
        const double gain = parent_var - variance_of(left) - variance_of(right);
        if (gain > best_gain) {
          best_gain = gain;
          best_feature = static_cast<int>(f);
          best_threshold = threshold;
        }
      }
    }
    if (best_feature >= 0) {
      std::vector<size_t> left, right;
      for (size_t r : rows) {
        (features_[r][static_cast<size_t>(best_feature)] <= best_threshold
             ? left
             : right)
            .push_back(r);
      }
      const int l = BuildNode(tree, left, depth + 1, rng);
      const int r = BuildNode(tree, right, depth + 1, rng);
      TreeNode& node = tree->nodes[static_cast<size_t>(node_id)];
      node.feature = best_feature;
      node.threshold = best_threshold;
      node.left = l;
      node.right = r;
      return node_id;
    }
  }
  tree->nodes[static_cast<size_t>(node_id)].prediction = mean_of(rows);
  return node_id;
}

geom::Point RandomForestEstimator::PredictTree(
    const Tree& tree, const std::vector<double>& fingerprint) const {
  int cur = 0;
  while (tree.nodes[static_cast<size_t>(cur)].feature >= 0) {
    const TreeNode& n = tree.nodes[static_cast<size_t>(cur)];
    cur = fingerprint[static_cast<size_t>(n.feature)] <= n.threshold ? n.left
                                                                     : n.right;
  }
  return tree.nodes[static_cast<size_t>(cur)].prediction;
}

geom::Point RandomForestEstimator::Estimate(
    const std::vector<double>& fingerprint) const {
  RMI_CHECK(!trees_.empty());
  geom::Point acc;
  for (const Tree& t : trees_) {
    acc = acc + PredictTree(t, fingerprint);
  }
  return acc * (1.0 / static_cast<double>(trees_.size()));
}

}  // namespace rmi::positioning
