// The online localization front end: a concurrent request queue whose
// dispatcher workers coalesce queued fingerprints into batches, pin one
// snapshot per batch, and answer every row with a single batched estimator
// pass (one Gemm for the KNN family).
//
// Threading: Submit is called from any number of client threads and runs
// lock-free — requests land in a bounded MPMC ring (common/mpmc_queue.h),
// so producers never serialize on a queue mutex and a preempted producer
// only delays its own cell. The dispatch loops run as one ParallelFor of
// `num_workers` indices on a common/thread_pool.h pool (worker 0 of that
// pool is a dedicated launcher thread, so Submit never blocks on dispatch
// work). Each loop pops up to max_batch requests — waiting at most
// max_wait_us for stragglers to coalesce — and fulfills the requests'
// promises. A condition variable exists only for *idle parking*: a
// dispatcher that finds the ring empty parks on it, and Submit wakes it
// through a seq_cst sleeper-count handshake (the hot path with awake
// dispatchers never touches the mutex). Per-request latency (enqueue ->
// fulfill) feeds a sharded obs/ histogram — the fulfill path takes no
// stats mutex; Stats() percentiles come from the merged buckets, and the
// same events land in the process-wide registry (rmi_server_* series)
// for scrapes. A deterministic 1-in-N of requests carries an obs::Trace
// through submit -> coalesce -> rank, retrievable afterwards from
// obs::Tracer::Global().Recent().
#ifndef RMI_SERVING_SERVER_H_
#define RMI_SERVING_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "common/mpmc_queue.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "geometry/geometry.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serving/batch_localizer.h"
#include "serving/snapshot.h"

namespace rmi::serving {

struct ServerOptions {
  /// Largest coalesced batch per dispatch.
  size_t max_batch = 64;
  /// How long a dispatcher waits for more arrivals before running a
  /// partial batch, microseconds.
  double max_wait_us = 200.0;
  /// Dispatcher loops (each runs whole batches; >1 overlaps Gemm time of
  /// one batch with queueing of the next).
  size_t num_workers = 2;
  /// Submit-ring capacity (rounded up to a power of two). A full ring is
  /// backpressure: Submit yields until a dispatcher frees a cell — bounded
  /// memory under overload instead of an ever-growing queue.
  size_t queue_capacity = 4096;
};

struct ServerStats {
  size_t completed = 0;        ///< requests answered
  size_t rejected = 0;         ///< malformed requests refused via exception
  size_t batches = 0;          ///< dispatches executed
  double mean_batch_size = 0.0;
  /// Percentiles from this server's merged histogram buckets (bounded
  /// memory, <= ~12% bucket quantization — see obs::Histogram).
  double p50_latency_us = 0.0;
  double p95_latency_us = 0.0;
  double p99_latency_us = 0.0;
  double qps = 0.0;            ///< completed / uptime
};

/// Coalescing localization front end over one snapshot store.
///
/// Thread-safety: Submit/Localize/Stats may be called concurrently from
/// any number of threads; Stop is idempotent and may race Submit (the
/// loser's future holds a std::runtime_error). Ownership: the server
/// borrows `store` and owns its queue, dispatch pool, and stats. Malformed
/// fingerprints (wrong width, all-null, partial scan against an estimator
/// without partial support) reject the one request via its future — they
/// never abort the process.
class LocalizationServer {
 public:
  /// `store` must outlive the server and hold a published snapshot before
  /// the first request is dispatched.
  explicit LocalizationServer(const MapSnapshotStore* store,
                              const ServerOptions& options = {});
  ~LocalizationServer();

  LocalizationServer(const LocalizationServer&) = delete;
  LocalizationServer& operator=(const LocalizationServer&) = delete;

  /// Enqueues one fingerprint; the future resolves when its batch is
  /// answered. After Stop, the returned future holds a std::runtime_error
  /// instead (a Submit racing shutdown is rejected, never a crash).
  std::future<geom::Point> Submit(std::vector<double> fingerprint);

  /// Synchronous convenience wrapper around Submit.
  geom::Point Localize(std::vector<double> fingerprint) {
    return Submit(std::move(fingerprint)).get();
  }

  /// Drains the queue and joins the dispatch loops. Idempotent; the
  /// destructor calls it.
  void Stop();

  ServerStats Stats() const;

 private:
  struct Request {
    std::vector<double> fingerprint;
    std::promise<geom::Point> promise;
    Timer enqueued;  ///< starts at Submit; read when the promise resolves
    /// Non-null for the deterministic 1-in-N sampled requests; rides the
    /// ring with the request and is finished at promise resolution.
    std::unique_ptr<obs::Trace> trace;
  };

  void DispatchLoop();
  void ProcessBatch(std::vector<Request>* batch);
  /// Parks this dispatcher on the condvar for at most `max_park_us`,
  /// with the sleeper handshake that makes a lost wakeup impossible
  /// (a Submit lands either before our emptiness re-check or after our
  /// sleeper registration — never between both).
  void ParkForWork(double max_park_us);
  /// Blocks until the ring is non-empty or shutdown. Returns false iff the
  /// server is shutting down and the ring is drained.
  bool WaitForWork();

  const MapSnapshotStore* store_;
  const ServerOptions options_;

  /// Lock-free submit path: producers and dispatchers meet only in the
  /// ring. The mutex/condvar pair below is *parking only* — dispatchers
  /// sleep there when the ring stays empty, and Submit wakes them via the
  /// sleepers_ handshake (seq_cst on both sides, so an enqueue and a
  /// park decision can never miss each other).
  MpmcRingQueue<Request> queue_;
  std::atomic<bool> shutdown_{false};
  std::atomic<size_t> sleepers_{0};
  /// Submits currently between entry and return. Stop waits for this to
  /// reach zero after joining the dispatchers, so its final ring sweep
  /// provably sees every request a racing Submit managed to push — a
  /// promise is never dropped unfulfilled.
  std::atomic<size_t> inflight_submits_{0};
  std::mutex park_mu_;
  std::condition_variable park_cv_;

  /// Per-instance fulfill-latency histogram (always on — the Stats()
  /// shim's data source even when the global obs layer is disabled) plus
  /// plain atomic totals. No mutex anywhere on the fulfill path; bounded
  /// memory by construction (fixed buckets, not a sample window).
  obs::Histogram fulfill_latency_us_;
  std::atomic<size_t> completed_{0};
  std::atomic<size_t> rejected_{0};
  std::atomic<size_t> batches_{0};
  std::atomic<size_t> batched_requests_{0};
  Timer uptime_;

  ThreadPool pool_;
  std::thread launcher_;
};

}  // namespace rmi::serving

#endif  // RMI_SERVING_SERVER_H_
