#include "serving/epoch.h"

#include <algorithm>

#include "common/check.h"
#include "obs/metrics.h"

namespace rmi::serving {

namespace {

// Process-wide epoch series, aggregated over every domain. The deferred
// count of the *global* domain additionally gets its own callback gauge
// (registered in Global()).
struct EpochMetrics {
  obs::Counter& retired = obs::GetCounter(
      "rmi_epoch_retired_total", "Objects handed to deferred reclamation");
  obs::Counter& reclaimed = obs::GetCounter(
      "rmi_epoch_reclaimed_total",
      "Deferred objects released after all pinned readers left");
  obs::Histogram& pin_us = obs::GetHistogram(
      "rmi_epoch_pin_duration_us",
      "Outermost pin hold time per thread, microseconds");

  static EpochMetrics& Get() {
    static EpochMetrics* m = new EpochMetrics();
    return *m;
  }
};

// Domains are identified by a process-unique id, not their address: a
// thread's cached slot claim must never be mistaken for a claim on a
// *different* domain that happens to be allocated at a recycled address
// (stack-local test domains make this a real scenario, and a mistaken
// match would let two threads share one slot).
std::atomic<uint64_t> g_next_domain_id{1};

struct ThreadClaim {
  uint64_t domain_id = 0;
  size_t slot = 0;
  uint64_t depth = 0;
  /// Outermost-pin start stamp (0 when unpinned or obs disabled at pin
  /// time) — feeds the pin-duration histogram on the matching Exit.
  double pin_start_us = 0.0;
};

// This thread's slot claims across every domain it has ever pinned.
// Almost always length 1 (the global domain), so linear search is free.
// Claims persist for the thread's lifetime — a slot, once handed to a
// thread, is that thread's forever; an exited thread's slot simply stays
// kIdle. With kMaxSlots = 256 that supports far more pinning threads than
// any pool here creates.
thread_local std::vector<ThreadClaim> t_claims;

ThreadClaim* FindClaim(uint64_t domain_id) {
  for (ThreadClaim& claim : t_claims) {
    if (claim.domain_id == domain_id) return &claim;
  }
  return nullptr;
}

}  // namespace

EpochDomain::EpochDomain()
    : id_(g_next_domain_id.fetch_add(1, std::memory_order_relaxed)) {}

EpochDomain& EpochDomain::Global() {
  static EpochDomain domain;
  // Scrape-time depth of the global retire list. Registered once, here,
  // because only the global domain is process-lifetime (stack-local test
  // domains must not leave dangling callbacks behind).
  static const bool registered = [] {
    obs::Registry::Global().SetCallbackGauge(
        "rmi_epoch_deferred_objects",
        "Retired objects awaiting reclamation in the global domain",
        [] { return static_cast<double>(Global().retired_count()); });
    return true;
  }();
  (void)registered;
  return domain;
}

size_t EpochDomain::SlotIndexForThisThread() {
  ThreadClaim* claim = FindClaim(id_);
  if (claim == nullptr) {
    const size_t slot = next_slot_.fetch_add(1, std::memory_order_relaxed);
    RMI_CHECK_LT(slot, kMaxSlots);
    t_claims.push_back(ThreadClaim{id_, slot, 0});
    claim = &t_claims.back();
  }
  return claim->slot;
}

void EpochDomain::Enter() {
  const size_t slot = SlotIndexForThisThread();
  ThreadClaim* claim = FindClaim(id_);
  if (claim->depth++ == 0) {
    // Publish the pin before any caller dereferences the protected
    // pointer. Storing a possibly-stale epoch is safe: the global epoch
    // only grows, so the stored value is <= the epoch any subsequently
    // loaded pointer is retired under (see the ordering proof in the
    // header) — a smaller pin only defers reclamation longer.
    slots_[slot].epoch.store(global_epoch_.load(std::memory_order_seq_cst),
                             std::memory_order_seq_cst);
    claim->pin_start_us = obs::Enabled() ? obs::MonotonicUs() : 0.0;
  }
}

void EpochDomain::Exit() {
  ThreadClaim* claim = FindClaim(id_);
  RMI_CHECK(claim != nullptr && claim->depth > 0);
  if (--claim->depth == 0) {
    slots_[claim->slot].epoch.store(kIdle, std::memory_order_seq_cst);
    if (claim->pin_start_us > 0.0) {
      EpochMetrics::Get().pin_us.Observe(obs::MonotonicUs() -
                                         claim->pin_start_us);
      claim->pin_start_us = 0.0;
    }
  }
}

uint64_t EpochDomain::MinActiveEpoch() const {
  const size_t used =
      std::min(next_slot_.load(std::memory_order_acquire), kMaxSlots);
  uint64_t min_epoch = kIdle;
  for (size_t s = 0; s < used; ++s) {
    min_epoch =
        std::min(min_epoch, slots_[s].epoch.load(std::memory_order_seq_cst));
  }
  return min_epoch;
}

void EpochDomain::Retire(std::shared_ptr<const void> object) {
  if (object == nullptr) return;
  std::lock_guard<std::mutex> lock(retire_mu_);
  // Stamp with the epoch every holder of `object` is pinned at or below,
  // then advance so future pins land above the stamp; the scan after the
  // advance (inside the reclaim pass) is what makes lagging readers
  // visible. retire_mu_ serializes concurrent publishers, so the
  // load-store pair cannot lose an advance.
  const uint64_t epoch = global_epoch_.load(std::memory_order_seq_cst);
  retired_.push_back(Retired{std::move(object), epoch});
  global_epoch_.store(epoch + 1, std::memory_order_seq_cst);
  EpochMetrics::Get().retired.Add();
  ReclaimLocked();
}

size_t EpochDomain::ReclaimNow() {
  std::lock_guard<std::mutex> lock(retire_mu_);
  ReclaimLocked();
  return retired_.size();
}

void EpochDomain::ReclaimLocked() {
  const uint64_t min_active = MinActiveEpoch();
  // kIdle (no pinned reader) compares above every stamp: everything goes.
  const size_t before = retired_.size();
  retired_.erase(std::remove_if(retired_.begin(), retired_.end(),
                                [min_active](const Retired& entry) {
                                  return entry.epoch < min_active;
                                }),
                 retired_.end());
  if (before != retired_.size()) {
    EpochMetrics::Get().reclaimed.Add(before - retired_.size());
  }
}

size_t EpochDomain::retired_count() const {
  std::lock_guard<std::mutex> lock(retire_mu_);
  return retired_.size();
}

uint64_t EpochDomain::PinnedEpochForTesting() const {
  const ThreadClaim* claim = FindClaim(id_);
  if (claim == nullptr || claim->depth == 0) return kIdle;
  return slots_[claim->slot].epoch.load(std::memory_order_seq_cst);
}

}  // namespace rmi::serving
