#include "serving/synthetic.h"

#include <algorithm>
#include <utility>

#include "common/check.h"
#include "common/missing.h"
#include "common/rng.h"
#include "geometry/geometry.h"

namespace rmi::serving {

namespace {

/// Floor-plane position of local AP `a` — the single deterministic
/// scatter shared by the one-floor map and the venue floors, so floors
/// are structurally alike.
geom::Point LocalApPosition(size_t a, size_t nx, size_t ny) {
  return {double((a * 7 + 1) % nx), double((a * 3 + 2) % ny)};
}

}  // namespace

rmap::RadioMap MakeSyntheticServingMap(size_t nx, size_t ny, size_t num_aps,
                                       uint64_t seed) {
  rmap::RadioMap map(num_aps);
  std::vector<geom::Point> ap_pos;
  for (size_t a = 0; a < num_aps; ++a) {
    ap_pos.push_back(LocalApPosition(a, nx, ny));
  }
  Rng rng(seed);
  for (size_t y = 0; y < ny; ++y) {
    for (size_t x = 0; x < nx; ++x) {
      rmap::Record r;
      r.rssi.resize(num_aps);
      const geom::Point pos{double(x), double(y)};
      for (size_t a = 0; a < num_aps; ++a) {
        const double d = geom::Distance(pos, ap_pos[a]);
        r.rssi[a] = ClampRssi(-28.0 - 2.1 * d + rng.Uniform(-1.5, 1.5));
      }
      r.has_rp = true;
      r.rp = pos;
      r.time = double(y * nx + x);
      r.path_id = y;
      map.Add(r);
    }
  }
  return map;
}

la::Matrix MakeSyntheticQueries(const rmap::RadioMap& map, size_t count,
                                double null_fraction, uint64_t seed) {
  Rng rng(seed);
  la::Matrix q(count, map.num_aps());
  for (size_t i = 0; i < count; ++i) {
    const rmap::Record& r = map.record(rng.Index(map.size()));
    size_t observed = 0;
    for (size_t j = 0; j < map.num_aps(); ++j) {
      if (rng.Bernoulli(null_fraction)) {
        q(i, j) = kNull;
      } else {
        q(i, j) = ClampRssi(r.rssi[j] + rng.Uniform(-2.0, 2.0));
        ++observed;
      }
    }
    if (observed == 0) q(i, 0) = ClampRssi(r.rssi[0]);  // never all-null
  }
  return q;
}

std::vector<double> MatrixRow(const la::Matrix& m, size_t i) {
  std::vector<double> row(m.cols());
  for (size_t j = 0; j < m.cols(); ++j) row[j] = m(i, j);
  return row;
}

std::vector<VenueShard> MakeSyntheticVenue(const VenueOptions& options) {
  const size_t floors = options.floors_per_building;
  const size_t per_floor = options.aps_per_floor;
  const size_t num_shards = options.num_buildings * floors;
  const size_t num_aps = num_shards * per_floor;
  Rng rng(options.seed);

  std::vector<VenueShard> shards;
  shards.reserve(num_shards);
  for (size_t b = 0; b < options.num_buildings; ++b) {
    for (size_t f = 0; f < floors; ++f) {
      const size_t s = b * floors + f;
      VenueShard shard;
      shard.id = rmap::ShardId{int32_t(b), int32_t(f)};

      // Audible APs: the floor's own block at full strength, plus the
      // first bleed_aps of each vertically adjacent floor, attenuated.
      // (global AP index, extra path loss dB)
      std::vector<std::pair<size_t, double>> audible;
      for (size_t a = 0; a < per_floor; ++a) {
        audible.emplace_back(s * per_floor + a, 0.0);
      }
      for (int df : {-1, 1}) {
        const int nf = int(f) + df;
        if (nf < 0 || nf >= int(floors)) continue;
        const size_t ns = b * floors + size_t(nf);
        for (size_t a = 0; a < std::min(options.bleed_aps, per_floor); ++a) {
          audible.emplace_back(ns * per_floor + a,
                               options.floor_attenuation_db);
        }
      }

      rmap::RadioMap map(num_aps);
      map.set_shard(shard.id);
      for (size_t y = 0; y < options.ny; ++y) {
        for (size_t x = 0; x < options.nx; ++x) {
          rmap::Record r;
          r.rssi.assign(num_aps, kMnarFillDbm);
          const geom::Point pos{double(x), double(y)};
          for (const auto& [ap, attenuation] : audible) {
            const geom::Point ap_pos =
                LocalApPosition(ap % per_floor, options.nx, options.ny);
            const double d = geom::Distance(pos, ap_pos);
            r.rssi[ap] = ClampRssi(-28.0 - 2.1 * d - attenuation +
                                   rng.Uniform(-1.5, 1.5));
          }
          r.has_rp = true;
          r.rp = pos;
          r.time = double(y * options.nx + x);
          r.path_id = y;
          map.Add(r);
        }
      }
      shard.map = std::move(map);
      shard.audible_aps.reserve(audible.size());
      for (const auto& [ap, attenuation] : audible) {
        shard.audible_aps.push_back(ap);
      }
      std::sort(shard.audible_aps.begin(), shard.audible_aps.end());
      shards.push_back(std::move(shard));
    }
  }
  return shards;
}

VenueQuerySet MakeVenueQueries(const std::vector<VenueShard>& shards,
                               size_t count, double null_fraction,
                               uint64_t seed) {
  RMI_CHECK(!shards.empty());
  const size_t num_aps = shards.front().map.num_aps();
  Rng rng(seed);

  // Per-shard audibility bitmap for O(1) lookups.
  std::vector<std::vector<uint8_t>> audible(shards.size());
  for (size_t s = 0; s < shards.size(); ++s) {
    audible[s].assign(num_aps, 0);
    for (size_t ap : shards[s].audible_aps) audible[s][ap] = 1;
  }

  VenueQuerySet set;
  set.queries = la::Matrix(count, num_aps, kNull);
  set.shard.reserve(count);
  set.position.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    const size_t s = rng.Index(shards.size());
    const rmap::RadioMap& map = shards[s].map;
    const rmap::Record& r = map.record(rng.Index(map.size()));
    size_t observed = 0;
    size_t first_audible = num_aps;
    for (size_t j = 0; j < num_aps; ++j) {
      if (!audible[s][j]) continue;  // the device cannot hear this AP
      if (first_audible == num_aps) first_audible = j;
      if (rng.Bernoulli(null_fraction)) continue;
      set.queries(i, j) = ClampRssi(r.rssi[j] + rng.Uniform(-2.0, 2.0));
      ++observed;
    }
    if (observed == 0) {  // never all-null
      set.queries(i, first_audible) = ClampRssi(r.rssi[first_audible]);
    }
    set.shard.push_back(shards[s].id);
    set.position.push_back(r.rp);
  }
  return set;
}

}  // namespace rmi::serving
