#include "serving/synthetic.h"

#include "common/missing.h"
#include "common/rng.h"
#include "geometry/geometry.h"

namespace rmi::serving {

rmap::RadioMap MakeSyntheticServingMap(size_t nx, size_t ny, size_t num_aps,
                                       uint64_t seed) {
  rmap::RadioMap map(num_aps);
  std::vector<geom::Point> ap_pos;
  for (size_t a = 0; a < num_aps; ++a) {
    ap_pos.emplace_back(double((a * 7 + 1) % nx), double((a * 3 + 2) % ny));
  }
  Rng rng(seed);
  for (size_t y = 0; y < ny; ++y) {
    for (size_t x = 0; x < nx; ++x) {
      rmap::Record r;
      r.rssi.resize(num_aps);
      const geom::Point pos{double(x), double(y)};
      for (size_t a = 0; a < num_aps; ++a) {
        const double d = geom::Distance(pos, ap_pos[a]);
        r.rssi[a] = ClampRssi(-28.0 - 2.1 * d + rng.Uniform(-1.5, 1.5));
      }
      r.has_rp = true;
      r.rp = pos;
      r.time = double(y * nx + x);
      r.path_id = y;
      map.Add(r);
    }
  }
  return map;
}

la::Matrix MakeSyntheticQueries(const rmap::RadioMap& map, size_t count,
                                double null_fraction, uint64_t seed) {
  Rng rng(seed);
  la::Matrix q(count, map.num_aps());
  for (size_t i = 0; i < count; ++i) {
    const rmap::Record& r = map.record(rng.Index(map.size()));
    size_t observed = 0;
    for (size_t j = 0; j < map.num_aps(); ++j) {
      if (rng.Bernoulli(null_fraction)) {
        q(i, j) = kNull;
      } else {
        q(i, j) = ClampRssi(r.rssi[j] + rng.Uniform(-2.0, 2.0));
        ++observed;
      }
    }
    if (observed == 0) q(i, 0) = ClampRssi(r.rssi[0]);  // never all-null
  }
  return q;
}

std::vector<double> MatrixRow(const la::Matrix& m, size_t i) {
  std::vector<double> row(m.cols());
  for (size_t j = 0; j < m.cols(); ++j) row[j] = m(i, j);
  return row;
}

}  // namespace rmi::serving
