#include "serving/spatial_index.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"
#include "common/missing.h"
#include "common/topc.h"
#include "la/kernels.h"

namespace rmi::serving {

namespace {

/// Pruning safety margin: the lower bound goes through a sqrt, so give it
/// generous headroom before skipping a cell — visiting one extra cell is
/// cheap, wrongly skipping one breaks exactness.
constexpr double kPruneSlack = 1e-9;

size_t& LastScoredSlot() {
  thread_local size_t scored = 0;
  return scored;
}

}  // namespace

double QuerySquaredDistance(const std::vector<double>& query,
                            const la::Matrix& refs, size_t row) {
  RMI_CHECK_EQ(query.size(), refs.cols());
  // The one shared scoring loop (la::QuerySquaredDistance): the estimators'
  // scalar/batch paths and this index must sum identically for the pruned
  // path to equal brute force bit-for-bit.
  return la::QuerySquaredDistance(query.data(), refs, row);
}

std::vector<Neighbor> BruteForceKnn(const la::Matrix& refs,
                                    const std::vector<double>& query,
                                    size_t k) {
  std::vector<Neighbor> all;
  all.reserve(refs.rows());
  for (size_t i = 0; i < refs.rows(); ++i) {
    all.emplace_back(QuerySquaredDistance(query, refs, i), i);
  }
  const size_t take = std::min(k, all.size());
  std::partial_sort(all.begin(), all.begin() + static_cast<long>(take),
                    all.end());
  all.resize(take);
  return all;
}

void SpatialIndex::Build(const la::Matrix& refs,
                         const std::vector<geom::Point>& positions,
                         double cell_size_m) {
  RMI_CHECK_EQ(refs.rows(), positions.size());
  RMI_CHECK_GT(cell_size_m, 0.0);
  cells_.clear();
  slot_.clear();
  cell_size_m_ = cell_size_m;
  dim_ = refs.cols();
  num_refs_ = refs.rows();
  grid_cols_ = grid_rows_ = 0;
  min_x_ = min_y_ = 0.0;
  if (num_refs_ == 0) return;

  double min_x = positions[0].x, max_x = positions[0].x;
  double min_y = positions[0].y, max_y = positions[0].y;
  for (const geom::Point& p : positions) {
    min_x = std::min(min_x, p.x);
    max_x = std::max(max_x, p.x);
    min_y = std::min(min_y, p.y);
    max_y = std::max(max_y, p.y);
  }
  min_x_ = min_x;
  min_y_ = min_y;
  grid_cols_ = std::max<size_t>(
      1, static_cast<size_t>(std::ceil((max_x - min_x) / cell_size_m)) + 1);
  grid_rows_ = std::max<size_t>(
      1, static_cast<size_t>(std::ceil((max_y - min_y) / cell_size_m)) + 1);
  slot_.assign(grid_rows_ * grid_cols_, -1);
  for (size_t i = 0; i < num_refs_; ++i) {
    size_t gx = static_cast<size_t>((positions[i].x - min_x) / cell_size_m);
    size_t gy = static_cast<size_t>((positions[i].y - min_y) / cell_size_m);
    gx = std::min(gx, grid_cols_ - 1);
    gy = std::min(gy, grid_rows_ - 1);
    int& s = slot_[gy * grid_cols_ + gx];
    if (s < 0) {
      s = static_cast<int>(cells_.size());
      cells_.emplace_back();
    }
    cells_[static_cast<size_t>(s)].members.push_back(i);
  }

  for (Cell& cell : cells_) RefreshCell(&cell, refs);
}

void SpatialIndex::RefreshCell(Cell* cell, const la::Matrix& refs) const {
  // Fingerprint-space centroid + covering radius over the members, summed
  // in member order (ascending row) so a refreshed cell is bit-equal to a
  // cold-built one.
  cell->centroid.assign(dim_, 0.0);
  for (size_t m : cell->members) {
    const double* row = refs.data().data() + m * dim_;
    for (size_t j = 0; j < dim_; ++j) cell->centroid[j] += row[j];
  }
  const double inv = 1.0 / static_cast<double>(cell->members.size());
  for (double& v : cell->centroid) v *= inv;
  double max_sq = 0.0;
  for (size_t m : cell->members) {
    const double* row = refs.data().data() + m * dim_;
    double s = 0.0;
    for (size_t j = 0; j < dim_; ++j) {
      const double d = row[j] - cell->centroid[j];
      s += d * d;
    }
    max_sq = std::max(max_sq, s);
  }
  cell->radius = std::sqrt(max_sq);
}

void SpatialIndex::BuildIncremental(const la::Matrix& refs,
                                    const std::vector<geom::Point>& positions,
                                    double cell_size_m,
                                    const SpatialIndex& previous,
                                    const std::vector<size_t>& changed_rows) {
  RMI_CHECK_EQ(refs.rows(), positions.size());
  RMI_CHECK_GT(cell_size_m, 0.0);
  const size_t n = refs.rows();

  // Reuse is only sound when the assignment function old rows were
  // bucketed under is unchanged: same pitch, same feature width, same
  // bounding-box origin and grid dimensions over the *new* position set,
  // and no surviving row vanished. Anything else — including a new RP
  // stretching the bounding box — shifts assignments, so build cold.
  bool reusable = previous.num_refs_ > 0 && n >= previous.num_refs_ &&
                  previous.cell_size_m_ == cell_size_m &&
                  previous.dim_ == refs.cols();
  if (reusable) {
    double min_x = positions[0].x, max_x = positions[0].x;
    double min_y = positions[0].y, max_y = positions[0].y;
    for (const geom::Point& p : positions) {
      min_x = std::min(min_x, p.x);
      max_x = std::max(max_x, p.x);
      min_y = std::min(min_y, p.y);
      max_y = std::max(max_y, p.y);
    }
    const size_t cols = std::max<size_t>(
        1, static_cast<size_t>(std::ceil((max_x - min_x) / cell_size_m)) + 1);
    const size_t rows = std::max<size_t>(
        1, static_cast<size_t>(std::ceil((max_y - min_y) / cell_size_m)) + 1);
    reusable = min_x == previous.min_x_ && min_y == previous.min_y_ &&
               cols == previous.grid_cols_ && rows == previous.grid_rows_;
  }
  size_t appended_listed = 0;
  for (size_t i = 0; reusable && i < changed_rows.size(); ++i) {
    if (changed_rows[i] >= n ||
        (i > 0 && changed_rows[i] <= changed_rows[i - 1])) {
      reusable = false;  // out of range or not strictly ascending
    } else if (changed_rows[i] >= previous.num_refs_) {
      ++appended_listed;
    }
  }
  // Every appended row must be listed, or it would never join a cell.
  // Strictly-ascending entries in [num_refs, n) counting n - num_refs
  // means they are exactly the appended rows.
  if (appended_listed != n - previous.num_refs_) reusable = false;
  if (!reusable) {
    Build(refs, positions, cell_size_m);
    return;
  }

  cells_ = previous.cells_;
  slot_ = previous.slot_;
  cell_size_m_ = cell_size_m;
  dim_ = previous.dim_;
  num_refs_ = n;
  min_x_ = previous.min_x_;
  min_y_ = previous.min_y_;
  grid_cols_ = previous.grid_cols_;
  grid_rows_ = previous.grid_rows_;

  // Changed surviving rows are already members of their cell (an RP label
  // never moves); appended rows are inserted in ascending order, which is
  // exactly where a cold Build would have put them. Either way the cell's
  // summary is stale, so collect and refresh the touched cells.
  std::vector<size_t> affected;
  for (size_t r : changed_rows) {
    size_t gx = static_cast<size_t>((positions[r].x - min_x_) / cell_size_m);
    size_t gy = static_cast<size_t>((positions[r].y - min_y_) / cell_size_m);
    gx = std::min(gx, grid_cols_ - 1);
    gy = std::min(gy, grid_rows_ - 1);
    int& s = slot_[gy * grid_cols_ + gx];
    if (s < 0) {
      s = static_cast<int>(cells_.size());
      cells_.emplace_back();
    }
    if (r >= previous.num_refs_) {
      cells_[static_cast<size_t>(s)].members.push_back(r);
    }
    affected.push_back(static_cast<size_t>(s));
  }
  std::sort(affected.begin(), affected.end());
  affected.erase(std::unique(affected.begin(), affected.end()),
                 affected.end());
  for (size_t c : affected) RefreshCell(&cells_[c], refs);
}

size_t SpatialIndex::last_scored() { return LastScoredSlot(); }

std::vector<Neighbor> SpatialIndex::Search(const la::Matrix& refs,
                                           const std::vector<double>& query,
                                           size_t k) const {
  RMI_CHECK_EQ(refs.rows(), num_refs_);
  RMI_CHECK_EQ(query.size(), dim_);
  // Boundary contracts (matching BruteForceKnn): an empty index or k == 0
  // has nothing to return; k >= num_refs degrades to scoring every row.
  const size_t take = std::min(k, num_refs_);
  if (take == 0) {
    LastScoredSlot() = 0;
    return {};
  }
  RMI_CHECK_EQ(refs.cols(), dim_);

  // Cells in increasing lower bound.
  std::vector<std::pair<double, size_t>> order;  // (lb^2, cell)
  order.reserve(cells_.size());
  for (size_t c = 0; c < cells_.size(); ++c) {
    const Cell& cell = cells_[c];
    double s = 0.0;
    for (size_t j = 0; j < dim_; ++j) {
      if (IsNull(query[j])) continue;
      const double d = query[j] - cell.centroid[j];
      s += d * d;
    }
    const double lb = std::max(0.0, std::sqrt(s) - cell.radius);
    order.emplace_back(lb * lb, c);
  }
  std::sort(order.begin(), order.end());

  // Streaming best-`take` by (distance, index) pair order, kept in a
  // sorted sentinel-filled buffer (branchless bubble insert — cheaper than
  // a heap at KNN-sized k); worst() is the retained-candidate boundary,
  // +inf until `take` rows have been scored (which disables pruning, as
  // the half-full heap did).
  StreamingTopC<Neighbor> best(
      take, Neighbor(std::numeric_limits<double>::infinity(),
                     std::numeric_limits<size_t>::max()));
  size_t scored = 0;
  for (const auto& [lb_sq, c] : order) {
    if (lb_sq > best.worst().first * (1.0 + kPruneSlack) + kPruneSlack) {
      break;  // sorted: no later cell can beat the worst retained candidate
    }
    for (size_t m : cells_[c].members) {
      best.Push(Neighbor(QuerySquaredDistance(query, refs, m), m));
      ++scored;
    }
  }
  LastScoredSlot() = scored;
  return best.Take();
}

store::GridImage SpatialIndex::Image() const {
  store::GridImage img;
  img.cell_size_m = cell_size_m_;
  img.min_x = min_x_;
  img.min_y = min_y_;
  img.dim = dim_;
  img.num_refs = num_refs_;
  img.grid_cols = grid_cols_;
  img.grid_rows = grid_rows_;
  img.slot.reserve(slot_.size());
  for (int s : slot_) img.slot.push_back(static_cast<int32_t>(s));
  img.cell_offsets.reserve(cells_.size() + 1);
  img.cell_offsets.push_back(0);
  img.centroids.reserve(cells_.size() * dim_);
  img.radii.reserve(cells_.size());
  for (const Cell& cell : cells_) {
    for (size_t m : cell.members) {
      img.members.push_back(static_cast<uint32_t>(m));
    }
    img.cell_offsets.push_back(img.members.size());
    img.centroids.insert(img.centroids.end(), cell.centroid.begin(),
                         cell.centroid.end());
    img.radii.push_back(cell.radius);
  }
  return img;
}

void SpatialIndex::Restore(const store::GridImage& image) {
  cell_size_m_ = image.cell_size_m;
  min_x_ = image.min_x;
  min_y_ = image.min_y;
  dim_ = image.dim;
  num_refs_ = image.num_refs;
  grid_cols_ = image.grid_cols;
  grid_rows_ = image.grid_rows;
  slot_.assign(image.slot.begin(), image.slot.end());
  cells_.clear();
  cells_.resize(image.num_cells());
  for (size_t c = 0; c < cells_.size(); ++c) {
    Cell& cell = cells_[c];
    const uint64_t begin = image.cell_offsets[c];
    const uint64_t end = image.cell_offsets[c + 1];
    cell.members.reserve(end - begin);
    for (uint64_t i = begin; i < end; ++i) {
      cell.members.push_back(image.members[i]);
    }
    cell.centroid.assign(image.centroids.begin() + c * image.dim,
                         image.centroids.begin() + (c + 1) * image.dim);
    cell.radius = image.radii[c];
  }
}

}  // namespace rmi::serving
