#include "serving/spatial_index.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"
#include "common/missing.h"
#include "common/topc.h"
#include "la/kernels.h"

namespace rmi::serving {

namespace {

/// Pruning safety margin: the lower bound goes through a sqrt, so give it
/// generous headroom before skipping a cell — visiting one extra cell is
/// cheap, wrongly skipping one breaks exactness.
constexpr double kPruneSlack = 1e-9;

size_t& LastScoredSlot() {
  thread_local size_t scored = 0;
  return scored;
}

}  // namespace

double QuerySquaredDistance(const std::vector<double>& query,
                            const la::Matrix& refs, size_t row) {
  RMI_CHECK_EQ(query.size(), refs.cols());
  // The one shared scoring loop (la::QuerySquaredDistance): the estimators'
  // scalar/batch paths and this index must sum identically for the pruned
  // path to equal brute force bit-for-bit.
  return la::QuerySquaredDistance(query.data(), refs, row);
}

std::vector<Neighbor> BruteForceKnn(const la::Matrix& refs,
                                    const std::vector<double>& query,
                                    size_t k) {
  std::vector<Neighbor> all;
  all.reserve(refs.rows());
  for (size_t i = 0; i < refs.rows(); ++i) {
    all.emplace_back(QuerySquaredDistance(query, refs, i), i);
  }
  const size_t take = std::min(k, all.size());
  std::partial_sort(all.begin(), all.begin() + static_cast<long>(take),
                    all.end());
  all.resize(take);
  return all;
}

void SpatialIndex::Build(const la::Matrix& refs,
                         const std::vector<geom::Point>& positions,
                         double cell_size_m) {
  RMI_CHECK_EQ(refs.rows(), positions.size());
  RMI_CHECK_GT(cell_size_m, 0.0);
  cells_.clear();
  cell_size_m_ = cell_size_m;
  dim_ = refs.cols();
  num_refs_ = refs.rows();
  if (num_refs_ == 0) return;

  double min_x = positions[0].x, max_x = positions[0].x;
  double min_y = positions[0].y, max_y = positions[0].y;
  for (const geom::Point& p : positions) {
    min_x = std::min(min_x, p.x);
    max_x = std::max(max_x, p.x);
    min_y = std::min(min_y, p.y);
    max_y = std::max(max_y, p.y);
  }
  const size_t cols = std::max<size_t>(
      1, static_cast<size_t>(std::ceil((max_x - min_x) / cell_size_m)) + 1);
  const size_t rows = std::max<size_t>(
      1, static_cast<size_t>(std::ceil((max_y - min_y) / cell_size_m)) + 1);
  std::vector<int> slot(rows * cols, -1);
  for (size_t i = 0; i < num_refs_; ++i) {
    size_t gx = static_cast<size_t>((positions[i].x - min_x) / cell_size_m);
    size_t gy = static_cast<size_t>((positions[i].y - min_y) / cell_size_m);
    gx = std::min(gx, cols - 1);
    gy = std::min(gy, rows - 1);
    int& s = slot[gy * cols + gx];
    if (s < 0) {
      s = static_cast<int>(cells_.size());
      cells_.emplace_back();
    }
    cells_[static_cast<size_t>(s)].members.push_back(i);
  }

  // Fingerprint-space centroid + covering radius per (non-empty) cell.
  for (Cell& cell : cells_) {
    cell.centroid.assign(dim_, 0.0);
    for (size_t m : cell.members) {
      const double* row = refs.data().data() + m * dim_;
      for (size_t j = 0; j < dim_; ++j) cell.centroid[j] += row[j];
    }
    const double inv = 1.0 / static_cast<double>(cell.members.size());
    for (double& v : cell.centroid) v *= inv;
    double max_sq = 0.0;
    for (size_t m : cell.members) {
      const double* row = refs.data().data() + m * dim_;
      double s = 0.0;
      for (size_t j = 0; j < dim_; ++j) {
        const double d = row[j] - cell.centroid[j];
        s += d * d;
      }
      max_sq = std::max(max_sq, s);
    }
    cell.radius = std::sqrt(max_sq);
  }
}

size_t SpatialIndex::last_scored() { return LastScoredSlot(); }

std::vector<Neighbor> SpatialIndex::Search(const la::Matrix& refs,
                                           const std::vector<double>& query,
                                           size_t k) const {
  RMI_CHECK_EQ(refs.rows(), num_refs_);
  RMI_CHECK_EQ(query.size(), dim_);
  // Boundary contracts (matching BruteForceKnn): an empty index or k == 0
  // has nothing to return; k >= num_refs degrades to scoring every row.
  const size_t take = std::min(k, num_refs_);
  if (take == 0) {
    LastScoredSlot() = 0;
    return {};
  }
  RMI_CHECK_EQ(refs.cols(), dim_);

  // Cells in increasing lower bound.
  std::vector<std::pair<double, size_t>> order;  // (lb^2, cell)
  order.reserve(cells_.size());
  for (size_t c = 0; c < cells_.size(); ++c) {
    const Cell& cell = cells_[c];
    double s = 0.0;
    for (size_t j = 0; j < dim_; ++j) {
      if (IsNull(query[j])) continue;
      const double d = query[j] - cell.centroid[j];
      s += d * d;
    }
    const double lb = std::max(0.0, std::sqrt(s) - cell.radius);
    order.emplace_back(lb * lb, c);
  }
  std::sort(order.begin(), order.end());

  // Streaming best-`take` by (distance, index) pair order, kept in a
  // sorted sentinel-filled buffer (branchless bubble insert — cheaper than
  // a heap at KNN-sized k); worst() is the retained-candidate boundary,
  // +inf until `take` rows have been scored (which disables pruning, as
  // the half-full heap did).
  StreamingTopC<Neighbor> best(
      take, Neighbor(std::numeric_limits<double>::infinity(),
                     std::numeric_limits<size_t>::max()));
  size_t scored = 0;
  for (const auto& [lb_sq, c] : order) {
    if (lb_sq > best.worst().first * (1.0 + kPruneSlack) + kPruneSlack) {
      break;  // sorted: no later cell can beat the worst retained candidate
    }
    for (size_t m : cells_[c].members) {
      best.Push(Neighbor(QuerySquaredDistance(query, refs, m), m));
      ++scored;
    }
  }
  LastScoredSlot() = scored;
  return best.Take();
}

}  // namespace rmi::serving
