// Exact KNN candidate pruning for the serving layer.
//
// Reference points are bucketed on a uniform grid over their *locations*
// (nearby RPs hear similar APs, so a location cell is a tight cluster in
// fingerprint space too). Each cell precomputes the centroid of its member
// fingerprints and the radius max_i ||f_i - centroid||. A query visits
// cells in increasing triangle-inequality lower bound
//
//     lb(cell) = max(0, ||q - centroid|| - radius)
//
// and stops as soon as lb exceeds the current kth-best exact distance: no
// member of that cell (or of any later cell — they are sorted) can enter
// the top-k. Members of visited cells are scored with the same scalar
// distance loop brute force uses, so the returned set is *exactly* the
// brute-force KNN set, ties broken by (distance, index).
//
// Partial fingerprints (kNull entries) stay exact: the masked distance is
// the L2 norm of a coordinate subvector, so by the triangle inequality
// ||(q - f) o m|| >= ||(q - c) o m|| - ||(c - f) o m||, and the masked
// member term is bounded by the full-dimension radius.
#ifndef RMI_SERVING_SPATIAL_INDEX_H_
#define RMI_SERVING_SPATIAL_INDEX_H_

#include <cstddef>
#include <utility>
#include <vector>

#include "geometry/geometry.h"
#include "la/matrix.h"
#include "store/snapshot_format.h"

namespace rmi::serving {

/// Squared distance from `query` (length D, kNull allowed) to row `row` of
/// `refs` (complete), over the query's observed dimensions only. The shared
/// scoring loop of the index, the brute-force reference, and the tests.
double QuerySquaredDistance(const std::vector<double>& query,
                            const la::Matrix& refs, size_t row);

/// (squared distance, reference row) — ordered like the estimators order
/// candidates.
using Neighbor = std::pair<double, size_t>;

/// Brute-force exact KNN over every row of `refs`, ascending by
/// (distance, index). The reference implementation the index must match.
std::vector<Neighbor> BruteForceKnn(const la::Matrix& refs,
                                    const std::vector<double>& query,
                                    size_t k);

class SpatialIndex {
 public:
  SpatialIndex() = default;

  /// Builds the grid. `refs` is the R x D reference fingerprint matrix,
  /// `positions` the R reference locations (meters), `cell_size_m` the grid
  /// pitch. The matrix is not retained — Search takes it again, so the
  /// owner (a snapshot) keeps exactly one copy.
  void Build(const la::Matrix& refs, const std::vector<geom::Point>& positions,
             double cell_size_m);

  /// Incremental rebuild for the live-update loop: `previous` indexed the
  /// first `previous.num_refs()` rows of (`refs`, `positions`), and only
  /// the rows in `changed_rows` (ascending; appended rows included) carry
  /// different fingerprint values now — positions of surviving rows are
  /// unchanged (an RP label never moves; only its imputed RSSIs do).
  /// Copies the grid and refreshes just the cells a changed row touches:
  /// the result is *identical* to a cold Build — same cells, same member
  /// order, bit-equal centroids — because unchanged cells see the same
  /// members in the same order. Falls back to a cold Build whenever the
  /// grid geometry moved (a new RP outside the old bounding box, different
  /// pitch or width) or `previous` is empty.
  void BuildIncremental(const la::Matrix& refs,
                        const std::vector<geom::Point>& positions,
                        double cell_size_m, const SpatialIndex& previous,
                        const std::vector<size_t>& changed_rows);

  /// Exact KNN of `query` (kNull entries allowed), identical to
  /// BruteForceKnn(refs, query, k) — including at the boundaries: k >=
  /// the reference count returns every row ascending by (distance, index),
  /// and k == 0 or an empty index returns an empty set. `refs` must be the
  /// matrix Build saw.
  std::vector<Neighbor> Search(const la::Matrix& refs,
                               const std::vector<double>& query,
                               size_t k) const;

  bool empty() const { return cells_.empty(); }
  size_t num_cells() const { return cells_.size(); }
  size_t num_refs() const { return num_refs_; }
  double cell_size_m() const { return cell_size_m_; }

  /// Rows scored by the last Search on this thread, for prune-rate
  /// diagnostics (thread-local; benches read it right after a Search).
  static size_t last_scored();

  /// Flattens the grid into the persistence layer's POD image (cell order
  /// and member order preserved, so Restore() reproduces this index
  /// bit-for-bit — including the summation-order-sensitive centroids).
  store::GridImage Image() const;

  /// Rebuilds the index from a persisted image — the restart path that
  /// skips the grid build entirely. The image must describe the same
  /// reference set the caller serves (row count is checked at use via
  /// Search's contract).
  void Restore(const store::GridImage& image);

 private:
  struct Cell {
    std::vector<size_t> members;     ///< reference rows in this cell
    std::vector<double> centroid;    ///< fingerprint-space centroid (D)
    double radius = 0.0;             ///< max member distance to centroid
  };

  /// Recomputes `cell`'s centroid and covering radius from its members.
  void RefreshCell(Cell* cell, const la::Matrix& refs) const;

  std::vector<Cell> cells_;
  double cell_size_m_ = 0.0;
  size_t dim_ = 0;
  size_t num_refs_ = 0;
  /// Grid geometry (origin at the positions' bounding-box min corner) and
  /// the grid-slot -> cells_ map, retained so BuildIncremental can place a
  /// changed row without re-bucketing the world. Empty when num_refs_ == 0.
  double min_x_ = 0.0, min_y_ = 0.0;
  size_t grid_cols_ = 0, grid_rows_ = 0;
  std::vector<int> slot_;  ///< grid_rows_ * grid_cols_; -1 = empty cell
};

}  // namespace rmi::serving

#endif  // RMI_SERVING_SPATIAL_INDEX_H_
