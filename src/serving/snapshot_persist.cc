#include "serving/snapshot_persist.h"

#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <utility>

#include "common/check.h"
#include "obs/metrics.h"
#include "store/snapshot_format.h"

namespace rmi::serving {

namespace {

namespace fs = std::filesystem;

obs::Counter& RestoreRejected() {
  static obs::Counter* c = &obs::GetCounter(
      "rmi_store_restore_rejected_total",
      "Snapshot files refused at restore time (shard/width/ABI mismatch or "
      "missing base) — the shard fell back to a cold re-impute");
  return *c;
}

void SetError(std::string* error, const std::string& msg) {
  if (error != nullptr) *error = msg;
}

bool Reject(std::string* error, const std::string& msg) {
  RestoreRejected().Add();
  SetError(error, msg);
  return false;
}

/// Byte equality between the re-fitted estimator's quant tables and the
/// file's sections — the restore-time ABI check. QuantizeRefs is
/// deterministic, so a same-code re-fit over the mapped float refs must
/// reproduce the persisted tables exactly; any difference means the
/// writing process quantized differently than this one would, and serving
/// from the file could disagree with a heap rebuild.
bool QuantTablesMatch(const la::QuantizedRefs& fitted,
                      const la::QuantizedRefsSpan& mapped) {
  if (fitted.rows != mapped.rows || fitted.cols != mapped.cols ||
      fitted.padded != mapped.padded) {
    return false;
  }
  const size_t cells = fitted.cols * fitted.padded;
  return fitted.min_scale == mapped.min_scale &&
         fitted.max_scale == mapped.max_scale &&
         std::memcmp(fitted.values.data(), mapped.values,
                     cells * sizeof(int8_t)) == 0 &&
         std::memcmp(fitted.squares.data(), mapped.squares,
                     cells * sizeof(int16_t)) == 0 &&
         std::memcmp(fitted.norms.data(), mapped.norms,
                     fitted.rows * sizeof(int32_t)) == 0 &&
         std::memcmp(fitted.scale.data(), mapped.scale,
                     fitted.cols * sizeof(double)) == 0 &&
         std::memcmp(fitted.zero_point.data(), mapped.zero_point,
                     fitted.cols * sizeof(double)) == 0;
}

}  // namespace

bool PersistMapSnapshot(const MapSnapshot& snapshot,
                        const rmap::ShardId& shard,
                        const rmap::RadioMap& base, uint64_t wal_watermark,
                        const std::string& dir, std::string* error) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    SetError(error, "create_directories " + dir + ": " + ec.message());
    return false;
  }

  store::SnapshotWriteRequest req;
  req.snapshot_version = snapshot.version;
  req.shard = shard;
  req.wal_watermark = wal_watermark;
  req.num_refs = snapshot.num_refs();
  req.num_aps = snapshot.num_aps();
  if (snapshot.quantized != nullptr) {
    req.quant = snapshot.quantized->span();
  }
  req.refs = snapshot.fingerprints().data().data();
  req.positions = snapshot.positions.data();
  const store::GridImage grid = snapshot.index.Image();
  req.grid = &grid;
  req.base = &base;

  const std::string path =
      (fs::path(dir) / store::SnapshotFileName(snapshot.version)).string();
  return store::WriteSnapshotFile(path, req, error);
}

bool LoadNewestSnapshot(const std::string& dir,
                        const rmap::ShardId& expected_shard,
                        size_t expected_aps,
                        const std::function<std::unique_ptr<
                            positioning::LocationEstimator>()>&
                            estimator_factory,
                        Rng& rng, double cell_size_m,
                        positioning::RankingKernel ranking_kernel,
                        LoadedSnapshot* out, std::string* error) {
  std::string map_error;
  auto mapped = store::MapNewestValid(dir, &map_error);
  if (mapped == nullptr) {
    SetError(error, map_error);
    return false;
  }
  const store::SnapshotHeader& h = mapped->header();
  if (h.building != expected_shard.building ||
      h.floor != expected_shard.floor) {
    return Reject(error, mapped->path() + ": shard " +
                             rmap::ToString(rmap::ShardId{h.building,
                                                          h.floor}) +
                             " != expected " +
                             rmap::ToString(expected_shard));
  }
  if (h.num_aps != expected_aps) {
    return Reject(error, mapped->path() + ": width " +
                             std::to_string(h.num_aps) + " != expected " +
                             std::to_string(expected_aps));
  }
  rmap::RadioMap base;
  if (!mapped->DecodeBase(&base)) {
    return Reject(error, mapped->path() + ": no decodable base section");
  }

  // Reconstitute the estimator by synthesizing the complete reference map
  // the writing process fitted on (mapped refs + positions are exactly the
  // imputed labeled rows) and running the ordinary factory Fit. For the
  // KNN family this reproduces the fitted state bit-for-bit — verified
  // against the file's quant sections below.
  const store::MapSnapshotView view = mapped->view();
  rmap::RadioMap fit_map(h.num_aps);
  fit_map.set_shard(expected_shard);
  for (size_t r = 0; r < view.num_refs; ++r) {
    rmap::Record rec;
    rec.rssi.assign(view.refs + r * view.num_aps,
                    view.refs + (r + 1) * view.num_aps);
    rec.rp = view.positions[r];
    rec.has_rp = true;
    fit_map.Add(std::move(rec));
  }
  if (fit_map.empty()) {
    return Reject(error, mapped->path() + ": empty reference set");
  }

  auto estimator = estimator_factory();
  RMI_CHECK(estimator != nullptr);
  if (auto* knn =
          dynamic_cast<positioning::KnnEstimator*>(estimator.get())) {
    knn->set_ranking_kernel(ranking_kernel);
  }
  estimator->Fit(fit_map, rng);

  auto snapshot = std::make_shared<MapSnapshot>();
  snapshot->version = h.snapshot_version;
  snapshot->estimator = std::move(estimator);
  if (const auto* knn = dynamic_cast<const positioning::KnnEstimator*>(
          snapshot->estimator.get())) {
    // Same aliasing as BuildSnapshot: the snapshot borrows the fitted
    // state, no second copy.
    snapshot->fingerprint_view = &knn->features();
    snapshot->quantized = &knn->quantized();
    snapshot->positions = knn->labels();
    if (knn->features().rows() != view.num_refs ||
        std::memcmp(knn->features().data().data(), view.refs,
                    view.num_refs * view.num_aps * sizeof(double)) != 0) {
      return Reject(error,
                    mapped->path() + ": re-fitted reference matrix differs "
                                     "from the mapped float section");
    }
    if (view.has_quant() &&
        !QuantTablesMatch(knn->quantized(), view.quant)) {
      return Reject(error, mapped->path() +
                               ": quantization ABI mismatch (re-fit does "
                               "not reproduce the file's tables)");
    }
  } else {
    positioning::ExtractLabeledRows(fit_map, &snapshot->owned_fingerprints,
                                    &snapshot->positions);
    snapshot->fingerprint_view = &snapshot->owned_fingerprints;
  }

  store::GridImage grid;
  if (mapped->DecodeGrid(&grid) && !grid.empty() &&
      grid.num_refs == snapshot->num_refs()) {
    snapshot->index.Restore(grid);
  } else {
    snapshot->index.Build(snapshot->fingerprints(), snapshot->positions,
                          cell_size_m);
  }

  snapshot->backing = mapped;  // the mapping now lives as long as the snapshot
  snapshot->checksum = snapshot->ComputeChecksum();

  out->snapshot = std::move(snapshot);
  out->base = std::move(base);
  out->snapshot_version = h.snapshot_version;
  out->wal_watermark = h.wal_watermark;
  out->path = mapped->path();
  return true;
}

void PruneSnapshotFiles(const std::string& dir, size_t keep) {
  const std::vector<std::string> files = store::ListSnapshotFiles(dir);
  for (size_t i = std::max<size_t>(keep, 1); i < files.size(); ++i) {
    ::unlink(files[i].c_str());
  }
}

}  // namespace rmi::serving
