// Query execution against the current snapshot.
//
// Two paths, both exact:
//  * LocalizeBatch — the throughput path. All rows of a coalesced batch go
//    through the estimator's EstimateBatch; for the KNN family that is one
//    Gemm over the whole reference matrix (plus a masked second Gemm when
//    rows carry kNull), then an exact rescore of the top candidates.
//  * Localize — the latency path for a single query. For the KNN family the
//    spatial index prunes reference rows via its triangle-inequality bound
//    before the exact pass; other estimators fall back to Estimate.
//
// Every entry point grabs the snapshot once (epoch-pinned, no refcount
// traffic) and uses it for the whole request, so a concurrent hot-swap
// cannot mix two serving states inside one query.
#ifndef RMI_SERVING_BATCH_LOCALIZER_H_
#define RMI_SERVING_BATCH_LOCALIZER_H_

#include <memory>
#include <vector>

#include "geometry/geometry.h"
#include "la/matrix.h"
#include "serving/snapshot.h"

namespace rmi::serving {

/// nullptr when `fingerprint` (length `size`) is a well-formed query for
/// `snapshot`; otherwise a static reason string — wrong width, all-null
/// (no distance signal), or a partial scan against an estimator without
/// partial-fingerprint support. The single per-request validation rule:
/// the server rejects through the request's promise, the shard router
/// throws, both with this reason — a malformed query must never abort
/// the serving process.
const char* QueryValidationError(const MapSnapshot& snapshot,
                                 const double* fingerprint, size_t size);

/// Stateless query executor over a snapshot store.
///
/// Thread-safety: all entry points are const (or static) and safe to call
/// concurrently; each grabs one snapshot and never mutates it. Ownership:
/// the localizer borrows `store` (which must outlive it) and retains no
/// per-query state. Null-fingerprint semantics follow the estimator
/// contract: kNull entries are legal iff the snapshot's estimator
/// supports partial fingerprints, and all-null scans are rejected
/// (asserted).
class BatchLocalizer {
 public:
  /// `store` must outlive the localizer.
  explicit BatchLocalizer(const MapSnapshotStore* store) : store_(store) {}

  /// One fingerprint (kNull entries allowed) -> location. KNN family:
  /// spatial-index pruned exact KNN; others: scalar Estimate.
  geom::Point Localize(const std::vector<double>& fingerprint) const;

  /// B x D batch -> B locations via the estimator's batched path. All rows
  /// are answered from one snapshot.
  std::vector<geom::Point> LocalizeBatch(const la::Matrix& fingerprints) const;

  /// Same as LocalizeBatch but against an explicitly pinned snapshot (the
  /// server pins once per coalesced batch).
  static std::vector<geom::Point> LocalizeBatchOn(
      const MapSnapshot& snapshot, const la::Matrix& fingerprints);

  /// Single-query path against an explicitly pinned snapshot (the shard
  /// router pins per shard). Same exact-KNN pruning as Localize.
  static geom::Point LocalizeOn(const MapSnapshot& snapshot,
                                const std::vector<double>& fingerprint);

  std::shared_ptr<const MapSnapshot> snapshot() const {
    return store_->Current();
  }

 private:
  const MapSnapshotStore* store_;
};

}  // namespace rmi::serving

#endif  // RMI_SERVING_BATCH_LOCALIZER_H_
