#include "serving/server.h"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <utility>

#include "common/check.h"
#include "common/missing.h"
#include "common/stats.h"

namespace rmi::serving {

LocalizationServer::LocalizationServer(const MapSnapshotStore* store,
                                       const ServerOptions& options)
    : store_(store),
      options_(options),
      pool_(std::max<size_t>(1, options.num_workers)) {
  RMI_CHECK(store_ != nullptr);
  RMI_CHECK_GT(options_.max_batch, 0u);
  // The launcher owns the pool fan-out: ParallelFor(num_workers) hands each
  // pool worker exactly one DispatchLoop index and blocks (as worker 0, in
  // its own loop) until shutdown drains them all.
  launcher_ = std::thread([this] {
    pool_.ParallelFor(pool_.num_threads(),
                      [this](size_t /*worker*/, size_t /*index*/) {
                        DispatchLoop();
                      });
  });
}

LocalizationServer::~LocalizationServer() { Stop(); }

std::future<geom::Point> LocalizationServer::Submit(
    std::vector<double> fingerprint) {
  Request request;
  request.fingerprint = std::move(fingerprint);
  std::future<geom::Point> future = request.promise.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) {
      // A Submit racing a Stop is a benign shutdown condition, not a
      // programming error: reject just this request.
      request.promise.set_exception(std::make_exception_ptr(
          std::runtime_error("LocalizationServer is stopped")));
      std::lock_guard<std::mutex> stats_lock(stats_mu_);
      ++rejected_;
      return future;
    }
    queue_.push_back(std::move(request));
  }
  cv_.notify_one();
  return future;
}

void LocalizationServer::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  if (launcher_.joinable()) launcher_.join();
}

void LocalizationServer::DispatchLoop() {
  std::vector<Request> batch;
  while (true) {
    batch.clear();
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown and fully drained
      if (queue_.size() < options_.max_batch && !shutdown_) {
        // Coalescing window: trade a bounded latency bump for fuller
        // batches (more rows per Gemm).
        cv_.wait_for(
            lock,
            std::chrono::duration<double, std::micro>(options_.max_wait_us),
            [this] {
              return shutdown_ || queue_.size() >= options_.max_batch;
            });
      }
      const size_t take = std::min(options_.max_batch, queue_.size());
      batch.reserve(take);
      for (size_t i = 0; i < take; ++i) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
    }
    if (!batch.empty()) ProcessBatch(&batch);
  }
}

void LocalizationServer::ProcessBatch(std::vector<Request>* batch) {
  // Pin one snapshot for the whole batch — a hot-swap mid-batch must never
  // mix two serving states.
  const std::shared_ptr<const MapSnapshot> snap = store_->Current();
  RMI_CHECK(snap != nullptr);
  const size_t d = snap->num_aps();

  // Per-request validation (the rule shared with the shard router): a
  // malformed scan — wrong width (e.g. sized for a pre-hot-swap snapshot)
  // or all-null (no distance signal) — is rejected through its promise;
  // it must never abort the server.
  std::vector<size_t> valid;
  valid.reserve(batch->size());
  size_t num_rejected = 0;
  for (size_t i = 0; i < batch->size(); ++i) {
    Request& r = (*batch)[i];
    const char* reason = QueryValidationError(*snap, r.fingerprint.data(),
                                              r.fingerprint.size());
    if (reason != nullptr) {
      r.promise.set_exception(
          std::make_exception_ptr(std::runtime_error(reason)));
      ++num_rejected;
    } else {
      valid.push_back(i);
    }
  }

  std::vector<geom::Point> estimates;
  if (!valid.empty()) {
    la::Matrix queries(valid.size(), d);
    for (size_t v = 0; v < valid.size(); ++v) {
      const Request& r = (*batch)[valid[v]];
      std::copy(r.fingerprint.begin(), r.fingerprint.end(),
                queries.data().begin() + static_cast<long>(v * d));
    }
    estimates = BatchLocalizer::LocalizeBatchOn(*snap, queries);
  }

  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    latencies_us_.resize(std::min(kLatencyWindow,
                                  latencies_us_.size() + valid.size()));
    for (size_t i : valid) {
      latencies_us_[latency_next_] = (*batch)[i].enqueued.ElapsedSeconds() * 1e6;
      latency_next_ = (latency_next_ + 1) % kLatencyWindow;
    }
    completed_ += valid.size();
    rejected_ += num_rejected;
    ++batches_;
    batched_requests_ += batch->size();
  }
  for (size_t v = 0; v < valid.size(); ++v) {
    (*batch)[valid[v]].promise.set_value(estimates[v]);
  }
}

ServerStats LocalizationServer::Stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  ServerStats s;
  s.completed = completed_;
  s.rejected = rejected_;
  s.batches = batches_;
  s.mean_batch_size =
      batches_ == 0 ? 0.0
                    : static_cast<double>(batched_requests_) /
                          static_cast<double>(batches_);
  if (!latencies_us_.empty()) {
    s.p50_latency_us = Percentile(latencies_us_, 50.0);
    s.p95_latency_us = Percentile(latencies_us_, 95.0);
    s.p99_latency_us = Percentile(latencies_us_, 99.0);
  }
  const double uptime = uptime_.ElapsedSeconds();
  s.qps = uptime > 0.0 ? static_cast<double>(s.completed) / uptime : 0.0;
  return s;
}

}  // namespace rmi::serving
