#include "serving/server.h"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <utility>

#include "common/check.h"
#include "common/missing.h"

namespace rmi::serving {

namespace {

std::exception_ptr StoppedError() {
  return std::make_exception_ptr(
      std::runtime_error("LocalizationServer is stopped"));
}

/// Process-wide serving series. Handles are registered once and cached —
/// they are process-lifetime, so every LocalizationServer instance feeds
/// the same rmi_server_* series (per-instance numbers live in the
/// server's own atomics/histogram behind Stats()).
struct ServerMetrics {
  obs::Counter& completed = obs::GetCounter(
      "rmi_server_requests_total", "Requests answered across all servers");
  obs::Counter& rejected = obs::GetCounter(
      "rmi_server_rejected_total",
      "Requests rejected (malformed fingerprint or racing shutdown)");
  obs::Counter& batches = obs::GetCounter(
      "rmi_server_batches_total", "Coalesced dispatches executed");
  obs::Gauge& queue_depth = obs::GetGauge(
      "rmi_server_queue_depth",
      "Requests currently sitting in the submit ring (sharded +1/-1)");
  obs::Histogram& batch_size = obs::GetHistogram(
      "rmi_server_batch_size_requests", "Coalesced batch size per dispatch");
  obs::Histogram& stage_queue_us = obs::GetHistogram(
      "rmi_server_stage_queue_us",
      "Per-request wait from enqueue to batch start, microseconds");
  obs::Histogram& stage_rank_us = obs::GetHistogram(
      "rmi_server_stage_rank_us",
      "Batched estimator pass per dispatch, microseconds");
  obs::Histogram& fulfill_us = obs::GetHistogram(
      "rmi_server_fulfill_us",
      "Per-request enqueue-to-fulfill latency, microseconds");

  static ServerMetrics& Get() {
    static ServerMetrics* m = new ServerMetrics();
    return *m;
  }
};

}  // namespace

LocalizationServer::LocalizationServer(const MapSnapshotStore* store,
                                       const ServerOptions& options)
    : store_(store),
      options_(options),
      queue_(options.queue_capacity),
      pool_(std::max<size_t>(1, options.num_workers)) {
  RMI_CHECK(store_ != nullptr);
  RMI_CHECK_GT(options_.max_batch, 0u);
  RMI_CHECK_GT(options_.queue_capacity, 0u);
  // Touch the registry up front so the series exist in a scrape even
  // before the first request arrives.
  ServerMetrics::Get();
  // The launcher owns the pool fan-out: ParallelFor(num_workers) hands each
  // pool worker exactly one DispatchLoop index and blocks (as worker 0, in
  // its own loop) until shutdown drains them all.
  launcher_ = std::thread([this] {
    pool_.ParallelFor(pool_.num_threads(),
                      [this](size_t /*worker*/, size_t /*index*/) {
                        DispatchLoop();
                      });
  });
}

LocalizationServer::~LocalizationServer() { Stop(); }

std::future<geom::Point> LocalizationServer::Submit(
    std::vector<double> fingerprint) {
  // Entry/exit bracket Stop's drain handshake (see inflight_submits_).
  struct InflightGuard {
    std::atomic<size_t>& counter;
    ~InflightGuard() { counter.fetch_sub(1, std::memory_order_release); }
  };
  inflight_submits_.fetch_add(1, std::memory_order_seq_cst);
  InflightGuard guard{inflight_submits_};

  Request request;
  request.fingerprint = std::move(fingerprint);
  request.trace = obs::Tracer::Global().MaybeSample();
  if (request.trace != nullptr) request.trace->AddEvent("submit");
  std::future<geom::Point> future = request.promise.get_future();
  // Lock-free fast path: one TryPush. A full ring is backpressure — yield
  // until a dispatcher frees a cell (bounded memory under overload beats
  // an unbounded queue that hides it). Shutdown rejects rather than
  // blocks, here and inside the backpressure loop.
  while (true) {
    if (shutdown_.load(std::memory_order_acquire)) {
      // A Submit racing a Stop is a benign shutdown condition, not a
      // programming error: reject just this request.
      request.promise.set_exception(StoppedError());
      rejected_.fetch_add(1, std::memory_order_relaxed);
      ServerMetrics::Get().rejected.Add();
      return future;
    }
    if (queue_.TryPush(std::move(request))) break;
    std::this_thread::yield();
  }
  ServerMetrics::Get().queue_depth.Add(1.0);
  // Wake a parked dispatcher. The seq_cst fence orders our enqueue before
  // the sleepers_ read against the dispatcher's sleepers_ increment before
  // its empty-check: at least one side sees the other, so a request can
  // never be enqueued into a ring every dispatcher has decided is empty.
  std::atomic_thread_fence(std::memory_order_seq_cst);
  if (sleepers_.load(std::memory_order_relaxed) > 0) {
    {
      // An empty critical section serializes with the window between a
      // parking dispatcher's final check and its cv wait.
      std::lock_guard<std::mutex> lock(park_mu_);
    }
    park_cv_.notify_one();
  }
  return future;
}

void LocalizationServer::Stop() {
  shutdown_.store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(park_mu_);
  }
  park_cv_.notify_all();
  if (launcher_.joinable()) launcher_.join();
  // Dispatchers have exited. Wait out Submits that entered before the flag
  // flipped (they either pushed already or are about to reject
  // themselves), then reject anything that slipped into the ring after the
  // drain — a promise must never be dropped unfulfilled.
  while (inflight_submits_.load(std::memory_order_acquire) != 0) {
    std::this_thread::yield();
  }
  Request request;
  size_t swept = 0;
  while (queue_.TryPop(&request)) {
    request.promise.set_exception(StoppedError());
    obs::Tracer::Global().Finish(std::move(request.trace));
    ++swept;
  }
  if (swept > 0) {
    rejected_.fetch_add(swept, std::memory_order_relaxed);
    ServerMetrics& m = ServerMetrics::Get();
    m.rejected.Add(swept);
    m.queue_depth.Add(-static_cast<double>(swept));
  }
}

void LocalizationServer::ParkForWork(double max_park_us) {
  sleepers_.fetch_add(1, std::memory_order_seq_cst);
  // Dekker handshake, dispatcher side: the seq_cst fence orders our
  // sleepers_ increment before the emptiness re-check below against
  // Submit's enqueue-then-fence-then-read-sleepers sequence. In the
  // seq_cst total order at least one side sees the other — either we see
  // the ring non-empty and skip the wait, or the submitter sees
  // sleepers_ > 0 and rings the condvar. The RMW alone would not order
  // our later plain loads; the explicit fence does.
  std::atomic_thread_fence(std::memory_order_seq_cst);
  {
    std::unique_lock<std::mutex> lock(park_mu_);
    // The notify serializes with this critical section (Submit takes
    // park_mu_ before notifying), so it cannot fire between this check
    // and the wait.
    if (queue_.ApproxEmpty() && !shutdown_.load(std::memory_order_acquire)) {
      park_cv_.wait_for(
          lock, std::chrono::duration<double, std::micro>(max_park_us));
    }
  }
  sleepers_.fetch_sub(1, std::memory_order_relaxed);
}

bool LocalizationServer::WaitForWork() {
  while (queue_.ApproxEmpty()) {
    if (shutdown_.load(std::memory_order_acquire)) {
      // Drained and shutting down (producers are rejected once the flag
      // is up, so no new cell can appear after this check... except a
      // Submit that lost the race, which Stop sweeps after joining us).
      return false;
    }
    // The bound caps how long an idle dispatcher stays down if an OS-level
    // wakeup anomaly eats a notify; the handshake above makes a *lost*
    // wakeup impossible, so this is defense in depth, not load-bearing.
    ParkForWork(/*max_park_us=*/50000.0);
  }
  return true;
}

void LocalizationServer::DispatchLoop() {
  std::vector<Request> batch;
  Request request;
  while (true) {
    batch.clear();
    // Block for the first request of the next batch.
    while (!queue_.TryPop(&request)) {
      if (!WaitForWork()) return;
    }
    batch.push_back(std::move(request));
    // Coalescing window: trade a bounded latency bump for fuller batches
    // (more rows per Gemm). Pop whatever is there; once the ring runs
    // dry, park for the window's remainder (a Submit wakes us early)
    // rather than spinning it away.
    Timer window;
    while (batch.size() < options_.max_batch) {
      if (queue_.TryPop(&request)) {
        batch.push_back(std::move(request));
        continue;
      }
      const double remaining_us =
          options_.max_wait_us - window.ElapsedSeconds() * 1e6;
      if (shutdown_.load(std::memory_order_acquire) || remaining_us <= 0.0) {
        break;
      }
      ParkForWork(remaining_us);
    }
    ProcessBatch(&batch);
  }
}

void LocalizationServer::ProcessBatch(std::vector<Request>* batch) {
  ServerMetrics& metrics = ServerMetrics::Get();
  metrics.queue_depth.Add(-static_cast<double>(batch->size()));
  metrics.batch_size.Observe(static_cast<double>(batch->size()));
  // Queue-stage latency (enqueue -> batch start) per request. The clock
  // reads are gated: disabled observability pays nothing here.
  if (obs::Enabled()) {
    for (const Request& r : *batch) {
      metrics.stage_queue_us.Observe(r.enqueued.ElapsedSeconds() * 1e6);
    }
  }
  for (Request& r : *batch) {
    if (r.trace != nullptr) {
      r.trace->AddSpan("queue", 0.0, r.trace->ElapsedUs());
    }
  }

  // Pin one snapshot for the whole batch — a hot-swap mid-batch must never
  // mix two serving states. Epoch-pinned read: no refcount RMW per batch,
  // so dispatcher threads on different cores share no snapshot-access
  // cache line.
  const PinnedSnapshot snap = store_->PinnedRead();
  RMI_CHECK(snap.get() != nullptr);
  const size_t d = snap->num_aps();

  // Per-request validation (the rule shared with the shard router): a
  // malformed scan — wrong width (e.g. sized for a pre-hot-swap snapshot)
  // or all-null (no distance signal) — is rejected through its promise;
  // it must never abort the server.
  std::vector<size_t> valid;
  valid.reserve(batch->size());
  size_t num_rejected = 0;
  for (size_t i = 0; i < batch->size(); ++i) {
    Request& r = (*batch)[i];
    const char* reason = QueryValidationError(*snap, r.fingerprint.data(),
                                              r.fingerprint.size());
    if (reason != nullptr) {
      r.promise.set_exception(
          std::make_exception_ptr(std::runtime_error(reason)));
      obs::Tracer::Global().Finish(std::move(r.trace));
      ++num_rejected;
    } else {
      valid.push_back(i);
    }
  }

  std::vector<geom::Point> estimates;
  if (!valid.empty()) {
    la::Matrix queries(valid.size(), d);
    for (size_t v = 0; v < valid.size(); ++v) {
      const Request& r = (*batch)[valid[v]];
      std::copy(r.fingerprint.begin(), r.fingerprint.end(),
                queries.data().begin() + static_cast<long>(v * d));
    }
    {
      obs::ScopedStageTimer rank_timer(metrics.stage_rank_us);
      // Sampled traces see the same stage as a span (per-trace offsets).
      const bool any_trace = std::any_of(
          valid.begin(), valid.end(),
          [&](size_t i) { return (*batch)[i].trace != nullptr; });
      if (any_trace) {
        std::vector<double> span_starts(valid.size(), 0.0);
        for (size_t v = 0; v < valid.size(); ++v) {
          obs::Trace* t = (*batch)[valid[v]].trace.get();
          if (t != nullptr) span_starts[v] = t->ElapsedUs();
        }
        estimates = BatchLocalizer::LocalizeBatchOn(*snap, queries);
        for (size_t v = 0; v < valid.size(); ++v) {
          obs::Trace* t = (*batch)[valid[v]].trace.get();
          if (t != nullptr) {
            t->AddSpan("rank", span_starts[v],
                       t->ElapsedUs() - span_starts[v]);
          }
        }
      } else {
        estimates = BatchLocalizer::LocalizeBatchOn(*snap, queries);
      }
    }
  }

  // Lock-free accounting: per-instance atomics + member histogram (the
  // Stats() data source, ungated) and the process-wide registry series
  // (gated). No mutex anywhere on this path.
  completed_.fetch_add(valid.size(), std::memory_order_relaxed);
  rejected_.fetch_add(num_rejected, std::memory_order_relaxed);
  batches_.fetch_add(1, std::memory_order_relaxed);
  batched_requests_.fetch_add(batch->size(), std::memory_order_relaxed);
  metrics.completed.Add(valid.size());
  if (num_rejected > 0) metrics.rejected.Add(num_rejected);
  metrics.batches.Add();
  for (size_t v = 0; v < valid.size(); ++v) {
    Request& r = (*batch)[valid[v]];
    const double latency_us = r.enqueued.ElapsedSeconds() * 1e6;
    fulfill_latency_us_.ObserveUnconditional(latency_us);
    metrics.fulfill_us.Observe(latency_us);
    r.promise.set_value(estimates[v]);
    obs::Tracer::Global().Finish(std::move(r.trace));
  }
}

ServerStats LocalizationServer::Stats() const {
  ServerStats s;
  s.completed = completed_.load(std::memory_order_relaxed);
  s.rejected = rejected_.load(std::memory_order_relaxed);
  s.batches = batches_.load(std::memory_order_relaxed);
  const size_t batched = batched_requests_.load(std::memory_order_relaxed);
  s.mean_batch_size =
      s.batches == 0
          ? 0.0
          : static_cast<double>(batched) / static_cast<double>(s.batches);
  if (fulfill_latency_us_.Count() > 0) {
    s.p50_latency_us = fulfill_latency_us_.Percentile(50.0);
    s.p95_latency_us = fulfill_latency_us_.Percentile(95.0);
    s.p99_latency_us = fulfill_latency_us_.Percentile(99.0);
  }
  const double uptime = uptime_.ElapsedSeconds();
  s.qps = uptime > 0.0 ? static_cast<double>(s.completed) / uptime : 0.0;
  return s;
}

}  // namespace rmi::serving
