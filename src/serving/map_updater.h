// The live ingest -> impute -> publish loop behind sharded serving.
//
// MapUpdater owns each shard's *survey state* (the sparse record base plus
// a delta buffer of newly ingested observations) and runs the paper's
// offline pipeline — differentiate -> MNAR-fill -> impute -> fit — as an
// online background process: when a shard's pending delta volume or
// staleness threshold trips, the deltas are folded into the base, the
// merged map is re-imputed (any imputers/ backend, via the incremental
// entry point Imputer::ImputeIncremental with dirty-row propagation and
// the backend's warm-start state from the previous rebuild), a fresh
// estimator is fitted, and the rebuilt snapshot is published through the
// store's atomic hot-swap — in-flight queries never block and never
// observe a torn map.
//
// Threading model: Ingest is called from any number of threads (it only
// appends to a mutex-guarded delta buffer). Tripped shards rebuild
// *concurrently* on a bounded pool of `rebuild_threads` workers
// (common/thread_pool.h); per-shard ordering is preserved — each shard's
// rebuild_mu serializes its own rebuilds, and each rebuild drains the
// delta buffer atomically — while independent shards overlap freely.
// Every shard draws randomness from its own Rng stream seeded by
// (options.seed, shard id), so published snapshots are deterministic per
// (seed, shard) no matter how the pool schedules them. (Caveat for
// imputers that parallelize *internally*, e.g. BiSIM with num_threads !=
// 1: inside a multi-shard pool batch their nested pools collapse to one
// thread — ThreadPool's oversubscription guard — so their training
// results match the single-threaded reference there, while direct
// RebuildNow/RegisterShard/single-shard-trigger rebuilds train with the
// configured thread count; bit-reproducibility across those two paths
// requires an imputer with num_threads = 1, which is how the
// determinism tests run.) Rebuilds never hold the delta mutex during the
// long impute/fit phase, so ingest is never stalled by a rebuild. A
// rebuild whose impute/fit/publish pipeline throws is contained: the
// failure is counted (MapUpdaterStats::rebuilds_failed and the
// rmi_updater_rebuild_failures_total series), nothing is published, the
// shard keeps serving its previous snapshot, and the folded observations
// stay in the base for the next attempt — a faulty imputer never kills
// the trigger loop. Stop()
// is graceful: the in-flight rebuild batch runs to completion (and
// publishes) before the loop joins.
#ifndef RMI_SERVING_MAP_UPDATER_H_
#define RMI_SERVING_MAP_UPDATER_H_

#include <atomic>
#include <condition_variable>
#include <functional>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "clustering/differentiation.h"
#include "common/rng.h"
#include "common/timer.h"
#include "imputers/imputer.h"
#include "positioning/estimators.h"
#include "radiomap/radio_map.h"
#include "serving/shard_router.h"
#include "serving/snapshot.h"
#include "store/wal.h"

namespace rmi::serving {

struct MapUpdaterOptions {
  /// Volume trigger: rebuild once this many delta observations are pending.
  size_t min_new_observations = 64;
  /// Staleness trigger: rebuild when any deltas are pending and the last
  /// rebuild is older than this. Infinity = volume-only triggering.
  double max_staleness_seconds = std::numeric_limits<double>::infinity();
  /// Background trigger-loop poll period.
  double poll_interval_ms = 2.0;
  /// Spatial-index grid pitch of published snapshots, meters.
  double snapshot_cell_size_m = 6.0;
  /// Root seed of the per-shard RNG streams: shard S draws from an
  /// independent deterministic stream seeded by (seed, S), so concurrent
  /// rebuilds reproduce bit-for-bit regardless of pool scheduling.
  uint64_t seed = 127;
  /// Rebuild pool width: up to this many tripped shards rebuild
  /// concurrently (1 = serialized, the pre-pool behavior; 0 = all
  /// hardware threads).
  size_t rebuild_threads = 4;
  /// Incremental re-fit: offer each rebuild the previous imputation plus
  /// the imputer's warm-start state (dirty-row propagation / fine-tune —
  /// see Imputer::ImputeIncremental). false = every rebuild is cold.
  bool incremental = true;
  /// Dirty-row propagation knobs forwarded to ImputeIncremental.
  size_t dirty_neighbors = 8;
  double max_dirty_fraction = 0.6;
  /// Delta-aware differentiation (requires `incremental`): rows the
  /// previous rebuild already labeled reuse their previous mask verbatim
  /// (the survey base is append-only, so their observations are unchanged)
  /// and only the delta rows are differentiated. Exact for row-local
  /// differentiators (MAR-only / MNAR-only), an O(|delta|) approximation
  /// for clustering ones — see Differentiator::DifferentiateDelta.
  bool delta_aware_differentiation = true;
  /// Warm estimator re-fit (requires `incremental`): rebuilds pass the
  /// previous snapshot's fitted estimator plus the dirty-row set to
  /// LocationEstimator::FitWarm (RF: rotating-tree refresh; others: cold).
  bool estimator_warm_start = true;
  /// Incremental spatial-index rebuild (requires `incremental`): only the
  /// grid cells touching a dirty row are re-summarized; bit-identical to a
  /// cold build (SpatialIndex::BuildIncremental) or falls back to one.
  bool incremental_index = true;
  /// Persistence root. Empty (the default) = memory-only, the
  /// pre-persistence behavior bit-for-bit. Non-empty: shard (b, f) keeps
  /// its durable state under <persist_dir>/b<b>_f<f>/ — every publish
  /// writes a zero-copy snapshot file there, every Ingest appends to the
  /// shard's delta WAL (<shard dir>/wal/), and a fresh registration
  /// restores from that state instead of re-running imputation (see
  /// `restore_on_register`). Persistence I/O failures are contained: they
  /// are counted, and the in-memory serving path continues unaffected.
  std::string persist_dir;
  /// WAL group commit: fsync once per this many appends (1 = every
  /// append). The unsynced tail of a group — at most this many
  /// observations — is the crash-loss window.
  size_t wal_sync_every = 32;
  /// Snapshot files retained per shard after each publish (>= 1 enforced;
  /// the newest file is never pruned).
  size_t keep_snapshot_files = 2;
  /// When persistence is on: a *fresh* registration first tries to map the
  /// shard's newest valid snapshot and replay its WAL — publishing the
  /// restored snapshot (superseding the `base` argument, which the
  /// persisted base already contains) and queueing the replayed deltas —
  /// and falls back to the cold differentiate -> impute -> fit cycle when
  /// nothing valid exists. Re-registering an existing shard always wipes
  /// the shard's durable state and rebuilds cold (registration replaces
  /// the survey lineage; stale snapshot versions must not shadow it).
  bool restore_on_register = true;
};

/// Per-shard rebuild telemetry (all "last_" fields describe the most
/// recently completed rebuild of that shard).
struct RebuildStats {
  size_t completed = 0;
  /// Rebuilds that threw out of the impute/fit/publish pipeline. A failed
  /// rebuild publishes nothing — the shard keeps serving its previous
  /// snapshot — and the folded observations stay in the base for the next
  /// attempt.
  size_t failed = 0;
  /// Rebuilds that offered the imputer a warm-start context (previous
  /// imputation + state). The imputer may still have chosen the cold path
  /// internally (e.g. dirty set too large).
  size_t warm = 0;
  /// Rebuilds whose snapshot file was durably persisted (always <=
  /// completed; a persist I/O failure leaves the publish intact).
  size_t persisted = 0;
  double last_queue_wait_seconds = 0.0;  ///< trip detection -> worker start
  double last_impute_seconds = 0.0;   ///< differentiate + MNAR fill + impute
  double last_fit_seconds = 0.0;      ///< estimator fit + snapshot freeze
  double last_publish_seconds = 0.0;  ///< store hot-swap
  double last_persist_seconds = 0.0;  ///< snapshot file write + WAL trim
  double last_total_seconds = 0.0;    ///< impute + fit + publish (no queue)
  double total_busy_seconds = 0.0;    ///< cumulative last_total over all
};

struct MapUpdaterStats {
  size_t shards = 0;
  size_t ingested = 0;            ///< observations accepted by Ingest
  size_t rebuilds_started = 0;
  size_t rebuilds_completed = 0;  ///< each one published a snapshot
  /// Rebuilds whose pipeline threw (imputer/estimator failure). The
  /// trigger loop survives — the shard serves its previous snapshot and
  /// retries once its triggers trip again.
  size_t rebuilds_failed = 0;
  /// Snapshot files durably renamed in (0 when persistence is off).
  size_t snapshots_persisted = 0;
  /// Persist attempts that failed on I/O (the publish itself survived).
  size_t snapshot_persist_failures = 0;
  /// Delta records recovered from shard WALs at registration restore.
  size_t wal_records_replayed = 0;
  /// Fresh registrations served by a snapshot restore instead of a cold
  /// impute cycle.
  size_t shards_restored = 0;
  double last_rebuild_seconds = 0.0;  ///< differentiate+impute+fit+publish
  /// Queue-wait and phase breakdown per shard.
  std::map<rmap::ShardId, RebuildStats> per_shard;
};

/// Builds the (unfitted) estimator each rebuild publishes; called once per
/// rebuild so every snapshot owns a private fitted instance.
using EstimatorFactory =
    std::function<std::unique_ptr<positioning::LocationEstimator>()>;

class MapUpdater {
 public:
  /// `store`, `differentiator`, and `imputer` must outlive the updater and
  /// be non-null; the imputer and differentiator are shared const (their
  /// entry points are thread-safe by contract). The updater owns nothing
  /// it is handed except the per-shard survey state built up via
  /// RegisterShard/Ingest.
  MapUpdater(ShardedSnapshotStore* store,
             const cluster::Differentiator* differentiator,
             const imputers::Imputer* imputer, EstimatorFactory estimator_factory,
             const MapUpdaterOptions& options = {});
  ~MapUpdater();  ///< calls Stop()

  MapUpdater(const MapUpdater&) = delete;
  MapUpdater& operator=(const MapUpdater&) = delete;

  /// Adopts `base` (a sparse survey map; nulls welcome) as shard `id`'s
  /// record base, runs the first differentiate -> impute -> fit cycle
  /// synchronously, and publishes snapshot version 1. Re-registering an
  /// existing shard replaces its base (and resets its RNG stream and
  /// warm-start state) and republishes.
  void RegisterShard(const rmap::ShardId& id, rmap::RadioMap base);

  /// Appends one new survey observation (sparse RSSIs, RP optional) to the
  /// shard's delta buffer. Thread-safe; never blocks on a rebuild. Throws
  /// std::runtime_error for an unknown shard or a width mismatch — a bad
  /// feed must not abort the serving process.
  void Ingest(const rmap::ShardId& id, rmap::Record observation);

  /// Rebuilds `id` now with whatever deltas are pending (possibly none —
  /// a forced re-impute), publishing a new snapshot version. Returns false
  /// for an unknown shard. Runs on the calling thread.
  bool RebuildNow(const rmap::ShardId& id);

  /// Starts the background trigger loop (idempotent).
  void Start();
  /// Graceful shutdown: the rebuild batch in flight completes and
  /// publishes before the loop joins. Idempotent; the destructor calls it.
  void Stop();

  /// Deltas currently buffered for shard `id` (0 for unknown shards).
  size_t PendingObservations(const rmap::ShardId& id) const;

  MapUpdaterStats Stats() const;

 private:
  struct ShardState {
    std::mutex mu;                     ///< guards base, deltas, timestamps
    rmap::RadioMap base;               ///< sparse survey records
    std::vector<rmap::Record> deltas;  ///< ingested since the last rebuild
    /// Warm-start input for the imputer — shared_ptr so a rebuild grabs it
    /// under mu in O(1) instead of stalling Ingest behind a map copy;
    /// nullptr until the first incremental-mode rebuild publishes.
    std::shared_ptr<const rmap::RadioMap> last_imputed;
    /// Imputer warm-start blob from the last rebuild (guarded by mu).
    std::shared_ptr<const imputers::ImputerState> imputer_state;
    /// Pre-MNAR-fill differentiation mask of the last rebuild's working
    /// map (guarded by mu) — the reuse input of delta-aware
    /// differentiation. Saved before FillMnar: the fill flips kMnar cells
    /// to observed in place, which would poison reuse.
    std::shared_ptr<const rmap::MaskMatrix> last_mask;
    /// The snapshot the last rebuild published (guarded by mu) — warm
    /// input for FitWarm / BuildIncremental on the next rebuild.
    std::shared_ptr<const MapSnapshot> last_snapshot;
    Timer since_rebuild;
    /// Staleness tracking (guarded by mu): MonotonicUs() when the first
    /// delta of the current pending window arrived. The rebuild that
    /// drains the window observes publish-time minus this into
    /// rmi_updater_staleness_us — the "oldest unserved survey data" age
    /// the soak's freshness SLO gates on.
    double first_delta_us = 0.0;
    bool delta_pending = false;
    uint64_t next_version = 1;
    /// Durable-state root of this shard (<persist_dir>/b<b>_f<f>), empty
    /// when persistence is off. Written at registration (before the first
    /// rebuild, or under rebuild_mu on re-register), read under rebuild_mu.
    std::string shard_dir;
    /// The shard's delta WAL, nullptr when persistence is off (or its open
    /// failed — persistence degrades, serving continues). Append/Rotate
    /// run under mu; segment deletion runs under rebuild_mu only (it never
    /// touches the active segment).
    std::unique_ptr<store::Wal> wal;
    std::mutex rebuild_mu;  ///< one rebuild at a time per shard
    /// Per-shard RNG stream, seeded by (options.seed, shard id). Forked
    /// once per rebuild; accessed only under rebuild_mu.
    Rng rng{0};
    /// Registry handles for this shard's labeled series
    /// (rmi_updater_last_*_seconds{shard="..."}), resolved on the first
    /// rebuild and cached — handles are process-lifetime. Accessed only
    /// under rebuild_mu; Set is safe there (one writer per shard).
    obs::Gauge* last_impute_gauge = nullptr;
    obs::Gauge* last_fit_gauge = nullptr;
    obs::Gauge* last_publish_gauge = nullptr;
    obs::Counter* rebuilds_counter = nullptr;
  };

  ShardState* Find(const rmap::ShardId& id) const;
  void Rebuild(const rmap::ShardId& id, ShardState* state,
               double queue_wait_seconds = 0.0);
  void TriggerLoop();

  /// <persist_dir>/b<building>_f<floor> ("" when persistence is off).
  std::string ShardDir(const rmap::ShardId& id) const;
  /// Opens `state`'s WAL with the given replay watermark, queueing any
  /// replayed records as pending deltas. A failed open leaves wal null
  /// (persistence degrades, serving continues). Caller must hold exclusive
  /// access to the shard (registration, or rebuild_mu).
  void OpenShardWal(const rmap::ShardId& id, ShardState* state,
                    uint64_t watermark);
  /// The restore-on-register path: maps the newest valid snapshot, replays
  /// the WAL, publishes. False = nothing restored (caller rebuilds cold).
  bool TryRestoreShard(const rmap::ShardId& id, ShardState* state);

  ShardedSnapshotStore* store_;
  const cluster::Differentiator* differentiator_;
  const imputers::Imputer* imputer_;
  EstimatorFactory estimator_factory_;
  const MapUpdaterOptions options_;

  mutable std::mutex shards_mu_;  ///< guards the shard map itself
  std::map<rmap::ShardId, std::unique_ptr<ShardState>> shards_;

  mutable std::mutex stats_mu_;
  MapUpdaterStats stats_;

  std::mutex lifecycle_mu_;  ///< serializes Start/Stop (join included)
  std::mutex loop_mu_;
  std::condition_variable loop_cv_;
  bool stop_ = false;
  std::thread loop_;
};

}  // namespace rmi::serving

#endif  // RMI_SERVING_MAP_UPDATER_H_
