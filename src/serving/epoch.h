// Epoch-based reclamation for hot-swapped serving state.
//
// The per-query cost of `MapSnapshotStore::Current()` is an atomic
// `shared_ptr` load: on libstdc++ that is a spinlock-pool acquire plus a
// refcount increment/decrement pair, so every reader on every core bounces
// the same control-block cache line. The epoch scheme replaces that with
// two uncontended writes to a reader-private slot:
//
//   reader                          updater (publish path)
//   ------                          ----------------------
//   slot = global_epoch  (pin)      swap new snapshot into raw pointer
//   p = load raw pointer            retire(old): stamp with global_epoch,
//   ... dereference p ...                        append to retire list
//   slot = kIdle         (unpin)    advance global_epoch
//                                   reclaim retired entries whose stamp <
//                                     min(all pinned slots)
//
// Safety argument (all epoch/slot/pointer accesses are seq_cst): a reader
// orders its slot store *before* its pointer load; the updater orders the
// pointer swap *before* the epoch advance *before* the slot scan. Suppose
// a retired snapshot (stamped E, retired by the publish that advanced the
// epoch to E+1) were reclaimed while reader R still dereferences it. R
// obtained the doomed pointer, so R's pointer load preceded the updater's
// swap in the seq_cst total order; therefore R's slot store (epoch <= E)
// also preceded the swap, and every later slot scan — reclamation only
// runs after the advance — observes R pinned at <= E and keeps every
// entry stamped >= that slot. Contradiction: the entry survives until R
// unpins.
//
// Slots are claimed per thread on first pin and never migrate; each is
// cache-line padded so two readers never share a line. Pins nest (a
// thread-local depth counter keeps the outer epoch in place), and a Pin
// may be moved across frames but must be released on the thread that
// created it. Retired objects are type-erased `shared_ptr<const void>`, so
// anything published via `shared_ptr` can ride the same list — including
// objects slow-path callers still hold by `shared_ptr`, which simply delays
// their destructor past reclamation, never the reverse.
#ifndef RMI_SERVING_EPOCH_H_
#define RMI_SERVING_EPOCH_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

namespace rmi::serving {

/// One reclamation domain: a global epoch, a fixed array of reader slots,
/// and a batched retire list. All serving stores share Global() so a
/// single pin protects every raw pointer a query dereferences — including
/// ones pinned on a caller thread and dereferenced by pool workers, since
/// reclamation is gated on the *minimum* over all pinned slots, whichever
/// thread holds them.
class EpochDomain {
 public:
  static constexpr uint64_t kIdle = ~0ull;
  static constexpr size_t kMaxSlots = 256;

  /// The process-wide domain used by MapSnapshotStore/ShardedSnapshotStore.
  static EpochDomain& Global();

  EpochDomain();
  EpochDomain(const EpochDomain&) = delete;
  EpochDomain& operator=(const EpochDomain&) = delete;

  /// RAII pin: while alive, no object retired at or after the pinned epoch
  /// is reclaimed. Movable (e.g. returned inside PinnedSnapshot) but must
  /// stay on the pinning thread.
  class Pin {
   public:
    Pin() : domain_(nullptr) {}
    explicit Pin(EpochDomain* domain) : domain_(domain) { domain_->Enter(); }
    Pin(Pin&& other) noexcept : domain_(other.domain_) {
      other.domain_ = nullptr;
    }
    Pin& operator=(Pin&& other) noexcept {
      if (this != &other) {
        Release();
        domain_ = other.domain_;
        other.domain_ = nullptr;
      }
      return *this;
    }
    Pin(const Pin&) = delete;
    Pin& operator=(const Pin&) = delete;
    ~Pin() { Release(); }

    bool engaged() const { return domain_ != nullptr; }

   private:
    void Release() {
      if (domain_ != nullptr) {
        domain_->Exit();
        domain_ = nullptr;
      }
    }
    EpochDomain* domain_;
  };

  Pin MakePin() { return Pin(this); }

  /// Hands `object` to the domain for deferred release: its refcount drops
  /// only once every reader pinned at retire time has unpinned. Called by
  /// publishers with the *previous* value after swapping in a replacement.
  /// Advances the epoch and opportunistically reclaims.
  void Retire(std::shared_ptr<const void> object);

  /// Releases every retired entry whose readers have all unpinned. Returns
  /// the number of entries still deferred (0 once all readers are idle).
  /// Stop/teardown paths call this to drain the list deterministically.
  size_t ReclaimNow();

  /// Entries currently deferred (test/introspection hook).
  size_t retired_count() const;

  /// Epoch currently pinned by the calling thread, or kIdle. Test hook.
  uint64_t PinnedEpochForTesting() const;

 private:
  struct alignas(64) Slot {
    std::atomic<uint64_t> epoch{kIdle};
  };
  struct Retired {
    std::shared_ptr<const void> object;
    uint64_t epoch = 0;
  };

  void Enter();
  void Exit();
  size_t SlotIndexForThisThread();
  uint64_t MinActiveEpoch() const;
  void ReclaimLocked();  ///< requires retire_mu_

  /// Process-unique id; thread-local slot claims are keyed by it rather
  /// than by `this`, so a stack-local domain recycled at the same address
  /// can never inherit another domain's claims.
  const uint64_t id_;

  std::atomic<uint64_t> global_epoch_{1};
  std::atomic<size_t> next_slot_{0};
  Slot slots_[kMaxSlots];

  mutable std::mutex retire_mu_;
  std::vector<Retired> retired_;
};

}  // namespace rmi::serving

#endif  // RMI_SERVING_EPOCH_H_
