#include "serving/snapshot.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "common/check.h"
#include "common/hash.h"
#include "common/missing.h"

namespace rmi::serving {

namespace {

/// splitmix64 — cheap, well-mixed combine for the integrity stamp.
uint64_t Mix(uint64_t h, uint64_t v) { return SplitMix64Combine(h, v); }

}  // namespace

uint64_t MapSnapshot::ComputeChecksum() const {
  const la::Matrix& refs = fingerprints();
  uint64_t h = Mix(0x726d692d736e6170ull, version);
  h = Mix(h, static_cast<uint64_t>(refs.rows()));
  h = Mix(h, static_cast<uint64_t>(refs.cols()));
  h = Mix(h, static_cast<uint64_t>(positions.size()));
  h = Mix(h, static_cast<uint64_t>(index.num_cells()));
  h = Mix(h, estimator == nullptr ? 0 : 1);
  // The quantized ranking copy must describe the same reference set.
  h = Mix(h, quantized == nullptr ? 0 : quantized->rows + 1);
  // Sample a few fingerprint cells so a swapped-out matrix is detected
  // without hashing the whole map on every integrity check.
  const size_t n = refs.size();
  if (n > 0) {
    const double* p = refs.data().data();
    const size_t stride = std::max<size_t>(1, n / 16);
    for (size_t i = 0; i < n; i += stride) {
      uint64_t bits;
      static_assert(sizeof(bits) == sizeof(double), "double is 64-bit");
      std::memcpy(&bits, &p[i], sizeof(bits));
      h = Mix(h, bits);
    }
  }
  return h;
}

std::shared_ptr<const MapSnapshot> BuildSnapshot(
    const rmap::RadioMap& imputed_map,
    std::unique_ptr<positioning::LocationEstimator> estimator, Rng& rng,
    const SnapshotOptions& options) {
  RMI_CHECK(estimator != nullptr);
  RMI_CHECK(!imputed_map.empty());
  auto snapshot = std::make_shared<MapSnapshot>();
  snapshot->version = options.version;

  if (auto* knn =
          dynamic_cast<positioning::KnnEstimator*>(estimator.get())) {
    knn->set_ranking_kernel(options.ranking_kernel);
  }
  const bool warm = options.warm_previous != nullptr &&
                    options.changed_rows != nullptr;
  if (warm && options.warm_estimator) {
    estimator->FitWarm(imputed_map, rng, options.warm_previous->estimator.get(),
                       *options.changed_rows);
  } else {
    estimator->Fit(imputed_map, rng);
  }
  snapshot->estimator = std::move(estimator);
  if (const auto* knn = dynamic_cast<const positioning::KnnEstimator*>(
          snapshot->estimator.get())) {
    // KNN family: alias the fitted state itself — no second copy, and the
    // index row ids line up with the estimator's candidate indices by
    // construction. The quantized ranking copy aliases the same fit.
    snapshot->fingerprint_view = &knn->features();
    snapshot->quantized = &knn->quantized();
    snapshot->positions = knn->labels();
  } else {
    // The one shared extraction rule (labeled rows, map order).
    positioning::ExtractLabeledRows(imputed_map, &snapshot->owned_fingerprints,
                                    &snapshot->positions);
    snapshot->fingerprint_view = &snapshot->owned_fingerprints;
  }
  // Warm index reuse additionally requires that the previous snapshot's
  // reference rows are a row-aligned prefix of ours: every map row labeled
  // (changed_rows are map indices — extraction must not compact them; a
  // case-deleting imputer fails this) and every surviving RP at the same
  // position. BuildIncremental itself re-checks grid geometry and falls
  // back cold on any mismatch.
  bool warm_index = warm && options.warm_index &&
                    snapshot->fingerprints().rows() == imputed_map.size() &&
                    options.warm_previous->num_refs() <=
                        snapshot->positions.size();
  for (size_t i = 0; warm_index && i < options.warm_previous->num_refs();
       ++i) {
    const geom::Point& a = options.warm_previous->positions[i];
    const geom::Point& b = snapshot->positions[i];
    if (a.x != b.x || a.y != b.y) warm_index = false;
  }
  if (warm_index) {
    snapshot->index.BuildIncremental(snapshot->fingerprints(),
                                     snapshot->positions, options.cell_size_m,
                                     options.warm_previous->index,
                                     *options.changed_rows);
  } else {
    snapshot->index.Build(snapshot->fingerprints(), snapshot->positions,
                          options.cell_size_m);
  }
  snapshot->checksum = snapshot->ComputeChecksum();
  return snapshot;
}

void MapSnapshotStore::Publish(std::shared_ptr<const MapSnapshot> snapshot) {
  RMI_CHECK(snapshot != nullptr);
  RMI_CHECK(snapshot->Consistent());
  const MapSnapshot* raw = snapshot.get();
  std::shared_ptr<const MapSnapshot> old;
  {
    // Serialize publishers so each retires exactly the snapshot it
    // displaced (two unserialized swaps could both capture the same old
    // value and leak the other).
    std::lock_guard<std::mutex> lock(publish_mu_);
    old = std::atomic_exchange_explicit(&current_, std::move(snapshot),
                                        std::memory_order_acq_rel);
    // Raw pointer last of the two: a hot-path reader that loads the new
    // raw pointer is guaranteed the slow-path protocol already agrees.
    // Both stores precede the Retire below (seq_cst), so no reader can
    // still load `old` after its retire epoch is stamped.
    current_raw_.store(raw, std::memory_order_seq_cst);
  }
  publishes_.fetch_add(1, std::memory_order_relaxed);
  // Deferred release via the global domain. The retired entry holds a
  // refcount, so this also covers slow-path Current() holders: reclaiming
  // just drops our reference, and the snapshot frees when the last
  // shared_ptr — wherever it lives — lets go.
  EpochDomain::Global().Retire(
      std::shared_ptr<const void>(std::move(old)));
}

PinnedSnapshot MapSnapshotStore::PinnedRead() const {
  EpochDomain::Pin pin = EpochDomain::Global().MakePin();
  // Pin first, pointer second (both seq_cst): see the safety argument in
  // epoch.h for why this ordering makes the loaded pointer unreclaimable.
  const MapSnapshot* snapshot = current_raw_.load(std::memory_order_seq_cst);
  return PinnedSnapshot(std::move(pin), snapshot);
}

std::shared_ptr<const MapSnapshot> MapSnapshotStore::Current() const {
  return std::atomic_load_explicit(&current_, std::memory_order_acquire);
}

}  // namespace rmi::serving
