#include "serving/snapshot.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "common/check.h"
#include "common/hash.h"
#include "common/missing.h"

namespace rmi::serving {

namespace {

/// splitmix64 — cheap, well-mixed combine for the integrity stamp.
uint64_t Mix(uint64_t h, uint64_t v) { return SplitMix64Combine(h, v); }

}  // namespace

uint64_t MapSnapshot::ComputeChecksum() const {
  const la::Matrix& refs = fingerprints();
  uint64_t h = Mix(0x726d692d736e6170ull, version);
  h = Mix(h, static_cast<uint64_t>(refs.rows()));
  h = Mix(h, static_cast<uint64_t>(refs.cols()));
  h = Mix(h, static_cast<uint64_t>(positions.size()));
  h = Mix(h, static_cast<uint64_t>(index.num_cells()));
  h = Mix(h, estimator == nullptr ? 0 : 1);
  // The quantized ranking copy must describe the same reference set.
  h = Mix(h, quantized == nullptr ? 0 : quantized->rows + 1);
  // Sample a few fingerprint cells so a swapped-out matrix is detected
  // without hashing the whole map on every integrity check.
  const size_t n = refs.size();
  if (n > 0) {
    const double* p = refs.data().data();
    const size_t stride = std::max<size_t>(1, n / 16);
    for (size_t i = 0; i < n; i += stride) {
      uint64_t bits;
      static_assert(sizeof(bits) == sizeof(double), "double is 64-bit");
      std::memcpy(&bits, &p[i], sizeof(bits));
      h = Mix(h, bits);
    }
  }
  return h;
}

std::shared_ptr<const MapSnapshot> BuildSnapshot(
    const rmap::RadioMap& imputed_map,
    std::unique_ptr<positioning::LocationEstimator> estimator, Rng& rng,
    const SnapshotOptions& options) {
  RMI_CHECK(estimator != nullptr);
  RMI_CHECK(!imputed_map.empty());
  auto snapshot = std::make_shared<MapSnapshot>();
  snapshot->version = options.version;

  if (auto* knn =
          dynamic_cast<positioning::KnnEstimator*>(estimator.get())) {
    knn->set_ranking_kernel(options.ranking_kernel);
  }
  estimator->Fit(imputed_map, rng);
  snapshot->estimator = std::move(estimator);
  if (const auto* knn = dynamic_cast<const positioning::KnnEstimator*>(
          snapshot->estimator.get())) {
    // KNN family: alias the fitted state itself — no second copy, and the
    // index row ids line up with the estimator's candidate indices by
    // construction. The quantized ranking copy aliases the same fit.
    snapshot->fingerprint_view = &knn->features();
    snapshot->quantized = &knn->quantized();
    snapshot->positions = knn->labels();
  } else {
    // The one shared extraction rule (labeled rows, map order).
    positioning::ExtractLabeledRows(imputed_map, &snapshot->owned_fingerprints,
                                    &snapshot->positions);
    snapshot->fingerprint_view = &snapshot->owned_fingerprints;
  }
  snapshot->index.Build(snapshot->fingerprints(), snapshot->positions,
                        options.cell_size_m);
  snapshot->checksum = snapshot->ComputeChecksum();
  return snapshot;
}

void MapSnapshotStore::Publish(std::shared_ptr<const MapSnapshot> snapshot) {
  RMI_CHECK(snapshot != nullptr);
  RMI_CHECK(snapshot->Consistent());
  std::atomic_store_explicit(&current_, std::move(snapshot),
                             std::memory_order_release);
  publishes_.fetch_add(1, std::memory_order_relaxed);
}

std::shared_ptr<const MapSnapshot> MapSnapshotStore::Current() const {
  return std::atomic_load_explicit(&current_, std::memory_order_acquire);
}

}  // namespace rmi::serving
