// Immutable radio-map snapshots and the hot-swappable store behind the
// online localization engine.
//
// Lifecycle: a background pipeline (re-survey -> differentiate -> impute ->
// fit) produces a complete radio map, BuildSnapshot freezes it — fitted
// estimator, reference fingerprint matrix, RP labels, spatial index — into
// one immutable MapSnapshot, and MapSnapshotStore::Publish swaps it in
// atomically. In-flight queries keep the shared_ptr they grabbed, so a
// publish never blocks readers and a reader never observes a half-built
// ("torn") snapshot; the old snapshot is freed when its last query drops
// the reference.
#ifndef RMI_SERVING_SNAPSHOT_H_
#define RMI_SERVING_SNAPSHOT_H_

#include <atomic>
#include <cstdint>
#include <memory>

#include "common/rng.h"
#include "positioning/estimators.h"
#include "radiomap/radio_map.h"
#include "serving/spatial_index.h"

namespace rmi::serving {

/// One frozen serving state. Everything is fitted/derived at build time;
/// nothing mutates after publication (queries run concurrently against it).
struct MapSnapshot {
  uint64_t version = 0;
  /// Fitted location estimator (Estimate/EstimateBatch are const and
  /// thread-safe).
  std::unique_ptr<const positioning::LocationEstimator> estimator;
  /// R x D reference fingerprints (complete rows, aligned with positions).
  /// For the KNN family this *aliases* the fitted estimator's own matrix —
  /// the estimator member owns it and lives as long as the snapshot — so a
  /// snapshot adds no second copy of the reference data; for other
  /// estimators owned_fingerprints holds the extraction.
  const la::Matrix& fingerprints() const { return *fingerprint_view; }
  const la::Matrix* fingerprint_view = nullptr;
  la::Matrix owned_fingerprints;
  /// Int8-quantized, padded/SoA ranking copy of the reference matrix
  /// (per-AP scale/zero-point), or nullptr for estimators without one.
  /// Like fingerprint_view it *aliases* the fitted KNN estimator's state —
  /// the float matrix above stays the exact-rescore master, this is the
  /// 8x-smaller copy the kQuant ranking kernel streams.
  const la::QuantizedRefs* quantized = nullptr;
  std::vector<geom::Point> positions;
  /// Location-grid pruning index over (fingerprints, positions).
  SpatialIndex index;
  /// Integrity stamp over the fields above, taken at build time. Torn
  /// *reads* are precluded by the store's atomic shared_ptr protocol; the
  /// stamp guards against a publisher bug — mutation between BuildSnapshot
  /// and Publish (checked there) — and gives the hot-swap tests a concrete
  /// completeness probe.
  uint64_t checksum = 0;

  uint64_t ComputeChecksum() const;
  bool Consistent() const { return checksum == ComputeChecksum(); }

  size_t num_refs() const { return positions.size(); }
  size_t num_aps() const { return fingerprints().cols(); }
};

struct SnapshotOptions {
  uint64_t version = 0;
  /// Spatial-index grid pitch, meters.
  double cell_size_m = 6.0;
  /// Ranking kernel for the KNN family's EstimateBatch (ignored by other
  /// estimators). Answers are bit-identical across kernels; this is a
  /// throughput knob, and the benches sweep it.
  positioning::RankingKernel ranking_kernel = positioning::RankingKernel::kQuant;
};

/// Freezes `imputed_map` (complete, labeled rows) + a *not yet fitted*
/// estimator into a snapshot: fits the estimator, extracts the reference
/// matrix/labels (from the estimator itself for the KNN family, so the
/// spatial index is guaranteed row-aligned with the fitted state), builds
/// the index, stamps the checksum.
std::shared_ptr<const MapSnapshot> BuildSnapshot(
    const rmap::RadioMap& imputed_map,
    std::unique_ptr<positioning::LocationEstimator> estimator, Rng& rng,
    const SnapshotOptions& options = {});

/// The hot-swap point. Publish/Current use the atomic shared_ptr protocol,
/// so readers are wait-free with respect to publishers: a query thread
/// either sees the old snapshot or the new one, both complete.
class MapSnapshotStore {
 public:
  MapSnapshotStore() = default;
  explicit MapSnapshotStore(std::shared_ptr<const MapSnapshot> initial) {
    Publish(std::move(initial));
  }

  MapSnapshotStore(const MapSnapshotStore&) = delete;
  MapSnapshotStore& operator=(const MapSnapshotStore&) = delete;

  /// Atomically replaces the current snapshot. Never blocks readers.
  void Publish(std::shared_ptr<const MapSnapshot> snapshot);

  /// The current snapshot (nullptr before the first Publish). Callers keep
  /// the returned shared_ptr for the whole request so a concurrent publish
  /// cannot free the state under them.
  std::shared_ptr<const MapSnapshot> Current() const;

  uint64_t publish_count() const {
    return publishes_.load(std::memory_order_relaxed);
  }

 private:
  std::shared_ptr<const MapSnapshot> current_;
  std::atomic<uint64_t> publishes_{0};
};

}  // namespace rmi::serving

#endif  // RMI_SERVING_SNAPSHOT_H_
