// Immutable radio-map snapshots and the hot-swappable store behind the
// online localization engine.
//
// Lifecycle: a background pipeline (re-survey -> differentiate -> impute ->
// fit) produces a complete radio map, BuildSnapshot freezes it — fitted
// estimator, reference fingerprint matrix, RP labels, spatial index — into
// one immutable MapSnapshot, and MapSnapshotStore::Publish swaps it in
// atomically. In-flight queries hold the snapshot open — hot path via an
// epoch pin (PinnedRead), slow path via a shared_ptr (Current) — so a
// publish never blocks readers and a reader never observes a half-built
// ("torn") snapshot; the old snapshot is retired into the epoch domain and
// freed once every pin taken before the swap has been released and every
// slow-path reference dropped.
#ifndef RMI_SERVING_SNAPSHOT_H_
#define RMI_SERVING_SNAPSHOT_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>

#include "common/rng.h"
#include "positioning/estimators.h"
#include "radiomap/radio_map.h"
#include "serving/epoch.h"
#include "serving/spatial_index.h"

namespace rmi::serving {

/// One frozen serving state. Everything is fitted/derived at build time;
/// nothing mutates after publication (queries run concurrently against it).
struct MapSnapshot {
  uint64_t version = 0;
  /// Fitted location estimator (Estimate/EstimateBatch are const and
  /// thread-safe).
  std::unique_ptr<const positioning::LocationEstimator> estimator;
  /// R x D reference fingerprints (complete rows, aligned with positions).
  /// For the KNN family this *aliases* the fitted estimator's own matrix —
  /// the estimator member owns it and lives as long as the snapshot — so a
  /// snapshot adds no second copy of the reference data; for other
  /// estimators owned_fingerprints holds the extraction.
  const la::Matrix& fingerprints() const { return *fingerprint_view; }
  const la::Matrix* fingerprint_view = nullptr;
  la::Matrix owned_fingerprints;
  /// Int8-quantized, padded/SoA ranking copy of the reference matrix
  /// (per-AP scale/zero-point), or nullptr for estimators without one.
  /// Like fingerprint_view it *aliases* the fitted KNN estimator's state —
  /// the float matrix above stays the exact-rescore master, this is the
  /// 8x-smaller copy the kQuant ranking kernel streams.
  const la::QuantizedRefs* quantized = nullptr;
  std::vector<geom::Point> positions;
  /// Location-grid pruning index over (fingerprints, positions).
  SpatialIndex index;
  /// Whatever the snapshot's borrowed state lives in beyond the estimator —
  /// today the mmap-ed store::MappedSnapshot a restored snapshot serves
  /// from (type-erased so this header stays store-agnostic). Rides the
  /// snapshot through epoch retirement: the mapping is unmapped only when
  /// the snapshot itself is reclaimed, so no view pointer can dangle.
  std::shared_ptr<const void> backing;
  /// Integrity stamp over the fields above, taken at build time. Torn
  /// *reads* are precluded by the store's atomic shared_ptr protocol; the
  /// stamp guards against a publisher bug — mutation between BuildSnapshot
  /// and Publish (checked there) — and gives the hot-swap tests a concrete
  /// completeness probe.
  uint64_t checksum = 0;

  uint64_t ComputeChecksum() const;
  bool Consistent() const { return checksum == ComputeChecksum(); }

  size_t num_refs() const { return positions.size(); }
  size_t num_aps() const { return fingerprints().cols(); }
};

struct SnapshotOptions {
  uint64_t version = 0;
  /// Spatial-index grid pitch, meters.
  double cell_size_m = 6.0;
  /// Ranking kernel for the KNN family's EstimateBatch (ignored by other
  /// estimators). Answers are bit-identical across kernels; this is a
  /// throughput knob, and the benches sweep it.
  positioning::RankingKernel ranking_kernel = positioning::RankingKernel::kQuant;
  /// Warm-rebuild inputs (the live-update loop sets all three; a cold build
  /// leaves them null). `warm_previous` is the snapshot being replaced,
  /// `changed_rows` the ascending imputed-map rows whose values differ from
  /// the map it was built on (appended rows included). Both must outlive
  /// the BuildSnapshot call only — nothing is retained. Each warm stage
  /// independently falls back to its cold path when reuse is unsound.
  const MapSnapshot* warm_previous = nullptr;
  const std::vector<size_t>* changed_rows = nullptr;
  /// Per-stage kill switches for the warm path (meaningful only when the
  /// two pointers above are set).
  bool warm_estimator = true;
  bool warm_index = true;
};

/// Freezes `imputed_map` (complete, labeled rows) + a *not yet fitted*
/// estimator into a snapshot: fits the estimator, extracts the reference
/// matrix/labels (from the estimator itself for the KNN family, so the
/// spatial index is guaranteed row-aligned with the fitted state), builds
/// the index, stamps the checksum. With SnapshotOptions::warm_previous /
/// changed_rows set, the estimator fit and index build go through their
/// warm paths (FitWarm, BuildIncremental); each verifies its own reuse
/// preconditions and degrades to the cold path, so the options are always
/// safe to pass.
std::shared_ptr<const MapSnapshot> BuildSnapshot(
    const rmap::RadioMap& imputed_map,
    std::unique_ptr<positioning::LocationEstimator> estimator, Rng& rng,
    const SnapshotOptions& options = {});

/// A snapshot reference held open by an epoch pin instead of a refcount:
/// while this object lives, the snapshot cannot be reclaimed, at zero
/// shared cache-line traffic on acquisition. Scope it to one request (or
/// one batch) — a long-lived PinnedSnapshot blocks reclamation of every
/// snapshot retired after it was taken. Movable; release on the pinning
/// thread. The raw pointer may be handed to pool workers that outlive
/// nothing: the pin gates reclamation globally, whichever thread
/// dereferences (see EpochDomain).
class PinnedSnapshot {
 public:
  PinnedSnapshot() = default;
  PinnedSnapshot(EpochDomain::Pin pin, const MapSnapshot* snapshot)
      : pin_(std::move(pin)), snapshot_(snapshot) {}

  const MapSnapshot* get() const { return snapshot_; }
  const MapSnapshot& operator*() const { return *snapshot_; }
  const MapSnapshot* operator->() const { return snapshot_; }
  explicit operator bool() const { return snapshot_ != nullptr; }

 private:
  EpochDomain::Pin pin_;
  const MapSnapshot* snapshot_ = nullptr;
};

/// The hot-swap point, with two read protocols against one published
/// value:
///
///  * PinnedRead() — the hot path. An epoch pin plus a raw pointer load:
///    no refcount RMW, no shared line bounced between reader cores.
///  * Current() — the slow path. The classic atomic shared_ptr load, for
///    callers that must hold the snapshot past any pin scope (background
///    comparisons, tests, code not yet migrated).
///
/// Both see the same swap at the same instant; a publish retires the old
/// snapshot through the global epoch domain, whose deferred release also
/// respects outstanding slow-path shared_ptrs (the retired entry only
/// drops a refcount when reclaimed — it frees the snapshot iff no
/// shared_ptr holder remains).
class MapSnapshotStore {
 public:
  MapSnapshotStore() = default;
  explicit MapSnapshotStore(std::shared_ptr<const MapSnapshot> initial) {
    Publish(std::move(initial));
  }

  MapSnapshotStore(const MapSnapshotStore&) = delete;
  MapSnapshotStore& operator=(const MapSnapshotStore&) = delete;

  /// Atomically replaces the current snapshot and retires the previous one
  /// into the global epoch domain. Never blocks readers; concurrent
  /// publishers serialize among themselves.
  void Publish(std::shared_ptr<const MapSnapshot> snapshot);

  /// Hot path: the current snapshot pinned against reclamation for the
  /// lifetime of the returned handle (engaged-but-null before the first
  /// Publish). One private epoch-slot store + one raw load — no atomic
  /// refcount op.
  PinnedSnapshot PinnedRead() const;

  /// Slow path: the current snapshot as a shared_ptr (nullptr before the
  /// first Publish). Callers keep it for the whole request so a concurrent
  /// publish cannot free the state under them.
  std::shared_ptr<const MapSnapshot> Current() const;

  uint64_t publish_count() const {
    return publishes_.load(std::memory_order_relaxed);
  }

 private:
  mutable std::mutex publish_mu_;
  std::shared_ptr<const MapSnapshot> current_;  ///< slow-path protocol
  /// Hot-path protocol: same object as current_, loadable without touching
  /// the control block. Swapped before the old value is retired, so a
  /// pinned reader only ever loads live-or-retired-after-pin pointers.
  std::atomic<const MapSnapshot*> current_raw_{nullptr};
  std::atomic<uint64_t> publishes_{0};
};

}  // namespace rmi::serving

#endif  // RMI_SERVING_SNAPSHOT_H_
