#include "serving/batch_localizer.h"

#include "common/check.h"
#include "common/missing.h"

namespace rmi::serving {

geom::Point BatchLocalizer::Localize(
    const std::vector<double>& fingerprint) const {
  const std::shared_ptr<const MapSnapshot> snap = store_->Current();
  RMI_CHECK(snap != nullptr);
  RMI_CHECK_EQ(fingerprint.size(), snap->num_aps());
  // Same contract as Estimate/EstimateBatch: an all-null scan has no
  // distance signal (every masked distance is 0) and must not silently
  // decay to the first k reference rows; and a partial scan is only legal
  // for estimators that opt in (NaN mis-compares in tree traversal).
  size_t observed = 0;
  for (double v : fingerprint) observed += !IsNull(v);
  RMI_CHECK_GT(observed, 0u);
  RMI_CHECK(snap->estimator->SupportsPartialFingerprints() ||
            observed == fingerprint.size());
  if (const auto* knn = dynamic_cast<const positioning::KnnEstimator*>(
          snap->estimator.get())) {
    std::vector<Neighbor> candidates =
        snap->index.Search(snap->fingerprints(), fingerprint, knn->k());
    return knn->EstimateFromCandidates(std::move(candidates));
  }
  return snap->estimator->Estimate(fingerprint);
}

std::vector<geom::Point> BatchLocalizer::LocalizeBatch(
    const la::Matrix& fingerprints) const {
  const std::shared_ptr<const MapSnapshot> snap = store_->Current();
  RMI_CHECK(snap != nullptr);
  return LocalizeBatchOn(*snap, fingerprints);
}

std::vector<geom::Point> BatchLocalizer::LocalizeBatchOn(
    const MapSnapshot& snapshot, const la::Matrix& fingerprints) {
  RMI_CHECK_EQ(fingerprints.cols(), snapshot.num_aps());
  return snapshot.estimator->EstimateBatch(fingerprints);
}

}  // namespace rmi::serving
