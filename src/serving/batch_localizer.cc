#include "serving/batch_localizer.h"

#include "common/check.h"
#include "common/missing.h"

namespace rmi::serving {

const char* QueryValidationError(const MapSnapshot& snapshot,
                                 const double* fingerprint, size_t size) {
  if (size != snapshot.num_aps()) {
    return "fingerprint width does not match the snapshot";
  }
  size_t observed = 0;
  for (size_t j = 0; j < size; ++j) observed += !IsNull(fingerprint[j]);
  if (observed == 0) return "fingerprint observes no AP";
  if (!snapshot.estimator->SupportsPartialFingerprints() && observed < size) {
    return "snapshot estimator does not support partial fingerprints";
  }
  return nullptr;
}

geom::Point BatchLocalizer::Localize(
    const std::vector<double>& fingerprint) const {
  const PinnedSnapshot snap = store_->PinnedRead();
  RMI_CHECK(snap.get() != nullptr);
  return LocalizeOn(*snap, fingerprint);
}

geom::Point BatchLocalizer::LocalizeOn(const MapSnapshot& snapshot,
                                       const std::vector<double>& fingerprint) {
  RMI_CHECK_EQ(fingerprint.size(), snapshot.num_aps());
  // Same contract as Estimate/EstimateBatch: an all-null scan has no
  // distance signal (every masked distance is 0) and must not silently
  // decay to the first k reference rows; and a partial scan is only legal
  // for estimators that opt in (NaN mis-compares in tree traversal).
  size_t observed = 0;
  for (double v : fingerprint) observed += !IsNull(v);
  RMI_CHECK_GT(observed, 0u);
  RMI_CHECK(snapshot.estimator->SupportsPartialFingerprints() ||
            observed == fingerprint.size());
  if (const auto* knn = dynamic_cast<const positioning::KnnEstimator*>(
          snapshot.estimator.get())) {
    std::vector<Neighbor> candidates =
        snapshot.index.Search(snapshot.fingerprints(), fingerprint, knn->k());
    return knn->EstimateFromCandidates(std::move(candidates));
  }
  return snapshot.estimator->Estimate(fingerprint);
}

std::vector<geom::Point> BatchLocalizer::LocalizeBatch(
    const la::Matrix& fingerprints) const {
  const PinnedSnapshot snap = store_->PinnedRead();
  RMI_CHECK(snap.get() != nullptr);
  return LocalizeBatchOn(*snap, fingerprints);
}

std::vector<geom::Point> BatchLocalizer::LocalizeBatchOn(
    const MapSnapshot& snapshot, const la::Matrix& fingerprints) {
  RMI_CHECK_EQ(fingerprints.cols(), snapshot.num_aps());
  return snapshot.estimator->EstimateBatch(fingerprints);
}

}  // namespace rmi::serving
