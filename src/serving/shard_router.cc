#include "serving/shard_router.h"

#include <limits>
#include <stdexcept>
#include <string>

#include "common/check.h"
#include "common/missing.h"
#include "serving/batch_localizer.h"

namespace rmi::serving {

namespace {

/// An AP counts as audible on a shard when its peak reference RSSI rises
/// meaningfully above the -100 dBm MNAR fill (a floor whose references
/// never hear an AP stores exactly the fill).
constexpr double kAudibleMarginDbm = 0.5;

/// Throws the shared per-request rejection for a malformed query; never
/// aborts — one bad request must not take the serving process down.
void ValidateQuery(const MapSnapshot& snapshot, const double* fingerprint,
                   size_t size) {
  const char* reason = QueryValidationError(snapshot, fingerprint, size);
  if (reason != nullptr) throw std::runtime_error(reason);
}

/// Process-wide sharded-serving series.
struct RouterMetrics {
  obs::Counter& batches = obs::GetCounter(
      "rmi_router_batches_total", "Mixed-shard batches fanned out");
  obs::Counter& classified = obs::GetCounter(
      "rmi_router_classified_total",
      "Batch rows routed by the floor classifier (vs. hinted)");
  obs::Histogram& stage_classify_us = obs::GetHistogram(
      "rmi_router_stage_classify_us",
      "Floor classification + grouping per batch, microseconds");
  obs::Histogram& shard_groups = obs::GetHistogram(
      "rmi_router_shard_groups", "Distinct shard groups per batch fan-out");

  static RouterMetrics& Get() {
    static RouterMetrics* m = new RouterMetrics();
    return *m;
  }
};

}  // namespace

ShardProfile BuildShardProfile(const MapSnapshot& snapshot) {
  const la::Matrix& refs = snapshot.fingerprints();
  ShardProfile profile;
  profile.observable.assign(refs.cols(), 0);
  profile.peak_rssi.assign(refs.cols(), kMnarFillDbm);
  for (size_t i = 0; i < refs.rows(); ++i) {
    for (size_t j = 0; j < refs.cols(); ++j) {
      if (refs(i, j) > profile.peak_rssi[j]) profile.peak_rssi[j] = refs(i, j);
    }
  }
  for (size_t j = 0; j < refs.cols(); ++j) {
    if (profile.peak_rssi[j] > kMnarFillDbm + kAudibleMarginDbm) {
      profile.observable[j] = 1;
      ++profile.num_observable;
    }
  }
  return profile;
}

void ShardedSnapshotStore::Publish(const rmap::ShardId& id,
                                   std::shared_ptr<const MapSnapshot> snapshot) {
  RMI_CHECK(snapshot != nullptr);
  auto profile =
      std::make_shared<const ShardProfile>(BuildShardProfile(*snapshot));
  std::lock_guard<std::mutex> lock(publish_mu_);
  const std::shared_ptr<const Table> table = LoadTable();
  const auto it = table->find(id);
  if (it == table->end()) {
    // First publish: build the entry fully formed — profile set, snapshot
    // published — then swap the enlarged table in. A concurrent reader sees
    // either no shard or a complete one.
    auto shard = std::make_shared<Shard>();
    shard->profile = std::move(profile);
    shard->store.Publish(std::move(snapshot));
    auto next = std::make_shared<Table>(*table);
    (*next)[id] = std::move(shard);
    const Table* raw = next.get();
    const std::shared_ptr<const Table> old = std::atomic_exchange_explicit(
        &table_, std::shared_ptr<const Table>(std::move(next)),
        std::memory_order_acq_rel);
    table_raw_.store(raw, std::memory_order_seq_cst);
    // The displaced table rides the same deferred-release list as retired
    // snapshots: epoch-pinned readers may still be resolving shards
    // through it.
    EpochDomain::Global().Retire(std::shared_ptr<const void>(old));
  } else {
    Shard& shard = *it->second;
    shard.store.Publish(std::move(snapshot));
    std::atomic_store_explicit(&shard.profile, std::move(profile),
                               std::memory_order_release);
  }
  publishes_.fetch_add(1, std::memory_order_relaxed);
}

PinnedSnapshot ShardedSnapshotStore::Pinned(const rmap::ShardId& id) const {
  // One pin covers the raw table walk; the shard store's PinnedRead nests
  // a second (depth-only, no slot store) pin that survives the return.
  const EpochDomain::Pin pin = EpochDomain::Global().MakePin();
  const Table* table = table_raw_.load(std::memory_order_seq_cst);
  const auto it = table->find(id);
  if (it == table->end()) return PinnedSnapshot();
  return it->second->store.PinnedRead();
}

std::shared_ptr<const MapSnapshot> ShardedSnapshotStore::Current(
    const rmap::ShardId& id) const {
  const std::shared_ptr<const Table> table = LoadTable();
  const auto it = table->find(id);
  return it == table->end() ? nullptr : it->second->store.Current();
}

std::shared_ptr<const ShardProfile> ShardedSnapshotStore::Profile(
    const rmap::ShardId& id) const {
  const std::shared_ptr<const Table> table = LoadTable();
  const auto it = table->find(id);
  return it == table->end() ? nullptr : it->second->LoadProfile();
}

std::vector<std::pair<rmap::ShardId, std::shared_ptr<const ShardProfile>>>
ShardedSnapshotStore::Profiles() const {
  const std::shared_ptr<const Table> table = LoadTable();
  std::vector<std::pair<rmap::ShardId, std::shared_ptr<const ShardProfile>>>
      out;
  out.reserve(table->size());
  for (const auto& [id, shard] : *table) {
    out.emplace_back(id, shard->LoadProfile());
  }
  return out;
}

bool ShardedSnapshotStore::Contains(const rmap::ShardId& id) const {
  const std::shared_ptr<const Table> table = LoadTable();
  return table->find(id) != table->end();
}

std::vector<rmap::ShardId> ShardedSnapshotStore::ShardIds() const {
  const std::shared_ptr<const Table> table = LoadTable();
  std::vector<rmap::ShardId> ids;
  ids.reserve(table->size());
  for (const auto& [id, shard] : *table) ids.push_back(id);
  return ids;
}

size_t ShardedSnapshotStore::num_shards() const { return LoadTable()->size(); }

ShardRouter::ShardRouter(const ShardedSnapshotStore* store, size_t num_threads)
    : store_(store), pool_(num_threads) {
  RMI_CHECK(store_ != nullptr);
}

namespace {

/// Shared scoring core: classify `fingerprint` against one consistent
/// profile listing (ascending ShardId, as Profiles() returns it).
std::optional<RouteDecision> ClassifyAgainst(
    const std::vector<
        std::pair<rmap::ShardId, std::shared_ptr<const ShardProfile>>>&
        profiles,
    const double* fingerprint, size_t size) {
  // One pass over the query: the observed AP indices (venue queries are
  // mostly kNull — a device hears only its own floor — so the per-shard
  // overlap loop below runs over |observed|, not D) and the loudest one,
  // the strongest-AP tie-break pivot.
  std::vector<size_t> observed;
  size_t strongest_ap = size;
  double strongest_rssi = -std::numeric_limits<double>::infinity();
  for (size_t j = 0; j < size; ++j) {
    if (IsNull(fingerprint[j])) continue;
    observed.push_back(j);
    if (fingerprint[j] > strongest_rssi) {
      strongest_rssi = fingerprint[j];
      strongest_ap = j;
    }
  }
  if (strongest_ap == size) return std::nullopt;  // all-null scan

  bool have_best = false;
  RouteDecision best;
  double best_peak = -std::numeric_limits<double>::infinity();
  size_t best_overlap_count = 0;  // shards achieving the winning overlap
  for (const auto& [id, profile] : profiles) {
    if (profile == nullptr || profile->num_aps() != size) continue;
    size_t overlap = 0;
    for (size_t j : observed) overlap += profile->observable[j];
    const double peak = profile->peak_rssi[strongest_ap];
    if (!have_best || overlap > best.overlap) {
      have_best = true;
      best.shard = id;
      best.overlap = overlap;
      best_peak = peak;
      best_overlap_count = 1;
    } else if (overlap == best.overlap) {
      ++best_overlap_count;
      // Strongest-AP rule; profiles arrive in ascending ShardId, so a
      // strict comparison keeps the smallest id on a full tie.
      if (peak > best_peak) {
        best.shard = id;
        best_peak = peak;
      }
    }
  }
  // No shard hears any AP the query observed: the query cannot belong to
  // a published floor, and "the smallest id wins" would be a confident
  // answer from an unrelated map. Unroutable instead.
  if (!have_best || best.overlap == 0) return std::nullopt;
  best.by_strongest_ap = best_overlap_count > 1;
  return best;
}

}  // namespace

std::optional<RouteDecision> ShardRouter::ClassifyFloor(
    const std::vector<double>& fingerprint) const {
  return ClassifyAgainst(store_->Profiles(), fingerprint.data(),
                         fingerprint.size());
}

geom::Point ShardRouter::Localize(const rmap::ShardId& shard,
                                  const std::vector<double>& fingerprint) const {
  const PinnedSnapshot snap = store_->Pinned(shard);
  if (!snap) {
    throw std::runtime_error("shard " + rmap::ToString(shard) +
                             " has no published snapshot");
  }
  ValidateQuery(*snap, fingerprint.data(), fingerprint.size());
  return BatchLocalizer::LocalizeOn(*snap, fingerprint);
}

ShardRouter::AutoResult ShardRouter::LocalizeAuto(
    const std::vector<double>& fingerprint) const {
  const std::optional<RouteDecision> route = ClassifyFloor(fingerprint);
  if (!route.has_value()) {
    throw std::runtime_error(
        "fingerprint cannot be floor-classified (no shards or no observed "
        "AP)");
  }
  return AutoResult{Localize(route->shard, fingerprint), *route};
}

ShardRouter::BatchResult ShardRouter::LocalizeBatch(
    const la::Matrix& queries,
    const std::vector<std::optional<rmap::ShardId>>& hints,
    obs::Trace* trace) const {
  const size_t b = queries.rows();
  const size_t d = queries.cols();
  if (!hints.empty() && hints.size() != b) {
    throw std::runtime_error("hints are not row-aligned with the batch");
  }

  BatchResult out;
  out.positions.resize(b);
  out.shards.resize(b);
  if (b == 0) return out;

  RouterMetrics& metrics = RouterMetrics::Get();
  metrics.batches.Add();

  // Resolve every row to a shard (classifying unhinted rows against one
  // consistent profile listing), then group rows by shard.
  const auto profiles = store_->Profiles();
  std::map<rmap::ShardId, std::vector<size_t>> by_shard;
  {
    obs::ScopedStageTimer classify_timer(metrics.stage_classify_us);
    obs::ScopedSpan classify_span(trace, "classify");
    for (size_t i = 0; i < b; ++i) {
      const double* row = queries.data().data() + i * d;
      rmap::ShardId shard;
      if (!hints.empty() && hints[i].has_value()) {
        shard = *hints[i];
      } else {
        const std::optional<RouteDecision> route =
            ClassifyAgainst(profiles, row, d);
        if (!route.has_value()) {
          throw std::runtime_error(
              "batch row cannot be floor-classified (no shards or no "
              "observed AP)");
        }
        shard = route->shard;
        ++out.classified;
      }
      out.shards[i] = shard;
      by_shard[shard].push_back(i);
    }
  }
  if (out.classified > 0) metrics.classified.Add(out.classified);

  // Pin one snapshot per shard group and validate every row up front, so a
  // malformed batch is rejected before any work fans out (and no exception
  // can escape inside a pool worker). The epoch pins live on this caller
  // thread until the scatter below completes; pool workers dereference the
  // pinned raw pointers safely because reclamation is gated on the minimum
  // over *all* threads' pins (see EpochDomain).
  struct Group {
    PinnedSnapshot snapshot;
    std::vector<size_t> rows;
    la::Matrix block;
  };
  std::vector<Group> groups;
  groups.reserve(by_shard.size());
  {
    obs::ScopedSpan pin_span(trace, "pin-validate");
    for (auto& [shard, rows] : by_shard) {
      Group g;
      g.snapshot = store_->Pinned(shard);
      if (!g.snapshot) {
        throw std::runtime_error("shard " + rmap::ToString(shard) +
                                 " has no published snapshot");
      }
      for (size_t i : rows) {
        ValidateQuery(*g.snapshot, queries.data().data() + i * d, d);
      }
      g.block = la::Matrix(rows.size(), d);
      for (size_t r = 0; r < rows.size(); ++r) {
        const double* src = queries.data().data() + rows[r] * d;
        std::copy(src, src + d, g.block.data().begin() + r * d);
      }
      g.rows = std::move(rows);
      groups.push_back(std::move(g));
    }
  }
  out.shard_groups = groups.size();
  metrics.shard_groups.Observe(static_cast<double>(groups.size()));

  // Fan the per-shard groups across the pool under the work-stealing
  // schedule (group costs are skewed by group size; per-group results are
  // written to disjoint pre-resolved rows, so order independence holds).
  // No serialization against other LocalizeBatch calls: each call is its
  // own pool job and the caller works on it too.
  {
    obs::ScopedSpan fanout_span(trace, "rank-fanout");
    pool_.ParallelForDynamic(groups.size(), [&](size_t /*worker*/, size_t gi) {
      Group& g = groups[gi];
      const std::vector<geom::Point> points =
          BatchLocalizer::LocalizeBatchOn(*g.snapshot, g.block);
      for (size_t r = 0; r < g.rows.size(); ++r) {
        out.positions[g.rows[r]] = points[r];
      }
    });
  }
  return out;
}

}  // namespace rmi::serving
