// Synthetic serving workloads — the reference-map and query generators
// shared by tests/serving_test.cc and bench/bench_serving_throughput.cc so
// correctness checks and acceptance numbers run on the same distribution.
#ifndef RMI_SERVING_SYNTHETIC_H_
#define RMI_SERVING_SYNTHETIC_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "la/matrix.h"
#include "radiomap/radio_map.h"

namespace rmi::serving {

/// Complete, fully labeled radio map: nx * ny reference points on a 1 m
/// grid, distance-decay RSSIs from APs scattered deterministically over the
/// floor, plus uniform jitter.
rmap::RadioMap MakeSyntheticServingMap(size_t nx, size_t ny, size_t num_aps,
                                       uint64_t seed);

/// `count` online fingerprints drawn near random reference rows of `map`
/// (RSSI jitter +-2 dBm); each cell is independently nulled with
/// probability `null_fraction`. Rows are guaranteed to observe at least
/// one AP.
la::Matrix MakeSyntheticQueries(const rmap::RadioMap& map, size_t count,
                                double null_fraction, uint64_t seed);

/// Row `i` of `m` as a vector (the estimators' scalar-query shape).
std::vector<double> MatrixRow(const la::Matrix& m, size_t i);

/// One floor of a synthetic multi-building venue: a complete, fully
/// labeled radio map over the *global* AP dimension. APs not audible on
/// the floor hold exactly the -100 dBm MNAR fill (the convention the
/// shard profiles key on).
struct VenueShard {
  rmap::ShardId id;
  rmap::RadioMap map;
  /// Global AP indices audible on this floor (own block + bleed-through
  /// from adjacent floors of the same building).
  std::vector<size_t> audible_aps;
};

struct VenueOptions {
  size_t num_buildings = 2;
  size_t floors_per_building = 3;
  /// Reference grid per floor (1 m pitch), as in MakeSyntheticServingMap.
  size_t nx = 12;
  size_t ny = 9;
  /// APs mounted on each floor; the global dimension is
  /// num_buildings * floors_per_building * aps_per_floor.
  size_t aps_per_floor = 10;
  /// Of each adjacent floor's APs, how many bleed through the slab and are
  /// audible (attenuated) on this floor — the classifier's hard case.
  size_t bleed_aps = 3;
  /// Signal attenuation of a bleed-through AP, dB.
  double floor_attenuation_db = 18.0;
  uint64_t seed = 1;
};

/// Deterministic multi-floor venue: every floor gets its own AP block plus
/// attenuated bleed-through APs from the floors directly above/below in
/// the same building. Shards are returned in ascending ShardId order.
std::vector<VenueShard> MakeSyntheticVenue(const VenueOptions& options);

/// Online fingerprints drawn from venue floors, with the true shard and
/// position per row — the mixed-shard serving workload. A query observes
/// (with jitter and `null_fraction` dropout) only the APs audible on its
/// floor; every other cell is kNull, exactly what a device that cannot
/// hear an AP reports.
struct VenueQuerySet {
  la::Matrix queries;                 ///< B x D_global
  std::vector<rmap::ShardId> shard;   ///< true floor per row
  std::vector<geom::Point> position;  ///< true location per row
};
VenueQuerySet MakeVenueQueries(const std::vector<VenueShard>& shards,
                               size_t count, double null_fraction,
                               uint64_t seed);

}  // namespace rmi::serving

#endif  // RMI_SERVING_SYNTHETIC_H_
