// Synthetic serving workloads — the reference-map and query generators
// shared by tests/serving_test.cc and bench/bench_serving_throughput.cc so
// correctness checks and acceptance numbers run on the same distribution.
#ifndef RMI_SERVING_SYNTHETIC_H_
#define RMI_SERVING_SYNTHETIC_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "la/matrix.h"
#include "radiomap/radio_map.h"

namespace rmi::serving {

/// Complete, fully labeled radio map: nx * ny reference points on a 1 m
/// grid, distance-decay RSSIs from APs scattered deterministically over the
/// floor, plus uniform jitter.
rmap::RadioMap MakeSyntheticServingMap(size_t nx, size_t ny, size_t num_aps,
                                       uint64_t seed);

/// `count` online fingerprints drawn near random reference rows of `map`
/// (RSSI jitter +-2 dBm); each cell is independently nulled with
/// probability `null_fraction`. Rows are guaranteed to observe at least
/// one AP.
la::Matrix MakeSyntheticQueries(const rmap::RadioMap& map, size_t count,
                                double null_fraction, uint64_t seed);

/// Row `i` of `m` as a vector (the estimators' scalar-query shape).
std::vector<double> MatrixRow(const la::Matrix& m, size_t i);

}  // namespace rmi::serving

#endif  // RMI_SERVING_SYNTHETIC_H_
