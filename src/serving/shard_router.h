// Multi-floor sharded serving: the layer that decides *which* radio map
// answers a query.
//
// A production venue is many radio maps — one per (building, floor) shard —
// each behind its own hot-swappable MapSnapshotStore. This header adds the
// two pieces above the single-map store:
//
//  * ShardedSnapshotStore — a copy-on-write routing table from ShardId to
//    per-shard snapshot stores. Readers resolve shards through an atomic
//    shared_ptr to an immutable table, so adding a shard (first publish)
//    never blocks or tears an in-flight query — the same wait-free protocol
//    MapSnapshotStore uses one level down for snapshot generations.
//
//  * ShardRouter — routes fingerprints to shards. Queries that know their
//    shard go straight to its snapshot; fingerprints with an unknown floor
//    are resolved by a cheap AP-overlap / strongest-AP floor classifier
//    built from per-shard AP profiles. Mixed-shard batches are grouped by
//    shard and fanned across a common/thread_pool.h pool, each group
//    answered by the estimator's batched path — per shard, answers are
//    bit-identical to single-shard EstimateBatch (which is itself
//    bit-identical to scalar Estimate).
#ifndef RMI_SERVING_SHARD_ROUTER_H_
#define RMI_SERVING_SHARD_ROUTER_H_

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "common/thread_pool.h"
#include "geometry/geometry.h"
#include "la/matrix.h"
#include "obs/trace.h"
#include "radiomap/radio_map.h"
#include "serving/snapshot.h"

namespace rmi::serving {

/// Per-shard AP audibility profile, derived from a snapshot's reference
/// fingerprints at publish time. The floor classifier's only input: which
/// of the global D APs are audible on this floor, and how loud each one
/// peaks there.
struct ShardProfile {
  /// D entries; 1 iff the AP is audible on this shard — its peak reference
  /// RSSI rises above the -100 dBm MNAR fill.
  std::vector<uint8_t> observable;
  /// D entries; max reference RSSI per AP (kMnarFillDbm when never heard).
  std::vector<double> peak_rssi;
  size_t num_observable = 0;

  size_t num_aps() const { return observable.size(); }
};

/// Derives the AP profile of `snapshot`'s reference matrix. Exposed for
/// tests; ShardedSnapshotStore::Publish calls it internally.
ShardProfile BuildShardProfile(const MapSnapshot& snapshot);

/// Routing table of per-shard hot-swappable snapshot stores.
///
/// Thread-safety: Publish may race with any number of concurrent readers
/// (Current / Profile / ShardIds): readers load an immutable table through
/// an atomic shared_ptr and are wait-free. Concurrent Publish calls are
/// serialized internally. After a publish to an existing shard there is a
/// benign instant where a reader can pair the new snapshot with the
/// previous profile (or vice versa) — the profile only steers the
/// classifier heuristic, never correctness of the answer.
/// Ownership: the store owns its shards and snapshots; readers extend a
/// snapshot's lifetime via the returned shared_ptr.
class ShardedSnapshotStore {
 public:
  ShardedSnapshotStore() : table_(std::make_shared<const Table>()) {
    table_raw_.store(table_.get(), std::memory_order_release);
  }

  ShardedSnapshotStore(const ShardedSnapshotStore&) = delete;
  ShardedSnapshotStore& operator=(const ShardedSnapshotStore&) = delete;

  /// Publishes `snapshot` as shard `id`'s current generation, deriving its
  /// AP profile. An unknown shard is created on first publish (the routing
  /// table is swapped copy-on-write, complete entry in, so a concurrent
  /// reader sees either no shard or a fully published one — never a shard
  /// without a snapshot).
  void Publish(const rmap::ShardId& id,
               std::shared_ptr<const MapSnapshot> snapshot);

  /// Hot path: shard `id`'s current snapshot pinned against reclamation
  /// (null handle when the shard is unknown or not yet published). The
  /// routing-table lookup and the snapshot load ride one epoch pin — no
  /// atomic refcount op anywhere on the path.
  PinnedSnapshot Pinned(const rmap::ShardId& id) const;

  /// Slow path: shard `id`'s current snapshot; nullptr when the shard is
  /// unknown. Callers keep the shared_ptr for the whole request, exactly
  /// like MapSnapshotStore::Current.
  std::shared_ptr<const MapSnapshot> Current(const rmap::ShardId& id) const;

  /// Shard `id`'s AP profile; nullptr when the shard is unknown.
  std::shared_ptr<const ShardProfile> Profile(const rmap::ShardId& id) const;

  /// One consistent (id, profile) listing — the classifier scores shards
  /// against a single table generation.
  std::vector<std::pair<rmap::ShardId, std::shared_ptr<const ShardProfile>>>
  Profiles() const;

  bool Contains(const rmap::ShardId& id) const;
  std::vector<rmap::ShardId> ShardIds() const;
  size_t num_shards() const;

  /// Total snapshot publications across all shards.
  uint64_t publish_count() const {
    return publishes_.load(std::memory_order_relaxed);
  }

 private:
  struct Shard {
    MapSnapshotStore store;
    std::shared_ptr<const ShardProfile> profile;  ///< atomic access only

    std::shared_ptr<const ShardProfile> LoadProfile() const {
      return std::atomic_load_explicit(&profile, std::memory_order_acquire);
    }
  };
  using Table = std::map<rmap::ShardId, std::shared_ptr<Shard>>;

  std::shared_ptr<const Table> LoadTable() const {
    return std::atomic_load_explicit(&table_, std::memory_order_acquire);
  }

  std::shared_ptr<const Table> table_;  ///< atomic access only; never null
  /// Hot-path twin of table_ (same object): epoch-pinned readers resolve
  /// shards through this raw pointer; displaced tables are retired into
  /// the global epoch domain. Never null.
  std::atomic<const Table*> table_raw_;
  std::mutex publish_mu_;  ///< serializes table mutation
  std::atomic<uint64_t> publishes_{0};
};

/// The floor classifier's verdict for one fingerprint.
struct RouteDecision {
  rmap::ShardId shard;
  /// Observed APs of the query that are audible on the chosen shard.
  size_t overlap = 0;
  /// True when AP-set overlap tied across shards and the strongest-AP rule
  /// (who hears the query's loudest AP best) broke the tie.
  bool by_strongest_ap = false;
};

/// Routes queries across a ShardedSnapshotStore.
///
/// Thread-safety: all entry points are const and safe to call concurrently
/// — concurrent LocalizeBatch calls share the fan-out pool and genuinely
/// overlap (each call queues its own job; the pool's work-stealing schedule
/// balances skewed shard groups). Classification and routing read only
/// immutable snapshots/profiles through epoch-pinned loads. `store` must
/// outlive the router. Failure semantics follow LocalizationServer: a
/// query that cannot
/// be routed — unknown shard, shard with no published snapshot yet, or a
/// fingerprint with no observed AP — throws std::runtime_error rather than
/// aborting, so one bad request never takes the serving process down.
class ShardRouter {
 public:
  /// `num_threads` sizes the mixed-shard fan-out pool (0 = hardware
  /// concurrency). `store` must outlive the router.
  explicit ShardRouter(const ShardedSnapshotStore* store,
                       size_t num_threads = 0);

  /// Resolves the shard of a fingerprint with unknown floor: primary score
  /// is AP-set overlap (observed query APs audible on the shard, cf.
  /// Algorithm 1's binarization); ties fall back to the strongest-AP rule —
  /// the shard whose references hear the query's loudest AP best — and
  /// finally to the smallest ShardId, so the decision is deterministic.
  /// nullopt when the query is unroutable: the store is empty, no AP is
  /// observed, or no shard hears any of the observed APs (a floor the
  /// venue has not published).
  std::optional<RouteDecision> ClassifyFloor(
      const std::vector<double>& fingerprint) const;

  /// One fingerprint (kNull entries allowed) against a known shard, via the
  /// shard snapshot's pruned single-query path. Throws std::runtime_error
  /// when unroutable (see class comment).
  geom::Point Localize(const rmap::ShardId& shard,
                       const std::vector<double>& fingerprint) const;

  struct AutoResult {
    geom::Point position;
    RouteDecision route;
  };
  /// Classifies the floor, then localizes on the winning shard.
  AutoResult LocalizeAuto(const std::vector<double>& fingerprint) const;

  struct BatchResult {
    std::vector<geom::Point> positions;  ///< row-aligned with `queries`
    std::vector<rmap::ShardId> shards;   ///< resolved shard per row
    size_t classified = 0;  ///< rows routed by the floor classifier
    size_t shard_groups = 0;  ///< distinct shards the batch fanned over
  };
  /// B x D mixed-shard batch. `hints[i]`, when present, routes row i
  /// directly; rows without a hint (or with `hints` empty) are floor-
  /// classified. Rows are grouped by shard, every group pins its shard's
  /// snapshot once, and groups fan out across the router's pool — each
  /// answered by the estimator's batched path, so per shard the results
  /// are bit-identical to EstimateBatch on that shard alone. Throws
  /// std::runtime_error if any row is unroutable or `hints` is non-empty
  /// but not row-aligned (the batch is rejected before any work is
  /// fanned out). A sampled `trace` (nullable) receives the classify /
  /// pin-validate / fan-out stage spans.
  BatchResult LocalizeBatch(
      const la::Matrix& queries,
      const std::vector<std::optional<rmap::ShardId>>& hints = {},
      obs::Trace* trace = nullptr) const;

 private:
  const ShardedSnapshotStore* store_;
  mutable ThreadPool pool_;  ///< shared by concurrent LocalizeBatch calls
};

}  // namespace rmi::serving

#endif  // RMI_SERVING_SHARD_ROUTER_H_
