#include "serving/map_updater.h"

#include <chrono>
#include <stdexcept>
#include <utility>

#include "common/check.h"

namespace rmi::serving {

MapUpdater::MapUpdater(ShardedSnapshotStore* store,
                       const cluster::Differentiator* differentiator,
                       const imputers::Imputer* imputer,
                       EstimatorFactory estimator_factory,
                       const MapUpdaterOptions& options)
    : store_(store),
      differentiator_(differentiator),
      imputer_(imputer),
      estimator_factory_(std::move(estimator_factory)),
      options_(options),
      rng_(options.seed) {
  RMI_CHECK(store_ != nullptr);
  RMI_CHECK(differentiator_ != nullptr);
  RMI_CHECK(imputer_ != nullptr);
  RMI_CHECK(estimator_factory_ != nullptr);
}

MapUpdater::~MapUpdater() { Stop(); }

MapUpdater::ShardState* MapUpdater::Find(const rmap::ShardId& id) const {
  std::lock_guard<std::mutex> lock(shards_mu_);
  const auto it = shards_.find(id);
  return it == shards_.end() ? nullptr : it->second.get();
}

void MapUpdater::RegisterShard(const rmap::ShardId& id, rmap::RadioMap base) {
  RMI_CHECK(!base.empty());
  RMI_CHECK_GT(base.num_aps(), 0u);
  base.set_shard(id);
  ShardState* state = nullptr;
  bool fresh = false;
  {
    std::lock_guard<std::mutex> lock(shards_mu_);
    std::unique_ptr<ShardState>& slot = shards_[id];
    if (slot == nullptr) {
      // A fresh shard is fully initialized (base in place) before it
      // becomes visible in shards_: a concurrent Ingest that wins the
      // Find race must see the real width, never an empty base.
      slot = std::make_unique<ShardState>();
      slot->base = std::move(base);
      fresh = true;
    }
    state = slot.get();
  }
  if (!fresh) {
    // Same lock order as Rebuild (rebuild_mu, then mu): a re-registration
    // waits out any in-flight rebuild of the old base instead of pulling
    // its survey state from under it.
    std::lock_guard<std::mutex> rebuild_lock(state->rebuild_mu);
    std::lock_guard<std::mutex> lock(state->mu);
    state->base = std::move(base);
    state->deltas.clear();
    state->last_imputed = rmap::RadioMap();
    state->has_imputed = false;
    state->next_version = 1;
  }
  size_t num_shards = 0;
  {
    std::lock_guard<std::mutex> lock(shards_mu_);
    num_shards = shards_.size();
  }
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.shards = num_shards;
  }
  Rebuild(id, state);  // first impute + fit + publish, synchronous
}

void MapUpdater::Ingest(const rmap::ShardId& id, rmap::Record observation) {
  ShardState* state = Find(id);
  if (state == nullptr) {
    throw std::runtime_error("ingest into unregistered shard " +
                             rmap::ToString(id));
  }
  {
    std::lock_guard<std::mutex> lock(state->mu);
    if (observation.rssi.size() != state->base.num_aps()) {
      throw std::runtime_error("ingested observation width does not match "
                               "shard " +
                               rmap::ToString(id));
    }
    state->deltas.push_back(std::move(observation));
  }
  std::lock_guard<std::mutex> lock(stats_mu_);
  ++stats_.ingested;
}

bool MapUpdater::RebuildNow(const rmap::ShardId& id) {
  ShardState* state = Find(id);
  if (state == nullptr) return false;
  Rebuild(id, state);
  return true;
}

void MapUpdater::Rebuild(const rmap::ShardId& id, ShardState* state) {
  // One rebuild at a time per shard; the delta mutex is only held for the
  // cheap fold/copy below, never during the impute/fit phase, so Ingest
  // keeps flowing while the pipeline runs.
  std::lock_guard<std::mutex> rebuild_lock(state->rebuild_mu);
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.rebuilds_started;
  }
  Timer timer;

  rmap::RadioMap working;
  rmap::RadioMap previous;
  bool have_previous = false;
  uint64_t version = 0;
  {
    std::lock_guard<std::mutex> lock(state->mu);
    for (rmap::Record& r : state->deltas) state->base.Add(std::move(r));
    state->deltas.clear();
    working = state->base;
    if (state->has_imputed) {
      previous = state->last_imputed;
      have_previous = true;
    }
    version = state->next_version++;
  }

  Rng rebuild_rng(0);
  {
    std::lock_guard<std::mutex> lock(rng_mu_);
    rebuild_rng = rng_.Fork();
  }

  // The paper pipeline, online: differentiate -> MNAR fill -> (re-)impute
  // -> fit -> freeze -> hot-swap.
  rmap::MaskMatrix mask = differentiator_->Differentiate(working, rebuild_rng);
  imputers::FillMnar(&working, &mask);
  rmap::RadioMap imputed = imputer_->ImputeIncremental(
      working, mask, have_previous ? &previous : nullptr, rebuild_rng);
  imputed.set_shard(id);

  SnapshotOptions snapshot_options;
  snapshot_options.version = version;
  snapshot_options.cell_size_m = options_.snapshot_cell_size_m;
  std::shared_ptr<const MapSnapshot> snapshot = BuildSnapshot(
      imputed, estimator_factory_(), rebuild_rng, snapshot_options);
  store_->Publish(id, snapshot);

  {
    std::lock_guard<std::mutex> lock(state->mu);
    state->last_imputed = std::move(imputed);
    state->has_imputed = true;
    state->since_rebuild.Reset();
  }
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.rebuilds_completed;
    stats_.last_rebuild_seconds = timer.ElapsedSeconds();
  }
}

void MapUpdater::Start() {
  // lifecycle_mu_ serializes Start/Stop against each other (the loop
  // thread never takes it, so Stop can join while holding it). Without
  // it, a Start racing a Stop could reset stop_ before the old loop
  // thread observed it — stranding that thread and blocking Stop's join
  // forever.
  std::lock_guard<std::mutex> lifecycle(lifecycle_mu_);
  std::lock_guard<std::mutex> lock(loop_mu_);
  if (loop_.joinable()) return;
  stop_ = false;
  loop_ = std::thread([this] { TriggerLoop(); });
}

void MapUpdater::Stop() {
  std::lock_guard<std::mutex> lifecycle(lifecycle_mu_);
  std::thread to_join;
  {
    std::lock_guard<std::mutex> lock(loop_mu_);
    if (!loop_.joinable()) return;
    stop_ = true;
    to_join = std::move(loop_);
  }
  loop_cv_.notify_all();
  to_join.join();
}

void MapUpdater::TriggerLoop() {
  const auto poll = std::chrono::duration<double, std::milli>(
      options_.poll_interval_ms);
  while (true) {
    {
      std::unique_lock<std::mutex> lock(loop_mu_);
      loop_cv_.wait_for(lock, poll, [this] { return stop_; });
      if (stop_) return;
    }
    std::vector<rmap::ShardId> ids;
    {
      std::lock_guard<std::mutex> lock(shards_mu_);
      ids.reserve(shards_.size());
      for (const auto& [id, state] : shards_) ids.push_back(id);
    }
    for (const rmap::ShardId& id : ids) {
      {
        std::lock_guard<std::mutex> lock(loop_mu_);
        if (stop_) return;
      }
      ShardState* state = Find(id);
      if (state == nullptr) continue;
      bool trip = false;
      {
        std::lock_guard<std::mutex> lock(state->mu);
        const size_t pending = state->deltas.size();
        trip = pending >= options_.min_new_observations ||
               (pending > 0 && state->since_rebuild.ElapsedSeconds() >
                                   options_.max_staleness_seconds);
      }
      if (trip) Rebuild(id, state);
    }
  }
}

size_t MapUpdater::PendingObservations(const rmap::ShardId& id) const {
  ShardState* state = Find(id);
  if (state == nullptr) return 0;
  std::lock_guard<std::mutex> lock(state->mu);
  return state->deltas.size();
}

MapUpdaterStats MapUpdater::Stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

}  // namespace rmi::serving
