#include "serving/map_updater.h"

#include <chrono>
#include <filesystem>
#include <stdexcept>
#include <string>
#include <utility>

#include "common/check.h"
#include "common/hash.h"
#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "serving/snapshot_persist.h"

namespace rmi::serving {

namespace {

/// Deterministic per-shard stream seed: splitmix64 finalizer over the root
/// seed mixed with the shard coordinates. Every shard's stream is a pure
/// function of (seed, shard), never of registration or scheduling order.
uint64_t ShardSeed(uint64_t seed, const rmap::ShardId& id) {
  return SplitMix64(seed ^ ((uint64_t(uint32_t(id.building)) << 32) |
                            uint64_t(uint32_t(id.floor))));
}

/// Process-wide updater series. Per-instance exact numbers stay in
/// MapUpdater::stats_ (tests assert them per updater); these aggregate
/// across every updater for the scrape.
struct UpdaterMetrics {
  obs::Counter& ingested = obs::GetCounter(
      "rmi_updater_ingested_total", "Survey observations accepted by Ingest");
  obs::Counter& started = obs::GetCounter(
      "rmi_updater_rebuilds_started_total", "Shard rebuilds started");
  obs::Counter& completed = obs::GetCounter(
      "rmi_updater_rebuilds_completed_total",
      "Shard rebuilds completed (each published a snapshot)");
  obs::Counter& warm = obs::GetCounter(
      "rmi_updater_rebuilds_warm_total",
      "Rebuilds that offered the imputer a warm-start context");
  obs::Counter& failed = obs::GetCounter(
      "rmi_updater_rebuild_failures_total",
      "Rebuilds whose impute/fit/publish pipeline threw (nothing "
      "published; the shard keeps serving its previous snapshot)");
  obs::Histogram& staleness_us = obs::GetHistogram(
      "rmi_updater_staleness_us",
      "Age of the oldest pending delta at snapshot publish, microseconds");
  obs::Histogram& stage_queue_us = obs::GetHistogram(
      "rmi_updater_stage_queue_wait_us",
      "Trip detection to worker pickup per rebuild, microseconds");
  obs::Histogram& stage_impute_us = obs::GetHistogram(
      "rmi_updater_stage_impute_us",
      "Differentiate + MNAR fill + impute per rebuild, microseconds");
  obs::Histogram& stage_fit_us = obs::GetHistogram(
      "rmi_updater_stage_fit_us",
      "Estimator fit + snapshot freeze per rebuild, microseconds");
  obs::Histogram& stage_publish_us = obs::GetHistogram(
      "rmi_updater_stage_publish_us",
      "Store hot-swap per rebuild, microseconds");
  obs::Counter& persisted = obs::GetCounter(
      "rmi_updater_snapshots_persisted_total",
      "Snapshot files durably renamed in after a publish");
  obs::Counter& persist_failures = obs::GetCounter(
      "rmi_updater_persist_failures_total",
      "Snapshot persist attempts that failed on I/O (the publish itself "
      "survived; WAL segments were retained)");
  obs::Counter& wal_append_failures = obs::GetCounter(
      "rmi_updater_wal_append_failures_total",
      "Ingest WAL appends that failed on I/O (the observation stayed "
      "buffered in memory)");
  obs::Counter& restores = obs::GetCounter(
      "rmi_updater_shards_restored_total",
      "Fresh registrations served by a snapshot restore instead of a cold "
      "impute cycle");
  obs::Histogram& stage_persist_us = obs::GetHistogram(
      "rmi_updater_stage_persist_us",
      "Snapshot file write + WAL trim per rebuild, microseconds");

  static UpdaterMetrics& Get() {
    static UpdaterMetrics* m = new UpdaterMetrics();
    return *m;
  }
};

}  // namespace

MapUpdater::MapUpdater(ShardedSnapshotStore* store,
                       const cluster::Differentiator* differentiator,
                       const imputers::Imputer* imputer,
                       EstimatorFactory estimator_factory,
                       const MapUpdaterOptions& options)
    : store_(store),
      differentiator_(differentiator),
      imputer_(imputer),
      estimator_factory_(std::move(estimator_factory)),
      options_(options) {
  RMI_CHECK(store_ != nullptr);
  RMI_CHECK(differentiator_ != nullptr);
  RMI_CHECK(imputer_ != nullptr);
  RMI_CHECK(estimator_factory_ != nullptr);
}

MapUpdater::~MapUpdater() { Stop(); }

MapUpdater::ShardState* MapUpdater::Find(const rmap::ShardId& id) const {
  std::lock_guard<std::mutex> lock(shards_mu_);
  const auto it = shards_.find(id);
  return it == shards_.end() ? nullptr : it->second.get();
}

std::string MapUpdater::ShardDir(const rmap::ShardId& id) const {
  if (options_.persist_dir.empty()) return "";
  return (std::filesystem::path(options_.persist_dir) /
          ("b" + std::to_string(id.building) + "_f" +
           std::to_string(id.floor)))
      .string();
}

void MapUpdater::OpenShardWal(const rmap::ShardId& id, ShardState* state,
                              uint64_t watermark) {
  store::Wal::Options wal_options;
  wal_options.sync_every = options_.wal_sync_every;
  store::Wal::ReplayResult replay;
  std::string error;
  auto wal = store::Wal::Open(
      (std::filesystem::path(state->shard_dir) / "wal").string(), watermark,
      wal_options, &replay, &error);
  if (wal == nullptr) {
    // Persistence degrades for this shard; serving is unaffected.
    UpdaterMetrics::Get().persist_failures.Add();
    return;
  }
  const size_t replayed = replay.records.size();
  {
    std::lock_guard<std::mutex> lock(state->mu);
    state->wal = std::move(wal);
    for (rmap::Record& r : replay.records) {
      state->deltas.push_back(std::move(r));
    }
    if (replayed > 0 && !state->delta_pending) {
      state->first_delta_us = obs::MonotonicUs();
      state->delta_pending = true;
    }
  }
  if (replayed > 0) {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.wal_records_replayed += replayed;
  }
}

bool MapUpdater::TryRestoreShard(const rmap::ShardId& id, ShardState* state) {
  // Scratch stream for the restore-time estimator re-fit (KNN's Fit is
  // deterministic and ignores it): the shard's own stream must stay
  // aligned with the uninterrupted run — forks are discarded below, one
  // per persisted snapshot version.
  Rng restore_rng(SplitMix64(ShardSeed(options_.seed, id)));
  LoadedSnapshot loaded;
  std::string error;
  size_t num_aps = 0;
  {
    std::lock_guard<std::mutex> lock(state->mu);
    num_aps = state->base.num_aps();
  }
  if (!LoadNewestSnapshot(state->shard_dir, id, num_aps, estimator_factory_,
                          restore_rng, options_.snapshot_cell_size_m,
                          positioning::RankingKernel::kQuant, &loaded,
                          &error)) {
    return false;
  }
  {
    std::lock_guard<std::mutex> rebuild_lock(state->rebuild_mu);
    std::lock_guard<std::mutex> lock(state->mu);
    state->base = std::move(loaded.base);
    state->base.set_shard(id);
    state->deltas.clear();
    state->delta_pending = false;
    state->last_imputed.reset();
    state->imputer_state.reset();
    state->last_mask.reset();
    state->last_snapshot.reset();
    // Resume the version sequence and RNG stream where the persisted run
    // left off: rebuild V consumes fork V, so discard one fork per
    // persisted version. (Caveat: *failed* rebuild attempts after the last
    // persisted publish also consumed forks the file cannot know about;
    // determinism across a crash is exact when rebuilds succeed.)
    state->next_version = loaded.snapshot_version + 1;
    state->rng = Rng(ShardSeed(options_.seed, id));
    for (uint64_t v = 1; v <= loaded.snapshot_version; ++v) {
      state->rng.Fork();
    }
    state->since_rebuild.Reset();
  }
  // Replays only segments at or above the snapshot's watermark — the ones
  // below are inside the base section just adopted.
  OpenShardWal(id, state, loaded.wal_watermark);
  store_->Publish(id, loaded.snapshot);
  UpdaterMetrics::Get().restores.Add();
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.shards_restored;
  }
  return true;
}

void MapUpdater::RegisterShard(const rmap::ShardId& id, rmap::RadioMap base) {
  RMI_CHECK(!base.empty());
  RMI_CHECK_GT(base.num_aps(), 0u);
  base.set_shard(id);
  ShardState* state = nullptr;
  bool fresh = false;
  {
    std::lock_guard<std::mutex> lock(shards_mu_);
    std::unique_ptr<ShardState>& slot = shards_[id];
    if (slot == nullptr) {
      // A fresh shard is fully initialized (base in place) before it
      // becomes visible in shards_: a concurrent Ingest that wins the
      // Find race must see the real width, never an empty base.
      slot = std::make_unique<ShardState>();
      slot->base = std::move(base);
      slot->rng = Rng(ShardSeed(options_.seed, id));
      slot->shard_dir = ShardDir(id);
      fresh = true;
    }
    state = slot.get();
  }
  if (!fresh) {
    // Same lock order as Rebuild (rebuild_mu, then mu): a re-registration
    // waits out any in-flight rebuild of the old base instead of pulling
    // its survey state from under it.
    std::lock_guard<std::mutex> rebuild_lock(state->rebuild_mu);
    std::lock_guard<std::mutex> lock(state->mu);
    state->base = std::move(base);
    state->deltas.clear();
    state->delta_pending = false;
    state->last_imputed.reset();
    state->imputer_state.reset();
    state->last_mask.reset();
    state->last_snapshot.reset();
    state->next_version = 1;
    state->rng = Rng(ShardSeed(options_.seed, id));
    // Registration replaces the survey lineage: the persisted state of the
    // old lineage must not shadow the new one (its snapshot versions are
    // higher), so wipe it and start a fresh WAL.
    if (!state->shard_dir.empty()) {
      state->wal.reset();
      std::error_code ec;
      std::filesystem::remove_all(state->shard_dir, ec);
    }
  }
  size_t num_shards = 0;
  {
    std::lock_guard<std::mutex> lock(shards_mu_);
    num_shards = shards_.size();
  }
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.shards = num_shards;
  }
  if (!state->shard_dir.empty()) {
    if (fresh && options_.restore_on_register && TryRestoreShard(id, state)) {
      // Restored and published; replayed deltas rebuild when triggers trip.
      return;
    }
    if (fresh) {
      // Cold start with persistence: whatever survives on disk belongs to
      // a lineage we could not (or chose not to) restore — replaying its
      // WAL against the caller's base would splice deltas onto the wrong
      // survey state. Clean slate instead.
      std::error_code ec;
      std::filesystem::remove_all(state->shard_dir, ec);
    }
    OpenShardWal(id, state, 0);
  }
  Rebuild(id, state);  // first impute + fit + publish, synchronous
}

void MapUpdater::Ingest(const rmap::ShardId& id, rmap::Record observation) {
  ShardState* state = Find(id);
  if (state == nullptr) {
    throw std::runtime_error("ingest into unregistered shard " +
                             rmap::ToString(id));
  }
  {
    std::lock_guard<std::mutex> lock(state->mu);
    if (observation.rssi.size() != state->base.num_aps()) {
      throw std::runtime_error("ingested observation width does not match "
                               "shard " +
                               rmap::ToString(id));
    }
    if (!state->delta_pending) {
      state->first_delta_us = obs::MonotonicUs();
      state->delta_pending = true;
    }
    state->deltas.push_back(std::move(observation));
    if (state->wal != nullptr) {
      // Group-commit durability for the delta, under the same mutex that
      // ordered it into the buffer — WAL order is fold order. An append
      // failure is contained: the observation stays buffered in memory.
      std::string wal_error;
      if (!state->wal->Append(state->deltas.back(), &wal_error)) {
        UpdaterMetrics::Get().wal_append_failures.Add();
      }
    }
  }
  UpdaterMetrics::Get().ingested.Add();
  std::lock_guard<std::mutex> lock(stats_mu_);
  ++stats_.ingested;
}

bool MapUpdater::RebuildNow(const rmap::ShardId& id) {
  ShardState* state = Find(id);
  if (state == nullptr) return false;
  Rebuild(id, state);
  return true;
}

void MapUpdater::Rebuild(const rmap::ShardId& id, ShardState* state,
                         double queue_wait_seconds) {
  // One rebuild at a time per shard; the delta mutex is only held for the
  // cheap fold/copy below, never during the impute/fit phase, so Ingest
  // keeps flowing while the pipeline runs.
  std::lock_guard<std::mutex> rebuild_lock(state->rebuild_mu);
  UpdaterMetrics& metrics = UpdaterMetrics::Get();
  metrics.started.Add();
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.rebuilds_started;
  }
  Timer timer;

  rmap::RadioMap working;
  std::shared_ptr<const rmap::RadioMap> previous;
  std::shared_ptr<const imputers::ImputerState> warm_state;
  std::shared_ptr<const rmap::MaskMatrix> previous_mask;
  std::shared_ptr<const MapSnapshot> previous_snapshot;
  size_t pre_delta_rows = 0;
  uint64_t version = 0;
  double first_delta_us = 0.0;
  bool drained_deltas = false;
  uint64_t wal_watermark = 0;
  {
    std::lock_guard<std::mutex> lock(state->mu);
    pre_delta_rows = state->base.size();
    for (rmap::Record& r : state->deltas) state->base.Add(std::move(r));
    state->deltas.clear();
    if (state->wal != nullptr) {
      // Seal the segments whose records were just folded; the new active
      // seq is the watermark the snapshot file will carry (a restart
      // replays only segments at or above it). Rotating under the same
      // mutex hold as the fold keeps segment contents aligned with what
      // entered the base. A rotate failure leaves the watermark 0, which
      // skips this rebuild's persist — a snapshot claiming watermark 0
      // would make a restart double-apply the folded deltas.
      std::string wal_error;
      wal_watermark = state->wal->Rotate(&wal_error);
    }
    if (state->delta_pending) {
      // This rebuild drains the pending window; its publish settles the
      // staleness clock even if a new window opens while the pipeline
      // runs (that one is the next rebuild's to settle).
      first_delta_us = state->first_delta_us;
      drained_deltas = true;
      state->delta_pending = false;
    }
    working = state->base;
    if (options_.incremental) {
      previous = state->last_imputed;  // O(1) pointer grab, never a copy
      warm_state = state->imputer_state;
      previous_mask = state->last_mask;
      previous_snapshot = state->last_snapshot;
    }
    version = state->next_version++;
  }

  // The shard's private stream (rebuild_mu serializes access): fork N of
  // shard S is the same generator on every run with this root seed, no
  // matter which pool worker executes the rebuild.
  Rng rebuild_rng = state->rng.Fork();

  // The paper pipeline, online: differentiate -> MNAR fill -> (re-)impute
  // -> fit -> freeze -> hot-swap. The whole pipeline is containment-
  // wrapped: a throwing differentiator/imputer/estimator publishes
  // nothing, the shard keeps serving its previous snapshot (the folded
  // deltas stay in the base for the next attempt), and the trigger
  // thread — which may be running this rebuild directly — survives.
  try {
    Timer impute_timer;
    rmap::MaskMatrix mask =
        options_.delta_aware_differentiation && previous_mask != nullptr
            ? differentiator_->DifferentiateDelta(working, *previous_mask,
                                                  pre_delta_rows, rebuild_rng)
            : differentiator_->Differentiate(working, rebuild_rng);
    // Saved pre-fill: FillMnar flips kMnar cells to observed values in
    // place, and delta-aware reuse needs the labels as differentiated.
    std::shared_ptr<const rmap::MaskMatrix> mask_for_next;
    if (options_.incremental) {
      mask_for_next = std::make_shared<const rmap::MaskMatrix>(mask);
    }
    imputers::FillMnar(&working, &mask);
    imputers::IncrementalContext ctx;
    std::shared_ptr<const imputers::ImputerState> new_state;
    std::vector<size_t> dirty_rows;
    const bool warm = previous != nullptr;
    if (warm) {
      ctx.previous_imputed = previous.get();
      // The *merged-map* row count the previous imputation claims to cover
      // — not previous.size(): a record-dropping backend (CaseDeletion)
      // makes them differ, and the base implementation's alignment guard
      // must see that and fall back to a cold rebuild instead of splicing
      // from misaligned rows.
      ctx.num_previous_records = pre_delta_rows;
      ctx.previous_state = std::move(warm_state);
    }
    if (options_.incremental) {
      ctx.dirty_neighbors = options_.dirty_neighbors;
      ctx.max_dirty_fraction = options_.max_dirty_fraction;
      ctx.state_out = &new_state;
      if (warm) ctx.dirty_rows_out = &dirty_rows;
    }
    rmap::RadioMap imputed =
        imputer_->ImputeIncremental(working, mask, ctx, rebuild_rng);
    imputed.set_shard(id);
    const double impute_seconds = impute_timer.ElapsedSeconds();

    Timer fit_timer;
    SnapshotOptions snapshot_options;
    snapshot_options.version = version;
    snapshot_options.cell_size_m = options_.snapshot_cell_size_m;
    // Warm snapshot build: only when this rebuild actually ran the warm
    // imputation path (dirty_rows then describes the imputed map) and the
    // previous snapshot survived. Each warm stage re-verifies its own
    // preconditions inside BuildSnapshot and degrades to cold.
    if (warm && previous_snapshot != nullptr &&
        (options_.estimator_warm_start || options_.incremental_index)) {
      snapshot_options.warm_previous = previous_snapshot.get();
      snapshot_options.changed_rows = &dirty_rows;
      snapshot_options.warm_estimator = options_.estimator_warm_start;
      snapshot_options.warm_index = options_.incremental_index;
    }
    std::shared_ptr<const MapSnapshot> snapshot = BuildSnapshot(
        imputed, estimator_factory_(), rebuild_rng, snapshot_options);
    const double fit_seconds = fit_timer.ElapsedSeconds();

    Timer publish_timer;
    store_->Publish(id, snapshot);
    const double publish_seconds = publish_timer.ElapsedSeconds();
    if (drained_deltas) {
      // Freshness SLO input: the oldest observation of the drained window
      // waited this long to be reflected in a served snapshot.
      metrics.staleness_us.Observe(obs::MonotonicUs() - first_delta_us);
    }

    {
      std::lock_guard<std::mutex> lock(state->mu);
      // The imputed copy and warm-start blob only feed the next
      // incremental rebuild; in cold mode retaining them would just
      // double every shard's resident map for nothing.
      if (options_.incremental) {
        state->last_imputed =
            std::make_shared<const rmap::RadioMap>(std::move(imputed));
        state->imputer_state = std::move(new_state);
        state->last_mask = std::move(mask_for_next);
        state->last_snapshot = snapshot;
      }
      state->since_rebuild.Reset();
    }

    // Durable side of the publish. state->base is stable here: only the
    // rebuild path mutates it (serialized by rebuild_mu — re-registration
    // takes it too), so persisting reads it without holding mu and never
    // stalls Ingest. A persist failure (or the rotate failure above) skips
    // the file and the WAL trim — the retained segments keep the deltas
    // recoverable — and serving continues on the published snapshot.
    double persist_seconds = 0.0;
    bool persisted_file = false;
    if (!state->shard_dir.empty()) {
      Timer persist_timer;
      const bool watermark_ok = state->wal == nullptr || wal_watermark != 0;
      std::string persist_error;
      if (watermark_ok &&
          PersistMapSnapshot(*snapshot, id, state->base, wal_watermark,
                             state->shard_dir, &persist_error)) {
        persisted_file = true;
        PruneSnapshotFiles(state->shard_dir, options_.keep_snapshot_files);
        if (state->wal != nullptr) {
          state->wal->DeleteSegmentsBelow(wal_watermark);
        }
        metrics.persisted.Add();
      } else {
        metrics.persist_failures.Add();
      }
      persist_seconds = persist_timer.ElapsedSeconds();
      metrics.stage_persist_us.Observe(persist_seconds * 1e6);
    }

    // Registry side: aggregate counters + stage histograms, plus this
    // shard's labeled last-rebuild gauges (resolved once; rebuild_mu makes
    // this shard's Set single-writer).
    metrics.completed.Add();
    if (warm) metrics.warm.Add();
    metrics.stage_queue_us.Observe(queue_wait_seconds * 1e6);
    metrics.stage_impute_us.Observe(impute_seconds * 1e6);
    metrics.stage_fit_us.Observe(fit_seconds * 1e6);
    metrics.stage_publish_us.Observe(publish_seconds * 1e6);
    if (state->rebuilds_counter == nullptr) {
      const std::string label = "shard=\"" + rmap::ToString(id) + "\"";
      state->last_impute_gauge = &obs::GetGauge(
          "rmi_updater_last_impute_seconds",
          "Impute phase of the shard's most recent rebuild, seconds", label);
      state->last_fit_gauge = &obs::GetGauge(
          "rmi_updater_last_fit_seconds",
          "Fit phase of the shard's most recent rebuild, seconds", label);
      state->last_publish_gauge = &obs::GetGauge(
          "rmi_updater_last_publish_seconds",
          "Publish phase of the shard's most recent rebuild, seconds",
          label);
      state->rebuilds_counter = &obs::GetCounter(
          "rmi_updater_shard_rebuilds_total", "Completed rebuilds per shard",
          label);
    }
    state->last_impute_gauge->Set(impute_seconds);
    state->last_fit_gauge->Set(fit_seconds);
    state->last_publish_gauge->Set(publish_seconds);
    state->rebuilds_counter->Add();
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.rebuilds_completed;
      stats_.last_rebuild_seconds = timer.ElapsedSeconds();
      if (persisted_file) {
        ++stats_.snapshots_persisted;
      } else if (!state->shard_dir.empty()) {
        ++stats_.snapshot_persist_failures;
      }
      RebuildStats& shard_stats = stats_.per_shard[id];
      ++shard_stats.completed;
      if (warm) ++shard_stats.warm;
      if (persisted_file) ++shard_stats.persisted;
      shard_stats.last_queue_wait_seconds = queue_wait_seconds;
      shard_stats.last_impute_seconds = impute_seconds;
      shard_stats.last_fit_seconds = fit_seconds;
      shard_stats.last_publish_seconds = publish_seconds;
      shard_stats.last_persist_seconds = persist_seconds;
      shard_stats.last_total_seconds =
          impute_seconds + fit_seconds + publish_seconds;
      shard_stats.total_busy_seconds += shard_stats.last_total_seconds;
    }
  } catch (const std::exception&) {
    metrics.failed.Add();
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.rebuilds_failed;
    ++stats_.per_shard[id].failed;
  }
}

void MapUpdater::Start() {
  // lifecycle_mu_ serializes Start/Stop against each other (the loop
  // thread never takes it, so Stop can join while holding it). Without
  // it, a Start racing a Stop could reset stop_ before the old loop
  // thread observed it — stranding that thread and blocking Stop's join
  // forever.
  std::lock_guard<std::mutex> lifecycle(lifecycle_mu_);
  std::lock_guard<std::mutex> lock(loop_mu_);
  if (loop_.joinable()) return;
  stop_ = false;
  loop_ = std::thread([this] { TriggerLoop(); });
}

void MapUpdater::Stop() {
  std::lock_guard<std::mutex> lifecycle(lifecycle_mu_);
  std::thread to_join;
  {
    std::lock_guard<std::mutex> lock(loop_mu_);
    if (!loop_.joinable()) return;
    stop_ = true;
    to_join = std::move(loop_);
  }
  loop_cv_.notify_all();
  to_join.join();
}

void MapUpdater::TriggerLoop() {
  const auto poll = std::chrono::duration<double, std::milli>(
      options_.poll_interval_ms);
  // The bounded rebuild pool lives for the whole loop: its workers (and
  // their thread_local autodiff Workspaces) persist across trigger
  // batches, so consecutive rebuilds of same-shaped shards reuse the
  // arena instead of re-allocating tape buffers.
  ThreadPool pool(options_.rebuild_threads);
  while (true) {
    {
      std::unique_lock<std::mutex> lock(loop_mu_);
      loop_cv_.wait_for(lock, poll, [this] { return stop_; });
      if (stop_) return;
    }
    std::vector<rmap::ShardId> ids;
    {
      std::lock_guard<std::mutex> lock(shards_mu_);
      ids.reserve(shards_.size());
      for (const auto& [id, state] : shards_) ids.push_back(id);
    }
    // Collect every tripped shard first, then fan the batch out over the
    // pool: independent shards rebuild concurrently (bounded by
    // rebuild_threads), and per-shard ordering holds because a shard
    // appears at most once per batch and rebuild_mu serializes across
    // batches.
    std::vector<std::pair<rmap::ShardId, ShardState*>> tripped;
    for (const rmap::ShardId& id : ids) {
      ShardState* state = Find(id);
      if (state == nullptr) continue;
      bool trip = false;
      {
        std::lock_guard<std::mutex> lock(state->mu);
        const size_t pending = state->deltas.size();
        trip = pending >= options_.min_new_observations ||
               (pending > 0 && state->since_rebuild.ElapsedSeconds() >
                                   options_.max_staleness_seconds);
      }
      if (trip) tripped.emplace_back(id, state);
    }
    if (tripped.empty()) continue;
    {
      std::lock_guard<std::mutex> lock(loop_mu_);
      if (stop_) return;
    }
    if (tripped.size() == 1) {
      // A single tripped shard runs directly on the trigger thread — not
      // through ParallelFor, whose worker context would force an imputer's
      // *nested* training pool inline (ThreadPool's oversubscription
      // guard) and serialize training that RebuildNow/RegisterShard would
      // run parallel. Matches the pre-pool behavior exactly.
      Rebuild(tripped[0].first, tripped[0].second, 0.0);
      continue;
    }
    Timer queue_timer;
    pool.ParallelFor(tripped.size(), [&](size_t /*worker*/, size_t i) {
      {
        // A Stop() mid-batch skips the rebuilds not yet started (their
        // deltas stay buffered for the next Start); every *started*
        // rebuild still runs to completion and publishes.
        std::lock_guard<std::mutex> lock(loop_mu_);
        if (stop_) return;
      }
      // Time from trip detection to this worker picking the shard up —
      // under a saturated pool this is the serialization backlog the
      // rebuild bench measures.
      const double queue_wait = queue_timer.ElapsedSeconds();
      Rebuild(tripped[i].first, tripped[i].second, queue_wait);
    });
  }
}

size_t MapUpdater::PendingObservations(const rmap::ShardId& id) const {
  ShardState* state = Find(id);
  if (state == nullptr) return 0;
  std::lock_guard<std::mutex> lock(state->mu);
  return state->deltas.size();
}

MapUpdaterStats MapUpdater::Stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

}  // namespace rmi::serving
