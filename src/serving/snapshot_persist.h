// The bridge between serving snapshots and the store's on-disk format.
//
// PersistMapSnapshot flattens a just-published MapSnapshot (plus the
// folded survey base and WAL watermark) into one .rmsnap file through the
// store's durable write protocol. LoadNewestSnapshot is the restart path:
// map the newest valid file, decode the survey base, reconstitute a full
// serving MapSnapshot around the mapping — estimator re-fitted from the
// mapped reference sections (and ABI-checked bit-for-bit against the
// file's quant tables), spatial index restored from the persisted grid
// image — and hand back everything RegisterShard needs to resume the
// update loop without re-running imputation.
//
// Restore is strict: shard id, width, and the quantization ABI must all
// match, and any disagreement refuses the file (the caller falls back to
// a cold re-impute). A refused restore can never serve wrong answers; at
// worst it serves slowly once.
#ifndef RMI_SERVING_SNAPSHOT_PERSIST_H_
#define RMI_SERVING_SNAPSHOT_PERSIST_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "common/rng.h"
#include "positioning/estimators.h"
#include "radiomap/radio_map.h"
#include "serving/snapshot.h"

namespace rmi::serving {

/// Writes `snapshot` + `base` as `dir`/snapshot.<version>.rmsnap (the
/// directory is created if missing) via temp + fsync + atomic rename.
/// False with *error on I/O failure; never leaves a partial file visible.
bool PersistMapSnapshot(const MapSnapshot& snapshot,
                        const rmap::ShardId& shard,
                        const rmap::RadioMap& base, uint64_t wal_watermark,
                        const std::string& dir, std::string* error);

/// What LoadNewestSnapshot reconstitutes from a mapped file.
struct LoadedSnapshot {
  /// Ready to publish: estimator fitted, index restored, checksum stamped,
  /// and the mmap parked in `backing` so the mapping lives exactly as long
  /// as the snapshot.
  std::shared_ptr<const MapSnapshot> snapshot;
  /// The decoded survey base the updater resumes folding deltas into.
  rmap::RadioMap base;
  uint64_t snapshot_version = 0;
  uint64_t wal_watermark = 0;
  std::string path;  ///< the file that was restored
};

/// Maps the newest valid snapshot under `dir` and rebuilds serving state
/// from it. `estimator_factory` supplies the estimator shape (must match
/// what the shard normally fits); `rng` feeds its Fit. Fails — false, with
/// *error, nothing published — when no valid file exists, the file's shard
/// or width disagrees with the expected ones, the base section is absent,
/// or a re-fitted KNN estimator's quantization tables differ from the
/// file's sections (the ABI canary: byte equality or cold rebuild).
bool LoadNewestSnapshot(const std::string& dir,
                        const rmap::ShardId& expected_shard,
                        size_t expected_aps,
                        const std::function<std::unique_ptr<
                            positioning::LocationEstimator>()>&
                            estimator_factory,
                        Rng& rng, double cell_size_m,
                        positioning::RankingKernel ranking_kernel,
                        LoadedSnapshot* out, std::string* error);

/// Deletes all but the newest `keep` snapshot files under `dir` (keep >= 1
/// is forced: the newest file is never pruned).
void PruneSnapshotFiles(const std::string& dir, size_t keep);

}  // namespace rmi::serving

#endif  // RMI_SERVING_SNAPSHOT_PERSIST_H_
