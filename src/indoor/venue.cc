#include "indoor/venue.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/rng.h"

namespace rmi::indoor {

namespace {

using geom::Point;
using geom::Polygon;

/// Thin wall rectangle along one room edge, split around a door gap when
/// `door_center` lies on this edge (door_center < 0 disables the gap).
void AddWallWithDoor(std::vector<Polygon>* walls, bool horizontal,
                     double fixed, double lo, double hi, double thickness,
                     double door_center, double door_width) {
  const double t2 = thickness / 2.0;
  auto add = [&](double a, double b) {
    if (b - a < 1e-9) return;
    if (horizontal) {
      walls->push_back(Polygon::Rectangle(a, fixed - t2, b, fixed + t2));
    } else {
      walls->push_back(Polygon::Rectangle(fixed - t2, a, fixed + t2, b));
    }
  };
  if (door_center >= lo && door_center <= hi) {
    const double d2 = door_width / 2.0;
    add(lo, std::max(lo, door_center - d2));
    add(std::min(hi, door_center + d2), hi);
  } else {
    add(lo, hi);
  }
}

}  // namespace

Venue GenerateVenue(const VenueSpec& spec) {
  RMI_CHECK_GE(spec.rooms_x, 1u);
  RMI_CHECK_GE(spec.rooms_y, 1u);
  RMI_CHECK_GT(spec.num_aps, 0u);
  const double room_w =
      (spec.width - static_cast<double>(spec.rooms_x + 1) * spec.hallway_width) /
      static_cast<double>(spec.rooms_x);
  const double room_h =
      (spec.height - static_cast<double>(spec.rooms_y + 1) * spec.hallway_width) /
      static_cast<double>(spec.rooms_y);
  RMI_CHECK_GT(room_w, 1.0);
  RMI_CHECK_GT(room_h, 1.0);

  Venue v;
  v.name = spec.name;
  v.width = spec.width;
  v.height = spec.height;
  v.bluetooth = spec.bluetooth;

  Rng rng(spec.seed);

  // Rooms and walls. Room (i, j) spans
  //   x in [hw + i*(room_w+hw), hw + i*(room_w+hw) + room_w]
  //   y in [hw + j*(room_h+hw), ... + room_h]
  std::vector<Polygon> wall_polys;
  const double hw = spec.hallway_width;
  std::vector<Point> room_centers;
  for (size_t j = 0; j < spec.rooms_y; ++j) {
    for (size_t i = 0; i < spec.rooms_x; ++i) {
      const double x0 = hw + static_cast<double>(i) * (room_w + hw);
      const double y0 = hw + static_cast<double>(j) * (room_h + hw);
      const double x1 = x0 + room_w;
      const double y1 = y0 + room_h;
      v.rooms.push_back(Polygon::Rectangle(x0, y0, x1, y1));
      room_centers.push_back({(x0 + x1) / 2.0, (y0 + y1) / 2.0});
      const double door_x = (x0 + x1) / 2.0;
      // Bottom wall carries the door (faces the hallway below).
      AddWallWithDoor(&wall_polys, /*horizontal=*/true, y0, x0, x1,
                      spec.wall_thickness, door_x, spec.door_width);
      AddWallWithDoor(&wall_polys, /*horizontal=*/true, y1, x0, x1,
                      spec.wall_thickness, /*door_center=*/-1.0, 0.0);
      AddWallWithDoor(&wall_polys, /*horizontal=*/false, x0, y0, y1,
                      spec.wall_thickness, /*door_center=*/-1.0, 0.0);
      AddWallWithDoor(&wall_polys, /*horizontal=*/false, x1, y0, y1,
                      spec.wall_thickness, /*door_center=*/-1.0, 0.0);
    }
  }
  v.walls = geom::MultiPolygon(std::move(wall_polys));

  // Access points: uniform scatter, biased to hallway intersections for a
  // few "infrastructure" APs, plus in-room APs (shops deploy their own).
  for (size_t a = 0; a < spec.num_aps; ++a) {
    Point p{rng.Uniform(0.5, spec.width - 0.5),
            rng.Uniform(0.5, spec.height - 0.5)};
    v.aps.push_back(AccessPoint{p});
  }

  // RPs along hallway centerlines. Horizontal centerline j at
  // y = j*(room_h+hw) + hw/2, j in [0, rooms_y]; one survey path each.
  const double margin = hw / 2.0;
  auto add_rp = [&](Point p) -> size_t {
    v.rps.push_back(p);
    return v.rps.size() - 1;
  };
  std::vector<std::vector<size_t>> horizontal_paths(spec.rooms_y + 1);
  for (size_t j = 0; j <= spec.rooms_y; ++j) {
    const double y = static_cast<double>(j) * (room_h + hw) + hw / 2.0;
    for (double x = margin; x <= spec.width - margin + 1e-9;
         x += spec.rp_spacing) {
      horizontal_paths[j].push_back(add_rp({x, y}));
    }
  }
  std::vector<std::vector<size_t>> vertical_paths(spec.rooms_x + 1);
  for (size_t i = 0; i <= spec.rooms_x; ++i) {
    const double x = static_cast<double>(i) * (room_w + hw) + hw / 2.0;
    for (double y = margin; y <= spec.height - margin + 1e-9;
         y += spec.rp_spacing) {
      vertical_paths[i].push_back(add_rp({x, y}));
    }
  }

  // In-room RPs for a sampled fraction of rooms; each is visited as a detour
  // from the hallway below the room (through the door).
  const size_t num_rooms = room_centers.size();
  const size_t visited =
      static_cast<size_t>(std::round(spec.room_visit_fraction *
                                     static_cast<double>(num_rooms)));
  std::vector<size_t> room_order = rng.SampleWithoutReplacement(num_rooms, visited);
  // room index -> (hallway path j, insertion handled below)
  std::vector<std::pair<size_t, size_t>> room_rp;  // (room, rp index)
  for (size_t r : room_order) {
    room_rp.emplace_back(r, add_rp(room_centers[r]));
  }

  // Paths: horizontal hallway paths get detours into the visited rooms whose
  // door opens onto them (room (i, j)'s door faces hallway j).
  for (size_t j = 0; j <= spec.rooms_y; ++j) {
    std::vector<size_t> path = horizontal_paths[j];
    if (path.size() < 2) continue;
    // Collect rooms in row j (door faces hallway centerline j).
    std::vector<std::pair<size_t, size_t>> detours;  // (nearest path pos, rp)
    for (const auto& [room, rp_idx] : room_rp) {
      const size_t row = room / spec.rooms_x;
      if (row != j) continue;  // hallway below room row `row` is hallway `row`
      // Find the hallway RP nearest the room door (x = room center x).
      const double door_x = room_centers[room].x;
      size_t best = 0;
      double best_d = 1e300;
      for (size_t p = 0; p < path.size(); ++p) {
        const double d = std::fabs(v.rps[path[p]].x - door_x);
        if (d < best_d) {
          best_d = d;
          best = p;
        }
      }
      detours.emplace_back(best, rp_idx);
    }
    std::sort(detours.begin(), detours.end());
    // Build path with detours: ... rp[k], room, rp[k], ...
    std::vector<size_t> with_detours;
    size_t di = 0;
    for (size_t p = 0; p < path.size(); ++p) {
      with_detours.push_back(path[p]);
      while (di < detours.size() && detours[di].first == p) {
        with_detours.push_back(detours[di].second);
        with_detours.push_back(path[p]);
        ++di;
      }
    }
    v.paths.push_back(std::move(with_detours));
  }
  for (auto& path : vertical_paths) {
    if (path.size() >= 2) v.paths.push_back(std::move(path));
  }

  RMI_CHECK(!v.paths.empty());
  RMI_CHECK(!v.rps.empty());
  return v;
}

VenueSpec KaideSpec(double scale) {
  RMI_CHECK_GT(scale, 0.0);
  VenueSpec s;
  s.name = "Kaide";
  // Table V: 3225.7 m^2, 114 RPs (3.53 / 100 m^2), 671 APs.
  s.width = 57.0;
  s.height = 57.0;
  s.rooms_x = 4;
  s.rooms_y = 4;
  s.hallway_width = 3.2;
  s.num_aps = std::max<size_t>(24, static_cast<size_t>(671 * scale));
  s.rp_spacing = 5.4;
  s.room_visit_fraction = 0.5;
  s.bluetooth = false;
  s.seed = 1001;
  return s;
}

VenueSpec WandaSpec(double scale) {
  RMI_CHECK_GT(scale, 0.0);
  VenueSpec s;
  s.name = "Wanda";
  // Table V: 4458.5 m^2, 118 RPs (2.65 / 100 m^2), 929 APs.
  s.width = 74.0;
  s.height = 60.0;
  s.rooms_x = 5;
  s.rooms_y = 4;
  s.hallway_width = 3.4;
  s.num_aps = std::max<size_t>(24, static_cast<size_t>(929 * scale));
  s.rp_spacing = 6.6;
  s.room_visit_fraction = 0.4;
  s.bluetooth = false;
  s.seed = 2002;
  return s;
}

VenueSpec LonghuSpec(double scale) {
  RMI_CHECK_GT(scale, 0.0);
  VenueSpec s;
  s.name = "Longhu";
  // Table V: 6504.1 m^2, 202 RPs (3.11 / 100 m^2), 330 Bluetooth APs.
  s.width = 85.0;
  s.height = 76.0;
  s.rooms_x = 5;
  s.rooms_y = 5;
  s.hallway_width = 3.6;
  s.num_aps = std::max<size_t>(16, static_cast<size_t>(330 * scale));
  s.rp_spacing = 5.8;
  s.room_visit_fraction = 0.5;
  s.bluetooth = true;
  s.seed = 3003;
  return s;
}

}  // namespace rmi::indoor
