// Indoor venue model + parametric synthetic venue generator.
//
// The paper evaluates on two Wi-Fi shopping malls (Kaide, Wanda) and one
// Bluetooth venue (Longhu) from a proprietary Microsoft Research dataset.
// This module synthesizes venues with the same structural statistics
// (Table V): floor area, RP density, AP count, and survey-path layout.
//
// Layout scheme: a rooms_x x rooms_y grid of rectangular rooms separated by
// hallways; thin wall rectangles (with door gaps) form the venue's
// topological-entity multipolygon; reference points (RPs) are placed along
// hallway centerlines and in a fraction of rooms; survey paths follow the
// hallways with detours into visited rooms (cf. paper Fig. 2).
#ifndef RMI_INDOOR_VENUE_H_
#define RMI_INDOOR_VENUE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "geometry/geometry.h"

namespace rmi::indoor {

/// A deployed access point (Wi-Fi AP or Bluetooth beacon).
struct AccessPoint {
  geom::Point position;
};

/// Generator parameters.
struct VenueSpec {
  std::string name = "venue";
  double width = 50.0;             ///< floor bounding box, meters
  double height = 50.0;
  size_t rooms_x = 4;              ///< room grid
  size_t rooms_y = 4;
  double hallway_width = 3.0;      ///< meters
  double wall_thickness = 0.15;    ///< meters
  double door_width = 1.2;         ///< gap in the hallway-facing wall
  size_t num_aps = 100;            ///< access points scattered in the venue
  double rp_spacing = 5.0;         ///< spacing of RPs along hallway centerlines
  double room_visit_fraction = 0.5;///< fraction of rooms with an in-room RP
  bool bluetooth = false;          ///< Bluetooth (vs Wi-Fi) radio profile
  uint64_t seed = 7;               ///< AP placement / room choice seed
};

/// A generated venue: geometry, radio infrastructure, and survey paths.
struct Venue {
  std::string name;
  double width = 0.0;
  double height = 0.0;
  bool bluetooth = false;

  /// Topological entities (walls) as a multipolygon — input to TopoAC.
  geom::MultiPolygon walls;
  /// Room interiors (for tests/visualization/area accounting).
  std::vector<geom::Polygon> rooms;
  /// Deployed APs; fingerprint dimensionality D = aps.size().
  std::vector<AccessPoint> aps;
  /// Preselected reference points.
  std::vector<geom::Point> rps;
  /// Survey paths as ordered RP-index sequences (waypoints).
  std::vector<std::vector<size_t>> paths;

  double FloorArea() const { return width * height; }
  /// RPs per 100 m^2 (Table V statistic).
  double RpDensityPer100m2() const {
    return FloorArea() > 0
               ? static_cast<double>(rps.size()) / FloorArea() * 100.0
               : 0.0;
  }
  size_t NumAps() const { return aps.size(); }
};

/// Generates a venue from a spec (deterministic for a fixed spec).
Venue GenerateVenue(const VenueSpec& spec);

/// Venue presets approximating the paper's Table V. `scale` in (0, 1]
/// shrinks the AP count (and survey effort downstream) to keep CPU-only
/// benches fast; scale = 1 targets the paper's sizes.
VenueSpec KaideSpec(double scale = 1.0);
VenueSpec WandaSpec(double scale = 1.0);
VenueSpec LonghuSpec(double scale = 1.0);

}  // namespace rmi::indoor

#endif  // RMI_INDOOR_VENUE_H_
