#include "indoor/ascii_map.h"

#include <cmath>

#include "common/check.h"

namespace rmi::indoor {

namespace {

class Raster {
 public:
  Raster(const Venue& venue, size_t width_chars) : venue_(venue) {
    RMI_CHECK_GE(width_chars, 8u);
    cols_ = width_chars;
    // Terminal cells are ~2x taller than wide; halve the row count to keep
    // the aspect ratio roughly square.
    rows_ = std::max<size_t>(
        4, static_cast<size_t>(std::round(
               static_cast<double>(width_chars) * venue.height /
               venue.width / 2.0)));
    grid_.assign(rows_, std::string(cols_, ' '));
  }

  void Paint(const geom::Point& p, char glyph) {
    if (p.x < 0 || p.y < 0 || p.x > venue_.width || p.y > venue_.height) {
      return;
    }
    const size_t c = std::min(
        cols_ - 1,
        static_cast<size_t>(std::lround(p.x / venue_.width * (cols_ - 1))));
    const size_t r = std::min(
        rows_ - 1,
        static_cast<size_t>(std::lround(p.y / venue_.height * (rows_ - 1))));
    grid_[rows_ - 1 - r][c] = glyph;  // top row = max y
  }

  /// Paints every raster cell whose center lies inside `poly`.
  void FillPolygon(const geom::Polygon& poly, char glyph) {
    for (size_t r = 0; r < rows_; ++r) {
      for (size_t c = 0; c < cols_; ++c) {
        const double x = (static_cast<double>(c) + 0.5) / cols_ * venue_.width;
        const double y =
            (static_cast<double>(rows_ - 1 - r) + 0.5) / rows_ * venue_.height;
        if (poly.Contains({x, y})) grid_[r][c] = glyph;
      }
    }
  }

  /// Rasterizes polygon edges (walls are thin; the fill above misses them).
  void StrokePolygon(const geom::Polygon& poly, char glyph) {
    for (size_t e = 0; e < poly.size(); ++e) {
      const geom::Segment s = poly.Edge(e);
      const double len = geom::Distance(s.a, s.b);
      const int steps = std::max(1, static_cast<int>(len / venue_.width *
                                                     static_cast<double>(cols_) * 2));
      for (int i = 0; i <= steps; ++i) {
        const double f = static_cast<double>(i) / steps;
        Paint(s.a + (s.b - s.a) * f, glyph);
      }
    }
  }

  std::string ToString() const {
    std::string out;
    for (const std::string& row : grid_) {
      out += row;
      out += '\n';
    }
    return out;
  }

 private:
  const Venue& venue_;
  size_t rows_ = 0, cols_ = 0;
  std::vector<std::string> grid_;
};

void PaintBase(Raster* raster, const Venue& venue,
               const AsciiMapOptions& options) {
  if (options.show_walls) {
    for (const geom::Polygon& wall : venue.walls.polygons()) {
      raster->StrokePolygon(wall, '#');
    }
  }
  if (options.show_rps) {
    for (const geom::Point& rp : venue.rps) raster->Paint(rp, 'o');
  }
  if (options.show_aps) {
    for (const AccessPoint& ap : venue.aps) raster->Paint(ap.position, 'A');
  }
}

}  // namespace

std::string RenderVenueAscii(const Venue& venue,
                             const AsciiMapOptions& options) {
  Raster raster(venue, options.width_chars);
  PaintBase(&raster, venue, options);
  return raster.ToString();
}

std::string RenderOverlayAscii(const Venue& venue,
                               const std::vector<geom::Point>& points,
                               const std::vector<char>& labels,
                               const AsciiMapOptions& options) {
  RMI_CHECK_EQ(points.size(), labels.size());
  Raster raster(venue, options.width_chars);
  PaintBase(&raster, venue, options);
  for (size_t i = 0; i < points.size(); ++i) {
    raster.Paint(points[i], labels[i]);
  }
  return raster.ToString();
}

}  // namespace rmi::indoor
