// ASCII floor-plan renderer — a dependency-free way to eyeball generated
// venues, survey paths, AP placements, and differentiation results in a
// terminal (the library's stand-in for the paper's Figs. 2/3/5-7).
#ifndef RMI_INDOOR_ASCII_MAP_H_
#define RMI_INDOOR_ASCII_MAP_H_

#include <string>
#include <vector>

#include "geometry/geometry.h"
#include "indoor/venue.h"

namespace rmi::indoor {

struct AsciiMapOptions {
  size_t width_chars = 72;   ///< output raster width (height keeps aspect)
  bool show_aps = true;      ///< 'A'
  bool show_rps = true;      ///< 'o'
  bool show_walls = true;    ///< '#'
};

/// Renders the venue floor plan. Glyphs: '#' wall, 'A' AP, 'o' RP,
/// '.' free floor, newline-terminated rows (top row = max y).
std::string RenderVenueAscii(const Venue& venue,
                             const AsciiMapOptions& options = {});

/// Renders arbitrary labeled points over the floor plan (e.g., cluster ids
/// as 0-9a-z, estimated positions as 'x'). Each overlay point paints
/// `labels[i]` at `points[i]`.
std::string RenderOverlayAscii(const Venue& venue,
                               const std::vector<geom::Point>& points,
                               const std::vector<char>& labels,
                               const AsciiMapOptions& options = {});

}  // namespace rmi::indoor

#endif  // RMI_INDOOR_ASCII_MAP_H_
