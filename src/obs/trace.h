// Sampled per-request tracing.
//
// A Trace is a request-scoped breadcrumb: a process-unique id plus a
// small fixed-capacity span buffer (no allocation after the trace itself
// is created). The Tracer samples deterministically — every Nth sampled
// decision point starts a trace, driven by one atomic counter, so a run
// that submits M requests through one tracer samples exactly
// ceil(M / N) of them — and keeps a bounded ring of recently *completed*
// traces for debugging slow requests after the fact.
//
// Cost model: the unsampled path is one relaxed load (sampling off) or
// one relaxed fetch_add plus a modulo (sampling on). Only the 1-in-N
// sampled requests allocate a Trace and record spans; span recording is
// plain writes into the trace's private buffer (a trace is owned by one
// request and mutated by whichever thread currently processes it —
// handoff happens through the same queues that hand off the request).
//
// Wiring: LocalizationServer::Submit starts a trace per sampled request
// and carries it through coalescing into the batch stages;
// ShardRouter::LocalizeBatch accepts an optional trace and records the
// classify / pin-validate / per-group rank spans of the fan-out.
#ifndef RMI_OBS_TRACE_H_
#define RMI_OBS_TRACE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace rmi::obs {

/// One timed stage inside a trace. Times are microseconds relative to
/// the trace's start.
struct Span {
  char name[24];  ///< NUL-terminated, truncated on copy
  double start_us = 0.0;
  double dur_us = 0.0;
};

/// A sampled request's breadcrumb. Fixed capacity: spans past kMaxSpans
/// are counted (dropped_spans) but not stored.
class Trace {
 public:
  static constexpr size_t kMaxSpans = 16;

  explicit Trace(uint64_t id) : id_(id), origin_us_(MonotonicUs()) {}

  uint64_t id() const { return id_; }
  /// Microseconds since the trace started — span start offsets use this.
  double ElapsedUs() const { return MonotonicUs() - origin_us_; }

  /// Records a completed stage [start_us, start_us + dur_us), relative
  /// to the trace start.
  void AddSpan(const char* name, double start_us, double dur_us);
  /// Records an instantaneous event (zero-duration span) at now.
  void AddEvent(const char* name) { AddSpan(name, ElapsedUs(), 0.0); }

  size_t num_spans() const { return num_spans_; }
  size_t dropped_spans() const { return dropped_spans_; }
  const Span& span(size_t i) const { return spans_[i]; }

  /// Total request duration, stamped by Tracer::Finish.
  double total_us() const { return total_us_; }

  /// One human-readable line per span (the demo/debug rendering).
  std::string ToString() const;

 private:
  friend class Tracer;
  uint64_t id_;
  double origin_us_;
  double total_us_ = 0.0;
  size_t num_spans_ = 0;
  size_t dropped_spans_ = 0;
  Span spans_[kMaxSpans];
};

/// Deterministic 1-in-N sampler plus the completed-trace ring.
///
/// Thread-safety: MaybeSample/Finish/Recent may be called concurrently.
/// The ring mutex is touched only for the rare sampled requests and for
/// Recent() — never on the unsampled hot path.
class Tracer {
 public:
  static constexpr size_t kRingCapacity = 64;

  /// The process-wide tracer the serving path records into.
  static Tracer& Global();

  Tracer() = default;
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// 0 disables sampling (the default); N samples every Nth decision.
  void SetSampleEvery(uint64_t n) {
    sample_every_.store(n, std::memory_order_relaxed);
  }
  uint64_t sample_every() const {
    return sample_every_.load(std::memory_order_relaxed);
  }

  /// The sampling decision point. Returns a fresh trace for exactly the
  /// decisions whose sequence number is a multiple of N (deterministic
  /// given submission order), nullptr otherwise — and always nullptr
  /// when sampling is off or the obs layer is disabled.
  std::unique_ptr<Trace> MaybeSample();

  /// Completes `trace`: stamps its total duration and retires it into
  /// the recent ring (evicting the oldest). Null-safe.
  void Finish(std::unique_ptr<Trace> trace);

  /// Recently completed traces, oldest first. A bounded copy — callers
  /// may hold it as long as they like.
  std::vector<Trace> Recent() const;

  uint64_t sampled_total() const {
    return sampled_.load(std::memory_order_relaxed);
  }
  uint64_t finished_total() const {
    return finished_.load(std::memory_order_relaxed);
  }

  /// Rewinds the sequence counter and clears the ring (tests only — the
  /// sampler's determinism contract is per fresh counter).
  void ResetForTesting();

 private:
  std::atomic<uint64_t> sample_every_{0};
  std::atomic<uint64_t> seq_{0};
  std::atomic<uint64_t> sampled_{0};
  std::atomic<uint64_t> finished_{0};

  mutable std::mutex ring_mu_;
  std::vector<Trace> ring_;   ///< kRingCapacity cap, ring_next_ is oldest
  size_t ring_next_ = 0;
};

/// RAII span recorder: times a stage into `trace` (no-op when null).
class ScopedSpan {
 public:
  ScopedSpan(Trace* trace, const char* name)
      : trace_(trace),
        name_(name),
        start_us_(trace != nullptr ? trace->ElapsedUs() : 0.0) {}
  ~ScopedSpan() {
    if (trace_ != nullptr) {
      trace_->AddSpan(name_, start_us_, trace_->ElapsedUs() - start_us_);
    }
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  Trace* trace_;
  const char* name_;
  double start_us_;
};

}  // namespace rmi::obs

#endif  // RMI_OBS_TRACE_H_
