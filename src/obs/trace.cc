#include "obs/trace.h"

#include <cstdio>
#include <cstring>
#include <utility>

namespace rmi::obs {

void Trace::AddSpan(const char* name, double start_us, double dur_us) {
  if (num_spans_ >= kMaxSpans) {
    ++dropped_spans_;
    return;
  }
  Span& span = spans_[num_spans_++];
  std::snprintf(span.name, sizeof(span.name), "%s", name);
  span.start_us = start_us;
  span.dur_us = dur_us;
}

std::string Trace::ToString() const {
  char line[128];
  std::snprintf(line, sizeof(line), "trace %llu: total %.1f us, %zu span(s)",
                static_cast<unsigned long long>(id_), total_us_, num_spans_);
  std::string out = line;
  for (size_t i = 0; i < num_spans_; ++i) {
    std::snprintf(line, sizeof(line), "\n  %-22s @%9.1f us  +%9.1f us",
                  spans_[i].name, spans_[i].start_us, spans_[i].dur_us);
    out += line;
  }
  if (dropped_spans_ > 0) {
    std::snprintf(line, sizeof(line), "\n  (%zu span(s) dropped)",
                  dropped_spans_);
    out += line;
  }
  return out;
}

Tracer& Tracer::Global() {
  // Leaked like the metrics registry: requests may finish during static
  // destruction.
  static Tracer* tracer = new Tracer();
  return *tracer;
}

std::unique_ptr<Trace> Tracer::MaybeSample() {
  const uint64_t n = sample_every_.load(std::memory_order_relaxed);
  if (n == 0 || !Enabled()) return nullptr;
  const uint64_t seq = seq_.fetch_add(1, std::memory_order_relaxed);
  if (seq % n != 0) return nullptr;
  sampled_.fetch_add(1, std::memory_order_relaxed);
  return std::make_unique<Trace>(/*id=*/seq);
}

void Tracer::Finish(std::unique_ptr<Trace> trace) {
  if (trace == nullptr) return;
  trace->total_us_ = trace->ElapsedUs();
  finished_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(ring_mu_);
  if (ring_.size() < kRingCapacity) {
    ring_.push_back(*trace);
  } else {
    ring_[ring_next_] = *trace;
    ring_next_ = (ring_next_ + 1) % kRingCapacity;
  }
}

std::vector<Trace> Tracer::Recent() const {
  std::lock_guard<std::mutex> lock(ring_mu_);
  std::vector<Trace> out;
  out.reserve(ring_.size());
  // Oldest first: the ring write position is the oldest entry once the
  // ring has wrapped.
  for (size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(ring_next_ + i) % ring_.size()]);
  }
  return out;
}

void Tracer::ResetForTesting() {
  seq_.store(0, std::memory_order_relaxed);
  sampled_.store(0, std::memory_order_relaxed);
  finished_.store(0, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(ring_mu_);
  ring_.clear();
  ring_next_ = 0;
}

}  // namespace rmi::obs
