// Process-wide observability: a lock-free metrics registry.
//
// The design goal is a hot query path that adds only *private* writes —
// the same idiom as EpochDomain's reader slots. Every metric is sharded
// over cache-line-padded slots; a thread claims a shard index once
// (thread_local, round-robin) and all of its Add/Observe traffic lands in
// relaxed atomics on that private line. Two threads can share a shard
// (more threads than kShards) without losing exactness — the slots are
// still atomic — they merely start sharing a line. A scrape merges the
// shards with plain relaxed loads, so reading is wait-free against
// writers and never perturbs them.
//
// Three instrument kinds:
//  * Counter — monotone u64; Add() is one relaxed fetch_add on the
//    thread's slot, Total() sums the slots.
//  * Gauge — signed double; Add()/Sub() accumulate per-shard deltas (the
//    queue-depth idiom: producers +1 on their slot, consumers -1 on
//    theirs, Value() sums), Set() is for rare single-writer series (the
//    updater's last-rebuild stage timings).
//  * Histogram — HDR-style log-bucketed latency histogram: fixed buckets
//    at 4 sub-buckets per octave (<= 25% bucket width) covering the full
//    u64 range, plus exact per-shard count/sum/sumsq/min/max moments, so
//    a scrape can produce both bucket-interpolated percentiles and an
//    exact mergeable RunningStats summary (common/stats.h Merge).
//
// Registration is by name through the process-global Registry (names may
// carry a Prometheus label suffix, e.g. shard="b0/f2"); handles are
// stable for the process lifetime, so instrumentation sites cache them in
// function-local statics and pay only the enabled-flag load plus the slot
// write per event. SetEnabled(false) turns every gated instrument into an
// early return — the overhead bench gates enabled-vs-disabled serving qps
// within 2%.
//
// Exposition: DumpPrometheusText() (text format 0.0.4) and DumpJson()
// (one JSON object, embeddable in the BENCH_*.json metrics block), plus
// SnapshotLogger, a small periodic dumper thread.
#ifndef RMI_OBS_METRICS_H_
#define RMI_OBS_METRICS_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <functional>
#include <string>

#include "common/stats.h"

namespace rmi::obs {

/// Global instrumentation switch (relaxed atomic; default on). Disabling
/// turns Counter::Add / Gauge::Add / Histogram::Observe into early
/// returns — per-instance shim state (e.g. the server's latency window)
/// uses the *Unconditional entry points and keeps working.
void SetEnabled(bool enabled);
bool Enabled();

/// Monotonic microseconds since an arbitrary process-local origin (the
/// steady clock) — the shared time base of spans and stage timers.
inline double MonotonicUs() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Shard index of the calling thread: claimed once per thread,
/// round-robin over kShards. Exactness never depends on uniqueness —
/// shards are atomic — only contention does.
size_t ThreadShardIndex();

/// Number of per-thread slots each metric is sharded over.
inline constexpr size_t kShards = 32;

namespace detail {

/// Relaxed add on an atomic double stored as bits (C++17 has no atomic
/// double fetch_add). The CAS loop is on the caller's private slot, so it
/// effectively never retries.
inline void AtomicDoubleAdd(std::atomic<uint64_t>* cell, double delta) {
  uint64_t expected = cell->load(std::memory_order_relaxed);
  double current;
  uint64_t desired;
  do {
    std::memcpy(&current, &expected, sizeof(double));
    const double next = current + delta;
    std::memcpy(&desired, &next, sizeof(double));
  } while (!cell->compare_exchange_weak(expected, desired,
                                        std::memory_order_relaxed));
}

inline double AtomicDoubleLoad(const std::atomic<uint64_t>* cell) {
  const uint64_t bits = cell->load(std::memory_order_relaxed);
  double value;
  std::memcpy(&value, &bits, sizeof(double));
  return value;
}

inline void AtomicDoubleStore(std::atomic<uint64_t>* cell, double value) {
  uint64_t bits;
  std::memcpy(&bits, &value, sizeof(double));
  cell->store(bits, std::memory_order_relaxed);
}

/// Relaxed min/max on an atomic double (non-negative domain).
inline void AtomicDoubleMin(std::atomic<uint64_t>* cell, double value) {
  uint64_t expected = cell->load(std::memory_order_relaxed);
  double current;
  uint64_t desired;
  std::memcpy(&desired, &value, sizeof(double));
  do {
    std::memcpy(&current, &expected, sizeof(double));
    if (value >= current) return;
  } while (!cell->compare_exchange_weak(expected, desired,
                                        std::memory_order_relaxed));
}

inline void AtomicDoubleMax(std::atomic<uint64_t>* cell, double value) {
  uint64_t expected = cell->load(std::memory_order_relaxed);
  double current;
  uint64_t desired;
  std::memcpy(&desired, &value, sizeof(double));
  do {
    std::memcpy(&current, &expected, sizeof(double));
    if (value <= current) return;
  } while (!cell->compare_exchange_weak(expected, desired,
                                        std::memory_order_relaxed));
}

}  // namespace detail

/// Monotone event counter, sharded per thread.
class Counter {
 public:
  void Add(uint64_t n = 1) {
    if (!Enabled()) return;
    AddUnconditional(n);
  }
  /// Bypasses the global enable switch — for per-instance shim state that
  /// must keep counting while the observability layer is switched off.
  void AddUnconditional(uint64_t n = 1) {
    slots_[ThreadShardIndex()].value.fetch_add(n, std::memory_order_relaxed);
  }

  uint64_t Total() const {
    uint64_t total = 0;
    for (const Slot& s : slots_) {
      total += s.value.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  struct alignas(64) Slot {
    std::atomic<uint64_t> value{0};
  };
  Slot slots_[kShards];
};

/// Signed double gauge. Add/Sub accumulate per-shard deltas (private
/// writes — the queue-depth idiom); Set is for rare single-writer series
/// and collapses every shard onto slot 0 (racing Adds may be absorbed or
/// lost — use Set only where one writer owns the series).
class Gauge {
 public:
  void Add(double delta) {
    if (!Enabled()) return;
    detail::AtomicDoubleAdd(&slots_[ThreadShardIndex()].bits, delta);
  }
  void Sub(double delta) { Add(-delta); }

  void Set(double value) {
    if (!Enabled()) return;
    for (size_t s = 1; s < kShards; ++s) {
      detail::AtomicDoubleStore(&slots_[s].bits, 0.0);
    }
    detail::AtomicDoubleStore(&slots_[0].bits, value);
  }

  double Value() const {
    double total = 0.0;
    for (const Slot& s : slots_) total += detail::AtomicDoubleLoad(&s.bits);
    return total;
  }

 private:
  struct alignas(64) Slot {
    std::atomic<uint64_t> bits{0};  ///< double 0.0 is all-zero bits
  };
  Slot slots_[kShards];
};

/// Log-bucketed latency histogram with exact mergeable moments.
///
/// Values are non-negative (negatives clamp to 0) in whatever unit the
/// series declares (microseconds for the *_us series). Buckets: values
/// 0..3 exact, then 4 sub-buckets per octave up to the full u64 range —
/// bucket width <= 25% of its lower bound, so interpolated percentiles
/// carry at most ~12% quantization error. Observe() is a handful of
/// relaxed atomics on the calling thread's private shard.
class Histogram {
 public:
  static constexpr size_t kSubBits = 2;
  static constexpr size_t kSub = 1u << kSubBits;  // 4 sub-buckets/octave
  static constexpr size_t kNumBuckets = 256;      // covers e up to 63

  Histogram();

  void Observe(double value) {
    if (!Enabled()) return;
    ObserveUnconditional(value);
  }
  /// Bypasses the global enable switch (per-instance shim state).
  void ObserveUnconditional(double value);

  /// Index of the bucket holding `v` (exposed for tests).
  static size_t BucketIndex(uint64_t v);
  /// Inclusive value range [lower, upper] of bucket `b`.
  static void BucketBounds(size_t b, uint64_t* lower, uint64_t* upper);

  uint64_t Count() const;
  double Sum() const;
  /// Buckets merged over all shards (kNumBuckets entries).
  void MergedBuckets(uint64_t* out) const;
  /// Linear-interpolated percentile from the merged buckets, p in
  /// [0, 100]. 0 when empty. Monotone in p.
  double Percentile(double p) const;
  /// Exact moment summary, built by merging the per-shard moment sets
  /// with RunningStats::Merge — count/mean/variance match a single-stream
  /// accumulation of every observed value (post-clamp) up to rounding.
  RunningStats Summary() const;

 private:
  struct alignas(64) Shard {
    std::atomic<uint64_t> buckets[kNumBuckets];
    std::atomic<uint64_t> count;
    std::atomic<uint64_t> sum_bits;    ///< double
    std::atomic<uint64_t> sumsq_bits;  ///< double
    std::atomic<uint64_t> min_bits;    ///< double, +inf when empty
    std::atomic<uint64_t> max_bits;    ///< double
  };
  Shard shards_[kShards];
};

/// The process-global named-metric registry. Get* registers on first use
/// and returns the existing handle afterwards (re-registration with a
/// mismatched kind aborts — it is a programming error). Handles are valid
/// for the process lifetime; instrumentation sites cache them in
/// function-local statics. `labels` is a raw Prometheus label body, e.g.
/// `shard="b0/f2"` — series with the same name but different labels are
/// distinct metrics exposed under one HELP/TYPE header.
class Registry {
 public:
  static Registry& Global();

  Counter& GetCounter(const std::string& name, const std::string& help,
                      const std::string& labels = "");
  Gauge& GetGauge(const std::string& name, const std::string& help,
                  const std::string& labels = "");
  Histogram& GetHistogram(const std::string& name, const std::string& help,
                          const std::string& labels = "");

  /// A gauge evaluated at scrape time (e.g. a queue's instantaneous
  /// depth). The callback must stay valid until replaced — re-registering
  /// the same series swaps the callback, so an owner with a shorter
  /// lifetime than the process should re-point it at teardown.
  void SetCallbackGauge(const std::string& name, const std::string& help,
                        std::function<double()> fn,
                        const std::string& labels = "");

  /// Prometheus text exposition (format 0.0.4) of every registered
  /// series. Histograms emit cumulative le-buckets (empty buckets are
  /// skipped), _sum and _count.
  std::string DumpPrometheusText() const;
  /// One JSON object: {"counters": {...}, "gauges": {...},
  /// "histograms": {name: {count, sum, mean, stddev, min, max, p50, p95,
  /// p99}}}. Valid JSON — embeddable as the BENCH_*.json metrics block.
  std::string DumpJson() const;

 private:
  Registry() = default;
  struct Impl;
  Impl& impl() const;
};

/// Convenience wrappers over Registry::Global().
inline Counter& GetCounter(const std::string& name, const std::string& help,
                           const std::string& labels = "") {
  return Registry::Global().GetCounter(name, help, labels);
}
inline Gauge& GetGauge(const std::string& name, const std::string& help,
                       const std::string& labels = "") {
  return Registry::Global().GetGauge(name, help, labels);
}
inline Histogram& GetHistogram(const std::string& name,
                               const std::string& help,
                               const std::string& labels = "") {
  return Registry::Global().GetHistogram(name, help, labels);
}
inline std::string DumpPrometheusText() {
  return Registry::Global().DumpPrometheusText();
}
inline std::string DumpJson() { return Registry::Global().DumpJson(); }

/// Times a stage and observes the elapsed microseconds into `hist` on
/// destruction. When the layer is disabled at construction the timer is
/// inert (no clock reads).
class ScopedStageTimer {
 public:
  explicit ScopedStageTimer(Histogram& hist)
      : hist_(Enabled() ? &hist : nullptr),
        start_us_(hist_ != nullptr ? MonotonicUs() : 0.0) {}
  ~ScopedStageTimer() {
    if (hist_ != nullptr) hist_->Observe(MonotonicUs() - start_us_);
  }
  ScopedStageTimer(const ScopedStageTimer&) = delete;
  ScopedStageTimer& operator=(const ScopedStageTimer&) = delete;

 private:
  Histogram* hist_;
  double start_us_;
};

/// Periodic snapshot logger: a background thread that hands the current
/// exposition to `sink` every `interval_seconds`. Stop() (or destruction)
/// joins; the sink is called from the logger thread only.
class SnapshotLogger {
 public:
  using Sink = std::function<void(const std::string& prometheus_text)>;
  SnapshotLogger(double interval_seconds, Sink sink);
  ~SnapshotLogger();
  void Stop();

  SnapshotLogger(const SnapshotLogger&) = delete;
  SnapshotLogger& operator=(const SnapshotLogger&) = delete;

 private:
  struct Impl;
  Impl* impl_;
};

}  // namespace rmi::obs

#endif  // RMI_OBS_METRICS_H_
