#include "obs/metrics.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "common/check.h"

namespace rmi::obs {

namespace {

std::atomic<bool> g_enabled{true};
std::atomic<size_t> g_next_thread{0};

/// Escapes `"` and `\` for embedding in a JSON string literal (labels
/// carry raw quotes: shard="b0/f2").
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

void SetEnabled(bool enabled) {
  g_enabled.store(enabled, std::memory_order_relaxed);
}

bool Enabled() { return g_enabled.load(std::memory_order_relaxed); }

size_t ThreadShardIndex() {
  thread_local const size_t index =
      g_next_thread.fetch_add(1, std::memory_order_relaxed) % kShards;
  return index;
}

// ---- Histogram --------------------------------------------------------------

Histogram::Histogram() {
  const double inf = std::numeric_limits<double>::infinity();
  for (Shard& shard : shards_) {
    for (auto& b : shard.buckets) b.store(0, std::memory_order_relaxed);
    shard.count.store(0, std::memory_order_relaxed);
    detail::AtomicDoubleStore(&shard.sum_bits, 0.0);
    detail::AtomicDoubleStore(&shard.sumsq_bits, 0.0);
    detail::AtomicDoubleStore(&shard.min_bits, inf);
    detail::AtomicDoubleStore(&shard.max_bits, 0.0);
  }
}

size_t Histogram::BucketIndex(uint64_t v) {
  if (v < kSub) return static_cast<size_t>(v);
  // Exponent of the MSB (>= kSubBits here), then the next kSubBits of
  // mantissa pick the sub-bucket — contiguous with the exact low range.
  size_t e = 63;
  while ((v >> e) == 0) --e;
  const size_t sub = (v >> (e - kSubBits)) & (kSub - 1);
  return kSub + (e - kSubBits) * kSub + sub;
}

void Histogram::BucketBounds(size_t b, uint64_t* lower, uint64_t* upper) {
  RMI_CHECK_LT(b, kNumBuckets);
  if (b < kSub) {
    *lower = *upper = b;
    return;
  }
  const size_t e = kSubBits + (b - kSub) / kSub;
  const size_t sub = (b - kSub) % kSub;
  const uint64_t width = uint64_t{1} << (e - kSubBits);
  *lower = (uint64_t{1} << e) + sub * width;
  *upper = *lower + width - 1;
}

void Histogram::ObserveUnconditional(double value) {
  if (!(value > 0.0)) value = 0.0;  // clamp negatives and NaN
  const uint64_t v = static_cast<uint64_t>(value + 0.5);
  Shard& shard = shards_[ThreadShardIndex()];
  shard.buckets[BucketIndex(v)].fetch_add(1, std::memory_order_relaxed);
  shard.count.fetch_add(1, std::memory_order_relaxed);
  detail::AtomicDoubleAdd(&shard.sum_bits, value);
  detail::AtomicDoubleAdd(&shard.sumsq_bits, value * value);
  detail::AtomicDoubleMin(&shard.min_bits, value);
  detail::AtomicDoubleMax(&shard.max_bits, value);
}

uint64_t Histogram::Count() const {
  uint64_t total = 0;
  for (const Shard& s : shards_) {
    total += s.count.load(std::memory_order_relaxed);
  }
  return total;
}

double Histogram::Sum() const {
  double total = 0.0;
  for (const Shard& s : shards_) {
    total += detail::AtomicDoubleLoad(&s.sum_bits);
  }
  return total;
}

void Histogram::MergedBuckets(uint64_t* out) const {
  std::fill(out, out + kNumBuckets, 0);
  for (const Shard& s : shards_) {
    for (size_t b = 0; b < kNumBuckets; ++b) {
      out[b] += s.buckets[b].load(std::memory_order_relaxed);
    }
  }
}

double Histogram::Percentile(double p) const {
  uint64_t buckets[kNumBuckets];
  MergedBuckets(buckets);
  uint64_t total = 0;
  for (uint64_t c : buckets) total += c;
  if (total == 0) return 0.0;
  const double target = std::max(1.0, p / 100.0 * static_cast<double>(total));
  uint64_t cum = 0;
  for (size_t b = 0; b < kNumBuckets; ++b) {
    if (buckets[b] == 0) continue;
    const uint64_t prev = cum;
    cum += buckets[b];
    if (static_cast<double>(cum) >= target) {
      uint64_t lower, upper;
      BucketBounds(b, &lower, &upper);
      const double fraction =
          (target - static_cast<double>(prev)) /
          static_cast<double>(buckets[b]);
      return static_cast<double>(lower) +
             fraction * static_cast<double>(upper - lower);
    }
  }
  uint64_t lower, upper;
  BucketBounds(kNumBuckets - 1, &lower, &upper);
  return static_cast<double>(upper);
}

RunningStats Histogram::Summary() const {
  RunningStats merged;
  for (const Shard& s : shards_) {
    const uint64_t n = s.count.load(std::memory_order_relaxed);
    if (n == 0) continue;
    const double sum = detail::AtomicDoubleLoad(&s.sum_bits);
    const double sumsq = detail::AtomicDoubleLoad(&s.sumsq_bits);
    const double mean = sum / static_cast<double>(n);
    // M2 = sum((x - mean)^2) = sumsq - n*mean^2; clamp the cancellation
    // residue at 0 (telemetry moments, not numerics-grade variance).
    const double m2 =
        std::max(0.0, sumsq - static_cast<double>(n) * mean * mean);
    merged.Merge(RunningStats::FromMoments(
        n, mean, m2, detail::AtomicDoubleLoad(&s.min_bits),
        detail::AtomicDoubleLoad(&s.max_bits)));
  }
  return merged;
}

// ---- Registry ---------------------------------------------------------------

namespace {

enum class Kind { kCounter, kGauge, kHistogram, kCallbackGauge };

struct Series {
  std::string name;    ///< base metric name (no labels)
  std::string labels;  ///< raw label body, may be empty
  std::string help;
  Kind kind;
  std::unique_ptr<Counter> counter;
  std::unique_ptr<Gauge> gauge;
  std::unique_ptr<Histogram> histogram;
  std::function<double()> callback;

  std::string FullName() const {
    return labels.empty() ? name : name + "{" + labels + "}";
  }
};

}  // namespace

struct Registry::Impl {
  mutable std::mutex mu;
  /// Keyed by full series name; the vector preserves registration order
  /// for exposition.
  std::map<std::string, size_t> index;
  std::vector<std::unique_ptr<Series>> series;

  Series& GetOrCreate(const std::string& name, const std::string& help,
                      const std::string& labels, Kind kind) {
    const std::string key =
        labels.empty() ? name : name + "{" + labels + "}";
    std::lock_guard<std::mutex> lock(mu);
    const auto it = index.find(key);
    if (it != index.end()) {
      Series& existing = *series[it->second];
      RMI_CHECK(existing.kind == kind);  // one name, one instrument kind
      return existing;
    }
    auto s = std::make_unique<Series>();
    s->name = name;
    s->labels = labels;
    s->help = help;
    s->kind = kind;
    switch (kind) {
      case Kind::kCounter: s->counter = std::make_unique<Counter>(); break;
      case Kind::kGauge: s->gauge = std::make_unique<Gauge>(); break;
      case Kind::kHistogram:
        s->histogram = std::make_unique<Histogram>();
        break;
      case Kind::kCallbackGauge: break;
    }
    index[key] = series.size();
    series.push_back(std::move(s));
    return *series.back();
  }
};

Registry::Impl& Registry::impl() const {
  // Leaked on purpose: instrumented code (pool workers, server
  // destructors) may still observe during static destruction, and a
  // leaked registry makes every handle valid for the true process
  // lifetime.
  static Impl* impl = new Impl();
  return *impl;
}

Registry& Registry::Global() {
  static Registry* registry = new Registry();
  return *registry;
}

Counter& Registry::GetCounter(const std::string& name, const std::string& help,
                              const std::string& labels) {
  return *impl().GetOrCreate(name, help, labels, Kind::kCounter).counter;
}

Gauge& Registry::GetGauge(const std::string& name, const std::string& help,
                          const std::string& labels) {
  return *impl().GetOrCreate(name, help, labels, Kind::kGauge).gauge;
}

Histogram& Registry::GetHistogram(const std::string& name,
                                  const std::string& help,
                                  const std::string& labels) {
  return *impl().GetOrCreate(name, help, labels, Kind::kHistogram).histogram;
}

void Registry::SetCallbackGauge(const std::string& name,
                                const std::string& help,
                                std::function<double()> fn,
                                const std::string& labels) {
  Impl& i = impl();
  Series& s = i.GetOrCreate(name, help, labels, Kind::kCallbackGauge);
  std::lock_guard<std::mutex> lock(i.mu);
  s.callback = std::move(fn);
}

std::string Registry::DumpPrometheusText() const {
  Impl& i = impl();
  // Snapshot the series list under the lock, then read the (stable,
  // wait-free) instruments outside it — a scrape never blocks a
  // registration for long and never blocks a writer at all.
  std::vector<Series*> series;
  {
    std::lock_guard<std::mutex> lock(i.mu);
    series.reserve(i.series.size());
    for (auto& s : i.series) series.push_back(s.get());
  }
  std::string out;
  std::string last_header;
  for (Series* s : series) {
    if (s->name != last_header) {
      out += "# HELP " + s->name + " " + s->help + "\n";
      const char* type = s->kind == Kind::kCounter ? "counter"
                         : s->kind == Kind::kHistogram ? "histogram"
                                                       : "gauge";
      out += "# TYPE " + s->name + " " + type + "\n";
      last_header = s->name;
    }
    const std::string full = s->FullName();
    switch (s->kind) {
      case Kind::kCounter:
        out += full + " " + std::to_string(s->counter->Total()) + "\n";
        break;
      case Kind::kGauge:
        out += full + " " + FormatDouble(s->gauge->Value()) + "\n";
        break;
      case Kind::kCallbackGauge: {
        std::function<double()> fn;
        {
          std::lock_guard<std::mutex> lock(i.mu);
          fn = s->callback;
        }
        out += full + " " + FormatDouble(fn ? fn() : 0.0) + "\n";
        break;
      }
      case Kind::kHistogram: {
        uint64_t buckets[Histogram::kNumBuckets];
        s->histogram->MergedBuckets(buckets);
        uint64_t cum = 0;
        const std::string sep = s->labels.empty() ? "" : ",";
        for (size_t b = 0; b < Histogram::kNumBuckets; ++b) {
          if (buckets[b] == 0) continue;  // cumulative — skips are lossless
          cum += buckets[b];
          uint64_t lower, upper;
          Histogram::BucketBounds(b, &lower, &upper);
          out += s->name + "_bucket{" + s->labels + sep + "le=\"" +
                 std::to_string(upper) + "\"} " + std::to_string(cum) + "\n";
        }
        out += s->name + "_bucket{" + s->labels + sep + "le=\"+Inf\"} " +
               std::to_string(cum) + "\n";
        out += s->name + "_sum" +
               (s->labels.empty() ? "" : "{" + s->labels + "}") + " " +
               FormatDouble(s->histogram->Sum()) + "\n";
        out += s->name + "_count" +
               (s->labels.empty() ? "" : "{" + s->labels + "}") + " " +
               std::to_string(cum) + "\n";
        break;
      }
    }
  }
  return out;
}

std::string Registry::DumpJson() const {
  Impl& i = impl();
  std::vector<Series*> series;
  {
    std::lock_guard<std::mutex> lock(i.mu);
    series.reserve(i.series.size());
    for (auto& s : i.series) series.push_back(s.get());
  }
  std::string counters, gauges, histograms;
  for (Series* s : series) {
    const std::string key = "\"" + JsonEscape(s->FullName()) + "\": ";
    switch (s->kind) {
      case Kind::kCounter:
        if (!counters.empty()) counters += ", ";
        counters += key + std::to_string(s->counter->Total());
        break;
      case Kind::kGauge:
        if (!gauges.empty()) gauges += ", ";
        gauges += key + FormatDouble(s->gauge->Value());
        break;
      case Kind::kCallbackGauge: {
        std::function<double()> fn;
        {
          std::lock_guard<std::mutex> lock(i.mu);
          fn = s->callback;
        }
        if (!gauges.empty()) gauges += ", ";
        gauges += key + FormatDouble(fn ? fn() : 0.0);
        break;
      }
      case Kind::kHistogram: {
        if (!histograms.empty()) histograms += ", ";
        const RunningStats summary = s->histogram->Summary();
        histograms += key + "{\"count\": " + std::to_string(summary.count()) +
                      ", \"sum\": " + FormatDouble(s->histogram->Sum()) +
                      ", \"mean\": " + FormatDouble(summary.mean()) +
                      ", \"stddev\": " + FormatDouble(summary.stddev()) +
                      ", \"min\": " + FormatDouble(summary.min()) +
                      ", \"max\": " + FormatDouble(summary.max()) +
                      ", \"p50\": " + FormatDouble(s->histogram->Percentile(50)) +
                      ", \"p95\": " + FormatDouble(s->histogram->Percentile(95)) +
                      ", \"p99\": " + FormatDouble(s->histogram->Percentile(99)) +
                      "}";
        break;
      }
    }
  }
  return "{\"counters\": {" + counters + "}, \"gauges\": {" + gauges +
         "}, \"histograms\": {" + histograms + "}}";
}

// ---- SnapshotLogger ---------------------------------------------------------

struct SnapshotLogger::Impl {
  std::mutex mu;
  std::condition_variable cv;
  bool stop = false;
  std::thread thread;
};

SnapshotLogger::SnapshotLogger(double interval_seconds, Sink sink)
    : impl_(new Impl()) {
  RMI_CHECK(sink != nullptr);
  impl_->thread = std::thread([this, interval_seconds,
                               sink = std::move(sink)] {
    const auto interval = std::chrono::duration<double>(interval_seconds);
    std::unique_lock<std::mutex> lock(impl_->mu);
    while (!impl_->stop) {
      if (impl_->cv.wait_for(lock, interval, [&] { return impl_->stop; })) {
        return;
      }
      lock.unlock();
      sink(Registry::Global().DumpPrometheusText());
      lock.lock();
    }
  });
}

SnapshotLogger::~SnapshotLogger() {
  Stop();
  delete impl_;
}

void SnapshotLogger::Stop() {
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    if (impl_->stop && !impl_->thread.joinable()) return;
    impl_->stop = true;
  }
  impl_->cv.notify_all();
  if (impl_->thread.joinable()) impl_->thread.join();
}

}  // namespace rmi::obs
