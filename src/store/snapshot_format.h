// The zero-copy, mmap-able shard snapshot file (".rmsnap").
//
// One file freezes everything a query process needs to serve a shard —
// and everything the updater needs to resume evolving it:
//
//   section            contents                              element type
//   -----------------  ------------------------------------  ------------
//   kSecQuantValues    int8 refs, SoA by AP, cols x padded   int8
//   kSecQuantSquares   values^2, same layout                 int16
//   kSecQuantNorms     per-row integer squared norms         int32
//   kSecQuantScale     per-AP dBm per int8 step              f64
//   kSecQuantZeroPoint per-AP dBm at int8 value 0            f64
//   kSecFloatRefs      exact-rescore master, rows x cols     f64
//   kSecPositions      reference locations, rows x (x, y)    f64 pairs
//   kSecApIds          AP identity per column                u64
//   kSecGrid           spatial-index grid image (see below)  packed blob
//   kSecBaseRecords    folded survey base, record frames     framed codec
//
// Layout discipline: little-endian throughout (the header carries an
// endianness check value), a fixed 4 KiB header page up front, every
// section offset 64-byte aligned (kSectionAlign — wide enough for any
// vector lane the int kernels use), zeroed padding, no timestamps. The
// same logical snapshot therefore always serializes to the same bytes,
// which is what lets the crash-consistency tests assert a restarted
// updater's snapshot file is checksum-equal to the never-crashed run's,
// and lets CI pin a sample file as an ABI canary.
//
// Integrity: CRC32C twice — header_crc over the header fields, payload_crc
// over every byte after the header page. Readers validate both before any
// section pointer escapes, so a torn or bit-flipped file is refused as a
// unit (the loader then falls back to the next-oldest file).
//
// Publish protocol: WriteSnapshotFile emits to "<path>.tmp", fsyncs the
// file, renames it in, and fsyncs the directory — readers only ever see
// absent or complete files, and a writer losing the rename race leaves a
// ".tmp" orphan that the loader ignores.
//
// Serving: MappedSnapshot mmaps and validates a file; MapSnapshotView is
// the borrowed zero-copy view over the mapping — la::QuantizedRefsSpan
// plus raw float/position pointers feeding the exact same ranking core
// (positioning::KnnQuantEstimateBatch) the heap estimator uses, so
// file-served and heap-served answers are bit-identical. Views never
// outlive their mapping: the serving layer parks the shared_ptr mapping
// inside the published MapSnapshot, whose reclamation already goes
// through the epoch domain.
#ifndef RMI_STORE_SNAPSHOT_FORMAT_H_
#define RMI_STORE_SNAPSHOT_FORMAT_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <type_traits>
#include <vector>

#include "geometry/geometry.h"
#include "la/matrix.h"
#include "la/quant.h"
#include "radiomap/radio_map.h"

namespace rmi::store {

/// "RMSNAP01" little-endian.
inline constexpr uint64_t kSnapshotMagic = 0x313050414E534D52ull;
inline constexpr uint32_t kSnapshotFormatVersion = 1;
/// Written as the literal 0x01020304: a big-endian reader sees 0x04030201
/// and refuses the file instead of silently mis-reading every section.
inline constexpr uint32_t kEndianCheck = 0x01020304u;
/// Section alignment. 64 covers every vector lane the int8 kernels
/// dispatch to and keeps each section cache-line clean.
inline constexpr size_t kSectionAlign = 64;
/// Fixed header page; sections start after it.
inline constexpr size_t kSnapshotHeaderBytes = 4096;
inline constexpr char kSnapshotSuffix[] = ".rmsnap";

enum SectionId : uint32_t {
  kSecQuantValues = 0,
  kSecQuantSquares,
  kSecQuantNorms,
  kSecQuantScale,
  kSecQuantZeroPoint,
  kSecFloatRefs,
  kSecPositions,
  kSecApIds,
  kSecGrid,
  kSecBaseRecords,
  kNumSections,
};

/// Optional-section presence bits (SnapshotHeader::flags).
inline constexpr uint32_t kFlagHasQuant = 1u << 0;
inline constexpr uint32_t kFlagHasGrid = 1u << 1;
inline constexpr uint32_t kFlagHasBase = 1u << 2;

struct SectionRange {
  uint64_t offset = 0;  ///< from file start; kSectionAlign-aligned
  uint64_t size = 0;    ///< bytes; 0 = section absent
};

/// The on-disk header, memcpy'd to/from the first bytes of the file.
/// Fields are ordered for natural alignment; header_crc is last and is
/// computed over the bytes before it.
struct SnapshotHeader {
  uint64_t magic = kSnapshotMagic;
  uint32_t format_version = kSnapshotFormatVersion;
  uint32_t endian_check = kEndianCheck;
  /// The shard's published snapshot version this file freezes.
  uint64_t snapshot_version = 0;
  int32_t building = 0;
  int32_t floor = 0;
  /// WAL segment watermark: every segment with seq < this was folded into
  /// this file's base section. Restart replays only segments >= the
  /// watermark, so a crash between snapshot rename and segment deletion
  /// never double-applies a delta.
  uint64_t wal_watermark = 0;
  uint64_t num_refs = 0;
  uint64_t num_aps = 0;
  /// Quant rows padded to the kQuantLanePad multiple (0 without quant).
  uint64_t quant_padded = 0;
  double quant_min_scale = 0.0;
  double quant_max_scale = 0.0;
  /// Record count of the kSecBaseRecords section.
  uint64_t base_records = 0;
  uint32_t flags = 0;
  /// CRC32C over [kSnapshotHeaderBytes, file_bytes).
  uint32_t payload_crc = 0;
  uint64_t file_bytes = 0;
  SectionRange sections[kNumSections];
  /// CRC32C over the header bytes preceding this field.
  uint32_t header_crc = 0;
};
static_assert(std::is_standard_layout_v<SnapshotHeader>,
              "header is memcpy'd to disk");
static_assert(sizeof(SnapshotHeader) <= kSnapshotHeaderBytes,
              "header must fit its reserved page");

/// Flattened POD image of the serving spatial index's location grid —
/// persisted so a restart (or a mapping-only query process) skips the
/// grid build. serving::SpatialIndex converts to/from this shape
/// (Image()/Restore()); store packs it into kSecGrid.
struct GridImage {
  double cell_size_m = 0.0;
  double min_x = 0.0;
  double min_y = 0.0;
  uint64_t dim = 0;
  uint64_t num_refs = 0;
  uint64_t grid_cols = 0;
  uint64_t grid_rows = 0;
  std::vector<int32_t> slot;           ///< grid_rows x grid_cols; -1 empty
  std::vector<uint64_t> cell_offsets;  ///< num_cells + 1 prefix sums
  std::vector<uint32_t> members;       ///< concatenated member rows
  std::vector<double> centroids;       ///< num_cells x dim
  std::vector<double> radii;           ///< num_cells

  size_t num_cells() const { return radii.size(); }
  bool empty() const { return num_refs == 0; }
};

/// Everything WriteSnapshotFile serializes. All pointers borrow; the
/// request must stay valid for the call only.
struct SnapshotWriteRequest {
  uint64_t snapshot_version = 0;
  rmap::ShardId shard;
  uint64_t wal_watermark = 0;
  size_t num_refs = 0;
  size_t num_aps = 0;
  /// Int8 ranking sections; an empty span writes a file without them
  /// (kFlagHasQuant clear — heap restore still works, view serving not).
  la::QuantizedRefsSpan quant;
  const double* refs = nullptr;            ///< num_refs x num_aps
  const geom::Point* positions = nullptr;  ///< num_refs
  /// Per-column AP identity; nullptr writes the identity mapping 0..D-1.
  const uint64_t* ap_ids = nullptr;
  const GridImage* grid = nullptr;       ///< optional
  const rmap::RadioMap* base = nullptr;  ///< optional survey-base section
};

/// Serializes `req` to `path` via temp file + fsync + atomic rename +
/// directory fsync. False (with *error filled) on any I/O failure; a
/// failed write never leaves a partial file under the final name.
bool WriteSnapshotFile(const std::string& path,
                       const SnapshotWriteRequest& req, std::string* error);

/// Zero-copy serving view over a validated mapping. Plain borrowed
/// pointers — copy freely, but never let one outlive the MappedSnapshot
/// it came from (the serving layer ties the mapping's shared_ptr to the
/// published snapshot, which the epoch domain reclaims).
struct MapSnapshotView {
  uint64_t snapshot_version = 0;
  rmap::ShardId shard;
  size_t num_refs = 0;
  size_t num_aps = 0;
  la::QuantizedRefsSpan quant;             ///< empty without kFlagHasQuant
  const double* refs = nullptr;            ///< num_refs x num_aps
  const geom::Point* positions = nullptr;  ///< num_refs
  const uint64_t* ap_ids = nullptr;        ///< num_aps

  bool has_quant() const { return !quant.empty(); }

  /// Batched KNN/WKNN straight off the mapping — no deserialization. Runs
  /// the shared int8 ranking + exact-rescore core, so answers are
  /// bit-identical to a heap KnnEstimator fitted on the same references.
  /// Requires has_quant().
  std::vector<geom::Point> EstimateBatch(const la::Matrix& queries, size_t k,
                                         bool weighted) const;

  /// Scalar exact KNN/WKNN (no quant sections needed) — the reference
  /// path and the partial-fingerprint fallback.
  geom::Point Estimate(const std::vector<double>& query, size_t k,
                       bool weighted) const;
};

/// An open, validated snapshot mapping. Map() refuses anything structurally
/// unsound — bad magic/version/endianness, header or payload CRC mismatch,
/// short file, misaligned or out-of-range sections — so holders can trust
/// every section pointer. Read-only MAP_SHARED: N processes mapping the
/// same published file share one page-cache copy.
class MappedSnapshot {
 public:
  /// nullptr (with *error filled) on open/validation failure.
  static std::shared_ptr<const MappedSnapshot> Map(const std::string& path,
                                                   std::string* error);
  ~MappedSnapshot();

  MappedSnapshot(const MappedSnapshot&) = delete;
  MappedSnapshot& operator=(const MappedSnapshot&) = delete;

  const SnapshotHeader& header() const { return header_; }
  const std::string& path() const { return path_; }
  size_t size_bytes() const { return size_; }

  /// The zero-copy serving view (borrows this mapping).
  MapSnapshotView view() const;

  /// Decodes the grid section (false when absent).
  bool DecodeGrid(GridImage* out) const;

  /// Decodes the survey-base section into a RadioMap with this file's
  /// width and shard id (false when absent or malformed).
  bool DecodeBase(rmap::RadioMap* out) const;

 private:
  MappedSnapshot() = default;

  const uint8_t* Section(SectionId id) const {
    return data_ + header_.sections[id].offset;
  }

  std::string path_;
  const uint8_t* data_ = nullptr;
  size_t size_ = 0;
  SnapshotHeader header_;
};

/// Canonical file name for a snapshot version: "snapshot.<version>.rmsnap"
/// with the version zero-padded to 20 digits (lexical order == numeric).
std::string SnapshotFileName(uint64_t version);

/// Snapshot files under `dir`, sorted newest (highest embedded version)
/// first. Non-snapshot names — ".tmp" orphans from a lost rename race
/// included — are ignored. A missing directory is an empty list.
std::vector<std::string> ListSnapshotFiles(const std::string& dir);

/// Maps the newest snapshot in `dir` that passes full validation, walking
/// down the version order past corrupt/torn/incompatible files. nullptr
/// (with *error describing the last failure, or "no snapshot files") when
/// nothing valid exists.
std::shared_ptr<const MappedSnapshot> MapNewestValid(const std::string& dir,
                                                     std::string* error);

}  // namespace rmi::store

#endif  // RMI_STORE_SNAPSHOT_FORMAT_H_
