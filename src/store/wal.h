// Per-shard write-ahead delta log.
//
// The snapshot file makes a shard's *published* state durable; the WAL
// makes the deltas that arrived since. Ingest appends one record frame
// (store/record_codec.h) per observation with group-commit fsync —
// durability every `sync_every` appends, not every write — and restart
// replays the log into the delta buffer so no acknowledged observation is
// lost to a crash, without re-running imputation.
//
// Segment discipline:
//   * One directory per shard, segment files "wal.<seq>.rmwal" with the
//     seq zero-padded (lexical order == numeric). Each segment starts with
//     a 16-byte header: magic "RMWAL001", format u32, reserved u32.
//   * A segment is appended by at most one process lifetime: Open() never
//     appends to a pre-existing file — it starts a fresh segment at
//     max-seen + 1. A torn tail can therefore only be the last frames of a
//     crashed process, never interleaved with new appends.
//   * Rotate() (called by the updater under the same lock that folds the
//     delta buffer into the base) seals the active segment and starts the
//     next one. The new active seq is the snapshot's *watermark*: every
//     frame in segments below it is folded into the base section of the
//     snapshot about to be written. After that snapshot is durably
//     renamed in, DeleteSegmentsBelow(watermark) trims the log.
//   * Open(dir, watermark, ...) deletes segments below the watermark
//     (their records live in the snapshot's base section — replaying them
//     too would double-apply) and replays the rest in seq order. A torn
//     tail stops replay of that segment and is tolerated; a CRC-failed
//     frame with a plausible header is corruption — replay of the segment
//     stops there too, and the result flags it.
#ifndef RMI_STORE_WAL_H_
#define RMI_STORE_WAL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "radiomap/radio_map.h"

namespace rmi::store {

/// "RMWAL001" little-endian.
inline constexpr uint64_t kWalMagic = 0x3130304C41574D52ull;
inline constexpr uint32_t kWalFormatVersion = 1;
inline constexpr size_t kWalHeaderBytes = 16;
inline constexpr char kWalSuffix[] = ".rmwal";

/// Canonical segment file name: "wal.<seq>.rmwal", seq zero-padded to 20.
std::string WalSegmentFileName(uint64_t seq);

class Wal {
 public:
  struct Options {
    /// Group commit: fsync once per this many appends (1 = every append).
    /// The tail of a group is only as durable as the last fsync — the
    /// standard group-commit trade, bounded at sync_every records.
    size_t sync_every = 32;
  };

  /// What Open() recovered from the surviving segments.
  struct ReplayResult {
    std::vector<rmap::Record> records;  ///< in append order across segments
    uint64_t segments_replayed = 0;
    uint64_t segments_deleted = 0;  ///< below the watermark
    bool tail_truncated = false;    ///< a torn tail was tolerated
    bool corrupt_frame = false;     ///< a CRC-failed frame stopped a segment
  };

  /// Opens the shard's log under `dir` (created if missing): deletes
  /// segments below `watermark`, replays the rest into `*replay`, and
  /// starts a fresh active segment. nullptr (with *error) only on I/O
  /// failure — corrupt/torn segments degrade the replay, never the open.
  static std::unique_ptr<Wal> Open(const std::string& dir, uint64_t watermark,
                                   const Options& options,
                                   ReplayResult* replay, std::string* error);
  ~Wal();

  Wal(const Wal&) = delete;
  Wal& operator=(const Wal&) = delete;

  /// Appends one record frame to the active segment; fsyncs when the
  /// group-commit counter trips. External synchronization: the updater
  /// calls this under its shard mutex.
  bool Append(const rmap::Record& r, std::string* error);

  /// Forces any unsynced appends to disk.
  bool Sync(std::string* error);

  /// Seals the active segment (final fsync) and opens the next one.
  /// Returns the new active seq — the caller's snapshot watermark — or 0
  /// on I/O failure.
  uint64_t Rotate(std::string* error);

  /// Deletes sealed segments with seq < `seq`. Called after the snapshot
  /// carrying `seq` as its watermark was durably published; never touches
  /// the active segment.
  void DeleteSegmentsBelow(uint64_t seq);

  uint64_t active_segment() const { return active_seq_; }
  const std::string& dir() const { return dir_; }

 private:
  Wal() = default;

  bool OpenActiveSegment(uint64_t seq, std::string* error);

  std::string dir_;
  Options options_;
  int fd_ = -1;
  uint64_t active_seq_ = 0;
  size_t unsynced_appends_ = 0;
};

}  // namespace rmi::store

#endif  // RMI_STORE_WAL_H_
