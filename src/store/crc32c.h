// CRC32C (Castagnoli) — the integrity checksum of the persistence layer.
//
// Every durable byte this subsystem writes is covered by one of these:
// the snapshot file's header and payload stamps and every WAL record
// frame. CRC32C rather than the in-memory splitmix stamps because the
// on-disk format is an interchange ABI — the polynomial is standardized
// (iSCSI, ext4, LevelDB/RocksDB block format), so an external tool in any
// language can verify or produce files. Software slice-by-4 table
// implementation: no SSE4.2 dependency, ~1 GB/s — file verification cost
// is dwarfed by the page-in it rides along with.
#ifndef RMI_STORE_CRC32C_H_
#define RMI_STORE_CRC32C_H_

#include <cstddef>
#include <cstdint>

namespace rmi::store {

/// CRC32C of `len` bytes. `seed` chains calls: Crc32c(b, n1+n2) ==
/// Crc32c(b + n1, n2, Crc32c(b, n1)). The empty string hashes to 0.
uint32_t Crc32c(const void* data, size_t len, uint32_t seed = 0);

}  // namespace rmi::store

#endif  // RMI_STORE_CRC32C_H_
