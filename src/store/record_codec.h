// Wire codec for survey records — the one serialization shared by the WAL
// (one frame per ingested delta) and the snapshot file's survey-base
// section (the folded record base the next rebuild re-imputes from).
// Sharing the codec is what makes WAL truncation at publish sound: a
// record leaves the log only once a snapshot whose base section contains
// the identical bytes has been durably renamed in.
//
// Payload layout (little-endian, fixed-width, unaligned — parsed via
// memcpy):
//
//   u64 id          Record::id verbatim (kUnassignedId round-trips, so a
//                   replayed delta gets its id assigned at fold time
//                   exactly like the never-crashed run)
//   u64 path_id
//   f64 time
//   f64 rp.x, f64 rp.y
//   u8  has_rp
//   u32 num_aps
//   f64 rssi[num_aps]   raw IEEE-754 bits; kNull (quiet NaN) round-trips
//
// Frame layout: u32 payload_len | u32 crc32c(payload) | payload.
#ifndef RMI_STORE_RECORD_CODEC_H_
#define RMI_STORE_RECORD_CODEC_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "radiomap/radio_map.h"

namespace rmi::store {

/// Fixed frame overhead: u32 length + u32 crc.
inline constexpr size_t kFrameHeaderBytes = 8;

/// Appends the bare payload encoding of `r` to `out`.
void AppendRecordPayload(const rmap::Record& r, std::string* out);

/// Parses one payload of exactly `len` bytes. False on any structural
/// mismatch (short buffer, width/length disagreement).
bool ParseRecordPayload(const uint8_t* p, size_t len, rmap::Record* out);

/// Appends the length-prefixed CRC'd frame of `r` to `out`.
void AppendRecordFrame(const rmap::Record& r, std::string* out);

enum class FrameStatus {
  kOk,         ///< record parsed; *consumed bytes advance
  kTruncated,  ///< buffer ends mid-frame — a torn tail, not corruption
  kCorrupt,    ///< CRC mismatch or malformed payload
};

/// Parses one frame from the first `avail` bytes at `p`. On kOk fills
/// `out` and `*consumed`; on kTruncated/kCorrupt both are untouched.
FrameStatus ParseRecordFrame(const uint8_t* p, size_t avail,
                             rmap::Record* out, size_t* consumed);

}  // namespace rmi::store

#endif  // RMI_STORE_RECORD_CODEC_H_
