#include "store/snapshot_format.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <utility>

#include "common/check.h"
#include "la/kernels.h"
#include "obs/metrics.h"
#include "positioning/estimators.h"
#include "store/crc32c.h"
#include "store/record_codec.h"

namespace rmi::store {

namespace {

namespace fs = std::filesystem;

static_assert(sizeof(geom::Point) == 2 * sizeof(double) &&
                  std::is_standard_layout_v<geom::Point>,
              "positions section is memcpy'd as (x, y) double pairs");

struct StoreMetrics {
  obs::Counter& writes = obs::GetCounter(
      "rmi_store_snapshot_writes_total", "Snapshot files durably published");
  obs::Counter& write_failures =
      obs::GetCounter("rmi_store_snapshot_write_failures_total",
                      "Snapshot writes aborted by an I/O error");
  obs::Counter& bytes_written =
      obs::GetCounter("rmi_store_snapshot_bytes_written_total",
                      "Bytes of snapshot payload durably written");
  obs::Histogram& write_us =
      obs::GetHistogram("rmi_store_snapshot_write_us",
                        "Full snapshot publish latency: serialize + write + "
                        "fsync + rename + dir fsync (microseconds)");
  obs::Histogram& fsync_us = obs::GetHistogram(
      "rmi_store_fsync_us", "Durability fsync latency (microseconds)");
  obs::Counter& maps = obs::GetCounter("rmi_store_snapshot_maps_total",
                                       "Snapshot files successfully mapped");
  obs::Counter& map_failures =
      obs::GetCounter("rmi_store_snapshot_map_failures_total",
                      "Snapshot files refused at map time (torn, corrupt, "
                      "or incompatible)");
  obs::Gauge& mapped_bytes = obs::GetGauge(
      "rmi_store_mapped_bytes", "Bytes currently mapped from snapshot files");

  static StoreMetrics& Get() {
    static StoreMetrics* m = new StoreMetrics();
    return *m;
  }
};

void SetError(std::string* error, const std::string& msg) {
  if (error != nullptr) *error = msg;
}

std::string Errno(const std::string& what) {
  return what + ": " + std::strerror(errno);
}

/// Pads `buf` to the section alignment with zero bytes (zeros, not
/// uninitialized, so identical logical content is identical bytes), then
/// appends the section and returns its range.
SectionRange AddSection(std::string* buf, const void* data, size_t bytes) {
  while (buf->size() % kSectionAlign != 0) buf->push_back('\0');
  SectionRange range;
  range.offset = buf->size();
  range.size = bytes;
  if (bytes > 0) {
    buf->append(static_cast<const char*>(data), bytes);
  }
  return range;
}

template <typename T>
void AppendPod(T v, std::string* out) {
  char buf[sizeof(T)];
  std::memcpy(buf, &v, sizeof(T));
  out->append(buf, sizeof(T));
}

template <typename T>
bool ReadPod(const uint8_t* p, size_t len, size_t* off, T* v) {
  if (len - *off < sizeof(T)) return false;
  std::memcpy(v, p + *off, sizeof(T));
  *off += sizeof(T);
  return true;
}

template <typename T>
bool ReadPodArray(const uint8_t* p, size_t len, size_t* off, size_t n,
                  std::vector<T>* out) {
  if ((len - *off) / sizeof(T) < n) return false;
  out->resize(n);
  if (n > 0) std::memcpy(out->data(), p + *off, n * sizeof(T));
  *off += n * sizeof(T);
  return true;
}

/// Grid blob layout: a small POD prelude (geometry + array lengths), then
/// the arrays back to back in declaration order.
void EncodeGridImage(const GridImage& g, std::string* out) {
  AppendPod<double>(g.cell_size_m, out);
  AppendPod<double>(g.min_x, out);
  AppendPod<double>(g.min_y, out);
  AppendPod<uint64_t>(g.dim, out);
  AppendPod<uint64_t>(g.num_refs, out);
  AppendPod<uint64_t>(g.grid_cols, out);
  AppendPod<uint64_t>(g.grid_rows, out);
  AppendPod<uint64_t>(g.num_cells(), out);
  AppendPod<uint64_t>(g.members.size(), out);
  out->append(reinterpret_cast<const char*>(g.slot.data()),
              g.slot.size() * sizeof(int32_t));
  out->append(reinterpret_cast<const char*>(g.cell_offsets.data()),
              g.cell_offsets.size() * sizeof(uint64_t));
  out->append(reinterpret_cast<const char*>(g.members.data()),
              g.members.size() * sizeof(uint32_t));
  out->append(reinterpret_cast<const char*>(g.centroids.data()),
              g.centroids.size() * sizeof(double));
  out->append(reinterpret_cast<const char*>(g.radii.data()),
              g.radii.size() * sizeof(double));
}

bool DecodeGridImage(const uint8_t* p, size_t len, GridImage* out) {
  size_t off = 0;
  uint64_t num_cells = 0, num_members = 0;
  GridImage g;
  if (!ReadPod(p, len, &off, &g.cell_size_m) ||
      !ReadPod(p, len, &off, &g.min_x) || !ReadPod(p, len, &off, &g.min_y) ||
      !ReadPod(p, len, &off, &g.dim) || !ReadPod(p, len, &off, &g.num_refs) ||
      !ReadPod(p, len, &off, &g.grid_cols) ||
      !ReadPod(p, len, &off, &g.grid_rows) ||
      !ReadPod(p, len, &off, &num_cells) ||
      !ReadPod(p, len, &off, &num_members)) {
    return false;
  }
  const uint64_t slots = g.grid_cols * g.grid_rows;
  if (!ReadPodArray(p, len, &off, slots, &g.slot) ||
      !ReadPodArray(p, len, &off, num_cells + 1, &g.cell_offsets) ||
      !ReadPodArray(p, len, &off, num_members, &g.members) ||
      !ReadPodArray(p, len, &off, num_cells * g.dim, &g.centroids) ||
      !ReadPodArray(p, len, &off, num_cells, &g.radii)) {
    return false;
  }
  if (off != len) return false;
  if (g.cell_offsets.empty() || g.cell_offsets.back() != num_members) {
    return false;
  }
  *out = std::move(g);
  return true;
}

bool WriteAll(int fd, const char* data, size_t len, std::string* error) {
  size_t written = 0;
  while (written < len) {
    const ssize_t n = ::write(fd, data + written, len - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      SetError(error, Errno("write"));
      return false;
    }
    written += static_cast<size_t>(n);
  }
  return true;
}

bool FsyncFd(int fd, std::string* error) {
  obs::ScopedStageTimer timer(StoreMetrics::Get().fsync_us);
  if (::fsync(fd) != 0) {
    SetError(error, Errno("fsync"));
    return false;
  }
  return true;
}

bool FsyncDirOf(const std::string& path, std::string* error) {
  const fs::path dir = fs::path(path).parent_path();
  const std::string dir_str = dir.empty() ? "." : dir.string();
  const int fd = ::open(dir_str.c_str(), O_RDONLY);
  if (fd < 0) {
    SetError(error, Errno("open dir " + dir_str));
    return false;
  }
  const bool ok = FsyncFd(fd, error);
  ::close(fd);
  return ok;
}

/// Section size sanity against the header's dimensions — a file whose CRCs
/// pass but whose section table disagrees with its own shape fields is
/// still refused before any pointer escapes.
bool ValidateSectionShapes(const SnapshotHeader& h, std::string* error) {
  const uint64_t rows = h.num_refs, cols = h.num_aps, padded = h.quant_padded;
  struct Expect {
    SectionId id;
    uint64_t size;
    bool required;
  };
  const bool quant = (h.flags & kFlagHasQuant) != 0;
  const Expect expected[] = {
      {kSecQuantValues, cols * padded * sizeof(int8_t), quant},
      {kSecQuantSquares, cols * padded * sizeof(int16_t), quant},
      {kSecQuantNorms, rows * sizeof(int32_t), quant},
      {kSecQuantScale, cols * sizeof(double), quant},
      {kSecQuantZeroPoint, cols * sizeof(double), quant},
      {kSecFloatRefs, rows * cols * sizeof(double), true},
      {kSecPositions, rows * 2 * sizeof(double), true},
      {kSecApIds, cols * sizeof(uint64_t), true},
  };
  for (const Expect& e : expected) {
    const uint64_t actual = h.sections[e.id].size;
    if (e.required && actual != e.size) {
      SetError(error, "section " + std::to_string(e.id) + " size " +
                          std::to_string(actual) + " != expected " +
                          std::to_string(e.size));
      return false;
    }
  }
  if (quant && padded < rows) {
    SetError(error, "quant_padded < num_refs");
    return false;
  }
  if (((h.flags & kFlagHasGrid) != 0) != (h.sections[kSecGrid].size > 0)) {
    SetError(error, "grid flag / section disagreement");
    return false;
  }
  if (((h.flags & kFlagHasBase) != 0) != (h.sections[kSecBaseRecords].size > 0)) {
    SetError(error, "base flag / section disagreement");
    return false;
  }
  return true;
}

}  // namespace

bool WriteSnapshotFile(const std::string& path,
                       const SnapshotWriteRequest& req, std::string* error) {
  StoreMetrics& metrics = StoreMetrics::Get();
  obs::ScopedStageTimer timer(metrics.write_us);

  SnapshotHeader header;
  header.snapshot_version = req.snapshot_version;
  header.building = req.shard.building;
  header.floor = req.shard.floor;
  header.wal_watermark = req.wal_watermark;
  header.num_refs = req.num_refs;
  header.num_aps = req.num_aps;

  // Serialize the whole file into one buffer first: the header page, then
  // each section at its aligned offset. One buffer, one write, and the
  // payload CRC is computed over exactly the bytes that land on disk.
  std::string file(kSnapshotHeaderBytes, '\0');

  if (!req.quant.empty()) {
    RMI_CHECK_EQ(req.quant.rows, req.num_refs);
    RMI_CHECK_EQ(req.quant.cols, req.num_aps);
    header.flags |= kFlagHasQuant;
    header.quant_padded = req.quant.padded;
    header.quant_min_scale = req.quant.min_scale;
    header.quant_max_scale = req.quant.max_scale;
    const size_t cells = req.quant.cols * req.quant.padded;
    header.sections[kSecQuantValues] =
        AddSection(&file, req.quant.values, cells * sizeof(int8_t));
    header.sections[kSecQuantSquares] =
        AddSection(&file, req.quant.squares, cells * sizeof(int16_t));
    header.sections[kSecQuantNorms] =
        AddSection(&file, req.quant.norms, req.quant.rows * sizeof(int32_t));
    header.sections[kSecQuantScale] =
        AddSection(&file, req.quant.scale, req.quant.cols * sizeof(double));
    header.sections[kSecQuantZeroPoint] = AddSection(
        &file, req.quant.zero_point, req.quant.cols * sizeof(double));
  }

  RMI_CHECK(req.refs != nullptr);
  RMI_CHECK(req.positions != nullptr);
  header.sections[kSecFloatRefs] = AddSection(
      &file, req.refs, req.num_refs * req.num_aps * sizeof(double));
  header.sections[kSecPositions] =
      AddSection(&file, req.positions, req.num_refs * 2 * sizeof(double));

  if (req.ap_ids != nullptr) {
    header.sections[kSecApIds] =
        AddSection(&file, req.ap_ids, req.num_aps * sizeof(uint64_t));
  } else {
    std::vector<uint64_t> identity(req.num_aps);
    for (size_t j = 0; j < identity.size(); ++j) identity[j] = j;
    header.sections[kSecApIds] = AddSection(
        &file, identity.data(), identity.size() * sizeof(uint64_t));
  }

  if (req.grid != nullptr && !req.grid->empty()) {
    header.flags |= kFlagHasGrid;
    std::string blob;
    EncodeGridImage(*req.grid, &blob);
    header.sections[kSecGrid] = AddSection(&file, blob.data(), blob.size());
  }

  if (req.base != nullptr && !req.base->empty()) {
    header.flags |= kFlagHasBase;
    header.base_records = req.base->size();
    std::string frames;
    for (const rmap::Record& r : req.base->records()) {
      AppendRecordFrame(r, &frames);
    }
    header.sections[kSecBaseRecords] =
        AddSection(&file, frames.data(), frames.size());
  }

  header.file_bytes = file.size();
  header.payload_crc =
      Crc32c(file.data() + kSnapshotHeaderBytes,
             file.size() - kSnapshotHeaderBytes);
  header.header_crc = Crc32c(&header, offsetof(SnapshotHeader, header_crc));
  std::memcpy(file.data(), &header, sizeof(header));

  // Durable publish: temp file, fsync, atomic rename, directory fsync.
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    SetError(error, Errno("open " + tmp));
    metrics.write_failures.Add();
    return false;
  }
  if (!WriteAll(fd, file.data(), file.size(), error) ||
      !FsyncFd(fd, error)) {
    ::close(fd);
    ::unlink(tmp.c_str());
    metrics.write_failures.Add();
    return false;
  }
  if (::close(fd) != 0) {
    SetError(error, Errno("close " + tmp));
    ::unlink(tmp.c_str());
    metrics.write_failures.Add();
    return false;
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    SetError(error, Errno("rename " + tmp + " -> " + path));
    ::unlink(tmp.c_str());
    metrics.write_failures.Add();
    return false;
  }
  if (!FsyncDirOf(path, error)) {
    metrics.write_failures.Add();
    return false;
  }

  metrics.writes.Add();
  metrics.bytes_written.Add(file.size());
  return true;
}

std::shared_ptr<const MappedSnapshot> MappedSnapshot::Map(
    const std::string& path, std::string* error) {
  StoreMetrics& metrics = StoreMetrics::Get();
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    SetError(error, Errno("open " + path));
    metrics.map_failures.Add();
    return nullptr;
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    SetError(error, Errno("fstat " + path));
    ::close(fd);
    metrics.map_failures.Add();
    return nullptr;
  }
  const size_t size = static_cast<size_t>(st.st_size);
  if (size < kSnapshotHeaderBytes) {
    SetError(error, path + ": short file (" + std::to_string(size) +
                        " bytes < header page)");
    ::close(fd);
    metrics.map_failures.Add();
    return nullptr;
  }
  void* mapping = ::mmap(nullptr, size, PROT_READ, MAP_SHARED, fd, 0);
  ::close(fd);  // the mapping keeps the inode alive
  if (mapping == MAP_FAILED) {
    SetError(error, Errno("mmap " + path));
    metrics.map_failures.Add();
    return nullptr;
  }
  const auto* data = static_cast<const uint8_t*>(mapping);

  // Validate before any section pointer escapes. Failures unmap and refuse
  // the file as a unit.
  std::string why;
  SnapshotHeader h;
  std::memcpy(&h, data, sizeof(h));
  if (h.magic != kSnapshotMagic) {
    why = "bad magic";
  } else if (h.endian_check != kEndianCheck) {
    why = "endianness mismatch";
  } else if (h.format_version != kSnapshotFormatVersion) {
    why = "format version " + std::to_string(h.format_version) +
          " != supported " + std::to_string(kSnapshotFormatVersion);
  } else if (Crc32c(&h, offsetof(SnapshotHeader, header_crc)) !=
             h.header_crc) {
    why = "header CRC mismatch";
  } else if (h.file_bytes != size) {
    why = "file_bytes " + std::to_string(h.file_bytes) + " != actual size " +
          std::to_string(size);
  } else if (Crc32c(data + kSnapshotHeaderBytes,
                    size - kSnapshotHeaderBytes) != h.payload_crc) {
    why = "payload CRC mismatch";
  } else {
    for (uint32_t s = 0; s < kNumSections && why.empty(); ++s) {
      const SectionRange& r = h.sections[s];
      if (r.size == 0) continue;
      if (r.offset % kSectionAlign != 0) {
        why = "section " + std::to_string(s) + " misaligned";
      } else if (r.offset < kSnapshotHeaderBytes || r.offset > size ||
                 r.size > size - r.offset) {
        why = "section " + std::to_string(s) + " out of range";
      }
    }
    if (why.empty()) ValidateSectionShapes(h, &why);
  }
  if (!why.empty()) {
    ::munmap(mapping, size);
    SetError(error, path + ": " + why);
    metrics.map_failures.Add();
    return nullptr;
  }

  auto snap = std::shared_ptr<MappedSnapshot>(new MappedSnapshot());
  snap->path_ = path;
  snap->data_ = data;
  snap->size_ = size;
  snap->header_ = h;
  metrics.maps.Add();
  metrics.mapped_bytes.Add(static_cast<double>(size));
  return snap;
}

MappedSnapshot::~MappedSnapshot() {
  if (data_ != nullptr) {
    ::munmap(const_cast<uint8_t*>(data_), size_);
    StoreMetrics::Get().mapped_bytes.Sub(static_cast<double>(size_));
  }
}

MapSnapshotView MappedSnapshot::view() const {
  MapSnapshotView v;
  v.snapshot_version = header_.snapshot_version;
  v.shard = rmap::ShardId{header_.building, header_.floor};
  v.num_refs = header_.num_refs;
  v.num_aps = header_.num_aps;
  v.refs = reinterpret_cast<const double*>(Section(kSecFloatRefs));
  v.positions = reinterpret_cast<const geom::Point*>(Section(kSecPositions));
  v.ap_ids = reinterpret_cast<const uint64_t*>(Section(kSecApIds));
  if ((header_.flags & kFlagHasQuant) != 0) {
    v.quant.rows = header_.num_refs;
    v.quant.cols = header_.num_aps;
    v.quant.padded = header_.quant_padded;
    v.quant.values = reinterpret_cast<const int8_t*>(Section(kSecQuantValues));
    v.quant.squares =
        reinterpret_cast<const int16_t*>(Section(kSecQuantSquares));
    v.quant.norms = reinterpret_cast<const int32_t*>(Section(kSecQuantNorms));
    v.quant.scale = reinterpret_cast<const double*>(Section(kSecQuantScale));
    v.quant.zero_point =
        reinterpret_cast<const double*>(Section(kSecQuantZeroPoint));
    v.quant.min_scale = header_.quant_min_scale;
    v.quant.max_scale = header_.quant_max_scale;
  }
  return v;
}

bool MappedSnapshot::DecodeGrid(GridImage* out) const {
  if ((header_.flags & kFlagHasGrid) == 0) return false;
  return DecodeGridImage(Section(kSecGrid), header_.sections[kSecGrid].size,
                         out);
}

bool MappedSnapshot::DecodeBase(rmap::RadioMap* out) const {
  if ((header_.flags & kFlagHasBase) == 0) return false;
  rmap::RadioMap base(header_.num_aps);
  base.set_shard(rmap::ShardId{header_.building, header_.floor});
  const uint8_t* p = Section(kSecBaseRecords);
  size_t remaining = header_.sections[kSecBaseRecords].size;
  uint64_t count = 0;
  while (remaining > 0) {
    rmap::Record r;
    size_t consumed = 0;
    // The payload CRC already vouched for these bytes; any frame-level
    // failure here means the file lies about itself — refuse it.
    if (ParseRecordFrame(p, remaining, &r, &consumed) != FrameStatus::kOk) {
      return false;
    }
    if (r.rssi.size() != header_.num_aps) return false;
    base.Add(std::move(r));
    p += consumed;
    remaining -= consumed;
    ++count;
  }
  if (count != header_.base_records) return false;
  *out = std::move(base);
  return true;
}

std::vector<geom::Point> MapSnapshotView::EstimateBatch(
    const la::Matrix& queries, size_t k, bool weighted) const {
  RMI_CHECK(has_quant());
  std::vector<geom::Point> out(queries.rows());
  positioning::KnnQuantEstimateBatch(quant, refs, positions, num_refs,
                                     num_aps, k, weighted, queries,
                                     out.data());
  return out;
}

geom::Point MapSnapshotView::Estimate(const std::vector<double>& query,
                                      size_t k, bool weighted) const {
  RMI_CHECK_EQ(query.size(), num_aps);
  std::vector<std::pair<double, size_t>> candidates;
  candidates.reserve(num_refs);
  for (size_t r = 0; r < num_refs; ++r) {
    candidates.emplace_back(
        la::QuerySquaredDistanceRow(query.data(), refs + r * num_aps,
                                    num_aps),
        r);
  }
  return positioning::CombineKnnCandidates(std::move(candidates), positions,
                                           k, weighted);
}

std::string SnapshotFileName(uint64_t version) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "snapshot.%020llu%s",
                static_cast<unsigned long long>(version), kSnapshotSuffix);
  return buf;
}

std::vector<std::string> ListSnapshotFiles(const std::string& dir) {
  std::vector<std::string> names;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file(ec)) continue;
    const std::string name = entry.path().filename().string();
    constexpr char kPrefix[] = "snapshot.";
    const size_t suffix_len = sizeof(kSnapshotSuffix) - 1;
    if (name.size() <= sizeof(kPrefix) - 1 + suffix_len) continue;
    if (name.compare(0, sizeof(kPrefix) - 1, kPrefix) != 0) continue;
    if (name.compare(name.size() - suffix_len, suffix_len,
                     kSnapshotSuffix) != 0) {
      continue;  // ".tmp" orphans and strangers
    }
    names.push_back(name);
  }
  // Versions are zero-padded, so descending lexical == descending numeric.
  std::sort(names.begin(), names.end(), std::greater<std::string>());
  std::vector<std::string> paths;
  paths.reserve(names.size());
  for (const std::string& n : names) {
    paths.push_back((fs::path(dir) / n).string());
  }
  return paths;
}

std::shared_ptr<const MappedSnapshot> MapNewestValid(const std::string& dir,
                                                     std::string* error) {
  std::string last_error = "no snapshot files in " + dir;
  for (const std::string& path : ListSnapshotFiles(dir)) {
    std::string why;
    auto snap = MappedSnapshot::Map(path, &why);
    if (snap != nullptr) return snap;
    last_error = why;
  }
  SetError(error, last_error);
  return nullptr;
}

}  // namespace rmi::store
