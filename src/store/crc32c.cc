#include "store/crc32c.h"

namespace rmi::store {

namespace {

/// Reflected Castagnoli polynomial.
constexpr uint32_t kPoly = 0x82F63B78u;

struct Tables {
  uint32_t t[4][256];

  Tables() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int b = 0; b < 8; ++b) {
        crc = (crc >> 1) ^ ((crc & 1u) ? kPoly : 0u);
      }
      t[0][i] = crc;
    }
    // Slice tables: t[k][i] advances the CRC of byte i by k more zero
    // bytes, so four input bytes fold in one step.
    for (uint32_t i = 0; i < 256; ++i) {
      t[1][i] = (t[0][i] >> 8) ^ t[0][t[0][i] & 0xFFu];
      t[2][i] = (t[1][i] >> 8) ^ t[0][t[1][i] & 0xFFu];
      t[3][i] = (t[2][i] >> 8) ^ t[0][t[2][i] & 0xFFu];
    }
  }
};

const Tables& GetTables() {
  static const Tables* tables = new Tables();
  return *tables;
}

}  // namespace

uint32_t Crc32c(const void* data, size_t len, uint32_t seed) {
  const Tables& tab = GetTables();
  const auto* p = static_cast<const uint8_t*>(data);
  uint32_t crc = ~seed;
  while (len >= 4) {
    crc ^= static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
           (static_cast<uint32_t>(p[2]) << 16) |
           (static_cast<uint32_t>(p[3]) << 24);
    crc = tab.t[3][crc & 0xFFu] ^ tab.t[2][(crc >> 8) & 0xFFu] ^
          tab.t[1][(crc >> 16) & 0xFFu] ^ tab.t[0][crc >> 24];
    p += 4;
    len -= 4;
  }
  while (len-- > 0) {
    crc = (crc >> 8) ^ tab.t[0][(crc ^ *p++) & 0xFFu];
  }
  return ~crc;
}

}  // namespace rmi::store
