#include "store/wal.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <utility>

#include "obs/metrics.h"
#include "store/record_codec.h"

namespace rmi::store {

namespace {

namespace fs = std::filesystem;

struct WalMetrics {
  obs::Counter& appends = obs::GetCounter(
      "rmi_store_wal_appends_total", "Record frames appended to the WAL");
  obs::Counter& append_bytes = obs::GetCounter(
      "rmi_store_wal_append_bytes_total", "Bytes appended to the WAL");
  obs::Counter& replayed = obs::GetCounter(
      "rmi_store_wal_replayed_records_total",
      "Record frames replayed from the WAL at open");
  obs::Counter& torn_tails =
      obs::GetCounter("rmi_store_wal_torn_tails_total",
                      "Segments whose final frame was torn (tolerated)");
  obs::Counter& corrupt_frames =
      obs::GetCounter("rmi_store_wal_corrupt_frames_total",
                      "CRC-failed or malformed frames that stopped a "
                      "segment's replay");
  obs::Counter& segments_deleted =
      obs::GetCounter("rmi_store_wal_segments_deleted_total",
                      "Sealed segments deleted after a snapshot publish");
  obs::Histogram& fsync_us = obs::GetHistogram(
      "rmi_store_fsync_us", "Durability fsync latency (microseconds)");

  static WalMetrics& Get() {
    static WalMetrics* m = new WalMetrics();
    return *m;
  }
};

void SetError(std::string* error, const std::string& msg) {
  if (error != nullptr) *error = msg;
}

std::string Errno(const std::string& what) {
  return what + ": " + std::strerror(errno);
}

/// Parses the seq out of "wal.<seq>.rmwal"; false for other names.
bool ParseSegmentName(const std::string& name, uint64_t* seq) {
  constexpr char kPrefix[] = "wal.";
  const size_t prefix_len = sizeof(kPrefix) - 1;
  const size_t suffix_len = sizeof(kWalSuffix) - 1;
  if (name.size() <= prefix_len + suffix_len) return false;
  if (name.compare(0, prefix_len, kPrefix) != 0) return false;
  if (name.compare(name.size() - suffix_len, suffix_len, kWalSuffix) != 0) {
    return false;
  }
  uint64_t value = 0;
  for (size_t i = prefix_len; i < name.size() - suffix_len; ++i) {
    const char c = name[i];
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<uint64_t>(c - '0');
  }
  *seq = value;
  return true;
}

/// Segments under `dir`, ascending by seq.
std::vector<std::pair<uint64_t, std::string>> ListSegments(
    const std::string& dir) {
  std::vector<std::pair<uint64_t, std::string>> segments;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file(ec)) continue;
    uint64_t seq = 0;
    if (ParseSegmentName(entry.path().filename().string(), &seq)) {
      segments.emplace_back(seq, entry.path().string());
    }
  }
  std::sort(segments.begin(), segments.end());
  return segments;
}

bool WriteAll(int fd, const char* data, size_t len, std::string* error) {
  size_t written = 0;
  while (written < len) {
    const ssize_t n = ::write(fd, data + written, len - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      SetError(error, Errno("write"));
      return false;
    }
    written += static_cast<size_t>(n);
  }
  return true;
}

bool FsyncFd(int fd, std::string* error) {
  obs::ScopedStageTimer timer(WalMetrics::Get().fsync_us);
  if (::fsync(fd) != 0) {
    SetError(error, Errno("fsync"));
    return false;
  }
  return true;
}

/// Replays one segment file into `out->records`. Torn tails and corrupt
/// frames stop the segment (flagged on `out`); I/O errors on read do too —
/// recovery salvages what it can and moves on.
void ReplaySegment(const std::string& path, Wal::ReplayResult* out) {
  WalMetrics& metrics = WalMetrics::Get();
  std::ifstream in(path, std::ios::binary);
  if (!in) return;
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  const auto* p = reinterpret_cast<const uint8_t*>(bytes.data());
  size_t remaining = bytes.size();
  if (remaining < kWalHeaderBytes) {
    // A header-less stub: the crash hit between open and header write.
    out->tail_truncated = true;
    metrics.torn_tails.Add();
    return;
  }
  uint64_t magic = 0;
  uint32_t version = 0;
  std::memcpy(&magic, p, sizeof(magic));
  std::memcpy(&version, p + sizeof(magic), sizeof(version));
  if (magic != kWalMagic || version != kWalFormatVersion) {
    out->corrupt_frame = true;
    metrics.corrupt_frames.Add();
    return;
  }
  p += kWalHeaderBytes;
  remaining -= kWalHeaderBytes;
  while (remaining > 0) {
    rmap::Record r;
    size_t consumed = 0;
    const FrameStatus status = ParseRecordFrame(p, remaining, &r, &consumed);
    if (status == FrameStatus::kTruncated) {
      out->tail_truncated = true;
      metrics.torn_tails.Add();
      return;
    }
    if (status == FrameStatus::kCorrupt) {
      out->corrupt_frame = true;
      metrics.corrupt_frames.Add();
      return;
    }
    out->records.push_back(std::move(r));
    metrics.replayed.Add();
    p += consumed;
    remaining -= consumed;
  }
}

}  // namespace

std::string WalSegmentFileName(uint64_t seq) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "wal.%020llu%s",
                static_cast<unsigned long long>(seq), kWalSuffix);
  return buf;
}

std::unique_ptr<Wal> Wal::Open(const std::string& dir, uint64_t watermark,
                               const Options& options, ReplayResult* replay,
                               std::string* error) {
  WalMetrics& metrics = WalMetrics::Get();
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    SetError(error, "create_directories " + dir + ": " + ec.message());
    return nullptr;
  }

  ReplayResult result;
  uint64_t max_seen = 0;
  for (const auto& [seq, path] : ListSegments(dir)) {
    if (seq < watermark) {
      // Folded into the snapshot's base section — replaying would
      // double-apply. A crash between snapshot rename and segment
      // deletion lands here: this delete is the deferred half of that
      // publish.
      ::unlink(path.c_str());
      ++result.segments_deleted;
      metrics.segments_deleted.Add();
      continue;
    }
    max_seen = std::max(max_seen, seq);
    ReplaySegment(path, &result);
    ++result.segments_replayed;
  }

  auto wal = std::unique_ptr<Wal>(new Wal());
  wal->dir_ = dir;
  wal->options_ = options;
  wal->options_.sync_every = std::max<size_t>(1, wal->options_.sync_every);
  // Never append to a pre-existing segment: a fresh seq above everything
  // seen (and at least the watermark, so the next restart replays it).
  const uint64_t active = std::max<uint64_t>({max_seen + 1, watermark, 1});
  if (!wal->OpenActiveSegment(active, error)) return nullptr;
  if (replay != nullptr) *replay = std::move(result);
  return wal;
}

bool Wal::OpenActiveSegment(uint64_t seq, std::string* error) {
  const std::string path =
      (fs::path(dir_) / WalSegmentFileName(seq)).string();
  const int fd =
      ::open(path.c_str(), O_WRONLY | O_CREAT | O_EXCL | O_APPEND, 0644);
  if (fd < 0) {
    SetError(error, Errno("open " + path));
    return false;
  }
  char header[kWalHeaderBytes] = {};
  std::memcpy(header, &kWalMagic, sizeof(kWalMagic));
  std::memcpy(header + sizeof(kWalMagic), &kWalFormatVersion,
              sizeof(kWalFormatVersion));
  if (!WriteAll(fd, header, sizeof(header), error)) {
    ::close(fd);
    ::unlink(path.c_str());
    return false;
  }
  fd_ = fd;
  active_seq_ = seq;
  unsynced_appends_ = 0;
  return true;
}

Wal::~Wal() {
  if (fd_ >= 0) {
    if (unsynced_appends_ > 0) ::fsync(fd_);
    ::close(fd_);
  }
}

bool Wal::Append(const rmap::Record& r, std::string* error) {
  WalMetrics& metrics = WalMetrics::Get();
  std::string frame;
  AppendRecordFrame(r, &frame);
  if (!WriteAll(fd_, frame.data(), frame.size(), error)) return false;
  metrics.appends.Add();
  metrics.append_bytes.Add(frame.size());
  if (++unsynced_appends_ >= options_.sync_every) {
    return Sync(error);
  }
  return true;
}

bool Wal::Sync(std::string* error) {
  if (unsynced_appends_ == 0) return true;
  if (!FsyncFd(fd_, error)) return false;
  unsynced_appends_ = 0;
  return true;
}

uint64_t Wal::Rotate(std::string* error) {
  if (!Sync(error)) return 0;
  ::close(fd_);
  fd_ = -1;
  const uint64_t next = active_seq_ + 1;
  if (!OpenActiveSegment(next, error)) return 0;
  return next;
}

void Wal::DeleteSegmentsBelow(uint64_t seq) {
  WalMetrics& metrics = WalMetrics::Get();
  for (const auto& [segment_seq, path] : ListSegments(dir_)) {
    if (segment_seq >= seq || segment_seq == active_seq_) continue;
    ::unlink(path.c_str());
    metrics.segments_deleted.Add();
  }
}

}  // namespace rmi::store
