#include "store/record_codec.h"

#include <cstring>
#include <limits>

#include "store/crc32c.h"

namespace rmi::store {

namespace {

template <typename T>
void AppendPod(T v, std::string* out) {
  char buf[sizeof(T)];
  std::memcpy(buf, &v, sizeof(T));
  out->append(buf, sizeof(T));
}

template <typename T>
bool ReadPod(const uint8_t* p, size_t len, size_t* off, T* v) {
  if (len - *off < sizeof(T)) return false;
  std::memcpy(v, p + *off, sizeof(T));
  *off += sizeof(T);
  return true;
}

}  // namespace

void AppendRecordPayload(const rmap::Record& r, std::string* out) {
  AppendPod<uint64_t>(r.id, out);
  AppendPod<uint64_t>(r.path_id, out);
  AppendPod<double>(r.time, out);
  AppendPod<double>(r.rp.x, out);
  AppendPod<double>(r.rp.y, out);
  AppendPod<uint8_t>(r.has_rp ? 1 : 0, out);
  AppendPod<uint32_t>(static_cast<uint32_t>(r.rssi.size()), out);
  for (double v : r.rssi) AppendPod<double>(v, out);
}

bool ParseRecordPayload(const uint8_t* p, size_t len, rmap::Record* out) {
  size_t off = 0;
  uint64_t id = 0, path_id = 0;
  double time = 0.0, x = 0.0, y = 0.0;
  uint8_t has_rp = 0;
  uint32_t num_aps = 0;
  if (!ReadPod(p, len, &off, &id) || !ReadPod(p, len, &off, &path_id) ||
      !ReadPod(p, len, &off, &time) || !ReadPod(p, len, &off, &x) ||
      !ReadPod(p, len, &off, &y) || !ReadPod(p, len, &off, &has_rp) ||
      !ReadPod(p, len, &off, &num_aps)) {
    return false;
  }
  if (has_rp > 1) return false;
  if (len - off != static_cast<size_t>(num_aps) * sizeof(double)) {
    return false;
  }
  out->id = id;
  out->path_id = path_id;
  out->time = time;
  out->rp = geom::Point(x, y);
  out->has_rp = has_rp != 0;
  out->rssi.resize(num_aps);
  for (uint32_t j = 0; j < num_aps; ++j) {
    ReadPod(p, len, &off, &out->rssi[j]);
  }
  return true;
}

void AppendRecordFrame(const rmap::Record& r, std::string* out) {
  std::string payload;
  AppendRecordPayload(r, &payload);
  AppendPod<uint32_t>(static_cast<uint32_t>(payload.size()), out);
  AppendPod<uint32_t>(Crc32c(payload.data(), payload.size()), out);
  out->append(payload);
}

FrameStatus ParseRecordFrame(const uint8_t* p, size_t avail,
                             rmap::Record* out, size_t* consumed) {
  if (avail < kFrameHeaderBytes) return FrameStatus::kTruncated;
  uint32_t len = 0, crc = 0;
  std::memcpy(&len, p, sizeof(len));
  std::memcpy(&crc, p + sizeof(len), sizeof(crc));
  // An implausible length is corruption, not a torn tail: a frame header
  // is written in one buffered append, so a partial *header* can only be
  // the file's final bytes — handled by the kTruncated paths — while a
  // complete header pointing past any sane record length means the bytes
  // under it were damaged.
  constexpr uint32_t kMaxFrameBytes = 1u << 26;  // 64 MiB >> any record
  if (len > kMaxFrameBytes) return FrameStatus::kCorrupt;
  if (avail - kFrameHeaderBytes < len) return FrameStatus::kTruncated;
  const uint8_t* payload = p + kFrameHeaderBytes;
  if (Crc32c(payload, len) != crc) return FrameStatus::kCorrupt;
  rmap::Record r;
  if (!ParseRecordPayload(payload, len, &r)) return FrameStatus::kCorrupt;
  *out = std::move(r);
  *consumed = kFrameHeaderBytes + len;
  return FrameStatus::kOk;
}

}  // namespace rmi::store
