// Neural time-series imputation baselines (paper Section V-C, Table IX):
//  * BRITS [11] — bidirectional recurrent imputation: an LSTM per direction
//    with feature regression, temporal-decay (time-lag) gating, and a
//    forward/backward consistency loss. Imputes missing RSSIs only; null
//    RPs fall back to linear interpolation (the paper's BRITS+LI variant).
//  * SSGAN [44] — generative adversarial imputation: a GRU-based generator
//    with temporal decay and an MLP discriminator classifying each cell as
//    observed vs. imputed. This implementation keeps the GAN imputation
//    core and omits the semi-supervised label classifier (our labels are
//    the RPs, which SSGAN cannot impute; see DESIGN.md); null RPs use LI.
#ifndef RMI_IMPUTERS_NEURAL_H_
#define RMI_IMPUTERS_NEURAL_H_

#include "imputers/imputer.h"

namespace rmi::imputers {

/// Shared training knobs for the neural baselines.
struct NeuralParams {
  size_t hidden = 24;
  size_t seq_len = 5;
  size_t epochs = 25;
  /// See bisim::BiSimConfig::batch_size on the paper-vs-here trade-off.
  size_t batch_size = 8;
  double lr = 2e-3;
  double grad_clip = 5.0;
  double time_scale = 0.1;
  uint64_t seed = 17;
};

class BritsImputer : public Imputer {
 public:
  BritsImputer() : params_() {}
  explicit BritsImputer(const NeuralParams& params) : params_(params) {}

  rmap::RadioMap Impute(const rmap::RadioMap& map,
                        const rmap::MaskMatrix& amended_mask,
                        Rng& rng) const override;
  std::string name() const override { return "BRITS"; }

 private:
  NeuralParams params_;
};

class SsganImputer : public Imputer {
 public:
  struct Params : NeuralParams {
    double adv_weight = 0.3;   ///< generator adversarial-loss weight
    size_t disc_hidden = 32;
  };

  SsganImputer() : params_() {}
  explicit SsganImputer(const Params& params) : params_(params) {}

  rmap::RadioMap Impute(const rmap::RadioMap& map,
                        const rmap::MaskMatrix& amended_mask,
                        Rng& rng) const override;
  std::string name() const override { return "SSGAN"; }

 private:
  Params params_;
};

}  // namespace rmi::imputers

#endif  // RMI_IMPUTERS_NEURAL_H_
