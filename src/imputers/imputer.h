// Common interface of all data imputers (module B of the framework).
//
// Contract: Impute() receives the sparse radio map together with the
// *amended* mask M' (paper Section IV): MNAR cells have already been filled
// with -100 dBm and flipped to "observed" in the mask, so the only 0-cells
// left are MARs. The returned radio map must be complete — no null RSSIs
// and no null RPs (CaseDeletion instead drops the null-RP records).
#ifndef RMI_IMPUTERS_IMPUTER_H_
#define RMI_IMPUTERS_IMPUTER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "radiomap/radio_map.h"

namespace rmi::imputers {

/// Opaque backend-defined warm-start state handed across consecutive
/// incremental imputations of the same shard. The *caller* owns it (e.g.
/// serving::MapUpdater keeps one per shard), which keeps imputers stateless
/// and safe to share const across threads; a backend that has nothing to
/// carry simply never produces one.
class ImputerState {
 public:
  virtual ~ImputerState() = default;
};

/// Everything ImputeIncremental may exploit beyond the merged map itself.
/// All fields are optional; a default-constructed context degrades the call
/// to a cold Impute.
struct IncrementalContext {
  /// Output of the previous imputation pass, row-aligned with the first
  /// `num_previous_records` rows of the merged map (the pre-delta base).
  /// nullptr on the first build — or whenever the caller cannot guarantee
  /// alignment (a backend that drops records, like CaseDeletion, breaks it;
  /// the base implementation re-checks sizes and falls back to cold).
  const rmap::RadioMap* previous_imputed = nullptr;
  size_t num_previous_records = 0;
  /// Warm-start blob returned by this imputer's previous incremental call
  /// (via state_out) — e.g. trained BiSIM weights. Backends must tolerate
  /// a stale or foreign blob (dynamic_cast + shape checks, cold fallback).
  std::shared_ptr<const ImputerState> previous_state;
  /// When non-null, the backend may deposit its refreshed warm-start state
  /// here for the caller to pass back next time.
  std::shared_ptr<const ImputerState>* state_out = nullptr;
  /// Dirty-row propagation: each delta observation marks its
  /// `dirty_neighbors` nearest previous rows (fingerprint distance over the
  /// delta's observed APs) for re-imputation.
  size_t dirty_neighbors = 8;
  /// Once the dirty set covers at least this fraction of all rows, the
  /// incremental path stops paying its bookkeeping and the call runs a cold
  /// Impute of the whole merged map (bit-identical to Impute).
  double max_dirty_fraction = 0.6;
  /// When non-null, receives the merged-map row indices whose imputed
  /// values may differ from the previous imputation (ascending, deltas
  /// included). Downstream warm paths — the incremental spatial-index
  /// build, estimator warm-starts — rebuild only what these rows touch.
  /// Conservative by construction: a cold-path fallback reports *every*
  /// row, and an exact no-op republish reports none.
  std::vector<size_t>* dirty_rows_out = nullptr;
};

/// Common interface of all data imputers.
///
/// Thread-safety: implementations are stateless after construction —
/// Impute()/ImputeIncremental() are const and safe to call concurrently
/// from multiple threads (all mutable state lives in locals, the
/// caller-provided Rng, and the caller-owned IncrementalContext; callers
/// must not share one Rng or one context across threads).
/// Ownership: imputers never retain references to the input map or mask.
class Imputer {
 public:
  virtual ~Imputer() = default;

  /// Produces a fully imputed radio map: no null RSSIs, no null RPs
  /// (CaseDeletion instead drops the null-RP records).
  virtual rmap::RadioMap Impute(const rmap::RadioMap& map,
                                const rmap::MaskMatrix& amended_mask,
                                Rng& rng) const = 0;

  /// Incremental re-imputation — the live-update loop's re-fit entry point
  /// (serving::MapUpdater). `merged` holds the previously surveyed records
  /// plus the newly ingested delta observations (appended after row
  /// `ctx.num_previous_records`), and `amended_mask` is its amended mask
  /// (same contract as Impute).
  ///
  /// The base implementation no longer defaults to a cold Impute: when the
  /// context carries an aligned previous imputation it propagates dirtiness
  /// from the delta rows through the fingerprint-neighborhood structure
  /// (each delta marks its `ctx.dirty_neighbors` nearest previous rows),
  /// cold-imputes only the dirty sub-map, and splices clean rows straight
  /// from `previous_imputed`. Exactness degrades gracefully: with no usable
  /// context — or once the dirty set reaches `ctx.max_dirty_fraction` — the
  /// call is exactly Impute(merged); with an empty delta set it returns the
  /// previous imputation re-spliced (a forced republish re-imputes
  /// nothing). Backends with trainable state (BiSIM) override this to also
  /// warm-start training from `ctx.previous_state`.
  ///
  /// Must return a complete map, exactly like Impute.
  virtual rmap::RadioMap ImputeIncremental(const rmap::RadioMap& merged,
                                           const rmap::MaskMatrix& amended_mask,
                                           const IncrementalContext& ctx,
                                           Rng& rng) const;

  /// True for backends whose Impute may return fewer records than it was
  /// given (CaseDeletion). The incremental path cannot splice by row index
  /// against such a backend, so it skips straight to the cold rebuild
  /// instead of paying for a dirty-sub-map imputation it would have to
  /// throw away on the size check.
  virtual bool MayDropRecords() const { return false; }

  virtual std::string name() const = 0;
};

/// First step of the Data Imputer module: fills every MNAR cell with
/// -100 dBm in `map` and amends `mask` (MNAR -> observed), leaving 0s only
/// for MARs. Returns the number of cells filled.
size_t FillMnar(rmap::RadioMap* map, rmap::MaskMatrix* mask);

/// Dirty-row propagation used by the base ImputeIncremental (exposed for
/// tests and benches): flags every delta row (index >= num_previous) plus,
/// for each delta, its `dirty_neighbors` nearest previous rows by squared
/// fingerprint distance over the delta's observed APs — the rows whose AP
/// neighborhoods the delta set touches. `previous_imputed` supplies the
/// complete fingerprints of the previous rows and must be row-aligned with
/// the first `num_previous` rows of `merged`.
std::vector<uint8_t> PropagateDirtyRows(const rmap::RadioMap& merged,
                                        const rmap::MaskMatrix& amended_mask,
                                        const rmap::RadioMap& previous_imputed,
                                        size_t num_previous,
                                        size_t dirty_neighbors);

}  // namespace rmi::imputers

#endif  // RMI_IMPUTERS_IMPUTER_H_
