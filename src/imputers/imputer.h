// Common interface of all data imputers (module B of the framework).
//
// Contract: Impute() receives the sparse radio map together with the
// *amended* mask M' (paper Section IV): MNAR cells have already been filled
// with -100 dBm and flipped to "observed" in the mask, so the only 0-cells
// left are MARs. The returned radio map must be complete — no null RSSIs
// and no null RPs (CaseDeletion instead drops the null-RP records).
#ifndef RMI_IMPUTERS_IMPUTER_H_
#define RMI_IMPUTERS_IMPUTER_H_

#include <string>

#include "common/rng.h"
#include "radiomap/radio_map.h"

namespace rmi::imputers {

/// Common interface of all data imputers.
///
/// Thread-safety: implementations are stateless after construction —
/// Impute()/ImputeIncremental() are const and safe to call concurrently
/// from multiple threads (all mutable state lives in locals and the
/// caller-provided Rng; callers must not share one Rng across threads).
/// Ownership: imputers never retain references to the input map or mask.
class Imputer {
 public:
  virtual ~Imputer() = default;

  /// Produces a fully imputed radio map: no null RSSIs, no null RPs
  /// (CaseDeletion instead drops the null-RP records).
  virtual rmap::RadioMap Impute(const rmap::RadioMap& map,
                                const rmap::MaskMatrix& amended_mask,
                                Rng& rng) const = 0;

  /// Incremental re-imputation — the live-update loop's re-fit entry point
  /// (serving::MapUpdater). `merged` holds the previously surveyed records
  /// plus the newly ingested delta observations, `amended_mask` is its
  /// amended mask (same contract as Impute), and `previous_imputed` is the
  /// output of the last imputation pass over the pre-delta records —
  /// nullptr on the first build. The base implementation ignores the warm
  /// start and runs a full Impute, so every backend (BiSIM included) works
  /// in the update loop unchanged; backends with trainable state may
  /// override to warm-start from `previous_imputed` and converge faster.
  /// Must return a complete map, exactly like Impute.
  virtual rmap::RadioMap ImputeIncremental(
      const rmap::RadioMap& merged, const rmap::MaskMatrix& amended_mask,
      const rmap::RadioMap* previous_imputed, Rng& rng) const;

  virtual std::string name() const = 0;
};

/// First step of the Data Imputer module: fills every MNAR cell with
/// -100 dBm in `map` and amends `mask` (MNAR -> observed), leaving 0s only
/// for MARs. Returns the number of cells filled.
size_t FillMnar(rmap::RadioMap* map, rmap::MaskMatrix* mask);

}  // namespace rmi::imputers

#endif  // RMI_IMPUTERS_IMPUTER_H_
