// Common interface of all data imputers (module B of the framework).
//
// Contract: Impute() receives the sparse radio map together with the
// *amended* mask M' (paper Section IV): MNAR cells have already been filled
// with -100 dBm and flipped to "observed" in the mask, so the only 0-cells
// left are MARs. The returned radio map must be complete — no null RSSIs
// and no null RPs (CaseDeletion instead drops the null-RP records).
#ifndef RMI_IMPUTERS_IMPUTER_H_
#define RMI_IMPUTERS_IMPUTER_H_

#include <string>

#include "common/rng.h"
#include "radiomap/radio_map.h"

namespace rmi::imputers {

class Imputer {
 public:
  virtual ~Imputer() = default;

  /// Produces a fully imputed radio map.
  virtual rmap::RadioMap Impute(const rmap::RadioMap& map,
                                const rmap::MaskMatrix& amended_mask,
                                Rng& rng) const = 0;

  virtual std::string name() const = 0;
};

/// First step of the Data Imputer module: fills every MNAR cell with
/// -100 dBm in `map` and amends `mask` (MNAR -> observed), leaving 0s only
/// for MARs. Returns the number of cells filled.
size_t FillMnar(rmap::RadioMap* map, rmap::MaskMatrix* mask);

}  // namespace rmi::imputers

#endif  // RMI_IMPUTERS_IMPUTER_H_
