#include "imputers/autocorrelation.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/check.h"
#include "common/missing.h"
#include "common/stats.h"
#include "la/matrix.h"

namespace rmi::imputers {

namespace {

/// Assembles the working matrix: normalized RSSIs in [0,1] and RP coords
/// scaled by `loc_scale`; `observed` marks known cells. Null RSSIs (MARs —
/// MNARs are pre-filled by FillMnar) and missing RP coords are unobserved.
struct WorkingMatrix {
  la::Matrix x;          // N x (D+2)
  std::vector<uint8_t> observed;  // row-major, same shape
  double loc_scale = 0.0;

  bool IsObserved(size_t i, size_t j) const {
    return observed[i * x.cols() + j] != 0;
  }
};

WorkingMatrix BuildWorking(const rmap::RadioMap& map) {
  const size_t n = map.size();
  const size_t d = map.num_aps();
  WorkingMatrix w;
  w.x = la::Matrix(n, d + 2);
  w.observed.assign(n * (d + 2), 0);
  // Location scale: normalize by the span of observed RPs.
  double max_coord = 1.0;
  for (size_t i = 0; i < n; ++i) {
    const rmap::Record& r = map.record(i);
    if (r.has_rp) {
      max_coord = std::max({max_coord, std::fabs(r.rp.x), std::fabs(r.rp.y)});
    }
  }
  w.loc_scale = 1.0 / max_coord;
  for (size_t i = 0; i < n; ++i) {
    const rmap::Record& r = map.record(i);
    for (size_t j = 0; j < d; ++j) {
      if (!IsNull(r.rssi[j])) {
        w.x(i, j) = (r.rssi[j] + 100.0) / 100.0;
        w.observed[i * (d + 2) + j] = 1;
      }
    }
    if (r.has_rp) {
      w.x(i, d) = r.rp.x * w.loc_scale;
      w.x(i, d + 1) = r.rp.y * w.loc_scale;
      w.observed[i * (d + 2) + d] = 1;
      w.observed[i * (d + 2) + d + 1] = 1;
    }
  }
  return w;
}

/// Writes the filled working matrix back into a complete radio map.
rmap::RadioMap EmitResult(const rmap::RadioMap& map, const WorkingMatrix& w) {
  rmap::RadioMap out = map;
  const size_t d = map.num_aps();
  for (size_t i = 0; i < out.size(); ++i) {
    rmap::Record& r = out.record(i);
    for (size_t j = 0; j < d; ++j) {
      if (IsNull(r.rssi[j])) {
        r.rssi[j] = ClampImputed(w.x(i, j) * 100.0 - 100.0);
      }
    }
    if (!r.has_rp) {
      r.rp = geom::Point{w.x(i, d) / w.loc_scale, w.x(i, d + 1) / w.loc_scale};
      r.has_rp = true;
    }
  }
  return out;
}

/// Column means over observed cells (0 if a column has none).
std::vector<double> ObservedColumnMeans(const WorkingMatrix& w) {
  const size_t cols = w.x.cols();
  std::vector<double> mean(cols, 0.0);
  std::vector<size_t> count(cols, 0);
  for (size_t i = 0; i < w.x.rows(); ++i) {
    for (size_t j = 0; j < cols; ++j) {
      if (w.IsObserved(i, j)) {
        mean[j] += w.x(i, j);
        ++count[j];
      }
    }
  }
  for (size_t j = 0; j < cols; ++j) {
    if (count[j]) mean[j] /= static_cast<double>(count[j]);
  }
  return mean;
}

}  // namespace

rmap::RadioMap MiceImputer::Impute(const rmap::RadioMap& map,
                                   const rmap::MaskMatrix&, Rng& rng) const {
  WorkingMatrix w = BuildWorking(map);
  const size_t n = w.x.rows();
  const size_t cols = w.x.cols();

  // Initialize missing cells with column means.
  const std::vector<double> mean = ObservedColumnMeans(w);
  std::vector<size_t> incomplete_cols;
  for (size_t j = 0; j < cols; ++j) {
    bool any_missing = false, any_observed = false;
    for (size_t i = 0; i < n; ++i) {
      if (w.IsObserved(i, j)) {
        any_observed = true;
      } else {
        w.x(i, j) = mean[j];
        any_missing = true;
      }
    }
    if (any_missing && any_observed) incomplete_cols.push_back(j);
  }
  if (incomplete_cols.empty()) return EmitResult(map, w);

  // Predictor selection: the columns most |corr|-related to each target,
  // estimated once from the mean-initialized matrix.
  auto column = [&](size_t j) {
    std::vector<double> v(n);
    for (size_t i = 0; i < n; ++i) v[i] = w.x(i, j);
    return v;
  };
  std::vector<std::vector<size_t>> predictors(cols);
  if (params_.max_predictors == 0) {
    // Standard MICE: regress each incomplete column on all others.
    for (size_t j : incomplete_cols) {
      for (size_t p = 0; p < cols; ++p) {
        if (p != j) predictors[j].push_back(p);
      }
    }
  } else {
    std::vector<std::vector<double>> colv(cols);
    for (size_t j = 0; j < cols; ++j) colv[j] = column(j);
    for (size_t j : incomplete_cols) {
      std::vector<std::pair<double, size_t>> scored;
      for (size_t p = 0; p < cols; ++p) {
        if (p == j) continue;
        const double c = std::fabs(PearsonCorrelation(colv[j], colv[p]));
        scored.emplace_back(c, p);
      }
      const size_t take = std::min(params_.max_predictors, scored.size());
      std::partial_sort(scored.begin(), scored.begin() + take, scored.end(),
                        std::greater<>());
      for (size_t t = 0; t < take; ++t) {
        predictors[j].push_back(scored[t].second);
      }
    }
  }

  // Chained equations.
  for (size_t iter = 0; iter < params_.iterations; ++iter) {
    std::vector<size_t> order = incomplete_cols;
    rng.Shuffle(&order);
    for (size_t j : order) {
      const auto& preds = predictors[j];
      if (preds.empty()) continue;
      std::vector<size_t> obs_rows, mis_rows;
      for (size_t i = 0; i < n; ++i) {
        (w.IsObserved(i, j) ? obs_rows : mis_rows).push_back(i);
      }
      if (obs_rows.empty() || mis_rows.empty()) continue;
      la::Matrix a(obs_rows.size(), preds.size() + 1);
      la::Matrix b(obs_rows.size(), 1);
      for (size_t r = 0; r < obs_rows.size(); ++r) {
        a(r, 0) = 1.0;  // intercept
        for (size_t p = 0; p < preds.size(); ++p) {
          a(r, p + 1) = w.x(obs_rows[r], preds[p]);
        }
        b(r, 0) = w.x(obs_rows[r], j);
      }
      const la::Matrix beta = la::RidgeRegression(a, b, params_.ridge);
      for (size_t i : mis_rows) {
        double pred = beta(0, 0);
        for (size_t p = 0; p < preds.size(); ++p) {
          pred += beta(p + 1, 0) * w.x(i, preds[p]);
        }
        w.x(i, j) = pred;
      }
    }
  }
  return EmitResult(map, w);
}

rmap::RadioMap MatrixFactorizationImputer::Impute(const rmap::RadioMap& map,
                                                  const rmap::MaskMatrix&,
                                                  Rng& rng) const {
  WorkingMatrix w = BuildWorking(map);
  const size_t n = w.x.rows();
  const size_t cols = w.x.cols();
  const size_t r = params_.rank;

  // Observed-cell list and global mean.
  struct Cell {
    uint32_t i, j;
    double v;
  };
  std::vector<Cell> cells;
  double mu = 0.0;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < cols; ++j) {
      if (w.IsObserved(i, j)) {
        cells.push_back({static_cast<uint32_t>(i), static_cast<uint32_t>(j),
                         w.x(i, j)});
        mu += w.x(i, j);
      }
    }
  }
  if (cells.empty()) return EmitResult(map, w);
  mu /= static_cast<double>(cells.size());

  la::Matrix u = la::Matrix::Gaussian(n, r, rng, 0.05);
  la::Matrix v = la::Matrix::Gaussian(cols, r, rng, 0.05);
  std::vector<double> bi(n, 0.0), bj(cols, 0.0);

  double prev_rmse = 1e300;
  size_t stale = 0;
  for (size_t epoch = 0; epoch < params_.max_epochs; ++epoch) {
    rng.Shuffle(&cells);
    double se = 0.0;
    for (const Cell& c : cells) {
      double* ui = &u.data()[c.i * r];
      double* vj = &v.data()[c.j * r];
      double pred = mu + bi[c.i] + bj[c.j];
      for (size_t t = 0; t < r; ++t) pred += ui[t] * vj[t];
      const double err = c.v - pred;
      se += err * err;
      bi[c.i] += params_.lr * (err - params_.reg * bi[c.i]);
      bj[c.j] += params_.lr * (err - params_.reg * bj[c.j]);
      for (size_t t = 0; t < r; ++t) {
        const double uo = ui[t];
        ui[t] += params_.lr * (err * vj[t] - params_.reg * uo);
        vj[t] += params_.lr * (err * uo - params_.reg * vj[t]);
      }
    }
    const double rmse = std::sqrt(se / static_cast<double>(cells.size()));
    if (prev_rmse - rmse < params_.tol) {
      if (++stale >= params_.patience) break;
    } else {
      stale = 0;
    }
    prev_rmse = rmse;
  }

  // Fill missing cells with the factorization's predictions.
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < cols; ++j) {
      if (w.IsObserved(i, j)) continue;
      double pred = mu + bi[i] + bj[j];
      for (size_t t = 0; t < r; ++t) pred += u(i, t) * v(j, t);
      w.x(i, j) = pred;
    }
  }
  return EmitResult(map, w);
}

}  // namespace rmi::imputers
