#include "imputers/imputer.h"

#include <algorithm>
#include <utility>

#include "common/check.h"
#include "common/missing.h"
#include "la/kernels.h"
#include "la/matrix.h"

namespace rmi::imputers {

namespace {

/// Reports every merged-map row as dirty through ctx.dirty_rows_out — the
/// truthful answer whenever the call degenerated to a cold Impute.
void ReportAllDirty(const IncrementalContext& ctx, size_t n) {
  if (ctx.dirty_rows_out == nullptr) return;
  ctx.dirty_rows_out->resize(n);
  for (size_t i = 0; i < n; ++i) (*ctx.dirty_rows_out)[i] = i;
}

/// Fills the null cells (and missing RP) of `out`'s row `row` from the
/// aligned `source` record — the splice step of the incremental path.
/// Observed merged cells always win; only the holes take imputed values.
void FillRowFrom(rmap::RadioMap* out, size_t row, const rmap::Record& source) {
  rmap::Record& r = out->record(row);
  for (size_t j = 0; j < r.rssi.size(); ++j) {
    if (IsNull(r.rssi[j])) r.rssi[j] = source.rssi[j];
  }
  if (!r.has_rp && source.has_rp) {
    r.rp = source.rp;
    r.has_rp = true;
  }
}

}  // namespace

std::vector<uint8_t> PropagateDirtyRows(const rmap::RadioMap& merged,
                                        const rmap::MaskMatrix& amended_mask,
                                        const rmap::RadioMap& previous_imputed,
                                        size_t num_previous,
                                        size_t dirty_neighbors) {
  const size_t n = merged.size();
  const size_t d = merged.num_aps();
  RMI_CHECK_LE(num_previous, n);
  RMI_CHECK_EQ(previous_imputed.size(), num_previous);
  RMI_CHECK_EQ(amended_mask.rows(), n);
  std::vector<uint8_t> dirty(n, 0);
  for (size_t i = num_previous; i < n; ++i) dirty[i] = 1;
  if (num_previous == 0 || n == num_previous || dirty_neighbors == 0) {
    return dirty;
  }

  // Complete fingerprints of the previous rows (the clustering structure
  // the deltas perturb).
  la::Matrix refs(num_previous, d);
  for (size_t i = 0; i < num_previous; ++i) {
    const rmap::Record& r = previous_imputed.record(i);
    for (size_t j = 0; j < d; ++j) refs(i, j) = r.rssi[j];
  }

  const size_t k = std::min(dirty_neighbors, num_previous);
  std::vector<double> query(d);
  std::vector<std::pair<double, size_t>> dist(num_previous);
  for (size_t t = num_previous; t < n; ++t) {
    const rmap::Record& r = merged.record(t);
    size_t observed_dims = 0;
    for (size_t j = 0; j < d; ++j) {
      const bool observed =
          amended_mask.at(t, j) == rmap::MaskValue::kObserved &&
          !IsNull(r.rssi[j]);
      query[j] = observed ? r.rssi[j] : kNull;  // kNull skipped by the kernel
      observed_dims += observed;
    }
    // A fully unobserved delta has no fingerprint neighborhood: every
    // distance would tie at 0 and flag an arbitrary first-k rows. It stays
    // dirty itself but propagates nothing.
    if (observed_dims == 0) continue;
    for (size_t i = 0; i < num_previous; ++i) {
      dist[i] = {la::QuerySquaredDistance(query.data(), refs, i), i};
    }
    std::partial_sort(dist.begin(), dist.begin() + k, dist.end());
    for (size_t i = 0; i < k; ++i) dirty[dist[i].second] = 1;
  }
  return dirty;
}

rmap::RadioMap Imputer::ImputeIncremental(const rmap::RadioMap& merged,
                                          const rmap::MaskMatrix& amended_mask,
                                          const IncrementalContext& ctx,
                                          Rng& rng) const {
  const size_t n = merged.size();
  const size_t prev = ctx.num_previous_records;
  const rmap::RadioMap* previous = ctx.previous_imputed;
  // No usable warm start (first build, a record-dropping backend, or
  // alignment broken by one): exactly the cold pipeline.
  if (MayDropRecords() || previous == nullptr || prev == 0 || prev > n ||
      previous->size() != prev || previous->num_aps() != merged.num_aps()) {
    ReportAllDirty(ctx, n);
    return Impute(merged, amended_mask, rng);
  }

  const std::vector<uint8_t> dirty = PropagateDirtyRows(
      merged, amended_mask, *previous, prev, ctx.dirty_neighbors);
  const size_t dirty_count =
      static_cast<size_t>(std::count(dirty.begin(), dirty.end(), uint8_t{1}));

  if (dirty_count == 0) {
    // Forced republish with no deltas: nothing moved, so the previous
    // imputation still answers every hole.
    if (ctx.dirty_rows_out != nullptr) ctx.dirty_rows_out->clear();
    rmap::RadioMap out = merged;
    for (size_t i = 0; i < prev; ++i) FillRowFrom(&out, i, previous->record(i));
    return out;
  }
  if (static_cast<double>(dirty_count) >=
      ctx.max_dirty_fraction * static_cast<double>(n)) {
    // The delta wave touched most of the map — incremental bookkeeping
    // would cost more than it saves, and falling back keeps this case
    // bit-identical to a cold rebuild.
    ReportAllDirty(ctx, n);
    return Impute(merged, amended_mask, rng);
  }

  // Cold-impute the dirty sub-map only. Records keep their path_id/time, so
  // sequence-based backends retain (partial) path context; the accuracy
  // budget of that approximation is what the incremental tests bound.
  const size_t d = merged.num_aps();
  rmap::RadioMap sub(d);
  rmap::MaskMatrix submask(dirty_count, d);
  std::vector<size_t> sub_rows;
  sub_rows.reserve(dirty_count);
  for (size_t i = 0; i < n; ++i) {
    if (!dirty[i]) continue;
    const size_t r = sub_rows.size();
    sub.Add(merged.record(i));
    for (size_t j = 0; j < d; ++j) submask.set(r, j, amended_mask.at(i, j));
    sub_rows.push_back(i);
  }
  // Checkpoint the generator: the defensive fallback below must replay the
  // exact cold rebuild, not a cold rebuild on a partially-consumed stream.
  const Rng rng_checkpoint = rng;
  const rmap::RadioMap sub_out = Impute(sub, submask, rng);
  if (sub_out.size() != sub_rows.size()) {
    // Defense in depth: a backend that drops records *without* declaring
    // MayDropRecords() (those are routed cold up front) cannot be spliced
    // by row index — rewind the rng and pay for the cold rebuild.
    rng = rng_checkpoint;
    ReportAllDirty(ctx, n);
    return Impute(merged, amended_mask, rng);
  }
  if (ctx.dirty_rows_out != nullptr) *ctx.dirty_rows_out = sub_rows;

  rmap::RadioMap out = merged;
  for (size_t i = 0; i < prev; ++i) {
    if (!dirty[i]) FillRowFrom(&out, i, previous->record(i));
  }
  for (size_t r = 0; r < sub_rows.size(); ++r) {
    FillRowFrom(&out, sub_rows[r], sub_out.record(r));
  }
  return out;
}

size_t FillMnar(rmap::RadioMap* map, rmap::MaskMatrix* mask) {
  RMI_CHECK(map != nullptr);
  RMI_CHECK(mask != nullptr);
  RMI_CHECK_EQ(mask->rows(), map->size());
  RMI_CHECK_EQ(mask->cols(), map->num_aps());
  size_t filled = 0;
  for (size_t i = 0; i < map->size(); ++i) {
    rmap::Record& r = map->record(i);
    for (size_t j = 0; j < map->num_aps(); ++j) {
      if (mask->at(i, j) == rmap::MaskValue::kMnar) {
        RMI_CHECK(IsNull(r.rssi[j]));
        r.rssi[j] = kMnarFillDbm;
        mask->set(i, j, rmap::MaskValue::kObserved);
        ++filled;
      }
    }
  }
  return filled;
}

}  // namespace rmi::imputers
