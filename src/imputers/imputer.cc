#include "imputers/imputer.h"

#include "common/check.h"
#include "common/missing.h"

namespace rmi::imputers {

rmap::RadioMap Imputer::ImputeIncremental(
    const rmap::RadioMap& merged, const rmap::MaskMatrix& amended_mask,
    const rmap::RadioMap* previous_imputed, Rng& rng) const {
  // Default: cold re-impute of the merged map. `previous_imputed` is the
  // warm-start hook for backends with trainable state; the contract (and
  // the equivalence test) is that ignoring it is always correct.
  (void)previous_imputed;
  return Impute(merged, amended_mask, rng);
}

size_t FillMnar(rmap::RadioMap* map, rmap::MaskMatrix* mask) {
  RMI_CHECK(map != nullptr);
  RMI_CHECK(mask != nullptr);
  RMI_CHECK_EQ(mask->rows(), map->size());
  RMI_CHECK_EQ(mask->cols(), map->num_aps());
  size_t filled = 0;
  for (size_t i = 0; i < map->size(); ++i) {
    rmap::Record& r = map->record(i);
    for (size_t j = 0; j < map->num_aps(); ++j) {
      if (mask->at(i, j) == rmap::MaskValue::kMnar) {
        RMI_CHECK(IsNull(r.rssi[j]));
        r.rssi[j] = kMnarFillDbm;
        mask->set(i, j, rmap::MaskValue::kObserved);
        ++filled;
      }
    }
  }
  return filled;
}

}  // namespace rmi::imputers
