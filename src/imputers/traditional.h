// Traditional radio-map imputers used in fingerprinting systems
// (paper Section V-C baselines 3-5):
//  * CD — Case Deletion [32]: drop null-RP records, -100 dBm for nulls;
//  * LI — Linear Interpolation [37]: interpolate RPs along the path;
//  * SL — Semi-supervised Learning [49]: iterative label propagation of
//         RPs over a fingerprint k-NN graph.
// All three fill every remaining missing RSSI with -100 dBm (they predate
// MAR/MNAR differentiation).
#ifndef RMI_IMPUTERS_TRADITIONAL_H_
#define RMI_IMPUTERS_TRADITIONAL_H_

#include "imputers/imputer.h"

namespace rmi::imputers {

/// CD: removes records with null RPs; fills missing RSSIs with -100 dBm.
class CaseDeletionImputer : public Imputer {
 public:
  rmap::RadioMap Impute(const rmap::RadioMap& map,
                        const rmap::MaskMatrix& amended_mask,
                        Rng& rng) const override;
  bool MayDropRecords() const override { return true; }
  std::string name() const override { return "CD"; }
};

/// LI: linear interpolation of null RPs along each survey path; -100 dBm
/// for missing RSSIs.
class LinearInterpolationImputer : public Imputer {
 public:
  rmap::RadioMap Impute(const rmap::RadioMap& map,
                        const rmap::MaskMatrix& amended_mask,
                        Rng& rng) const override;
  std::string name() const override { return "LI"; }
};

/// SL: semi-supervised RP inference — records with observed RPs seed an
/// iterative weighted k-NN regression in fingerprint space; inferred RPs
/// join the labeled pool in later rounds. -100 dBm for missing RSSIs.
class SemiSupervisedImputer : public Imputer {
 public:
  SemiSupervisedImputer(size_t k = 5, size_t rounds = 3)
      : k_(k), rounds_(rounds) {}

  rmap::RadioMap Impute(const rmap::RadioMap& map,
                        const rmap::MaskMatrix& amended_mask,
                        Rng& rng) const override;
  std::string name() const override { return "SL"; }

 private:
  size_t k_;
  size_t rounds_;
};

/// Shared helper: fills every remaining null RSSI with -100 dBm.
void FillMissingRssiWithFloor(rmap::RadioMap* map);

}  // namespace rmi::imputers

#endif  // RMI_IMPUTERS_TRADITIONAL_H_
