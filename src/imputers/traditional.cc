#include "imputers/traditional.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"
#include "common/missing.h"

namespace rmi::imputers {

void FillMissingRssiWithFloor(rmap::RadioMap* map) {
  for (size_t i = 0; i < map->size(); ++i) {
    for (double& v : map->record(i).rssi) {
      if (IsNull(v)) v = kMnarFillDbm;
    }
  }
}

rmap::RadioMap CaseDeletionImputer::Impute(const rmap::RadioMap& map,
                                           const rmap::MaskMatrix&,
                                           Rng&) const {
  rmap::RadioMap out(map.num_aps());
  for (size_t i = 0; i < map.size(); ++i) {
    if (!map.record(i).has_rp) continue;
    out.Add(map.record(i));
  }
  FillMissingRssiWithFloor(&out);
  return out;
}

rmap::RadioMap LinearInterpolationImputer::Impute(const rmap::RadioMap& map,
                                                  const rmap::MaskMatrix&,
                                                  Rng&) const {
  rmap::RadioMap out = map;
  const std::vector<geom::Point> rps = map.InterpolatedRps();
  for (size_t i = 0; i < out.size(); ++i) {
    rmap::Record& r = out.record(i);
    if (!r.has_rp) {
      r.rp = rps[i];
      r.has_rp = true;
    }
  }
  FillMissingRssiWithFloor(&out);
  return out;
}

rmap::RadioMap SemiSupervisedImputer::Impute(const rmap::RadioMap& map,
                                             const rmap::MaskMatrix&,
                                             Rng&) const {
  rmap::RadioMap out = map;
  FillMissingRssiWithFloor(&out);
  const size_t n = out.size();
  const size_t d = out.num_aps();

  std::vector<bool> labeled(n);
  std::vector<geom::Point> rp(n);
  std::vector<size_t> unlabeled;
  for (size_t i = 0; i < n; ++i) {
    labeled[i] = out.record(i).has_rp;
    if (labeled[i]) {
      rp[i] = out.record(i).rp;
    } else {
      unlabeled.push_back(i);
    }
  }
  if (unlabeled.empty()) return out;
  // Degenerate map with no labels at all: place everything at the origin.
  if (unlabeled.size() == n) {
    for (size_t i = 0; i < n; ++i) {
      out.record(i).rp = geom::Point{};
      out.record(i).has_rp = true;
    }
    return out;
  }

  auto dist2 = [&](size_t a, size_t b) {
    const auto& ra = out.record(a).rssi;
    const auto& rb = out.record(b).rssi;
    double s = 0.0;
    for (size_t j = 0; j < d; ++j) {
      const double diff = ra[j] - rb[j];
      s += diff * diff;
    }
    return s;
  };

  std::vector<bool> inferred(n, false);
  for (size_t round = 0; round < rounds_; ++round) {
    std::vector<geom::Point> next_rp = rp;
    for (size_t u : unlabeled) {
      // k nearest among the current labeled pool (original + inferred).
      std::vector<std::pair<double, size_t>> cand;
      for (size_t j = 0; j < n; ++j) {
        if (j == u) continue;
        if (!labeled[j] && !inferred[j]) continue;
        cand.emplace_back(dist2(u, j), j);
      }
      if (cand.empty()) continue;
      const size_t take = std::min(k_, cand.size());
      std::partial_sort(cand.begin(), cand.begin() + take, cand.end());
      double wsum = 0.0;
      geom::Point acc;
      for (size_t t = 0; t < take; ++t) {
        const double w = 1.0 / (std::sqrt(cand[t].first) + 1e-6);
        acc = acc + rp[cand[t].second] * w;
        wsum += w;
      }
      next_rp[u] = acc * (1.0 / wsum);
    }
    rp = std::move(next_rp);
    for (size_t u : unlabeled) inferred[u] = true;
  }

  for (size_t u : unlabeled) {
    out.record(u).rp = rp[u];
    out.record(u).has_rp = true;
  }
  return out;
}

}  // namespace rmi::imputers
