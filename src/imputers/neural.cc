#include "imputers/neural.h"

#include <algorithm>
#include <cmath>

#include "autodiff/optimizer.h"
#include "autodiff/tensor.h"
#include "common/check.h"
#include "common/missing.h"
#include "nn/layers.h"

namespace rmi::imputers {

namespace {

using ad::Tensor;

double NormRssi(double v) { return (v + 100.0) / 100.0; }
double DenormRssi(double v) { return v * 100.0 - 100.0; }

/// Prepared fingerprint-only sequences for the neural baselines (the same
/// slicing as BiSIM, but without RP features).
struct Step {
  la::Matrix x;  ///< 1 x D normalized fingerprint (nulls as 0)
  la::Matrix m;  ///< 1 x D amended mask
  double time = 0.0;
  size_t record_index = 0;
};
using Seq = std::vector<Step>;

std::vector<Seq> BuildSeqs(const rmap::RadioMap& map,
                           const rmap::MaskMatrix& mask, size_t seq_len,
                           double time_scale) {
  const size_t d = map.num_aps();
  std::vector<Seq> out;
  for (const auto& path : map.PathSequences()) {
    for (size_t start = 0; start < path.size(); start += seq_len) {
      const size_t end = std::min(start + seq_len, path.size());
      Seq seq;
      for (size_t t = start; t < end; ++t) {
        const rmap::Record& r = map.record(path[t]);
        Step s;
        s.record_index = path[t];
        s.time = r.time * time_scale;
        s.x = la::Matrix(1, d);
        s.m = la::Matrix(1, d);
        for (size_t j = 0; j < d; ++j) {
          const bool obs = mask.at(path[t], j) == rmap::MaskValue::kObserved;
          s.m(0, j) = obs ? 1.0 : 0.0;
          s.x(0, j) = obs ? NormRssi(r.rssi[j]) : 0.0;
        }
        seq.push_back(std::move(s));
      }
      if (!seq.empty()) out.push_back(std::move(seq));
    }
  }
  return out;
}

/// Time-lag vectors along a visiting order (Eq. 1 of the paper / GRU-D).
la::Matrix StepDelta(const Seq& seq, const std::vector<size_t>& order,
                     size_t t, la::Matrix* prev_delta, la::Matrix* prev_m) {
  const size_t d = seq[0].x.cols();
  la::Matrix delta(1, d);
  if (t > 0) {
    const double dt = std::fabs(seq[order[t]].time - seq[order[t - 1]].time);
    for (size_t j = 0; j < d; ++j) {
      delta(0, j) =
          (*prev_m)(0, j) == 1.0 ? dt : (*prev_delta)(0, j) + dt;
    }
  }
  *prev_delta = delta;
  *prev_m = seq[order[t]].m;
  return delta;
}

/// Fills null RPs by linear interpolation (the BRITS/SSGAN RP strategy) and
/// writes imputed RSSI values.
rmap::RadioMap EmitWithLiRps(
    const rmap::RadioMap& map,
    const std::vector<std::pair<size_t, la::Matrix>>& imputed_rows) {
  rmap::RadioMap out = map;
  const auto rps = map.InterpolatedRps();
  for (size_t i = 0; i < out.size(); ++i) {
    rmap::Record& r = out.record(i);
    if (!r.has_rp) {
      r.rp = rps[i];
      r.has_rp = true;
    }
  }
  for (const auto& [idx, row] : imputed_rows) {
    rmap::Record& r = out.record(idx);
    for (size_t j = 0; j < row.cols(); ++j) {
      if (IsNull(r.rssi[j])) r.rssi[j] = ClampImputed(DenormRssi(row(0, j)));
    }
  }
  // Any record not covered by a sequence (cannot happen with the current
  // slicing, but keep the output contract airtight).
  for (size_t i = 0; i < out.size(); ++i) {
    for (double& v : out.record(i).rssi) {
      if (IsNull(v)) v = kMnarFillDbm;
    }
  }
  return out;
}

/// One-direction recurrent imputation pass used by BRITS.
struct RitsCore {
  nn::LstmCell cell;
  nn::Linear regress;       // hidden -> D
  Tensor w_gamma, b_gamma;  // D -> hidden decay

  RitsCore(size_t d, size_t hidden, Rng& rng)
      : cell(2 * d, hidden, rng), regress(hidden, d, rng),
        w_gamma(Tensor::Param(nn::XavierInit(d, hidden, rng))),
        b_gamma(Tensor::Param(la::Matrix(1, hidden))) {}

  std::vector<Tensor> Params() const {
    std::vector<Tensor> p = cell.Params();
    nn::AppendParams(&p, regress.Params());
    p.push_back(w_gamma);
    p.push_back(b_gamma);
    return p;
  }

  struct Output {
    std::vector<Tensor> x_pred;  ///< x̂ per original position
    std::vector<Tensor> x_comb;  ///< x^c per original position
  };

  Output Run(const Seq& seq, bool reversed) const {
    const size_t t_len = seq.size();
    const size_t d = seq[0].x.cols();
    std::vector<size_t> order(t_len);
    for (size_t t = 0; t < t_len; ++t) order[t] = reversed ? t_len - 1 - t : t;
    Output out;
    out.x_pred.resize(t_len);
    out.x_comb.resize(t_len);
    nn::LstmCell::State st = cell.InitialState();
    la::Matrix prev_delta(1, d), prev_m(1, d, 1.0);
    for (size_t t = 0; t < t_len; ++t) {
      const Step& s = seq[order[t]];
      la::Matrix delta = StepDelta(seq, order, t, &prev_delta, &prev_m);
      Tensor m = Tensor::Constant(s.m);
      Tensor x_pred = regress.Forward(st.h);
      Tensor x_comb = ad::MaskCombine(s.m, s.x, x_pred);
      Tensor gamma = ad::Exp(ad::Scale(
          ad::Relu(ad::Affine(Tensor::Constant(delta), w_gamma, b_gamma)),
          -1.0));
      nn::LstmCell::State decayed{ad::Mul(st.h, gamma), st.c};
      st = cell.Forward(ad::ConcatCols(x_comb, m), decayed);
      out.x_pred[order[t]] = x_pred;
      out.x_comb[order[t]] = x_comb;
    }
    return out;
  }
};

}  // namespace

rmap::RadioMap BritsImputer::Impute(const rmap::RadioMap& map,
                                    const rmap::MaskMatrix& amended_mask,
                                    Rng& rng) const {
  const size_t d = map.num_aps();
  Rng model_rng(params_.seed ^ rng.engine()());
  RitsCore fwd_core(d, params_.hidden, model_rng);
  RitsCore bwd_core(d, params_.hidden, model_rng);
  std::vector<Tensor> params = fwd_core.Params();
  nn::AppendParams(&params, bwd_core.Params());
  ad::Adam adam(params, params_.lr);

  auto seqs = BuildSeqs(map, amended_mask, params_.seq_len, params_.time_scale);
  std::vector<size_t> idx(seqs.size());
  for (size_t i = 0; i < idx.size(); ++i) idx[i] = i;

  auto loss_of = [&](const Seq& seq) {
    auto f = fwd_core.Run(seq, false);
    auto b = bwd_core.Run(seq, true);
    Tensor loss;
    const double inv_t = 1.0 / static_cast<double>(seq.size());
    for (size_t t = 0; t < seq.size(); ++t) {
      Tensor x_const = Tensor::Constant(seq[t].x);
      Tensor step = ad::Add(ad::MaskedMse(f.x_pred[t], x_const, seq[t].m),
                            ad::MaskedMse(b.x_pred[t], x_const, seq[t].m));
      // Consistency between directions (BRITS' discrepancy term).
      step = ad::Add(step, ad::Scale(ad::Mse(f.x_comb[t], b.x_comb[t]), 0.1));
      loss = loss.defined() ? ad::Add(loss, ad::Scale(step, inv_t))
                            : ad::Scale(step, inv_t);
    }
    return loss;
  };

  size_t in_batch = 0;
  for (size_t epoch = 0; epoch < params_.epochs; ++epoch) {
    model_rng.Shuffle(&idx);
    for (size_t i : idx) {
      loss_of(seqs[i]).Backward();
      if (++in_batch >= params_.batch_size) {
        ad::ClipGradNorm(adam.params(), params_.grad_clip);
        adam.Step();
        in_batch = 0;
      }
    }
    if (in_batch > 0) {
      ad::ClipGradNorm(adam.params(), params_.grad_clip);
      adam.Step();
      in_batch = 0;
    }
  }

  std::vector<std::pair<size_t, la::Matrix>> rows;
  for (const Seq& seq : seqs) {
    auto f = fwd_core.Run(seq, false);
    auto b = bwd_core.Run(seq, true);
    for (size_t t = 0; t < seq.size(); ++t) {
      rows.emplace_back(seq[t].record_index,
                        (f.x_comb[t].value() + b.x_comb[t].value()) * 0.5);
    }
  }
  return EmitWithLiRps(map, rows);
}

rmap::RadioMap SsganImputer::Impute(const rmap::RadioMap& map,
                                    const rmap::MaskMatrix& amended_mask,
                                    Rng& rng) const {
  const size_t d = map.num_aps();
  Rng model_rng(params_.seed ^ rng.engine()());

  // Generator: GRU-based recurrent imputer with temporal decay.
  struct GenCore {
    nn::GruCell cell;
    nn::Linear regress;
    Tensor w_gamma, b_gamma;
    GenCore(size_t dd, size_t hidden, Rng& r)
        : cell(2 * dd, hidden, r), regress(hidden, dd, r),
          w_gamma(Tensor::Param(nn::XavierInit(dd, hidden, r))),
          b_gamma(Tensor::Param(la::Matrix(1, hidden))) {}
    std::vector<Tensor> Params() const {
      std::vector<Tensor> p = cell.Params();
      nn::AppendParams(&p, regress.Params());
      p.push_back(w_gamma);
      p.push_back(b_gamma);
      return p;
    }
  };
  GenCore gen(d, params_.hidden, model_rng);
  nn::Mlp disc({d, params_.disc_hidden, d}, model_rng);

  ad::Adam gen_opt(gen.Params(), params_.lr);
  ad::Adam disc_opt(disc.Params(), params_.lr);

  auto seqs = BuildSeqs(map, amended_mask, params_.seq_len, params_.time_scale);
  std::vector<size_t> idx(seqs.size());
  for (size_t i = 0; i < idx.size(); ++i) idx[i] = i;

  // Runs the generator over a sequence; returns per-step (x_pred, x_comb).
  auto run_gen = [&](const Seq& seq) {
    std::vector<std::pair<Tensor, Tensor>> out;
    Tensor h = gen.cell.InitialState();
    la::Matrix prev_delta(1, d), prev_m(1, d, 1.0);
    std::vector<size_t> order(seq.size());
    for (size_t t = 0; t < order.size(); ++t) order[t] = t;
    for (size_t t = 0; t < seq.size(); ++t) {
      const Step& s = seq[t];
      la::Matrix delta = StepDelta(seq, order, t, &prev_delta, &prev_m);
      Tensor m = Tensor::Constant(s.m);
      Tensor x_pred = gen.regress.Forward(h);
      Tensor x_comb = ad::MaskCombine(s.m, s.x, x_pred);
      Tensor gamma = ad::Exp(ad::Scale(
          ad::Relu(ad::Affine(Tensor::Constant(delta), gen.w_gamma,
                              gen.b_gamma)),
          -1.0));
      h = gen.cell.Forward(ad::ConcatCols(x_comb, m), ad::Mul(h, gamma));
      out.emplace_back(x_pred, x_comb);
    }
    return out;
  };

  size_t in_batch = 0;
  for (size_t epoch = 0; epoch < params_.epochs; ++epoch) {
    model_rng.Shuffle(&idx);
    for (size_t i : idx) {
      const Seq& seq = seqs[i];
      auto steps = run_gen(seq);

      // --- Discriminator step: classify each cell observed(1)/imputed(0)
      // from the *detached* combined vector.
      Tensor d_loss;
      for (size_t t = 0; t < seq.size(); ++t) {
        Tensor detached = Tensor::Constant(steps[t].second.value());
        Tensor logits = disc.Forward(detached);
        Tensor l = ad::BceWithLogits(logits, seq[t].m);
        d_loss = d_loss.defined() ? ad::Add(d_loss, l) : l;
      }
      d_loss.Backward();
      disc_opt.Step();

      // --- Generator step: reconstruction + fooling the discriminator on
      // imputed cells (gradients reach the generator only through them).
      Tensor g_loss;
      const double inv_t = 1.0 / static_cast<double>(seq.size());
      for (size_t t = 0; t < seq.size(); ++t) {
        Tensor recon = ad::MaskedMse(steps[t].first,
                                     Tensor::Constant(seq[t].x), seq[t].m);
        Tensor logits = disc.Forward(steps[t].second);
        Tensor adv = ad::BceWithLogits(
            logits, la::Matrix(1, d, 1.0));
        Tensor step = ad::Add(recon, ad::Scale(adv, params_.adv_weight));
        g_loss = g_loss.defined() ? ad::Add(g_loss, ad::Scale(step, inv_t))
                                  : ad::Scale(step, inv_t);
      }
      // The adversarial term also backpropagates into the discriminator's
      // parameters; zero them afterwards so only the generator updates.
      g_loss.Backward();
      disc_opt.ZeroGrad();
      if (++in_batch >= params_.batch_size) {
        ad::ClipGradNorm(gen_opt.params(), params_.grad_clip);
        gen_opt.Step();
        in_batch = 0;
      }
    }
    if (in_batch > 0) {
      ad::ClipGradNorm(gen_opt.params(), params_.grad_clip);
      gen_opt.Step();
      in_batch = 0;
    }
  }

  std::vector<std::pair<size_t, la::Matrix>> rows;
  for (const Seq& seq : seqs) {
    auto steps = run_gen(seq);
    for (size_t t = 0; t < seq.size(); ++t) {
      rows.emplace_back(seq[t].record_index, steps[t].second.value());
    }
  }
  return EmitWithLiRps(map, rows);
}

}  // namespace rmi::imputers
