// Autocorrelation-based imputers (paper Section V-C baselines 6-7):
//  * MICE — Multiple Imputation by Chained Equations [6]: per-column ridge
//    regressions, iterated; predictors are the columns most correlated with
//    the target (a bounded predictor set keeps the chained solve tractable
//    at fingerprint dimensionalities of hundreds).
//  * MF — Matrix Factorization [25]: biased low-rank factorization fit by
//    SGD on observed cells; converges slowly under the extreme sparsity of
//    radio maps (the paper's Table VII shows it as the slowest imputer).
//
// Both operate on the N x (D+2) matrix [normalized RSSIs | RP coords]:
// the MAR cells and the missing RP coordinates are the cells to fill.
#ifndef RMI_IMPUTERS_AUTOCORRELATION_H_
#define RMI_IMPUTERS_AUTOCORRELATION_H_

#include "imputers/imputer.h"

namespace rmi::imputers {

class MiceImputer : public Imputer {
 public:
  struct Params {
    size_t iterations = 4;
    /// Predictor columns per chained equation. 0 = all other columns —
    /// standard MICE, and the faithful baseline: with radio-map
    /// missingness the per-column regressions are then badly
    /// over-parameterized, which is exactly why the paper's MICE performs
    /// poorly. A positive value switches to the strongest |corr|-ranked
    /// predictors (a modern variant, much stronger on simulated data).
    size_t max_predictors = 0;
    double ridge = 0.01;
  };

  MiceImputer() : params_() {}
  explicit MiceImputer(const Params& params) : params_(params) {}

  rmap::RadioMap Impute(const rmap::RadioMap& map,
                        const rmap::MaskMatrix& amended_mask,
                        Rng& rng) const override;
  std::string name() const override { return "MICE"; }

 private:
  Params params_;
};

class MatrixFactorizationImputer : public Imputer {
 public:
  struct Params {
    size_t rank = 12;
    double lr = 0.01;
    double reg = 0.02;
    size_t max_epochs = 400;
    double tol = 1e-5;   ///< stop when observed-RMSE improves less than this
    size_t patience = 10;
  };

  MatrixFactorizationImputer() : params_() {}
  explicit MatrixFactorizationImputer(const Params& params)
      : params_(params) {}

  rmap::RadioMap Impute(const rmap::RadioMap& map,
                        const rmap::MaskMatrix& amended_mask,
                        Rng& rng) const override;
  std::string name() const override { return "MF"; }

 private:
  Params params_;
};

}  // namespace rmi::imputers

#endif  // RMI_IMPUTERS_AUTOCORRELATION_H_
