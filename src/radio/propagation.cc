#include "radio/propagation.h"

#include <cmath>

#include "common/check.h"
#include "common/hash.h"
#include "common/missing.h"

namespace rmi::radio {

PropagationModel::PropagationModel(const indoor::Venue* venue,
                                   PropagationParams params)
    : venue_(venue), params_(params) {
  RMI_CHECK(venue_ != nullptr);
  RMI_CHECK(!venue_->aps.empty());
}

namespace {

/// SplitMix64 — cheap stateless hash for the deterministic fading field.
uint64_t Mix(uint64_t x) { return SplitMix64(x); }

/// Hash -> approximately standard normal (sum of 4 uniforms, CLT; exact
/// distribution is irrelevant — we only need a static bounded fading field).
double HashGaussian(uint64_t h) {
  double s = 0.0;
  for (int i = 0; i < 4; ++i) {
    h = Mix(h);
    s += static_cast<double>(h >> 11) / 9007199254740992.0;  // [0,1)
  }
  return (s - 2.0) * std::sqrt(3.0);  // var(U)=1/12, 4 terms => sd=1/sqrt(3)
}

}  // namespace

double PropagationModel::Shadowing(size_t ap, const geom::Point& p) const {
  const int64_t cx = static_cast<int64_t>(std::floor(p.x / params_.shadowing_cell_m));
  const int64_t cy = static_cast<int64_t>(std::floor(p.y / params_.shadowing_cell_m));
  uint64_t h = params_.seed;
  h = Mix(h ^ static_cast<uint64_t>(ap) * 0x100000001b3ULL);
  h = Mix(h ^ static_cast<uint64_t>(cx + (1LL << 32)));
  h = Mix(h ^ static_cast<uint64_t>(cy + (1LL << 32)));
  return HashGaussian(h) * params_.shadowing_stddev;
}

int PropagationModel::WallCrossings(size_t ap, const geom::Point& p) const {
  // Quantize to the shadowing cell: wall-crossing counts vary slowly in
  // space, and memoization turns dataset generation from minutes to
  // milliseconds for repeated visits along survey paths.
  const int64_t cx = static_cast<int64_t>(std::floor(p.x / params_.shadowing_cell_m));
  const int64_t cy = static_cast<int64_t>(std::floor(p.y / params_.shadowing_cell_m));
  const uint64_t key = (static_cast<uint64_t>(ap) << 40) ^
                       (static_cast<uint64_t>(cx & 0xFFFFF) << 20) ^
                       static_cast<uint64_t>(cy & 0xFFFFF);
  auto it = wall_cache_.find(key);
  if (it != wall_cache_.end()) return it->second;
  const geom::Point cell_center{
      (static_cast<double>(cx) + 0.5) * params_.shadowing_cell_m,
      (static_cast<double>(cy) + 0.5) * params_.shadowing_cell_m};
  const int walls = venue_->walls.CountEdgeCrossings(
      geom::Segment{cell_center, venue_->aps[ap].position});
  wall_cache_.emplace(key, walls);
  return walls;
}

double PropagationModel::MeanRssi(size_t ap, const geom::Point& p) const {
  RMI_CHECK_LT(ap, venue_->aps.size());
  const geom::Point& q = venue_->aps[ap].position;
  const double d = std::max(1.0, geom::Distance(p, q));
  const int walls = WallCrossings(ap, p);
  return params_.tx_power_1m_dbm -
         10.0 * params_.path_loss_exponent * std::log10(d) -
         params_.wall_attenuation_dbm * static_cast<double>(walls) +
         Shadowing(ap, p);
}

bool PropagationModel::IsObservable(size_t ap, const geom::Point& p) const {
  return MeanRssi(ap, p) >= params_.sensitivity_dbm;
}

double PropagationModel::SampleRssi(size_t ap, const geom::Point& p,
                                    Rng& rng) const {
  const double v = MeanRssi(ap, p) + rng.Gaussian(0.0, params_.noise_stddev);
  return ClampRssi(v);
}

double PropagationModel::ObservableFraction() const {
  size_t obs = 0, total = 0;
  for (const geom::Point& rp : venue_->rps) {
    for (size_t ap = 0; ap < venue_->aps.size(); ++ap) {
      ++total;
      if (IsObservable(ap, rp)) ++obs;
    }
  }
  return total ? static_cast<double>(obs) / static_cast<double>(total) : 0.0;
}

}  // namespace rmi::radio
