// Radio signal propagation simulator.
//
// Substitutes for the real-world wireless environment behind the paper's
// walking-survey data. RSSI follows the standard log-distance path-loss
// model with per-wall attenuation and static log-normal shadow fading:
//
//   RSSI(ap, p) = P1m - 10 n log10(max(d, d0)) - Lw * walls(ap, p) + S(ap, p)
//
// with d the AP-to-p distance, walls(.) the number of wall-edge crossings of
// the line-of-sight segment, and S a deterministic (seeded) per-(AP, cell)
// shadowing term so that repeated visits to the same location see the same
// static environment.
//
// The two missingness mechanisms of the paper arise from first principles:
//  * MNAR: mean RSSI below the device sensitivity — the AP is unobservable
//    at that location (spatially clustered, cf. paper Fig. 3).
//  * MAR:  a per-measurement Bernoulli drop of an otherwise observable AP
//    (temporary obstacles, lost contact).
#ifndef RMI_RADIO_PROPAGATION_H_
#define RMI_RADIO_PROPAGATION_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "geometry/geometry.h"
#include "indoor/venue.h"

namespace rmi::radio {

/// Propagation constants; defaults model Wi-Fi in a mall.
struct PropagationParams {
  double tx_power_1m_dbm = -40.0;   ///< mean RSSI at 1 m
  double path_loss_exponent = 3.2;
  double wall_attenuation_dbm = 7.0;///< per crossed wall edge
  double shadowing_stddev = 3.5;    ///< static per-(AP, cell) fading
  double shadowing_cell_m = 2.0;    ///< spatial granularity of fading
  double noise_stddev = 1.8;        ///< per-measurement noise
  double sensitivity_dbm = -90.0;   ///< below => unobservable (MNAR)
  double mar_drop_prob = 0.10;      ///< per-measurement random drop (MAR)
  uint64_t seed = 99;               ///< shadowing seed

  /// Bluetooth beacons: weaker TX, lossier propagation, deafer receivers.
  static PropagationParams Bluetooth() {
    PropagationParams p;
    p.tx_power_1m_dbm = -50.0;
    p.path_loss_exponent = 3.1;
    p.wall_attenuation_dbm = 7.0;
    p.sensitivity_dbm = -90.0;
    p.noise_stddev = 2.5;
    p.mar_drop_prob = 0.10;
    return p;
  }
};

/// Deterministic radio environment over a venue.
class PropagationModel {
 public:
  PropagationModel(const indoor::Venue* venue, PropagationParams params);

  /// Mean (noise-free) RSSI of AP `ap` at point `p`, un-clamped dBm.
  double MeanRssi(size_t ap, const geom::Point& p) const;

  /// True iff AP `ap` is observable at `p` (mean RSSI >= sensitivity).
  bool IsObservable(size_t ap, const geom::Point& p) const;

  /// One measurement: mean + iid noise, clamped to [-99, 0] dBm.
  /// Precondition: IsObservable(ap, p).
  double SampleRssi(size_t ap, const geom::Point& p, Rng& rng) const;

  /// Whether a single measurement of an observable AP is randomly dropped.
  bool SampleMarDrop(Rng& rng) const { return rng.Bernoulli(params_.mar_drop_prob); }

  const PropagationParams& params() const { return params_; }
  const indoor::Venue& venue() const { return *venue_; }
  size_t num_aps() const { return venue_->aps.size(); }

  /// Fraction of (RP, AP) pairs observable — sparsity diagnostic.
  double ObservableFraction() const;

 private:
  /// Static shadow fading for (ap, spatial cell of p): hash-seeded Gaussian.
  double Shadowing(size_t ap, const geom::Point& p) const;

  /// Wall crossings between AP `ap` and the center of p's spatial cell,
  /// memoized — the dominant cost of dataset generation otherwise.
  int WallCrossings(size_t ap, const geom::Point& p) const;

  const indoor::Venue* venue_;  // not owned
  PropagationParams params_;
  mutable std::unordered_map<uint64_t, int> wall_cache_;
};

}  // namespace rmi::radio

#endif  // RMI_RADIO_PROPAGATION_H_
