// Representation of missing values.
//
// The radio-map pipeline carries many nulls (missing RSSIs / RPs). We encode
// them as quiet NaN inside double payloads: compact, composable with the
// linear-algebra substrate, and impossible to confuse with a legal RSSI
// (legal observed range is [-99, 0] dBm; MNAR fill is -100 dBm).
#ifndef RMI_COMMON_MISSING_H_
#define RMI_COMMON_MISSING_H_

#include <cmath>
#include <limits>

namespace rmi {

/// Sentinel for a missing (null) measurement.
inline constexpr double kNull = std::numeric_limits<double>::quiet_NaN();

/// True iff `v` encodes a missing value.
inline bool IsNull(double v) { return std::isnan(v); }

/// Lowest RSSI used to materialize MNAR (unobservable) signals, in dBm.
inline constexpr double kMnarFillDbm = -100.0;

/// Observable RSSI range endpoints, in dBm.
inline constexpr double kMinObservableRssiDbm = -99.0;
inline constexpr double kMaxObservableRssiDbm = 0.0;

/// Clamps a (possibly model-predicted) RSSI into the observable range.
inline double ClampRssi(double v) {
  if (v < kMinObservableRssiDbm) return kMinObservableRssiDbm;
  if (v > kMaxObservableRssiDbm) return kMaxObservableRssiDbm;
  return v;
}

/// Clamps an *imputed* value into [-100, 0] dBm: imputers may legitimately
/// predict the -100 dBm floor (e.g., for cells whose ground truth is an
/// MNAR fill removed in the beta experiments of Section V-C).
inline double ClampImputed(double v) {
  if (v < kMnarFillDbm) return kMnarFillDbm;
  if (v > kMaxObservableRssiDbm) return kMaxObservableRssiDbm;
  return v;
}

}  // namespace rmi

#endif  // RMI_COMMON_MISSING_H_
