// Minimal Status type for fallible public APIs (Arrow-style).
#ifndef RMI_COMMON_STATUS_H_
#define RMI_COMMON_STATUS_H_

#include <string>
#include <utility>

namespace rmi {

/// Result of a fallible operation. OK by default; carries a message when not.
class Status {
 public:
  Status() = default;

  static Status Ok() { return Status(); }
  static Status Invalid(std::string msg) {
    return Status(Code::kInvalid, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(Code::kNotFound, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(Code::kUnsupported, std::move(msg));
  }

  bool ok() const { return code_ == Code::kOk; }
  const std::string& message() const { return message_; }

  enum class Code { kOk = 0, kInvalid, kNotFound, kUnsupported };
  Code code() const { return code_; }

 private:
  Status(Code code, std::string msg) : code_(code), message_(std::move(msg)) {}

  Code code_ = Code::kOk;
  std::string message_;
};

}  // namespace rmi

#endif  // RMI_COMMON_STATUS_H_
