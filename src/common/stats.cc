#include "common/stats.h"

#include <algorithm>

#include "common/check.h"

namespace rmi {

double Mean(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  double s = 0.0;
  for (double x : v) s += x;
  return s / static_cast<double>(v.size());
}

double Stddev(const std::vector<double>& v) {
  if (v.size() < 2) return 0.0;
  const double m = Mean(v);
  double s = 0.0;
  for (double x : v) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<double>(v.size() - 1));
}

double Percentile(std::vector<double> v, double p) {
  RMI_CHECK(!v.empty());
  RMI_CHECK(p >= 0.0 && p <= 100.0);
  std::sort(v.begin(), v.end());
  if (v.size() == 1) return v[0];
  const double rank = p / 100.0 * static_cast<double>(v.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, v.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return v[lo] * (1.0 - frac) + v[hi] * frac;
}

double PearsonCorrelation(const std::vector<double>& a,
                          const std::vector<double>& b) {
  RMI_CHECK_EQ(a.size(), b.size());
  if (a.size() < 2) return 0.0;
  const double ma = Mean(a), mb = Mean(b);
  double num = 0.0, da = 0.0, db = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    num += (a[i] - ma) * (b[i] - mb);
    da += (a[i] - ma) * (a[i] - ma);
    db += (b[i] - mb) * (b[i] - mb);
  }
  if (da == 0.0 || db == 0.0) return 0.0;
  return num / std::sqrt(da * db);
}

}  // namespace rmi
