// Bounded lock-free MPMC ring (Vyukov's bounded queue).
//
// The localization server's submit path used to funnel every producer and
// every dispatcher through one mutex + condvar; under millions-of-users
// style fan-in that lock is the hot spot. This ring replaces it: each cell
// carries a sequence number, producers claim cells by CAS on the enqueue
// cursor, consumers by CAS on the dequeue cursor, and the sequence numbers
// order the hand-off of each cell's payload — no lock anywhere, and a
// stalled producer/consumer only delays its own cell, never the cursors.
//
// Semantics: TryPush fails when the ring is full (bounded backpressure is
// the point — an unbounded queue just moves the overload into memory),
// TryPop fails when it is empty. FIFO per producer; cross-producer order is
// the CAS arrival order. Blocking/parking is the caller's concern: see
// LocalizationServer for the condvar-parked idle protocol layered on top.
#ifndef RMI_COMMON_MPMC_QUEUE_H_
#define RMI_COMMON_MPMC_QUEUE_H_

#include <atomic>
#include <cstddef>
#include <memory>
#include <utility>

#include "common/check.h"

namespace rmi {

/// T must be move-constructible/assignable. Capacity is rounded up to a
/// power of two.
template <typename T>
class MpmcRingQueue {
 public:
  explicit MpmcRingQueue(size_t capacity) {
    size_t cap = 2;
    while (cap < capacity) cap <<= 1;
    mask_ = cap - 1;
    cells_ = std::make_unique<Cell[]>(cap);
    for (size_t i = 0; i < cap; ++i) {
      cells_[i].seq.store(i, std::memory_order_relaxed);
    }
  }

  MpmcRingQueue(const MpmcRingQueue&) = delete;
  MpmcRingQueue& operator=(const MpmcRingQueue&) = delete;

  size_t capacity() const { return mask_ + 1; }

  /// False iff the ring is full. On success the item is visible to TryPop
  /// before the call returns (release on the cell sequence).
  bool TryPush(T&& item) {
    size_t pos = enqueue_pos_.load(std::memory_order_relaxed);
    for (;;) {
      Cell& cell = cells_[pos & mask_];
      const size_t seq = cell.seq.load(std::memory_order_acquire);
      const intptr_t dif =
          static_cast<intptr_t>(seq) - static_cast<intptr_t>(pos);
      if (dif == 0) {
        // Cell is free for this lap; claim it by advancing the cursor.
        if (enqueue_pos_.compare_exchange_weak(pos, pos + 1,
                                               std::memory_order_relaxed)) {
          cell.item = std::move(item);
          cell.seq.store(pos + 1, std::memory_order_release);
          return true;
        }
      } else if (dif < 0) {
        return false;  // the consumer lap hasn't freed this cell: full
      } else {
        pos = enqueue_pos_.load(std::memory_order_relaxed);
      }
    }
  }

  /// False iff the ring is empty.
  bool TryPop(T* out) {
    size_t pos = dequeue_pos_.load(std::memory_order_relaxed);
    for (;;) {
      Cell& cell = cells_[pos & mask_];
      const size_t seq = cell.seq.load(std::memory_order_acquire);
      const intptr_t dif =
          static_cast<intptr_t>(seq) - static_cast<intptr_t>(pos + 1);
      if (dif == 0) {
        if (dequeue_pos_.compare_exchange_weak(pos, pos + 1,
                                               std::memory_order_relaxed)) {
          *out = std::move(cell.item);
          // Free the cell for the producers' next lap.
          cell.seq.store(pos + mask_ + 1, std::memory_order_release);
          return true;
        }
      } else if (dif < 0) {
        return false;  // no producer has filled this cell yet: empty
      } else {
        pos = dequeue_pos_.load(std::memory_order_relaxed);
      }
    }
  }

  /// Cursor-distance emptiness probe — exact only at a quiescent point;
  /// good enough to decide "worth parking?" (the parking handshake
  /// re-checks with seq_cst ordering against the producer side).
  bool ApproxEmpty() const {
    return dequeue_pos_.load(std::memory_order_acquire) ==
           enqueue_pos_.load(std::memory_order_acquire);
  }

 private:
  struct Cell {
    std::atomic<size_t> seq;
    T item;
  };

  std::unique_ptr<Cell[]> cells_;
  size_t mask_ = 0;
  /// Producer and consumer cursors on their own cache lines so CAS traffic
  /// from one side never invalidates the other's line.
  alignas(64) std::atomic<size_t> enqueue_pos_{0};
  alignas(64) std::atomic<size_t> dequeue_pos_{0};
};

}  // namespace rmi

#endif  // RMI_COMMON_MPMC_QUEUE_H_
