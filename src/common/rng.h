// Deterministic random number generation.
//
// Every stochastic component in the library takes an explicit `Rng&` (or a
// seed) so that experiments are reproducible run-to-run.
#ifndef RMI_COMMON_RNG_H_
#define RMI_COMMON_RNG_H_

#include <cstdint>
#include <random>
#include <vector>

#include "common/check.h"

namespace rmi {

/// Thin deterministic wrapper around std::mt19937_64.
class Rng {
 public:
  explicit Rng(uint64_t seed = 42) : engine_(seed) {}

  /// Uniform double in [lo, hi).
  double Uniform(double lo = 0.0, double hi = 1.0) {
    std::uniform_real_distribution<double> d(lo, hi);
    return d(engine_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    RMI_CHECK_LE(lo, hi);
    std::uniform_int_distribution<int64_t> d(lo, hi);
    return d(engine_);
  }

  /// Standard normal scaled to (mean, stddev).
  double Gaussian(double mean = 0.0, double stddev = 1.0) {
    std::normal_distribution<double> d(mean, stddev);
    return d(engine_);
  }

  /// Bernoulli draw with success probability p.
  bool Bernoulli(double p) {
    std::bernoulli_distribution d(p);
    return d(engine_);
  }

  /// Index in [0, n) — convenience for container access.
  size_t Index(size_t n) {
    RMI_CHECK_GT(n, 0u);
    return static_cast<size_t>(UniformInt(0, static_cast<int64_t>(n) - 1));
  }

  /// Fisher–Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      std::swap((*v)[i - 1], (*v)[Index(i)]);
    }
  }

  /// k distinct indices sampled without replacement from [0, n).
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k) {
    RMI_CHECK_LE(k, n);
    std::vector<size_t> idx(n);
    for (size_t i = 0; i < n; ++i) idx[i] = i;
    for (size_t i = 0; i < k; ++i) {
      std::swap(idx[i], idx[i + Index(n - i)]);
    }
    idx.resize(k);
    return idx;
  }

  /// Derives an independent child generator (for parallel components).
  Rng Fork() { return Rng(engine_()); }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace rmi

#endif  // RMI_COMMON_RNG_H_
