// Minimal fixed-size thread pool for deterministic data-parallel loops.
//
// ParallelFor partitions [0, count) statically by index modulo worker
// count, so the (worker, index) assignment — and therefore any per-worker
// accumulation order — is a pure function of (count, num_threads). Results
// merged in worker order are reproducible run-to-run for a fixed thread
// count. With num_threads <= 1 everything runs inline on the caller.
#ifndef RMI_COMMON_THREAD_POOL_H_
#define RMI_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace rmi {

class ThreadPool {
 public:
  /// num_threads == 0 picks the hardware concurrency. A pool constructed
  /// from inside another pool's worker is forced to 1 thread (inline
  /// execution): nested fan-outs — e.g. a parallel bench harness whose
  /// workers run parallel training — would otherwise multiply thread
  /// counts and oversubscribe the machine.
  explicit ThreadPool(size_t num_threads)
      : num_threads_(InsideWorker() ? 1
                     : num_threads == 0 ? DefaultThreads()
                                        : num_threads) {
    // Worker 0 is the calling thread; spawn the rest.
    for (size_t w = 1; w < num_threads_; ++w) {
      workers_.emplace_back([this, w] { WorkerLoop(w); });
    }
  }

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      shutdown_ = true;
    }
    start_cv_.notify_all();
    for (std::thread& t : workers_) t.join();
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return num_threads_; }

  static size_t DefaultThreads() {
    const unsigned hc = std::thread::hardware_concurrency();
    return hc == 0 ? 1 : static_cast<size_t>(hc);
  }

  /// Runs fn(worker, index) for every index in [0, count); worker w handles
  /// the indices congruent to w modulo num_threads(). Blocks until all
  /// indices complete. The calling thread acts as worker 0.
  void ParallelFor(size_t count,
                   const std::function<void(size_t worker, size_t index)>& fn) {
    if (count == 0) return;
    if (num_threads_ <= 1) {
      for (size_t i = 0; i < count; ++i) fn(0, i);
      return;
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      task_ = &fn;
      count_ = count;
      pending_workers_ = num_threads_ - 1;
      ++generation_;
    }
    start_cv_.notify_all();
    RunShard(0, count, fn);
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [this] { return pending_workers_ == 0; });
    task_ = nullptr;
  }

 private:
  static bool& InsideWorkerFlag() {
    thread_local bool inside = false;
    return inside;
  }
  static bool InsideWorker() { return InsideWorkerFlag(); }

  void RunShard(size_t worker, size_t count,
                const std::function<void(size_t, size_t)>& fn) {
    bool& inside = InsideWorkerFlag();
    const bool was_inside = inside;
    inside = true;
    for (size_t i = worker; i < count; i += num_threads_) fn(worker, i);
    inside = was_inside;
  }

  void WorkerLoop(size_t worker) {
    size_t seen_generation = 0;
    while (true) {
      const std::function<void(size_t, size_t)>* task = nullptr;
      size_t count = 0;
      {
        std::unique_lock<std::mutex> lock(mu_);
        start_cv_.wait(lock, [&] {
          return shutdown_ || generation_ != seen_generation;
        });
        if (shutdown_) return;
        seen_generation = generation_;
        task = task_;
        count = count_;
      }
      RunShard(worker, count, *task);
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (--pending_workers_ == 0) done_cv_.notify_all();
      }
    }
  }

  const size_t num_threads_;
  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  const std::function<void(size_t, size_t)>* task_ = nullptr;
  size_t count_ = 0;
  size_t pending_workers_ = 0;
  size_t generation_ = 0;
  bool shutdown_ = false;
};

}  // namespace rmi

#endif  // RMI_COMMON_THREAD_POOL_H_
