// Fixed-size thread pool with two fan-out schedules and concurrent
// submitters.
//
//  * ParallelFor — the deterministic schedule. [0, count) is partitioned
//    statically into num_threads() *lanes*; lane w handles the indices
//    congruent to w modulo the lane count, in increasing order, so the
//    (lane, index) assignment — and therefore any per-lane accumulation
//    order — is a pure function of (count, num_threads). Training loops
//    that merge per-lane gradient shards in lane order stay reproducible
//    run-to-run for a fixed thread count. (A lane is a unit of work, not a
//    thread: under load one OS thread may execute several lanes back to
//    back, which changes nothing about per-lane order.)
//
//  * ParallelForDynamic — the throughput schedule for order-independent
//    work (per-shard query groups, rebuild batches, evaluation chunks).
//    [0, count) is split into per-participant index ranges; each
//    participant claims chunks off the *front* of its own range and, when
//    it runs dry, steals half of the largest remaining victim range off
//    the *back* (a Chase–Lev-style owner-front/thief-back split collapsed
//    onto one CAS word per range). Skewed per-index costs rebalance
//    instead of idling workers, at the price of a nondeterministic
//    (worker, index) assignment — callers must only write to disjoint
//    pre-sized slots or otherwise commute.
//
// Both entry points may be called from any number of threads concurrently:
// jobs queue inside the pool, every submitter participates in its own job
// (so two concurrent callers always overlap instead of serializing), and
// idle pool workers help whichever job is in front. With num_threads <= 1,
// or from inside another pool's worker (the oversubscription guard), both
// run inline on the caller.
#ifndef RMI_COMMON_THREAD_POOL_H_
#define RMI_COMMON_THREAD_POOL_H_

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/check.h"
#include "obs/metrics.h"

namespace rmi {

namespace pool_detail {

/// Process-wide pool series, shared by every ThreadPool instance. The
/// handles are touched in the pool constructor so the series appear in a
/// scrape even when every fan-out runs inline (1-core hosts).
struct PoolMetrics {
  obs::Counter& jobs = obs::GetCounter(
      "rmi_pool_jobs_total", "Fan-out jobs submitted to any thread pool");
  obs::Counter& steals = obs::GetCounter(
      "rmi_pool_steals_total",
      "Successful back-half range steals in dynamic scheduling");
  obs::Counter& helps = obs::GetCounter(
      "rmi_pool_help_front_total",
      "Times an idle pool worker joined the front job");

  static PoolMetrics& Get() {
    static PoolMetrics* m = new PoolMetrics();
    return *m;
  }
};

}  // namespace pool_detail

class ThreadPool {
 public:
  /// num_threads == 0 picks the hardware concurrency. A pool constructed
  /// from inside another pool's worker is forced to 1 thread (inline
  /// execution): nested fan-outs — e.g. a parallel bench harness whose
  /// workers run parallel training — would otherwise multiply thread
  /// counts and oversubscribe the machine.
  explicit ThreadPool(size_t num_threads)
      : num_threads_(InsideWorker() ? 1
                     : num_threads == 0 ? DefaultThreads()
                                        : num_threads) {
    pool_detail::PoolMetrics::Get();
    for (size_t w = 1; w < num_threads_; ++w) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      shutdown_ = true;
    }
    cv_.notify_all();
    for (std::thread& t : workers_) t.join();
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return num_threads_; }

  static size_t DefaultThreads() {
    const unsigned hc = std::thread::hardware_concurrency();
    return hc == 0 ? 1 : static_cast<size_t>(hc);
  }

  /// Deterministic schedule: runs fn(lane, index) for every index in
  /// [0, count), lane w handling the indices congruent to w modulo
  /// num_threads() in increasing order. Blocks until all indices complete.
  /// Safe to call from several threads at once (each call is one queued
  /// job; the caller works on its own job, so concurrent calls overlap).
  /// fn must not throw.
  void ParallelFor(size_t count,
                   const std::function<void(size_t worker, size_t index)>& fn) {
    Run(count, fn, /*dynamic=*/false);
  }

  /// Work-stealing schedule: runs fn(slot, index) for every index in
  /// [0, count) exactly once, with chunked dynamic load balancing. `slot`
  /// is in [0, num_threads()) and exclusively owned by one thread while it
  /// runs, but the (slot, index) assignment depends on scheduling — use
  /// only for order-independent work. fn must not throw.
  void ParallelForDynamic(
      size_t count, const std::function<void(size_t worker, size_t index)>& fn) {
    Run(count, fn, /*dynamic=*/true);
  }

 private:
  /// One packed work range [begin, end) — begin in the high 32 bits, end in
  /// the low — so owner front-claims and thief back-steals both commit with
  /// a single CAS. Cache-line padded: every slot's range mutates hot.
  struct alignas(64) PackedRange {
    std::atomic<uint64_t> span{0};
    static uint64_t Pack(uint64_t begin, uint64_t end) {
      return (begin << 32) | end;
    }
    static uint64_t Begin(uint64_t s) { return s >> 32; }
    static uint64_t End(uint64_t s) { return s & 0xffffffffull; }
  };

  struct Job {
    const std::function<void(size_t, size_t)>* fn = nullptr;
    size_t count = 0;
    size_t lanes = 0;
    bool dynamic = false;
    std::atomic<size_t> next_lane{0};   ///< static lane / dynamic slot claim
    std::vector<PackedRange> ranges;    ///< dynamic mode only
    std::atomic<size_t> pending{0};     ///< indices not yet executed
    std::mutex done_mu;
    std::condition_variable done_cv;
    bool done = false;
  };

  static bool& InsideWorkerFlag() {
    thread_local bool inside = false;
    return inside;
  }
  static bool InsideWorker() { return InsideWorkerFlag(); }

  void Run(size_t count, const std::function<void(size_t, size_t)>& fn,
           bool dynamic) {
    if (count == 0) return;
    pool_detail::PoolMetrics::Get().jobs.Add();
    if (num_threads_ <= 1 || InsideWorker()) {
      for (size_t i = 0; i < count; ++i) fn(0, i);
      return;
    }
    RMI_CHECK_LE(count, size_t{0xffffffff});  // ranges pack into 32+32 bits
    auto job = std::make_shared<Job>();
    job->fn = &fn;
    job->count = count;
    job->lanes = num_threads_;
    job->dynamic = dynamic;
    job->pending.store(count, std::memory_order_relaxed);
    if (dynamic) {
      job->ranges = std::vector<PackedRange>(num_threads_);
      for (size_t s = 0; s < num_threads_; ++s) {
        const uint64_t b = s * count / num_threads_;
        const uint64_t e = (s + 1) * count / num_threads_;
        job->ranges[s].span.store(PackedRange::Pack(b, e),
                                  std::memory_order_relaxed);
      }
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      jobs_.push_back(job);
    }
    cv_.notify_all();
    Participate(job.get());
    {
      std::unique_lock<std::mutex> lock(job->done_mu);
      job->done_cv.wait(lock, [&] { return job->done; });
    }
    // The job is complete; drop it from the queue if no worker got there
    // first (workers only pop a job they have seen exhausted).
    std::lock_guard<std::mutex> lock(mu_);
    for (auto it = jobs_.begin(); it != jobs_.end(); ++it) {
      if (*it == job) {
        jobs_.erase(it);
        break;
      }
    }
  }

  static void SignalDone(Job* job) {
    {
      std::lock_guard<std::mutex> lock(job->done_mu);
      job->done = true;
    }
    job->done_cv.notify_all();
  }

  /// Executes as much of `job` as this thread can claim. Returns once the
  /// job has no claimable work left (other participants may still be
  /// running their claims).
  void Participate(Job* job) {
    bool& inside = InsideWorkerFlag();
    const bool was_inside = inside;
    inside = true;
    if (job->dynamic) {
      const size_t slot = job->next_lane.fetch_add(1);
      // At most `lanes` threads ever participate (lanes == pool size); a
      // worker that re-encounters an exhausted job claims no second slot.
      if (slot < job->lanes) RunStealing(job, slot);
    } else {
      size_t lane;
      while ((lane = job->next_lane.fetch_add(1)) < job->lanes) {
        size_t ran = 0;
        for (size_t i = lane; i < job->count; i += job->lanes) {
          (*job->fn)(lane, i);
          ++ran;
        }
        Complete(job, ran);
      }
    }
    inside = was_inside;
  }

  void RunStealing(Job* job, size_t slot) {
    PackedRange& own = job->ranges[slot];
    while (true) {
      // Claim a chunk off the front of our own range.
      uint64_t s = own.span.load(std::memory_order_acquire);
      while (PackedRange::Begin(s) < PackedRange::End(s)) {
        const uint64_t b = PackedRange::Begin(s), e = PackedRange::End(s);
        // Geometric front chunks: large ranges move in big strides, the
        // tail degrades to single indices so a thief always finds a fair
        // back half to take.
        const uint64_t chunk =
            std::max<uint64_t>(1, (e - b) / (2 * job->lanes));
        if (own.span.compare_exchange_weak(
                s, PackedRange::Pack(b + chunk, e), std::memory_order_acq_rel,
                std::memory_order_acquire)) {
          for (uint64_t i = b; i < b + chunk; ++i) {
            (*job->fn)(slot, static_cast<size_t>(i));
          }
          Complete(job, static_cast<size_t>(chunk));
          s = own.span.load(std::memory_order_acquire);
        }
      }
      // Own range dry: steal the back half of the largest victim range.
      size_t victim = job->lanes;
      uint64_t victim_span = 0;
      uint64_t best_size = 0;
      for (size_t v = 0; v < job->lanes; ++v) {
        if (v == slot) continue;
        const uint64_t vs = job->ranges[v].span.load(std::memory_order_acquire);
        const uint64_t size = PackedRange::End(vs) - PackedRange::Begin(vs);
        if (size > best_size) {
          best_size = size;
          victim = v;
          victim_span = vs;
        }
      }
      if (victim == job->lanes) return;  // nothing left anywhere
      const uint64_t vb = PackedRange::Begin(victim_span);
      const uint64_t ve = PackedRange::End(victim_span);
      const uint64_t mid = ve - (ve - vb + 1) / 2;  // steal the back half
      if (!job->ranges[victim].span.compare_exchange_strong(
              victim_span, PackedRange::Pack(vb, mid),
              std::memory_order_acq_rel, std::memory_order_acquire)) {
        continue;  // lost the race; rescan for a victim
      }
      pool_detail::PoolMetrics::Get().steals.Add();
      // Adopt the stolen half as our own range (we are its only owner; our
      // span is empty, so no thief can have claimed it meanwhile — but one
      // may be mid-CAS on the stale empty value, so publish with a CAS).
      uint64_t empty = own.span.load(std::memory_order_acquire);
      while (!own.span.compare_exchange_weak(
          empty, PackedRange::Pack(mid, ve), std::memory_order_acq_rel,
          std::memory_order_acquire)) {
      }
    }
  }

  static void Complete(Job* job, size_t ran) {
    if (ran == 0) return;
    if (job->pending.fetch_sub(ran, std::memory_order_acq_rel) == ran) {
      SignalDone(job);
    }
  }

  void WorkerLoop() {
    while (true) {
      std::shared_ptr<Job> job;
      {
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock, [&] { return shutdown_ || !jobs_.empty(); });
        if (jobs_.empty()) {
          if (shutdown_) return;
          continue;
        }
        // Leave the job in front so every idle worker joins it; it is
        // popped once a participant finds it exhausted.
        job = jobs_.front();
      }
      pool_detail::PoolMetrics::Get().helps.Add();
      Participate(job.get());
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (!jobs_.empty() && jobs_.front() == job) jobs_.pop_front();
      }
    }
  }

  const size_t num_threads_;
  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::shared_ptr<Job>> jobs_;
  bool shutdown_ = false;
};

}  // namespace rmi

#endif  // RMI_COMMON_THREAD_POOL_H_
