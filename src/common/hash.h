// Cheap stateless integer mixing.
#ifndef RMI_COMMON_HASH_H_
#define RMI_COMMON_HASH_H_

#include <cstdint>

namespace rmi {

/// The SplitMix64 finalizer: a well-mixed 64-bit hash step, shared by the
/// deterministic fading field (radio/), the snapshot integrity stamp
/// (serving/snapshot.cc), and the per-shard RNG stream seeding
/// (serving/map_updater.cc).
inline uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Streaming combine built on the same finalizer (hash-chain a value into
/// an accumulator).
inline uint64_t SplitMix64Combine(uint64_t h, uint64_t v) {
  return SplitMix64(h + v);
}

}  // namespace rmi

#endif  // RMI_COMMON_HASH_H_
