// Small statistics helpers shared by metrics and benches.
#ifndef RMI_COMMON_STATS_H_
#define RMI_COMMON_STATS_H_

#include <cmath>
#include <cstddef>
#include <vector>

namespace rmi {

/// Streaming mean/variance (Welford).
class RunningStats {
 public:
  void Add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    if (x < min_ || n_ == 1) min_ = x;
    if (x > max_ || n_ == 1) max_ = x;
  }

  size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const { return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0; }
  double stddev() const { return std::sqrt(variance()); }
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Mean of a vector (0 for empty).
double Mean(const std::vector<double>& v);

/// Sample standard deviation (0 for size < 2).
double Stddev(const std::vector<double>& v);

/// Linear-interpolated percentile, p in [0, 100]. v need not be sorted.
double Percentile(std::vector<double> v, double p);

/// Pearson correlation of two equal-length vectors (0 if degenerate).
double PearsonCorrelation(const std::vector<double>& a,
                          const std::vector<double>& b);

}  // namespace rmi

#endif  // RMI_COMMON_STATS_H_
