// Small statistics helpers shared by metrics and benches.
#ifndef RMI_COMMON_STATS_H_
#define RMI_COMMON_STATS_H_

#include <cmath>
#include <cstddef>
#include <vector>

namespace rmi {

/// Streaming mean/variance (Welford). Accumulators built on independent
/// shards (one per thread, the obs/ registry idiom) combine with Merge()
/// into the same moments a single-stream accumulation would produce.
class RunningStats {
 public:
  void Add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    if (x < min_ || n_ == 1) min_ = x;
    if (x > max_ || n_ == 1) max_ = x;
  }

  /// Folds an independently-accumulated stream into this one (Chan et
  /// al.'s pairwise update): count/mean/variance/min/max afterwards match
  /// a single accumulator that saw both streams' samples, up to rounding.
  void Merge(const RunningStats& other) {
    if (other.n_ == 0) return;
    if (n_ == 0) {
      *this = other;
      return;
    }
    const size_t n = n_ + other.n_;
    const double delta = other.mean_ - mean_;
    mean_ += delta * static_cast<double>(other.n_) / static_cast<double>(n);
    m2_ += other.m2_ + delta * delta * static_cast<double>(n_) *
                           static_cast<double>(other.n_) /
                           static_cast<double>(n);
    if (other.min_ < min_) min_ = other.min_;
    if (other.max_ > max_) max_ = other.max_;
    n_ = n;
  }

  /// Rebuilds an accumulator from raw moments (m2 = sum of squared
  /// deviations from the mean) — how a metrics shard that kept
  /// count/sum/sumsq in atomics re-enters the Merge chain.
  static RunningStats FromMoments(size_t n, double mean, double m2,
                                  double min, double max) {
    RunningStats s;
    s.n_ = n;
    s.mean_ = n ? mean : 0.0;
    s.m2_ = n ? m2 : 0.0;
    s.min_ = n ? min : 0.0;
    s.max_ = n ? max : 0.0;
    return s;
  }

  size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const { return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0; }
  double stddev() const { return std::sqrt(variance()); }
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Mean of a vector (0 for empty).
double Mean(const std::vector<double>& v);

/// Sample standard deviation (0 for size < 2).
double Stddev(const std::vector<double>& v);

/// Linear-interpolated percentile, p in [0, 100]. v need not be sorted.
double Percentile(std::vector<double> v, double p);

/// Pearson correlation of two equal-length vectors (0 if degenerate).
double PearsonCorrelation(const std::vector<double>& a,
                          const std::vector<double>& b);

}  // namespace rmi

#endif  // RMI_COMMON_STATS_H_
