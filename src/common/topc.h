// Branchless streaming smallest-c selection.
//
// The serving ranking paths scan thousands of candidate keys per query and
// keep only the c smallest (c is a handful: k plus an error-margin band).
// The classic structures pay for that in mispredicted branches — a binary
// search + shifting insert (position-dependent branches) or a heap (pointer
// chasing) — on every admitted key. StreamingTopC instead keeps a sorted
// buffer of fixed capacity, pre-filled with a sentinel "worst" value, and
// inserts by bubbling the new key through with two registers:
//
//     for each lane t:  buf[t] <- min(buf[t], key);  key <- max(old, key)
//
// Each lane is a compare + two conditional moves — no data-dependent
// branches, no shifting loop, and the sentinel makes the not-yet-full state
// structurally identical to the full state (no fill counter in the hot
// path). The only branch is the admission guard `key < worst()`, which is
// predictable: after warm-up almost every key fails it.
#ifndef RMI_COMMON_TOPC_H_
#define RMI_COMMON_TOPC_H_

#include <algorithm>
#include <cstddef>
#include <vector>

#include "common/check.h"

namespace rmi {

/// Keeps the `c` smallest values pushed so far, ascending. T needs
/// operator< (ints, doubles, or (key, index) pairs for deterministic tie
/// order) and cheap copies. Capacity 0 is legal: every push is dropped and
/// Take() is empty — callers selecting "top 0" get the vacuous answer
/// instead of UB.
template <typename T>
class StreamingTopC {
 public:
  /// `sentinel` must compare >= every real key (e.g. +inf, INT32_MAX).
  StreamingTopC(size_t c, T sentinel) : buf_(c, sentinel), sentinel_(sentinel) {}

  /// Back to the freshly constructed state without touching the heap —
  /// hot loops construct once and Reset per item.
  void Reset() {
    std::fill(buf_.begin(), buf_.end(), sentinel_);
    seen_ = 0;
  }

  void Push(T v) {
    ++seen_;
    if (buf_.empty() || !(v < buf_.back())) return;
    for (size_t t = 0; t < buf_.size(); ++t) {
      const T cur = buf_[t];
      const bool lt = v < cur;
      buf_[t] = lt ? v : cur;  // lane keeps the smaller of (lane, key)
      v = lt ? cur : v;        // the larger bubbles on toward the tail
    }
  }

  /// The current c-th smallest (the admission boundary); the sentinel
  /// until c values have been pushed. Capacity must be > 0.
  const T& worst() const {
    RMI_CHECK(!buf_.empty());
    return buf_.back();
  }

  /// Number of values pushed (admitted or not).
  size_t seen() const { return seen_; }
  /// Number of real (non-sentinel) entries currently held.
  size_t size() const { return std::min(seen_, buf_.size()); }
  size_t capacity() const { return buf_.size(); }

  /// The held values, ascending — only the first size() entries.
  std::vector<T> Take() const {
    return std::vector<T>(buf_.begin(),
                          buf_.begin() + static_cast<long>(size()));
  }

 private:
  std::vector<T> buf_;  ///< ascending; tail is the admission boundary
  T sentinel_;
  size_t seen_ = 0;
};

}  // namespace rmi

#endif  // RMI_COMMON_TOPC_H_
