// Fixed-width console table printer used by the bench harness to emit the
// paper's tables/series, plus an optional CSV mirror.
#ifndef RMI_COMMON_TABLE_H_
#define RMI_COMMON_TABLE_H_

#include <string>
#include <vector>

namespace rmi {

/// Accumulates rows of strings and prints an aligned ASCII table.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends a row; must match the header arity.
  void AddRow(std::vector<std::string> row);

  /// Renders the table (header + separator + rows).
  std::string ToString() const;

  /// Renders as CSV (RFC-4180-lite: fields with commas are quoted).
  std::string ToCsv() const;

  /// Prints ToString() to stdout.
  void Print() const;

  /// Writes the CSV mirror to `$RMI_BENCH_CSV_DIR/<name>.csv` when the
  /// environment variable is set; no-op otherwise.
  void MaybeWriteCsv(const std::string& name) const;

  size_t num_rows() const { return rows_.size(); }

  /// Formats a double with `prec` digits after the point.
  static std::string Num(double v, int prec = 2);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace rmi

#endif  // RMI_COMMON_TABLE_H_
