// Lightweight CHECK macros for invariant enforcement.
//
// Following the database-engine convention (RocksDB/Arrow style), internal
// invariants abort with a diagnostic rather than throwing: a violated
// invariant means the library state is no longer trustworthy.
#ifndef RMI_COMMON_CHECK_H_
#define RMI_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace rmi {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr) {
  std::fprintf(stderr, "RMI_CHECK failed at %s:%d: %s\n", file, line, expr);
  std::fflush(stderr);
  std::abort();
}

}  // namespace rmi

/// Aborts with a diagnostic if `cond` is false. Always on (release included):
/// the checked conditions guard data-structure invariants whose violation
/// would silently corrupt results.
#define RMI_CHECK(cond)                                  \
  do {                                                   \
    if (!(cond)) ::rmi::CheckFailed(__FILE__, __LINE__, #cond); \
  } while (0)

#define RMI_CHECK_EQ(a, b) RMI_CHECK((a) == (b))
#define RMI_CHECK_NE(a, b) RMI_CHECK((a) != (b))
#define RMI_CHECK_LT(a, b) RMI_CHECK((a) < (b))
#define RMI_CHECK_LE(a, b) RMI_CHECK((a) <= (b))
#define RMI_CHECK_GT(a, b) RMI_CHECK((a) > (b))
#define RMI_CHECK_GE(a, b) RMI_CHECK((a) >= (b))

#endif  // RMI_COMMON_CHECK_H_
