// Monotonic wall-clock timer for imputation cost accounting (Table VII).
#ifndef RMI_COMMON_TIMER_H_
#define RMI_COMMON_TIMER_H_

#include <chrono>

namespace rmi {

/// Starts on construction; ElapsedSeconds() reads without stopping.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace rmi

#endif  // RMI_COMMON_TIMER_H_
