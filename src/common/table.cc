#include "common/table.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/check.h"

namespace rmi {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  RMI_CHECK(!header_.empty());
}

void Table::AddRow(std::vector<std::string> row) {
  RMI_CHECK_EQ(row.size(), header_.size());
  rows_.push_back(std::move(row));
}

std::string Table::Num(double v, int prec) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", prec, v);
  return buf;
}

std::string Table::ToString() const {
  std::vector<size_t> width(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& r : rows_) {
    for (size_t c = 0; c < r.size(); ++c) {
      width[c] = std::max(width[c], r[c].size());
    }
  }
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& r) {
    for (size_t c = 0; c < r.size(); ++c) {
      os << (c ? " | " : "| ");
      os << r[c];
      os << std::string(width[c] - r[c].size(), ' ');
    }
    os << " |\n";
  };
  emit_row(header_);
  for (size_t c = 0; c < header_.size(); ++c) {
    os << (c ? "-|-" : "|-") << std::string(width[c], '-');
  }
  os << "-|\n";
  for (const auto& r : rows_) emit_row(r);
  return os.str();
}

std::string Table::ToCsv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& r) {
    for (size_t c = 0; c < r.size(); ++c) {
      if (c) os << ",";
      if (r[c].find(',') != std::string::npos) {
        os << '"' << r[c] << '"';
      } else {
        os << r[c];
      }
    }
    os << "\n";
  };
  emit(header_);
  for (const auto& r : rows_) emit(r);
  return os.str();
}

void Table::Print() const { std::fputs(ToString().c_str(), stdout); }

void Table::MaybeWriteCsv(const std::string& name) const {
  const char* dir = std::getenv("RMI_BENCH_CSV_DIR");
  if (dir == nullptr || *dir == '\0') return;
  std::ofstream out(std::string(dir) + "/" + name + ".csv");
  if (out) out << ToCsv();
}

}  // namespace rmi
