#include "geometry/geometry.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace rmi::geom {

double Distance(const Point& a, const Point& b) {
  return std::sqrt(SquaredDistance(a, b));
}

double SquaredDistance(const Point& a, const Point& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return dx * dx + dy * dy;
}

double Cross(const Point& a, const Point& b, const Point& c) {
  return (b.x - a.x) * (c.y - a.y) - (b.y - a.y) * (c.x - a.x);
}

namespace {

int Sign(double v) {
  constexpr double kEps = 1e-12;
  if (v > kEps) return 1;
  if (v < -kEps) return -1;
  return 0;
}

bool OnSegment(const Point& p, const Segment& s) {
  if (Sign(Cross(s.a, s.b, p)) != 0) return false;
  return p.x >= std::min(s.a.x, s.b.x) - 1e-12 &&
         p.x <= std::max(s.a.x, s.b.x) + 1e-12 &&
         p.y >= std::min(s.a.y, s.b.y) - 1e-12 &&
         p.y <= std::max(s.a.y, s.b.y) + 1e-12;
}

}  // namespace

bool SegmentsIntersect(const Segment& s1, const Segment& s2) {
  const int d1 = Sign(Cross(s2.a, s2.b, s1.a));
  const int d2 = Sign(Cross(s2.a, s2.b, s1.b));
  const int d3 = Sign(Cross(s1.a, s1.b, s2.a));
  const int d4 = Sign(Cross(s1.a, s1.b, s2.b));
  if (((d1 > 0 && d2 < 0) || (d1 < 0 && d2 > 0)) &&
      ((d3 > 0 && d4 < 0) || (d3 < 0 && d4 > 0))) {
    return true;
  }
  if (d1 == 0 && OnSegment(s1.a, s2)) return true;
  if (d2 == 0 && OnSegment(s1.b, s2)) return true;
  if (d3 == 0 && OnSegment(s2.a, s1)) return true;
  if (d4 == 0 && OnSegment(s2.b, s1)) return true;
  return false;
}

Polygon::Polygon(std::vector<Point> vertices) : vertices_(std::move(vertices)) {
  RMI_CHECK_GE(vertices_.size(), 1u);
}

double Polygon::SignedArea() const {
  double s = 0.0;
  const size_t n = vertices_.size();
  for (size_t i = 0; i < n; ++i) {
    const Point& p = vertices_[i];
    const Point& q = vertices_[(i + 1) % n];
    s += p.x * q.y - q.x * p.y;
  }
  return s / 2.0;
}

Point Polygon::Centroid() const {
  RMI_CHECK(!vertices_.empty());
  Point c;
  for (const Point& p : vertices_) {
    c.x += p.x;
    c.y += p.y;
  }
  const double n = static_cast<double>(vertices_.size());
  return {c.x / n, c.y / n};
}

bool Polygon::Contains(const Point& p) const {
  const size_t n = vertices_.size();
  if (n < 3) {
    for (size_t i = 0; i + 1 < n; ++i) {
      if (OnSegment(p, Segment{vertices_[i], vertices_[i + 1]})) return true;
    }
    return n == 1 ? (vertices_[0] == p) : false;
  }
  // Boundary counts as inside.
  for (size_t i = 0; i < n; ++i) {
    if (OnSegment(p, Edge(i))) return true;
  }
  bool inside = false;
  for (size_t i = 0, j = n - 1; i < n; j = i++) {
    const Point& a = vertices_[i];
    const Point& b = vertices_[j];
    if ((a.y > p.y) != (b.y > p.y)) {
      const double x_at =
          a.x + (p.y - a.y) / (b.y - a.y) * (b.x - a.x);
      if (p.x < x_at) inside = !inside;
    }
  }
  return inside;
}

Segment Polygon::Edge(size_t i) const {
  RMI_CHECK_LT(i, vertices_.size());
  return Segment{vertices_[i], vertices_[(i + 1) % vertices_.size()]};
}

Polygon Polygon::Rectangle(double x0, double y0, double x1, double y1) {
  RMI_CHECK_LT(x0, x1);
  RMI_CHECK_LT(y0, y1);
  return Polygon({{x0, y0}, {x1, y0}, {x1, y1}, {x0, y1}});
}

bool MultiPolygon::Contains(const Point& p) const {
  for (const Polygon& poly : polygons_) {
    if (poly.Contains(p)) return true;
  }
  return false;
}

int MultiPolygon::CountEdgeCrossings(const Segment& s) const {
  int count = 0;
  for (const Polygon& poly : polygons_) {
    const size_t n = poly.size();
    if (n < 2) continue;
    for (size_t i = 0; i < n; ++i) {
      if (SegmentsIntersect(s, poly.Edge(i))) ++count;
    }
  }
  return count;
}

Polygon ConvexHull(std::vector<Point> points) {
  std::sort(points.begin(), points.end(), [](const Point& a, const Point& b) {
    return a.x < b.x || (a.x == b.x && a.y < b.y);
  });
  points.erase(std::unique(points.begin(), points.end()), points.end());
  const size_t n = points.size();
  if (n <= 2) return Polygon(points.empty() ? std::vector<Point>{Point{}} : points);
  std::vector<Point> hull(2 * n);
  size_t k = 0;
  for (size_t i = 0; i < n; ++i) {
    while (k >= 2 && Cross(hull[k - 2], hull[k - 1], points[i]) <= 0) --k;
    hull[k++] = points[i];
  }
  const size_t lower = k + 1;
  for (size_t i = n - 1; i-- > 0;) {
    while (k >= lower && Cross(hull[k - 2], hull[k - 1], points[i]) <= 0) --k;
    hull[k++] = points[i];
  }
  hull.resize(k - 1);
  return Polygon(std::move(hull));
}

bool PolygonsIntersect(const Polygon& a, const Polygon& b) {
  if (a.empty() || b.empty()) return false;
  // Any edge pair crossing?
  if (a.size() >= 2 && b.size() >= 2) {
    for (size_t i = 0; i < a.size(); ++i) {
      for (size_t j = 0; j < b.size(); ++j) {
        if (SegmentsIntersect(a.Edge(i), b.Edge(j))) return true;
      }
    }
  }
  // Full containment either way (or degenerate point-in-polygon).
  if (b.Contains(a.vertices()[0])) return true;
  if (a.Contains(b.vertices()[0])) return true;
  return false;
}

bool IntersectsAny(const Polygon& hull, const MultiPolygon& entities) {
  for (const Polygon& poly : entities.polygons()) {
    if (PolygonsIntersect(hull, poly)) return true;
  }
  return false;
}

}  // namespace rmi::geom
