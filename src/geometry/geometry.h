// 2D computational-geometry substrate.
//
// Used by: the venue model (rooms/walls as polygons), the radio propagation
// simulator (wall-crossing counts along a signal path), and the TopoAC
// differentiator (convex hulls vs. topological entities, Algorithm 4).
#ifndef RMI_GEOMETRY_GEOMETRY_H_
#define RMI_GEOMETRY_GEOMETRY_H_

#include <cstddef>
#include <vector>

namespace rmi::geom {

/// A point (or location / reference point) in the floor plane, meters.
struct Point {
  double x = 0.0;
  double y = 0.0;

  Point() = default;
  Point(double px, double py) : x(px), y(py) {}

  Point operator+(const Point& o) const { return {x + o.x, y + o.y}; }
  Point operator-(const Point& o) const { return {x - o.x, y - o.y}; }
  Point operator*(double s) const { return {x * s, y * s}; }
  bool operator==(const Point& o) const { return x == o.x && y == o.y; }
};

/// Euclidean distance between two points.
double Distance(const Point& a, const Point& b);

/// Squared Euclidean distance.
double SquaredDistance(const Point& a, const Point& b);

/// Cross product of (b-a) x (c-a); >0 means c is left of a->b.
double Cross(const Point& a, const Point& b, const Point& c);

/// Line segment.
struct Segment {
  Point a;
  Point b;
};

/// True iff segments properly or improperly intersect (shared endpoints and
/// collinear overlaps count as intersections).
bool SegmentsIntersect(const Segment& s1, const Segment& s2);

/// Simple polygon given by its vertex ring (no closing duplicate vertex).
class Polygon {
 public:
  Polygon() = default;
  explicit Polygon(std::vector<Point> vertices);

  const std::vector<Point>& vertices() const { return vertices_; }
  size_t size() const { return vertices_.size(); }
  bool empty() const { return vertices_.empty(); }

  /// Signed area (positive for counter-clockwise rings).
  double SignedArea() const;
  double Area() const { return SignedArea() < 0 ? -SignedArea() : SignedArea(); }

  /// Vertex centroid.
  Point Centroid() const;

  /// Even–odd (ray casting) point containment; boundary counts as inside.
  bool Contains(const Point& p) const;

  /// Edge i as a segment (wraps around).
  Segment Edge(size_t i) const;

  /// Axis-aligned rectangle helper.
  static Polygon Rectangle(double x0, double y0, double x1, double y1);

 private:
  std::vector<Point> vertices_;
};

/// A set of disjoint polygons (the paper's "multipolygon" of topological
/// entities: walls, pillars, room partitions).
class MultiPolygon {
 public:
  MultiPolygon() = default;
  explicit MultiPolygon(std::vector<Polygon> polygons)
      : polygons_(std::move(polygons)) {}

  void Add(Polygon p) { polygons_.push_back(std::move(p)); }
  const std::vector<Polygon>& polygons() const { return polygons_; }
  size_t size() const { return polygons_.size(); }
  bool empty() const { return polygons_.empty(); }

  /// True iff any member polygon contains p.
  bool Contains(const Point& p) const;

  /// Number of member-polygon edges crossed by segment s (each polygon
  /// contributes the count of its intersected edges). Proxy for the number
  /// of walls a radio signal penetrates.
  int CountEdgeCrossings(const Segment& s) const;

 private:
  std::vector<Polygon> polygons_;
};

/// Convex hull (Andrew monotone chain), counter-clockwise, no duplicate
/// closing vertex. Degenerate inputs (<3 distinct points) return the distinct
/// points themselves.
Polygon ConvexHull(std::vector<Point> points);

/// True iff polygons a and b intersect (share any point: edge crossings,
/// containment either way).
bool PolygonsIntersect(const Polygon& a, const Polygon& b);

/// True iff hull intersects any polygon of entities — the EntityExist
/// predicate of Algorithm 4 (paper writes `CH \ T != {}`; the intended test,
/// per the surrounding text, is `CH ∩ T != {}`).
bool IntersectsAny(const Polygon& hull, const MultiPolygon& entities);

}  // namespace rmi::geom

#endif  // RMI_GEOMETRY_GEOMETRY_H_
