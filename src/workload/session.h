// Sessionful client-side routing with floor-boundary hysteresis.
//
// A stateless classifier flaps on boundary fingerprints: near a stairwell
// the AP-overlap scores of the two floors differ by at most a hair, and
// scan-to-scan jitter flips the winner back and forth — each flip is a
// spurious shard handover. SessionRouter is the client-side fix: a session
// sticks to its current shard until a challenger shard *decisively* beats
// it (overlap advantage >= overlap_margin) on confirm_count consecutive
// scans. Real floor changes clear the margin within a scan or two of
// leaving the portal; boundary jitter never does.
//
// The session resolves the sticky shard's own overlap through the store's
// live profiles, so it also self-heals across dimension-changing
// republishes (an online AP add/remove): a profile whose width no longer
// matches the scan means the venue moved on, and the session re-homes to
// the classifier's fresh verdict instead of riding a stale hint into a
// validation reject.
//
// Thread-safety: a SessionRouter is one device's session — single-caller
// state, not shared. The router/store it reads are safe for any number of
// concurrent sessions.
#ifndef RMI_WORKLOAD_SESSION_H_
#define RMI_WORKLOAD_SESSION_H_

#include <cstddef>
#include <optional>
#include <vector>

#include "radiomap/radio_map.h"
#include "serving/shard_router.h"

namespace rmi::workload {

struct SessionRoutingOptions {
  /// A challenger must beat the sticky shard's AP overlap by at least this
  /// many APs to score a confirmation.
  size_t overlap_margin = 2;
  /// Consecutive confirming scans required before the session hands over.
  size_t confirm_count = 2;
};

class SessionRouter {
 public:
  SessionRouter(const serving::ShardedSnapshotStore* store,
                const serving::ShardRouter* router,
                const SessionRoutingOptions& options = {});

  /// Routes one scan: returns the shard hint for the localization batch,
  /// or nullopt when even the raw classifier has no verdict and no sticky
  /// shard exists yet (the caller lets the serving layer classify or
  /// reject). Updates the hysteresis state.
  std::optional<rmap::ShardId> Route(const std::vector<double>& fingerprint);

  /// Drops the sticky shard (e.g. after the serving layer rejected the
  /// session's hint): the next Route re-homes from the classifier.
  void Reset();

  bool has_shard() const { return has_shard_; }
  const rmap::ShardId& current() const { return current_; }
  /// Completed handovers (sticky-shard changes after the first adoption).
  size_t switches() const { return switches_; }

 private:
  const serving::ShardedSnapshotStore* store_;
  const serving::ShardRouter* router_;
  const SessionRoutingOptions options_;

  bool has_shard_ = false;
  rmap::ShardId current_;
  rmap::ShardId challenger_;
  size_t challenger_streak_ = 0;
  size_t switches_ = 0;
};

}  // namespace rmi::workload

#endif  // RMI_WORKLOAD_SESSION_H_
