#include "workload/soak.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <functional>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

#include "clustering/differentiation.h"
#include "common/check.h"
#include "common/hash.h"
#include "common/rng.h"
#include "geometry/geometry.h"
#include "imputers/traditional.h"
#include "obs/metrics.h"
#include "positioning/estimators.h"
#include "serving/map_updater.h"
#include "serving/shard_router.h"

namespace rmi::workload {

namespace {

/// Scrape-delta view of a registry counter: Total() since construction.
class CounterDelta {
 public:
  explicit CounterDelta(obs::Counter* counter)
      : counter_(counter), before_(counter->Total()) {}
  uint64_t Value() const { return counter_->Total() - before_; }

 private:
  obs::Counter* counter_;
  uint64_t before_;
};

/// Scrape-delta view of a registry histogram: percentiles over only the
/// observations that landed since construction, mirroring
/// Histogram::Percentile's within-bucket interpolation on the bucket
/// deltas.
class HistogramDelta {
 public:
  explicit HistogramDelta(obs::Histogram* hist) : hist_(hist) {
    hist_->MergedBuckets(before_);
  }

  uint64_t Count() const {
    uint64_t buckets[obs::Histogram::kNumBuckets];
    Snapshot(buckets);
    uint64_t total = 0;
    for (uint64_t c : buckets) total += c;
    return total;
  }

  double Percentile(double p) const {
    uint64_t buckets[obs::Histogram::kNumBuckets];
    Snapshot(buckets);
    uint64_t total = 0;
    for (uint64_t c : buckets) total += c;
    if (total == 0) return 0.0;
    const double target =
        std::max(1.0, p / 100.0 * static_cast<double>(total));
    uint64_t cum = 0;
    for (size_t b = 0; b < obs::Histogram::kNumBuckets; ++b) {
      if (buckets[b] == 0) continue;
      const uint64_t prev = cum;
      cum += buckets[b];
      if (static_cast<double>(cum) >= target) {
        uint64_t lower, upper;
        obs::Histogram::BucketBounds(b, &lower, &upper);
        const double fraction = (target - static_cast<double>(prev)) /
                                static_cast<double>(buckets[b]);
        return static_cast<double>(lower) +
               fraction * static_cast<double>(upper - lower);
      }
    }
    uint64_t lower, upper;
    obs::Histogram::BucketBounds(obs::Histogram::kNumBuckets - 1, &lower,
                                 &upper);
    return static_cast<double>(upper);
  }

 private:
  void Snapshot(uint64_t* out) const {
    uint64_t after[obs::Histogram::kNumBuckets];
    hist_->MergedBuckets(after);
    for (size_t b = 0; b < obs::Histogram::kNumBuckets; ++b) {
      out[b] = after[b] - before_[b];
    }
  }

  obs::Histogram* hist_;
  uint64_t before_[obs::Histogram::kNumBuckets];
};

/// One mid-run churn event on the compressed wall clock.
struct ChurnEvent {
  double at_fraction;
  std::function<void()> run;
};

}  // namespace

SoakReport RunSoak(const SoakOptions& options) {
  RMI_CHECK_GT(options.client_threads, 0u);
  RMI_CHECK_GT(options.time_scale, 0.0);

  // --- World + serving stack -------------------------------------------
  auto venue = std::make_shared<const SoakVenue>(MakeSoakVenue(options.venue));
  const size_t num_shards = venue->num_shards();
  const size_t initial_aps = venue->num_aps();

  serving::ShardedSnapshotStore store;
  serving::ShardRouter router(&store, options.router_threads);

  cluster::MarOnlyDifferentiator differentiator;
  imputers::LinearInterpolationImputer imputer;
  serving::MapUpdaterOptions uopt;
  uopt.min_new_observations = options.min_new_observations;
  uopt.rebuild_threads = options.rebuild_threads;
  uopt.seed = options.seed;
  serving::MapUpdater updater(
      &store, &differentiator, &imputer,
      [] { return std::make_unique<positioning::KnnEstimator>(5, true); },
      uopt);
  for (const serving::VenueShard& shard : venue->shards) {
    updater.RegisterShard(shard.id, shard.map);
  }
  updater.Start();

  // --- Deterministic workload ------------------------------------------
  const std::vector<WalkerTrace> walkers =
      GenerateWalkers(*venue, options.walkers);
  RMI_CHECK(!walkers.empty());
  const std::vector<double> schedule = PoissonArrivals(options.arrivals);

  std::vector<SessionRouter> sessions;
  sessions.reserve(walkers.size());
  for (size_t w = 0; w < walkers.size(); ++w) {
    sessions.emplace_back(&store, &router, options.session);
  }

  // --- Instruments + scrape-before baselines ---------------------------
  obs::Histogram& latency_hist = obs::GetHistogram(
      "rmi_workload_query_latency_us",
      "Open-loop query latency: scheduled arrival to answer, microseconds");
  obs::Histogram& ape_hist = obs::GetHistogram(
      "rmi_workload_ape_cm",
      "Positioning error vs trace ground truth, centimeters "
      "(correct-shard answers only)");
  obs::Counter& ok_counter = obs::GetCounter(
      "rmi_workload_queries_total", "Soak queries by outcome",
      "result=\"ok\"");
  obs::Counter& rejected_counter = obs::GetCounter(
      "rmi_workload_queries_total", "Soak queries by outcome",
      "result=\"rejected\"");
  obs::Counter& unroutable_counter = obs::GetCounter(
      "rmi_workload_queries_total", "Soak queries by outcome",
      "result=\"unroutable\"");
  obs::Counter& wrong_shard_counter = obs::GetCounter(
      "rmi_workload_wrong_shard_total",
      "Answers served by a shard other than the walker's true shard");
  obs::Histogram& staleness_hist = obs::GetHistogram(
      "rmi_updater_staleness_us",
      "Age of the oldest pending delta at snapshot publish, microseconds");

  HistogramDelta latency_delta(&latency_hist);
  HistogramDelta ape_delta(&ape_hist);
  HistogramDelta staleness_delta(&staleness_hist);
  CounterDelta ok_delta(&ok_counter);
  CounterDelta rejected_delta(&rejected_counter);
  CounterDelta unroutable_delta(&unroutable_counter);
  CounterDelta wrong_delta(&wrong_shard_counter);
  const serving::MapUpdaterStats ustats_before = updater.Stats();
  const uint64_t publishes_before = store.publish_count();

  // --- Shared mutable state the churn thread swaps ---------------------
  std::shared_ptr<const SoakVenue> live_venue = venue;
  std::atomic<size_t> dimension_changes{0};
  std::atomic<size_t> resurvey_fed{0};
  std::atomic<bool> stop_churn{false};

  const double virtual_duration = options.arrivals.duration_s;
  const double wall_duration_us =
      virtual_duration / options.time_scale * 1e6;
  const double origin_us = obs::MonotonicUs();
  const auto origin_wall = std::chrono::steady_clock::now();

  // --- Churn thread -----------------------------------------------------
  std::vector<ChurnEvent> events;
  const ChurnOptions& churn = options.churn;
  if (churn.resurvey_at <= 1.0 && churn.resurvey_shards > 0 &&
      churn.resurvey_observations > 0) {
    events.push_back({churn.resurvey_at, [&] {
      const size_t shards_hit = std::min(churn.resurvey_shards, num_shards);
      const auto gen = std::atomic_load_explicit(&live_venue,
                                                 std::memory_order_acquire);
      for (size_t s = 0; s < shards_hit; ++s) {
        auto observations = MakeResurveyObservations(
            *gen, s, churn.resurvey_observations, churn.drift_db,
            churn.resurvey_at * virtual_duration,
            SplitMix64Combine(options.seed, 0xe5));
        for (rmap::Record& record : observations) {
          updater.Ingest(gen->shards[s].id, std::move(record));
        }
        resurvey_fed.fetch_add(churn.resurvey_observations,
                               std::memory_order_relaxed);
      }
    }});
  }
  if (churn.ap_add_at <= 1.0 && churn.ap_add_count > 0) {
    events.push_back({churn.ap_add_at, [&] {
      const auto gen = std::atomic_load_explicit(&live_venue,
                                                 std::memory_order_acquire);
      auto widened = std::make_shared<const SoakVenue>(AddGlobalAps(
          *gen, churn.ap_add_count, SplitMix64Combine(options.seed, 0xad)));
      // Republish every shard at the new dimension through the updater's
      // re-register path (synchronous rebuild + hot-swap per shard); only
      // then switch the devices over to new-width scans. In the window,
      // old-width scans against re-registered shards are cleanly rejected
      // by snapshot validation — counted, never torn.
      for (const serving::VenueShard& shard : widened->shards) {
        updater.RegisterShard(shard.id, shard.map);
      }
      std::atomic_store_explicit(&live_venue, widened,
                                 std::memory_order_release);
      dimension_changes.fetch_add(1, std::memory_order_relaxed);
    }});
  }
  if (churn.ap_remove_at <= 1.0 && churn.ap_add_count > 0) {
    events.push_back({churn.ap_remove_at, [&] {
      const auto gen = std::atomic_load_explicit(&live_venue,
                                                 std::memory_order_acquire);
      if (gen->num_aps() <= initial_aps) return;  // addition never ran
      auto narrowed = std::make_shared<const SoakVenue>(
          RemoveLastGlobalAps(*gen, gen->num_aps() - initial_aps));
      for (const serving::VenueShard& shard : narrowed->shards) {
        updater.RegisterShard(shard.id, shard.map);
      }
      std::atomic_store_explicit(&live_venue, narrowed,
                                 std::memory_order_release);
      dimension_changes.fetch_add(1, std::memory_order_relaxed);
    }});
  }
  std::sort(events.begin(), events.end(),
            [](const ChurnEvent& a, const ChurnEvent& b) {
              return a.at_fraction < b.at_fraction;
            });

  std::thread churn_thread([&] {
    for (const ChurnEvent& event : events) {
      const auto deadline =
          origin_wall + std::chrono::duration_cast<
                            std::chrono::steady_clock::duration>(
                            std::chrono::duration<double, std::micro>(
                                event.at_fraction * wall_duration_us));
      while (std::chrono::steady_clock::now() < deadline) {
        if (stop_churn.load(std::memory_order_relaxed)) return;
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
      if (stop_churn.load(std::memory_order_relaxed)) return;
      event.run();
    }
  });

  // --- Open-loop clients ------------------------------------------------
  // Walker sessions are partitioned by walker index, so every session's
  // scan sequence replays in order on one thread and the synthesized
  // noise stream is deterministic per (seed, walker).
  const size_t num_threads = options.client_threads;
  std::vector<std::thread> clients;
  clients.reserve(num_threads);
  for (size_t k = 0; k < num_threads; ++k) {
    clients.emplace_back([&, k] {
      Rng scan_rng(SplitMix64Combine(options.seed, 0x5c0 + k));
      for (size_t i = 0; i < schedule.size(); ++i) {
        const size_t w = i % walkers.size();
        if (w % num_threads != k) continue;
        const double deadline_us =
            origin_us + schedule[i] / options.time_scale * 1e6;
        double now_us = obs::MonotonicUs();
        if (now_us < deadline_us) {
          std::this_thread::sleep_for(std::chrono::duration<double, std::micro>(
              deadline_us - now_us));
        }

        const auto gen = std::atomic_load_explicit(&live_venue,
                                                   std::memory_order_acquire);
        const WalkerTrace& walker = walkers[w];
        const TraceKey truth = walker.At(schedule[i]);
        const std::vector<double> fingerprint = SynthesizeFingerprint(
            *gen, truth, walker.device_bias_db, options.fingerprint,
            scan_rng);

        SessionRouter& session = sessions[w];
        const std::optional<rmap::ShardId> hint = session.Route(fingerprint);
        geom::Point position;
        rmap::ShardId served;
        bool answered = false;
        try {
          if (hint) {
            position = router.Localize(*hint, fingerprint);
            served = *hint;
          } else {
            const auto result = router.LocalizeAuto(fingerprint);
            position = result.position;
            served = result.route.shard;
          }
          answered = true;
        } catch (const std::runtime_error&) {
          // Unroutable or rejected by snapshot validation (e.g. a stale
          // width racing a dimension-changing republish). The session
          // re-homes on the next scan.
          if (hint) {
            rejected_counter.Add();
            session.Reset();
          } else {
            unroutable_counter.Add();
          }
        }
        if (answered) {
          // Open-loop latency: scheduled arrival to answer, so backlog
          // under overload shows up in the tail exactly like production.
          latency_hist.Observe(obs::MonotonicUs() - deadline_us);
          ok_counter.Add();
          if (served == truth.shard) {
            ape_hist.Observe(geom::Distance(position, truth.pos) * 100.0);
          } else {
            wrong_shard_counter.Add();
          }
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  const double wall_us = obs::MonotonicUs() - origin_us;
  stop_churn.store(true, std::memory_order_relaxed);
  churn_thread.join();
  updater.Stop();

  // --- Scrape-delta SLO report -----------------------------------------
  SoakReport report;
  report.scheduled = schedule.size();
  report.ok = ok_delta.Value();
  report.rejected = rejected_delta.Value();
  report.unroutable = unroutable_delta.Value();
  report.sent = report.ok + report.rejected + report.unroutable;
  report.wall_seconds = wall_us / 1e6;
  report.achieved_qps =
      report.wall_seconds > 0.0 ? report.sent / report.wall_seconds : 0.0;

  report.p50_ms = latency_delta.Percentile(50.0) / 1e3;
  report.p99_ms = latency_delta.Percentile(99.0) / 1e3;
  report.p999_ms = latency_delta.Percentile(99.9) / 1e3;
  report.ape_p50_m = ape_delta.Percentile(50.0) / 100.0;
  report.ape_p95_m = ape_delta.Percentile(95.0) / 100.0;
  report.staleness_p50_ms = staleness_delta.Percentile(50.0) / 1e3;
  report.staleness_p95_ms = staleness_delta.Percentile(95.0) / 1e3;

  report.wrong_shard = wrong_delta.Value();
  report.handover_error_rate =
      report.ok > 0 ? static_cast<double>(report.wrong_shard) / report.ok
                    : 0.0;
  for (const SessionRouter& session : sessions) {
    report.session_switches += session.switches();
  }
  for (const WalkerTrace& walker : walkers) {
    report.true_transitions += walker.FloorTransitions();
  }

  const serving::MapUpdaterStats ustats = updater.Stats();
  report.rebuilds_completed =
      ustats.rebuilds_completed - ustats_before.rebuilds_completed;
  report.rebuild_failures =
      ustats.rebuilds_failed - ustats_before.rebuilds_failed;
  report.publishes = store.publish_count() - publishes_before;
  report.dimension_changes = dimension_changes.load();
  report.resurvey_observations = resurvey_fed.load();
  report.num_shards = num_shards;
  report.num_aps_initial = initial_aps;
  return report;
}

}  // namespace rmi::workload
