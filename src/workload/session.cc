#include "workload/session.h"

#include "common/missing.h"

namespace rmi::workload {

namespace {

/// AP-overlap score of `fingerprint` against one shard profile, mirroring
/// the classifier's audibility rule. Returns false when the profile width
/// no longer matches the scan (stale generation after a dimension change).
bool ProfileOverlap(const serving::ShardProfile& profile,
                    const std::vector<double>& fingerprint, size_t* overlap) {
  if (profile.num_aps() != fingerprint.size()) return false;
  size_t score = 0;
  for (size_t a = 0; a < fingerprint.size(); ++a) {
    if (!IsNull(fingerprint[a]) && profile.observable[a]) ++score;
  }
  *overlap = score;
  return true;
}

}  // namespace

SessionRouter::SessionRouter(const serving::ShardedSnapshotStore* store,
                             const serving::ShardRouter* router,
                             const SessionRoutingOptions& options)
    : store_(store), router_(router), options_(options) {}

void SessionRouter::Reset() {
  has_shard_ = false;
  challenger_streak_ = 0;
}

std::optional<rmap::ShardId> SessionRouter::Route(
    const std::vector<double>& fingerprint) {
  auto decision = router_->ClassifyFloor(fingerprint);

  if (!has_shard_) {
    if (!decision) return std::nullopt;
    has_shard_ = true;
    current_ = decision->shard;
    challenger_streak_ = 0;
    return current_;
  }

  // Resolve the sticky shard's overlap against the *live* profile. A
  // vanished or width-mismatched profile means the venue re-registered
  // under this session — adopt the classifier's fresh verdict outright.
  size_t sticky_overlap = 0;
  auto sticky_profile = store_->Profile(current_);
  if (!sticky_profile ||
      !ProfileOverlap(*sticky_profile, fingerprint, &sticky_overlap)) {
    has_shard_ = false;
    challenger_streak_ = 0;
    if (!decision) return std::nullopt;
    has_shard_ = true;
    current_ = decision->shard;
    ++switches_;
    return current_;
  }

  if (!decision || decision->shard == current_) {
    // No challenger this scan; the streak is broken.
    challenger_streak_ = 0;
    return current_;
  }

  // A different shard won the raw vote. Only a decisive win counts toward
  // the handover streak, and the streak must be on the same challenger.
  const bool decisive =
      decision->overlap >= sticky_overlap + options_.overlap_margin;
  if (!decisive) {
    challenger_streak_ = 0;
    return current_;
  }
  if (challenger_streak_ == 0 || !(challenger_ == decision->shard)) {
    challenger_ = decision->shard;
    challenger_streak_ = 1;
  } else {
    ++challenger_streak_;
  }
  if (challenger_streak_ >= options_.confirm_count) {
    current_ = challenger_;
    challenger_streak_ = 0;
    ++switches_;
  }
  return current_;
}

}  // namespace rmi::workload
