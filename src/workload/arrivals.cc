#include "workload/arrivals.h"

#include <cmath>

#include "common/check.h"
#include "common/rng.h"

namespace rmi::workload {

namespace {
constexpr double kTwoPi = 6.283185307179586;
}

double DiurnalCurve::Level(double t) const {
  return 1.0 + amplitude * std::sin(kTwoPi * t / period_s + phase_rad);
}

double DiurnalCurve::Integral(double t0, double t1) const {
  // ∫ 1 + A sin(w t + p) dt = t - (A/w) cos(w t + p)
  const double w = kTwoPi / period_s;
  const auto antiderivative = [&](double t) {
    return t - amplitude / w * std::cos(w * t + phase_rad);
  };
  return antiderivative(t1) - antiderivative(t0);
}

std::vector<double> PoissonArrivals(const ArrivalScheduleOptions& options) {
  RMI_CHECK_GT(options.duration_s, 0.0);
  RMI_CHECK_GT(options.expected_total, 0.0);
  RMI_CHECK_LT(std::abs(options.curve.amplitude), 1.0);

  const DiurnalCurve& curve = options.curve;
  const double norm = curve.Integral(0.0, options.duration_s);
  RMI_CHECK_GT(norm, 0.0);
  // rate(t) = expected_total * Level(t) / norm; its integral over the run
  // is exactly expected_total. Thinning runs a homogeneous process at the
  // peak rate and keeps each event with probability rate(t)/peak.
  const double scale = options.expected_total / norm;
  const double peak = scale * (1.0 + std::abs(curve.amplitude));

  Rng rng(options.seed);
  std::vector<double> arrivals;
  arrivals.reserve(size_t(options.expected_total * 1.05) + 16);
  double t = 0.0;
  while (true) {
    // Exponential gap at the peak rate (inverse CDF; Uniform is in [0,1)
    // so 1-u is in (0,1] and the log is finite).
    t += -std::log(1.0 - rng.Uniform()) / peak;
    if (t >= options.duration_s) break;
    if (rng.Uniform() < scale * curve.Level(t) / peak) {
      arrivals.push_back(t);
    }
  }
  return arrivals;
}

}  // namespace rmi::workload
