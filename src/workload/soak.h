// Trace-driven venue-scale soak: the closed-box endurance harness behind
// bench_soak and the scenario tests.
//
// RunSoak stands up the full serving stack — ShardedSnapshotStore,
// ShardRouter, MapUpdater over the standard differentiate/impute/fit
// backends — for a MakeSoakVenue world, then replays a deterministic
// mobility-trace workload against it *open-loop*: walker sessions
// (GenerateWalkers) emit fingerprint scans at Poisson arrival instants
// shaped by a diurnal curve (PoissonArrivals), honored on the wall clock
// whether or not the engine keeps up. Mid-run a churn schedule injects the
// production events the stack claims to survive:
//
//  * resurvey drift  — delta observations stream into MapUpdater::Ingest
//    and trip background rebuilds while queries are in flight;
//  * AP addition     — AddGlobalAps re-derives the venue at dimension
//    D + k and re-registers every shard (RegisterShard republish), so
//    in-flight old-width scans race a global dimension change;
//  * AP removal      — the inverse, back to dimension D.
//
// Measurement is scrape-deltas of the process obs registry — the same
// series operators would alert on — never hand-rolled timers: the clients
// only *feed* rmi_workload_* instruments, and the SLO report is computed
// from registry deltas captured around the run (latency and APE
// percentiles from Histogram bucket deltas, staleness from the updater's
// rmi_updater_staleness_us series).
#ifndef RMI_WORKLOAD_SOAK_H_
#define RMI_WORKLOAD_SOAK_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "workload/arrivals.h"
#include "workload/session.h"
#include "workload/trace.h"

namespace rmi::workload {

/// Mid-soak churn schedule. Events fire at fractions of the arrival
/// schedule's *virtual* duration (0 = start, 1 = end) on the soak's
/// compressed wall clock; an event past 1.0 (or a zero count) is disabled.
struct ChurnOptions {
  /// Resurvey drift: at `resurvey_at`, feed `resurvey_observations` fresh
  /// observations with `drift_db` Gaussian RSSI drift into each of the
  /// first `resurvey_shards` shards via MapUpdater::Ingest.
  double resurvey_at = 0.30;
  size_t resurvey_shards = 8;
  size_t resurvey_observations = 96;
  double drift_db = 1.5;
  /// Online AP addition: at `ap_add_at`, AddGlobalAps(ap_add_count) and
  /// re-register every shard at the widened dimension.
  double ap_add_at = 0.55;
  size_t ap_add_count = 2;
  /// Online AP removal: at `ap_remove_at`, drop the APs added above.
  double ap_remove_at = 0.80;
};

struct SoakOptions {
  SoakVenueOptions venue;
  WalkerOptions walkers;
  ArrivalScheduleOptions arrivals;
  FingerprintOptions fingerprint;
  SessionRoutingOptions session;
  ChurnOptions churn;
  /// Open-loop client threads; walker sessions are partitioned across
  /// them, so per-session scan order is stable regardless of scheduling.
  size_t client_threads = 4;
  /// Router fan-out pool width (ShardRouter's mixed-batch pool).
  size_t router_threads = 2;
  /// Updater rebuild pool width.
  size_t rebuild_threads = 2;
  /// Updater volume trigger (delta observations per shard).
  size_t min_new_observations = 64;
  /// Wall-clock compression: virtual seconds that elapse per wall second.
  /// The arrival schedule spans arrivals.duration_s of *virtual* time; the
  /// soak replays it in duration_s / time_scale wall seconds.
  double time_scale = 8.0;
  /// Root seed of the per-query scan-noise streams.
  uint64_t seed = 99;
};

/// The SLO report of one soak run. Latency/APE/staleness fields are
/// computed from obs-registry scrape deltas captured around the client
/// phase; counts cross-check the clients' own tallies against the
/// registry.
struct SoakReport {
  // Offered vs achieved load.
  size_t scheduled = 0;   ///< arrival instants in the schedule
  size_t sent = 0;        ///< queries actually issued
  size_t ok = 0;          ///< localized successfully
  size_t rejected = 0;    ///< hinted query rejected (width/validation)
  size_t unroutable = 0;  ///< no hint and the classifier had no verdict
  double wall_seconds = 0.0;
  double achieved_qps = 0.0;

  // Latency SLOs, ms (registry deltas of rmi_workload_query_latency_us).
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double p999_ms = 0.0;

  // Accuracy vs ground truth, meters (deltas of rmi_workload_ape_cm,
  // correct-shard answers only).
  double ape_p50_m = 0.0;
  double ape_p95_m = 0.0;

  // Handover / floor classification quality: fraction of answered queries
  // served by a shard other than the walker's true shard.
  double handover_error_rate = 0.0;
  size_t wrong_shard = 0;
  size_t session_switches = 0;  ///< completed sticky-shard handovers
  size_t true_transitions = 0;  ///< floor changes in the replayed traces

  // Snapshot freshness under churn, ms (deltas of
  // rmi_updater_staleness_us: first-pending-delta age at publish).
  double staleness_p50_ms = 0.0;
  double staleness_p95_ms = 0.0;

  // Churn accounting.
  size_t rebuilds_completed = 0;
  size_t rebuild_failures = 0;
  size_t publishes = 0;
  size_t dimension_changes = 0;  ///< AP add/remove republish sweeps
  size_t resurvey_observations = 0;

  size_t num_shards = 0;
  size_t num_aps_initial = 0;
};

/// Runs the soak described by `options` against a freshly built serving
/// stack (MarOnlyDifferentiator + LinearInterpolationImputer + KnnEstimator,
/// the standard serving bench backends). Deterministic workload per
/// (options, seed): venue, traces, arrival instants, and every scan are
/// bit-reproducible; wall-clock timing (and hence the latency SLOs) is not.
SoakReport RunSoak(const SoakOptions& options);

}  // namespace rmi::workload

#endif  // RMI_WORKLOAD_SOAK_H_
