#include "workload/trace.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/check.h"
#include "common/hash.h"
#include "common/missing.h"

namespace rmi::workload {

namespace {

/// Same decay law the synthetic venue generator uses, so churn-added APs
/// are statistically indistinguishable from the original scatter.
double DecayRssi(double distance_m, double extra_loss_db, double jitter_db) {
  return ClampRssi(-28.0 - 2.1 * distance_m - extra_loss_db + jitter_db);
}

/// Silences global AP `ap` on shard `shard`: column to the MNAR fill,
/// audibility entry dropped.
void SilenceAp(serving::VenueShard* shard, size_t ap) {
  rmap::RadioMap& map = shard->map;
  for (size_t i = 0; i < map.size(); ++i) {
    map.record(i).rssi[ap] = kMnarFillDbm;
  }
  auto& audible = shard->audible_aps;
  audible.erase(std::remove(audible.begin(), audible.end(), ap),
                audible.end());
}

}  // namespace

size_t SoakVenue::ShardIndex(const rmap::ShardId& id) const {
  const size_t guess = size_t(id.building) * options.floors_per_building +
                       size_t(id.floor);
  if (guess < shards.size() && shards[guess].id == id) return guess;
  for (size_t s = 0; s < shards.size(); ++s) {
    if (shards[s].id == id) return s;
  }
  RMI_CHECK(false);
  return shards.size();
}

SoakVenue MakeSoakVenue(const SoakVenueOptions& options) {
  serving::VenueOptions vopt;
  vopt.num_buildings = options.num_buildings;
  vopt.floors_per_building = options.floors_per_building;
  vopt.nx = options.nx;
  vopt.ny = options.ny;
  vopt.aps_per_floor = options.aps_per_floor;
  vopt.bleed_aps = options.bleed_aps;
  vopt.floor_attenuation_db = options.floor_attenuation_db;
  vopt.seed = options.seed;

  SoakVenue venue;
  venue.options = options;
  venue.shards = serving::MakeSyntheticVenue(vopt);
  venue.bluetooth.assign(venue.shards.size(), 0);

  // Convert the last N shards to Bluetooth-only floors: of the floor's own
  // AP block only `beacons` survive (as BLE beacons, with extra path
  // loss); the rest of the block goes dark venue-wide — on the floor
  // itself and as bleed-through on its neighbours.
  const size_t num_bt =
      std::min(options.bluetooth_floors, venue.shards.size());
  const size_t per_floor = options.aps_per_floor;
  for (size_t k = 0; k < num_bt; ++k) {
    const size_t s = venue.shards.size() - 1 - k;
    venue.bluetooth[s] = 1;
    const size_t block = s * per_floor;
    const size_t beacons = std::min(options.beacons_per_bluetooth_floor,
                                    per_floor);
    for (size_t a = 0; a < per_floor; ++a) {
      const size_t ap = block + a;
      if (a < beacons) {
        // Beacon: stays audible everywhere it was, minus BLE path loss.
        for (serving::VenueShard& shard : venue.shards) {
          for (size_t i = 0; i < shard.map.size(); ++i) {
            double& v = shard.map.record(i).rssi[ap];
            if (v > kMnarFillDbm) {
              v = ClampRssi(v - options.bluetooth_extra_path_loss_db);
            }
          }
        }
      } else {
        for (serving::VenueShard& shard : venue.shards) {
          SilenceAp(&shard, ap);
        }
      }
    }
    // The BLE floor also stops hearing Wi-Fi bleed-through from its
    // neighbours: the device on that floor scans beacons only.
    serving::VenueShard& bt = venue.shards[s];
    const std::vector<size_t> audible = bt.audible_aps;
    for (size_t ap : audible) {
      if (ap < block || ap >= block + beacons) SilenceAp(&bt, ap);
    }
  }
  return venue;
}

SoakVenue AddGlobalAps(const SoakVenue& venue, size_t count, uint64_t seed) {
  RMI_CHECK(!venue.shards.empty());
  const size_t d_old = venue.num_aps();
  const size_t d_new = d_old + count;
  Rng rng(SplitMix64Combine(seed, d_old));

  // Deterministic host floor + position per new AP (Bluetooth floors are
  // skipped as hosts — a new Wi-Fi AP lands on a Wi-Fi floor).
  std::vector<size_t> hosts(count);
  std::vector<geom::Point> positions(count);
  for (size_t k = 0; k < count; ++k) {
    size_t host = rng.Index(venue.shards.size());
    for (size_t tries = 0; venue.bluetooth[host] && tries < venue.shards.size();
         ++tries) {
      host = (host + 1) % venue.shards.size();
    }
    hosts[k] = host;
    positions[k] = {rng.Uniform(0.0, double(venue.options.nx - 1)),
                    rng.Uniform(0.0, double(venue.options.ny - 1))};
  }

  SoakVenue next;
  next.options = venue.options;
  next.bluetooth = venue.bluetooth;
  next.shards.reserve(venue.shards.size());
  for (size_t s = 0; s < venue.shards.size(); ++s) {
    const serving::VenueShard& old_shard = venue.shards[s];
    serving::VenueShard shard;
    shard.id = old_shard.id;
    shard.audible_aps = old_shard.audible_aps;
    rmap::RadioMap map(d_new);
    map.set_shard(shard.id);
    for (size_t i = 0; i < old_shard.map.size(); ++i) {
      rmap::Record r = old_shard.map.record(i);
      r.rssi.resize(d_new, kMnarFillDbm);
      for (size_t k = 0; k < count; ++k) {
        if (hosts[k] != s) continue;
        const double d = geom::Distance(r.rp, positions[k]);
        r.rssi[d_old + k] = DecayRssi(d, 0.0, rng.Uniform(-1.5, 1.5));
      }
      map.Add(std::move(r));
    }
    shard.map = std::move(map);
    for (size_t k = 0; k < count; ++k) {
      if (hosts[k] == s) shard.audible_aps.push_back(d_old + k);
    }
    next.shards.push_back(std::move(shard));
  }
  return next;
}

SoakVenue RemoveLastGlobalAps(const SoakVenue& venue, size_t count) {
  RMI_CHECK(!venue.shards.empty());
  RMI_CHECK_LT(count, venue.num_aps());
  const size_t d_new = venue.num_aps() - count;

  SoakVenue next;
  next.options = venue.options;
  next.bluetooth = venue.bluetooth;
  next.shards.reserve(venue.shards.size());
  for (const serving::VenueShard& old_shard : venue.shards) {
    serving::VenueShard shard;
    shard.id = old_shard.id;
    rmap::RadioMap map(d_new);
    map.set_shard(shard.id);
    for (size_t i = 0; i < old_shard.map.size(); ++i) {
      rmap::Record r = old_shard.map.record(i);
      r.rssi.resize(d_new);
      map.Add(std::move(r));
    }
    shard.map = std::move(map);
    for (size_t ap : old_shard.audible_aps) {
      if (ap < d_new) shard.audible_aps.push_back(ap);
    }
    next.shards.push_back(std::move(shard));
  }
  return next;
}

std::vector<rmap::Record> MakeResurveyObservations(const SoakVenue& venue,
                                                   size_t shard_index,
                                                   size_t count,
                                                   double drift_db,
                                                   double time_base,
                                                   uint64_t seed) {
  RMI_CHECK_LT(shard_index, venue.shards.size());
  const rmap::RadioMap& truth = venue.shards[shard_index].map;
  Rng rng(SplitMix64Combine(seed, shard_index));
  std::vector<rmap::Record> out;
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    rmap::Record r = truth.record(rng.Index(truth.size()));
    r.id = rmap::Record::kUnassignedId;
    r.time = time_base + double(i);
    for (double& v : r.rssi) {
      if (v > kMnarFillDbm) {
        v = ClampRssi(v + rng.Gaussian(0.0, drift_db));
      }
    }
    out.push_back(std::move(r));
  }
  return out;
}

TraceKey WalkerTrace::At(double t) const {
  RMI_CHECK(!keys.empty());
  if (t <= keys.front().t) {
    TraceKey k = keys.front();
    k.t = std::max(t, start_s);
    return k;
  }
  if (t >= keys.back().t) {
    TraceKey k = keys.back();
    k.t = std::min(t, end_s);
    return k;
  }
  const auto it = std::upper_bound(
      keys.begin(), keys.end(), t,
      [](double value, const TraceKey& k) { return value < k.t; });
  const TraceKey& b = *it;
  const TraceKey& a = *(it - 1);
  TraceKey k;
  k.t = t;
  if (a.shard == b.shard) {
    const double span = b.t - a.t;
    const double f = span > 0.0 ? (t - a.t) / span : 0.0;
    k.shard = a.shard;
    k.pos = {a.pos.x + f * (b.pos.x - a.pos.x),
             a.pos.y + f * (b.pos.y - a.pos.y)};
  } else {
    // Portal dwell: the walker holds the portal position and is counted on
    // the origin floor until the transition keyframe.
    k.shard = a.shard;
    k.pos = a.pos;
  }
  return k;
}

size_t WalkerTrace::FloorTransitions() const {
  size_t n = 0;
  for (size_t i = 1; i < keys.size(); ++i) {
    n += keys[i].shard != keys[i - 1].shard;
  }
  return n;
}

std::vector<WalkerTrace> GenerateWalkers(const SoakVenue& venue,
                                         const WalkerOptions& options) {
  RMI_CHECK(!venue.shards.empty());
  const double max_x = double(venue.options.nx - 1);
  const double max_y = double(venue.options.ny - 1);
  const size_t floors = venue.options.floors_per_building;

  std::vector<WalkerTrace> walkers;
  walkers.reserve(options.num_walkers);
  for (size_t w = 0; w < options.num_walkers; ++w) {
    // Each trace draws from its own stream: trace w is a pure function of
    // (venue, options, seed, w) no matter who generates which walker.
    Rng rng(SplitMix64Combine(options.seed, w));
    WalkerTrace trace;
    trace.walker = w;
    // Unit draw in [-0.5, 0.5]; SynthesizeFingerprint scales it by
    // FingerprintOptions::device_bias_db_range.
    trace.device_bias_db = rng.Uniform(-0.5, 0.5);

    const double len = options.duration_s *
                       rng.Uniform(options.min_session_fraction,
                                   options.max_session_fraction);
    trace.start_s =
        rng.Uniform(0.0, std::max(0.0, options.duration_s - len));
    trace.end_s = std::min(options.duration_s, trace.start_s + len);

    rmap::ShardId shard = venue.shards[rng.Index(venue.num_shards())].id;
    geom::Point pos{rng.Uniform(0.0, max_x), rng.Uniform(0.0, max_y)};
    double t = trace.start_s;
    trace.keys.push_back({t, shard, pos});

    while (t < trace.end_s) {
      const double speed =
          rng.Uniform(options.min_speed_mps, options.max_speed_mps);
      const bool can_change_floor = floors > 1;
      if (can_change_floor && rng.Bernoulli(options.floor_change_probability)) {
        // Head for a portal (stairwell at the origin corner, elevator at
        // the far corner), transit, emerge one floor up or down at the
        // same spot.
        const geom::Point portal = rng.Bernoulli(0.5)
                                       ? geom::Point{0.0, 0.0}
                                       : geom::Point{max_x, max_y};
        int32_t next_floor = shard.floor + (rng.Bernoulli(0.5) ? 1 : -1);
        if (next_floor < 0) next_floor = 1;
        if (next_floor >= int32_t(floors)) next_floor = int32_t(floors) - 2;
        const double walk = geom::Distance(pos, portal) / speed;
        const double t_portal = t + std::max(walk, 1e-3);
        trace.keys.push_back({t_portal, shard, portal});
        const double t_out = t_portal + options.portal_dwell_s;
        shard = rmap::ShardId{shard.building, next_floor};
        trace.keys.push_back({t_out, shard, portal});
        pos = portal;
        t = t_out;
      } else {
        const geom::Point wp{rng.Uniform(0.0, max_x),
                             rng.Uniform(0.0, max_y)};
        const double walk = geom::Distance(pos, wp) / speed;
        const double t_wp = t + std::max(walk, 1e-3);
        trace.keys.push_back({t_wp, shard, wp});
        pos = wp;
        t = t_wp;
        const double pause = rng.Uniform(0.0, options.max_pause_s);
        if (pause > 0.0) {
          t += pause;
          trace.keys.push_back({t, shard, pos});
        }
      }
    }
    // The last leg overshoots the drawn session length; the session ends
    // where the trajectory actually ends, so keys span exactly
    // [start_s, end_s].
    trace.end_s = trace.keys.back().t;
    walkers.push_back(std::move(trace));
  }
  return walkers;
}

std::vector<double> SynthesizeFingerprint(const SoakVenue& venue,
                                          const TraceKey& truth,
                                          double device_bias_db,
                                          const FingerprintOptions& options,
                                          Rng& rng) {
  const size_t s = venue.ShardIndex(truth.shard);
  const serving::VenueShard& shard = venue.shards[s];
  const size_t d = venue.num_aps();

  // The floor's references sit on a 1 m grid in row-major (y, x) order —
  // the nearest reference is an O(1) index computation, not a search.
  const size_t nx = venue.options.nx;
  const auto clamp_idx = [](double v, size_t n) {
    const long i = std::lround(v);
    if (i < 0) return size_t(0);
    if (size_t(i) >= n) return n - 1;
    return size_t(i);
  };
  const size_t gx = clamp_idx(truth.pos.x, nx);
  const size_t gy = clamp_idx(truth.pos.y, venue.options.ny);
  const rmap::Record& ref = shard.map.record(gy * nx + gx);

  const double bias = device_bias_db * options.device_bias_db_range;
  std::vector<double> fp(d, kNull);
  size_t observed = 0;
  size_t first_live = d;
  for (size_t ap : shard.audible_aps) {
    const double v = ref.rssi[ap];
    if (v <= kMnarFillDbm) continue;  // column silenced by churn
    if (first_live == d) first_live = ap;
    if (rng.Bernoulli(options.drop_rate)) continue;
    fp[ap] = ClampRssi(v + bias +
                       rng.Uniform(-options.jitter_db, options.jitter_db));
    ++observed;
  }
  if (observed == 0 && first_live < d) {  // a scan is never all-null
    fp[first_live] = ClampRssi(ref.rssi[first_live] + bias);
  }
  return fp;
}

}  // namespace rmi::workload
