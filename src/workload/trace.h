// Mobility-trace workload substrate: the venue-scale world model behind
// the soak harness (bench_soak) and the scenario-breadth tests.
//
// Three pieces, all deterministic pure functions of (options, seed):
//
//  * SoakVenue — a 50-200-shard multi-building venue built on
//    serving::MakeSyntheticVenue, extended with the churn operators the
//    soak injects mid-run: AddGlobalAps (a new AP appears and *widens the
//    global fingerprint dimension* of every shard), RemoveLastGlobalAps
//    (the inverse), and Bluetooth-only floors (a handful of beacons
//    instead of a Wi-Fi AP block — Table VIII's scenario).
//
//  * WalkerTrace — one device's trajectory through the venue as
//    timestamped keyframes (the DisruptaBLE kth_walkers shape: a walker
//    trace is a stream of timestamped create/move/transition events).
//    Walkers follow waypoint paths inside their floor rectangle and cross
//    floors through stairwell/elevator portals with a dwell, so a
//    trajectory carries genuine cross-shard handovers. At(t) recovers the
//    ground-truth (shard, position) at any instant — the soak's APE and
//    handover-error reference.
//
//  * SynthesizeFingerprint — what the device's radio actually reports at a
//    trace point: the nearest reference fingerprint of the true shard,
//    per-device calibration bias, per-scan jitter, and dropout, restricted
//    to the APs audible on that floor.
#ifndef RMI_WORKLOAD_TRACE_H_
#define RMI_WORKLOAD_TRACE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "geometry/geometry.h"
#include "radiomap/radio_map.h"
#include "serving/synthetic.h"

namespace rmi::workload {

struct SoakVenueOptions {
  /// Venue scale: num_buildings * floors_per_building shards. The soak
  /// acceptance bar is >= 50 shards; tests and --smoke shrink this.
  size_t num_buildings = 10;
  size_t floors_per_building = 5;
  /// Reference grid per floor (1 m pitch).
  size_t nx = 12;
  size_t ny = 9;
  size_t aps_per_floor = 8;
  size_t bleed_aps = 3;
  double floor_attenuation_db = 18.0;
  /// The last `bluetooth_floors` shards (ShardId order) are converted to
  /// Bluetooth-only coverage: `beacons_per_bluetooth_floor` of their own
  /// APs stay audible (with BLE's extra path loss), everything else —
  /// including bleed-through from neighbours — goes silent. Queries from
  /// such a floor observe only a handful of dimensions.
  size_t bluetooth_floors = 1;
  size_t beacons_per_bluetooth_floor = 4;
  double bluetooth_extra_path_loss_db = 6.0;
  uint64_t seed = 1;
};

/// A venue generation: the shard maps the updater serves from plus the
/// workload-facing audibility metadata. Churn operators produce *new*
/// generations (value semantics), so the soak can hold several and swap an
/// atomic pointer between them while clients are in flight.
struct SoakVenue {
  SoakVenueOptions options;
  std::vector<serving::VenueShard> shards;
  /// Per-shard Bluetooth-only flag, aligned with `shards`.
  std::vector<uint8_t> bluetooth;

  size_t num_shards() const { return shards.size(); }
  size_t num_aps() const {
    return shards.empty() ? 0 : shards.front().map.num_aps();
  }
  /// Index into `shards` of `id` (shards are in ascending ShardId order).
  size_t ShardIndex(const rmap::ShardId& id) const;
};

SoakVenue MakeSoakVenue(const SoakVenueOptions& options);

/// Online AP addition — the dimension-changing churn event: `count` new
/// APs are mounted on deterministic host floors and every shard's map is
/// re-derived at global dimension D + count (non-host shards hold the
/// -100 dBm MNAR fill in the new columns). Republishing the result makes
/// every in-flight old-width query either classify against the (skipped)
/// stale profiles or be cleanly rejected by snapshot validation — never a
/// torn read.
SoakVenue AddGlobalAps(const SoakVenue& venue, size_t count, uint64_t seed);

/// Online AP removal — the inverse event: the last `count` global AP
/// columns are dropped and the dimension shrinks back to D - count.
SoakVenue RemoveLastGlobalAps(const SoakVenue& venue, size_t count);

/// Resurvey drift: `count` fresh survey observations of shard
/// `shard_index`, drawn from its reference rows with `drift_db` Gaussian
/// RSSI drift — the MapUpdater::Ingest feed of the soak's churn phase.
std::vector<rmap::Record> MakeResurveyObservations(const SoakVenue& venue,
                                                   size_t shard_index,
                                                   size_t count,
                                                   double drift_db,
                                                   double time_base,
                                                   uint64_t seed);

struct WalkerOptions {
  size_t num_walkers = 512;
  /// Virtual timeline the walkers live on, seconds. Sessions start inside
  /// [0, duration_s] and end when their last waypoint leg completes (the
  /// final leg may overshoot slightly); the soak maps this span onto wall
  /// time and At() clamps outside it.
  double duration_s = 300.0;
  /// Session length drawn uniform from this fraction range of duration_s.
  double min_session_fraction = 0.25;
  double max_session_fraction = 0.6;
  double min_speed_mps = 0.6;
  double max_speed_mps = 1.4;
  /// Per-waypoint probability of heading for a portal and changing floors
  /// (only within the walker's building).
  double floor_change_probability = 0.15;
  /// Pause at a reached waypoint, uniform [0, max].
  double max_pause_s = 4.0;
  /// Stairwell/elevator transit time between floors.
  double portal_dwell_s = 5.0;
  uint64_t seed = 7;
};

/// One trajectory keyframe: the walker is at `pos` on `shard` at virtual
/// time `t`. Between consecutive same-shard keyframes the position is the
/// linear interpolation; across a floor transition the walker holds the
/// portal position for the dwell and switches shard at the later keyframe.
struct TraceKey {
  double t = 0.0;
  rmap::ShardId shard;
  geom::Point pos;
};

struct WalkerTrace {
  size_t walker = 0;
  double start_s = 0.0;
  double end_s = 0.0;
  /// Per-device RSSI calibration bias as a unit draw in [-0.5, 0.5]
  /// (constant for the session); SynthesizeFingerprint scales it by
  /// FingerprintOptions::device_bias_db_range.
  double device_bias_db = 0.0;
  std::vector<TraceKey> keys;  ///< time-ascending, first at start_s

  /// Ground truth at virtual time `t` (clamped into [start_s, end_s]).
  TraceKey At(double t) const;
  /// Number of shard changes along the trajectory.
  size_t FloorTransitions() const;
  bool ActiveAt(double t) const { return t >= start_s && t <= end_s; }
};

/// Deterministic per-seed walker population: trace i is a pure function of
/// (venue options, walker options, seed, i) — bit-reproducible regardless
/// of call site or thread.
std::vector<WalkerTrace> GenerateWalkers(const SoakVenue& venue,
                                         const WalkerOptions& options);

struct FingerprintOptions {
  double jitter_db = 2.0;
  /// Per-AP dropout probability of an audible AP in one scan.
  double drop_rate = 0.25;
  /// Device calibration bias range: each walker's constant offset is drawn
  /// uniform from [-range/2, +range/2] dB.
  double device_bias_db_range = 3.0;
};

/// The device's scan at trace point `truth`: the true shard's nearest
/// reference fingerprint (grid lookup, O(1)) with the device bias, per-AP
/// jitter, and dropout applied; APs inaudible on the floor stay kNull. At
/// least one AP is always observed. Width = venue.num_aps() of *this*
/// generation, so a venue swap changes what in-flight devices report.
std::vector<double> SynthesizeFingerprint(const SoakVenue& venue,
                                          const TraceKey& truth,
                                          double device_bias_db,
                                          const FingerprintOptions& options,
                                          Rng& rng);

}  // namespace rmi::workload

#endif  // RMI_WORKLOAD_TRACE_H_
