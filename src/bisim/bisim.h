// BiSIM — Bidirectional Sequence-to-Sequence Imputation Model (paper
// Section IV; the core contribution).
//
// Architecture (per direction): encoder units over the fingerprint sequence
// (Eqs. 2-5, with the time-lag decay of Eq. 1/4), decoder units over the RP
// sequence (Eqs. 6-8), connected by the final encoder latent (s_0 = h_T) and
// a sparsity-friendly Bahdanau attention (Eqs. 9-12). Forward and backward
// passes are averaged (Eq. 13); the loss is
// L_forward + L_backward + L_cross over observed entries of the *predicted*
// vectors f'/l' (Section IV-D).
//
// Dimension note: Eq. 9 multiplies the transformed encoder latent h'_i
// elementwise with the fingerprint mask m_i, which requires the attention
// projection W_a to map the hidden size H to the fingerprint size D; the
// context vector c_j therefore lives in R^D.
#ifndef RMI_BISIM_BISIM_H_
#define RMI_BISIM_BISIM_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "autodiff/optimizer.h"
#include "autodiff/tensor.h"
#include "common/rng.h"
#include "imputers/imputer.h"
#include "la/matrix.h"
#include "nn/layers.h"
#include "radiomap/radio_map.h"

namespace rmi::bisim {

/// Model/training configuration (paper defaults in Section V-C; scaled-down
/// defaults here keep CPU-only training inside the bench budget).
struct BiSimConfig {
  size_t hidden = 24;            ///< latent size (paper: 64)
  size_t attention_hidden = 24;  ///< alignment-MLP hidden size
  size_t seq_len = 5;            ///< T (paper-tuned optimum)
  size_t epochs = 25;            ///< paper: 500
  /// Warm-start fine-tune schedule: when ImputeIncremental is handed the
  /// previous rebuild's trained weights (BiSimWarmState), training runs
  /// this many epochs instead of `epochs`. The accuracy budget of the
  /// shortcut is bounded by the incremental-imputation tests.
  size_t fine_tune_epochs = 6;
  /// Sequences accumulated per Adam step. The paper uses 32 with 500
  /// epochs; with the reduced CPU epoch budgets here, smaller batches give
  /// the optimizer enough steps to converge.
  size_t batch_size = 8;
  double lr = 4e-3;
  double grad_clip = 5.0;
  uint64_t seed = 11;
  /// Training/inference worker threads: 0 = all hardware threads, 1 =
  /// serial (bit-identical to the reference single-thread path). Each
  /// worker runs whole sequences forward/backward; per-thread gradient
  /// shards are merged in fixed order before every Adam step, so results
  /// are reproducible for a given thread count (and agree across thread
  /// counts to floating-point reassociation tolerance).
  size_t num_threads = 0;

  /// Attention variants (Fig. 17 ablation).
  enum class Attention {
    kSparsityFriendly,  ///< adapted Bahdanau (ours, Eqs. 9-12)
    kClassicBahdanau,   ///< no mask on h'
    kNone,              ///< zero context vector
  };
  Attention attention = Attention::kSparsityFriendly;

  /// Time-lag variants (Fig. 18 ablation).
  enum class TimeLag {
    kEncoder,  ///< ours: decay on h only
    kDecoder,  ///< decay on s only
    kBoth,
    kNone,
  };
  TimeLag time_lag = TimeLag::kEncoder;

  /// Feature normalization: RSSI -> (v+100)/100, location -> loc * loc_scale,
  /// time lag -> dt * time_scale.
  double loc_scale = 1.0 / 60.0;
  double time_scale = 0.1;
};

/// Prepared input features for one sequence slice (all 1 x K row matrices).
struct StepFeatures {
  la::Matrix f;        ///< 1 x D normalized fingerprint (nulls as 0)
  la::Matrix m;        ///< 1 x D amended mask (1 observed/MNAR-filled, 0 MAR)
  /// 1 x D *observation* mask: 1 only for genuinely measured RSSIs — MNAR
  /// fills (-100 dBm) are synthetic, not observations. This is the mask the
  /// sparsity-friendly attention (Eq. 9) applies: the attention should focus
  /// on what was actually seen, not on the fill value.
  la::Matrix m_att;
  la::Matrix delta;    ///< 1 x D time-lag vector (Eq. 1), scaled
  la::Matrix l;        ///< 1 x 2 normalized RP (null as 0)
  la::Matrix k;        ///< 1 x 2 RP mask
  la::Matrix delta_l;  ///< 1 x 2 decoder time-lag (ablation variants only)
  double time = 0.0;   ///< collection time, scaled by time_scale
  size_t record_index = 0;
};
using Sequence = std::vector<StepFeatures>;

/// Builds normalized, sliced sequences (with Eq. 1 time lags) from a radio
/// map and its amended mask.
std::vector<Sequence> BuildSequences(const rmap::RadioMap& map,
                                     const rmap::MaskMatrix& amended_mask,
                                     const BiSimConfig& config);

/// The trainable network.
class BiSimModel {
 public:
  BiSimModel(size_t num_aps, const BiSimConfig& config, Rng& rng);

  struct SequenceOutput {
    /// Combined (f^c / l^c averaged over directions) imputations per step,
    /// in sequence order; plain values, detached from the graph.
    std::vector<la::Matrix> f_hat;
    std::vector<la::Matrix> l_hat;
    /// Scalar training loss node (defined when compute_loss).
    ad::Tensor loss;
  };

  /// Runs the bidirectional model over one sequence.
  SequenceOutput Forward(const Sequence& seq, bool compute_loss) const;

  std::vector<ad::Tensor> Params() const;
  const BiSimConfig& config() const { return config_; }
  size_t num_aps() const { return num_aps_; }

 private:
  struct DirectionOutput {
    std::vector<ad::Tensor> f_pred, f_comb;  // f', f^c per step
    std::vector<ad::Tensor> l_pred, l_comb;  // l', l^c per step
  };
  /// One direction; `reversed` feeds the sequence backwards but reports
  /// outputs re-aligned to original positions.
  DirectionOutput RunDirection(const Sequence& seq, bool reversed) const;

  size_t num_aps_;
  BiSimConfig config_;

  // Encoder (Eqs. 2-5). Eq. 5 writes the recurrence in shorthand; the text
  // specifies the input "is passed to a standard LSTM cell", which is what
  // we use (a plain sigmoid recurrence saturates and cannot carry the
  // positional state the decoder needs).
  ad::Tensor w_f_, b_f_;        ///< H x D, 1 x D — latent -> fingerprint
  ad::Tensor w_gamma_, b_gamma_;///< D x H, 1 x H — time-lag decay (Eq. 4)
  nn::LstmCell enc_cell_;       ///< input f^c ⊕ m (2D), hidden H (Eq. 5)
  ad::Tensor h0_;               ///< 1 x H initial latent (paper: randomized)
  // Decoder (Eqs. 6-8).
  ad::Tensor w_l_, b_l_;        ///< H x 2, 1 x 2
  nn::LstmCell dec_cell_;       ///< input l^c ⊕ c (2 + D), hidden H (Eq. 8)
  ad::Tensor w_gamma_s_, b_gamma_s_;  ///< 2 x H, 1 x H (decoder time lag)
  // Attention (Eqs. 9-12).
  ad::Tensor w_a_, b_a_;        ///< H x D, 1 x D
  nn::Mlp align_;               ///< (H + D) -> A -> 1 alignment MLP (Eq. 10)
};

/// Trains `model` on the prepared sequences with Adam + gradient clipping
/// (reconstruction objective; no held-out ground truth needed). Returns the
/// mean training loss of the final epoch.
double TrainBiSim(const BiSimModel& model, const std::vector<Sequence>& seqs,
                  const BiSimConfig& config, Rng& rng);

/// Warm-start blob carried between a shard's consecutive rebuilds: the
/// previous snapshot's trained weights. Owned by the caller (via
/// imputers::IncrementalContext), never by the imputer — see ImputerState.
class BiSimWarmState : public imputers::ImputerState {
 public:
  size_t num_aps = 0;
  size_t hidden = 0;
  std::vector<la::Matrix> weights;  ///< SnapshotParams order of Params()
};

/// Trains a BiSIM model on a radio map (reconstruction objective; no
/// held-out ground truth needed) and imputes MAR cells and null RPs.
class BiSimImputer : public imputers::Imputer {
 public:
  explicit BiSimImputer(BiSimConfig config) : config_(config) {}

  rmap::RadioMap Impute(const rmap::RadioMap& map,
                        const rmap::MaskMatrix& amended_mask,
                        Rng& rng) const override;

  /// Trainable-state warm start: restores the previous rebuild's weights
  /// from ctx.previous_state (a BiSimWarmState of matching architecture)
  /// and fine-tunes for config.fine_tune_epochs instead of full epochs,
  /// re-imputing the whole merged map with the refreshed model; deposits
  /// the new weights in ctx.state_out. A missing/foreign/mis-shaped state
  /// falls back to cold training (still exporting state for next time).
  rmap::RadioMap ImputeIncremental(const rmap::RadioMap& merged,
                                   const rmap::MaskMatrix& amended_mask,
                                   const imputers::IncrementalContext& ctx,
                                   Rng& rng) const override;

  std::string name() const override { return "BiSIM"; }

  /// Mean training loss of the final epoch of the last Impute call. When
  /// Impute runs concurrently on several threads (e.g. fanned-out bench
  /// repeats sharing one imputer), this reports whichever call finished
  /// last — atomic so concurrent Impute calls stay well-defined.
  double last_training_loss() const {
    return last_loss_.load(std::memory_order_relaxed);
  }

 private:
  /// Shared train-and-impute body. `warm_weights` (optional) switches
  /// training to the fine-tune schedule; `state_out` (optional) receives
  /// the trained weights as a BiSimWarmState.
  rmap::RadioMap TrainAndImpute(
      const rmap::RadioMap& map, const rmap::MaskMatrix& amended_mask,
      Rng& rng, const std::vector<la::Matrix>* warm_weights,
      std::shared_ptr<const imputers::ImputerState>* state_out) const;

  BiSimConfig config_;
  mutable std::atomic<double> last_loss_{0.0};
};

/// Online fingerprint imputation — the paper's Section VII future-work
/// item: completing the *online* fingerprint measured by a user's device at
/// location-estimation time, using a BiSIM model trained once on the
/// offline radio map. The online scan is imputed either standalone or in
/// the temporal context of the device's recent scans.
class OnlineBiSimImputer {
 public:
  explicit OnlineBiSimImputer(BiSimConfig config) : config_(config) {}

  /// Trains the model on the offline radio map (amended mask: MNARs already
  /// filled; see imputers::FillMnar).
  void Fit(const rmap::RadioMap& map, const rmap::MaskMatrix& amended_mask,
           Rng& rng);

  /// Completes one online fingerprint (nulls imputed; observed preserved).
  /// `recent_scans` optionally supplies the device's preceding scans
  /// (oldest first, with seconds-ago timestamps) as sequence context.
  struct TimedScan {
    std::vector<double> rssi;  ///< with nulls
    double time = 0.0;         ///< seconds on the device's clock
  };
  std::vector<double> ImputeFingerprint(
      const TimedScan& online,
      const std::vector<TimedScan>& recent_scans = {}) const;

  bool fitted() const { return model_ != nullptr; }
  double training_loss() const { return training_loss_; }

 private:
  BiSimConfig config_;
  std::unique_ptr<BiSimModel> model_;
  double training_loss_ = 0.0;
};

}  // namespace rmi::bisim

#endif  // RMI_BISIM_BISIM_H_
