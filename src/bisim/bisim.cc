#include "bisim/bisim.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <utility>

#include "common/check.h"
#include "common/missing.h"
#include "common/thread_pool.h"
#include "la/kernels.h"

namespace rmi::bisim {

using ad::Tensor;

namespace {

/// RSSI normalization: [-100, 0] dBm -> [0, 1].
double NormRssi(double v) { return (v + 100.0) / 100.0; }
double DenormRssi(double v) { return v * 100.0 - 100.0; }

}  // namespace

std::vector<Sequence> BuildSequences(const rmap::RadioMap& map,
                                     const rmap::MaskMatrix& amended_mask,
                                     const BiSimConfig& config) {
  const size_t d = map.num_aps();
  std::vector<Sequence> out;
  for (const std::vector<size_t>& path : map.PathSequences()) {
    // Build the full path sequence, then slice into chunks of seq_len.
    for (size_t start = 0; start < path.size(); start += config.seq_len) {
      const size_t end = std::min(start + config.seq_len, path.size());
      Sequence seq;
      seq.reserve(end - start);
      la::Matrix prev_delta(1, d);
      la::Matrix prev_m(1, d, 1.0);
      double prev_time = 0.0;
      for (size_t t = start; t < end; ++t) {
        const rmap::Record& r = map.record(path[t]);
        StepFeatures sf;
        sf.record_index = path[t];
        sf.time = r.time * config.time_scale;
        sf.f = la::Matrix(1, d);
        sf.m = la::Matrix(1, d);
        sf.m_att = la::Matrix(1, d);
        sf.delta = la::Matrix(1, d);
        for (size_t j = 0; j < d; ++j) {
          const bool observed =
              amended_mask.at(path[t], j) == rmap::MaskValue::kObserved;
          RMI_CHECK(!observed || !IsNull(r.rssi[j]));
          sf.m(0, j) = observed ? 1.0 : 0.0;
          sf.f(0, j) = observed ? NormRssi(r.rssi[j]) : 0.0;
          // Genuine measurements are clamped to >= -99 dBm; the exact -100
          // value only arises from the MNAR fill.
          sf.m_att(0, j) =
              (observed && r.rssi[j] > kMnarFillDbm + 0.5) ? 1.0 : 0.0;
          if (t == start) {
            sf.delta(0, j) = 0.0;  // Eq. 1, first unit
          } else {
            const double dt = (r.time - prev_time) * config.time_scale;
            sf.delta(0, j) =
                prev_m(0, j) == 1.0 ? dt : prev_delta(0, j) + dt;
          }
        }
        sf.l = la::Matrix(1, 2);
        sf.k = la::Matrix(1, 2);
        if (r.has_rp) {
          sf.l(0, 0) = r.rp.x * config.loc_scale;
          sf.l(0, 1) = r.rp.y * config.loc_scale;
          sf.k(0, 0) = sf.k(0, 1) = 1.0;
        }
        sf.delta_l = la::Matrix(1, 2);
        if (t != start) {
          const double dt = (r.time - prev_time) * config.time_scale;
          const StepFeatures& prev_sf = seq.back();
          for (size_t j = 0; j < 2; ++j) {
            sf.delta_l(0, j) =
                prev_sf.k(0, j) == 1.0 ? dt : prev_sf.delta_l(0, j) + dt;
          }
        }
        prev_delta = sf.delta;
        prev_m = sf.m;
        prev_time = r.time;
        seq.push_back(std::move(sf));
      }
      if (!seq.empty()) out.push_back(std::move(seq));
    }
  }
  return out;
}

BiSimModel::BiSimModel(size_t num_aps, const BiSimConfig& config, Rng& rng)
    : num_aps_(num_aps), config_(config) {
  const size_t d = num_aps;
  const size_t h = config.hidden;
  w_f_ = Tensor::Param(nn::XavierInit(h, d, rng));
  b_f_ = Tensor::Param(la::Matrix(1, d));
  w_gamma_ = Tensor::Param(nn::XavierInit(d, h, rng));
  b_gamma_ = Tensor::Param(la::Matrix(1, h));
  enc_cell_ = nn::LstmCell(2 * d, h, rng);
  h0_ = Tensor::Param(la::Matrix::Gaussian(1, h, rng, 0.1));
  w_l_ = Tensor::Param(nn::XavierInit(h, 2, rng));
  b_l_ = Tensor::Param(la::Matrix(1, 2));
  dec_cell_ = nn::LstmCell(2 + d, h, rng);
  w_gamma_s_ = Tensor::Param(nn::XavierInit(2, h, rng));
  b_gamma_s_ = Tensor::Param(la::Matrix(1, h));
  w_a_ = Tensor::Param(nn::XavierInit(h, d, rng));
  b_a_ = Tensor::Param(la::Matrix(1, d));
  align_ = nn::Mlp({h + d, config.attention_hidden, 1}, rng);
}

std::vector<Tensor> BiSimModel::Params() const {
  std::vector<Tensor> p = {w_f_, b_f_, w_gamma_, b_gamma_, h0_, w_l_, b_l_,
                           w_gamma_s_, b_gamma_s_, w_a_, b_a_};
  nn::AppendParams(&p, enc_cell_.Params());
  nn::AppendParams(&p, dec_cell_.Params());
  nn::AppendParams(&p, align_.Params());
  return p;
}

BiSimModel::DirectionOutput BiSimModel::RunDirection(const Sequence& seq,
                                                     bool reversed) const {
  const size_t t_len = seq.size();
  const size_t d = num_aps_;
  const bool enc_lag = config_.time_lag == BiSimConfig::TimeLag::kEncoder ||
                       config_.time_lag == BiSimConfig::TimeLag::kBoth;
  const bool dec_lag = config_.time_lag == BiSimConfig::TimeLag::kDecoder ||
                       config_.time_lag == BiSimConfig::TimeLag::kBoth;

  // Order of original positions this direction visits. Note: the time-lag
  // vectors are direction-specific (Eq. 1 over the reversed sequence); we
  // recompute them for the backward pass from the stored per-step data.
  std::vector<size_t> order(t_len);
  for (size_t t = 0; t < t_len; ++t) order[t] = reversed ? t_len - 1 - t : t;

  DirectionOutput out;
  out.f_pred.resize(t_len);
  out.f_comb.resize(t_len);
  out.l_pred.resize(t_len);
  out.l_comb.resize(t_len);

  // ---- Encoder over the fingerprint sequence.
  std::vector<Tensor> latents(t_len);  // h_1..h_T
  nn::LstmCell::State enc_state{h0_, enc_cell_.InitialState().c};
  la::Matrix prev_delta(1, d);  // recomputed lags for the visiting order
  la::Matrix prev_m(1, d, 1.0);
  for (size_t t = 0; t < t_len; ++t) {
    const StepFeatures& sf = seq[order[t]];
    // Direction-specific time lag: Eq. 1 applied along the visiting order
    // (the backward pass sees the sequence reversed, so its lags track the
    // time to the *next* observation in original order).
    la::Matrix delta(1, d);
    if (t > 0) {
      const double dt_raw =
          std::fabs(seq[order[t]].time - seq[order[t - 1]].time);
      for (size_t j = 0; j < d; ++j) {
        delta(0, j) = prev_m(0, j) == 1.0 ? dt_raw : prev_delta(0, j) + dt_raw;
      }
    }
    prev_delta = delta;
    prev_m = sf.m;

    Tensor m = Tensor::Constant(sf.m);

    // Eq. 2: f' from the previous latent (fused affine node).
    Tensor f_prime = ad::Affine(enc_state.h, w_f_, b_f_);
    // Eq. 3: combination (fused mask-combine kernel).
    Tensor f_comb = ad::MaskCombine(sf.m, sf.f, f_prime);
    // Eq. 4: temporal decay (vector-valued, applied to h elementwise).
    if (enc_lag) {
      Tensor gamma = ad::Exp(ad::Scale(
          ad::Relu(ad::Affine(Tensor::Constant(delta), w_gamma_, b_gamma_)),
          -1.0));
      enc_state.h = ad::Mul(enc_state.h, gamma);
    }
    // Eq. 5: recurrent update (standard LSTM cell per the paper's text).
    enc_state = enc_cell_.Forward(ad::ConcatCols(f_comb, m), enc_state);
    latents[t] = enc_state.h;
    out.f_pred[order[t]] = f_prime;
    out.f_comb[order[t]] = f_comb;
  }

  // ---- Attention precomputation (Eqs. 9): h''_i per encoder step,
  // stacked into one T x D operand so every decoder step runs the
  // alignment MLP as a single batched pass.
  Tensor h_att_stack;
  if (config_.attention != BiSimConfig::Attention::kNone) {
    for (size_t t = 0; t < t_len; ++t) {
      Tensor h_proj = ad::Affine(latents[t], w_a_, b_a_);
      if (config_.attention == BiSimConfig::Attention::kSparsityFriendly) {
        h_proj = ad::Mul(h_proj, Tensor::Constant(seq[order[t]].m_att));
      }
      h_att_stack =
          (t == 0) ? h_proj : ad::ConcatRows(h_att_stack, h_proj);
    }
  }

  // ---- Decoder over the RP sequence. s_0 = h_T (and the encoder's final
  // cell state seeds the decoder cell).
  nn::LstmCell::State dec_state = enc_state;
  la::Matrix prev_delta_l(1, 2);
  la::Matrix prev_k(1, 2, 1.0);
  Tensor zero_context;  // shared constant for the no-attention ablation
  if (config_.attention == BiSimConfig::Attention::kNone) {
    zero_context = Tensor::Constant(la::Matrix(1, d));
  }
  for (size_t t = 0; t < t_len; ++t) {
    const StepFeatures& sf = seq[order[t]];

    // Eq. 6 / Eq. 7 (fused affine + mask-combine).
    Tensor l_prime = ad::Affine(dec_state.h, w_l_, b_l_);
    Tensor l_comb = ad::MaskCombine(sf.k, sf.l, l_prime);

    // Context vector (Eqs. 10-12), batched: the alignment MLP runs once
    // over all T [s_j | h''_i] rows, and the weighted sum of Eq. 12 is a
    // single (1 x T) @ (T x D) product.
    Tensor context;
    if (config_.attention == BiSimConfig::Attention::kNone) {
      context = zero_context;
    } else {
      Tensor align_in =
          ad::ConcatCols(ad::RepeatRows(dec_state.h, t_len), h_att_stack);
      Tensor energies = ad::Transpose(align_.Forward(align_in));  // 1 x T
      Tensor alpha = ad::SoftmaxRows(energies);
      context = ad::MatMul(alpha, h_att_stack);
    }

    // Optional decoder time lag (ablation).
    if (dec_lag) {
      la::Matrix delta_l(1, 2);
      if (t > 0) {
        const double dt_raw =
            std::fabs(seq[order[t]].time - seq[order[t - 1]].time);
        for (size_t j = 0; j < 2; ++j) {
          delta_l(0, j) =
              prev_k(0, j) == 1.0 ? dt_raw : prev_delta_l(0, j) + dt_raw;
        }
      }
      prev_delta_l = delta_l;
      prev_k = sf.k;
      Tensor gamma_s = ad::Exp(ad::Scale(
          ad::Relu(
              ad::Affine(Tensor::Constant(delta_l), w_gamma_s_, b_gamma_s_)),
          -1.0));
      dec_state.h = ad::Mul(dec_state.h, gamma_s);
    }

    // Eq. 8 (standard LSTM cell per the paper's text).
    dec_state = dec_cell_.Forward(ad::ConcatCols(l_comb, context), dec_state);

    out.l_pred[order[t]] = l_prime;
    out.l_comb[order[t]] = l_comb;
  }
  return out;
}

BiSimModel::SequenceOutput BiSimModel::Forward(const Sequence& seq,
                                               bool compute_loss) const {
  RMI_CHECK(!seq.empty());
  const size_t t_len = seq.size();
  DirectionOutput fwd = RunDirection(seq, /*reversed=*/false);
  DirectionOutput bwd = RunDirection(seq, /*reversed=*/true);

  SequenceOutput out;
  out.f_hat.reserve(t_len);
  out.l_hat.reserve(t_len);
  for (size_t t = 0; t < t_len; ++t) {
    out.f_hat.push_back(
        (fwd.f_comb[t].value() + bwd.f_comb[t].value()) * 0.5);  // Eq. 13
    out.l_hat.push_back((fwd.l_comb[t].value() + bwd.l_comb[t].value()) * 0.5);
  }

  if (compute_loss) {
    Tensor loss;
    const double inv_t = 1.0 / static_cast<double>(t_len);
    for (size_t t = 0; t < t_len; ++t) {
      Tensor f_const = Tensor::Constant(seq[t].f);
      Tensor l_const = Tensor::Constant(seq[t].l);
      // L_forward + L_backward.
      Tensor step =
          ad::Add(ad::Add(ad::MaskedMse(fwd.f_pred[t], f_const, seq[t].m),
                          ad::MaskedMse(fwd.l_pred[t], l_const, seq[t].k)),
                  ad::Add(ad::MaskedMse(bwd.f_pred[t], f_const, seq[t].m),
                          ad::MaskedMse(bwd.l_pred[t], l_const, seq[t].k)));
      // L_cross: forward vs backward predictions.
      step = ad::Add(
          step,
          ad::Add(ad::MaskedMse(fwd.f_pred[t], bwd.f_pred[t], seq[t].m),
                  ad::MaskedMse(fwd.l_pred[t], bwd.l_pred[t], seq[t].k)));
      step = ad::Scale(step, inv_t);
      loss = loss.defined() ? ad::Add(loss, step) : step;
    }
    out.loss = loss;
  }
  return out;
}

namespace {

/// Resolved worker count for a config, capped by `cap` — the number of
/// independent work items per fan-out (accumulation batch size for
/// training, sequence count for inference).
size_t ResolveThreads(const BiSimConfig& config, size_t cap) {
  size_t nt = config.num_threads == 0 ? ThreadPool::DefaultThreads()
                                      : config.num_threads;
  nt = std::min(nt, std::max<size_t>(1, cap));
  return std::max<size_t>(1, nt);
}

}  // namespace

double TrainBiSim(const BiSimModel& model, const std::vector<Sequence>& seqs,
                  const BiSimConfig& config, Rng& rng) {
  ad::Adam adam(model.Params(), config.lr);
  std::vector<size_t> idx(seqs.size());
  for (size_t i = 0; i < idx.size(); ++i) idx[i] = i;

  size_t nt = ResolveThreads(config, config.batch_size);
  std::unique_ptr<ThreadPool> pool;
  if (nt > 1) {
    pool = std::make_unique<ThreadPool>(nt);
    // A nested fan-out (pool created inside another pool's worker) is
    // forced inline; fall back to the serial reference path then.
    nt = pool->num_threads();
  }
  double last_loss = 0.0;

  if (nt <= 1) {
    // Serial reference path (bit-identical run-to-run).
    size_t in_batch = 0;
    for (size_t epoch = 0; epoch < config.epochs; ++epoch) {
      rng.Shuffle(&idx);
      double epoch_loss = 0.0;
      for (size_t i : idx) {
        auto out = model.Forward(seqs[i], /*compute_loss=*/true);
        epoch_loss += out.loss.value()(0, 0);
        out.loss.Backward();
        if (++in_batch >= config.batch_size) {
          ad::ClipGradNorm(adam.params(), config.grad_clip);
          adam.Step();
          in_batch = 0;
        }
      }
      if (in_batch > 0) {
        ad::ClipGradNorm(adam.params(), config.grad_clip);
        adam.Step();
        in_batch = 0;
      }
      last_loss = seqs.empty() ? 0.0
                               : epoch_loss / static_cast<double>(seqs.size());
    }
    return last_loss;
  }

  // Parallel path: the sequences of each accumulation batch fan out over
  // the pool; every worker accumulates parameter gradients into its own
  // shard (ScopedGradSink), and shards merge in worker order before the
  // Adam step — deterministic for a fixed (seed, num_threads) pair.
  std::vector<ad::GradSink> sinks;
  sinks.reserve(nt);
  for (size_t w = 0; w < nt; ++w) sinks.emplace_back(adam.params());
  const std::vector<ad::Tensor>& params = adam.params();

  for (size_t epoch = 0; epoch < config.epochs; ++epoch) {
    rng.Shuffle(&idx);
    double epoch_loss = 0.0;
    for (size_t start = 0; start < idx.size(); start += config.batch_size) {
      const size_t count = std::min(config.batch_size, idx.size() - start);
      pool->ParallelFor(count, [&](size_t w, size_t i) {
        ad::ScopedGradSink scoped(&sinks[w]);
        auto out = model.Forward(seqs[idx[start + i]], /*compute_loss=*/true);
        sinks[w].loss_sum += out.loss.value()(0, 0);
        out.loss.Backward();
      });
      for (size_t w = 0; w < nt; ++w) {
        std::vector<la::Matrix>& shard = sinks[w].grads();
        for (size_t p = 0; p < params.size(); ++p) {
          la::Axpy(1.0, shard[p], &params[p].node()->grad);
        }
        epoch_loss += sinks[w].loss_sum;
        sinks[w].ZeroAll();
      }
      ad::ClipGradNorm(params, config.grad_clip);
      adam.Step();
    }
    last_loss = seqs.empty() ? 0.0
                             : epoch_loss / static_cast<double>(seqs.size());
  }
  return last_loss;
}

rmap::RadioMap BiSimImputer::Impute(const rmap::RadioMap& map,
                                    const rmap::MaskMatrix& amended_mask,
                                    Rng& rng) const {
  return TrainAndImpute(map, amended_mask, rng, /*warm_weights=*/nullptr,
                        /*state_out=*/nullptr);
}

rmap::RadioMap BiSimImputer::ImputeIncremental(
    const rmap::RadioMap& merged, const rmap::MaskMatrix& amended_mask,
    const imputers::IncrementalContext& ctx, Rng& rng) const {
  // Training dominates the rebuild cost, so the warm start here is the
  // *model*, not the dirty-row splice: restore the previous rebuild's
  // weights, fine-tune briefly on the merged sequences (which include the
  // deltas), and re-impute everything with the refreshed model. Because
  // everything is re-predicted, every row is honestly dirty downstream.
  if (ctx.dirty_rows_out != nullptr) {
    ctx.dirty_rows_out->resize(merged.size());
    for (size_t i = 0; i < merged.size(); ++i) (*ctx.dirty_rows_out)[i] = i;
  }
  const std::vector<la::Matrix>* warm = nullptr;
  const auto* state = dynamic_cast<const BiSimWarmState*>(
      ctx.previous_state.get());
  if (state != nullptr && state->num_aps == merged.num_aps() &&
      state->hidden == config_.hidden) {
    warm = &state->weights;  // RestoreParams re-checks every shape
  }
  return TrainAndImpute(merged, amended_mask, rng, warm, ctx.state_out);
}

rmap::RadioMap BiSimImputer::TrainAndImpute(
    const rmap::RadioMap& map, const rmap::MaskMatrix& amended_mask, Rng& rng,
    const std::vector<la::Matrix>* warm_weights,
    std::shared_ptr<const imputers::ImputerState>* state_out) const {
  BiSimConfig cfg = config_;
  Rng model_rng(cfg.seed ^ rng.engine()());
  BiSimModel model(map.num_aps(), cfg, model_rng);
  if (warm_weights != nullptr &&
      ad::RestoreParams(model.Params(), *warm_weights)) {
    cfg.epochs = cfg.fine_tune_epochs;
  }
  std::vector<Sequence> sequences = BuildSequences(map, amended_mask, cfg);
  last_loss_.store(TrainBiSim(model, sequences, cfg, model_rng),
                   std::memory_order_relaxed);
  if (state_out != nullptr) {
    auto fresh = std::make_shared<BiSimWarmState>();
    fresh->num_aps = map.num_aps();
    fresh->hidden = cfg.hidden;
    fresh->weights = ad::SnapshotParams(model.Params());
    *state_out = std::move(fresh);
  }

  // Inference: write combined imputations into a copy of the map. The
  // sequences cover disjoint records, so they fan out over the pool (each
  // worker writes only its own sequences' records).
  rmap::RadioMap result = map;
  ThreadPool pool(ResolveThreads(cfg, sequences.size()));
  pool.ParallelFor(sequences.size(), [&](size_t /*worker*/, size_t s) {
    const Sequence& seq = sequences[s];
    auto out = model.Forward(seq, /*compute_loss=*/false);
    for (size_t t = 0; t < seq.size(); ++t) {
      rmap::Record& r = result.record(seq[t].record_index);
      for (size_t j = 0; j < map.num_aps(); ++j) {
        if (seq[t].m(0, j) == 0.0) {  // MAR cell
          r.rssi[j] = ClampImputed(DenormRssi(out.f_hat[t](0, j)));
        } else if (IsNull(r.rssi[j])) {
          // Mask says observed but the map still holds null: the caller
          // skipped the MNAR fill. Be conservative: fill with -100.
          r.rssi[j] = kMnarFillDbm;
        }
      }
      if (!r.has_rp) {
        r.rp = geom::Point{out.l_hat[t](0, 0) / config_.loc_scale,
                           out.l_hat[t](0, 1) / config_.loc_scale};
        r.has_rp = true;
      }
    }
  });
  return result;
}

void OnlineBiSimImputer::Fit(const rmap::RadioMap& map,
                             const rmap::MaskMatrix& amended_mask, Rng& rng) {
  Rng model_rng(config_.seed ^ rng.engine()());
  model_ = std::make_unique<BiSimModel>(map.num_aps(), config_, model_rng);
  const auto sequences = BuildSequences(map, amended_mask, config_);
  training_loss_ = TrainBiSim(*model_, sequences, config_, model_rng);
}

std::vector<double> OnlineBiSimImputer::ImputeFingerprint(
    const TimedScan& online, const std::vector<TimedScan>& recent_scans) const {
  RMI_CHECK(model_ != nullptr);
  const size_t d = model_->num_aps();
  RMI_CHECK_EQ(online.rssi.size(), d);

  // Build a one-off sequence: recent scans (context) + the online scan.
  Sequence seq;
  auto to_step = [&](const TimedScan& scan) {
    RMI_CHECK_EQ(scan.rssi.size(), d);
    StepFeatures sf;
    sf.time = scan.time * config_.time_scale;
    sf.f = la::Matrix(1, d);
    sf.m = la::Matrix(1, d);
    sf.m_att = la::Matrix(1, d);
    for (size_t j = 0; j < d; ++j) {
      if (!IsNull(scan.rssi[j])) {
        sf.m(0, j) = 1.0;
        sf.m_att(0, j) = scan.rssi[j] > kMnarFillDbm + 0.5 ? 1.0 : 0.0;
        sf.f(0, j) = NormRssi(scan.rssi[j]);
      }
    }
    sf.l = la::Matrix(1, 2);  // online device location unknown
    sf.k = la::Matrix(1, 2);
    sf.delta = la::Matrix(1, d);
    sf.delta_l = la::Matrix(1, 2);
    return sf;
  };
  for (const TimedScan& scan : recent_scans) seq.push_back(to_step(scan));
  seq.push_back(to_step(online));
  // Time-lag vectors over the assembled sequence (Eq. 1).
  for (size_t t = 1; t < seq.size(); ++t) {
    const double dt = std::fabs(seq[t].time - seq[t - 1].time);
    for (size_t j = 0; j < d; ++j) {
      seq[t].delta(0, j) =
          seq[t - 1].m(0, j) == 1.0 ? dt : seq[t - 1].delta(0, j) + dt;
    }
  }

  const auto out = model_->Forward(seq, /*compute_loss=*/false);
  const la::Matrix& f_hat = out.f_hat.back();
  std::vector<double> result = online.rssi;
  for (size_t j = 0; j < d; ++j) {
    if (IsNull(result[j])) {
      result[j] = ClampImputed(DenormRssi(f_hat(0, j)));
    }
  }
  return result;
}

}  // namespace rmi::bisim
