// K-means (k-means++ init, Lloyd iterations) with Euclidean or Manhattan
// distance, plus the elbow heuristic for K selection.
#ifndef RMI_CLUSTERING_KMEANS_H_
#define RMI_CLUSTERING_KMEANS_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "la/matrix.h"

namespace rmi::cluster {

struct KMeansParams {
  size_t k = 2;
  size_t max_iters = 25;
  bool manhattan = false;  ///< paper footnote 3: Manhattan tried, inferior
};

struct KMeansResult {
  std::vector<int> assignment;  ///< cluster id per row of x
  la::Matrix centers;           ///< k x F
  double wss = 0.0;             ///< within-cluster sum of squares
};

/// Runs k-means on the rows of x (N x F).
KMeansResult KMeans(const la::Matrix& x, const KMeansParams& params, Rng& rng);

/// Elbow method: evaluates WSS over `candidates` (ascending K values) and
/// returns the K at the knee (max discrete second difference of WSS).
size_t ChooseKElbow(const la::Matrix& x, const std::vector<size_t>& candidates,
                    const KMeansParams& base, Rng& rng);

/// Default geometric-ish candidate ladder 1..max_k used by ElbowKM/DasaKM
/// (iterating every K in [1, U] as in the paper is O(U^2) k-means work; the
/// ladder preserves the selection quality at a fraction of the cost).
std::vector<size_t> KCandidateLadder(size_t max_k);

}  // namespace rmi::cluster

#endif  // RMI_CLUSTERING_KMEANS_H_
