// Concrete clustering strategies for the missing-RSSI differentiator:
//  * ElbowKM  — K-means with the elbow heuristic for K (Section III-B
//               strawman, evaluated in Figs. 12-13);
//  * DasaKM   — Algorithm 3: differentiation-accuracy-aware, sampling-based
//               K selection;
//  * TopoAC   — Algorithm 5: topology-aware agglomerative clustering with
//               the EntityExist heuristic (Algorithm 4);
//  * DBSCAN   — density-based comparison point (paper footnote 6).
#ifndef RMI_CLUSTERING_STRATEGIES_H_
#define RMI_CLUSTERING_STRATEGIES_H_

#include <atomic>
#include <vector>

#include "clustering/clusterer.h"
#include "clustering/kmeans.h"
#include "geometry/geometry.h"

namespace rmi::cluster {

/// K-means, K chosen by the elbow method over a candidate ladder in [1, U].
class ElbowKMeansClusterer : public Clusterer {
 public:
  explicit ElbowKMeansClusterer(size_t max_k = 60) : max_k_(max_k) {}

  Clustering Cluster(const SampleSet& samples, Rng& rng) const override;
  std::string name() const override { return "ElbowKM"; }

 private:
  size_t max_k_;
};

/// Algorithm 3 (DasaKM): for each candidate K, average the differentiation
/// accuracy over ground-truth sets sampled at the proportions in `gammas`;
/// pick the K with the best average; return K-means on the original data.
class DasaKMeansClusterer : public Clusterer {
 public:
  struct Params {
    size_t max_k = 60;                      ///< paper: U = 200
    std::vector<double> gammas = {1, 2, 4, 8, 16};  ///< paper: 1..20
    size_t num_mnar = 600;                  ///< sampled MNAR cells per set
    size_t mnar_group_size = 6;             ///< paper footnote 4
    double eta = 0.1;                       ///< DA rule threshold
  };

  DasaKMeansClusterer() : params_() {}
  explicit DasaKMeansClusterer(const Params& params) : params_(params) {}

  Clustering Cluster(const SampleSet& samples, Rng& rng) const override;
  std::string name() const override { return "DasaKM"; }

  /// The K selected by the last Cluster() call (diagnostic; atomic so
  /// concurrent Cluster calls on a shared instance stay well-defined).
  size_t last_k() const { return last_k_.load(std::memory_order_relaxed); }

 private:
  Params params_;
  mutable std::atomic<size_t> last_k_{0};
};

/// Algorithm 5 (TopoAC): agglomerative merging by minimum center-to-center
/// distance, rejecting merges whose convex hull intersects a topological
/// entity. Hyperparameter-free given the venue's wall multipolygon.
class TopoACClusterer : public Clusterer {
 public:
  explicit TopoACClusterer(const geom::MultiPolygon* entities)
      : entities_(entities) {}

  Clustering Cluster(const SampleSet& samples, Rng& rng) const override;
  std::string name() const override { return "TopoAC"; }

 private:
  const geom::MultiPolygon* entities_;  // not owned
};

/// EntityExist (Algorithm 4): true iff the convex hull of the cluster
/// members' locations intersects any topological entity.
bool EntityExist(const std::vector<geom::Point>& cluster_locations,
                 const geom::MultiPolygon& entities);

/// DBSCAN over the sample features (comparison; inferior per the paper).
class DbscanClusterer : public Clusterer {
 public:
  DbscanClusterer(double eps, size_t min_pts)
      : eps_(eps), min_pts_(min_pts) {}

  Clustering Cluster(const SampleSet& samples, Rng& rng) const override;
  std::string name() const override { return "DBSCAN"; }

 private:
  double eps_;
  size_t min_pts_;
};

}  // namespace rmi::cluster

#endif  // RMI_CLUSTERING_STRATEGIES_H_
