#include "clustering/strategies.h"

#include <algorithm>
#include <limits>
#include <queue>

#include "clustering/differentiation.h"
#include "common/check.h"
#include "la/kernels.h"

namespace rmi::cluster {

namespace {

Clustering FromKMeans(const KMeansResult& km) {
  Clustering c;
  c.assignment = km.assignment;
  int max_c = -1;
  for (int a : km.assignment) max_c = std::max(max_c, a);
  c.k = static_cast<size_t>(max_c + 1);
  return c;
}

}  // namespace

Clustering ElbowKMeansClusterer::Cluster(const SampleSet& samples,
                                         Rng& rng) const {
  KMeansParams base;
  base.max_iters = 15;
  const auto ladder = KCandidateLadder(std::min(max_k_, samples.size()));
  const size_t k = ChooseKElbow(samples.features, ladder, base, rng);
  KMeansParams final_params;
  final_params.k = k;
  final_params.max_iters = 30;
  return FromKMeans(KMeans(samples.features, final_params, rng));
}

Clustering DasaKMeansClusterer::Cluster(const SampleSet& samples,
                                        Rng& rng) const {
  // Pre-sample one ground-truth set per gamma (Algorithm 3 lines 1-3).
  std::vector<SampledGroundTruth> gts;
  gts.reserve(params_.gammas.size());
  for (double gamma : params_.gammas) {
    gts.push_back(SampleGroundTruth(samples, gamma, params_.num_mnar,
                                    params_.mnar_group_size, rng));
  }

  // Scan K candidates; keep the K with the best mean DA (lines 4-10).
  double best_da = -1.0;
  size_t best_k = 1;
  const auto ladder = KCandidateLadder(std::min(params_.max_k, samples.size()));
  for (size_t k : ladder) {
    double da_sum = 0.0;
    for (const SampledGroundTruth& gt : gts) {
      KMeansParams p;
      p.k = k;
      p.max_iters = 12;
      const Clustering c = FromKMeans(KMeans(gt.modified.features, p, rng));
      da_sum += DifferentiationAccuracy(gt.modified, c, gt.cells, params_.eta);
    }
    const double da = da_sum / static_cast<double>(gts.size());
    if (da > best_da) {
      best_da = da;
      best_k = k;
    }
  }
  last_k_.store(best_k, std::memory_order_relaxed);

  KMeansParams p;
  p.k = best_k;
  p.max_iters = 30;
  return FromKMeans(KMeans(samples.features, p, rng));  // line 11
}

bool EntityExist(const std::vector<geom::Point>& cluster_locations,
                 const geom::MultiPolygon& entities) {
  if (cluster_locations.empty()) return false;
  const geom::Polygon hull = geom::ConvexHull(cluster_locations);
  return geom::IntersectsAny(hull, entities);
}

Clustering TopoACClusterer::Cluster(const SampleSet& samples, Rng&) const {
  RMI_CHECK(entities_ != nullptr);
  const size_t n = samples.size();

  // Live clusters: member lists, feature centers, location lists.
  struct Node {
    std::vector<size_t> members;
    la::Matrix center;  // 1 x F
    std::vector<geom::Point> locations;
    geom::Point loc_centroid;
    bool alive = true;
  };
  std::vector<Node> nodes;
  nodes.reserve(2 * n);
  for (size_t i = 0; i < n; ++i) {
    Node nd;
    nd.members = {i};
    nd.center = samples.features.Row(i);
    nd.locations = {samples.locations[i]};
    nd.loc_centroid = samples.locations[i];
    nodes.push_back(std::move(nd));
  }

  // Candidate merges ordered by center distance. A candidate that fails the
  // topology check is discarded permanently: its endpoints never change
  // (merges create new node ids), so the check outcome cannot change.
  struct Cand {
    double dist;
    size_t a, b;
    bool operator>(const Cand& o) const { return dist > o.dist; }
  };
  // Candidate generation is restricted to each node's `kNeighbors` nearest
  // live nodes: an exact global-min pair scan is O(N^2) space/time, which
  // does not fit the larger venues; nearest-neighbor candidates preserve the
  // greedy min-distance behaviour in practice because valid merges are
  // local by construction (the topology check rejects far pairs anyway).
  constexpr size_t kNeighbors = 8;
  // Spatial pre-filter: only pairs whose location centroids are within
  // kSpatialRadius can merge (the topology check rejects far pairs anyway,
  // and the cheap 2-D test avoids O(N^2) full feature-distance work).
  constexpr double kSpatialRadius = 14.0;  // meters
  constexpr double kSpatialRadius2 = kSpatialRadius * kSpatialRadius;
  std::priority_queue<Cand, std::vector<Cand>, std::greater<Cand>> heap;
  auto push_pairs_for = [&](size_t idx) {
    std::vector<Cand> cands;
    for (size_t j = 0; j < nodes.size(); ++j) {
      if (j == idx || !nodes[j].alive) continue;
      if (geom::SquaredDistance(nodes[idx].loc_centroid,
                                nodes[j].loc_centroid) > kSpatialRadius2) {
        continue;
      }
      const double d2 =
          la::Matrix::SquaredDistance(nodes[idx].center, nodes[j].center);
      cands.push_back(Cand{d2, std::min(idx, j), std::max(idx, j)});
    }
    const size_t take = std::min(kNeighbors, cands.size());
    std::partial_sort(cands.begin(), cands.begin() + take, cands.end(),
                      [](const Cand& a, const Cand& b) { return a.dist < b.dist; });
    for (size_t t = 0; t < take; ++t) heap.push(cands[t]);
  };
  for (size_t i = 0; i < n; ++i) push_pairs_for(i);

  while (!heap.empty()) {
    const Cand c = heap.top();
    heap.pop();
    if (!nodes[c.a].alive || !nodes[c.b].alive) continue;
    // Topological examination of the tentative merge (Algorithm 4).
    std::vector<geom::Point> merged_locs = nodes[c.a].locations;
    merged_locs.insert(merged_locs.end(), nodes[c.b].locations.begin(),
                       nodes[c.b].locations.end());
    if (EntityExist(merged_locs, *entities_)) continue;  // reject forever

    // Merge a and b into a new node.
    Node merged;
    merged.members = nodes[c.a].members;
    merged.members.insert(merged.members.end(), nodes[c.b].members.begin(),
                          nodes[c.b].members.end());
    const double wa = static_cast<double>(nodes[c.a].members.size());
    const double wb = static_cast<double>(nodes[c.b].members.size());
    merged.center =
        (nodes[c.a].center * wa + nodes[c.b].center * wb) * (1.0 / (wa + wb));
    merged.loc_centroid =
        (nodes[c.a].loc_centroid * wa + nodes[c.b].loc_centroid * wb) *
        (1.0 / (wa + wb));
    merged.locations = std::move(merged_locs);
    nodes[c.a].alive = false;
    nodes[c.b].alive = false;
    nodes.push_back(std::move(merged));
    push_pairs_for(nodes.size() - 1);
  }

  Clustering result;
  result.assignment.assign(n, -1);
  size_t next_id = 0;
  for (const Node& nd : nodes) {
    if (!nd.alive) continue;
    for (size_t m : nd.members) {
      result.assignment[m] = static_cast<int>(next_id);
    }
    ++next_id;
  }
  result.k = next_id;
  for (int a : result.assignment) RMI_CHECK_GE(a, 0);
  return result;
}

Clustering DbscanClusterer::Cluster(const SampleSet& samples, Rng&) const {
  const size_t n = samples.size();
  const double eps2 = eps_ * eps_;
  const la::Matrix& x = samples.features;

  auto neighbors = [&](size_t i) {
    std::vector<size_t> out;
    for (size_t j = 0; j < n; ++j) {
      if (la::RowSquaredDistance(x, i, x, j) <= eps2) out.push_back(j);
    }
    return out;
  };

  constexpr int kUnvisited = -2;
  constexpr int kNoise = -1;
  std::vector<int> label(n, kUnvisited);
  int cluster_id = 0;
  for (size_t i = 0; i < n; ++i) {
    if (label[i] != kUnvisited) continue;
    std::vector<size_t> nb = neighbors(i);
    if (nb.size() < min_pts_) {
      label[i] = kNoise;
      continue;
    }
    label[i] = cluster_id;
    std::vector<size_t> frontier = nb;
    for (size_t f = 0; f < frontier.size(); ++f) {
      const size_t q = frontier[f];
      if (label[q] == kNoise) label[q] = cluster_id;
      if (label[q] != kUnvisited) continue;
      label[q] = cluster_id;
      std::vector<size_t> qn = neighbors(q);
      if (qn.size() >= min_pts_) {
        frontier.insert(frontier.end(), qn.begin(), qn.end());
      }
    }
    ++cluster_id;
  }
  // Noise points become singleton clusters (the differentiator needs a
  // total assignment).
  Clustering result;
  result.assignment.assign(n, 0);
  int next = cluster_id;
  for (size_t i = 0; i < n; ++i) {
    result.assignment[i] = label[i] >= 0 ? label[i] : next++;
  }
  result.k = static_cast<size_t>(next);
  return result;
}

}  // namespace rmi::cluster
