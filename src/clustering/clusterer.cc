#include "clustering/clusterer.h"

#include "common/check.h"

namespace rmi::cluster {

SampleSet BuildSampleSet(const rmap::RadioMap& map, double location_weight) {
  SampleSet s;
  const size_t n = map.size();
  const size_t d = map.num_aps();
  s.num_aps = d;
  s.locations = map.InterpolatedRps();
  RMI_CHECK_EQ(s.locations.size(), n);
  s.features = la::Matrix(n, d + 2);
  s.profiles.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    std::vector<uint8_t> b = rmap::Binarization(map.record(i).rssi);
    for (size_t j = 0; j < d; ++j) {
      s.features(i, j) = static_cast<double>(b[j]);
    }
    s.features(i, d) = s.locations[i].x * location_weight;
    s.features(i, d + 1) = s.locations[i].y * location_weight;
    s.profiles.push_back(std::move(b));
  }
  return s;
}

std::vector<std::vector<size_t>> Clustering::Groups() const {
  std::vector<std::vector<size_t>> g(k);
  for (size_t i = 0; i < assignment.size(); ++i) {
    const int c = assignment[i];
    RMI_CHECK_GE(c, 0);
    RMI_CHECK_LT(static_cast<size_t>(c), k);
    g[static_cast<size_t>(c)].push_back(i);
  }
  return g;
}

}  // namespace rmi::cluster
