// Clusterer strategy interface + the sample-set construction shared by all
// differentiators (Algorithm 2 lines 2-5): each sample is the binarized AP
// profile of a record concatenated with its (interpolated) RP location.
#ifndef RMI_CLUSTERING_CLUSTERER_H_
#define RMI_CLUSTERING_CLUSTERER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "geometry/geometry.h"
#include "la/matrix.h"
#include "radiomap/radio_map.h"

namespace rmi::cluster {

/// The clustering input built from a radio map.
struct SampleSet {
  /// N x (D+2): binary AP profile ⊕ location scaled by location_weight.
  la::Matrix features;
  /// Raw (unscaled) per-record location: observed RP or linear interpolation.
  std::vector<geom::Point> locations;
  /// Binary AP profiles (Algorithm 1 output), N x D.
  std::vector<std::vector<uint8_t>> profiles;
  size_t num_aps = 0;

  size_t size() const { return locations.size(); }
};

/// Builds the sample set of Algorithm 2. `location_weight` scales meters
/// into the unit range of the binary profile features (the paper
/// concatenates them directly; a weight keeps the two feature families
/// commensurate for venues tens of meters across).
SampleSet BuildSampleSet(const rmap::RadioMap& map,
                         double location_weight = 0.1);

/// A flat clustering of the sample set.
struct Clustering {
  std::vector<int> assignment;  ///< cluster id per sample, in [0, k)
  size_t k = 0;

  /// Member indices per cluster.
  std::vector<std::vector<size_t>> Groups() const;
};

/// Strategy interface: DasaKM, TopoAC, ElbowKM, DBSCAN.
class Clusterer {
 public:
  virtual ~Clusterer() = default;
  virtual Clustering Cluster(const SampleSet& samples, Rng& rng) const = 0;
  virtual std::string name() const = 0;
};

}  // namespace rmi::cluster

#endif  // RMI_CLUSTERING_CLUSTERER_H_
