#include "clustering/kmeans.h"

#include <cmath>
#include <limits>

#include "common/check.h"

namespace rmi::cluster {

namespace {

double RowDistance(const la::Matrix& x, size_t row, const la::Matrix& centers,
                   size_t c, bool manhattan,
                   double bound = std::numeric_limits<double>::infinity()) {
  const size_t f = x.cols();
  const double* xr = &x.data()[row * f];
  const double* cr = &centers.data()[c * f];
  double s = 0.0;
  if (manhattan) {
    for (size_t j = 0; j < f; ++j) s += std::fabs(xr[j] - cr[j]);
    return s;
  }
  // Squared Euclidean with exact early exit: the terms are non-negative and
  // summed in a fixed order, so every prefix is a lower bound of the final
  // value — once a prefix reaches `bound`, the caller's strict `< bound`
  // test can never pass, and returning the prefix changes no decision.
  // Checked every 8 lanes to keep the branch off the inner adds.
  size_t j = 0;
  for (; j + 8 <= f; j += 8) {
    for (size_t u = 0; u < 8; ++u) {
      const double d = xr[j + u] - cr[j + u];
      s += d * d;
    }
    if (s >= bound) return s;
  }
  for (; j < f; ++j) {
    const double d = xr[j] - cr[j];
    s += d * d;
  }
  return s;  // squared Euclidean (or L1) — monotone, fine for argmin
}

}  // namespace

KMeansResult KMeans(const la::Matrix& x, const KMeansParams& params, Rng& rng) {
  const size_t n = x.rows();
  const size_t f = x.cols();
  RMI_CHECK_GE(params.k, 1u);
  RMI_CHECK_GE(n, 1u);
  const size_t k = std::min(params.k, n);

  // k-means++ seeding.
  la::Matrix centers(k, f);
  std::vector<double> min_d2(n, std::numeric_limits<double>::max());
  size_t first = rng.Index(n);
  centers.SetRow(0, x.Row(first));
  for (size_t c = 1; c < k; ++c) {
    double total = 0.0;
    for (size_t i = 0; i < n; ++i) {
      const double d = RowDistance(x, i, centers, c - 1, /*manhattan=*/false,
                                   min_d2[i]);
      if (d < min_d2[i]) min_d2[i] = d;
      total += min_d2[i];
    }
    size_t pick = 0;
    if (total > 0.0) {
      double r = rng.Uniform(0.0, total);
      for (size_t i = 0; i < n; ++i) {
        r -= min_d2[i];
        if (r <= 0.0) {
          pick = i;
          break;
        }
      }
    } else {
      pick = rng.Index(n);
    }
    centers.SetRow(c, x.Row(pick));
  }

  KMeansResult res;
  res.assignment.assign(n, 0);
  std::vector<size_t> counts(k);
  for (size_t iter = 0; iter < params.max_iters; ++iter) {
    bool changed = false;
    for (size_t i = 0; i < n; ++i) {
      double best = std::numeric_limits<double>::max();
      int best_c = 0;
      for (size_t c = 0; c < k; ++c) {
        const double d =
            RowDistance(x, i, centers, c, params.manhattan, best);
        if (d < best) {
          best = d;
          best_c = static_cast<int>(c);
        }
      }
      if (res.assignment[i] != best_c) {
        res.assignment[i] = best_c;
        changed = true;
      }
    }
    if (!changed && iter > 0) break;
    // Recompute centers.
    centers = la::Matrix(k, f);
    std::fill(counts.begin(), counts.end(), 0);
    for (size_t i = 0; i < n; ++i) {
      const size_t c = static_cast<size_t>(res.assignment[i]);
      ++counts[c];
      for (size_t j = 0; j < f; ++j) centers(c, j) += x(i, j);
    }
    for (size_t c = 0; c < k; ++c) {
      if (counts[c] == 0) {
        centers.SetRow(c, x.Row(rng.Index(n)));  // re-seed empty cluster
        continue;
      }
      for (size_t j = 0; j < f; ++j) {
        centers(c, j) /= static_cast<double>(counts[c]);
      }
    }
  }

  res.centers = centers;
  res.wss = 0.0;
  for (size_t i = 0; i < n; ++i) {
    res.wss += RowDistance(x, i, centers,
                           static_cast<size_t>(res.assignment[i]),
                           /*manhattan=*/false);
  }
  return res;
}

std::vector<size_t> KCandidateLadder(size_t max_k) {
  RMI_CHECK_GE(max_k, 1u);
  std::vector<size_t> ks;
  size_t k = 1;
  while (k <= max_k) {
    ks.push_back(k);
    if (k < 8) {
      k += 1;
    } else if (k < 24) {
      k += 4;
    } else {
      k += 8;
    }
  }
  if (ks.back() != max_k) ks.push_back(max_k);
  return ks;
}

size_t ChooseKElbow(const la::Matrix& x, const std::vector<size_t>& candidates,
                    const KMeansParams& base, Rng& rng) {
  RMI_CHECK_GE(candidates.size(), 1u);
  if (candidates.size() <= 2) return candidates.back();
  std::vector<double> wss(candidates.size());
  for (size_t i = 0; i < candidates.size(); ++i) {
    KMeansParams p = base;
    p.k = candidates[i];
    wss[i] = KMeans(x, p, rng).wss;
  }
  // Knee = max second difference, normalized by the candidate spacing.
  size_t best = 1;
  double best_curv = -std::numeric_limits<double>::max();
  for (size_t i = 1; i + 1 < candidates.size(); ++i) {
    const double left =
        (wss[i - 1] - wss[i]) /
        static_cast<double>(candidates[i] - candidates[i - 1]);
    const double right =
        (wss[i] - wss[i + 1]) /
        static_cast<double>(candidates[i + 1] - candidates[i]);
    const double curv = left - right;
    if (curv > best_curv) {
      best_curv = curv;
      best = i;
    }
  }
  return candidates[best];
}

}  // namespace rmi::cluster
