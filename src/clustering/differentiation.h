// Missing-RSSI differentiation (paper Section III, Algorithm 2) and the
// differentiation-accuracy (DA) machinery of DasaKM (Section III-B).
#ifndef RMI_CLUSTERING_DIFFERENTIATION_H_
#define RMI_CLUSTERING_DIFFERENTIATION_H_

#include <memory>
#include <string>
#include <vector>

#include "clustering/clusterer.h"
#include "radiomap/radio_map.h"

namespace rmi::cluster {

/// Algorithm 2: clusters the sample set and marks, per cluster and AP
/// dimension, the missing cells as MAR when the observed fraction of that AP
/// within the cluster exceeds `eta`, MNAR otherwise.
rmap::MaskMatrix DifferentiateWithClustering(const SampleSet& samples,
                                             const Clustering& clustering,
                                             double eta);

/// Differentiator strategy used by the evaluation pipeline (module A).
class Differentiator {
 public:
  virtual ~Differentiator() = default;
  /// Returns the N x D mask over {-1 MNAR, 0 MAR, 1 observed}.
  virtual rmap::MaskMatrix Differentiate(const rmap::RadioMap& map,
                                         Rng& rng) const = 0;

  /// Delta-aware variant for the live-update loop (serving::MapUpdater).
  /// Rows [0, num_previous) of `map` are byte-identical to the rows
  /// `previous_mask` labeled on the last rebuild — the survey base is
  /// append-only — so their labels are reused verbatim and only the delta
  /// rows [num_previous, N) are differentiated, against a sub-map of just
  /// the deltas. For the row-local baselines (MAR-only / MNAR-only) the
  /// splice is exact; for clustering differentiators it is the
  /// approximation that turns an O(N) re-cluster into O(|delta|), with the
  /// accuracy cost bounded by the incremental-update tests. Degrades to a
  /// full Differentiate when the previous mask is unusable (shape drift,
  /// nothing previous, or a delta set too small to cluster).
  virtual rmap::MaskMatrix DifferentiateDelta(
      const rmap::RadioMap& map, const rmap::MaskMatrix& previous_mask,
      size_t num_previous, Rng& rng) const;

  virtual std::string name() const = 0;
};

/// Baseline: every missing RSSI treated as MAR.
class MarOnlyDifferentiator : public Differentiator {
 public:
  rmap::MaskMatrix Differentiate(const rmap::RadioMap& map,
                                 Rng& rng) const override;
  std::string name() const override { return "MAR-only"; }
};

/// Baseline: every missing RSSI treated as MNAR.
class MnarOnlyDifferentiator : public Differentiator {
 public:
  rmap::MaskMatrix Differentiate(const rmap::RadioMap& map,
                                 Rng& rng) const override;
  std::string name() const override { return "MNAR-only"; }
};

/// Algorithm 2 with a pluggable clustering strategy (DasaKM / TopoAC /
/// ElbowKM / DBSCAN).
class ClusteringDifferentiator : public Differentiator {
 public:
  ClusteringDifferentiator(std::shared_ptr<const Clusterer> clusterer,
                           double eta = 0.1, double location_weight = 0.1)
      : clusterer_(std::move(clusterer)),
        eta_(eta),
        location_weight_(location_weight) {}

  rmap::MaskMatrix Differentiate(const rmap::RadioMap& map,
                                 Rng& rng) const override;
  std::string name() const override { return clusterer_->name(); }

  double eta() const { return eta_; }

 private:
  std::shared_ptr<const Clusterer> clusterer_;
  double eta_;
  double location_weight_;
};

/// One labeled cell of a sampled ground-truth set (Section III-B).
struct GroundTruthCell {
  size_t sample;  ///< record index
  size_t ap;      ///< AP dimension
  bool is_mar;    ///< true: sampled MAR; false: sampled MNAR
};

/// A sampled ground-truth set plus the modified sample set X_gamma (MAR
/// cells nullified in the profiles/features).
struct SampledGroundTruth {
  std::vector<GroundTruthCell> cells;
  SampleSet modified;  ///< X_gamma
};

/// Ground-truth sampling procedure: "creates" MARs by nullifying observed
/// cells, and MNARs by locating groups of `mnar_group_size` spatially
/// adjacent samples that all miss the same AP. `gamma` is the target
/// #MNARs / #MARs proportion.
SampledGroundTruth SampleGroundTruth(const SampleSet& samples, double gamma,
                                     size_t num_mnar, size_t mnar_group_size,
                                     Rng& rng);

/// Differentiation accuracy: balanced accuracy (mean of MAR true-positive
/// rate and MNAR true-negative rate) of the Algorithm-2 rule applied to
/// `clustering` over the ground-truth cells.
double DifferentiationAccuracy(const SampleSet& modified,
                               const Clustering& clustering,
                               const std::vector<GroundTruthCell>& cells,
                               double eta);

}  // namespace rmi::cluster

#endif  // RMI_CLUSTERING_DIFFERENTIATION_H_
