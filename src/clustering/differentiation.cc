#include "clustering/differentiation.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/missing.h"

namespace rmi::cluster {

namespace {

/// Observed fraction of AP `ap` across the cluster members, computed from
/// binary profiles.
double ObservedFraction(const SampleSet& samples,
                        const std::vector<size_t>& members, size_t ap) {
  if (members.empty()) return 0.0;
  size_t obs = 0;
  for (size_t i : members) obs += samples.profiles[i][ap];
  return static_cast<double>(obs) / static_cast<double>(members.size());
}

rmap::MaskMatrix UniformMask(const rmap::RadioMap& map, rmap::MaskValue v) {
  rmap::MaskMatrix m(map.size(), map.num_aps());
  for (size_t i = 0; i < map.size(); ++i) {
    const rmap::Record& r = map.record(i);
    for (size_t d = 0; d < map.num_aps(); ++d) {
      if (IsNull(r.rssi[d])) m.set(i, d, v);
    }
  }
  return m;
}

}  // namespace

rmap::MaskMatrix DifferentiateWithClustering(const SampleSet& samples,
                                             const Clustering& clustering,
                                             double eta) {
  const size_t n = samples.size();
  const size_t d = samples.num_aps;
  rmap::MaskMatrix mask(n, d);
  for (const std::vector<size_t>& members : clustering.Groups()) {
    if (members.empty()) continue;
    for (size_t ap = 0; ap < d; ++ap) {
      const double frac = ObservedFraction(samples, members, ap);
      const rmap::MaskValue missing_label = frac > eta
                                                ? rmap::MaskValue::kMar
                                                : rmap::MaskValue::kMnar;
      for (size_t i : members) {
        if (samples.profiles[i][ap] == 0) mask.set(i, ap, missing_label);
      }
    }
  }
  return mask;
}

rmap::MaskMatrix Differentiator::DifferentiateDelta(
    const rmap::RadioMap& map, const rmap::MaskMatrix& previous_mask,
    size_t num_previous, Rng& rng) const {
  const size_t n = map.size();
  const size_t d = map.num_aps();
  // A delta too small to carry cluster structure is differentiated with
  // the full map instead — the cold path is always available and exact.
  constexpr size_t kMinDeltaRows = 4;
  const size_t num_delta = n >= num_previous ? n - num_previous : 0;
  if (num_previous == 0 || num_previous > n ||
      previous_mask.rows() != num_previous || previous_mask.cols() != d ||
      (num_delta > 0 && num_delta < kMinDeltaRows)) {
    return Differentiate(map, rng);
  }

  rmap::MaskMatrix mask(n, d);
  for (size_t i = 0; i < num_previous; ++i) {
    for (size_t j = 0; j < d; ++j) mask.set(i, j, previous_mask.at(i, j));
  }
  if (num_delta == 0) return mask;  // forced republish: nothing new to label

  rmap::RadioMap delta(d);
  for (size_t i = num_previous; i < n; ++i) delta.Add(map.record(i));
  const rmap::MaskMatrix delta_mask = Differentiate(delta, rng);
  for (size_t i = 0; i < num_delta; ++i) {
    for (size_t j = 0; j < d; ++j) {
      mask.set(num_previous + i, j, delta_mask.at(i, j));
    }
  }
  return mask;
}

rmap::MaskMatrix MarOnlyDifferentiator::Differentiate(const rmap::RadioMap& map,
                                                      Rng&) const {
  return UniformMask(map, rmap::MaskValue::kMar);
}

rmap::MaskMatrix MnarOnlyDifferentiator::Differentiate(
    const rmap::RadioMap& map, Rng&) const {
  return UniformMask(map, rmap::MaskValue::kMnar);
}

rmap::MaskMatrix ClusteringDifferentiator::Differentiate(
    const rmap::RadioMap& map, Rng& rng) const {
  const SampleSet samples = BuildSampleSet(map, location_weight_);
  const Clustering clustering = clusterer_->Cluster(samples, rng);
  return DifferentiateWithClustering(samples, clustering, eta_);
}

SampledGroundTruth SampleGroundTruth(const SampleSet& samples, double gamma,
                                     size_t num_mnar, size_t mnar_group_size,
                                     Rng& rng) {
  RMI_CHECK_GT(gamma, 0.0);
  RMI_CHECK_GE(mnar_group_size, 2u);
  SampledGroundTruth gt;
  gt.modified = samples;
  const size_t n = samples.size();
  const size_t d = samples.num_aps;

  // --- Sample MNARs: groups of adjacent samples all missing the same AP.
  size_t mnar_found = 0;
  std::vector<size_t> ap_order(d);
  for (size_t j = 0; j < d; ++j) ap_order[j] = j;
  rng.Shuffle(&ap_order);
  for (size_t ap : ap_order) {
    if (mnar_found >= num_mnar) break;
    std::vector<size_t> missing;
    for (size_t i = 0; i < n; ++i) {
      if (samples.profiles[i][ap] == 0) missing.push_back(i);
    }
    if (missing.size() < mnar_group_size) continue;
    // Seed on a random missing sample, gather its nearest missing peers.
    const size_t seed = missing[rng.Index(missing.size())];
    std::vector<std::pair<double, size_t>> by_dist;
    by_dist.reserve(missing.size());
    for (size_t i : missing) {
      by_dist.emplace_back(
          geom::SquaredDistance(samples.locations[seed], samples.locations[i]),
          i);
    }
    std::nth_element(by_dist.begin(), by_dist.begin() + mnar_group_size - 1,
                     by_dist.end());
    for (size_t g = 0; g < mnar_group_size && mnar_found < num_mnar; ++g) {
      gt.cells.push_back({by_dist[g].second, ap, /*is_mar=*/false});
      ++mnar_found;
    }
  }

  // --- Sample MARs: nullify observed cells at the target proportion.
  const size_t num_mar = std::max<size_t>(
      1, static_cast<size_t>(std::llround(static_cast<double>(mnar_found) / gamma)));
  std::vector<std::pair<size_t, size_t>> observed;
  for (size_t i = 0; i < n; ++i) {
    for (size_t ap = 0; ap < d; ++ap) {
      if (samples.profiles[i][ap] == 1) observed.emplace_back(i, ap);
    }
  }
  const size_t take = std::min(num_mar, observed.size());
  for (size_t pick : rng.SampleWithoutReplacement(observed.size(), take)) {
    const auto [i, ap] = observed[pick];
    gt.cells.push_back({i, ap, /*is_mar=*/true});
    gt.modified.profiles[i][ap] = 0;
    gt.modified.features(i, ap) = 0.0;
  }
  return gt;
}

double DifferentiationAccuracy(const SampleSet& modified,
                               const Clustering& clustering,
                               const std::vector<GroundTruthCell>& cells,
                               double eta) {
  // Observed fraction per (cluster, ap) is reused across cells: cache.
  const auto groups = clustering.Groups();
  std::vector<std::vector<double>> frac_cache(
      groups.size(), std::vector<double>(modified.num_aps, -1.0));

  size_t mar_total = 0, mar_correct = 0;
  size_t mnar_total = 0, mnar_correct = 0;
  for (const GroundTruthCell& cell : cells) {
    const int c = clustering.assignment[cell.sample];
    RMI_CHECK_GE(c, 0);
    double& frac = frac_cache[static_cast<size_t>(c)][cell.ap];
    if (frac < 0.0) {
      frac = ObservedFraction(modified, groups[static_cast<size_t>(c)], cell.ap);
    }
    const bool predicted_mar = frac > eta;
    if (cell.is_mar) {
      ++mar_total;
      mar_correct += predicted_mar;
    } else {
      ++mnar_total;
      mnar_correct += !predicted_mar;
    }
  }
  const double tpr = mar_total ? static_cast<double>(mar_correct) /
                                     static_cast<double>(mar_total)
                               : 0.0;
  const double tnr = mnar_total ? static_cast<double>(mnar_correct) /
                                      static_cast<double>(mnar_total)
                                : 0.0;
  return (tpr + tnr) / 2.0;
}

}  // namespace rmi::cluster
