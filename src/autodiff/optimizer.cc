#include "autodiff/optimizer.h"

#include <cmath>

#include "common/check.h"

namespace rmi::ad {

Adam::Adam(std::vector<Tensor> params, double lr, double beta1, double beta2,
           double eps)
    : params_(std::move(params)), lr_(lr), beta1_(beta1), beta2_(beta2),
      eps_(eps) {
  for (const Tensor& p : params_) {
    RMI_CHECK(p.requires_grad());
    m_.emplace_back(p.rows(), p.cols());
    v_.emplace_back(p.rows(), p.cols());
  }
}

void Adam::Step() {
  ++step_;
  const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(step_));
  const double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(step_));
  for (size_t i = 0; i < params_.size(); ++i) {
    Tensor& p = params_[i];
    const la::Matrix& g = p.grad();
    la::Matrix& m = m_[i];
    la::Matrix& v = v_[i];
    la::Matrix& w = p.mutable_value();
    for (size_t j = 0; j < w.size(); ++j) {
      const double gj = g.data()[j];
      m.data()[j] = beta1_ * m.data()[j] + (1.0 - beta1_) * gj;
      v.data()[j] = beta2_ * v.data()[j] + (1.0 - beta2_) * gj * gj;
      const double mhat = m.data()[j] / bc1;
      const double vhat = v.data()[j] / bc2;
      w.data()[j] -= lr_ * mhat / (std::sqrt(vhat) + eps_);
    }
    p.ZeroGrad();
  }
}

void Adam::ZeroGrad() {
  for (Tensor& p : params_) p.ZeroGrad();
}

void Sgd::Step() {
  for (Tensor& p : params_) {
    la::Matrix& w = p.mutable_value();
    const la::Matrix& g = p.grad();
    for (size_t j = 0; j < w.size(); ++j) w.data()[j] -= lr_ * g.data()[j];
    p.ZeroGrad();
  }
}

void Sgd::ZeroGrad() {
  for (Tensor& p : params_) p.ZeroGrad();
}

void ClipGradNorm(const std::vector<Tensor>& params, double max_norm) {
  double total = 0.0;
  for (const Tensor& p : params) {
    const la::Matrix& g = p.grad();
    for (size_t j = 0; j < g.size(); ++j) total += g.data()[j] * g.data()[j];
  }
  total = std::sqrt(total);
  if (total <= max_norm || total == 0.0) return;
  const double scale = max_norm / total;
  for (const Tensor& p : params) {
    const_cast<la::Matrix&>(p.grad()) *= scale;
  }
}

std::vector<la::Matrix> SnapshotParams(const std::vector<Tensor>& params) {
  std::vector<la::Matrix> values;
  values.reserve(params.size());
  for (const Tensor& p : params) values.push_back(p.value());
  return values;
}

bool RestoreParams(const std::vector<Tensor>& params,
                   const std::vector<la::Matrix>& values) {
  if (params.size() != values.size()) return false;
  for (size_t i = 0; i < params.size(); ++i) {
    if (!params[i].value().SameShape(values[i])) return false;
  }
  for (size_t i = 0; i < params.size(); ++i) {
    Tensor handle = params[i];  // cheap node handle; same underlying value
    handle.mutable_value() = values[i];
  }
  return true;
}

}  // namespace rmi::ad
