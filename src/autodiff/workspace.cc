#include "autodiff/workspace.h"

#include <algorithm>

namespace rmi::ad {

Workspace& Workspace::Get() {
  thread_local Workspace ws;
  return ws;
}

la::Matrix Workspace::Acquire(size_t rows, size_t cols) {
  ++stats_.acquires;
  const size_t n = rows * cols;
  auto it = pool_.find(n);
  if (it != pool_.end() && !it->second.empty()) {
    ++stats_.pool_hits;
    std::vector<double> buf = std::move(it->second.back());
    it->second.pop_back();
    return la::Matrix::Adopt(rows, cols, std::move(buf));
  }
  ++stats_.fresh_allocs;
  return la::Matrix(rows, cols);
}

la::Matrix Workspace::AcquireZero(size_t rows, size_t cols) {
  la::Matrix m = Acquire(rows, cols);
  std::fill(m.data().begin(), m.data().end(), 0.0);
  return m;
}

void Workspace::Recycle(la::Matrix&& m) {
  const size_t n = m.size();
  if (n == 0) return;
  pool_[n].push_back(m.TakeBuffer());
}

}  // namespace rmi::ad
