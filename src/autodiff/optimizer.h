// First-order optimizers over autodiff parameters.
#ifndef RMI_AUTODIFF_OPTIMIZER_H_
#define RMI_AUTODIFF_OPTIMIZER_H_

#include <vector>

#include "autodiff/tensor.h"

namespace rmi::ad {

/// Adam (Kingma & Ba) — the paper trains all neural imputers with Adam at
/// learning rate 1e-3.
class Adam {
 public:
  explicit Adam(std::vector<Tensor> params, double lr = 1e-3,
                double beta1 = 0.9, double beta2 = 0.999, double eps = 1e-8);

  /// Applies one update from the accumulated gradients, then zeroes them.
  void Step();

  /// Zeroes gradients without updating (e.g., to drop a diverged batch).
  void ZeroGrad();

  double lr() const { return lr_; }
  void set_lr(double lr) { lr_ = lr; }
  const std::vector<Tensor>& params() const { return params_; }

 private:
  std::vector<Tensor> params_;
  std::vector<la::Matrix> m_;
  std::vector<la::Matrix> v_;
  double lr_, beta1_, beta2_, eps_;
  long step_ = 0;
};

/// Plain SGD (used by tests and the MF baseline's dense variant).
class Sgd {
 public:
  explicit Sgd(std::vector<Tensor> params, double lr = 1e-2)
      : params_(std::move(params)), lr_(lr) {}

  void Step();
  void ZeroGrad();

 private:
  std::vector<Tensor> params_;
  double lr_;
};

/// Gradient clipping by global L2 norm (applied before Step when training
/// recurrent models).
void ClipGradNorm(const std::vector<Tensor>& params, double max_norm);

/// Copies every parameter's current value — the warm-start snapshot the
/// incremental re-fit path (bisim::BiSimImputer::ImputeIncremental) stashes
/// between rebuilds. Plain matrices, detached from any graph.
std::vector<la::Matrix> SnapshotParams(const std::vector<Tensor>& params);

/// Writes a SnapshotParams result back into `params`. Returns false — and
/// leaves every parameter untouched — when the count or any shape
/// mismatches (a changed architecture must fall back to cold training, not
/// load half a model).
bool RestoreParams(const std::vector<Tensor>& params,
                   const std::vector<la::Matrix>& values);

}  // namespace rmi::ad

#endif  // RMI_AUTODIFF_OPTIMIZER_H_
