// Per-thread buffer arena for the autodiff tape.
//
// Every graph node's value/grad/aux matrix borrows its heap storage from
// the calling thread's Workspace and returns it when the node is released.
// Buffers are pooled by exact element count — the tape allocates the same
// fixed set of shapes every step, so after the first training step the pool
// holds one buffer per live shape slot and steady-state epochs perform no
// heap allocation for matrices (fresh_allocs in stats() stops growing).
//
// Thread model: each thread gets its own pool (thread_local singleton);
// a graph must be built, differentiated, and released on the same thread —
// which is how the trainer's per-sequence fan-out uses it.
#ifndef RMI_AUTODIFF_WORKSPACE_H_
#define RMI_AUTODIFF_WORKSPACE_H_

#include <cstddef>
#include <unordered_map>
#include <vector>

#include "la/matrix.h"

namespace rmi::ad {

class Workspace {
 public:
  struct Stats {
    size_t acquires = 0;      ///< total Acquire calls
    size_t pool_hits = 0;     ///< served from the pool (no heap touch)
    size_t fresh_allocs = 0;  ///< served by a new heap allocation
    size_t pooled_buffers = 0;  ///< buffers currently parked in the pool
  };

  /// The calling thread's workspace.
  static Workspace& Get();

  /// A rows x cols matrix backed by pooled storage. Contents are
  /// unspecified (stale pool data) — callers must overwrite every element.
  la::Matrix Acquire(size_t rows, size_t cols);

  /// Like Acquire, but zero-filled (for gradient accumulators).
  la::Matrix AcquireZero(size_t rows, size_t cols);

  /// Returns a matrix's storage to the pool. Empty matrices are ignored.
  void Recycle(la::Matrix&& m);

  Stats stats() const {
    Stats s = stats_;
    s.pooled_buffers = 0;
    for (const auto& [size, bucket] : pool_) {
      s.pooled_buffers += bucket.size();
    }
    return s;
  }
  void ResetStats() { stats_ = Stats(); }

  /// Drops every pooled buffer (frees the memory).
  void Clear() { pool_.clear(); }

 private:
  std::unordered_map<size_t, std::vector<std::vector<double>>> pool_;
  Stats stats_;
};

}  // namespace rmi::ad

#endif  // RMI_AUTODIFF_WORKSPACE_H_
