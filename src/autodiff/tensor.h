// Reverse-mode automatic differentiation over dense matrices.
//
// Define-by-run tape: every op builds a graph node holding its value, the
// parent handles, and a backward closure. Calling Backward() on a scalar
// node topologically sorts the reachable graph and accumulates gradients
// into every node that requires them. Parameters (leaves created with
// Tensor::Param) persist across steps; op nodes are released when the last
// handle drops.
//
// Sized for the paper's models: per-step vectors are 1 x K rows, sequences
// of length T=5, latent sizes of tens — graph sizes of a few hundred nodes.
#ifndef RMI_AUTODIFF_TENSOR_H_
#define RMI_AUTODIFF_TENSOR_H_

#include <functional>
#include <memory>
#include <vector>

#include "la/matrix.h"

namespace rmi::ad {

namespace internal {

struct Node {
  la::Matrix value;
  la::Matrix grad;  ///< allocated lazily; same shape as value
  bool requires_grad = false;
  std::vector<std::shared_ptr<Node>> parents;
  /// Propagates this node's grad into its parents' grads.
  std::function<void(Node&)> backward;

  void EnsureGrad() {
    if (grad.rows() != value.rows() || grad.cols() != value.cols()) {
      grad = la::Matrix(value.rows(), value.cols());
    }
  }
};

}  // namespace internal

/// Value handle into the autodiff graph (cheap shared-pointer copy).
class Tensor {
 public:
  Tensor() = default;

  /// Trainable leaf (gradient accumulated by Backward, consumed by Adam).
  static Tensor Param(la::Matrix value);

  /// Non-trainable leaf (inputs, masks).
  static Tensor Constant(la::Matrix value);

  bool defined() const { return node_ != nullptr; }
  const la::Matrix& value() const { return node_->value; }
  la::Matrix& mutable_value() { return node_->value; }
  const la::Matrix& grad() const { return node_->grad; }
  bool requires_grad() const { return node_->requires_grad; }

  size_t rows() const { return node_->value.rows(); }
  size_t cols() const { return node_->value.cols(); }

  /// Zeroes the accumulated gradient (typically on parameters after a step).
  void ZeroGrad();

  /// Runs reverse-mode accumulation from this scalar (1x1) node.
  void Backward() const;

  /// Internal: node access for op construction.
  const std::shared_ptr<internal::Node>& node() const { return node_; }
  explicit Tensor(std::shared_ptr<internal::Node> node)
      : node_(std::move(node)) {}

 private:
  std::shared_ptr<internal::Node> node_;
};

/// --- Ops (shape-checked; broadcast rules documented per op). -------------

/// Elementwise a + b (same shape).
Tensor Add(const Tensor& a, const Tensor& b);
/// Elementwise a - b.
Tensor Sub(const Tensor& a, const Tensor& b);
/// Elementwise (Hadamard) a * b.
Tensor Mul(const Tensor& a, const Tensor& b);
/// Matrix product (r x k) * (k x c).
Tensor MatMul(const Tensor& a, const Tensor& b);
/// x * s for a compile-time-known scalar s.
Tensor Scale(const Tensor& x, double s);
/// Adds a 1 x C bias row to every row of x (N x C).
Tensor AddRowBroadcast(const Tensor& x, const Tensor& bias);
/// scalar (1x1 tensor) * x, broadcast.
Tensor ScaleBy(const Tensor& scalar, const Tensor& x);

Tensor Sigmoid(const Tensor& x);
Tensor Tanh(const Tensor& x);
Tensor Relu(const Tensor& x);
/// exp(x), elementwise.
Tensor Exp(const Tensor& x);

/// Horizontal concatenation [a | b] of two single-row (or same-row) tensors.
Tensor ConcatCols(const Tensor& a, const Tensor& b);
/// Columns [c0, c1) of x.
Tensor SliceCols(const Tensor& x, size_t c0, size_t c1);

/// Row-wise softmax (each row normalized independently).
Tensor SoftmaxRows(const Tensor& x);

/// Scalar sum of all entries.
Tensor Sum(const Tensor& x);
/// Mean of all entries (scalar).
Tensor Mean(const Tensor& x);
/// Mean squared error between same-shape tensors (scalar).
Tensor Mse(const Tensor& a, const Tensor& b);
/// Masked MSE: mean over all entries of (mask*(a-b))^2 — the paper's
/// L(a, a', mask) with a constant 0/1 mask.
Tensor MaskedMse(const Tensor& a, const Tensor& b, const la::Matrix& mask);
/// Numerically stable binary cross-entropy with logits against constant
/// targets in [0,1]; returns the scalar mean.
Tensor BceWithLogits(const Tensor& logits, const la::Matrix& targets);

}  // namespace rmi::ad

#endif  // RMI_AUTODIFF_TENSOR_H_
