// Reverse-mode automatic differentiation over dense matrices.
//
// Define-by-run tape: every op builds a graph node holding its value, the
// parent handles, and an op tag. Calling Backward() on a scalar node
// topologically sorts the reachable graph and accumulates gradients into
// every node that requires them, dispatching each op's adjoint through a
// switch (no std::function anywhere on the tape). Parameters (leaves
// created with Tensor::Param) persist across steps; op nodes are released
// when the last handle drops, returning their matrix buffers to the
// calling thread's Workspace — steady-state training epochs perform no
// per-op matrix allocations.
//
// Gradient accumulation is fused: matmul adjoints run through
// la::Gemm(beta=1) straight into the parent's grad buffer, elementwise
// adjoints through la::CwiseBinaryAccumulate.
//
// Sized for the paper's models: per-step vectors are 1 x K rows, sequences
// of length T=5, latent sizes of tens — graph sizes of a few hundred nodes.
#ifndef RMI_AUTODIFF_TENSOR_H_
#define RMI_AUTODIFF_TENSOR_H_

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "la/matrix.h"

namespace rmi::ad {

namespace internal {

/// Every differentiable op the tape supports; the backward pass switches
/// on this tag.
enum class OpKind : uint8_t {
  kLeaf,             // Param / Constant
  kAdd,              // a + b
  kSub,              // a - b
  kMul,              // a ⊙ b
  kMatMul,           // a @ b
  kScale,            // a * scalar
  kAddRowBroadcast,  // a + row
  kAffine,           // x @ w + row  (fused Linear)
  kScaleBy,          // (1x1 tensor) * x
  kSigmoid,
  kTanh,
  kRelu,
  kExp,
  kConcatCols,   // [a | b], index = a.cols()
  kConcatRows,   // [a ; b], index = a.rows()
  kSliceCols,    // x[:, c0:c1], index = c0
  kRepeatRows,   // 1 x C row tiled to N x C
  kTranspose,    // x^T
  kSoftmaxRows,  // row-wise softmax
  kSum,          // scalar sum of entries
  kLstmGates,      // fused LSTM pointwise block: (gates, c_prev) -> [h | c]
  kMaskCombine,    // m ⊙ obs + (1-m) ⊙ pred, aux = m (obs, m constant)
  kMaskedMse,      // mean((mask ⊙ (a-b))^2), aux = mask
  kBceWithLogits,  // stable BCE vs constant targets, aux = targets
};

struct Node {
  la::Matrix value;
  la::Matrix grad;  ///< workspace-backed; acquired lazily, zero-initialized
  la::Matrix aux;   ///< per-op constant payload (mask / targets)
  OpKind op = OpKind::kLeaf;
  bool requires_grad = false;
  uint64_t visit_mark = 0;  ///< topo-sort stamp (thread-confined graphs)
  double scalar = 0.0;      ///< kScale factor / cached multiplier
  size_t index = 0;         ///< kConcatCols split / kSliceCols offset
  std::array<std::shared_ptr<Node>, 3> parents;  ///< up to 3 (kAffine)
  size_t num_parents = 0;

  Node() = default;
  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;
  /// Returns value/grad/aux buffers to the calling thread's Workspace.
  ~Node();

  void EnsureGrad();
  /// Propagates this node's grad into its parents' grads (op switch).
  void Backprop();
};

}  // namespace internal

/// Value handle into the autodiff graph (cheap shared-pointer copy).
class Tensor {
 public:
  Tensor() = default;

  /// Trainable leaf (gradient accumulated by Backward, consumed by Adam).
  /// Not workspace-pooled: parameters persist across steps.
  static Tensor Param(la::Matrix value);

  /// Non-trainable leaf (inputs, masks); the value is copied into pooled
  /// storage so per-step constants recycle like any other node.
  static Tensor Constant(const la::Matrix& value);

  bool defined() const { return node_ != nullptr; }
  const la::Matrix& value() const { return node_->value; }
  la::Matrix& mutable_value() { return node_->value; }
  const la::Matrix& grad() const { return node_->grad; }
  bool requires_grad() const { return node_->requires_grad; }

  size_t rows() const { return node_->value.rows(); }
  size_t cols() const { return node_->value.cols(); }

  /// Zeroes the accumulated gradient (typically on parameters after a step).
  void ZeroGrad();

  /// Runs reverse-mode accumulation from this scalar (1x1) node.
  void Backward() const;

  /// Internal: node access for op construction.
  const std::shared_ptr<internal::Node>& node() const { return node_; }
  explicit Tensor(std::shared_ptr<internal::Node> node)
      : node_(std::move(node)) {}

 private:
  std::shared_ptr<internal::Node> node_;
};

/// Redirects leaf-parameter gradient accumulation into per-thread shadow
/// buffers so several workers can run Backward() on graphs sharing the
/// same parameters without racing. Install with ScopedGradSink; merge the
/// shards into the real parameter grads between batches (fixed order keeps
/// training deterministic for a given thread count).
class GradSink {
 public:
  explicit GradSink(const std::vector<Tensor>& params);

  /// Shadow grad for `node`, or nullptr if it is not a tracked parameter.
  la::Matrix* Find(const internal::Node* node);

  /// Shadow grads, parallel to the constructor's params order.
  std::vector<la::Matrix>& grads() { return grads_; }
  void ZeroAll();

  /// Scratch accumulator for the caller (per-thread loss sums).
  double loss_sum = 0.0;

 private:
  std::vector<const internal::Node*> nodes_;
  std::vector<la::Matrix> grads_;
};

/// RAII installer of the calling thread's active GradSink.
class ScopedGradSink {
 public:
  explicit ScopedGradSink(GradSink* sink);
  ~ScopedGradSink();
  ScopedGradSink(const ScopedGradSink&) = delete;
  ScopedGradSink& operator=(const ScopedGradSink&) = delete;

 private:
  GradSink* previous_;
};

/// --- Ops (shape-checked; broadcast rules documented per op). -------------

/// Elementwise a + b (same shape).
Tensor Add(const Tensor& a, const Tensor& b);
/// Elementwise a - b.
Tensor Sub(const Tensor& a, const Tensor& b);
/// Elementwise (Hadamard) a * b.
Tensor Mul(const Tensor& a, const Tensor& b);
/// Matrix product (r x k) * (k x c).
Tensor MatMul(const Tensor& a, const Tensor& b);
/// x * s for a compile-time-known scalar s.
Tensor Scale(const Tensor& x, double s);
/// Adds a 1 x C bias row to every row of x (N x C).
Tensor AddRowBroadcast(const Tensor& x, const Tensor& bias);
/// Fused affine map x @ w + bias (one node instead of MatMul +
/// AddRowBroadcast; the adjoint accumulates via Gemm(beta=1)).
Tensor Affine(const Tensor& x, const Tensor& w, const Tensor& bias);
/// scalar (1x1 tensor) * x, broadcast.
Tensor ScaleBy(const Tensor& scalar, const Tensor& x);

Tensor Sigmoid(const Tensor& x);
Tensor Tanh(const Tensor& x);
Tensor Relu(const Tensor& x);
/// exp(x), elementwise.
Tensor Exp(const Tensor& x);

/// Horizontal concatenation [a | b] of two single-row (or same-row) tensors.
Tensor ConcatCols(const Tensor& a, const Tensor& b);
/// Vertical concatenation [a ; b] (equal column counts) — used to stack
/// per-step latents into one batched operand.
Tensor ConcatRows(const Tensor& a, const Tensor& b);
/// Columns [c0, c1) of x.
Tensor SliceCols(const Tensor& x, size_t c0, size_t c1);
/// The 1 x C row x tiled to n x C (broadcast over a batch dimension).
Tensor RepeatRows(const Tensor& x, size_t n);
/// Matrix transpose.
Tensor Transpose(const Tensor& x);

/// Row-wise softmax (each row normalized independently).
Tensor SoftmaxRows(const Tensor& x);

/// Fused LSTM pointwise block. `gates` is the N x 4H pre-activation
/// [i, f, g, o] block, c_prev the N x H previous cell state; returns
/// [h | c] (N x 2H) where c = sigmoid(f)*c_prev + sigmoid(i)*tanh(g) and
/// h = sigmoid(o)*tanh(c). One node instead of the 11-node slice/
/// activation/combine chain; activations are recomputed pointwise in the
/// adjoint rather than stored.
Tensor LstmGates(const Tensor& gates, const Tensor& c_prev);

/// Scalar sum of all entries.
Tensor Sum(const Tensor& x);
/// Mean of all entries (scalar).
Tensor Mean(const Tensor& x);
/// Fused missing-data combine (paper Eqs. 3/7) with constant mask m and
/// observation vector obs:  m ⊙ obs + (1-m) ⊙ pred. One node instead of
/// two Mul + one Add + two Constant nodes.
Tensor MaskCombine(const la::Matrix& m, const la::Matrix& obs,
                   const Tensor& pred);
/// Mean squared error between same-shape tensors (scalar).
Tensor Mse(const Tensor& a, const Tensor& b);
/// Masked MSE: mean over all entries of (mask*(a-b))^2 — the paper's
/// L(a, a', mask) with a constant 0/1 mask. Fused single node.
Tensor MaskedMse(const Tensor& a, const Tensor& b, const la::Matrix& mask);
/// Numerically stable binary cross-entropy with logits against constant
/// targets in [0,1]; returns the scalar mean.
Tensor BceWithLogits(const Tensor& logits, const la::Matrix& targets);

}  // namespace rmi::ad

#endif  // RMI_AUTODIFF_TENSOR_H_
