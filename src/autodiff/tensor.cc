#include "autodiff/tensor.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "autodiff/workspace.h"
#include "common/check.h"
#include "la/kernels.h"

namespace rmi::ad {

using internal::Node;
using internal::OpKind;

namespace {

/// Active gradient sink of the calling thread (see GradSink).
thread_local GradSink* tls_grad_sink = nullptr;

/// Where a parent's gradient should accumulate: the sink's shadow buffer
/// for tracked leaf parameters, the node's own grad otherwise. Returns
/// nullptr when the parent does not participate in training.
la::Matrix* GradTarget(Node* p) {
  if (!p->requires_grad) return nullptr;
  if (tls_grad_sink != nullptr && p->op == OpKind::kLeaf) {
    if (la::Matrix* shadow = tls_grad_sink->Find(p)) return shadow;
  }
  p->EnsureGrad();
  return &p->grad;
}

std::shared_ptr<Node> NewNode(OpKind op, la::Matrix value,
                              const std::shared_ptr<Node>& p0,
                              const std::shared_ptr<Node>& p1 = nullptr,
                              const std::shared_ptr<Node>& p2 = nullptr) {
  auto n = std::make_shared<Node>();
  n->op = op;
  n->value = std::move(value);
  if (p0) n->parents[n->num_parents++] = p0;
  if (p1) n->parents[n->num_parents++] = p1;
  if (p2) n->parents[n->num_parents++] = p2;
  for (size_t i = 0; i < n->num_parents; ++i) {
    if (n->parents[i]->requires_grad) {
      n->requires_grad = true;
      break;
    }
  }
  return n;
}

/// Numerically stable logistic function.
inline double StableSigmoid(double v) {
  return v >= 0 ? 1.0 / (1.0 + std::exp(-v))
                : std::exp(v) / (1.0 + std::exp(v));
}

}  // namespace

namespace internal {

Node::~Node() {
  Workspace& ws = Workspace::Get();
  if (value.size() != 0) ws.Recycle(std::move(value));
  if (grad.size() != 0) ws.Recycle(std::move(grad));
  if (aux.size() != 0) ws.Recycle(std::move(aux));
}

void Node::EnsureGrad() {
  if (grad.rows() != value.rows() || grad.cols() != value.cols()) {
    Workspace& ws = Workspace::Get();
    if (grad.size() != 0) ws.Recycle(std::move(grad));
    grad = ws.AcquireZero(value.rows(), value.cols());
  }
}

void Node::Backprop() {
  Node* p0 = num_parents > 0 ? parents[0].get() : nullptr;
  Node* p1 = num_parents > 1 ? parents[1].get() : nullptr;
  Node* p2 = num_parents > 2 ? parents[2].get() : nullptr;
  const la::Matrix& g = grad;
  switch (op) {
    case OpKind::kLeaf:
      break;
    case OpKind::kAdd: {
      if (la::Matrix* t = GradTarget(p0)) la::Axpy(1.0, g, t);
      if (la::Matrix* t = GradTarget(p1)) la::Axpy(1.0, g, t);
      break;
    }
    case OpKind::kSub: {
      if (la::Matrix* t = GradTarget(p0)) la::Axpy(1.0, g, t);
      if (la::Matrix* t = GradTarget(p1)) la::Axpy(-1.0, g, t);
      break;
    }
    case OpKind::kMul: {
      if (la::Matrix* t = GradTarget(p0)) {
        la::CwiseBinaryAccumulate(g, p1->value, t,
                                  [](double gi, double v) { return gi * v; });
      }
      if (la::Matrix* t = GradTarget(p1)) {
        la::CwiseBinaryAccumulate(g, p0->value, t,
                                  [](double gi, double v) { return gi * v; });
      }
      break;
    }
    case OpKind::kMatMul: {
      if (la::Matrix* t = GradTarget(p0)) {
        la::Gemm(1.0, g, false, p1->value, true, 1.0, t);
      }
      if (la::Matrix* t = GradTarget(p1)) {
        la::Gemm(1.0, p0->value, true, g, false, 1.0, t);
      }
      break;
    }
    case OpKind::kScale: {
      if (la::Matrix* t = GradTarget(p0)) la::Axpy(scalar, g, t);
      break;
    }
    case OpKind::kAddRowBroadcast: {
      if (la::Matrix* t = GradTarget(p0)) la::Axpy(1.0, g, t);
      if (la::Matrix* t = GradTarget(p1)) la::AccumulateColSums(g, t);
      break;
    }
    case OpKind::kAffine: {
      // value = x @ w + bias; parents: [x, w, bias].
      if (la::Matrix* t = GradTarget(p0)) {
        la::Gemm(1.0, g, false, p1->value, true, 1.0, t);
      }
      if (la::Matrix* t = GradTarget(p1)) {
        la::Gemm(1.0, p0->value, true, g, false, 1.0, t);
      }
      if (la::Matrix* t = GradTarget(p2)) la::AccumulateColSums(g, t);
      break;
    }
    case OpKind::kScaleBy: {
      // parents: [scalar, x].
      const double sv = p0->value(0, 0);
      if (la::Matrix* t = GradTarget(p1)) la::Axpy(sv, g, t);
      if (la::Matrix* t = GradTarget(p0)) {
        double dot = 0.0;
        const double* pg = g.data().data();
        const double* px = p1->value.data().data();
        for (size_t i = 0; i < g.size(); ++i) dot += pg[i] * px[i];
        (*t)(0, 0) += dot;
      }
      break;
    }
    case OpKind::kSigmoid: {
      if (la::Matrix* t = GradTarget(p0)) {
        la::CwiseBinaryAccumulate(g, value, t, [](double gi, double v) {
          return gi * (v * (1.0 - v));
        });
      }
      break;
    }
    case OpKind::kTanh: {
      if (la::Matrix* t = GradTarget(p0)) {
        la::CwiseBinaryAccumulate(g, value, t, [](double gi, double v) {
          return gi * (1.0 - v * v);
        });
      }
      break;
    }
    case OpKind::kRelu: {
      if (la::Matrix* t = GradTarget(p0)) {
        la::CwiseBinaryAccumulate(g, p0->value, t, [](double gi, double x) {
          return x > 0 ? gi : 0.0;
        });
      }
      break;
    }
    case OpKind::kExp: {
      if (la::Matrix* t = GradTarget(p0)) {
        la::CwiseBinaryAccumulate(g, value, t, [](double gi, double v) {
          return gi * v;
        });
      }
      break;
    }
    case OpKind::kConcatCols: {
      const size_t ca = index;
      const size_t cols = g.cols();
      if (la::Matrix* t = GradTarget(p0)) {
        for (size_t i = 0; i < g.rows(); ++i) {
          const double* grow = g.data().data() + i * cols;
          double* trow = t->data().data() + i * ca;
          for (size_t j = 0; j < ca; ++j) trow[j] += grow[j];
        }
      }
      if (la::Matrix* t = GradTarget(p1)) {
        const size_t cb = cols - ca;
        for (size_t i = 0; i < g.rows(); ++i) {
          const double* grow = g.data().data() + i * cols + ca;
          double* trow = t->data().data() + i * cb;
          for (size_t j = 0; j < cb; ++j) trow[j] += grow[j];
        }
      }
      break;
    }
    case OpKind::kConcatRows: {
      const size_t ra = index;
      const size_t cols = g.cols();
      if (la::Matrix* t = GradTarget(p0)) {
        const double* src = g.data().data();
        double* dst = t->data().data();
        for (size_t i = 0; i < ra * cols; ++i) dst[i] += src[i];
      }
      if (la::Matrix* t = GradTarget(p1)) {
        const double* src = g.data().data() + ra * cols;
        double* dst = t->data().data();
        const size_t n = (g.rows() - ra) * cols;
        for (size_t i = 0; i < n; ++i) dst[i] += src[i];
      }
      break;
    }
    case OpKind::kRepeatRows: {
      if (la::Matrix* t = GradTarget(p0)) la::AccumulateColSums(g, t);
      break;
    }
    case OpKind::kTranspose: {
      if (la::Matrix* t = GradTarget(p0)) {
        for (size_t i = 0; i < g.rows(); ++i) {
          for (size_t j = 0; j < g.cols(); ++j) (*t)(j, i) += g(i, j);
        }
      }
      break;
    }
    case OpKind::kSliceCols: {
      const size_t c0 = index;
      if (la::Matrix* t = GradTarget(p0)) {
        const size_t w = g.cols();
        const size_t pcols = t->cols();
        for (size_t i = 0; i < g.rows(); ++i) {
          const double* grow = g.data().data() + i * w;
          double* trow = t->data().data() + i * pcols + c0;
          for (size_t j = 0; j < w; ++j) trow[j] += grow[j];
        }
      }
      break;
    }
    case OpKind::kSoftmaxRows: {
      if (la::Matrix* t = GradTarget(p0)) {
        for (size_t i = 0; i < value.rows(); ++i) {
          double dot = 0.0;
          for (size_t j = 0; j < value.cols(); ++j) {
            dot += g(i, j) * value(i, j);
          }
          for (size_t j = 0; j < value.cols(); ++j) {
            (*t)(i, j) += value(i, j) * (g(i, j) - dot);
          }
        }
      }
      break;
    }
    case OpKind::kSum: {
      if (la::Matrix* t = GradTarget(p0)) {
        const double gs = g(0, 0);
        double* pt = t->data().data();
        for (size_t i = 0; i < t->size(); ++i) pt[i] += gs;
      }
      break;
    }
    case OpKind::kLstmGates: {
      // value = [h | c]; parents [gates (N x 4H), c_prev (N x H)]. The
      // gate activations are cheap to recompute from the pre-activations.
      const size_t h_dim = value.cols() / 2;
      la::Matrix* tg = GradTarget(p0);
      la::Matrix* tc = GradTarget(p1);
      if (tg == nullptr && tc == nullptr) break;
      for (size_t r = 0; r < value.rows(); ++r) {
        const double* grow = g.data().data() + r * 2 * h_dim;     // [Gh|Gc]
        const double* gate = p0->value.data().data() + r * 4 * h_dim;
        const double* cprow = p1->value.data().data() + r * h_dim;
        const double* vrow = value.data().data() + r * 2 * h_dim;  // [h|c]
        double* tgrow =
            tg != nullptr ? tg->data().data() + r * 4 * h_dim : nullptr;
        double* tcrow =
            tc != nullptr ? tc->data().data() + r * h_dim : nullptr;
        for (size_t j = 0; j < h_dim; ++j) {
          const double iv = StableSigmoid(gate[j]);
          const double fv = StableSigmoid(gate[h_dim + j]);
          const double gv = std::tanh(gate[2 * h_dim + j]);
          const double ov = StableSigmoid(gate[3 * h_dim + j]);
          const double tanh_c = std::tanh(vrow[h_dim + j]);
          const double gh = grow[j];
          const double gc = grow[h_dim + j];
          const double dc = gc + gh * ov * (1.0 - tanh_c * tanh_c);
          if (tgrow != nullptr) {
            tgrow[j] += dc * gv * (iv * (1.0 - iv));
            tgrow[h_dim + j] += dc * cprow[j] * (fv * (1.0 - fv));
            tgrow[2 * h_dim + j] += dc * iv * (1.0 - gv * gv);
            tgrow[3 * h_dim + j] += gh * tanh_c * (ov * (1.0 - ov));
          }
          if (tcrow != nullptr) tcrow[j] += dc * fv;
        }
      }
      break;
    }
    case OpKind::kMaskCombine: {
      // value = m ⊙ obs + (1-m) ⊙ pred; parent: [pred]; aux = m.
      if (la::Matrix* t = GradTarget(p0)) {
        la::CwiseBinaryAccumulate(g, aux, t, [](double gi, double m) {
          return gi * (1.0 - m);
        });
      }
      break;
    }
    case OpKind::kMaskedMse: {
      // value = mean((mask ⊙ (a-b))^2); parents [a, b]; aux = mask;
      // scalar = 1/N. Accumulation order mirrors the unfused
      // Sub/Mul/Mean chain so results match it bit-for-bit.
      const double inv = scalar;
      const double gs = g(0, 0) * inv;
      la::Matrix* ta = GradTarget(p0);
      la::Matrix* tb = GradTarget(p1);
      if (ta == nullptr && tb == nullptr) break;
      const double* pa = p0->value.data().data();
      const double* pb = p1->value.data().data();
      const double* pm = aux.data().data();
      for (size_t i = 0; i < aux.size(); ++i) {
        const double d = (pa[i] - pb[i]) * pm[i];
        const double gd = gs * d;
        const double gm = (gd + gd) * pm[i];
        if (ta != nullptr) ta->data()[i] += gm;
        if (tb != nullptr) tb->data()[i] += gm * -1.0;
      }
      break;
    }
    case OpKind::kBceWithLogits: {
      if (la::Matrix* t = GradTarget(p0)) {
        const double gs = g(0, 0) / static_cast<double>(p0->value.size());
        const double* px = p0->value.data().data();
        const double* pt = aux.data().data();
        double* dst = t->data().data();
        for (size_t i = 0; i < p0->value.size(); ++i) {
          dst[i] += gs * (StableSigmoid(px[i]) - pt[i]);
        }
      }
      break;
    }
  }
}

}  // namespace internal

GradSink::GradSink(const std::vector<Tensor>& params) {
  nodes_.reserve(params.size());
  grads_.reserve(params.size());
  for (const Tensor& p : params) {
    RMI_CHECK(p.requires_grad());
    nodes_.push_back(p.node().get());
    grads_.emplace_back(p.rows(), p.cols());
  }
}

la::Matrix* GradSink::Find(const internal::Node* node) {
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i] == node) return &grads_[i];
  }
  return nullptr;
}

void GradSink::ZeroAll() {
  for (la::Matrix& g : grads_) la::Fill(&g, 0.0);
  loss_sum = 0.0;
}

ScopedGradSink::ScopedGradSink(GradSink* sink) : previous_(tls_grad_sink) {
  tls_grad_sink = sink;
}

ScopedGradSink::~ScopedGradSink() { tls_grad_sink = previous_; }

Tensor Tensor::Param(la::Matrix value) {
  auto n = std::make_shared<Node>();
  n->value = std::move(value);
  n->requires_grad = true;
  n->EnsureGrad();
  return Tensor(std::move(n));
}

Tensor Tensor::Constant(const la::Matrix& value) {
  auto n = std::make_shared<Node>();
  n->value = Workspace::Get().Acquire(value.rows(), value.cols());
  std::copy(value.data().begin(), value.data().end(), n->value.data().begin());
  return Tensor(std::move(n));
}

void Tensor::ZeroGrad() {
  node_->EnsureGrad();
  la::Fill(&node_->grad, 0.0);
}

void Tensor::Backward() const {
  RMI_CHECK(node_ != nullptr);
  RMI_CHECK_EQ(node_->value.rows(), 1u);
  RMI_CHECK_EQ(node_->value.cols(), 1u);
  // Iterative post-order topological sort (graphs can be deep for long
  // sequences; avoid recursion). Scratch vectors and the visit counter are
  // thread-local: graphs are built and differentiated on one thread, and
  // leaves (shared parameters) are never stamped.
  thread_local uint64_t mark_counter = 0;
  thread_local std::vector<Node*> order;
  thread_local std::vector<std::pair<Node*, size_t>> stack;
  const uint64_t mark = ++mark_counter;
  order.clear();
  stack.clear();

  Node* root = node_.get();
  root->EnsureGrad();
  la::Fill(&root->grad, 1.0);
  if (root->num_parents == 0) return;
  root->visit_mark = mark;
  stack.emplace_back(root, 0);
  while (!stack.empty()) {
    auto& [n, idx] = stack.back();
    if (idx < n->num_parents) {
      Node* p = n->parents[idx].get();
      ++idx;
      if (p->requires_grad && p->num_parents > 0 && p->visit_mark != mark) {
        p->visit_mark = mark;
        stack.emplace_back(p, 0);
      }
    } else {
      order.push_back(n);
      stack.pop_back();
    }
  }
  // Propagate in reverse topological order. Each node's grad buffer is
  // acquired (zeroed) on first accumulation by its consumers, which all
  // run before the node itself.
  for (auto it = order.rbegin(); it != order.rend(); ++it) (*it)->Backprop();
}

Tensor Add(const Tensor& a, const Tensor& b) {
  RMI_CHECK(a.value().SameShape(b.value()));
  la::Matrix v = Workspace::Get().Acquire(a.rows(), a.cols());
  la::CwiseBinaryInto(a.value(), b.value(), &v,
                      [](double x, double y) { return x + y; });
  return Tensor(NewNode(OpKind::kAdd, std::move(v), a.node(), b.node()));
}

Tensor Sub(const Tensor& a, const Tensor& b) {
  RMI_CHECK(a.value().SameShape(b.value()));
  la::Matrix v = Workspace::Get().Acquire(a.rows(), a.cols());
  la::CwiseBinaryInto(a.value(), b.value(), &v,
                      [](double x, double y) { return x - y; });
  return Tensor(NewNode(OpKind::kSub, std::move(v), a.node(), b.node()));
}

Tensor Mul(const Tensor& a, const Tensor& b) {
  RMI_CHECK(a.value().SameShape(b.value()));
  la::Matrix v = Workspace::Get().Acquire(a.rows(), a.cols());
  la::CwiseBinaryInto(a.value(), b.value(), &v,
                      [](double x, double y) { return x * y; });
  return Tensor(NewNode(OpKind::kMul, std::move(v), a.node(), b.node()));
}

Tensor MatMul(const Tensor& a, const Tensor& b) {
  la::Matrix v = Workspace::Get().Acquire(a.rows(), b.cols());
  la::Gemm(1.0, a.value(), false, b.value(), false, 0.0, &v);
  return Tensor(NewNode(OpKind::kMatMul, std::move(v), a.node(), b.node()));
}

Tensor Scale(const Tensor& x, double s) {
  la::Matrix v = Workspace::Get().Acquire(x.rows(), x.cols());
  la::CwiseUnaryInto(x.value(), &v, [s](double xv) { return xv * s; });
  auto n = NewNode(OpKind::kScale, std::move(v), x.node());
  n->scalar = s;
  return Tensor(std::move(n));
}

Tensor AddRowBroadcast(const Tensor& x, const Tensor& bias) {
  RMI_CHECK_EQ(bias.rows(), 1u);
  RMI_CHECK_EQ(bias.cols(), x.cols());
  la::Matrix v = Workspace::Get().Acquire(x.rows(), x.cols());
  la::AddRowBroadcastInto(x.value(), bias.value(), &v);
  return Tensor(
      NewNode(OpKind::kAddRowBroadcast, std::move(v), x.node(), bias.node()));
}

Tensor Affine(const Tensor& x, const Tensor& w, const Tensor& bias) {
  RMI_CHECK_EQ(x.cols(), w.rows());
  RMI_CHECK_EQ(bias.rows(), 1u);
  RMI_CHECK_EQ(bias.cols(), w.cols());
  la::Matrix v = Workspace::Get().Acquire(x.rows(), w.cols());
  la::Gemm(1.0, x.value(), false, w.value(), false, 0.0, &v);
  la::AddRowBroadcastInPlace(&v, bias.value());
  return Tensor(NewNode(OpKind::kAffine, std::move(v), x.node(), w.node(),
                        bias.node()));
}

Tensor ScaleBy(const Tensor& scalar, const Tensor& x) {
  RMI_CHECK_EQ(scalar.rows(), 1u);
  RMI_CHECK_EQ(scalar.cols(), 1u);
  const double s = scalar.value()(0, 0);
  la::Matrix v = Workspace::Get().Acquire(x.rows(), x.cols());
  la::CwiseUnaryInto(x.value(), &v, [s](double xv) { return xv * s; });
  return Tensor(
      NewNode(OpKind::kScaleBy, std::move(v), scalar.node(), x.node()));
}

Tensor Sigmoid(const Tensor& x) {
  la::Matrix v = Workspace::Get().Acquire(x.rows(), x.cols());
  la::CwiseUnaryInto(x.value(), &v,
                     [](double xv) { return StableSigmoid(xv); });
  return Tensor(NewNode(OpKind::kSigmoid, std::move(v), x.node()));
}

Tensor Tanh(const Tensor& x) {
  la::Matrix v = Workspace::Get().Acquire(x.rows(), x.cols());
  la::CwiseUnaryInto(x.value(), &v, [](double xv) { return std::tanh(xv); });
  return Tensor(NewNode(OpKind::kTanh, std::move(v), x.node()));
}

Tensor Relu(const Tensor& x) {
  la::Matrix v = Workspace::Get().Acquire(x.rows(), x.cols());
  la::CwiseUnaryInto(x.value(), &v,
                     [](double xv) { return xv > 0 ? xv : 0.0; });
  return Tensor(NewNode(OpKind::kRelu, std::move(v), x.node()));
}

Tensor Exp(const Tensor& x) {
  la::Matrix v = Workspace::Get().Acquire(x.rows(), x.cols());
  la::CwiseUnaryInto(x.value(), &v, [](double xv) { return std::exp(xv); });
  return Tensor(NewNode(OpKind::kExp, std::move(v), x.node()));
}

Tensor ConcatCols(const Tensor& a, const Tensor& b) {
  RMI_CHECK_EQ(a.rows(), b.rows());
  la::Matrix v = Workspace::Get().Acquire(a.rows(), a.cols() + b.cols());
  la::ConcatColsInto(a.value(), b.value(), &v);
  auto n = NewNode(OpKind::kConcatCols, std::move(v), a.node(), b.node());
  n->index = a.cols();
  return Tensor(std::move(n));
}

Tensor ConcatRows(const Tensor& a, const Tensor& b) {
  RMI_CHECK_EQ(a.cols(), b.cols());
  la::Matrix v = Workspace::Get().Acquire(a.rows() + b.rows(), a.cols());
  std::copy(a.value().data().begin(), a.value().data().end(),
            v.data().begin());
  std::copy(b.value().data().begin(), b.value().data().end(),
            v.data().begin() + a.value().size());
  auto n = NewNode(OpKind::kConcatRows, std::move(v), a.node(), b.node());
  n->index = a.rows();
  return Tensor(std::move(n));
}

Tensor RepeatRows(const Tensor& x, size_t n_rows) {
  RMI_CHECK_EQ(x.rows(), 1u);
  const size_t cols = x.cols();
  la::Matrix v = Workspace::Get().Acquire(n_rows, cols);
  for (size_t i = 0; i < n_rows; ++i) {
    std::copy(x.value().data().begin(), x.value().data().end(),
              v.data().begin() + i * cols);
  }
  return Tensor(NewNode(OpKind::kRepeatRows, std::move(v), x.node()));
}

Tensor Transpose(const Tensor& x) {
  la::Matrix v = Workspace::Get().Acquire(x.cols(), x.rows());
  for (size_t i = 0; i < x.rows(); ++i) {
    for (size_t j = 0; j < x.cols(); ++j) v(j, i) = x.value()(i, j);
  }
  return Tensor(NewNode(OpKind::kTranspose, std::move(v), x.node()));
}

Tensor SliceCols(const Tensor& x, size_t c0, size_t c1) {
  la::Matrix v = Workspace::Get().Acquire(x.rows(), c1 - c0);
  la::SliceColsInto(x.value(), c0, c1, &v);
  auto n = NewNode(OpKind::kSliceCols, std::move(v), x.node());
  n->index = c0;
  return Tensor(std::move(n));
}

Tensor SoftmaxRows(const Tensor& x) {
  la::Matrix y = Workspace::Get().Acquire(x.rows(), x.cols());
  std::copy(x.value().data().begin(), x.value().data().end(),
            y.data().begin());
  for (size_t i = 0; i < y.rows(); ++i) {
    double mx = -1e300;
    for (size_t j = 0; j < y.cols(); ++j) mx = std::max(mx, y(i, j));
    double sum = 0.0;
    for (size_t j = 0; j < y.cols(); ++j) {
      y(i, j) = std::exp(y(i, j) - mx);
      sum += y(i, j);
    }
    for (size_t j = 0; j < y.cols(); ++j) y(i, j) /= sum;
  }
  return Tensor(NewNode(OpKind::kSoftmaxRows, std::move(y), x.node()));
}

Tensor LstmGates(const Tensor& gates, const Tensor& c_prev) {
  RMI_CHECK_EQ(gates.cols() % 4, 0u);
  const size_t h_dim = gates.cols() / 4;
  RMI_CHECK_EQ(c_prev.cols(), h_dim);
  RMI_CHECK_EQ(c_prev.rows(), gates.rows());
  la::Matrix v = Workspace::Get().Acquire(gates.rows(), 2 * h_dim);
  for (size_t r = 0; r < gates.rows(); ++r) {
    const double* gate = gates.value().data().data() + r * 4 * h_dim;
    const double* cprow = c_prev.value().data().data() + r * h_dim;
    double* vrow = v.data().data() + r * 2 * h_dim;
    for (size_t j = 0; j < h_dim; ++j) {
      const double iv = StableSigmoid(gate[j]);
      const double fv = StableSigmoid(gate[h_dim + j]);
      const double gv = std::tanh(gate[2 * h_dim + j]);
      const double ov = StableSigmoid(gate[3 * h_dim + j]);
      const double c = fv * cprow[j] + iv * gv;
      vrow[h_dim + j] = c;
      vrow[j] = ov * std::tanh(c);
    }
  }
  return Tensor(
      NewNode(OpKind::kLstmGates, std::move(v), gates.node(), c_prev.node()));
}

Tensor Sum(const Tensor& x) {
  la::Matrix v = Workspace::Get().Acquire(1, 1);
  v(0, 0) = x.value().Sum();
  return Tensor(NewNode(OpKind::kSum, std::move(v), x.node()));
}

Tensor Mean(const Tensor& x) {
  const double inv = 1.0 / static_cast<double>(x.value().size());
  return Scale(Sum(x), inv);
}

Tensor MaskCombine(const la::Matrix& m, const la::Matrix& obs,
                   const Tensor& pred) {
  RMI_CHECK(m.SameShape(obs));
  RMI_CHECK(m.SameShape(pred.value()));
  Workspace& ws = Workspace::Get();
  la::Matrix v = ws.Acquire(m.rows(), m.cols());
  la::MaskCombineInto(m, obs, pred.value(), &v);
  auto n = NewNode(OpKind::kMaskCombine, std::move(v), pred.node());
  n->aux = ws.Acquire(m.rows(), m.cols());
  std::copy(m.data().begin(), m.data().end(), n->aux.data().begin());
  return Tensor(std::move(n));
}

Tensor Mse(const Tensor& a, const Tensor& b) {
  Tensor d = Sub(a, b);
  return Mean(Mul(d, d));
}

Tensor MaskedMse(const Tensor& a, const Tensor& b, const la::Matrix& mask) {
  RMI_CHECK(a.value().SameShape(mask));
  RMI_CHECK(a.value().SameShape(b.value()));
  Workspace& ws = Workspace::Get();
  const double inv = 1.0 / static_cast<double>(mask.size());
  const double* pa = a.value().data().data();
  const double* pb = b.value().data().data();
  const double* pm = mask.data().data();
  double sum = 0.0;
  for (size_t i = 0; i < mask.size(); ++i) {
    const double d = (pa[i] - pb[i]) * pm[i];
    sum += d * d;
  }
  la::Matrix v = ws.Acquire(1, 1);
  v(0, 0) = sum * inv;
  auto n = NewNode(OpKind::kMaskedMse, std::move(v), a.node(), b.node());
  n->scalar = inv;
  n->aux = ws.Acquire(mask.rows(), mask.cols());
  std::copy(mask.data().begin(), mask.data().end(), n->aux.data().begin());
  return Tensor(std::move(n));
}

Tensor BceWithLogits(const Tensor& logits, const la::Matrix& targets) {
  RMI_CHECK(logits.value().SameShape(targets));
  Workspace& ws = Workspace::Get();
  const la::Matrix& x = logits.value();
  double loss = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    const double v = x.data()[i];
    const double t = targets.data()[i];
    // log(1+exp(v)) - t*v, computed stably.
    loss += std::max(v, 0.0) - t * v + std::log1p(std::exp(-std::fabs(v)));
  }
  loss /= static_cast<double>(x.size());
  la::Matrix v = ws.Acquire(1, 1);
  v(0, 0) = loss;
  auto n = NewNode(OpKind::kBceWithLogits, std::move(v), logits.node());
  n->aux = ws.Acquire(targets.rows(), targets.cols());
  std::copy(targets.data().begin(), targets.data().end(),
            n->aux.data().begin());
  return Tensor(std::move(n));
}

}  // namespace rmi::ad
