#include "autodiff/tensor.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "common/check.h"

namespace rmi::ad {

using internal::Node;

namespace {

std::shared_ptr<Node> MakeNode(la::Matrix value,
                               std::vector<std::shared_ptr<Node>> parents,
                               std::function<void(Node&)> backward) {
  auto n = std::make_shared<Node>();
  n->value = std::move(value);
  n->parents = std::move(parents);
  n->backward = std::move(backward);
  for (const auto& p : n->parents) {
    if (p->requires_grad) {
      n->requires_grad = true;
      break;
    }
  }
  return n;
}

/// Accumulates `delta` into the parent's grad if it participates in training.
void Accumulate(const std::shared_ptr<Node>& parent, const la::Matrix& delta) {
  if (!parent->requires_grad) return;
  parent->EnsureGrad();
  parent->grad += delta;
}

}  // namespace

Tensor Tensor::Param(la::Matrix value) {
  auto n = std::make_shared<Node>();
  n->value = std::move(value);
  n->requires_grad = true;
  n->EnsureGrad();
  return Tensor(std::move(n));
}

Tensor Tensor::Constant(la::Matrix value) {
  auto n = std::make_shared<Node>();
  n->value = std::move(value);
  return Tensor(std::move(n));
}

void Tensor::ZeroGrad() {
  node_->EnsureGrad();
  node_->grad *= 0.0;
}

void Tensor::Backward() const {
  RMI_CHECK(node_ != nullptr);
  RMI_CHECK_EQ(node_->value.rows(), 1u);
  RMI_CHECK_EQ(node_->value.cols(), 1u);
  // Iterative post-order topological sort (graphs can be deep for long
  // sequences; avoid recursion).
  std::vector<Node*> order;
  std::unordered_set<Node*> visited;
  std::vector<std::pair<Node*, size_t>> stack;
  stack.emplace_back(node_.get(), 0);
  visited.insert(node_.get());
  while (!stack.empty()) {
    auto& [n, idx] = stack.back();
    if (idx < n->parents.size()) {
      Node* p = n->parents[idx].get();
      ++idx;
      if (p->requires_grad && visited.insert(p).second) {
        stack.emplace_back(p, 0);
      }
    } else {
      order.push_back(n);
      stack.pop_back();
    }
  }
  // Seed and propagate in reverse topological order.
  for (Node* n : order) n->EnsureGrad();
  node_->grad = la::Matrix(1, 1, 1.0);
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    Node* n = *it;
    if (n->backward) n->backward(*n);
  }
}

Tensor Add(const Tensor& a, const Tensor& b) {
  RMI_CHECK(a.value().SameShape(b.value()));
  auto pa = a.node(), pb = b.node();
  return Tensor(MakeNode(a.value() + b.value(), {pa, pb}, [pa, pb](Node& n) {
    Accumulate(pa, n.grad);
    Accumulate(pb, n.grad);
  }));
}

Tensor Sub(const Tensor& a, const Tensor& b) {
  RMI_CHECK(a.value().SameShape(b.value()));
  auto pa = a.node(), pb = b.node();
  return Tensor(MakeNode(a.value() - b.value(), {pa, pb}, [pa, pb](Node& n) {
    Accumulate(pa, n.grad);
    Accumulate(pb, n.grad * -1.0);
  }));
}

Tensor Mul(const Tensor& a, const Tensor& b) {
  RMI_CHECK(a.value().SameShape(b.value()));
  auto pa = a.node(), pb = b.node();
  return Tensor(
      MakeNode(a.value().CwiseProduct(b.value()), {pa, pb}, [pa, pb](Node& n) {
        Accumulate(pa, n.grad.CwiseProduct(pb->value));
        Accumulate(pb, n.grad.CwiseProduct(pa->value));
      }));
}

Tensor MatMul(const Tensor& a, const Tensor& b) {
  auto pa = a.node(), pb = b.node();
  return Tensor(
      MakeNode(a.value().MatMul(b.value()), {pa, pb}, [pa, pb](Node& n) {
        if (pa->requires_grad) {
          Accumulate(pa, n.grad.MatMul(pb->value.Transpose()));
        }
        if (pb->requires_grad) {
          Accumulate(pb, pa->value.Transpose().MatMul(n.grad));
        }
      }));
}

Tensor Scale(const Tensor& x, double s) {
  auto px = x.node();
  return Tensor(MakeNode(x.value() * s, {px}, [px, s](Node& n) {
    Accumulate(px, n.grad * s);
  }));
}

Tensor AddRowBroadcast(const Tensor& x, const Tensor& bias) {
  RMI_CHECK_EQ(bias.rows(), 1u);
  RMI_CHECK_EQ(bias.cols(), x.cols());
  auto px = x.node(), pb = bias.node();
  return Tensor(MakeNode(x.value().AddRowBroadcast(bias.value()), {px, pb},
                         [px, pb](Node& n) {
                           Accumulate(px, n.grad);
                           if (pb->requires_grad) {
                             la::Matrix colsum(1, n.grad.cols());
                             for (size_t i = 0; i < n.grad.rows(); ++i) {
                               for (size_t j = 0; j < n.grad.cols(); ++j) {
                                 colsum(0, j) += n.grad(i, j);
                               }
                             }
                             Accumulate(pb, colsum);
                           }
                         }));
}

Tensor ScaleBy(const Tensor& scalar, const Tensor& x) {
  RMI_CHECK_EQ(scalar.rows(), 1u);
  RMI_CHECK_EQ(scalar.cols(), 1u);
  auto ps = scalar.node(), px = x.node();
  const double s = scalar.value()(0, 0);
  return Tensor(MakeNode(x.value() * s, {ps, px}, [ps, px](Node& n) {
    const double sv = ps->value(0, 0);
    if (px->requires_grad) Accumulate(px, n.grad * sv);
    if (ps->requires_grad) {
      double dot = 0.0;
      for (size_t i = 0; i < n.grad.size(); ++i) {
        dot += n.grad.data()[i] * px->value.data()[i];
      }
      Accumulate(ps, la::Matrix(1, 1, dot));
    }
  }));
}

Tensor Sigmoid(const Tensor& x) {
  auto px = x.node();
  la::Matrix y = x.value().Map([](double v) {
    return v >= 0 ? 1.0 / (1.0 + std::exp(-v))
                  : std::exp(v) / (1.0 + std::exp(v));
  });
  auto n = MakeNode(std::move(y), {px}, nullptr);
  n->backward = [px](Node& nd) {
    la::Matrix d = nd.value.Map([](double v) { return v * (1.0 - v); });
    Accumulate(px, nd.grad.CwiseProduct(d));
  };
  return Tensor(std::move(n));
}

Tensor Tanh(const Tensor& x) {
  auto px = x.node();
  auto n = MakeNode(x.value().Map([](double v) { return std::tanh(v); }), {px},
                    nullptr);
  n->backward = [px](Node& nd) {
    la::Matrix d = nd.value.Map([](double v) { return 1.0 - v * v; });
    Accumulate(px, nd.grad.CwiseProduct(d));
  };
  return Tensor(std::move(n));
}

Tensor Relu(const Tensor& x) {
  auto px = x.node();
  auto n = MakeNode(x.value().Map([](double v) { return v > 0 ? v : 0.0; }),
                    {px}, nullptr);
  n->backward = [px](Node& nd) {
    la::Matrix d(nd.value.rows(), nd.value.cols());
    for (size_t i = 0; i < d.size(); ++i) {
      d.data()[i] = px->value.data()[i] > 0 ? nd.grad.data()[i] : 0.0;
    }
    Accumulate(px, d);
  };
  return Tensor(std::move(n));
}

Tensor Exp(const Tensor& x) {
  auto px = x.node();
  auto n = MakeNode(x.value().Map([](double v) { return std::exp(v); }), {px},
                    nullptr);
  n->backward = [px](Node& nd) {
    Accumulate(px, nd.grad.CwiseProduct(nd.value));
  };
  return Tensor(std::move(n));
}

Tensor ConcatCols(const Tensor& a, const Tensor& b) {
  RMI_CHECK_EQ(a.rows(), b.rows());
  auto pa = a.node(), pb = b.node();
  const size_t ca = a.cols();
  return Tensor(MakeNode(a.value().ConcatCols(b.value()), {pa, pb},
                         [pa, pb, ca](Node& n) {
                           Accumulate(pa, n.grad.SliceCols(0, ca));
                           Accumulate(pb, n.grad.SliceCols(ca, n.grad.cols()));
                         }));
}

Tensor SliceCols(const Tensor& x, size_t c0, size_t c1) {
  auto px = x.node();
  return Tensor(MakeNode(x.value().SliceCols(c0, c1), {px},
                         [px, c0](Node& n) {
                           if (!px->requires_grad) return;
                           la::Matrix d(px->value.rows(), px->value.cols());
                           for (size_t i = 0; i < n.grad.rows(); ++i) {
                             for (size_t j = 0; j < n.grad.cols(); ++j) {
                               d(i, c0 + j) = n.grad(i, j);
                             }
                           }
                           Accumulate(px, d);
                         }));
}

Tensor SoftmaxRows(const Tensor& x) {
  auto px = x.node();
  la::Matrix y = x.value();
  for (size_t i = 0; i < y.rows(); ++i) {
    double mx = -1e300;
    for (size_t j = 0; j < y.cols(); ++j) mx = std::max(mx, y(i, j));
    double sum = 0.0;
    for (size_t j = 0; j < y.cols(); ++j) {
      y(i, j) = std::exp(y(i, j) - mx);
      sum += y(i, j);
    }
    for (size_t j = 0; j < y.cols(); ++j) y(i, j) /= sum;
  }
  auto n = MakeNode(std::move(y), {px}, nullptr);
  n->backward = [px](Node& nd) {
    if (!px->requires_grad) return;
    la::Matrix d(nd.value.rows(), nd.value.cols());
    for (size_t i = 0; i < nd.value.rows(); ++i) {
      double dot = 0.0;
      for (size_t j = 0; j < nd.value.cols(); ++j) {
        dot += nd.grad(i, j) * nd.value(i, j);
      }
      for (size_t j = 0; j < nd.value.cols(); ++j) {
        d(i, j) = nd.value(i, j) * (nd.grad(i, j) - dot);
      }
    }
    Accumulate(px, d);
  };
  return Tensor(std::move(n));
}

Tensor Sum(const Tensor& x) {
  auto px = x.node();
  return Tensor(MakeNode(la::Matrix(1, 1, x.value().Sum()), {px},
                         [px](Node& n) {
                           const double g = n.grad(0, 0);
                           Accumulate(px,
                                      la::Matrix(px->value.rows(),
                                                 px->value.cols(), g));
                         }));
}

Tensor Mean(const Tensor& x) {
  const double inv = 1.0 / static_cast<double>(x.value().size());
  return Scale(Sum(x), inv);
}

Tensor Mse(const Tensor& a, const Tensor& b) {
  Tensor d = Sub(a, b);
  return Mean(Mul(d, d));
}

Tensor MaskedMse(const Tensor& a, const Tensor& b, const la::Matrix& mask) {
  RMI_CHECK(a.value().SameShape(mask));
  Tensor m = Tensor::Constant(mask);
  Tensor d = Mul(Sub(a, b), m);
  return Mean(Mul(d, d));
}

Tensor BceWithLogits(const Tensor& logits, const la::Matrix& targets) {
  RMI_CHECK(logits.value().SameShape(targets));
  auto px = logits.node();
  const la::Matrix& x = logits.value();
  double loss = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    const double v = x.data()[i];
    const double t = targets.data()[i];
    // log(1+exp(v)) - t*v, computed stably.
    loss += std::max(v, 0.0) - t * v + std::log1p(std::exp(-std::fabs(v)));
  }
  loss /= static_cast<double>(x.size());
  auto n = MakeNode(la::Matrix(1, 1, loss), {px}, nullptr);
  la::Matrix t_copy = targets;
  n->backward = [px, t_copy](Node& nd) {
    if (!px->requires_grad) return;
    const double g = nd.grad(0, 0) / static_cast<double>(px->value.size());
    la::Matrix d(px->value.rows(), px->value.cols());
    for (size_t i = 0; i < d.size(); ++i) {
      const double v = px->value.data()[i];
      const double sig = v >= 0 ? 1.0 / (1.0 + std::exp(-v))
                                : std::exp(v) / (1.0 + std::exp(v));
      d.data()[i] = g * (sig - t_copy.data()[i]);
    }
    Accumulate(px, d);
  };
  return Tensor(std::move(n));
}

}  // namespace rmi::ad
