// Neural-network building blocks over the autodiff substrate: Linear, LSTM
// and GRU cells, and a small MLP. Used by BiSIM (core), BRITS, and SSGAN.
#ifndef RMI_NN_LAYERS_H_
#define RMI_NN_LAYERS_H_

#include <cstddef>
#include <utility>
#include <vector>

#include "autodiff/tensor.h"
#include "common/rng.h"

namespace rmi::nn {

/// Xavier/Glorot uniform initialization for a (rows x cols) weight.
la::Matrix XavierInit(size_t rows, size_t cols, Rng& rng);

/// Dense affine layer y = x W + b, x: N x in, W: in x out.
class Linear {
 public:
  Linear() = default;
  Linear(size_t in, size_t out, Rng& rng);

  ad::Tensor Forward(const ad::Tensor& x) const;
  std::vector<ad::Tensor> Params() const { return {w_, b_}; }

  size_t in() const { return w_.rows(); }
  size_t out() const { return w_.cols(); }

 private:
  ad::Tensor w_;
  ad::Tensor b_;
};

/// Standard LSTM cell (used by the BRITS baseline); state is (h, c),
/// both 1 x hidden.
class LstmCell {
 public:
  LstmCell() = default;
  LstmCell(size_t in, size_t hidden, Rng& rng);

  struct State {
    ad::Tensor h;
    ad::Tensor c;
  };

  /// One step: x is 1 x in.
  State Forward(const ad::Tensor& x, const State& prev) const;
  /// Zero initial state.
  State InitialState() const;

  std::vector<ad::Tensor> Params() const { return {w_, b_}; }
  size_t hidden() const { return hidden_; }

 private:
  size_t in_ = 0;
  size_t hidden_ = 0;
  ad::Tensor w_;  ///< (in + hidden) x 4*hidden, gate order [i, f, g, o]
  ad::Tensor b_;  ///< 1 x 4*hidden (forget-gate slice initialized to 1)
};

/// Standard GRU cell (used by the SSGAN generator).
class GruCell {
 public:
  GruCell() = default;
  GruCell(size_t in, size_t hidden, Rng& rng);

  /// One step: x is 1 x in, h is 1 x hidden.
  ad::Tensor Forward(const ad::Tensor& x, const ad::Tensor& h) const;
  ad::Tensor InitialState() const;

  std::vector<ad::Tensor> Params() const { return {wz_, wr_, wh_, bz_, br_, bh_}; }
  size_t hidden() const { return hidden_; }

 private:
  size_t in_ = 0;
  size_t hidden_ = 0;
  ad::Tensor wz_, wr_, wh_;  ///< (in + hidden) x hidden each
  ad::Tensor bz_, br_, bh_;
  la::Matrix ones_row_;  ///< cached 1 x hidden of ones (per-step constant)
};

/// Multilayer perceptron with tanh activations between layers (no
/// activation after the last layer).
class Mlp {
 public:
  Mlp() = default;
  /// dims = {in, h1, ..., out}.
  Mlp(const std::vector<size_t>& dims, Rng& rng);

  ad::Tensor Forward(const ad::Tensor& x) const;
  std::vector<ad::Tensor> Params() const;

 private:
  std::vector<Linear> layers_;
};

/// Convenience: appends `extra` parameter handles to `into`.
void AppendParams(std::vector<ad::Tensor>* into,
                  const std::vector<ad::Tensor>& extra);

}  // namespace rmi::nn

#endif  // RMI_NN_LAYERS_H_
