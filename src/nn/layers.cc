#include "nn/layers.h"

#include <cmath>

#include "common/check.h"

namespace rmi::nn {

using ad::Tensor;

la::Matrix XavierInit(size_t rows, size_t cols, Rng& rng) {
  const double bound = std::sqrt(6.0 / static_cast<double>(rows + cols));
  return la::Matrix::Random(rows, cols, rng, -bound, bound);
}

Linear::Linear(size_t in, size_t out, Rng& rng)
    : w_(Tensor::Param(XavierInit(in, out, rng))),
      b_(Tensor::Param(la::Matrix(1, out))) {}

Tensor Linear::Forward(const Tensor& x) const {
  return ad::Affine(x, w_, b_);
}

LstmCell::LstmCell(size_t in, size_t hidden, Rng& rng)
    : in_(in), hidden_(hidden),
      w_(Tensor::Param(XavierInit(in + hidden, 4 * hidden, rng))) {
  la::Matrix b(1, 4 * hidden);
  for (size_t j = hidden; j < 2 * hidden; ++j) b(0, j) = 1.0;  // forget gate
  b_ = Tensor::Param(std::move(b));
}

LstmCell::State LstmCell::InitialState() const {
  return {Tensor::Constant(la::Matrix(1, hidden_)),
          Tensor::Constant(la::Matrix(1, hidden_))};
}

LstmCell::State LstmCell::Forward(const Tensor& x, const State& prev) const {
  RMI_CHECK_EQ(x.cols(), in_);
  Tensor xh = ad::ConcatCols(x, prev.h);
  Tensor gates = ad::Affine(xh, w_, b_);
  Tensor hc = ad::LstmGates(gates, prev.c);
  return {ad::SliceCols(hc, 0, hidden_), ad::SliceCols(hc, hidden_, 2 * hidden_)};
}

GruCell::GruCell(size_t in, size_t hidden, Rng& rng)
    : in_(in), hidden_(hidden),
      wz_(Tensor::Param(XavierInit(in + hidden, hidden, rng))),
      wr_(Tensor::Param(XavierInit(in + hidden, hidden, rng))),
      wh_(Tensor::Param(XavierInit(in + hidden, hidden, rng))),
      bz_(Tensor::Param(la::Matrix(1, hidden))),
      br_(Tensor::Param(la::Matrix(1, hidden))),
      bh_(Tensor::Param(la::Matrix(1, hidden))),
      ones_row_(1, hidden, 1.0) {}

Tensor GruCell::InitialState() const {
  return Tensor::Constant(la::Matrix(1, hidden_));
}

Tensor GruCell::Forward(const Tensor& x, const Tensor& h) const {
  RMI_CHECK_EQ(x.cols(), in_);
  Tensor xh = ad::ConcatCols(x, h);
  Tensor z = ad::Sigmoid(ad::Affine(xh, wz_, bz_));
  Tensor r = ad::Sigmoid(ad::Affine(xh, wr_, br_));
  Tensor xrh = ad::ConcatCols(x, ad::Mul(r, h));
  Tensor hb = ad::Tanh(ad::Affine(xrh, wh_, bh_));
  // h' = (1-z) * h + z * hb
  Tensor one_minus_z = ad::Sub(Tensor::Constant(ones_row_), z);
  return ad::Add(ad::Mul(one_minus_z, h), ad::Mul(z, hb));
}

Mlp::Mlp(const std::vector<size_t>& dims, Rng& rng) {
  RMI_CHECK_GE(dims.size(), 2u);
  for (size_t i = 0; i + 1 < dims.size(); ++i) {
    layers_.emplace_back(dims[i], dims[i + 1], rng);
  }
}

Tensor Mlp::Forward(const Tensor& x) const {
  Tensor h = x;
  for (size_t i = 0; i < layers_.size(); ++i) {
    h = layers_[i].Forward(h);
    if (i + 1 < layers_.size()) h = ad::Tanh(h);
  }
  return h;
}

std::vector<Tensor> Mlp::Params() const {
  std::vector<Tensor> out;
  for (const Linear& l : layers_) AppendParams(&out, l.Params());
  return out;
}

void AppendParams(std::vector<ad::Tensor>* into,
                  const std::vector<ad::Tensor>& extra) {
  into->insert(into->end(), extra.begin(), extra.end());
}

}  // namespace rmi::nn
