#include "survey/survey.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/missing.h"

namespace rmi::survey {

namespace {

using geom::Point;

/// Emits the RSSI scan at `pos`: every observable AP that survives the MAR
/// drop contributes one measurement.
std::vector<std::pair<size_t, double>> Scan(
    const radio::PropagationModel& model, const Point& pos, Rng& rng) {
  std::vector<std::pair<size_t, double>> out;
  for (size_t ap = 0; ap < model.num_aps(); ++ap) {
    if (!model.IsObservable(ap, pos)) continue;  // MNAR mechanism
    if (model.SampleMarDrop(rng)) continue;      // MAR mechanism
    out.emplace_back(ap, model.SampleRssi(ap, pos, rng));
  }
  return out;
}

}  // namespace

std::vector<PathRecordTable> SimulateSurvey(
    const indoor::Venue& venue, const radio::PropagationModel& model,
    const SurveySpec& spec, Rng& rng) {
  RMI_CHECK_GE(spec.rounds, 1u);
  RMI_CHECK_GT(spec.walk_speed_mps, 0.0);
  RMI_CHECK_GT(spec.scan_interval_s, 0.0);
  std::vector<PathRecordTable> tables;
  size_t next_path_id = 0;
  for (size_t round = 0; round < spec.rounds; ++round) {
    for (const std::vector<size_t>& waypoints : venue.paths) {
      if (waypoints.size() < 2) continue;
      PathRecordTable table;
      table.path_id = next_path_id++;
      double t = 0.0;
      double next_scan =
          rng.Uniform(0.0, spec.scan_interval_s);  // desynchronize scans
      Point pos = venue.rps[waypoints[0]];

      auto maybe_mark_rp = [&](size_t rp_idx) {
        if (!rng.Bernoulli(spec.rp_mark_prob)) return;
        if (spec.rp_keep_fraction < 1.0 &&
            !rng.Bernoulli(spec.rp_keep_fraction)) {
          return;  // RP-density scaling (Fig. 16): thin RP records
        }
        SurveyRecord r;
        r.time = t;
        r.is_rp = true;
        r.rp = venue.rps[rp_idx];
        r.true_position = venue.rps[rp_idx];
        table.records.push_back(std::move(r));
      };

      maybe_mark_rp(waypoints[0]);
      // Walks one straight sub-segment, firing scans along it.
      auto walk_segment = [&](const Point& from, const Point& to) {
        const double leg = geom::Distance(from, to);
        const double speed =
            spec.walk_speed_mps *
            (1.0 + rng.Uniform(-spec.speed_jitter, spec.speed_jitter));
        const double leg_time = leg / std::max(speed, 0.1);
        const double t_end = t + leg_time;
        while (next_scan <= t_end) {
          const double frac = leg_time > 0 ? (next_scan - t) / leg_time : 0.0;
          const Point p = from + (to - from) * std::clamp(frac, 0.0, 1.0);
          SurveyRecord r;
          r.time = next_scan;
          r.is_rp = false;
          r.rssi = Scan(model, p, rng);
          r.true_position = p;
          table.records.push_back(std::move(r));
          next_scan += spec.scan_interval_s +
                       rng.Uniform(-spec.scan_jitter_s, spec.scan_jitter_s);
        }
        t = t_end;
        pos = to;
      };
      // Pauses in place (scans keep firing while standing still).
      auto dwell = [&](double duration) {
        const double t_end = t + duration;
        while (next_scan <= t_end) {
          SurveyRecord r;
          r.time = next_scan;
          r.is_rp = false;
          r.rssi = Scan(model, pos, rng);
          r.true_position = pos;
          table.records.push_back(std::move(r));
          next_scan += spec.scan_interval_s +
                       rng.Uniform(-spec.scan_jitter_s, spec.scan_jitter_s);
        }
        t = t_end;
      };

      for (size_t w = 1; w < waypoints.size(); ++w) {
        const Point from = pos;
        const Point to = venue.rps[waypoints[w]];
        // Lateral wander: walk via a mid-leg point offset perpendicular to
        // the leg, with independent speed jitter per half (non-linear
        // position-vs-time, like a real surveyor).
        const double leg = geom::Distance(from, to);
        if (spec.wander_m > 0.0 && leg > 2.0) {
          const Point dir = (to - from) * (1.0 / leg);
          const Point normal{-dir.y, dir.x};
          const double off = rng.Uniform(-spec.wander_m, spec.wander_m);
          const Point mid = from + (to - from) * rng.Uniform(0.35, 0.65) +
                            normal * off;
          walk_segment(from, mid);
          walk_segment(mid, to);
        } else {
          walk_segment(from, to);
        }
        if (spec.max_dwell_s > 0.0 && rng.Bernoulli(0.5)) {
          dwell(rng.Uniform(0.0, spec.max_dwell_s));
        }
        maybe_mark_rp(waypoints[w]);
      }
      std::stable_sort(
          table.records.begin(), table.records.end(),
          [](const SurveyRecord& a, const SurveyRecord& b) { return a.time < b.time; });
      if (!table.records.empty()) tables.push_back(std::move(table));
    }
  }
  return tables;
}

std::vector<rmap::Record> CreateRadioMapRecords(
    const PathRecordTable& table, size_t num_aps, double epsilon_s,
    std::vector<geom::Point>* true_positions) {
  RMI_CHECK(true_positions != nullptr);

  // Working representation during merging.
  struct Merged {
    double time = 0.0;
    bool has_rssi = false;
    std::vector<double> sum;    // per-AP sum of merged measurements
    std::vector<int> count;     // per-AP merge count
    bool has_rp = false;
    geom::Point rp;
    geom::Point true_position;
  };

  std::vector<Merged> work;
  work.reserve(table.records.size());
  for (const SurveyRecord& r : table.records) {
    Merged m;
    m.time = r.time;
    m.true_position = r.true_position;
    if (r.is_rp) {
      m.has_rp = true;
      m.rp = r.rp;
    } else {
      m.has_rssi = true;
      m.sum.assign(num_aps, 0.0);
      m.count.assign(num_aps, 0);
      for (const auto& [ap, v] : r.rssi) {
        RMI_CHECK_LT(ap, num_aps);
        m.sum[ap] += v;
        m.count[ap] += 1;
      }
    }
    work.push_back(std::move(m));
  }

  // Step 1: merge consecutive RSSI records with time difference <= epsilon.
  // Merged record keeps the earlier time (and that record's ground truth);
  // common APs are averaged, others unioned.
  std::vector<Merged> step1;
  for (Merged& m : work) {
    if (!step1.empty() && step1.back().has_rssi && !step1.back().has_rp &&
        m.has_rssi && !m.has_rp &&
        m.time - step1.back().time <= epsilon_s) {
      Merged& prev = step1.back();
      for (size_t ap = 0; ap < num_aps; ++ap) {
        prev.sum[ap] += m.sum[ap];
        prev.count[ap] += m.count[ap];
      }
      continue;
    }
    step1.push_back(std::move(m));
  }

  // Step 2: merge adjacent RSSI and RP records with |dt| <= epsilon. Each
  // record participates in at most one merge; time/RSSIs come from the RSSI
  // record, the RP from the RP record.
  std::vector<bool> used(step1.size(), false);
  std::vector<Merged> step2;
  for (size_t i = 0; i < step1.size(); ++i) {
    if (used[i]) continue;
    Merged cur = std::move(step1[i]);
    used[i] = true;
    if (i + 1 < step1.size() && !used[i + 1] &&
        step1[i + 1].time - cur.time <= epsilon_s) {
      Merged& next = step1[i + 1];
      const bool rssi_then_rp = cur.has_rssi && !cur.has_rp && next.has_rp && !next.has_rssi;
      const bool rp_then_rssi = cur.has_rp && !cur.has_rssi && next.has_rssi && !next.has_rp;
      if (rssi_then_rp) {
        cur.has_rp = true;
        cur.rp = next.rp;
        used[i + 1] = true;
      } else if (rp_then_rssi) {
        // Keep the RSSI record's time/ground truth; attach the RP.
        const geom::Point rp = cur.rp;
        cur = std::move(next);
        cur.has_rp = true;
        cur.rp = rp;
        used[i + 1] = true;
      }
    }
    step2.push_back(std::move(cur));
  }

  // Convert to radio-map records (missing values -> null).
  std::vector<rmap::Record> out;
  out.reserve(step2.size());
  true_positions->clear();
  true_positions->reserve(step2.size());
  for (const Merged& m : step2) {
    rmap::Record r;
    r.rssi.assign(num_aps, kNull);
    if (m.has_rssi) {
      for (size_t ap = 0; ap < num_aps; ++ap) {
        if (m.count[ap] > 0) {
          r.rssi[ap] = m.sum[ap] / static_cast<double>(m.count[ap]);
        }
      }
    }
    r.has_rp = m.has_rp;
    if (m.has_rp) r.rp = m.rp;
    r.time = m.time;
    r.path_id = table.path_id;
    out.push_back(std::move(r));
    true_positions->push_back(m.true_position);
  }
  return out;
}

SurveyDataset GenerateDataset(const indoor::VenueSpec& venue_spec,
                              const radio::PropagationParams& radio_params,
                              const SurveySpec& survey_spec) {
  SurveyDataset ds;
  ds.venue = indoor::GenerateVenue(venue_spec);
  ds.radio_params = radio_params;
  ds.survey_spec = survey_spec;

  radio::PropagationModel model(&ds.venue, radio_params);
  Rng rng(survey_spec.seed);
  const auto tables = SimulateSurvey(ds.venue, model, survey_spec, rng);

  const size_t num_aps = ds.venue.aps.size();
  ds.map = rmap::RadioMap(num_aps);
  for (const PathRecordTable& table : tables) {
    std::vector<geom::Point> positions;
    auto records =
        CreateRadioMapRecords(table, num_aps, survey_spec.epsilon_s, &positions);
    RMI_CHECK_EQ(records.size(), positions.size());
    for (size_t i = 0; i < records.size(); ++i) {
      ds.map.Add(std::move(records[i]));
      ds.truth.positions.push_back(positions[i]);
    }
  }

  // Ground-truth mask and mean RSSI per record.
  const size_t n = ds.map.size();
  ds.truth.mask = rmap::MaskMatrix(n, num_aps);
  ds.truth.mean_rssi = la::Matrix(n, num_aps);
  for (size_t i = 0; i < n; ++i) {
    const rmap::Record& r = ds.map.record(i);
    const geom::Point& pos = ds.truth.positions[i];
    for (size_t ap = 0; ap < num_aps; ++ap) {
      ds.truth.mean_rssi(i, ap) = ClampRssi(model.MeanRssi(ap, pos));
      if (!IsNull(r.rssi[ap])) {
        ds.truth.mask.set(i, ap, rmap::MaskValue::kObserved);
      } else if (model.IsObservable(ap, pos)) {
        ds.truth.mask.set(i, ap, rmap::MaskValue::kMar);
      } else {
        ds.truth.mask.set(i, ap, rmap::MaskValue::kMnar);
      }
    }
  }
  return ds;
}

namespace {

/// Survey effort scales with the venue scale: at scale = 1 the presets
/// target the paper's Table V record counts; smaller scales shrink both the
/// fingerprint dimensionality (AP count, in the venue spec) and the record
/// count (rounds here) so CPU benches stay fast.
SurveySpec PresetSurveySpec(size_t full_rounds, double scale, uint64_t seed) {
  SurveySpec s;
  s.rounds = std::max<size_t>(
      2, static_cast<size_t>(std::llround(static_cast<double>(full_rounds) *
                                          std::sqrt(scale))));
  s.seed = seed;
  return s;
}

}  // namespace

SurveyDataset MakeKaideDataset(double scale, uint64_t seed) {
  return GenerateDataset(indoor::KaideSpec(scale), radio::PropagationParams{},
                         PresetSurveySpec(/*full_rounds=*/2, scale, seed));
}

SurveyDataset MakeWandaDataset(double scale, uint64_t seed) {
  radio::PropagationParams p;
  p.seed = 199;
  return GenerateDataset(indoor::WandaSpec(scale), p,
                         PresetSurveySpec(/*full_rounds=*/8, scale, seed));
}

SurveyDataset MakeLonghuDataset(double scale, uint64_t seed) {
  radio::PropagationParams p = radio::PropagationParams::Bluetooth();
  p.seed = 299;
  return GenerateDataset(indoor::LonghuSpec(scale), p,
                         PresetSurveySpec(/*full_rounds=*/7, scale, seed));
}

}  // namespace rmi::survey
