// Walking-survey simulation and radio-map creation (paper Section II-B).
//
// A surveyor walks each survey path, producing an asynchronous Walking
// Survey Record Table: RP records when (probabilistically) marking a
// waypoint, and RSSI scan records on a timer. The table is then converted
// into a sparse radio map by the epsilon-merge procedure of Section II-B
// (Step 1: merge close RSSI records; Step 2: merge close RSSI+RP records).
//
// Because the environment is simulated, full ground truth is retained for
// every produced record: the surveyor's true position, the noise-free mean
// RSSI of every AP there, and the true MAR/MNAR label of every missing cell.
#ifndef RMI_SURVEY_SURVEY_H_
#define RMI_SURVEY_SURVEY_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "la/matrix.h"
#include "geometry/geometry.h"
#include "indoor/venue.h"
#include "radio/propagation.h"
#include "radiomap/radio_map.h"

namespace rmi::survey {

/// One raw entry of the Walking Survey Record Table (paper Table II).
struct SurveyRecord {
  double time = 0.0;
  bool is_rp = false;
  geom::Point rp;  ///< valid iff is_rp
  /// Sparse scan: (ap index, measured RSSI); valid iff !is_rp.
  std::vector<std::pair<size_t, double>> rssi;
  /// Ground truth: surveyor's true position at `time`.
  geom::Point true_position;
};

/// A record table for one walked path (sorted by time).
struct PathRecordTable {
  size_t path_id = 0;
  std::vector<SurveyRecord> records;
};

/// Survey behaviour knobs.
struct SurveySpec {
  double walk_speed_mps = 1.25;   ///< nominal walking speed
  double speed_jitter = 0.25;     ///< relative speed jitter per leg half
  double scan_interval_s = 1.5;   ///< RSSI scan period
  double scan_jitter_s = 0.3;     ///< absolute scan-time jitter
  double rp_mark_prob = 0.35;     ///< chance a waypoint visit emits an RP record
  size_t rounds = 2;              ///< passes over every path
  double epsilon_s = 1.0;         ///< merge threshold (paper: 1 s)
  double rp_keep_fraction = 1.0;  ///< RP-density scaling (paper Fig. 16)
  /// Human-motion realism (makes surveyor position a *non-linear* function
  /// of time, as in real walking surveys — crowds, window shopping,
  /// obstacle avoidance). Without these, time-linear RP interpolation
  /// would be artificially exact in simulation.
  double max_dwell_s = 3.0;       ///< random pause at each waypoint
  double wander_m = 1.2;          ///< lateral detour amplitude mid-leg
  uint64_t seed = 5;
};

/// Simulates the walking survey over every venue path (`rounds` passes).
/// Each (path, round) pair yields its own PathRecordTable with time 0 at the
/// start of that pass.
std::vector<PathRecordTable> SimulateSurvey(
    const indoor::Venue& venue, const radio::PropagationModel& model,
    const SurveySpec& spec, Rng& rng);

/// Radio-map creation (Section II-B): epsilon-merge one path's record table
/// into radio-map records. `true_positions` receives the ground-truth
/// position per produced record.
std::vector<rmap::Record> CreateRadioMapRecords(
    const PathRecordTable& table, size_t num_aps, double epsilon_s,
    std::vector<geom::Point>* true_positions);

/// Ground truth attached to a generated dataset.
struct GroundTruth {
  /// True surveyor position per radio-map record.
  std::vector<geom::Point> positions;
  /// True per-cell label: observed / MAR / MNAR.
  rmap::MaskMatrix mask;
  /// Noise-free mean RSSI (clamped to the observable range) of every
  /// (record position, AP) pair — the regression target for imputed MARs.
  la::Matrix mean_rssi;
};

/// A fully generated benchmark dataset.
struct SurveyDataset {
  indoor::Venue venue;
  radio::PropagationParams radio_params;
  SurveySpec survey_spec;
  rmap::RadioMap map;
  GroundTruth truth;

  /// Rebuilds a propagation model view over this dataset's venue.
  radio::PropagationModel Model() const {
    return radio::PropagationModel(&venue, radio_params);
  }
};

/// End-to-end generation: venue -> survey -> radio map (+ ground truth).
SurveyDataset GenerateDataset(const indoor::VenueSpec& venue_spec,
                              const radio::PropagationParams& radio_params,
                              const SurveySpec& survey_spec);

/// Paper-preset datasets. `scale` shrinks the AP count / survey effort for
/// fast CPU benches (1.0 targets Table V sizes).
SurveyDataset MakeKaideDataset(double scale = 0.25, uint64_t seed = 5);
SurveyDataset MakeWandaDataset(double scale = 0.25, uint64_t seed = 6);
SurveyDataset MakeLonghuDataset(double scale = 0.25, uint64_t seed = 7);

}  // namespace rmi::survey

#endif  // RMI_SURVEY_SURVEY_H_
