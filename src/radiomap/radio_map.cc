#include "radiomap/radio_map.h"

#include <algorithm>
#include <map>

#include "common/check.h"

namespace rmi::rmap {

std::string ToString(const ShardId& id) {
  return "b" + std::to_string(id.building) + "/f" + std::to_string(id.floor);
}

void RadioMap::Add(Record r) {
  RMI_CHECK_EQ(r.rssi.size(), num_aps_);
  if (r.id == Record::kUnassignedId) r.id = records_.size();
  records_.push_back(std::move(r));
}

double RadioMap::MissingRssiRate() const {
  if (records_.empty() || num_aps_ == 0) return 0.0;
  size_t missing = 0;
  for (const Record& r : records_) missing += num_aps_ - r.NumObserved();
  return static_cast<double>(missing) /
         static_cast<double>(records_.size() * num_aps_);
}

double RadioMap::MissingRpRate() const {
  if (records_.empty()) return 0.0;
  size_t missing = 0;
  for (const Record& r : records_) missing += !r.has_rp;
  return static_cast<double>(missing) / static_cast<double>(records_.size());
}

std::vector<std::vector<size_t>> RadioMap::PathSequences() const {
  std::map<size_t, std::vector<size_t>> by_path;
  for (size_t i = 0; i < records_.size(); ++i) {
    by_path[records_[i].path_id].push_back(i);
  }
  std::vector<std::vector<size_t>> out;
  out.reserve(by_path.size());
  for (auto& [path, idx] : by_path) {
    std::stable_sort(idx.begin(), idx.end(), [&](size_t a, size_t b) {
      return records_[a].time < records_[b].time;
    });
    out.push_back(std::move(idx));
  }
  return out;
}

std::vector<geom::Point> RadioMap::InterpolatedRps() const {
  std::vector<geom::Point> out(records_.size());
  // Global fallback: centroid of observed RPs.
  geom::Point centroid{0.0, 0.0};
  size_t n_obs = 0;
  for (const Record& r : records_) {
    if (r.has_rp) {
      centroid = centroid + r.rp;
      ++n_obs;
    }
  }
  if (n_obs > 0) centroid = centroid * (1.0 / static_cast<double>(n_obs));

  for (const auto& seq : PathSequences()) {
    // Positions of observed RPs within the sequence.
    std::vector<size_t> obs;
    for (size_t k = 0; k < seq.size(); ++k) {
      if (records_[seq[k]].has_rp) obs.push_back(k);
    }
    for (size_t k = 0; k < seq.size(); ++k) {
      const Record& r = records_[seq[k]];
      if (r.has_rp) {
        out[seq[k]] = r.rp;
        continue;
      }
      if (obs.empty()) {
        out[seq[k]] = centroid;
        continue;
      }
      // prev = last observed <= k, next = first observed >= k.
      auto it = std::lower_bound(obs.begin(), obs.end(), k);
      if (it == obs.begin()) {
        out[seq[k]] = records_[seq[obs.front()]].rp;
      } else if (it == obs.end()) {
        out[seq[k]] = records_[seq[obs.back()]].rp;
      } else {
        const size_t next = *it;
        const size_t prev = *(it - 1);
        const Record& a = records_[seq[prev]];
        const Record& b = records_[seq[next]];
        const double span = b.time - a.time;
        const double w = span > 0 ? (r.time - a.time) / span : 0.5;
        out[seq[k]] = a.rp + (b.rp - a.rp) * w;
      }
    }
  }
  return out;
}

size_t MaskMatrix::CountOf(MaskValue v) const {
  size_t n = 0;
  for (int8_t x : values_) n += (x == static_cast<int8_t>(v));
  return n;
}

double MaskMatrix::MarShareOfMissing() const {
  const size_t mar = CountOf(MaskValue::kMar);
  const size_t mnar = CountOf(MaskValue::kMnar);
  return (mar + mnar) ? static_cast<double>(mar) /
                            static_cast<double>(mar + mnar)
                      : 0.0;
}

std::vector<uint8_t> Binarization(const std::vector<double>& fingerprint) {
  std::vector<uint8_t> b(fingerprint.size(), 1);
  for (size_t d = 0; d < fingerprint.size(); ++d) {
    if (IsNull(fingerprint[d])) b[d] = 0;
  }
  return b;
}

std::vector<RemovedRssi> RemoveRandomRssis(RadioMap* map, double ratio,
                                           Rng& rng) {
  RMI_CHECK(map != nullptr);
  RMI_CHECK(ratio >= 0.0 && ratio <= 1.0);
  std::vector<std::pair<size_t, size_t>> observed;
  for (size_t i = 0; i < map->size(); ++i) {
    const Record& r = map->record(i);
    for (size_t d = 0; d < r.rssi.size(); ++d) {
      if (!IsNull(r.rssi[d])) observed.emplace_back(i, d);
    }
  }
  const size_t k = static_cast<size_t>(
      ratio * static_cast<double>(observed.size()) + 0.5);
  std::vector<RemovedRssi> removed;
  removed.reserve(k);
  for (size_t pick : rng.SampleWithoutReplacement(observed.size(), k)) {
    const auto [i, d] = observed[pick];
    removed.push_back({map->record(i).id, d, map->record(i).rssi[d]});
    map->record(i).rssi[d] = kNull;
  }
  return removed;
}

std::vector<RemovedRp> RemoveRandomRps(RadioMap* map, double ratio, Rng& rng) {
  RMI_CHECK(map != nullptr);
  RMI_CHECK(ratio >= 0.0 && ratio <= 1.0);
  std::vector<size_t> observed;
  for (size_t i = 0; i < map->size(); ++i) {
    if (map->record(i).has_rp) observed.push_back(i);
  }
  const size_t k = static_cast<size_t>(
      ratio * static_cast<double>(observed.size()) + 0.5);
  std::vector<RemovedRp> removed;
  removed.reserve(k);
  for (size_t pick : rng.SampleWithoutReplacement(observed.size(), k)) {
    const size_t i = observed[pick];
    removed.push_back({map->record(i).id, map->record(i).rp});
    map->record(i).has_rp = false;
    map->record(i).rp = geom::Point{};
  }
  return removed;
}

}  // namespace rmi::rmap
