#include "radiomap/io.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/missing.h"

namespace rmi::rmap {

namespace {

constexpr char kHeaderPrefix[] = "# rmi-radio-map v1 num_aps=";

std::vector<std::string> SplitCsvLine(const std::string& line) {
  std::vector<std::string> fields;
  std::string cur;
  for (char c : line) {
    if (c == ',') {
      fields.push_back(cur);
      cur.clear();
    } else if (c != '\r') {
      cur.push_back(c);
    }
  }
  fields.push_back(cur);
  return fields;
}

std::string FormatDouble(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  return buf;
}

}  // namespace

std::string RadioMapToCsv(const RadioMap& map) {
  std::ostringstream os;
  os << kHeaderPrefix << map.num_aps() << "\n";
  os << "id,path_id,time,rp_x,rp_y";
  for (size_t j = 0; j < map.num_aps(); ++j) os << ",r" << j;
  os << "\n";
  for (size_t i = 0; i < map.size(); ++i) {
    const Record& r = map.record(i);
    os << r.id << "," << r.path_id << "," << FormatDouble(r.time) << ",";
    if (r.has_rp) {
      os << FormatDouble(r.rp.x) << "," << FormatDouble(r.rp.y);
    } else {
      os << ",";
    }
    for (size_t j = 0; j < map.num_aps(); ++j) {
      os << ",";
      if (!IsNull(r.rssi[j])) os << FormatDouble(r.rssi[j]);
    }
    os << "\n";
  }
  return os.str();
}

Status RadioMapFromCsv(const std::string& csv, RadioMap* out) {
  if (out == nullptr) return Status::Invalid("null output map");
  std::istringstream is(csv);
  std::string line;
  if (!std::getline(is, line)) return Status::Invalid("empty input");
  if (line.rfind(kHeaderPrefix, 0) != 0) {
    return Status::Invalid("missing rmi-radio-map header");
  }
  const long num_aps = std::atol(line.c_str() + sizeof(kHeaderPrefix) - 1);
  if (num_aps <= 0) return Status::Invalid("bad num_aps in header");
  const size_t d = static_cast<size_t>(num_aps);
  if (!std::getline(is, line)) return Status::Invalid("missing column header");

  *out = RadioMap(d);
  size_t line_no = 2;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty()) continue;
    const auto fields = SplitCsvLine(line);
    if (fields.size() != 5 + d) {
      return Status::Invalid("line " + std::to_string(line_no) + ": expected " +
                             std::to_string(5 + d) + " fields, got " +
                             std::to_string(fields.size()));
    }
    Record r;
    r.id = static_cast<size_t>(std::strtoull(fields[0].c_str(), nullptr, 10));
    r.path_id = static_cast<size_t>(std::strtoull(fields[1].c_str(), nullptr, 10));
    r.time = std::atof(fields[2].c_str());
    if (!fields[3].empty() && !fields[4].empty()) {
      r.has_rp = true;
      r.rp = geom::Point{std::atof(fields[3].c_str()),
                         std::atof(fields[4].c_str())};
    } else if (fields[3].empty() != fields[4].empty()) {
      return Status::Invalid("line " + std::to_string(line_no) +
                             ": half-specified RP");
    }
    r.rssi.assign(d, kNull);
    for (size_t j = 0; j < d; ++j) {
      if (!fields[5 + j].empty()) r.rssi[j] = std::atof(fields[5 + j].c_str());
    }
    out->Add(std::move(r));
  }
  return Status::Ok();
}

Status SaveRadioMapCsv(const RadioMap& map, const std::string& path) {
  std::ofstream f(path);
  if (!f) return Status::Invalid("cannot open for writing: " + path);
  f << RadioMapToCsv(map);
  return f ? Status::Ok() : Status::Invalid("write failed: " + path);
}

Status LoadRadioMapCsv(const std::string& path, RadioMap* out) {
  std::ifstream f(path);
  if (!f) return Status::NotFound("cannot open: " + path);
  std::ostringstream ss;
  ss << f.rdbuf();
  return RadioMapFromCsv(ss.str(), out);
}

}  // namespace rmi::rmap
