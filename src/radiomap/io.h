// Radio-map persistence: a simple CSV interchange format so users can feed
// their own walking-survey data into the framework (and export imputed
// maps to positioning systems).
//
// Format (one header line, then one line per record):
//   # rmi-radio-map v1 num_aps=<D>
//   id,path_id,time,rp_x,rp_y,r0,r1,...,r<D-1>
// Missing values (null RSSIs, missing RPs) are empty fields.
#ifndef RMI_RADIOMAP_IO_H_
#define RMI_RADIOMAP_IO_H_

#include <string>

#include "common/status.h"
#include "radiomap/radio_map.h"

namespace rmi::rmap {

/// Serializes a radio map to the CSV interchange format.
std::string RadioMapToCsv(const RadioMap& map);

/// Parses the CSV interchange format. Returns Invalid on malformed input.
Status RadioMapFromCsv(const std::string& csv, RadioMap* out);

/// File wrappers.
Status SaveRadioMapCsv(const RadioMap& map, const std::string& path);
Status LoadRadioMapCsv(const std::string& path, RadioMap* out);

}  // namespace rmi::rmap

#endif  // RMI_RADIOMAP_IO_H_
