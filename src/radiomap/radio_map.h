// Radio map data structures: sparse fingerprint/RP records, the MAR/MNAR
// mask matrix, binarized AP profiles (Algorithm 1), and the removal
// operators used by the paper's sparsity experiments (alpha, beta).
#ifndef RMI_RADIOMAP_RADIO_MAP_H_
#define RMI_RADIOMAP_RADIO_MAP_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/missing.h"
#include "common/rng.h"
#include "geometry/geometry.h"

namespace rmi::rmap {

/// Identifies one radio-map shard: a single floor of a building. The
/// serving layer keys snapshot stores, query routing, and the live-update
/// loop by ShardId; a RadioMap carries the id of the shard it surveys.
struct ShardId {
  int32_t building = 0;
  int32_t floor = 0;

  friend bool operator==(const ShardId& a, const ShardId& b) {
    return a.building == b.building && a.floor == b.floor;
  }
  friend bool operator!=(const ShardId& a, const ShardId& b) {
    return !(a == b);
  }
  /// Lexicographic (building, floor) — also the deterministic final
  /// tie-break of the serving layer's floor classifier.
  friend bool operator<(const ShardId& a, const ShardId& b) {
    return a.building != b.building ? a.building < b.building
                                    : a.floor < b.floor;
  }
};

/// "b<building>/f<floor>" — for logs, test diagnostics, and bench tables.
std::string ToString(const ShardId& id);

/// One radio map record: a fingerprint (RSSI vector with nulls), an optional
/// reference point, and the collection time (kept for the time-lag
/// mechanism, cf. paper Table III).
struct Record {
  std::vector<double> rssi;   ///< D entries; kNull = missing
  geom::Point rp;             ///< valid iff has_rp
  bool has_rp = false;
  double time = 0.0;          ///< seconds since survey start (per path)
  size_t path_id = 0;         ///< originating survey path
  /// Stable identity assigned on first Add; survives imputer copies and
  /// record deletion (CaseDeletion), letting evaluation match records
  /// across pipeline stages.
  size_t id = kUnassignedId;
  static constexpr size_t kUnassignedId = static_cast<size_t>(-1);

  /// Number of observed (non-null) RSSIs.
  size_t NumObserved() const {
    size_t n = 0;
    for (double v : rssi) n += !IsNull(v);
    return n;
  }
};

/// A radio map: N records over D APs.
class RadioMap {
 public:
  RadioMap() = default;
  explicit RadioMap(size_t num_aps) : num_aps_(num_aps) {}

  void Add(Record r);

  size_t num_aps() const { return num_aps_; }

  /// Shard metadata: which (building, floor) this map surveys. Defaults to
  /// shard (0, 0) for the single-map pipelines; the sharded serving layer
  /// sets it on registration. Imputers build fresh output maps, so stages
  /// that need the id re-stamp it (serving::MapUpdater does).
  const ShardId& shard() const { return shard_; }
  void set_shard(const ShardId& shard) { shard_ = shard; }

  size_t size() const { return records_.size(); }
  bool empty() const { return records_.empty(); }
  const Record& record(size_t i) const { return records_[i]; }
  Record& record(size_t i) { return records_[i]; }
  const std::vector<Record>& records() const { return records_; }

  /// Fraction of null RSSI cells.
  double MissingRssiRate() const;
  /// Fraction of records without an RP.
  double MissingRpRate() const;

  /// Record indices grouped by path, each group sorted by time — the
  /// sequences fed to sequential imputers.
  std::vector<std::vector<size_t>> PathSequences() const;

  /// Per-record RP with nulls filled by linear interpolation along each
  /// path (previous/next observed RP weighted by time); endpoints clamp to
  /// the nearest observed RP. Records on paths with no observed RP get the
  /// centroid of all observed RPs. (Algorithm 2 line 4 and baseline LI.)
  std::vector<geom::Point> InterpolatedRps() const;

 private:
  size_t num_aps_ = 0;
  ShardId shard_;
  std::vector<Record> records_;
};

/// Differentiation mask values (paper Section III).
enum class MaskValue : int8_t {
  kMnar = -1,  ///< missing not at random (unobservable AP)
  kMar = 0,    ///< missing at random
  kObserved = 1,
};

/// N x D matrix over {-1, 0, 1}.
class MaskMatrix {
 public:
  MaskMatrix() = default;
  MaskMatrix(size_t n, size_t d, MaskValue fill = MaskValue::kObserved)
      : n_(n), d_(d), values_(n * d, static_cast<int8_t>(fill)) {}

  MaskValue at(size_t i, size_t j) const {
    return static_cast<MaskValue>(values_[i * d_ + j]);
  }
  void set(size_t i, size_t j, MaskValue v) {
    values_[i * d_ + j] = static_cast<int8_t>(v);
  }

  size_t rows() const { return n_; }
  size_t cols() const { return d_; }

  size_t CountOf(MaskValue v) const;

  /// Fraction of missing cells labeled MAR (the paper reports ~7-10%).
  double MarShareOfMissing() const;

 private:
  size_t n_ = 0;
  size_t d_ = 0;
  std::vector<int8_t> values_;
};

/// BINARIZATION (Algorithm 1): b[d] = 1 iff AP d observed in the fingerprint.
std::vector<uint8_t> Binarization(const std::vector<double>& fingerprint);

/// A removed cell (used as imputation ground truth in the beta experiments).
/// `record` is the stable Record::id, so lookups survive imputer copies and
/// deletions.
struct RemovedRssi {
  size_t record;
  size_t ap;
  double value;
};
struct RemovedRp {
  size_t record;
  geom::Point rp;
};

/// Nullifies a fraction `ratio` of the observed RSSIs, uniformly at random;
/// returns what was removed. (Paper's alpha and beta removal.)
std::vector<RemovedRssi> RemoveRandomRssis(RadioMap* map, double ratio,
                                           Rng& rng);

/// Nullifies a fraction `ratio` of the observed RPs; returns what was
/// removed. (Paper's beta removal on RPs.)
std::vector<RemovedRp> RemoveRandomRps(RadioMap* map, double ratio, Rng& rng);

}  // namespace rmi::rmap

#endif  // RMI_RADIOMAP_RADIO_MAP_H_
