#include "eval/metrics.h"

#include <cmath>
#include <unordered_map>

#include "common/check.h"
#include "common/missing.h"
#include "common/stats.h"

namespace rmi::eval {

double AveragePositioningError(const std::vector<geom::Point>& estimates,
                               const std::vector<geom::Point>& truths) {
  RMI_CHECK_EQ(estimates.size(), truths.size());
  if (estimates.empty()) return 0.0;
  double sum = 0.0;
  for (size_t i = 0; i < estimates.size(); ++i) {
    sum += geom::Distance(estimates[i], truths[i]);
  }
  return sum / static_cast<double>(estimates.size());
}

namespace {

/// record id -> index in `map`.
std::unordered_map<size_t, size_t> IdIndex(const rmap::RadioMap& map) {
  std::unordered_map<size_t, size_t> idx;
  idx.reserve(map.size());
  for (size_t i = 0; i < map.size(); ++i) idx[map.record(i).id] = i;
  return idx;
}

}  // namespace

double RssiMae(const rmap::RadioMap& imputed,
               const std::vector<rmap::RemovedRssi>& removed) {
  if (removed.empty()) return 0.0;
  const auto idx = IdIndex(imputed);
  double sum = 0.0;
  size_t count = 0;
  for (const rmap::RemovedRssi& cell : removed) {
    auto it = idx.find(cell.record);
    if (it == idx.end()) continue;  // record deleted by the imputer
    const double v = imputed.record(it->second).rssi[cell.ap];
    RMI_CHECK(!IsNull(v));
    sum += std::fabs(v - cell.value);
    ++count;
  }
  return count ? sum / static_cast<double>(count) : 0.0;
}

ErrorCdf SummarizeErrors(const std::vector<double>& errors) {
  ErrorCdf cdf;
  if (errors.empty()) return cdf;
  cdf.mean = Mean(errors);
  cdf.p50 = Percentile(errors, 50);
  cdf.p75 = Percentile(errors, 75);
  cdf.p90 = Percentile(errors, 90);
  cdf.p95 = Percentile(errors, 95);
  cdf.max = Percentile(errors, 100);
  return cdf;
}

double RpEuclideanError(const rmap::RadioMap& imputed,
                        const std::vector<rmap::RemovedRp>& removed) {
  if (removed.empty()) return 0.0;
  const auto idx = IdIndex(imputed);
  double sum = 0.0;
  size_t count = 0;
  for (const rmap::RemovedRp& cell : removed) {
    auto it = idx.find(cell.record);
    if (it == idx.end()) continue;
    const rmap::Record& r = imputed.record(it->second);
    RMI_CHECK(r.has_rp);
    sum += geom::Distance(r.rp, cell.rp);
    ++count;
  }
  return count ? sum / static_cast<double>(count) : 0.0;
}

}  // namespace rmi::eval
