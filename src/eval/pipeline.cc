#include "eval/pipeline.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "common/check.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "eval/metrics.h"

namespace rmi::eval {

rmap::RadioMap DifferentiateAndImpute(
    const rmap::RadioMap& map, const cluster::Differentiator& differentiator,
    const imputers::Imputer& imputer, Rng& rng, double* mar_share) {
  rmap::RadioMap working = map;
  rmap::MaskMatrix mask = differentiator.Differentiate(working, rng);
  if (mar_share != nullptr) *mar_share = mask.MarShareOfMissing();
  imputers::FillMnar(&working, &mask);
  return imputer.Impute(working, mask, rng);
}

PipelineResult RunPipeline(const rmap::RadioMap& map,
                           const cluster::Differentiator& differentiator,
                           const imputers::Imputer& imputer,
                           positioning::LocationEstimator& estimator,
                           const PipelineOptions& options) {
  return RunPipelineMultiEstimators(map, differentiator, imputer, {&estimator},
                                    options)[0];
}

std::vector<PipelineResult> RunPipelineMultiEstimators(
    const rmap::RadioMap& map, const cluster::Differentiator& differentiator,
    const imputers::Imputer& imputer,
    const std::vector<positioning::LocationEstimator*>& estimators,
    const PipelineOptions& options) {
  RMI_CHECK(!estimators.empty());
  Rng rng(options.seed);

  // Select the test split among records with observed RPs.
  std::vector<size_t> labeled;
  for (size_t i = 0; i < map.size(); ++i) {
    if (map.record(i).has_rp) labeled.push_back(i);
  }
  RMI_CHECK(!labeled.empty());
  const size_t num_test = std::max<size_t>(
      1, static_cast<size_t>(options.test_fraction *
                             static_cast<double>(labeled.size())));
  std::vector<size_t> test_indices;
  for (size_t pick : rng.SampleWithoutReplacement(labeled.size(), num_test)) {
    test_indices.push_back(labeled[pick]);
  }

  // Hide test RPs (records stay in the map so sequential imputers see
  // their temporal context).
  rmap::RadioMap working = map;
  std::unordered_map<size_t, geom::Point> truth_by_id;
  std::unordered_set<size_t> test_ids;
  for (size_t i : test_indices) {
    truth_by_id[working.record(i).id] = working.record(i).rp;
    test_ids.insert(working.record(i).id);
    working.record(i).has_rp = false;
    working.record(i).rp = geom::Point{};
  }

  // A + B.
  PipelineResult result;
  result.num_test = test_indices.size();
  Timer timer;
  rmap::RadioMap imputed = DifferentiateAndImpute(
      working, differentiator, imputer, rng, &result.mar_share);
  result.impute_seconds = timer.ElapsedSeconds();

  // Split: training radio map vs online test fingerprints.
  rmap::RadioMap training(imputed.num_aps());
  std::unordered_map<size_t, const rmap::Record*> imputed_by_id;
  for (size_t i = 0; i < imputed.size(); ++i) {
    const rmap::Record& r = imputed.record(i);
    if (test_ids.count(r.id)) {
      imputed_by_id[r.id] = &r;
    } else {
      training.Add(r);
    }
  }
  RMI_CHECK(!training.empty());

  // C: each estimator evaluated on the identical imputed split. Query
  // fingerprints are assembled once into a query matrix; contiguous row
  // chunks then fan out over a pool, each chunk answered by the estimator's
  // batched path (one Gemm per chunk for the KNN family, bit-identical to
  // per-record Estimate) — results land in pre-sized slots, so the output
  // is independent of scheduling.
  const size_t num_queries = test_indices.size();
  la::Matrix queries(num_queries, imputed.num_aps());
  std::vector<geom::Point> truths;
  truths.reserve(num_queries);
  for (size_t q = 0; q < num_queries; ++q) {
    const size_t i = test_indices[q];
    const size_t id = map.record(i).id;
    std::vector<double> fingerprint;
    auto it = imputed_by_id.find(id);
    if (it != imputed_by_id.end()) {
      fingerprint = it->second->rssi;
    } else {
      // The imputer deleted the (null-RP) test record — CaseDeletion
      // semantics: use the raw fingerprint with the -100 dBm fill.
      fingerprint = map.record(i).rssi;
      for (double& v : fingerprint) {
        if (IsNull(v)) v = kMnarFillDbm;
      }
    }
    RMI_CHECK_EQ(fingerprint.size(), queries.cols());
    std::copy(fingerprint.begin(), fingerprint.end(),
              queries.data().begin() + static_cast<long>(q * queries.cols()));
    truths.push_back(truth_by_id.at(id));
  }

  ThreadPool pool(std::min(ThreadPool::DefaultThreads(),
                           std::max<size_t>(1, num_queries)));
  const size_t num_chunks = pool.num_threads();
  std::vector<PipelineResult> results;
  for (positioning::LocationEstimator* estimator : estimators) {
    RMI_CHECK(estimator != nullptr);
    estimator->Fit(training, rng);
    std::vector<geom::Point> estimates(num_queries);
    pool.ParallelFor(num_chunks, [&](size_t /*worker*/, size_t chunk) {
      const size_t lo = chunk * num_queries / num_chunks;
      const size_t hi = (chunk + 1) * num_queries / num_chunks;
      if (lo == hi) return;
      const std::vector<geom::Point> block =
          estimator->EstimateBatch(queries.SliceRows(lo, hi));
      std::copy(block.begin(), block.end(),
                estimates.begin() + static_cast<long>(lo));
    });
    PipelineResult r = result;
    r.ape = AveragePositioningError(estimates, truths);
    r.errors.reserve(estimates.size());
    for (size_t e = 0; e < estimates.size(); ++e) {
      r.errors.push_back(geom::Distance(estimates[e], truths[e]));
    }
    results.push_back(r);
  }
  return results;
}

BetaExperimentResult RunBetaExperiment(
    const rmap::RadioMap& map, const cluster::Differentiator& differentiator,
    const imputers::Imputer& imputer, double beta_rssi, double beta_rp,
    uint64_t seed) {
  Rng rng(seed);
  rmap::RadioMap working = map;
  rmap::MaskMatrix mask = differentiator.Differentiate(working, rng);
  imputers::FillMnar(&working, &mask);

  // Removal follows the paper's Section V-C semantics literally: "the
  // removal in this section is conducted after filling in all MNARs with
  // -100 dBm" — so the removable population is every observed cell of the
  // post-fill map, and the removed ground truth includes -100 dBm cells.
  // Removed cells are flipped to MAR in the amended mask so imputers treat
  // them as imputable.
  std::vector<rmap::RemovedRssi> removed_rssi;
  if (beta_rssi > 0.0) {
    removed_rssi = rmap::RemoveRandomRssis(&working, beta_rssi, rng);
    std::unordered_map<size_t, size_t> index_by_id;
    for (size_t i = 0; i < working.size(); ++i) {
      index_by_id[working.record(i).id] = i;
    }
    for (const rmap::RemovedRssi& cell : removed_rssi) {
      mask.set(index_by_id.at(cell.record), cell.ap, rmap::MaskValue::kMar);
    }
  }
  std::vector<rmap::RemovedRp> removed_rp;
  if (beta_rp > 0.0) {
    removed_rp = rmap::RemoveRandomRps(&working, beta_rp, rng);
  }

  const rmap::RadioMap imputed = imputer.Impute(working, mask, rng);

  BetaExperimentResult result;
  result.rssi_mae = RssiMae(imputed, removed_rssi);
  result.rp_euclidean = RpEuclideanError(imputed, removed_rp);
  return result;
}

}  // namespace rmi::eval
