// The control-variates evaluation pipeline of paper Section V-A:
// differentiator A + data imputer B + location estimator C.
//
// Positioning protocol: 10% of the records with observed RPs are held out
// as test data (their RPs hidden but records kept in place, so sequential
// imputers see them in context). A and B impute the whole map; the
// non-test imputed records form the radio map for C; each test record's
// imputed fingerprint is the online fingerprint; APE is measured against
// the hidden RPs.
#ifndef RMI_EVAL_PIPELINE_H_
#define RMI_EVAL_PIPELINE_H_

#include <cstdint>
#include <vector>

#include "clustering/differentiation.h"
#include "common/missing.h"
#include "imputers/imputer.h"
#include "positioning/estimators.h"
#include "radiomap/radio_map.h"

namespace rmi::eval {

struct PipelineOptions {
  double test_fraction = 0.1;
  uint64_t seed = 1234;
};

struct PipelineResult {
  double ape = 0.0;             ///< average positioning error, meters
  double impute_seconds = 0.0;  ///< differentiation + imputation wall clock
  size_t num_test = 0;
  double mar_share = 0.0;       ///< MAR share of missing RSSIs (diagnostic)
  /// Per-test-point positioning errors (for CDF summaries).
  std::vector<double> errors;
};

/// Runs A + B + C end to end on `map`. The estimator is re-fit inside.
PipelineResult RunPipeline(const rmap::RadioMap& map,
                           const cluster::Differentiator& differentiator,
                           const imputers::Imputer& imputer,
                           positioning::LocationEstimator& estimator,
                           const PipelineOptions& options);

/// Same protocol, but imputes once and evaluates several estimators on the
/// identical imputed map (the Table VI/VIII structure: one column block per
/// imputer, one row per estimator). Results are index-aligned with
/// `estimators`.
std::vector<PipelineResult> RunPipelineMultiEstimators(
    const rmap::RadioMap& map, const cluster::Differentiator& differentiator,
    const imputers::Imputer& imputer,
    const std::vector<positioning::LocationEstimator*>& estimators,
    const PipelineOptions& options);

/// Differentiates + MNAR-fills + imputes `map` (no test split) and returns
/// the complete map — the offline "radio map improvement" entry point and
/// the shared first half of the imputation-error experiments.
rmap::RadioMap DifferentiateAndImpute(
    const rmap::RadioMap& map, const cluster::Differentiator& differentiator,
    const imputers::Imputer& imputer, Rng& rng, double* mar_share = nullptr);

/// Imputation-error experiment (Figs. 14-15): removes a beta fraction of
/// observed cells *after* the MNAR fill (paper Section V-C semantics),
/// marking them MAR in the mask, imputes, and reports the error against the
/// removed ground truth.
struct BetaExperimentResult {
  double rssi_mae = 0.0;
  double rp_euclidean = 0.0;
};
BetaExperimentResult RunBetaExperiment(
    const rmap::RadioMap& map, const cluster::Differentiator& differentiator,
    const imputers::Imputer& imputer, double beta_rssi, double beta_rp,
    uint64_t seed);

}  // namespace rmi::eval

#endif  // RMI_EVAL_PIPELINE_H_
