#include "eval/factories.h"

#include <cstdlib>

#include "clustering/strategies.h"
#include "common/check.h"
#include "imputers/autocorrelation.h"
#include "imputers/neural.h"
#include "imputers/traditional.h"

namespace rmi::eval {

BenchEnv BenchEnv::FromEnv() {
  BenchEnv env;
  if (const char* s = std::getenv("RMI_BENCH_SCALE"); s != nullptr && *s) {
    env.scale = std::atof(s);
    RMI_CHECK_GT(env.scale, 0.0);
  }
  if (const char* s = std::getenv("RMI_BENCH_EPOCHS"); s != nullptr && *s) {
    env.epochs = static_cast<size_t>(std::atoi(s));
    RMI_CHECK_GT(env.epochs, 0u);
  }
  return env;
}

std::shared_ptr<cluster::Differentiator> MakeDifferentiator(
    const std::string& name, const indoor::Venue* venue, double eta) {
  using cluster::ClusteringDifferentiator;
  if (name == "MAR-only") {
    return std::make_shared<cluster::MarOnlyDifferentiator>();
  }
  if (name == "MNAR-only") {
    return std::make_shared<cluster::MnarOnlyDifferentiator>();
  }
  if (name == "TopoAC") {
    RMI_CHECK(venue != nullptr);
    return std::make_shared<ClusteringDifferentiator>(
        std::make_shared<cluster::TopoACClusterer>(&venue->walls), eta);
  }
  if (name == "DasaKM") {
    return std::make_shared<ClusteringDifferentiator>(
        std::make_shared<cluster::DasaKMeansClusterer>(), eta);
  }
  if (name == "ElbowKM") {
    return std::make_shared<ClusteringDifferentiator>(
        std::make_shared<cluster::ElbowKMeansClusterer>(), eta);
  }
  if (name == "DBSCAN") {
    return std::make_shared<ClusteringDifferentiator>(
        std::make_shared<cluster::DbscanClusterer>(/*eps=*/2.0,
                                                   /*min_pts=*/4),
        eta);
  }
  RMI_CHECK(false);
  return nullptr;
}

bisim::BiSimConfig DefaultBiSimConfig(const indoor::Venue& venue,
                                      const BenchEnv& env) {
  bisim::BiSimConfig cfg;
  cfg.loc_scale = 1.0 / std::max(venue.width, venue.height);
  cfg.epochs = env.epochs;
  return cfg;
}

std::unique_ptr<imputers::Imputer> MakeImputer(const std::string& name,
                                               const indoor::Venue& venue,
                                               const BenchEnv& env) {
  if (name == "CD") return std::make_unique<imputers::CaseDeletionImputer>();
  if (name == "LI") {
    return std::make_unique<imputers::LinearInterpolationImputer>();
  }
  if (name == "SL") return std::make_unique<imputers::SemiSupervisedImputer>();
  if (name == "MICE") return std::make_unique<imputers::MiceImputer>();
  if (name == "MF") {
    return std::make_unique<imputers::MatrixFactorizationImputer>();
  }
  if (name == "BRITS") {
    imputers::NeuralParams p;
    p.epochs = env.epochs;
    return std::make_unique<imputers::BritsImputer>(p);
  }
  if (name == "SSGAN") {
    imputers::SsganImputer::Params p;
    p.epochs = env.epochs;
    return std::make_unique<imputers::SsganImputer>(p);
  }
  if (name == "BiSIM") {
    return std::make_unique<bisim::BiSimImputer>(DefaultBiSimConfig(venue, env));
  }
  RMI_CHECK(false);
  return nullptr;
}

std::unique_ptr<positioning::LocationEstimator> MakeEstimator(
    const std::string& name) {
  if (name == "KNN") {
    return std::make_unique<positioning::KnnEstimator>(3, /*weighted=*/false);
  }
  if (name == "WKNN") {
    return std::make_unique<positioning::KnnEstimator>(3, /*weighted=*/true);
  }
  if (name == "RF") {
    return std::make_unique<positioning::RandomForestEstimator>();
  }
  RMI_CHECK(false);
  return nullptr;
}

}  // namespace rmi::eval
