// Evaluation metrics (paper Section V): APE, fingerprint MAE, RP Euclidean
// distance.
#ifndef RMI_EVAL_METRICS_H_
#define RMI_EVAL_METRICS_H_

#include <vector>

#include "geometry/geometry.h"
#include "radiomap/radio_map.h"

namespace rmi::eval {

/// Average positioning error: mean Euclidean distance between estimates and
/// ground-truth locations.
double AveragePositioningError(const std::vector<geom::Point>& estimates,
                               const std::vector<geom::Point>& truths);

/// Mean absolute error of imputed RSSIs over the removed (ground-truth)
/// cells. `imputed` must contain the same record ids as the map the cells
/// were removed from.
double RssiMae(const rmap::RadioMap& imputed,
               const std::vector<rmap::RemovedRssi>& removed);

/// Mean Euclidean distance between imputed RPs and the removed ground-truth
/// RPs.
double RpEuclideanError(const rmap::RadioMap& imputed,
                        const std::vector<rmap::RemovedRp>& removed);

/// Positioning-error distribution summary (the CDF percentiles that indoor
/// positioning papers report alongside the mean APE).
struct ErrorCdf {
  double mean = 0.0;
  double p50 = 0.0;
  double p75 = 0.0;
  double p90 = 0.0;
  double p95 = 0.0;
  double max = 0.0;
};

/// Summarizes a vector of per-query positioning errors.
ErrorCdf SummarizeErrors(const std::vector<double>& errors);

}  // namespace rmi::eval

#endif  // RMI_EVAL_METRICS_H_
