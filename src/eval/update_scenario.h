// Accuracy-under-update evaluation: does the live ingest -> impute ->
// publish loop actually repair a stale radio map?
//
// Scenario: the serving stack is bootstrapped from a *drifted* survey of
// one floor (per-AP transmit-power offsets plus per-cell noise — the radio
// environment changed since the survey). Queries drawn from the current
// environment are answered poorly by the stale snapshot. A fresh — but
// sparse: missing RSSIs and missing RPs, so the rebuild genuinely imputes
// — survey batch is then ingested through serving::MapUpdater, the rebuild
// re-imputes and re-fits, and the hot-swapped snapshot is measured against
// the same query set. The acceptance criterion is updated APE < stale APE.
#ifndef RMI_EVAL_UPDATE_SCENARIO_H_
#define RMI_EVAL_UPDATE_SCENARIO_H_

#include <cstdint>

#include "clustering/differentiation.h"
#include "imputers/imputer.h"
#include "serving/map_updater.h"

namespace rmi::eval {

struct UpdateScenarioOptions {
  /// Venue geometry of the floor under test (1 m grid).
  size_t nx = 14;
  size_t ny = 10;
  size_t num_aps = 12;
  /// Environment drift baked into the stale survey: per-AP offset drawn
  /// uniform in [-drift, drift] dB plus per-cell noise in [-drift/2,
  /// drift/2] (non-uniform, so nearest-neighbor structure truly degrades).
  double drift_dbm = 9.0;
  /// Sparsity of the fresh survey batch fed to the updater.
  double delta_missing_rssi = 0.25;
  double delta_missing_rp = 0.3;
  /// Queries measured against both snapshot generations.
  size_t num_queries = 96;
  uint64_t seed = 97;
  /// Fraction of the current environment re-surveyed into the updater
  /// (Bernoulli per record). 1.0 = the full-resurvey repair scenario;
  /// smaller values exercise the partial-delta incremental path.
  double resurvey_fraction = 1.0;
  /// Warm-start / dirty-row incremental rebuild (serving::MapUpdaterOptions
  /// ::incremental). false pins every rebuild cold — the reference the
  /// incremental accuracy budget is measured against.
  bool incremental_rebuild = true;
};

struct UpdateScenarioResult {
  double stale_ape = 0.0;    ///< APE against the drifted bootstrap snapshot
  double updated_ape = 0.0;  ///< APE after ingest + rebuild + hot-swap
  size_t ingested = 0;       ///< fresh observations fed to the updater
  double rebuild_seconds = 0.0;
  uint64_t snapshot_versions = 0;  ///< publishes observed on the shard
};

/// Runs the scenario on shard (0, 0) with the given pipeline backends.
/// `estimator_factory` builds the estimator each snapshot fits (as in
/// serving::MapUpdater). Deterministic for a fixed options.seed.
UpdateScenarioResult RunAccuracyUnderUpdate(
    const cluster::Differentiator& differentiator,
    const imputers::Imputer& imputer,
    const serving::EstimatorFactory& estimator_factory,
    const UpdateScenarioOptions& options = {});

}  // namespace rmi::eval

#endif  // RMI_EVAL_UPDATE_SCENARIO_H_
