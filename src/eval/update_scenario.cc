#include "eval/update_scenario.h"

#include <vector>

#include "common/check.h"
#include "common/missing.h"
#include "serving/shard_router.h"
#include "serving/synthetic.h"

namespace rmi::eval {

namespace {

/// Mean Euclidean error of routing `queries` (all rows hinted to `shard`)
/// against `truths`.
double MeasureApe(const serving::ShardRouter& router,
                  const rmap::ShardId& shard, const la::Matrix& queries,
                  const std::vector<geom::Point>& truths) {
  std::vector<std::optional<rmap::ShardId>> hints(queries.rows(), shard);
  const serving::ShardRouter::BatchResult routed =
      router.LocalizeBatch(queries, hints);
  double sum = 0.0;
  for (size_t i = 0; i < routed.positions.size(); ++i) {
    sum += geom::Distance(routed.positions[i], truths[i]);
  }
  return routed.positions.empty() ? 0.0
                                  : sum / double(routed.positions.size());
}

}  // namespace

UpdateScenarioResult RunAccuracyUnderUpdate(
    const cluster::Differentiator& differentiator,
    const imputers::Imputer& imputer,
    const serving::EstimatorFactory& estimator_factory,
    const UpdateScenarioOptions& options) {
  const rmap::ShardId shard{0, 0};
  Rng rng(options.seed);

  // The current radio environment (ground truth), and a stale survey of it:
  // per-AP transmit-power offsets plus per-cell noise — non-uniform, so the
  // nearest-neighbor structure the estimator relies on truly degrades.
  const rmap::RadioMap truth = serving::MakeSyntheticServingMap(
      options.nx, options.ny, options.num_aps, options.seed);
  rmap::RadioMap stale = truth;
  std::vector<double> ap_offset(options.num_aps);
  for (double& o : ap_offset) o = rng.Uniform(-options.drift_dbm,
                                              options.drift_dbm);
  for (size_t i = 0; i < stale.size(); ++i) {
    for (size_t j = 0; j < options.num_aps; ++j) {
      stale.record(i).rssi[j] =
          ClampRssi(stale.record(i).rssi[j] + ap_offset[j] +
                    rng.Uniform(-options.drift_dbm / 2.0,
                                options.drift_dbm / 2.0));
    }
  }

  // Queries from the *current* environment, with their true locations.
  la::Matrix queries(options.num_queries, options.num_aps);
  std::vector<geom::Point> truths;
  truths.reserve(options.num_queries);
  for (size_t i = 0; i < options.num_queries; ++i) {
    const rmap::Record& r = truth.record(rng.Index(truth.size()));
    for (size_t j = 0; j < options.num_aps; ++j) {
      queries(i, j) = ClampRssi(r.rssi[j] + rng.Uniform(-2.0, 2.0));
    }
    truths.push_back(r.rp);
  }

  serving::ShardedSnapshotStore store;
  serving::MapUpdaterOptions updater_options;
  updater_options.seed = options.seed + 1;
  updater_options.incremental = options.incremental_rebuild;
  serving::MapUpdater updater(&store, &differentiator, &imputer,
                              estimator_factory, updater_options);
  updater.RegisterShard(shard, stale);  // bootstrap: the drifted snapshot
  serving::ShardRouter router(&store, /*num_threads=*/1);

  UpdateScenarioResult result;
  result.stale_ape = MeasureApe(router, shard, queries, truths);

  // The fresh — but sparse — re-survey batch: missing RSSIs and missing
  // RPs force the rebuild through genuine differentiation + imputation.
  for (size_t i = 0; i < truth.size(); ++i) {
    if (options.resurvey_fraction < 1.0 &&
        !rng.Bernoulli(options.resurvey_fraction)) {
      continue;
    }
    rmap::Record obs = truth.record(i);
    obs.id = rmap::Record::kUnassignedId;
    obs.time += double(truth.size());  // surveyed after the stale pass
    for (double& v : obs.rssi) {
      if (rng.Bernoulli(options.delta_missing_rssi)) v = kNull;
    }
    if (obs.NumObserved() == 0) obs.rssi[0] = truth.record(i).rssi[0];
    if (rng.Bernoulli(options.delta_missing_rp)) {
      obs.has_rp = false;
      obs.rp = geom::Point{};
    }
    updater.Ingest(shard, std::move(obs));
    ++result.ingested;
  }

  RMI_CHECK(updater.RebuildNow(shard));
  result.updated_ape = MeasureApe(router, shard, queries, truths);
  result.rebuild_seconds = updater.Stats().last_rebuild_seconds;
  result.snapshot_versions = store.publish_count();
  return result;
}

}  // namespace rmi::eval
