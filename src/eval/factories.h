// Name-based factories wiring the whole framework together — used by the
// bench harness and the examples to build module A (differentiator),
// module B (imputer), and module C (estimator) from the paper's labels.
#ifndef RMI_EVAL_FACTORIES_H_
#define RMI_EVAL_FACTORIES_H_

#include <memory>
#include <string>

#include "bisim/bisim.h"
#include "clustering/differentiation.h"
#include "imputers/imputer.h"
#include "indoor/venue.h"
#include "positioning/estimators.h"

namespace rmi::eval {

/// Bench sizing knobs, overridable via environment variables:
///   RMI_BENCH_SCALE  — venue AP-count scale in (0, 1] (default 0.18)
///   RMI_BENCH_EPOCHS — neural-imputer training epochs (default 20)
struct BenchEnv {
  double scale = 0.18;
  size_t epochs = 35;

  static BenchEnv FromEnv();
};

/// Differentiators: "TopoAC", "DasaKM", "ElbowKM", "DBSCAN", "MAR-only",
/// "MNAR-only". TopoAC needs the venue's wall multipolygon (`venue` must
/// outlive the differentiator).
std::shared_ptr<cluster::Differentiator> MakeDifferentiator(
    const std::string& name, const indoor::Venue* venue, double eta = 0.1);

/// Imputers: "CD", "LI", "SL", "MICE", "MF", "BRITS", "SSGAN", "BiSIM".
/// `venue` provides the location normalization scale for the neural models;
/// `env` provides the epoch budget. Variants of BiSIM for the ablations are
/// built directly via bisim::BiSimConfig.
std::unique_ptr<imputers::Imputer> MakeImputer(const std::string& name,
                                               const indoor::Venue& venue,
                                               const BenchEnv& env);

/// Estimators: "KNN", "WKNN", "RF".
std::unique_ptr<positioning::LocationEstimator> MakeEstimator(
    const std::string& name);

/// Default BiSIM configuration for a venue (normalization + epoch budget).
bisim::BiSimConfig DefaultBiSimConfig(const indoor::Venue& venue,
                                      const BenchEnv& env);

}  // namespace rmi::eval

#endif  // RMI_EVAL_FACTORIES_H_
