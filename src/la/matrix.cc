#include "la/matrix.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "la/kernels.h"

namespace rmi::la {

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> init) {
  rows_ = init.size();
  cols_ = rows_ ? init.begin()->size() : 0;
  data_.reserve(rows_ * cols_);
  for (const auto& row : init) {
    RMI_CHECK_EQ(row.size(), cols_);
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

Matrix Matrix::Identity(size_t n) {
  Matrix m(n, n);
  for (size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::Random(size_t rows, size_t cols, Rng& rng, double lo,
                      double hi) {
  Matrix m(rows, cols);
  for (double& v : m.data_) v = rng.Uniform(lo, hi);
  return m;
}

Matrix Matrix::Gaussian(size_t rows, size_t cols, Rng& rng, double stddev) {
  Matrix m(rows, cols);
  for (double& v : m.data_) v = rng.Gaussian(0.0, stddev);
  return m;
}

Matrix Matrix::RowVector(const std::vector<double>& values) {
  Matrix m(1, values.size());
  m.data_ = values;
  return m;
}

Matrix Matrix::ColVector(const std::vector<double>& values) {
  Matrix m(values.size(), 1);
  m.data_ = values;
  return m;
}

Matrix Matrix::operator+(const Matrix& o) const {
  RMI_CHECK(SameShape(o));
  Matrix r = *this;
  for (size_t i = 0; i < data_.size(); ++i) r.data_[i] += o.data_[i];
  return r;
}

Matrix Matrix::operator-(const Matrix& o) const {
  RMI_CHECK(SameShape(o));
  Matrix r = *this;
  for (size_t i = 0; i < data_.size(); ++i) r.data_[i] -= o.data_[i];
  return r;
}

Matrix Matrix::CwiseProduct(const Matrix& o) const {
  RMI_CHECK(SameShape(o));
  Matrix r = *this;
  for (size_t i = 0; i < data_.size(); ++i) r.data_[i] *= o.data_[i];
  return r;
}

Matrix Matrix::CwiseQuotient(const Matrix& o) const {
  RMI_CHECK(SameShape(o));
  Matrix r = *this;
  for (size_t i = 0; i < data_.size(); ++i) r.data_[i] /= o.data_[i];
  return r;
}

Matrix Matrix::operator*(double s) const {
  Matrix r = *this;
  for (double& v : r.data_) v *= s;
  return r;
}

Matrix Matrix::operator+(double s) const {
  Matrix r = *this;
  for (double& v : r.data_) v += s;
  return r;
}

Matrix& Matrix::operator+=(const Matrix& o) {
  RMI_CHECK(SameShape(o));
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += o.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& o) {
  RMI_CHECK(SameShape(o));
  for (size_t i = 0; i < data_.size(); ++i) data_[i] -= o.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(double s) {
  for (double& v : data_) v *= s;
  return *this;
}

Matrix Matrix::MatMul(const Matrix& o) const {
  RMI_CHECK_EQ(cols_, o.rows_);
  Matrix r;
  Gemm(1.0, *this, /*trans_a=*/false, o, /*trans_b=*/false, 0.0, &r);
  return r;
}

Matrix Matrix::Transpose() const {
  Matrix r(cols_, rows_);
  for (size_t i = 0; i < rows_; ++i) {
    for (size_t j = 0; j < cols_; ++j) r(j, i) = (*this)(i, j);
  }
  return r;
}

Matrix Matrix::AddRowBroadcast(const Matrix& row) const {
  RMI_CHECK_EQ(row.rows(), 1u);
  RMI_CHECK_EQ(row.cols(), cols_);
  Matrix r = *this;
  for (size_t i = 0; i < rows_; ++i) {
    for (size_t j = 0; j < cols_; ++j) r(i, j) += row(0, j);
  }
  return r;
}

Matrix Matrix::Row(size_t r) const {
  RMI_CHECK_LT(r, rows_);
  Matrix out(1, cols_);
  std::copy_n(&data_[r * cols_], cols_, out.data_.begin());
  return out;
}

Matrix Matrix::Col(size_t c) const {
  RMI_CHECK_LT(c, cols_);
  Matrix out(rows_, 1);
  for (size_t i = 0; i < rows_; ++i) out(i, 0) = (*this)(i, c);
  return out;
}

void Matrix::SetRow(size_t r, const Matrix& row) {
  RMI_CHECK_LT(r, rows_);
  RMI_CHECK_EQ(row.rows(), 1u);
  RMI_CHECK_EQ(row.cols(), cols_);
  std::copy_n(row.data_.begin(), cols_, &data_[r * cols_]);
}

Matrix Matrix::ConcatCols(const Matrix& o) const {
  RMI_CHECK_EQ(rows_, o.rows_);
  Matrix r(rows_, cols_ + o.cols_);
  for (size_t i = 0; i < rows_; ++i) {
    std::copy_n(&data_[i * cols_], cols_, &r.data_[i * r.cols_]);
    std::copy_n(&o.data_[i * o.cols_], o.cols_, &r.data_[i * r.cols_ + cols_]);
  }
  return r;
}

Matrix Matrix::ConcatRows(const Matrix& o) const {
  RMI_CHECK_EQ(cols_, o.cols_);
  Matrix r(rows_ + o.rows_, cols_);
  std::copy(data_.begin(), data_.end(), r.data_.begin());
  std::copy(o.data_.begin(), o.data_.end(), r.data_.begin() + data_.size());
  return r;
}

Matrix Matrix::SliceCols(size_t c0, size_t c1) const {
  RMI_CHECK_LE(c0, c1);
  RMI_CHECK_LE(c1, cols_);
  Matrix r(rows_, c1 - c0);
  for (size_t i = 0; i < rows_; ++i) {
    std::copy_n(&data_[i * cols_ + c0], c1 - c0, &r.data_[i * r.cols_]);
  }
  return r;
}

Matrix Matrix::SliceRows(size_t r0, size_t r1) const {
  RMI_CHECK_LE(r0, r1);
  RMI_CHECK_LE(r1, rows_);
  Matrix r(r1 - r0, cols_);
  std::copy_n(&data_[r0 * cols_], (r1 - r0) * cols_, r.data_.begin());
  return r;
}

double Matrix::Sum() const {
  double s = 0.0;
  for (double v : data_) s += v;
  return s;
}

double Matrix::Mean() const {
  return data_.empty() ? 0.0 : Sum() / static_cast<double>(data_.size());
}

double Matrix::MaxAbs() const {
  double m = 0.0;
  for (double v : data_) m = std::max(m, std::fabs(v));
  return m;
}

double Matrix::FrobeniusNorm() const {
  double s = 0.0;
  for (double v : data_) s += v * v;
  return std::sqrt(s);
}

double Matrix::SquaredDistance(const Matrix& a, const Matrix& b) {
  RMI_CHECK(a.SameShape(b));
  double s = 0.0;
  for (size_t i = 0; i < a.data_.size(); ++i) {
    const double d = a.data_[i] - b.data_[i];
    s += d * d;
  }
  return s;
}

bool Matrix::AllFinite() const {
  for (double v : data_) {
    if (!std::isfinite(v)) return false;
  }
  return true;
}

double Matrix::MaxAbsDiff(const Matrix& a, const Matrix& b) {
  RMI_CHECK(a.SameShape(b));
  double m = 0.0;
  for (size_t i = 0; i < a.data_.size(); ++i) {
    m = std::max(m, std::fabs(a.data_[i] - b.data_[i]));
  }
  return m;
}

std::string Matrix::ToString(int prec) const {
  std::ostringstream os;
  os.precision(prec);
  for (size_t i = 0; i < rows_; ++i) {
    os << (i ? "\n[" : "[");
    for (size_t j = 0; j < cols_; ++j) os << (j ? ", " : "") << (*this)(i, j);
    os << "]";
  }
  return os.str();
}

Matrix CholeskySolve(const Matrix& a, const Matrix& b, double ridge) {
  RMI_CHECK_EQ(a.rows(), a.cols());
  RMI_CHECK_EQ(a.rows(), b.rows());
  const size_t n = a.rows();
  // Factor A + ridge*I = L L^T in place.
  Matrix l(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j <= i; ++j) {
      double s = a(i, j) + (i == j ? ridge : 0.0);
      for (size_t k = 0; k < j; ++k) s -= l(i, k) * l(j, k);
      if (i == j) {
        RMI_CHECK_GT(s, 0.0);
        l(i, i) = std::sqrt(s);
      } else {
        l(i, j) = s / l(j, j);
      }
    }
  }
  // Solve L y = b, then L^T x = y, column by column.
  Matrix x = b;
  for (size_t c = 0; c < b.cols(); ++c) {
    for (size_t i = 0; i < n; ++i) {
      double s = x(i, c);
      for (size_t k = 0; k < i; ++k) s -= l(i, k) * x(k, c);
      x(i, c) = s / l(i, i);
    }
    for (size_t i = n; i-- > 0;) {
      double s = x(i, c);
      for (size_t k = i + 1; k < n; ++k) s -= l(k, i) * x(k, c);
      x(i, c) = s / l(i, i);
    }
  }
  return x;
}

Matrix RidgeRegression(const Matrix& a, const Matrix& b, double lambda) {
  RMI_CHECK_EQ(a.rows(), b.rows());
  // Normal equations via the transpose-aware GEMM — no explicit A^T
  // materialization (A is n x k with n in the thousands for the
  // regression baselines).
  Matrix ata, atb;
  Gemm(1.0, a, /*trans_a=*/true, a, /*trans_b=*/false, 0.0, &ata);
  Gemm(1.0, a, /*trans_a=*/true, b, /*trans_b=*/false, 0.0, &atb);
  return CholeskySolve(ata, atb, lambda);
}

}  // namespace rmi::la
