// Dense row-major matrix — the numeric workhorse for the autodiff engine,
// the factorization/regression baselines, and clustering.
//
// Hand-rolled (no Eigen in the build environment); sized for the paper's
// workloads: latent dims of tens, fingerprint dims of hundreds, record
// counts of thousands.
#ifndef RMI_LA_MATRIX_H_
#define RMI_LA_MATRIX_H_

#include <cstddef>
#include <initializer_list>
#include <string>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/rng.h"

namespace rmi::la {

/// Dense row-major matrix of doubles.
class Matrix {
 public:
  Matrix() = default;

  /// rows x cols, zero-initialized (or `fill`).
  Matrix(size_t rows, size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// Construction from nested initializer lists: Matrix{{1,2},{3,4}}.
  Matrix(std::initializer_list<std::initializer_list<double>> init);

  /// Named constructors. -------------------------------------------------
  static Matrix Zeros(size_t rows, size_t cols) { return Matrix(rows, cols); }
  static Matrix Ones(size_t rows, size_t cols) {
    return Matrix(rows, cols, 1.0);
  }
  static Matrix Identity(size_t n);
  /// Entries iid Uniform(lo, hi).
  static Matrix Random(size_t rows, size_t cols, Rng& rng, double lo = -1.0,
                       double hi = 1.0);
  /// Entries iid N(0, stddev^2).
  static Matrix Gaussian(size_t rows, size_t cols, Rng& rng,
                         double stddev = 1.0);
  /// 1 x n row vector from values.
  static Matrix RowVector(const std::vector<double>& values);
  /// n x 1 column vector from values.
  static Matrix ColVector(const std::vector<double>& values);
  /// Wraps an existing buffer (resized to rows*cols) — lets a pooled
  /// allocator hand storage to a matrix without copying.
  static Matrix Adopt(size_t rows, size_t cols, std::vector<double> buffer) {
    Matrix m;
    m.rows_ = rows;
    m.cols_ = cols;
    m.data_ = std::move(buffer);
    m.data_.resize(rows * cols);
    return m;
  }

  /// Element access. ------------------------------------------------------
  double& operator()(size_t r, size_t c) {
    RMI_CHECK_LT(r, rows_);
    RMI_CHECK_LT(c, cols_);
    return data_[r * cols_ + c];
  }
  double operator()(size_t r, size_t c) const {
    RMI_CHECK_LT(r, rows_);
    RMI_CHECK_LT(c, cols_);
    return data_[r * cols_ + c];
  }

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }
  bool SameShape(const Matrix& o) const {
    return rows_ == o.rows_ && cols_ == o.cols_;
  }

  const std::vector<double>& data() const { return data_; }
  std::vector<double>& data() { return data_; }

  /// Changes dimensions in place, reusing the heap buffer when the new
  /// element count fits the existing capacity. New elements (if any) are
  /// zero; existing elements keep their row-major positions.
  void Reshape(size_t rows, size_t cols) {
    rows_ = rows;
    cols_ = cols;
    data_.resize(rows * cols);
  }

  /// Steals the underlying buffer (the matrix becomes empty) — the inverse
  /// of Adopt, used to recycle storage into a pool.
  std::vector<double> TakeBuffer() {
    rows_ = cols_ = 0;
    return std::move(data_);
  }

  /// Arithmetic (shape-checked). ------------------------------------------
  Matrix operator+(const Matrix& o) const;
  Matrix operator-(const Matrix& o) const;
  /// Elementwise (Hadamard) product.
  Matrix CwiseProduct(const Matrix& o) const;
  Matrix CwiseQuotient(const Matrix& o) const;
  Matrix operator*(double s) const;
  Matrix operator+(double s) const;
  Matrix operator-() const { return *this * -1.0; }

  Matrix& operator+=(const Matrix& o);
  Matrix& operator-=(const Matrix& o);
  Matrix& operator*=(double s);

  /// Matrix product: (r x k) * (k x c).
  Matrix MatMul(const Matrix& o) const;

  Matrix Transpose() const;

  /// Applies `f` to every element. Template functor — the callable is
  /// inlined at the call site (no std::function in the element loop).
  template <typename F>
  Matrix Map(F&& f) const {
    Matrix r = *this;
    for (double& v : r.data_) v = f(v);
    return r;
  }

  /// Adds row vector `row` (1 x cols) to every row (bias broadcast).
  Matrix AddRowBroadcast(const Matrix& row) const;

  /// Rows/columns. ---------------------------------------------------------
  Matrix Row(size_t r) const;
  Matrix Col(size_t c) const;
  void SetRow(size_t r, const Matrix& row);
  /// Horizontal concatenation: [this | o].
  Matrix ConcatCols(const Matrix& o) const;
  /// Vertical concatenation: [this ; o].
  Matrix ConcatRows(const Matrix& o) const;
  /// Columns [c0, c1) as a new matrix.
  Matrix SliceCols(size_t c0, size_t c1) const;
  /// Rows [r0, r1) as a new matrix.
  Matrix SliceRows(size_t r0, size_t r1) const;

  /// Reductions. ------------------------------------------------------------
  double Sum() const;
  double Mean() const;
  double MaxAbs() const;
  double FrobeniusNorm() const;
  /// Squared L2 distance between two same-shape matrices.
  static double SquaredDistance(const Matrix& a, const Matrix& b);

  /// True iff all entries are finite.
  bool AllFinite() const;
  /// Max |a-b| over entries; matrices must be same shape.
  static double MaxAbsDiff(const Matrix& a, const Matrix& b);

  std::string ToString(int prec = 4) const;

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<double> data_;
};

inline Matrix operator*(double s, const Matrix& m) { return m * s; }

/// Solves (A + ridge*I) x = b for symmetric positive definite A via Cholesky.
/// A: n x n, b: n x m. Aborts if the factorization breaks down (A must be
/// SPD after ridge).
Matrix CholeskySolve(const Matrix& a, const Matrix& b, double ridge = 0.0);

/// Ordinary/ridge least squares: argmin_x |A x - b|^2 + lambda |x|^2.
/// A: n x k (n >= 1), b: n x m; returns k x m.
Matrix RidgeRegression(const Matrix& a, const Matrix& b, double lambda);

}  // namespace rmi::la

#endif  // RMI_LA_MATRIX_H_
