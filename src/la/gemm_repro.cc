// Deterministic SIMD GEMM kernels. This file is compiled with
// -ffp-contract=off (CMakeLists.txt): with contraction disabled, each
// multiply and each add rounds separately, so the wide target_clones below
// compute bit-identical sums to the baseline clone — vectorizing across j
// lanes never reassociates a C(i, j) accumulation chain, which stays a
// scalar reduction over k ascending.
#include "la/gemm_repro.h"

#include <algorithm>

namespace rmi::la::internal {

namespace {

// Multi-ISA dispatch (same guard as la/kernels.cc's GemmFastNN): on
// x86-64/GCC the loader resolves the widest compiled clone at runtime;
// elsewhere the plain build is used.
#if defined(__x86_64__) && defined(__GNUC__) && !defined(__clang__)
#define RMI_GEMM_CLONES \
  __attribute__((target_clones("default,arch=haswell,arch=x86-64-v4")))
#else
#define RMI_GEMM_CLONES
#endif

/// B panels are tiled so a k x kJTile strip stays cache resident across the
/// i loop (matches GemmFastNN's tiling; tiling never changes the
/// per-element k order).
constexpr size_t kJTile = 512;

RMI_GEMM_CLONES
void GemmReproNNKernel(double alpha, const double* pa, const double* pb,
                       double* pc, size_t m, size_t k, size_t n) {
  for (size_t jj = 0; jj < n; jj += kJTile) {
    const size_t jend = std::min(jj + kJTile, n);
    for (size_t i = 0; i < m; ++i) {
      const double* arow = pa + i * k;
      double* crow = pc + i * n;
      size_t j = jj;
      // Eight independent accumulator lanes per strip: lane t owns column
      // j + t, so each C entry still sums its k terms in ascending order.
      for (; j + 8 <= jend; j += 8) {
        double acc[8];
        for (int t = 0; t < 8; ++t) acc[t] = crow[j + t];
        const double* bp = pb + j;
        for (size_t kx = 0; kx < k; ++kx) {
          const double aik = alpha * arow[kx];
          if (aik == 0.0) continue;  // same sparsity skip as the scalar loop
          const double* b = bp + kx * n;
          for (int t = 0; t < 8; ++t) acc[t] += aik * b[t];
        }
        for (int t = 0; t < 8; ++t) crow[j + t] = acc[t];
      }
      for (; j < jend; ++j) {
        double acc = crow[j];
        for (size_t kx = 0; kx < k; ++kx) {
          const double aik = alpha * arow[kx];
          if (aik == 0.0) continue;
          acc += aik * pb[kx * n + j];
        }
        crow[j] = acc;
      }
    }
  }
}

RMI_GEMM_CLONES
void GemmReproTNKernel(double alpha, const double* pa, const double* pb,
                       double* pc, size_t m, size_t k, size_t n) {
  // Rank-1 updates: for each shared row kx, C(i, :) += A(kx, i) * B(kx, :).
  // The inner j loop touches independent C entries, so it vectorizes
  // without reassociating anything; per entry the k terms arrive ascending.
  for (size_t kx = 0; kx < k; ++kx) {
    const double* arow = pa + kx * m;
    const double* brow = pb + kx * n;
    for (size_t i = 0; i < m; ++i) {
      const double aki = alpha * arow[i];
      if (aki == 0.0) continue;
      double* crow = pc + i * n;
      for (size_t j = 0; j < n; ++j) crow[j] += aki * brow[j];
    }
  }
}

#undef RMI_GEMM_CLONES

}  // namespace

void GemmReproNN(double alpha, const double* a, const double* b, double* c,
                 size_t m, size_t k, size_t n) {
  GemmReproNNKernel(alpha, a, b, c, m, k, n);
}

void GemmReproTN(double alpha, const double* a, const double* b, double* c,
                 size_t m, size_t k, size_t n) {
  GemmReproTNKernel(alpha, a, b, c, m, k, n);
}

}  // namespace rmi::la::internal
