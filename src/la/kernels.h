// Kernel layer beneath la::Matrix: in-place / output-parameter primitives
// that the autodiff tape, the nn cells, and the factorization/regression
// baselines build on. Everything here writes into caller-provided output
// matrices (reusing their heap buffers) and inlines elementwise functors as
// templates — no std::function, no per-call temporaries.
//
// Convention: `out`/`c` must not alias any input operand unless the kernel
// is explicitly documented as in-place.
#ifndef RMI_LA_KERNELS_H_
#define RMI_LA_KERNELS_H_

#include <cstddef>

#include "common/check.h"
#include "la/matrix.h"

namespace rmi::la {

/// Resizes `out` to rows x cols. The element buffer is reused whenever the
/// new element count fits the existing capacity (std::vector::resize never
/// shrinks capacity), so steady-state callers never touch the heap.
inline void ResizeTo(Matrix* out, size_t rows, size_t cols) {
  out->Reshape(rows, cols);
}

/// General matrix multiply: C = alpha * op(A) * op(B) + beta * C, where
/// op(X) is X or X^T per the transpose flag. With beta == 0, C is fully
/// overwritten (and resized to the product shape); with beta != 0, C must
/// already have the product shape. C must not alias A or B.
///
/// Reproducible *and* SIMD: the NN and TN paths (the training/re-fit hot
/// paths — every autodiff forward matmul and its Gemm(beta=1) adjoint) run
/// through the runtime-dispatched deterministic kernels in la/gemm_repro.h
/// — AVX2/AVX-512 target_clones compiled with fp-contract off, so every C
/// entry sums its k terms in ascending order with one rounding per op,
/// bit-identical across ISAs and to the scalar reference loop.
void Gemm(double alpha, const Matrix& a, bool trans_a, const Matrix& b,
          bool trans_b, double beta, Matrix* c);

/// C = A * B (the Gemm(1, A, false, B, false, 0, C) product) with *relaxed
/// rounding*: per-lane register accumulators, FMA contraction, and the
/// widest vector ISA available at runtime (GCC target_clones on x86-64).
/// Results can differ from Gemm by ~1 ulp per k-term, so callers must
/// tolerate rounding — it exists for ranking workloads (the batched-KNN
/// cross term) where a downstream exact rescore absorbs it. Everything
/// that needs reproducible-to-the-bit accumulation keeps using Gemm.
void GemmFastNN(const Matrix& a, const Matrix& b, Matrix* c);

/// y += alpha * x (same shape).
void Axpy(double alpha, const Matrix& x, Matrix* y);

/// x *= alpha.
void ScaleInPlace(double alpha, Matrix* x);

/// Every entry of x set to `value` (shape preserved).
void Fill(Matrix* x, double value);

/// out = a with `row` (1 x cols) added to every row of a (bias broadcast).
void AddRowBroadcastInto(const Matrix& a, const Matrix& row, Matrix* out);

/// row(0, j) += sum_i a(i, j) — the broadcast's adjoint.
void AccumulateColSums(const Matrix& a, Matrix* row);

/// Every row of a += row (1 x cols), in place.
inline void AddRowBroadcastInPlace(Matrix* a, const Matrix& row) {
  RMI_CHECK_EQ(row.rows(), 1u);
  RMI_CHECK_EQ(row.cols(), a->cols());
  const double* pr = row.data().data();
  double* pa = a->data().data();
  const size_t cols = a->cols();
  for (size_t i = 0; i < a->rows(); ++i) {
    double* arow = pa + i * cols;
    for (size_t j = 0; j < cols; ++j) arow[j] += pr[j];
  }
}

/// Fused missing-data combine (paper Eqs. 3/7):
///   out = m ⊙ obs + (1 - m) ⊙ pred.
void MaskCombineInto(const Matrix& m, const Matrix& obs, const Matrix& pred,
                     Matrix* out);

/// out = [a | b] (horizontal concatenation; equal row counts).
void ConcatColsInto(const Matrix& a, const Matrix& b, Matrix* out);

/// out = columns [c0, c1) of x.
void SliceColsInto(const Matrix& x, size_t c0, size_t c1, Matrix* out);

/// Squared L2 distance between row `ra` of a and row `rb` of b
/// (equal column counts) — no row extraction, no temporaries.
double RowSquaredDistance(const Matrix& a, size_t ra, const Matrix& b,
                          size_t rb);

/// out(i, 0) = ||row i of a||^2 — the per-row norms of the batched
/// distance expansion ||q - f||^2 = ||q||^2 + ||f||^2 - 2 q.f.
void RowSquaredNorms(const Matrix& a, Matrix* out);

/// Squared L2 distance between `query` (length d; NaN entries are skipped)
/// and the reference row at `ref_row` — distance over the query's observed
/// dimensions only. The single scoring loop shared by the estimators'
/// scalar path, the batch rescore, the serving spatial index, and the
/// zero-copy snapshot view (which rescoring against mapped raw storage):
/// exactness claims across those layers rest on them summing identically.
double QuerySquaredDistanceRow(const double* query, const double* ref_row,
                               size_t d);

/// Matrix-row convenience over QuerySquaredDistanceRow.
double QuerySquaredDistance(const double* query, const Matrix& refs,
                            size_t row);

/// out(i) = f(x(i)) — the functor is inlined at the call site.
template <typename F>
void CwiseUnaryInto(const Matrix& x, Matrix* out, F&& f) {
  ResizeTo(out, x.rows(), x.cols());
  const double* src = x.data().data();
  double* dst = out->data().data();
  const size_t n = x.size();
  for (size_t i = 0; i < n; ++i) dst[i] = f(src[i]);
}

/// x(i) = f(x(i)), in place.
template <typename F>
void CwiseUnaryInPlace(Matrix* x, F&& f) {
  double* v = x->data().data();
  const size_t n = x->size();
  for (size_t i = 0; i < n; ++i) v[i] = f(v[i]);
}

/// out(i) = f(a(i), b(i)) (same shapes).
template <typename F>
void CwiseBinaryInto(const Matrix& a, const Matrix& b, Matrix* out, F&& f) {
  RMI_CHECK(a.SameShape(b));
  ResizeTo(out, a.rows(), a.cols());
  const double* pa = a.data().data();
  const double* pb = b.data().data();
  double* dst = out->data().data();
  const size_t n = a.size();
  for (size_t i = 0; i < n; ++i) dst[i] = f(pa[i], pb[i]);
}

/// out(i) += f(a(i), b(i)) — fused compute-and-accumulate for backward
/// closures (out must already have a's shape).
template <typename F>
void CwiseBinaryAccumulate(const Matrix& a, const Matrix& b, Matrix* out,
                           F&& f) {
  RMI_CHECK(a.SameShape(b));
  RMI_CHECK(a.SameShape(*out));
  const double* pa = a.data().data();
  const double* pb = b.data().data();
  double* dst = out->data().data();
  const size_t n = a.size();
  for (size_t i = 0; i < n; ++i) dst[i] += f(pa[i], pb[i]);
}

}  // namespace rmi::la

#endif  // RMI_LA_KERNELS_H_
