#include "la/kernels.h"

#include <algorithm>
#include <cmath>

#include "la/gemm_repro.h"

namespace rmi::la {

namespace {

/// Scales C by beta (0 means overwrite semantics: just zero).
void ApplyBeta(double beta, Matrix* c) {
  if (beta == 1.0) return;
  if (beta == 0.0) {
    Fill(c, 0.0);
  } else {
    ScaleInPlace(beta, c);
  }
}

/// C += alpha * A * B — the deterministic runtime-dispatched SIMD kernel
/// (la/gemm_repro.cc): per C entry the k terms accumulate ascending, so
/// results are bit-identical to the naive ikj loop on every ISA clone.
void GemmNN(double alpha, const Matrix& a, const Matrix& b, Matrix* c) {
  internal::GemmReproNN(alpha, a.data().data(), b.data().data(),
                        c->data().data(), a.rows(), a.cols(), b.cols());
}

/// C += alpha * A^T * B — rank-1 style updates: for each shared row k,
/// C(i, :) += A(k, i) * B(k, :). Per-entry accumulation runs over k
/// ascending (matches transposing A first and streaming ikj); dispatched
/// like GemmNN.
void GemmTN(double alpha, const Matrix& a, const Matrix& b, Matrix* c) {
  internal::GemmReproTN(alpha, a.data().data(), b.data().data(),
                        c->data().data(), a.cols(), a.rows(), b.cols());
}

/// C += alpha * A * B^T — dot products of contiguous rows.
void GemmNT(double alpha, const Matrix& a, const Matrix& b, Matrix* c) {
  const size_t m = a.rows(), k = a.cols(), n = b.rows();
  const double* pa = a.data().data();
  const double* pb = b.data().data();
  double* pc = c->data().data();
  for (size_t i = 0; i < m; ++i) {
    const double* arow = pa + i * k;
    double* crow = pc + i * n;
    for (size_t j = 0; j < n; ++j) {
      const double* brow = pb + j * k;
      double dot = 0.0;
      for (size_t kx = 0; kx < k; ++kx) dot += arow[kx] * brow[kx];
      crow[j] += alpha * dot;
    }
  }
}

// Multi-ISA dispatch for the relaxed-rounding kernel: on x86-64/GCC the
// loader picks the widest compiled clone (AVX2+FMA, AVX-512) at runtime;
// elsewhere the plain build is used. FP contraction is *allowed* here —
// this kernel is only for callers that tolerate ~1 ulp/term drift.
#if defined(__x86_64__) && defined(__GNUC__) && !defined(__clang__)
__attribute__((target_clones("default,arch=haswell,arch=x86-64-v4")))
#endif
/// C = A * B, j strip-mined by 8: eight independent accumulator lanes per
/// strip (vectorizable without reassociation), k innermost, C written once
/// — no read-modify-write traffic. B panels are tiled so they stay cache
/// resident across the i loop.
void GemmFastNNKernel(const double* pa, const double* pb, double* pc,
                      size_t m, size_t k, size_t n) {
  constexpr size_t kJTile = 512;
  for (size_t jj = 0; jj < n; jj += kJTile) {
    const size_t jend = std::min(jj + kJTile, n);
    for (size_t i = 0; i < m; ++i) {
      const double* arow = pa + i * k;
      double* crow = pc + i * n;
      size_t j = jj;
      for (; j + 8 <= jend; j += 8) {
        double acc[8] = {0, 0, 0, 0, 0, 0, 0, 0};
        const double* bp = pb + j;
        for (size_t kx = 0; kx < k; ++kx) {
          const double a = arow[kx];
          const double* b = bp + kx * n;
          for (int t = 0; t < 8; ++t) acc[t] += a * b[t];
        }
        for (int t = 0; t < 8; ++t) crow[j + t] = acc[t];
      }
      for (; j < jend; ++j) {
        double acc = 0.0;
        for (size_t kx = 0; kx < k; ++kx) acc += arow[kx] * pb[kx * n + j];
        crow[j] = acc;
      }
    }
  }
}

/// C += alpha * A^T * B^T.
void GemmTT(double alpha, const Matrix& a, const Matrix& b, Matrix* c) {
  const size_t m = a.cols(), k = a.rows(), n = b.rows();
  const double* pa = a.data().data();
  const double* pb = b.data().data();
  double* pc = c->data().data();
  for (size_t i = 0; i < m; ++i) {
    double* crow = pc + i * n;
    for (size_t j = 0; j < n; ++j) {
      const double* brow = pb + j * k;
      double dot = 0.0;
      for (size_t kx = 0; kx < k; ++kx) dot += pa[kx * m + i] * brow[kx];
      crow[j] += alpha * dot;
    }
  }
}

}  // namespace

void Gemm(double alpha, const Matrix& a, bool trans_a, const Matrix& b,
          bool trans_b, double beta, Matrix* c) {
  const size_t m = trans_a ? a.cols() : a.rows();
  const size_t ka = trans_a ? a.rows() : a.cols();
  const size_t kb = trans_b ? b.cols() : b.rows();
  const size_t n = trans_b ? b.rows() : b.cols();
  RMI_CHECK_EQ(ka, kb);
  if (beta == 0.0) {
    ResizeTo(c, m, n);
  } else {
    RMI_CHECK_EQ(c->rows(), m);
    RMI_CHECK_EQ(c->cols(), n);
  }
  ApplyBeta(beta, c);
  if (alpha == 0.0 || ka == 0) return;
  if (!trans_a && !trans_b) {
    GemmNN(alpha, a, b, c);
  } else if (trans_a && !trans_b) {
    GemmTN(alpha, a, b, c);
  } else if (!trans_a && trans_b) {
    GemmNT(alpha, a, b, c);
  } else {
    GemmTT(alpha, a, b, c);
  }
}

void Axpy(double alpha, const Matrix& x, Matrix* y) {
  RMI_CHECK(x.SameShape(*y));
  const double* px = x.data().data();
  double* py = y->data().data();
  const size_t n = x.size();
  for (size_t i = 0; i < n; ++i) py[i] += alpha * px[i];
}

void ScaleInPlace(double alpha, Matrix* x) {
  double* v = x->data().data();
  const size_t n = x->size();
  for (size_t i = 0; i < n; ++i) v[i] *= alpha;
}

void Fill(Matrix* x, double value) {
  std::fill(x->data().begin(), x->data().end(), value);
}

void AddRowBroadcastInto(const Matrix& a, const Matrix& row, Matrix* out) {
  RMI_CHECK_EQ(row.rows(), 1u);
  RMI_CHECK_EQ(row.cols(), a.cols());
  ResizeTo(out, a.rows(), a.cols());
  const double* pa = a.data().data();
  const double* pr = row.data().data();
  double* po = out->data().data();
  const size_t cols = a.cols();
  for (size_t i = 0; i < a.rows(); ++i) {
    const double* arow = pa + i * cols;
    double* orow = po + i * cols;
    for (size_t j = 0; j < cols; ++j) orow[j] = arow[j] + pr[j];
  }
}

void AccumulateColSums(const Matrix& a, Matrix* row) {
  RMI_CHECK_EQ(row->rows(), 1u);
  RMI_CHECK_EQ(row->cols(), a.cols());
  const double* pa = a.data().data();
  double* pr = row->data().data();
  const size_t cols = a.cols();
  for (size_t i = 0; i < a.rows(); ++i) {
    const double* arow = pa + i * cols;
    for (size_t j = 0; j < cols; ++j) pr[j] += arow[j];
  }
}

void MaskCombineInto(const Matrix& m, const Matrix& obs, const Matrix& pred,
                     Matrix* out) {
  RMI_CHECK(m.SameShape(obs));
  RMI_CHECK(m.SameShape(pred));
  ResizeTo(out, m.rows(), m.cols());
  const double* pm = m.data().data();
  const double* po = obs.data().data();
  const double* pp = pred.data().data();
  double* dst = out->data().data();
  const size_t n = m.size();
  for (size_t i = 0; i < n; ++i) {
    dst[i] = pm[i] * po[i] + (1.0 - pm[i]) * pp[i];
  }
}

void ConcatColsInto(const Matrix& a, const Matrix& b, Matrix* out) {
  RMI_CHECK_EQ(a.rows(), b.rows());
  ResizeTo(out, a.rows(), a.cols() + b.cols());
  const size_t ca = a.cols(), cb = b.cols();
  for (size_t i = 0; i < a.rows(); ++i) {
    std::copy_n(&a.data()[i * ca], ca, &out->data()[i * (ca + cb)]);
    std::copy_n(&b.data()[i * cb], cb, &out->data()[i * (ca + cb) + ca]);
  }
}

void SliceColsInto(const Matrix& x, size_t c0, size_t c1, Matrix* out) {
  RMI_CHECK_LE(c0, c1);
  RMI_CHECK_LE(c1, x.cols());
  ResizeTo(out, x.rows(), c1 - c0);
  const size_t w = c1 - c0;
  for (size_t i = 0; i < x.rows(); ++i) {
    std::copy_n(&x.data()[i * x.cols() + c0], w, &out->data()[i * w]);
  }
}

double RowSquaredDistance(const Matrix& a, size_t ra, const Matrix& b,
                          size_t rb) {
  RMI_CHECK_EQ(a.cols(), b.cols());
  RMI_CHECK_LT(ra, a.rows());
  RMI_CHECK_LT(rb, b.rows());
  const double* pa = a.data().data() + ra * a.cols();
  const double* pb = b.data().data() + rb * b.cols();
  double s = 0.0;
  for (size_t j = 0; j < a.cols(); ++j) {
    const double d = pa[j] - pb[j];
    s += d * d;
  }
  return s;
}

void GemmFastNN(const Matrix& a, const Matrix& b, Matrix* c) {
  RMI_CHECK_EQ(a.cols(), b.rows());
  ResizeTo(c, a.rows(), b.cols());
  if (c->size() == 0) return;
  GemmFastNNKernel(a.data().data(), b.data().data(), c->data().data(),
                   a.rows(), a.cols(), b.cols());
}

double QuerySquaredDistanceRow(const double* query, const double* ref_row,
                               size_t d) {
  double s = 0.0;
  for (size_t j = 0; j < d; ++j) {
    if (std::isnan(query[j])) continue;
    const double dd = query[j] - ref_row[j];
    s += dd * dd;
  }
  return s;
}

double QuerySquaredDistance(const double* query, const Matrix& refs,
                            size_t row) {
  RMI_CHECK_LT(row, refs.rows());
  return QuerySquaredDistanceRow(query, refs.data().data() + row * refs.cols(),
                                 refs.cols());
}

void RowSquaredNorms(const Matrix& a, Matrix* out) {
  ResizeTo(out, a.rows(), 1);
  const double* pa = a.data().data();
  double* po = out->data().data();
  const size_t cols = a.cols();
  for (size_t i = 0; i < a.rows(); ++i) {
    const double* row = pa + i * cols;
    double s = 0.0;
    for (size_t j = 0; j < cols; ++j) s += row[j] * row[j];
    po[i] = s;
  }
}

}  // namespace rmi::la
