// Int8 quantization substrate for the ranking hot path.
//
// RSSI fingerprints are dBm values in [-100, 0] — inherently int8-scale
// data that the float ranking path streams at 8 bytes per cell. This layer
// freezes a reference matrix into an int8 copy (per-AP affine scale /
// zero-point, SoA layout padded for vector lanes) plus the integer side
// tables the quantized KNN ranking needs, and provides the int8xint8→int32
// kernels that rank candidates against it. The quantized path only *ranks*:
// callers re-score candidates against the float master matrix, and the
// per-query reconstruction-error bound returned by QuantizeQueryRow lets
// them widen the candidate band so quantization can never evict a true
// neighbor (the same contract GemmFastNN honors for rounding drift).
#ifndef RMI_LA_QUANT_H_
#define RMI_LA_QUANT_H_

#include <cstdint>
#include <vector>

#include "la/matrix.h"

namespace rmi::la {

/// Reference rows padded to a multiple of this many entries so the int
/// kernels' vector lanes never need a tail loop on the reference axis.
/// 64 int32 accumulator lanes (four AVX-512 registers) measure ~3x faster
/// than 16 on the serving shapes — wide enough to hide the int8->int32
/// widening latency, small enough to stay inside the register file.
inline constexpr size_t kQuantLanePad = 64;

/// Floor on the per-AP quantization step (dBm per int8 step). APs whose
/// observed range is narrower than ~63 dB quantize with this step instead:
/// a coarser step only widens the (exactly computed) error band, while a
/// near-zero step would blow up the candidate threshold, which divides by
/// the smallest scale.
inline constexpr double kQuantMinScale = 0.25;

/// Non-owning view of a quantized reference set — the *layout contract*
/// shared by the in-memory QuantizedRefs below and the mmap-ed snapshot
/// sections in src/store/ (serving ranks directly from a mapped file
/// through one of these, so the integer kernels and the on-disk format
/// must agree on every stride):
///   * `values`  — cols x padded int8, SoA by AP: entry [j * padded + r]
///     is reference row r of AP j; pad cells are 0.
///   * `squares` — values^2 as int16, same layout.
///   * `norms`   — rows int32, per reference row sum_j values^2.
///   * `scale` / `zero_point` — cols doubles, the per-AP affine params.
/// `padded` is rows rounded up to a kQuantLanePad multiple. The pointed-to
/// storage must outlive the span (a QuantizedRefs, or a mapped snapshot
/// held open by its epoch retirement).
struct QuantizedRefsSpan {
  size_t rows = 0;
  size_t cols = 0;
  size_t padded = 0;

  const int8_t* values = nullptr;
  const int16_t* squares = nullptr;
  const int32_t* norms = nullptr;
  const double* scale = nullptr;
  const double* zero_point = nullptr;
  double min_scale = 0.0;
  double max_scale = 0.0;

  bool empty() const { return rows == 0; }
};

/// An R x D float reference matrix frozen into int8: per-AP (per-column)
/// affine parameters, values stored transposed and padded (SoA by AP: for
/// AP j, entry `values[j * padded + r]` is reference row r), the squared
/// values as int16 (for masked-norm accumulation under partial queries),
/// and per-row integer squared norms. The float master matrix is *not*
/// retained here — rescoring exactness is the caller's contract.
struct QuantizedRefs {
  size_t rows = 0;    ///< R references
  size_t cols = 0;    ///< D APs
  size_t padded = 0;  ///< rows rounded up to a kQuantLanePad multiple

  std::vector<int8_t> values;    ///< cols x padded, SoA by AP; pad cells 0
  std::vector<int16_t> squares;  ///< values^2, same layout
  std::vector<int32_t> norms;    ///< per reference row: sum_j values^2

  std::vector<double> scale;       ///< per AP, dBm per int8 step
  std::vector<double> zero_point;  ///< per AP, dBm at int8 value 0
  double min_scale = 0.0;
  double max_scale = 0.0;

  bool empty() const { return rows == 0; }

  /// The layout-contract view over this object's storage (valid while the
  /// QuantizedRefs lives and is not re-assigned).
  QuantizedRefsSpan span() const {
    QuantizedRefsSpan s;
    s.rows = rows;
    s.cols = cols;
    s.padded = padded;
    s.values = values.data();
    s.squares = squares.data();
    s.norms = norms.data();
    s.scale = scale.data();
    s.zero_point = zero_point.data();
    s.min_scale = min_scale;
    s.max_scale = max_scale;
    return s;
  }
};

/// Freezes `refs` (complete rows — kNull entries are illegal here; the
/// imputers' output contract) into a QuantizedRefs. Per AP: the zero-point
/// centers the column's value range and the scale maps the range onto
/// [-127, 127], so no reference cell ever clamps and every cell's rounding
/// error is at most scale/2.
QuantizedRefs QuantizeRefs(const Matrix& refs);

/// Quantizes one online fingerprint (length refs.cols) with the reference
/// side's per-AP parameters. kNull entries yield value 0 with mask 0 (they
/// contribute nothing to any integer term); observed entries are rounded
/// and clamped to [-127, 127]. Writes D int8 values and D 0/1 mask bytes.
///
/// Returns the integer squared norm of the quantized observed entries, and
/// stores in `*err_bound` the analytic reconstruction bound
///
///     E = sqrt( sum_observed (|q_j - dequant(q_j)| + scale_j / 2)^2 )
///
/// — per observed dimension, the query's *exact* residual (clamping
/// included) plus the reference side's worst-case rounding. For any
/// reference row r with integer squared distance I_r to this query,
///
///     min_scale * sqrt(I_r) - E  <=  ||q - f_r||_observed  <=
///     max_scale * sqrt(I_r) + E,
///
/// which is the bound the estimators use to widen their candidate band.
int32_t QuantizeQueryRow(const QuantizedRefsSpan& refs, const double* query,
                         int8_t* values, int8_t* mask, double* err_bound);
inline int32_t QuantizeQueryRow(const QuantizedRefs& refs, const double* query,
                                int8_t* values, int8_t* mask,
                                double* err_bound) {
  return QuantizeQueryRow(refs.span(), query, values, mask, err_bound);
}

/// C = A * B with int8 operands and int32 accumulation — the quantized
/// ranking cross term. A is m x k row-major int8 (quantized queries), B is
/// k x n row-major int8 (QuantizedRefs::values: k = D APs, n = padded
/// reference count), C is m x n int32. Integer arithmetic is exact, so
/// unlike GemmFastNN there is no rounding caveat — only the quantization
/// itself loses information. Runtime AVX2/AVX-512 dispatch via
/// target_clones, portable scalar fallback elsewhere. Accumulators are
/// int32: callers must keep k * 127^2 within int32 (checked by
/// QuantizeRefs for the serving shapes).
void GemmQuantNN(const int8_t* a, const int8_t* b, int32_t* c, size_t m,
                 size_t k, size_t n);

/// C(i, j) = sum_k mask(i, k) * squares(k, j) — the masked reference-norm
/// term of the quantized distance expansion for partial fingerprints.
/// `mask` is m x k int8 0/1, `squares` is k x n int16
/// (QuantizedRefs::squares), C is m x n int32. Same dispatch scheme as
/// GemmQuantNN.
void MaskedQuantRowNorms(const int8_t* mask, const int16_t* squares,
                         int32_t* c, size_t m, size_t k, size_t n);

}  // namespace rmi::la

#endif  // RMI_LA_QUANT_H_
