#include "la/quant.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/missing.h"

namespace rmi::la {

namespace {

/// Largest AP dimension whose worst-case integer terms (d * 127^2 for
/// norms and |cross|) stay far inside int32.
constexpr size_t kMaxQuantDims = 1u << 15;

}  // namespace

QuantizedRefs QuantizeRefs(const Matrix& refs) {
  QuantizedRefs q;
  q.rows = refs.rows();
  q.cols = refs.cols();
  q.padded = (q.rows + kQuantLanePad - 1) / kQuantLanePad * kQuantLanePad;
  RMI_CHECK_LT(q.cols, kMaxQuantDims);  // int32 accumulators stay exact
  if (q.rows == 0 || q.cols == 0) return q;

  q.values.assign(q.cols * q.padded, 0);
  q.squares.assign(q.cols * q.padded, 0);
  q.norms.assign(q.rows, 0);
  q.scale.resize(q.cols);
  q.zero_point.resize(q.cols);

  const double* p = refs.data().data();
  for (size_t j = 0; j < q.cols; ++j) {
    double lo = 0.0, hi = 0.0;
    for (size_t r = 0; r < q.rows; ++r) {
      const double v = p[r * q.cols + j];
      RMI_CHECK(!IsNull(v));  // reference rows are complete by contract
      lo = r == 0 ? v : std::min(lo, v);
      hi = r == 0 ? v : std::max(hi, v);
    }
    // zp centers the range; s maps it onto [-127, 127] so no reference
    // cell clamps and per-cell rounding error is <= s / 2.
    const double zp = 0.5 * (lo + hi);
    const double s = std::max((hi - lo) / 254.0, kQuantMinScale);
    q.zero_point[j] = zp;
    q.scale[j] = s;
    int8_t* col = q.values.data() + j * q.padded;
    int16_t* sq = q.squares.data() + j * q.padded;
    for (size_t r = 0; r < q.rows; ++r) {
      const double v = p[r * q.cols + j];
      const long iv = std::lround((v - zp) / s);
      // |iv| <= 127 by construction of s; the clamp only guards float
      // rounding at the exact range endpoints.
      const int8_t b = static_cast<int8_t>(std::clamp(iv, -127l, 127l));
      col[r] = b;
      const int32_t bb = static_cast<int32_t>(b) * static_cast<int32_t>(b);
      sq[r] = static_cast<int16_t>(bb);
      q.norms[r] += bb;
    }
  }
  q.min_scale = *std::min_element(q.scale.begin(), q.scale.end());
  q.max_scale = *std::max_element(q.scale.begin(), q.scale.end());
  return q;
}

int32_t QuantizeQueryRow(const QuantizedRefsSpan& refs, const double* query,
                         int8_t* values, int8_t* mask, double* err_bound) {
  RMI_CHECK(!refs.empty());
  int32_t norm = 0;
  double err_sq = 0.0;
  for (size_t j = 0; j < refs.cols; ++j) {
    const double v = query[j];
    if (IsNull(v)) {
      values[j] = 0;
      mask[j] = 0;
      continue;
    }
    const double s = refs.scale[j];
    const double zp = refs.zero_point[j];
    const long iv =
        std::clamp(std::lround((v - zp) / s), -127l, 127l);
    const int8_t b = static_cast<int8_t>(iv);
    values[j] = b;
    mask[j] = 1;
    norm += static_cast<int32_t>(b) * static_cast<int32_t>(b);
    // Exact query residual (clamping included) + the reference side's
    // worst-case rounding of s/2.
    const double resid = std::fabs(v - (zp + s * static_cast<double>(iv)));
    const double term = resid + 0.5 * s;
    err_sq += term * term;
  }
  *err_bound = std::sqrt(err_sq);
  return norm;
}

namespace {

// Multi-ISA dispatch mirrors GemmFastNN: the loader picks the widest
// compiled clone at runtime on x86-64/GCC; elsewhere the portable scalar
// build runs. Integer arithmetic, so every clone computes the same bits.
#if defined(__x86_64__) && defined(__GNUC__) && !defined(__clang__)
__attribute__((target_clones("default,arch=haswell,arch=x86-64-v4")))
#endif
/// C = A * B, j strip-mined by kQuantLanePad = 64 int32 accumulator lanes
/// (four AVX-512 registers), k innermost, C written once. B panels are
/// tiled so the int8 rows stay L1-resident across the i loop. Narrower
/// strips leave the widening int8->int32 loads latency-bound: 64 lanes
/// measured ~3x faster than 16 on the 64 x 96 x 2000 serving shape.
void GemmQuantNNKernel(const int8_t* pa, const int8_t* pb, int32_t* pc,
                       size_t m, size_t k, size_t n) {
  constexpr size_t kJTile = 2048;  // int8 B panel bytes per k row
  for (size_t jj = 0; jj < n; jj += kJTile) {
    const size_t jend = std::min(jj + kJTile, n);
    for (size_t i = 0; i < m; ++i) {
      const int8_t* arow = pa + i * k;
      int32_t* crow = pc + i * n;
      size_t j = jj;
      for (; j + 64 <= jend; j += 64) {
        int32_t acc[64] = {0};
        const int8_t* bp = pb + j;
        for (size_t kx = 0; kx < k; ++kx) {
          const int32_t a = arow[kx];
          const int8_t* b = bp + kx * n;
          for (int t = 0; t < 64; ++t) {
            acc[t] += a * static_cast<int32_t>(b[t]);
          }
        }
        for (int t = 0; t < 64; ++t) crow[j + t] = acc[t];
      }
      for (; j < jend; ++j) {
        int32_t acc = 0;
        for (size_t kx = 0; kx < k; ++kx) {
          acc += static_cast<int32_t>(arow[kx]) *
                 static_cast<int32_t>(pb[kx * n + j]);
        }
        crow[j] = acc;
      }
    }
  }
}

#if defined(__x86_64__) && defined(__GNUC__) && !defined(__clang__)
__attribute__((target_clones("default,arch=haswell,arch=x86-64-v4")))
#endif
/// C(i, j) = sum_k mask(i, k) * squares(k, j) — same loop shape as the
/// cross-term kernel with an int16 B operand.
void MaskedQuantRowNormsKernel(const int8_t* pm, const int16_t* psq,
                               int32_t* pc, size_t m, size_t k, size_t n) {
  constexpr size_t kJTile = 1024;  // int16 B panel entries per k row
  for (size_t jj = 0; jj < n; jj += kJTile) {
    const size_t jend = std::min(jj + kJTile, n);
    for (size_t i = 0; i < m; ++i) {
      const int8_t* mrow = pm + i * k;
      int32_t* crow = pc + i * n;
      size_t j = jj;
      for (; j + 64 <= jend; j += 64) {
        int32_t acc[64] = {0};
        const int16_t* bp = psq + j;
        for (size_t kx = 0; kx < k; ++kx) {
          if (mrow[kx] == 0) continue;  // typical rows observe most APs
          const int16_t* b = bp + kx * n;
          for (int t = 0; t < 64; ++t) acc[t] += static_cast<int32_t>(b[t]);
        }
        for (int t = 0; t < 64; ++t) crow[j + t] = acc[t];
      }
      for (; j < jend; ++j) {
        int32_t acc = 0;
        for (size_t kx = 0; kx < k; ++kx) {
          if (mrow[kx] == 0) continue;
          acc += static_cast<int32_t>(psq[kx * n + j]);
        }
        crow[j] = acc;
      }
    }
  }
}

}  // namespace

void GemmQuantNN(const int8_t* a, const int8_t* b, int32_t* c, size_t m,
                 size_t k, size_t n) {
  if (m == 0 || n == 0) return;
  GemmQuantNNKernel(a, b, c, m, k, n);
}

void MaskedQuantRowNorms(const int8_t* mask, const int16_t* squares,
                         int32_t* c, size_t m, size_t k, size_t n) {
  if (m == 0 || n == 0) return;
  MaskedQuantRowNormsKernel(mask, squares, c, m, k, n);
}

}  // namespace rmi::la
