// Runtime-dispatched deterministic GEMM kernels — the SIMD backbone of the
// *reproducible* float path (la::Gemm), used by autodiff training and the
// live-rebuild re-fit.
//
// Unlike GemmFastNN/GemmQuantNN (relaxed rounding, FMA allowed), these
// kernels promise the exact summation order of the naive streaming loops:
// every C(i, j) accumulates alpha*A(i,k)*B(k,j) terms with k ascending, one
// rounding per multiply and one per add. The translation unit is compiled
// with -ffp-contract=off (see CMakeLists.txt), so the AVX2/AVX-512
// target_clones produce bit-identical results to the baseline clone and to
// the scalar reference loop — seed-determinism tests hold on any ISA the
// loader picks.
#ifndef RMI_LA_GEMM_REPRO_H_
#define RMI_LA_GEMM_REPRO_H_

#include <cstddef>

namespace rmi::la::internal {

/// C += alpha * A * B over raw row-major buffers (A: m x k, B: k x n,
/// C: m x n). Per-element accumulation runs over k ascending — bit-identical
/// to the scalar ikj loop on every ISA clone.
void GemmReproNN(double alpha, const double* a, const double* b, double* c,
                 size_t m, size_t k, size_t n);

/// C += alpha * A^T * B (A: k x m, B: k x n, C: m x n) as rank-1 updates;
/// per-element accumulation over k ascending, same determinism contract.
void GemmReproTN(double alpha, const double* a, const double* b, double* c,
                 size_t m, size_t k, size_t n);

}  // namespace rmi::la::internal

#endif  // RMI_LA_GEMM_REPRO_H_
