// Fig. 13: fraction threshold eta vs APE for the three clustering
// differentiators plus the MAR-only / MNAR-only references (B = BiSIM,
// C = WKNN). Also prints the Section V-B "distribution of differentiated
// results": the MAR share of missing RSSIs under TopoAC's default setting.
//
// Paper shape: eta = 0 coincides with MAR-only; eta = 0.1 is best;
// larger eta degrades (ElbowKM fastest); TopoAC best overall.
#include "bench/bench_common.h"
#include "eval/pipeline.h"

namespace rmi {
namespace {

void Run() {
  const auto env = bench::EnvWithDefaults(/*scale=*/0.10, /*epochs=*/10);
  bench::Banner("Fig. 13", "threshold eta vs APE (B=BiSIM, C=WKNN)", env);
  const std::vector<double> etas = {0.0, 0.1, 0.2, 0.3};
  const std::vector<std::string> diffs = {"TopoAC", "DasaKM", "ElbowKM"};
  for (const char* venue : {"Kaide", "Wanda"}) {
    const auto ds = bench::MakeDataset(venue, env.scale);
    Table table({"eta", "TopoAC", "DasaKM", "ElbowKM", "MAR-only",
                 "MNAR-only"});
    // The baselines are eta-independent; evaluate once.
    std::vector<std::string> baseline_ape;
    for (const char* base : {"MAR-only", "MNAR-only"}) {
      auto diff = eval::MakeDifferentiator(base, &ds.venue);
      auto bisim = eval::MakeImputer("BiSIM", ds.venue, env);
      auto wknn = eval::MakeEstimator("WKNN");
      baseline_ape.push_back(
          Table::Num(bench::MeanApe(ds.map, *diff, *bisim, *wknn, 78)));
    }
    double topo_mar_share = 0.0;
    for (double eta : etas) {
      std::vector<std::string> row = {Table::Num(eta, 1)};
      for (const std::string& diff_name : diffs) {
        auto diff = eval::MakeDifferentiator(diff_name, &ds.venue, eta);
        auto bisim = eval::MakeImputer("BiSIM", ds.venue, env);
        auto wknn = eval::MakeEstimator("WKNN");
        eval::PipelineOptions opt;
        opt.seed = 78;
        opt.test_fraction = bench::kBenchTestFraction;
        const auto res = eval::RunPipeline(ds.map, *diff, *bisim, *wknn, opt);
        row.push_back(Table::Num(res.ape));
        if (diff_name == "TopoAC" && eta == 0.1) {
          topo_mar_share = res.mar_share;
        }
      }
      row.push_back(baseline_ape[0]);
      row.push_back(baseline_ape[1]);
      table.AddRow(std::move(row));
    }
    std::printf("-- %s (APE, meters) --\n", venue);
    table.Print();
    table.MaybeWriteCsv(std::string("fig13_") + venue);
    std::printf(
        "TopoAC default (eta=0.1): MARs account for %.2f%% of missing "
        "RSSIs (paper estimate: 10.12%% Kaide / 7.06%% Wanda)\n\n",
        100.0 * topo_mar_share);
  }
}

}  // namespace
}  // namespace rmi

int main() {
  rmi::Run();
  return 0;
}
