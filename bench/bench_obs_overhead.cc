// Observability overhead A/B: the identical serving workload with the
// obs layer fully disabled vs fully enabled (sharded metrics + 1-in-64
// request trace sampling), alternated over several rounds so machine
// drift hits both arms equally. The acceptance bar is
// enabled_qps / disabled_qps >= 0.98 — the instrumentation must cost
// no more than 2% of throughput.
//
//   ./bench_obs_overhead            # full sizes, console table
//   ./bench_obs_overhead --smoke    # CI sizes + BENCH_obs.json
//   ./bench_obs_overhead --json=out.json --scrape=OBS_scrape.txt
//
// Two workloads, each A/B'd:
//   batch  — the raw EstimateBatch ranking loop (exercises the
//            estimator-stage timers, the tightest loop we instrument);
//   server — LocalizationServer under concurrent clients (exercises the
//            queue-depth gauge, batch/stage histograms, and the trace
//            sampler on the Submit path).
// Each arm's qps is the best of the rounds (best-of cancels scheduler
// noise far better than the mean on shared runners); the headline
// enabled_over_disabled is the worse of the two workload ratios.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "common/rng.h"
#include "common/timer.h"
#include "geometry/geometry.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "positioning/estimators.h"
#include "serving/server.h"
#include "serving/snapshot.h"
#include "serving/synthetic.h"

namespace {

using namespace rmi;
using serving::MakeSyntheticQueries;
using serving::MakeSyntheticServingMap;
using serving::MatrixRow;

// Defeats dead-code elimination of the estimate loops.
volatile double g_sink = 0.0;

constexpr uint64_t kSampleEvery = 64;

void SetMode(bool enabled) {
  obs::SetEnabled(enabled);
  obs::Tracer::Global().SetSampleEvery(enabled ? kSampleEvery : 0);
}

double RunBatchWorkload(positioning::KnnEstimator& knn,
                        const la::Matrix& queries, size_t batch_size) {
  const size_t num_queries = queries.rows();
  Timer t;
  geom::Point sink;
  for (size_t off = 0; off < num_queries; off += batch_size) {
    const la::Matrix block =
        queries.SliceRows(off, std::min(off + batch_size, num_queries));
    for (const geom::Point& p : knn.EstimateBatch(block)) {
      sink = sink + p;
    }
  }
  const double qps = double(num_queries) / t.ElapsedSeconds();
  g_sink = g_sink + sink.x;
  return qps;
}

double RunServerWorkload(serving::MapSnapshotStore* store,
                         const la::Matrix& queries, size_t batch_size) {
  const size_t num_queries = queries.rows();
  serving::ServerOptions opt;
  opt.max_batch = batch_size;
  opt.max_wait_us = 200.0;
  opt.num_workers = 2;
  serving::LocalizationServer server(store, opt);
  const size_t num_clients = 4;
  const size_t per_client = num_queries / num_clients;
  Timer t;
  std::vector<std::thread> clients;
  for (size_t c = 0; c < num_clients; ++c) {
    clients.emplace_back([&, c] {
      const size_t window = 16;
      std::vector<std::future<geom::Point>> inflight;
      inflight.reserve(window);
      for (size_t i = 0; i < per_client; ++i) {
        inflight.push_back(
            server.Submit(MatrixRow(queries, c * per_client + i)));
        if (inflight.size() == window) {
          for (auto& f : inflight) f.get();
          inflight.clear();
        }
      }
      for (auto& f : inflight) f.get();
    });
  }
  for (auto& t2 : clients) t2.join();
  const double qps =
      double(per_client * num_clients) / t.ElapsedSeconds();
  server.Stop();
  return qps;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_path;
  std::string scrape_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
      if (json_path.empty()) json_path = "BENCH_obs.json";
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else if (std::strncmp(argv[i], "--scrape=", 9) == 0) {
      scrape_path = argv[i] + 9;
    }
  }

  const size_t nx = 50, ny = 40, num_aps = 96;
  const size_t batch_size = 64;
  const size_t num_queries = smoke ? 4096 : 16384;
  const size_t rounds = smoke ? 5 : 7;
  std::printf("=== obs overhead — %zu-RP map, %zu queries x %zu rounds, "
              "1-in-%llu sampling ===\n",
              nx * ny, num_queries, rounds,
              (unsigned long long)kSampleEvery);

  const rmap::RadioMap map = MakeSyntheticServingMap(nx, ny, num_aps, 11);
  Rng rng(7);
  auto snapshot = serving::BuildSnapshot(
      map, std::make_unique<positioning::KnnEstimator>(5, true), rng);
  const la::Matrix queries = MakeSyntheticQueries(map, num_queries, 0.0, 21);

  positioning::KnnEstimator knn(5, true);
  {
    Rng fit_rng(7);
    knn.Fit(map, fit_rng);
  }
  serving::MapSnapshotStore store(snapshot);

  double batch_qps[2] = {0.0, 0.0};   // [disabled, enabled]
  double server_qps[2] = {0.0, 0.0};
  // One untimed warm-up of each workload (page-in, pool spin-up), then
  // the timed rounds alternate which arm goes first.
  SetMode(false);
  RunBatchWorkload(knn, queries, batch_size);
  RunServerWorkload(&store, queries, batch_size);
  for (size_t r = 0; r < rounds; ++r) {
    for (int step = 0; step < 2; ++step) {
      const bool enabled = (static_cast<int>(r) + step) % 2 != 0;
      SetMode(enabled);
      batch_qps[enabled] =
          std::max(batch_qps[enabled], RunBatchWorkload(knn, queries, batch_size));
      server_qps[enabled] = std::max(
          server_qps[enabled], RunServerWorkload(&store, queries, batch_size));
    }
  }
  // Leave the layer enabled so the scrape/metrics dumps below reflect a
  // live configuration.
  SetMode(true);

  const double batch_ratio = batch_qps[1] / batch_qps[0];
  const double server_ratio = server_qps[1] / server_qps[0];
  const double headline = std::min(batch_ratio, server_ratio);
  std::printf("batch  EstimateBatch:  disabled %10.0f qps   enabled %10.0f qps"
              "   ratio %.4f\n",
              batch_qps[0], batch_qps[1], batch_ratio);
  std::printf("server concurrent:     disabled %10.0f qps   enabled %10.0f qps"
              "   ratio %.4f\n",
              server_qps[0], server_qps[1], server_ratio);
  std::printf("enabled_over_disabled (worst arm): %.4f   "
              "(acceptance floor 0.98)\n",
              headline);

  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(
        f,
        "{\n"
        "  \"rounds\": %zu,\n"
        "  \"num_queries\": %zu,\n"
        "  \"batch_size\": %zu,\n"
        "  \"sample_every\": %llu,\n"
        "  \"batch\": {\"disabled_qps\": %.1f, \"enabled_qps\": %.1f,"
        " \"enabled_over_disabled\": %.4f},\n"
        "  \"server\": {\"disabled_qps\": %.1f, \"enabled_qps\": %.1f,"
        " \"enabled_over_disabled\": %.4f},\n"
        "  \"enabled_over_disabled\": %.4f,\n",
        rounds, num_queries, batch_size, (unsigned long long)kSampleEvery,
        batch_qps[0], batch_qps[1], batch_ratio, server_qps[0], server_qps[1],
        server_ratio, headline);
    rmi::bench::WriteObsMetricsJson(f);
    rmi::bench::WriteHardwareJson(f, 2);
    std::fprintf(f, "\n}\n");
    std::fclose(f);
    std::printf("\nwrote %s\n", json_path.c_str());
  }
  if (!scrape_path.empty()) {
    std::FILE* f = std::fopen(scrape_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", scrape_path.c_str());
      return 1;
    }
    const std::string text = obs::DumpPrometheusText();
    std::fwrite(text.data(), 1, text.size(), f);
    std::fclose(f);
    std::printf("wrote %s (%zu bytes)\n", scrape_path.c_str(), text.size());
  }
  if (headline < 0.98) {
    std::fprintf(stderr,
                 "WARNING: obs overhead ratio %.4f below the 0.98 "
                 "acceptance bar\n",
                 headline);
  }
  return 0;
}
