// Fig. 14: removal ratio beta (of RSSIs, applied after the MNAR fill) vs
// fingerprint MAE for {T-BiSIM, D-BiSIM, SSGAN, BRITS, MF, MICE}.
//
// Paper shape: MAE grows with beta for everyone; *-BiSIM best and flattest;
// MICE/MF degrade fastest (their autocorrelation signal thins out).
#include "bench/bench_common.h"
#include "eval/pipeline.h"

namespace rmi {
namespace {

void Run() {
  const auto env = bench::EnvWithDefaults(/*scale=*/0.10, /*epochs=*/18);
  bench::Banner("Fig. 14", "removal ratio beta vs RSSI MAE (dBm)", env);
  struct Config {
    const char* label;
    const char* diff;
    const char* imp;
  };
  const std::vector<Config> configs = {
      {"T-BiSIM", "TopoAC", "BiSIM"}, {"D-BiSIM", "DasaKM", "BiSIM"},
      {"SSGAN", "TopoAC", "SSGAN"},   {"BRITS", "TopoAC", "BRITS"},
      {"MF", "TopoAC", "MF"},         {"MICE", "TopoAC", "MICE"},
  };
  for (const char* venue : {"Kaide", "Wanda"}) {
    const auto ds = bench::MakeDataset(venue, env.scale);
    std::vector<std::string> header = {"beta(%)"};
    for (const auto& c : configs) header.push_back(c.label);
    Table table(header);
    for (int beta : {10, 20, 30, 40, 50}) {
      std::vector<std::string> row = {std::to_string(beta)};
      for (const auto& c : configs) {
        auto diff = eval::MakeDifferentiator(c.diff, &ds.venue);
        auto imputer = eval::MakeImputer(c.imp, ds.venue, env);
        const auto res = eval::RunBetaExperiment(
            ds.map, *diff, *imputer, beta / 100.0, /*beta_rp=*/0.0,
            /*seed=*/500 + beta);
        row.push_back(Table::Num(res.rssi_mae));
      }
      table.AddRow(std::move(row));
    }
    std::printf("-- %s (MAE, dBm) --\n", venue);
    table.Print();
    table.MaybeWriteCsv(std::string("fig14_") + venue);
    std::printf("\n");
  }
}

}  // namespace
}  // namespace rmi

int main() {
  rmi::Run();
  return 0;
}
