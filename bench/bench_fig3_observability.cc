// Fig. 3 + Fig. 5: the exploratory analyses behind the differentiator.
//
// Fig. 3 — observability of a selected AP's signals at different RPs: RPs
// near the AP observe it consistently (missing events there are MARs); RPs
// far away never observe it (MNARs). We quantify this as the observability
// rate vs distance band.
//
// Fig. 5 — preliminary clustering: K-means clusters of binarized AP
// profiles are spatially coherent. We quantify coherence as the mean
// intra-cluster pairwise distance vs the all-pairs mean distance (< 1
// means clusters are spatially tight, confirming the locality hypothesis).
#include "bench/bench_common.h"
#include "clustering/clusterer.h"
#include "clustering/kmeans.h"
#include "radio/propagation.h"

namespace rmi {
namespace {

void Run() {
  const auto env = bench::EnvWithDefaults(/*scale=*/0.15, /*epochs=*/1);
  bench::Banner("Fig. 3 / Fig. 5", "AP observability locality + profile "
                "cluster coherence", env);
  for (const char* venue_name : {"Kaide", "Wanda"}) {
    const auto ds = bench::MakeDataset(venue_name, env.scale);
    const radio::PropagationModel model = ds.Model();

    // --- Fig. 3: observability vs distance band for a central AP.
    size_t ap = 0;
    double best = 1e18;
    const geom::Point center{ds.venue.width / 2, ds.venue.height / 2};
    for (size_t a = 0; a < ds.venue.aps.size(); ++a) {
      const double d = geom::Distance(ds.venue.aps[a].position, center);
      if (d < best) {
        best = d;
        ap = a;
      }
    }
    Table obs({"distance band (m)", "#RPs", "observability rate"});
    const std::vector<std::pair<double, double>> bands = {
        {0, 5}, {5, 10}, {10, 20}, {20, 40}, {40, 100}};
    for (const auto& [lo, hi] : bands) {
      size_t n = 0, observable = 0;
      for (const auto& rp : ds.venue.rps) {
        const double d = geom::Distance(rp, ds.venue.aps[ap].position);
        if (d < lo || d >= hi) continue;
        ++n;
        observable += model.IsObservable(ap, rp);
      }
      if (n == 0) continue;
      obs.AddRow({Table::Num(lo, 0) + "-" + Table::Num(hi, 0),
                  std::to_string(n),
                  Table::Num(double(observable) / double(n), 2)});
    }
    std::printf("-- %s: observability of a central AP by distance --\n",
                venue_name);
    obs.Print();

    // --- Fig. 5: spatial coherence of K-means profile clusters.
    const auto samples = cluster::BuildSampleSet(ds.map, 0.1);
    Rng rng(3);
    cluster::KMeansParams kp;
    kp.k = 12;
    const auto km = cluster::KMeans(samples.features, kp, rng);
    double intra = 0.0, intra_n = 0.0, all = 0.0, all_n = 0.0;
    for (size_t i = 0; i < samples.size(); ++i) {
      for (size_t j = i + 1; j < samples.size(); ++j) {
        const double d =
            geom::Distance(samples.locations[i], samples.locations[j]);
        all += d;
        all_n += 1.0;
        if (km.assignment[i] == km.assignment[j]) {
          intra += d;
          intra_n += 1.0;
        }
      }
    }
    std::printf(
        "cluster spatial coherence: mean intra-cluster RP distance %.2f m "
        "vs all-pairs %.2f m (ratio %.2f; << 1 supports the locality "
        "hypothesis)\n\n",
        intra / intra_n, all / all_n, (intra / intra_n) / (all / all_n));
  }
}

}  // namespace
}  // namespace rmi

int main() {
  rmi::Run();
  return 0;
}
