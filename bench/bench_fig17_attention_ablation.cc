// Fig. 17: attention ablation — T-BiSIM with (1) the adapted
// sparsity-friendly Bahdanau attention (ours), (2) classic Bahdanau
// attention, (3) no attention; C = WKNN.
//
// Paper shape: adapted < classic < none (APE).
#include "bench/bench_common.h"
#include "bisim/bisim.h"
#include "eval/pipeline.h"

namespace rmi {
namespace {

void Run() {
  const auto env = bench::EnvWithDefaults(/*scale=*/0.15, /*epochs=*/25);
  bench::Banner("Fig. 17", "attention ablation for T-BiSIM (APE, meters)",
                env);
  struct Variant {
    const char* label;
    bisim::BiSimConfig::Attention attention;
  };
  const std::vector<Variant> variants = {
      {"Adapted Bahdanau Attention",
       bisim::BiSimConfig::Attention::kSparsityFriendly},
      {"Bahdanau Attention", bisim::BiSimConfig::Attention::kClassicBahdanau},
      {"No Attention", bisim::BiSimConfig::Attention::kNone},
  };
  Table table({"variant", "Kaide", "Wanda"});
  std::vector<std::vector<std::string>> rows(variants.size());
  for (size_t v = 0; v < variants.size(); ++v) rows[v] = {variants[v].label};
  for (const char* venue : {"Kaide", "Wanda"}) {
    const auto ds = bench::MakeDataset(venue, env.scale);
    auto diff = eval::MakeDifferentiator("TopoAC", &ds.venue);
    for (size_t v = 0; v < variants.size(); ++v) {
      bisim::BiSimConfig cfg = eval::DefaultBiSimConfig(ds.venue, env);
      cfg.attention = variants[v].attention;
      bisim::BiSimImputer imputer(cfg);
      auto wknn = eval::MakeEstimator("WKNN");
      rows[v].push_back(Table::Num(
          bench::MeanApe(ds.map, *diff, imputer, *wknn, 170, /*repeats=*/2)));
    }
  }
  for (auto& r : rows) table.AddRow(std::move(r));
  table.Print();
  table.MaybeWriteCsv("fig17");
}

}  // namespace
}  // namespace rmi

int main() {
  rmi::Run();
  return 0;
}
