// Fig. 15: removal ratio beta (of RPs) vs RP Euclidean distance for
// {T-BiSIM, D-BiSIM, LI, SL, MICE, MF}.
//
// Paper shape: error grows with beta; *-BiSIM best (robust to RP sparsity);
// MICE/MF worst (they cannot exploit the path structure).
#include "bench/bench_common.h"
#include "eval/pipeline.h"

namespace rmi {
namespace {

void Run() {
  const auto env = bench::EnvWithDefaults(/*scale=*/0.10, /*epochs=*/18);
  bench::Banner("Fig. 15", "removal ratio beta vs RP Euclidean distance (m)",
                env);
  struct Config {
    const char* label;
    const char* diff;
    const char* imp;
  };
  const std::vector<Config> configs = {
      {"T-BiSIM", "TopoAC", "BiSIM"}, {"D-BiSIM", "DasaKM", "BiSIM"},
      {"LI", "MNAR-only", "LI"},      {"SL", "MNAR-only", "SL"},
      {"MICE", "TopoAC", "MICE"},     {"MF", "TopoAC", "MF"},
  };
  for (const char* venue : {"Kaide", "Wanda"}) {
    const auto ds = bench::MakeDataset(venue, env.scale);
    std::vector<std::string> header = {"beta(%)"};
    for (const auto& c : configs) header.push_back(c.label);
    Table table(header);
    for (int beta : {10, 20, 30, 40, 50}) {
      std::vector<std::string> row = {std::to_string(beta)};
      for (const auto& c : configs) {
        auto diff = eval::MakeDifferentiator(c.diff, &ds.venue);
        auto imputer = eval::MakeImputer(c.imp, ds.venue, env);
        const auto res = eval::RunBetaExperiment(
            ds.map, *diff, *imputer, /*beta_rssi=*/0.0, beta / 100.0,
            /*seed=*/600 + beta);
        row.push_back(Table::Num(res.rp_euclidean));
      }
      table.AddRow(std::move(row));
    }
    std::printf("-- %s (Euclidean distance, meters) --\n", venue);
    table.Print();
    table.MaybeWriteCsv(std::string("fig15_") + venue);
    std::printf("\n");
  }
}

}  // namespace
}  // namespace rmi

int main() {
  rmi::Run();
  return 0;
}
