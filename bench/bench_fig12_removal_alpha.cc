// Fig. 12: removal ratio alpha vs APE for the five differentiators
// (TopoAC, DasaKM, ElbowKM, MAR-only, MNAR-only), with B = BiSIM and
// C = WKNN, on Kaide and Wanda.
//
// Paper shape to reproduce: all methods degrade with alpha; the three
// clustering differentiators beat MAR-only and MNAR-only; MAR-only beats
// MNAR-only; TopoAC is best overall.
#include "bench/bench_common.h"
#include "eval/pipeline.h"

namespace rmi {
namespace {

void Run() {
  const auto env = bench::EnvWithDefaults(/*scale=*/0.10, /*epochs=*/10);
  bench::Banner("Fig. 12", "removal ratio alpha vs APE (B=BiSIM, C=WKNN)",
                env);
  const std::vector<int> alphas = {0, 5, 10, 15, 20};
  const std::vector<std::string> diffs = {"TopoAC", "DasaKM", "ElbowKM",
                                          "MAR-only", "MNAR-only"};
  for (const char* venue : {"Kaide", "Wanda"}) {
    const auto ds = bench::MakeDataset(venue, env.scale);
    Table table({"alpha(%)", "TopoAC", "DasaKM", "ElbowKM", "MAR-only",
                 "MNAR-only"});
    for (int alpha : alphas) {
      rmap::RadioMap map = ds.map;
      Rng rng(1000 + alpha);
      rmap::RemoveRandomRssis(&map, alpha / 100.0, rng);
      std::vector<std::string> row = {std::to_string(alpha)};
      for (const std::string& diff_name : diffs) {
        auto diff = eval::MakeDifferentiator(diff_name, &ds.venue);
        auto bisim = eval::MakeImputer("BiSIM", ds.venue, env);
        auto wknn = eval::MakeEstimator("WKNN");
        row.push_back(Table::Num(bench::MeanApe(map, *diff, *bisim, *wknn,
                                                /*base_seed=*/77)));
      }
      table.AddRow(std::move(row));
    }
    std::printf("-- %s (APE, meters; missing RSSI rate %.1f%%) --\n", venue,
                100.0 * ds.map.MissingRssiRate());
    table.Print();
    table.MaybeWriteCsv(std::string("fig12_") + venue);
    std::printf("\n");
  }
}

}  // namespace
}  // namespace rmi

int main() {
  rmi::Run();
  return 0;
}
