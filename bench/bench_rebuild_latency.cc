// Snapshot-refresh latency under churn: how long does a shard serve stale
// data after fresh observations arrive? Replays rounds of delta batches
// into serving::MapUpdater and measures the deltas -> publish latency per
// (shard, round) plus the sampled staleness of the fleet while rebuilds
// are pending, across the rebuild-path configurations the PR compares:
//
//   * serialized + cold      — one rebuild thread, full re-impute (the
//                              pre-PR-5 path; Table VII's offline costs
//                              replayed online)
//   * parallel   + cold      — bounded rebuild pool, full re-impute
//   * parallel   + incremental — pool + dirty-row propagation/warm start
//
// for 1 shard and for an 8-shard venue.
//
//   ./bench_rebuild_latency            # full sizes, console table
//   ./bench_rebuild_latency --smoke    # CI sizes + BENCH_rebuild.json
//   ./bench_rebuild_latency --json=out.json
//
// Emits BENCH_rebuild.json (schema in docs/REPRODUCE.md). The headline
// acceptance number is speedup_p95 of eight_shard.parallel_incremental
// vs eight_shard.serialized_cold (target: >= 3x).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "clustering/differentiation.h"
#include "common/missing.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/timer.h"
#include "imputers/autocorrelation.h"
#include "positioning/estimators.h"
#include "serving/map_updater.h"
#include "serving/shard_router.h"
#include "serving/synthetic.h"

namespace {

using namespace rmi;

struct ChurnConfig {
  size_t num_shards = 8;
  size_t nx = 20, ny = 12;       // reference grid per shard
  // MICE's chained solve scales with D^3: 20 APs keeps a cold rebuild in
  // the tens-of-milliseconds range, so the measured latencies dominate OS
  // scheduling jitter (this bench runs on single-core CI boxes too).
  size_t aps_per_floor = 20;
  size_t rounds = 6;             // delta batches per shard
  size_t batch = 8;              // observations per batch (= volume trigger)
  size_t rebuild_threads = 1;
  bool incremental = false;
  uint64_t seed = 29;
};

struct ChurnResult {
  std::vector<double> latencies_ms;  // one per (shard, round)
  double p50_ms = 0.0, p95_ms = 0.0, max_ms = 0.0;
  double mean_staleness_ms = 0.0;    // sampled age of pending shards
  double elapsed_s = 0.0;
  size_t publishes = 0;
  double publishes_per_sec = 0.0;
  /// Final-round phase telemetry, averaged across shards (RebuildStats
  /// keeps only the last rebuild's breakdown per shard).
  double last_impute_ms = 0.0;
  double last_queue_wait_ms = 0.0;
  size_t warm_rebuilds = 0;
};

double PercentileOrZero(const std::vector<double>& v, double p) {
  return v.empty() ? 0.0 : Percentile(v, p);  // common/stats.h, p in [0,100]
}

/// Replays `rounds` delta batches into a fresh updater and measures the
/// wall-clock from each shard's batch completion to the matching publish.
ChurnResult RunChurn(const ChurnConfig& cfg) {
  std::vector<rmap::RadioMap> maps;
  std::vector<rmap::ShardId> ids;
  for (size_t s = 0; s < cfg.num_shards; ++s) {
    ids.push_back(rmap::ShardId{int32_t(s / 4), int32_t(s % 4)});
    maps.push_back(serving::MakeSyntheticServingMap(
        cfg.nx, cfg.ny, cfg.aps_per_floor, cfg.seed + s));
  }

  serving::ShardedSnapshotStore store;
  cluster::MarOnlyDifferentiator differentiator;
  imputers::MiceImputer imputer;
  serving::MapUpdaterOptions uopt;
  uopt.min_new_observations = cfg.batch;
  uopt.poll_interval_ms = 0.5;
  uopt.rebuild_threads = cfg.rebuild_threads;
  uopt.incremental = cfg.incremental;
  uopt.dirty_neighbors = 4;
  uopt.seed = cfg.seed;
  serving::MapUpdater updater(
      &store, &differentiator, &imputer,
      [] { return std::make_unique<positioning::KnnEstimator>(3, true); },
      uopt);
  for (size_t s = 0; s < cfg.num_shards; ++s) {
    updater.RegisterShard(ids[s], maps[s]);
  }
  updater.Start();

  // Staleness sampler: while any shard has pending deltas, its served
  // snapshot is older than the data the venue has already reported; the
  // sampled mean of that age is the "staleness under churn".
  Timer run_timer;
  std::vector<std::atomic<double>> batch_ready(cfg.num_shards);
  for (auto& b : batch_ready) b.store(-1.0);
  std::atomic<bool> stop_sampler{false};
  std::atomic<uint64_t> staleness_samples{0};
  std::atomic<double> staleness_sum_ms{0.0};
  std::thread sampler([&] {
    while (!stop_sampler.load(std::memory_order_relaxed)) {
      const double now = run_timer.ElapsedSeconds();
      for (size_t s = 0; s < cfg.num_shards; ++s) {
        const double ready = batch_ready[s].load(std::memory_order_relaxed);
        if (ready < 0.0) continue;  // no batch pending for this shard
        double expected = staleness_sum_ms.load(std::memory_order_relaxed);
        const double add = (now - ready) * 1e3;
        while (!staleness_sum_ms.compare_exchange_weak(expected,
                                                       expected + add)) {
        }
        staleness_samples.fetch_add(1, std::memory_order_relaxed);
      }
      std::this_thread::sleep_for(std::chrono::microseconds(500));
    }
  });

  ChurnResult result;
  Rng rng(cfg.seed + 1000);
  for (size_t round = 0; round < cfg.rounds; ++round) {
    // Ingest one trigger batch into every shard back-to-back — the
    // all-shards-tripped burst that exposes rebuild serialization.
    std::vector<uint64_t> want_version(cfg.num_shards);
    for (size_t s = 0; s < cfg.num_shards; ++s) {
      want_version[s] = store.Current(ids[s])->version + 1;
      const rmap::RadioMap& truth = maps[s];
      for (size_t i = 0; i < cfg.batch; ++i) {
        rmap::Record obs = truth.record(rng.Index(truth.size()));
        obs.id = rmap::Record::kUnassignedId;
        obs.time += double((round + 1) * truth.size());
        for (double& v : obs.rssi) {
          if (rng.Bernoulli(0.25)) v = kNull;
        }
        if (obs.NumObserved() == 0) obs.rssi[0] = -70.0;
        if (rng.Bernoulli(0.3)) {
          obs.has_rp = false;
          obs.rp = geom::Point{};
        }
        updater.Ingest(ids[s], std::move(obs));
      }
      batch_ready[s].store(run_timer.ElapsedSeconds(),
                           std::memory_order_relaxed);
    }
    // Poll every shard's published version; latency = batch-ready ->
    // publish observed (0.2 ms poll granularity).
    std::vector<bool> done(cfg.num_shards, false);
    size_t remaining = cfg.num_shards;
    Timer guard;
    while (remaining > 0) {
      for (size_t s = 0; s < cfg.num_shards; ++s) {
        if (done[s]) continue;
        if (store.Current(ids[s])->version >= want_version[s]) {
          const double ready = batch_ready[s].load();
          result.latencies_ms.push_back(
              (run_timer.ElapsedSeconds() - ready) * 1e3);
          batch_ready[s].store(-1.0, std::memory_order_relaxed);
          done[s] = true;
          --remaining;
        }
      }
      if (guard.ElapsedSeconds() > 120.0) {
        std::fprintf(stderr, "rebuild stalled: %zu shards pending\n",
                     remaining);
        break;
      }
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  }
  result.elapsed_s = run_timer.ElapsedSeconds();
  stop_sampler.store(true);
  sampler.join();
  updater.Stop();

  result.p50_ms = PercentileOrZero(result.latencies_ms, 50.0);
  result.p95_ms = PercentileOrZero(result.latencies_ms, 95.0);
  result.max_ms = PercentileOrZero(result.latencies_ms, 100.0);
  result.publishes = result.latencies_ms.size();
  result.publishes_per_sec =
      result.elapsed_s > 0 ? double(result.publishes) / result.elapsed_s : 0.0;
  const uint64_t samples = staleness_samples.load();
  result.mean_staleness_ms =
      samples > 0 ? staleness_sum_ms.load() / double(samples) : 0.0;
  const serving::MapUpdaterStats stats = updater.Stats();
  double impute = 0.0, queue = 0.0;
  for (const auto& [id, shard] : stats.per_shard) {
    impute += shard.last_impute_seconds;
    queue += shard.last_queue_wait_seconds;
    result.warm_rebuilds += shard.warm;
  }
  result.last_impute_ms = 1e3 * impute / double(stats.per_shard.size());
  result.last_queue_wait_ms = 1e3 * queue / double(stats.per_shard.size());
  return result;
}

void PrintRow(const char* name, const ChurnResult& r) {
  std::printf(
      "%-28s p50 %8.1f ms   p95 %8.1f ms   staleness %8.1f ms   "
      "%5.1f pub/s   (impute %6.1f ms, queue %6.1f ms, warm %zu)\n",
      name, r.p50_ms, r.p95_ms, r.mean_staleness_ms, r.publishes_per_sec,
      r.last_impute_ms, r.last_queue_wait_ms, r.warm_rebuilds);
}

void EmitJsonBlock(std::FILE* f, const char* key, const ChurnResult& r,
                   bool trailing_comma) {
  std::fprintf(
      f,
      "    \"%s\": {\"p50_ms\": %.2f, \"p95_ms\": %.2f, \"max_ms\": %.2f,"
      " \"mean_staleness_ms\": %.2f, \"publishes\": %zu,"
      " \"publishes_per_sec\": %.2f, \"last_impute_ms\": %.2f,"
      " \"last_queue_wait_ms\": %.2f, \"warm_rebuilds\": %zu}%s\n",
      key, r.p50_ms, r.p95_ms, r.max_ms, r.mean_staleness_ms, r.publishes,
      r.publishes_per_sec, r.last_impute_ms, r.last_queue_wait_ms,
      r.warm_rebuilds, trailing_comma ? "," : "");
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
      if (json_path.empty()) json_path = "BENCH_rebuild.json";
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    }
  }

  ChurnConfig base;
  base.rounds = smoke ? 6 : 10;
  base.nx = smoke ? 20 : 24;
  base.ny = smoke ? 12 : 14;

  std::printf("=== rebuild latency under churn — %zu rounds, batch %zu, "
              "%zux%zu refs/shard ===\n",
              base.rounds, base.batch, base.nx, base.ny);

  // --- one shard: cold vs incremental (pool width is irrelevant) --------
  ChurnConfig one = base;
  one.num_shards = 1;
  one.incremental = false;
  const ChurnResult one_cold = RunChurn(one);
  PrintRow("1 shard, cold", one_cold);
  one.incremental = true;
  const ChurnResult one_inc = RunChurn(one);
  PrintRow("1 shard, incremental", one_inc);

  // --- eight shards: the serialization backlog the pool removes ---------
  ChurnConfig eight = base;
  eight.num_shards = 8;
  eight.rebuild_threads = 1;
  eight.incremental = false;
  const ChurnResult serialized_cold = RunChurn(eight);
  PrintRow("8 shards, serialized cold", serialized_cold);
  eight.rebuild_threads = 8;
  const ChurnResult parallel_cold = RunChurn(eight);
  PrintRow("8 shards, parallel cold", parallel_cold);
  eight.incremental = true;
  const ChurnResult parallel_inc = RunChurn(eight);
  PrintRow("8 shards, parallel incr.", parallel_inc);

  const double speedup_p95 =
      parallel_inc.p95_ms > 0 ? serialized_cold.p95_ms / parallel_inc.p95_ms
                              : 0.0;
  const double speedup_p95_pool =
      parallel_cold.p95_ms > 0 ? serialized_cold.p95_ms / parallel_cold.p95_ms
                               : 0.0;
  const double speedup_staleness =
      parallel_inc.mean_staleness_ms > 0
          ? serialized_cold.mean_staleness_ms / parallel_inc.mean_staleness_ms
          : 0.0;
  std::printf(
      "\np95 publish-latency speedup vs serialized cold: pool %.2fx, "
      "pool+incremental %.2fx (staleness %.2fx)\n",
      speedup_p95_pool, speedup_p95, speedup_staleness);

  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(f,
                 "{\n"
                 "  \"config\": {\"rounds\": %zu, \"batch\": %zu,"
                 " \"rps_per_shard\": %zu, \"aps_per_shard\": %zu},\n"
                 "  \"one_shard\": {\n",
                 base.rounds, base.batch, base.nx * base.ny,
                 base.aps_per_floor);
    EmitJsonBlock(f, "cold", one_cold, true);
    EmitJsonBlock(f, "incremental", one_inc, false);
    std::fprintf(f, "  },\n  \"eight_shard\": {\n");
    EmitJsonBlock(f, "serialized_cold", serialized_cold, true);
    EmitJsonBlock(f, "parallel_cold", parallel_cold, true);
    EmitJsonBlock(f, "parallel_incremental", parallel_inc, false);
    std::fprintf(f,
                 "  },\n"
                 "  \"speedup_p95\": %.3f,\n"
                 "  \"speedup_p95_pool_only\": %.3f,\n"
                 "  \"speedup_staleness\": %.3f,\n",
                 speedup_p95, speedup_p95_pool, speedup_staleness);
    rmi::bench::WriteObsMetricsJson(f);
    rmi::bench::WriteHardwareJson(f, eight.rebuild_threads);
    std::fprintf(f, "\n}\n");
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  }
  if (speedup_p95 < 3.0) {
    std::fprintf(stderr,
                 "WARNING: p95 speedup %.2fx below the 3x acceptance bar\n",
                 speedup_p95);
  }
  return 0;
}
