// Multicore scaling of the serving path: the same workload at 1 / 2 / 4 /
// hardware_concurrency threads, so the epoch-pinned snapshot reads, the
// work-stealing fan-out pool, and the parallel rebuild path show their
// scaling curve instead of a single-point qps.
//
//   ./bench_multicore_scaling            # full sizes, console table
//   ./bench_multicore_scaling --smoke    # CI sizes + BENCH_scaling.json
//   ./bench_multicore_scaling --json=out.json
//
// Emits BENCH_scaling.json (schema in docs/REPRODUCE.md): per-thread-count
// qps/p95 for three sections plus the 4-thread-vs-1-thread speedups the
// regression gate checks on runners with >= 4 cores —
//   serving  — T client threads, each PinnedRead + EstimateBatch on its
//              own query stripe against one MapSnapshotStore (the
//              epoch-read scaling: no refcount line to bounce);
//   sharded  — mixed-shard LocalizeBatch through a ShardRouter whose
//              fan-out pool is sized T (work-stealing group schedule);
//   rebuild  — 8 shards re-imputed concurrently on a T-wide pool.
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "clustering/differentiation.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "imputers/autocorrelation.h"
#include "positioning/estimators.h"
#include "serving/map_updater.h"
#include "serving/shard_router.h"
#include "serving/snapshot.h"
#include "serving/synthetic.h"

namespace {

using namespace rmi;
using serving::MakeSyntheticQueries;
using serving::MakeSyntheticServingMap;

/// The swept thread counts: 1, 2, 4, and the machine width, deduped and
/// ascending. On a small runner the over-wide points still run (the OS
/// time-slices them) — the JSON records hardware_concurrency so the gate
/// knows which points were real parallelism.
std::vector<size_t> ThreadCounts() {
  const size_t hw = std::max<size_t>(1, std::thread::hardware_concurrency());
  std::vector<size_t> counts = {1, 2, 4, hw};
  std::sort(counts.begin(), counts.end());
  counts.erase(std::unique(counts.begin(), counts.end()), counts.end());
  return counts;
}

struct Point {
  size_t threads = 0;
  double qps = 0.0;
  double p95_us = 0.0;  ///< per-batch latency (0 where not measured)
};

/// qps at 4 threads over qps at 1 thread (the acceptance ratio); falls
/// back to the widest measured point when 4 was not in the sweep.
double SpeedupAt4(const std::vector<Point>& curve) {
  double base = 0.0, at4 = 0.0;
  for (const Point& p : curve) {
    if (p.threads == 1) base = p.qps;
    if (p.threads == 4) at4 = p.qps;
  }
  if (at4 == 0.0 && !curve.empty()) at4 = curve.back().qps;
  return base > 0.0 ? at4 / base : 0.0;
}

/// T client threads, each looping PinnedRead + EstimateBatch over its own
/// stripe of `queries`. Every batch re-pins the snapshot — the per-query
/// acquisition cost this PR moved off the refcount — so the curve measures
/// exactly the hot path the server runs.
Point MeasureServing(const serving::MapSnapshotStore& store,
                     const la::Matrix& queries, size_t threads,
                     size_t batch_size) {
  const size_t n = queries.rows();
  std::vector<std::vector<double>> lat(threads);
  Timer t;
  std::vector<std::thread> clients;
  clients.reserve(threads);
  for (size_t c = 0; c < threads; ++c) {
    clients.emplace_back([&, c] {
      geom::Point sink;
      for (size_t off = c * batch_size; off < n;
           off += threads * batch_size) {
        Timer bt;
        const la::Matrix block =
            queries.SliceRows(off, std::min(off + batch_size, n));
        const serving::PinnedSnapshot snap = store.PinnedRead();
        for (const geom::Point& p : snap->estimator->EstimateBatch(block)) {
          sink = sink + p;
        }
        lat[c].push_back(1e6 * bt.ElapsedSeconds());
      }
      if (sink.x == 0.12345) std::printf("-");  // keep the sink alive
    });
  }
  for (std::thread& c : clients) c.join();
  const double elapsed = t.ElapsedSeconds();
  std::vector<double> all;
  for (const std::vector<double>& l : lat) all.insert(all.end(), l.begin(), l.end());
  Point p;
  p.threads = threads;
  p.qps = double(n) / elapsed;
  p.p95_us = all.empty() ? 0.0 : Percentile(std::move(all), 95.0);
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
      if (json_path.empty()) json_path = "BENCH_scaling.json";
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    }
  }
  const std::vector<size_t> counts = ThreadCounts();
  std::printf("=== multicore scaling — hardware_concurrency %u ===\n\n",
              std::thread::hardware_concurrency());

  // --- serving: T clients over one epoch-pinned store -------------------
  const size_t num_aps = 96;
  const size_t batch_size = 64;
  const size_t num_queries = smoke ? 4096 : 16384;
  const rmap::RadioMap map = MakeSyntheticServingMap(50, 40, num_aps, 11);
  Rng rng(7);
  serving::MapSnapshotStore store(serving::BuildSnapshot(
      map, std::make_unique<positioning::KnnEstimator>(5, true), rng));
  const la::Matrix queries = MakeSyntheticQueries(map, num_queries, 0.1, 21);
  std::vector<Point> serving_curve;
  for (size_t t : counts) {
    serving_curve.push_back(MeasureServing(store, queries, t, batch_size));
    const Point& p = serving_curve.back();
    std::printf("serving  %2zu threads:  %10.0f qps   batch p95 %7.0f us\n",
                p.threads, p.qps, p.p95_us);
  }
  const double serving_speedup = SpeedupAt4(serving_curve);
  std::printf("serving speedup @4t: %.2fx\n\n", serving_speedup);

  // --- sharded: router fan-out pool sized T -----------------------------
  serving::VenueOptions vopt;
  vopt.nx = smoke ? 10 : 14;
  vopt.ny = smoke ? 8 : 10;
  const std::vector<serving::VenueShard> venue =
      serving::MakeSyntheticVenue(vopt);
  serving::ShardedSnapshotStore sharded_store;
  {
    uint64_t version = 1;
    for (const serving::VenueShard& shard : venue) {
      Rng srng(100 + version);
      sharded_store.Publish(
          shard.id,
          serving::BuildSnapshot(
              shard.map, std::make_unique<positioning::KnnEstimator>(3, true),
              srng, serving::SnapshotOptions{version++, 6.0}));
    }
  }
  const size_t venue_rows = smoke ? 2048 : 8192;
  const serving::VenueQuerySet vqueries =
      serving::MakeVenueQueries(venue, venue_rows, 0.1, 33);
  std::vector<std::optional<rmap::ShardId>> hints(vqueries.shard.size());
  for (size_t i = 0; i < vqueries.shard.size(); ++i) hints[i] = vqueries.shard[i];
  std::vector<Point> sharded_curve;
  for (size_t t : counts) {
    const serving::ShardRouter router(&sharded_store, t);
    Timer timer;
    const size_t rounds = 4;
    for (size_t r = 0; r < rounds; ++r) {
      router.LocalizeBatch(vqueries.queries, hints);
    }
    Point p;
    p.threads = t;
    p.qps = double(rounds * venue_rows) / timer.ElapsedSeconds();
    sharded_curve.push_back(p);
    std::printf("sharded  %2zu threads:  %10.0f qps\n", p.threads, p.qps);
  }
  const double sharded_speedup = SpeedupAt4(sharded_curve);
  std::printf("sharded speedup @4t: %.2fx\n\n", sharded_speedup);

  // --- rebuild: 8 shards re-imputed on a T-wide pool --------------------
  const cluster::MarOnlyDifferentiator differentiator;
  const imputers::MiceImputer imputer;
  std::vector<Point> rebuild_curve;
  const size_t rebuild_rounds = smoke ? 2 : 4;
  for (size_t t : counts) {
    serving::ShardedSnapshotStore rb_store;
    serving::MapUpdaterOptions uopt;
    uopt.rebuild_threads = t;
    uopt.seed = 29;
    serving::MapUpdater updater(
        &rb_store, &differentiator, &imputer,
        [] { return std::make_unique<positioning::KnnEstimator>(3, true); },
        uopt);
    for (const serving::VenueShard& shard : venue) {
      updater.RegisterShard(shard.id, shard.map);
    }
    Rng obs_rng(55);
    ThreadPool pool(t);
    Timer timer;
    for (size_t r = 0; r < rebuild_rounds; ++r) {
      for (const serving::VenueShard& shard : venue) {
        for (size_t o = 0; o < 4; ++o) {
          rmap::Record obs = shard.map.record(obs_rng.Index(shard.map.size()));
          obs.time += double((r + 1) * shard.map.size());
          updater.Ingest(shard.id, std::move(obs));
        }
      }
      // Fan the per-shard rebuilds over the pool directly (RebuildNow runs
      // on the calling thread; independent shards overlap, same-shard
      // ordering is the updater's rebuild_mu).
      pool.ParallelForDynamic(venue.size(), [&](size_t /*worker*/, size_t s) {
        updater.RebuildNow(venue[s].id);
      });
    }
    Point p;
    p.threads = t;
    p.qps = double(rebuild_rounds * venue.size()) / timer.ElapsedSeconds();
    rebuild_curve.push_back(p);
    std::printf("rebuild  %2zu threads:  %10.2f rebuilds/s\n", p.threads,
                p.qps);
  }
  const double rebuild_speedup = SpeedupAt4(rebuild_curve);
  std::printf("rebuild speedup @4t: %.2fx\n", rebuild_speedup);

  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    const auto emit_curve = [f](const char* name,
                                const std::vector<Point>& curve,
                                bool with_p95) {
      std::fprintf(f, "  \"%s\": {", name);
      for (size_t i = 0; i < curve.size(); ++i) {
        std::fprintf(f, "%s\"t%zu\": {\"qps\": %.2f", i == 0 ? "" : ", ",
                     curve[i].threads, curve[i].qps);
        if (with_p95) std::fprintf(f, ", \"p95_us\": %.1f", curve[i].p95_us);
        std::fprintf(f, "}");
      }
      std::fprintf(f, "},\n");
    };
    std::fprintf(f, "{\n");
    emit_curve("serving", serving_curve, true);
    emit_curve("sharded", sharded_curve, false);
    emit_curve("rebuild", rebuild_curve, false);
    std::fprintf(f,
                 "  \"serving_speedup_4t\": %.3f,\n"
                 "  \"sharded_speedup_4t\": %.3f,\n"
                 "  \"rebuild_speedup_4t\": %.3f,\n",
                 serving_speedup, sharded_speedup, rebuild_speedup);
    bench::WriteObsMetricsJson(f);
    bench::WriteHardwareJson(f, counts.back());
    std::fprintf(f, "\n}\n");
    std::fclose(f);
    std::printf("\nwrote %s\n", json_path.c_str());
  }
  if (std::thread::hardware_concurrency() >= 4 && serving_speedup < 1.5) {
    std::fprintf(stderr,
                 "WARNING: serving speedup %.2fx at 4 threads below the "
                 "1.5x acceptance bar\n",
                 serving_speedup);
  }
  return 0;
}
