// Fig. 16: RP density (keeping 60-100% of RP records in the raw walking
// survey) vs APE for T-BiSIM (C = WKNN) on Kaide and Wanda.
//
// Paper shape: APE improves monotonically with density; Kaide (denser RPs)
// stays below Wanda throughout.
#include "bench/bench_common.h"
#include "eval/pipeline.h"
#include "radio/propagation.h"

namespace rmi {
namespace {

survey::SurveyDataset DatasetWithDensity(const std::string& venue,
                                         double scale, double keep) {
  indoor::VenueSpec vs = venue == "Kaide" ? indoor::KaideSpec(scale)
                                          : indoor::WandaSpec(scale);
  radio::PropagationParams rp;
  survey::SurveySpec ss;
  ss.rounds = venue == "Kaide" ? 2 : 8;
  ss.rp_keep_fraction = keep;
  ss.seed = 5;
  if (venue == "Wanda") rp.seed = 199;
  return survey::GenerateDataset(vs, rp, ss);
}

void Run() {
  const auto env = bench::EnvWithDefaults(/*scale=*/0.10, /*epochs=*/12);
  bench::Banner("Fig. 16", "RP density vs APE for T-BiSIM (C=WKNN)", env);
  Table table({"RP density(%)", "Kaide", "Wanda"});
  std::vector<std::vector<std::string>> rows;
  for (int density : {60, 70, 80, 90, 100}) {
    std::vector<std::string> row = {std::to_string(density)};
    for (const char* venue : {"Kaide", "Wanda"}) {
      const auto ds = DatasetWithDensity(venue, env.scale, density / 100.0);
      auto diff = eval::MakeDifferentiator("TopoAC", &ds.venue);
      auto bisim = eval::MakeImputer("BiSIM", ds.venue, env);
      auto wknn = eval::MakeEstimator("WKNN");
      row.push_back(Table::Num(
          bench::MeanApe(ds.map, *diff, *bisim, *wknn, 160, /*repeats=*/2)));
    }
    table.AddRow(std::move(row));
  }
  table.Print();
  table.MaybeWriteCsv("fig16");
}

}  // namespace
}  // namespace rmi

int main() {
  rmi::Run();
  return 0;
}
