// Multi-floor sharded serving load generator: floor classification, routed
// mixed-shard batches fanned across the pool, and the live ingest ->
// impute -> publish loop under query load.
//
//   ./bench_sharded_serving            # full sizes, console table
//   ./bench_sharded_serving --smoke    # CI sizes + BENCH_sharded.json
//   ./bench_sharded_serving --json=out.json
//
// Emits BENCH_sharded.json (schema documented in docs/REPRODUCE.md):
// classifier accuracy/qps, routed-batch qps vs the sequential per-shard
// baseline, rebuild latency, and the accuracy-under-update scenario's
// stale vs updated APE.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "clustering/differentiation.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "eval/update_scenario.h"
#include "geometry/geometry.h"
#include "imputers/autocorrelation.h"
#include "imputers/traditional.h"
#include "positioning/estimators.h"
#include "serving/batch_localizer.h"
#include "serving/map_updater.h"
#include "serving/shard_router.h"
#include "serving/snapshot.h"
#include "serving/synthetic.h"

namespace {

using namespace rmi;
using serving::MatrixRow;

std::shared_ptr<const serving::MapSnapshot> SnapshotOf(
    const rmap::RadioMap& map, uint64_t version = 0) {
  Rng rng(5 + version);
  serving::SnapshotOptions opt;
  opt.version = version;
  return serving::BuildSnapshot(
      map, std::make_unique<positioning::KnnEstimator>(5, true), rng, opt);
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
      if (json_path.empty()) json_path = "BENCH_sharded.json";
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    }
  }

  // 3 buildings x 4 floors: 12 shards, each a 20x12 grid with 12 own APs
  // plus bleed-through from adjacent floors — 144 global AP dimensions.
  serving::VenueOptions vopt;
  vopt.num_buildings = 3;
  vopt.floors_per_building = 4;
  vopt.nx = smoke ? 14 : 20;
  vopt.ny = smoke ? 10 : 12;
  vopt.aps_per_floor = 12;
  vopt.bleed_aps = 4;
  const size_t num_queries = smoke ? 2048 : 8192;
  const size_t batch_size = 64;

  const std::vector<serving::VenueShard> shards =
      serving::MakeSyntheticVenue(vopt);
  const size_t num_shards = shards.size();
  std::printf(
      "=== sharded serving — %zu shards (%zux%zu floors), %zu global APs "
      "===\n",
      num_shards, vopt.num_buildings, vopt.floors_per_building,
      shards.front().map.num_aps());

  serving::ShardedSnapshotStore store;
  for (const serving::VenueShard& shard : shards) {
    store.Publish(shard.id, SnapshotOf(shard.map));
  }
  serving::ShardRouter router(&store);
  const serving::VenueQuerySet set =
      serving::MakeVenueQueries(shards, num_queries, 0.25, 13);

  // --- floor classifier: accuracy and throughput ------------------------
  double classify_qps = 0.0, classifier_accuracy = 0.0;
  {
    size_t correct = 0;
    Timer t;
    for (size_t i = 0; i < num_queries; ++i) {
      const auto route = router.ClassifyFloor(MatrixRow(set.queries, i));
      correct += route.has_value() && route->shard == set.shard[i];
    }
    classify_qps = double(num_queries) / t.ElapsedSeconds();
    classifier_accuracy = double(correct) / double(num_queries);
    std::printf("floor classifier:            %10.0f qps   (%.1f%% correct)\n",
                classify_qps, 100.0 * classifier_accuracy);
  }

  // --- routed mixed-shard batches vs sequential per-shard baseline ------
  // Baseline: group rows by their true shard, then answer each whole
  // group with one EstimateBatch on one thread — what a caller without
  // the router would do. The router sees the identical coalesced set and
  // forms the identical per-shard blocks, so the comparison isolates
  // routing (classification, validation, scatter, pool fan-out) from
  // block-size effects.
  double baseline_qps = 0.0, hinted_qps = 0.0, routed_qps = 0.0;
  {
    std::map<rmap::ShardId, std::vector<size_t>> by_shard;
    for (size_t i = 0; i < num_queries; ++i) {
      by_shard[set.shard[i]].push_back(i);
    }
    Timer t;
    geom::Point sink;
    for (const auto& [id, rows] : by_shard) {
      const auto snap = store.Current(id);
      la::Matrix block(rows.size(), set.queries.cols());
      for (size_t r = 0; r < rows.size(); ++r) {
        const double* src =
            set.queries.data().data() + rows[r] * set.queries.cols();
        std::copy(src, src + set.queries.cols(),
                  block.data().begin() + r * set.queries.cols());
      }
      for (const geom::Point& p :
           serving::BatchLocalizer::LocalizeBatchOn(*snap, block)) {
        sink = sink + p;
      }
    }
    baseline_qps = double(num_queries) / t.ElapsedSeconds();
    std::printf("per-shard sequential:        %10.0f qps   (sink %.3f)\n",
                baseline_qps, sink.x);
  }
  // The router sees the same whole coalesced set the baseline grouped by
  // hand; its pool fans the per-shard groups out in parallel.
  {
    const std::vector<std::optional<rmap::ShardId>> hints(set.shard.begin(),
                                                          set.shard.end());
    Timer t;
    router.LocalizeBatch(set.queries, hints);
    hinted_qps = double(num_queries) / t.ElapsedSeconds();
    std::printf("routed batch (hinted):       %10.0f qps\n", hinted_qps);
  }
  {
    Timer t;
    router.LocalizeBatch(set.queries);
    routed_qps = double(num_queries) / t.ElapsedSeconds();
    std::printf("routed batch (classified):   %10.0f qps   (%.2fx baseline)\n\n",
                routed_qps, routed_qps / baseline_qps);
  }

  // --- live updates under load: ingest -> rebuild -> hot-swap -----------
  double update_qps = 0.0, rebuild_seconds = 0.0;
  size_t rebuilds = 0;
  {
    serving::ShardedSnapshotStore live_store;
    cluster::MarOnlyDifferentiator differentiator;
    imputers::LinearInterpolationImputer imputer;
    serving::MapUpdaterOptions uopt;
    uopt.min_new_observations = 32;
    uopt.poll_interval_ms = 1.0;
    serving::MapUpdater updater(
        &live_store, &differentiator, &imputer,
        [] { return std::make_unique<positioning::KnnEstimator>(5, true); },
        uopt);
    for (const serving::VenueShard& shard : shards) {
      updater.RegisterShard(shard.id, shard.map);
    }
    updater.Start();
    serving::ShardRouter live_router(&live_store);

    // One client hammers routed batches while fresh observations stream
    // into two shards and trip background rebuilds + hot-swaps.
    std::atomic<bool> stop{false};
    std::atomic<size_t> answered{0};
    std::thread client([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        for (size_t off = 0; off < num_queries && !stop.load();
             off += batch_size) {
          live_router.LocalizeBatch(set.queries.SliceRows(
              off, std::min(off + batch_size, num_queries)));
          answered.fetch_add(
              std::min(batch_size, num_queries - off),
              std::memory_order_relaxed);
        }
      }
    });
    Rng rng(29);
    Timer t;
    bool stalled = false;
    const size_t ingest_rounds = smoke ? 2 : 4;
    for (size_t round = 0; round < ingest_rounds && !stalled; ++round) {
      for (const rmap::ShardId id :
           {shards[0].id, shards[num_shards / 2].id}) {
        const rmap::RadioMap& truth =
            shards[size_t(id.building) * vopt.floors_per_building +
                   size_t(id.floor)]
                .map;
        for (size_t i = 0; i < uopt.min_new_observations; ++i) {
          rmap::Record obs = truth.record(rng.Index(truth.size()));
          obs.id = rmap::Record::kUnassignedId;
          obs.time += double((round + 1) * truth.size());
          updater.Ingest(id, std::move(obs));
        }
      }
      // Bounded wait: a missed trigger must fail the bench loudly, not
      // hang a CI job until its global timeout.
      const size_t want = num_shards + 2 * (round + 1);
      Timer wait;
      while (updater.Stats().rebuilds_completed < want) {
        if (wait.ElapsedSeconds() > 60.0) {
          std::fprintf(stderr,
                       "rebuild trigger stalled: %zu/%zu completed after "
                       "60s\n",
                       updater.Stats().rebuilds_completed, want);
          stalled = true;
          break;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    }
    const double elapsed = t.ElapsedSeconds();
    stop.store(true);
    client.join();
    updater.Stop();
    if (stalled) return 1;
    update_qps = double(answered.load()) / elapsed;
    rebuild_seconds = updater.Stats().last_rebuild_seconds;
    rebuilds = updater.Stats().rebuilds_completed - num_shards;
    std::printf(
        "under live updates:          %10.0f qps   (%zu rebuilds, last "
        "%.1f ms)\n",
        update_qps, rebuilds, 1e3 * rebuild_seconds);
  }

  // --- accuracy-under-update scenario -----------------------------------
  cluster::MarOnlyDifferentiator differentiator;
  imputers::MiceImputer imputer;
  const eval::UpdateScenarioResult scenario = eval::RunAccuracyUnderUpdate(
      differentiator, imputer,
      [] { return std::make_unique<positioning::KnnEstimator>(3, true); });
  std::printf(
      "accuracy under update:       stale APE %.3f m -> updated APE %.3f m "
      "(%zu obs ingested)\n",
      scenario.stale_ape, scenario.updated_ape, scenario.ingested);

  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(
        f,
        "{\n"
        "  \"venue\": {\"shards\": %zu, \"aps\": %zu, \"rps_per_shard\": "
        "%zu},\n"
        "  \"classifier\": {\"accuracy\": %.4f, \"qps\": %.1f},\n"
        "  \"baseline_qps\": %.1f,\n"
        "  \"hinted_qps\": %.1f,\n"
        "  \"routed_qps\": %.1f,\n"
        "  \"routed_speedup\": %.3f,\n"
        "  \"live_update\": {\"qps\": %.1f, \"client_batch\": %zu,"
        " \"rebuilds\": %zu, \"last_rebuild_ms\": %.2f},\n"
        "  \"update_scenario\": {\"stale_ape_m\": %.4f, \"updated_ape_m\":"
        " %.4f, \"ingested\": %zu},\n",
        num_shards, shards.front().map.num_aps(), vopt.nx * vopt.ny,
        classifier_accuracy, classify_qps, baseline_qps, hinted_qps,
        routed_qps, routed_qps / baseline_qps, update_qps, batch_size,
        rebuilds, 1e3 * rebuild_seconds, scenario.stale_ape,
        scenario.updated_ape, scenario.ingested);
    rmi::bench::WriteObsMetricsJson(f);
    rmi::bench::WriteHardwareJson(f, ThreadPool::DefaultThreads());
    std::fprintf(f, "\n}\n");
    std::fclose(f);
    std::printf("\nwrote %s\n", json_path.c_str());
  }
  if (classifier_accuracy < 0.99) {
    std::fprintf(stderr,
                 "WARNING: classifier accuracy %.3f below the 0.99 bar\n",
                 classifier_accuracy);
  }
  if (scenario.updated_ape >= scenario.stale_ape) {
    std::fprintf(stderr,
                 "WARNING: update did not improve APE (%.3f -> %.3f)\n",
                 scenario.stale_ape, scenario.updated_ape);
  }
  return 0;
}
