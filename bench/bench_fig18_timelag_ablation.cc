// Fig. 18: time-lag ablation — T-BiSIM with the time-lag mechanism in
// (1) encoders only (ours), (2) decoders only, (3) both, (4) none; C = WKNN.
//
// Paper shape: encoder-only best; none worst; enc+dec worse than enc-only
// (extra decoder lag over-parameterizes).
#include "bench/bench_common.h"
#include "bisim/bisim.h"
#include "eval/pipeline.h"

namespace rmi {
namespace {

void Run() {
  const auto env = bench::EnvWithDefaults(/*scale=*/0.15, /*epochs=*/25);
  bench::Banner("Fig. 18", "time-lag ablation for T-BiSIM (APE, meters)",
                env);
  struct Variant {
    const char* label;
    bisim::BiSimConfig::TimeLag time_lag;
  };
  const std::vector<Variant> variants = {
      {"Time-lag in Enc. (ours)", bisim::BiSimConfig::TimeLag::kEncoder},
      {"Time-lag in Dec.", bisim::BiSimConfig::TimeLag::kDecoder},
      {"Time-lag in Enc. and Dec.", bisim::BiSimConfig::TimeLag::kBoth},
      {"No Time-lag", bisim::BiSimConfig::TimeLag::kNone},
  };
  Table table({"variant", "Kaide", "Wanda"});
  std::vector<std::vector<std::string>> rows(variants.size());
  for (size_t v = 0; v < variants.size(); ++v) rows[v] = {variants[v].label};
  for (const char* venue : {"Kaide", "Wanda"}) {
    const auto ds = bench::MakeDataset(venue, env.scale);
    auto diff = eval::MakeDifferentiator("TopoAC", &ds.venue);
    for (size_t v = 0; v < variants.size(); ++v) {
      bisim::BiSimConfig cfg = eval::DefaultBiSimConfig(ds.venue, env);
      cfg.time_lag = variants[v].time_lag;
      bisim::BiSimImputer imputer(cfg);
      auto wknn = eval::MakeEstimator("WKNN");
      rows[v].push_back(Table::Num(
          bench::MeanApe(ds.map, *diff, imputer, *wknn, 180, /*repeats=*/2)));
    }
  }
  for (auto& r : rows) table.AddRow(std::move(r));
  table.Print();
  table.MaybeWriteCsv("fig18");
}

}  // namespace
}  // namespace rmi

int main() {
  rmi::Run();
  return 0;
}
