// Table VIII: generalizability — APE of all nine imputers x three
// estimators on the Bluetooth venue Longhu.
//
// Paper shape: absolute errors larger than the Wi-Fi venues (weaker radio,
// bigger floor); *-BiSIM still clearly best; traditional imputers worst.
#include "bench/bench_common.h"
#include "eval/pipeline.h"

namespace rmi {
namespace {

void Run() {
  const auto env = bench::EnvWithDefaults(/*scale=*/0.15, /*epochs=*/20);
  bench::Banner("Table VIII", "APE on Bluetooth data (Longhu, meters)", env);
  struct Config {
    const char* label;
    const char* differentiator;
    const char* imputer;
  };
  const std::vector<Config> configs = {
      {"CD", "MNAR-only", "CD"},        {"LI", "MNAR-only", "LI"},
      {"SL", "MNAR-only", "SL"},        {"MICE", "TopoAC", "MICE"},
      {"MF", "TopoAC", "MF"},           {"BRITS", "TopoAC", "BRITS"},
      {"SSGAN", "TopoAC", "SSGAN"},     {"D-BiSIM", "DasaKM", "BiSIM"},
      {"T-BiSIM", "TopoAC", "BiSIM"},
  };
  const auto ds = bench::MakeDataset("Longhu", env.scale);
  std::printf("Longhu: %zu records, %zu Bluetooth APs, %.1f%% missing "
              "RSSIs\n\n",
              ds.map.size(), ds.map.num_aps(),
              100.0 * ds.map.MissingRssiRate());
  std::vector<std::string> header = {"estimator"};
  for (const auto& c : configs) header.push_back(c.label);
  Table table(header);
  std::vector<std::vector<std::string>> rows = {{"KNN"}, {"WKNN"}, {"RF"}};
  for (const auto& c : configs) {
    auto diff = eval::MakeDifferentiator(c.differentiator, &ds.venue);
    auto imputer = eval::MakeImputer(c.imputer, ds.venue, env);
    auto knn = eval::MakeEstimator("KNN");
    auto wknn = eval::MakeEstimator("WKNN");
    auto rf = eval::MakeEstimator("RF");
    eval::PipelineOptions opt;
    opt.seed = 800;
    opt.test_fraction = bench::kBenchTestFraction;
    const auto res = eval::RunPipelineMultiEstimators(
        ds.map, *diff, *imputer, {knn.get(), wknn.get(), rf.get()}, opt);
    for (size_t e = 0; e < 3; ++e) rows[e].push_back(Table::Num(res[e].ape));
  }
  for (auto& r : rows) table.AddRow(std::move(r));
  table.Print();
  table.MaybeWriteCsv("table8_longhu");
}

}  // namespace
}  // namespace rmi

int main() {
  rmi::Run();
  return 0;
}
