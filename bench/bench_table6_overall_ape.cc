// Table VI: overall APE comparison — nine imputers x three location
// estimators (KNN, WKNN, RF) on Kaide and Wanda. Traditional and
// autocorrelation imputers use the paper's wiring (CD/LI/SL are
// differentiation-free; MICE/MF/BRITS/SSGAN use TopoAC's MAR results);
// D-BiSIM = DasaKM + BiSIM, T-BiSIM = TopoAC + BiSIM.
//
// Paper shape: *-BiSIM best everywhere; T-BiSIM > D-BiSIM; neural >
// autocorrelation and traditional; WKNN usually the best estimator.
#include "bench/bench_common.h"
#include "eval/pipeline.h"

namespace rmi {
namespace {

void Run() {
  const auto env = bench::EnvWithDefaults(/*scale=*/0.15, /*epochs=*/25);
  bench::Banner("Table VI", "overall APE comparison (meters)", env);
  struct Config {
    const char* label;
    const char* differentiator;
    const char* imputer;
  };
  const std::vector<Config> configs = {
      {"CD", "MNAR-only", "CD"},        {"LI", "MNAR-only", "LI"},
      {"SL", "MNAR-only", "SL"},        {"MICE", "TopoAC", "MICE"},
      {"MF", "TopoAC", "MF"},           {"BRITS", "TopoAC", "BRITS"},
      {"SSGAN", "TopoAC", "SSGAN"},     {"D-BiSIM", "DasaKM", "BiSIM"},
      {"T-BiSIM", "TopoAC", "BiSIM"},
  };
  for (const char* venue : {"Kaide", "Wanda"}) {
    const auto ds = bench::MakeDataset(venue, env.scale);
    std::vector<std::string> header = {"estimator"};
    for (const auto& c : configs) header.push_back(c.label);
    Table table(header);
    std::vector<std::vector<std::string>> rows = {
        {"KNN"}, {"WKNN"}, {"RF"}};
    for (const auto& c : configs) {
      auto diff = eval::MakeDifferentiator(c.differentiator, &ds.venue);
      auto imputer = eval::MakeImputer(c.imputer, ds.venue, env);
      auto knn = eval::MakeEstimator("KNN");
      auto wknn = eval::MakeEstimator("WKNN");
      auto rf = eval::MakeEstimator("RF");
      eval::PipelineOptions opt;
      opt.seed = 90;
      opt.test_fraction = bench::kBenchTestFraction;
      const auto res = eval::RunPipelineMultiEstimators(
          ds.map, *diff, *imputer, {knn.get(), wknn.get(), rf.get()}, opt);
      for (size_t e = 0; e < 3; ++e) rows[e].push_back(Table::Num(res[e].ape));
    }
    for (auto& r : rows) table.AddRow(std::move(r));
    std::printf("-- %s --\n", venue);
    table.Print();
    table.MaybeWriteCsv(std::string("table6_") + venue);
    std::printf("\n");
  }
}

}  // namespace
}  // namespace rmi

int main() {
  rmi::Run();
  return 0;
}
