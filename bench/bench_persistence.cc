// Persistence acceptance: what does the mmap snapshot + delta WAL buy?
//
//   * restart  — cold process start (register every shard, full
//     differentiate -> impute -> fit) vs persisted restart (map the newest
//     snapshot per shard + replay the WAL). Acceptance: >= 10x faster on
//     the 8-shard churn venue.
//   * publish  — RebuildNow wall-clock with persistence off vs on: the
//     snapshot-file write + WAL rotation ride the publish path, and this
//     measures what they cost.
//   * serving  — KNN ranking qps through the heap estimator vs the
//     zero-copy MapSnapshotView over the mapped file (answers verified
//     bit-identical first). Acceptance: view within 5% of heap.
//
//   ./bench_persistence            # full sizes, console table
//   ./bench_persistence --smoke    # CI sizes + BENCH_persistence.json
//   ./bench_persistence --json=out.json
//
// Emits BENCH_persistence.json (schema in docs/REPRODUCE.md) and drops
// sample.rmsnap + sample.rmsnap.crc32c next to it — the byte-deterministic
// snapshot file CI pins as its on-disk-ABI canary.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "clustering/differentiation.h"
#include "common/missing.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/timer.h"
#include "imputers/autocorrelation.h"
#include "positioning/estimators.h"
#include "serving/map_updater.h"
#include "serving/synthetic.h"
#include "store/crc32c.h"
#include "store/snapshot_format.h"

namespace {

using namespace rmi;
namespace fs = std::filesystem;

struct BenchConfig {
  size_t num_shards = 8;
  size_t nx = 24, ny = 16;
  size_t aps_per_floor = 28;
  size_t churn_rounds = 4;  // folded delta windows per shard before restart
  size_t batch = 8;         // observations per window
  size_t stranded = 6;      // WAL-only observations at "crash" time
  size_t queries = 512;
  double serving_seconds = 0.4;  // per-side timing window
  uint64_t seed = 41;
};

serving::EstimatorFactory WknnFactory() {
  return [] { return std::make_unique<positioning::KnnEstimator>(3, true); };
}

struct Venue {
  std::vector<rmap::ShardId> ids;
  std::vector<rmap::RadioMap> maps;
};

Venue MakeVenue(const BenchConfig& cfg) {
  Venue v;
  Rng rng(cfg.seed + 100);
  for (size_t s = 0; s < cfg.num_shards; ++s) {
    v.ids.push_back(rmap::ShardId{int32_t(s / 4), int32_t(s % 4)});
    rmap::RadioMap map = serving::MakeSyntheticServingMap(
        cfg.nx, cfg.ny, cfg.aps_per_floor, cfg.seed + s);
    // A realistic survey base is sparse — that sparsity is exactly what a
    // cold restart pays to re-impute and what the persisted snapshot (which
    // stores the *imputed* state) lets a restart skip.
    rmap::RemoveRandomRssis(&map, 0.5, rng);
    map.set_shard(v.ids.back());
    v.maps.push_back(std::move(map));
  }
  return v;
}

rmap::Record ChurnObservation(const rmap::RadioMap& truth, Rng& rng,
                              double t) {
  rmap::Record obs = truth.record(rng.Index(truth.size()));
  obs.id = rmap::Record::kUnassignedId;
  obs.time = t;
  for (double& v : obs.rssi) {
    if (rng.Bernoulli(0.25)) v = kNull;
  }
  if (obs.NumObserved() == 0) obs.rssi[0] = -70.0;
  return obs;
}

serving::MapUpdaterOptions Options(const BenchConfig& cfg,
                                   const std::string& persist_dir) {
  serving::MapUpdaterOptions opt;
  opt.min_new_observations = 1000000;  // manual RebuildNow only
  opt.seed = cfg.seed;
  opt.persist_dir = persist_dir;
  return opt;
}

/// Seeds the durable state: register the venue, fold `churn_rounds` delta
/// windows per shard, strand `stranded` observations in each WAL.
void SeedPersistedState(const BenchConfig& cfg, const Venue& venue,
                        const cluster::Differentiator& differentiator,
                        const imputers::Imputer& imputer,
                        const std::string& persist_dir) {
  serving::ShardedSnapshotStore store;
  serving::MapUpdater updater(&store, &differentiator, &imputer,
                              WknnFactory(), Options(cfg, persist_dir));
  Rng rng(cfg.seed + 500);
  for (size_t s = 0; s < cfg.num_shards; ++s) {
    updater.RegisterShard(venue.ids[s], venue.maps[s]);
  }
  for (size_t round = 0; round < cfg.churn_rounds; ++round) {
    for (size_t s = 0; s < cfg.num_shards; ++s) {
      for (size_t i = 0; i < cfg.batch; ++i) {
        updater.Ingest(venue.ids[s],
                       ChurnObservation(venue.maps[s], rng,
                                        1000.0 * double(round + 1) + i));
      }
      updater.RebuildNow(venue.ids[s]);
    }
  }
  for (size_t s = 0; s < cfg.num_shards; ++s) {
    for (size_t i = 0; i < cfg.stranded; ++i) {
      updater.Ingest(venue.ids[s],
                     ChurnObservation(venue.maps[s], rng, 90000.0 + i));
    }
  }
}

struct RestartResult {
  double cold_seconds = 0.0;
  double restore_seconds = 0.0;
  double speedup = 0.0;
  size_t wal_records_replayed = 0;
  size_t shards_restored = 0;
};

RestartResult MeasureRestart(const BenchConfig& cfg, const Venue& venue,
                             const cluster::Differentiator& differentiator,
                             const imputers::Imputer& imputer,
                             const std::string& persist_dir) {
  // Median of three runs per side: restart timings on shared runners
  // wobble with page-cache and fsync noise, and the speedup gates CI.
  constexpr size_t kRepeats = 3;
  RestartResult r;
  std::vector<double> cold_s, restore_s;
  for (size_t rep = 0; rep < kRepeats; ++rep) {
    // Cold restart: no durable state — every shard re-imputes from its
    // survey base, exactly what a pre-persistence process start costs.
    serving::ShardedSnapshotStore store;
    serving::MapUpdater updater(&store, &differentiator, &imputer,
                                WknnFactory(), Options(cfg, ""));
    Timer t;
    for (size_t s = 0; s < cfg.num_shards; ++s) {
      updater.RegisterShard(venue.ids[s], venue.maps[s]);
    }
    cold_s.push_back(t.ElapsedSeconds());
  }
  for (size_t rep = 0; rep < kRepeats; ++rep) {
    // Persisted restart: mmap the newest snapshot per shard + WAL replay.
    // Restoring never folds, so the durable state is unchanged and the
    // repeat replays the identical stranded records.
    serving::ShardedSnapshotStore store;
    serving::MapUpdater updater(&store, &differentiator, &imputer,
                                WknnFactory(), Options(cfg, persist_dir));
    Timer t;
    for (size_t s = 0; s < cfg.num_shards; ++s) {
      updater.RegisterShard(venue.ids[s], venue.maps[s]);
    }
    restore_s.push_back(t.ElapsedSeconds());
    const serving::MapUpdaterStats stats = updater.Stats();
    r.wal_records_replayed = stats.wal_records_replayed;
    r.shards_restored = stats.shards_restored;
  }
  r.cold_seconds = Percentile(cold_s, 50.0);
  r.restore_seconds = Percentile(restore_s, 50.0);
  r.speedup =
      r.restore_seconds > 0.0 ? r.cold_seconds / r.restore_seconds : 0.0;
  return r;
}

struct PublishResult {
  double memory_only_ms = 0.0;  // median RebuildNow, persistence off
  double persisted_ms = 0.0;    // median RebuildNow, persistence on
  double overhead_ratio = 0.0;
};

double MedianRebuildMs(const BenchConfig& cfg, const Venue& venue,
                       const cluster::Differentiator& differentiator,
                       const imputers::Imputer& imputer,
                       const std::string& persist_dir) {
  serving::ShardedSnapshotStore store;
  serving::MapUpdater updater(&store, &differentiator, &imputer,
                              WknnFactory(), Options(cfg, persist_dir));
  updater.RegisterShard(venue.ids[0], venue.maps[0]);
  Rng rng(cfg.seed + 900);
  std::vector<double> rebuild_ms;
  for (size_t round = 0; round < cfg.churn_rounds + 2; ++round) {
    for (size_t i = 0; i < cfg.batch; ++i) {
      updater.Ingest(venue.ids[0],
                     ChurnObservation(venue.maps[0], rng,
                                      5000.0 * double(round + 1) + i));
    }
    Timer t;
    updater.RebuildNow(venue.ids[0]);
    rebuild_ms.push_back(t.ElapsedSeconds() * 1e3);
  }
  return Percentile(rebuild_ms, 50.0);
}

struct ServingResult {
  double heap_qps = 0.0;
  double view_qps = 0.0;
  double view_over_heap = 0.0;
  bool bit_identical = false;
};

ServingResult MeasureServing(const BenchConfig& cfg, const Venue& venue,
                             const std::string& shard_dir) {
  ServingResult r;
  std::string error;
  auto mapped = store::MapNewestValid(shard_dir, &error);
  if (mapped == nullptr) {
    std::fprintf(stderr, "cannot map %s: %s\n", shard_dir.c_str(),
                 error.c_str());
    return r;
  }
  const store::MapSnapshotView view = mapped->view();

  // Heap side: a KnnEstimator fitted on the identical reference rows (the
  // restore path's synthesis, done here by hand).
  rmap::RadioMap fit_map(view.num_aps);
  for (size_t row = 0; row < view.num_refs; ++row) {
    rmap::Record rec;
    rec.rssi.assign(view.refs + row * view.num_aps,
                    view.refs + (row + 1) * view.num_aps);
    rec.rp = view.positions[row];
    rec.has_rp = true;
    fit_map.Add(std::move(rec));
  }
  positioning::KnnEstimator heap(3, true);
  Rng rng(cfg.seed + 33);
  heap.Fit(fit_map, rng);

  const la::Matrix queries =
      serving::MakeSyntheticQueries(fit_map, cfg.queries, 0.2, cfg.seed + 7);

  // Correctness first: file-served answers must equal heap-served ones
  // bit-for-bit, or the throughput comparison is meaningless.
  const std::vector<geom::Point> want = heap.EstimateBatch(queries);
  const std::vector<geom::Point> got =
      view.EstimateBatch(queries, heap.k(), heap.weighted());
  r.bit_identical = want.size() == got.size();
  for (size_t i = 0; r.bit_identical && i < want.size(); ++i) {
    r.bit_identical = want[i].x == got[i].x && want[i].y == got[i].y;
  }
  if (!r.bit_identical) return r;

  // Interleave the two sides batch-by-batch so frequency scaling and
  // noisy-neighbor drift land on both equally — the ratio is the gated
  // number, and a sequential A-then-B layout biases it by whatever the
  // machine was doing during B.
  heap.EstimateBatch(queries);                               // warmup
  view.EstimateBatch(queries, heap.k(), heap.weighted());    // warmup
  double heap_seconds = 0.0, view_seconds = 0.0;
  size_t batches = 0;
  while (heap_seconds + view_seconds < 2.0 * cfg.serving_seconds) {
    Timer th;
    heap.EstimateBatch(queries);
    heap_seconds += th.ElapsedSeconds();
    Timer tv;
    view.EstimateBatch(queries, heap.k(), heap.weighted());
    view_seconds += tv.ElapsedSeconds();
    ++batches;
  }
  const double rows = double(batches) * double(queries.rows());
  r.heap_qps = heap_seconds > 0.0 ? rows / heap_seconds : 0.0;
  r.view_qps = view_seconds > 0.0 ? rows / view_seconds : 0.0;
  r.view_over_heap = r.heap_qps > 0.0 ? r.view_qps / r.heap_qps : 0.0;
  return r;
}

struct SampleFile {
  size_t bytes = 0;
  uint32_t crc = 0;
};

/// Copies shard 0's newest snapshot next to the bench output as the CI
/// ABI-canary artifact, plus a sidecar with its CRC32C.
SampleFile EmitSampleArtifact(const std::string& shard_dir) {
  SampleFile sample;
  const std::vector<std::string> files = store::ListSnapshotFiles(shard_dir);
  if (files.empty()) return sample;
  std::ifstream in(files[0], std::ios::binary);
  const std::string bytes((std::istreambuf_iterator<char>(in)), {});
  sample.bytes = bytes.size();
  sample.crc = store::Crc32c(bytes.data(), bytes.size());
  std::ofstream out("sample.rmsnap", std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), std::streamsize(bytes.size()));
  std::FILE* f = std::fopen("sample.rmsnap.crc32c", "w");
  if (f != nullptr) {
    std::fprintf(f, "%08x  %zu  sample.rmsnap\n", sample.crc, sample.bytes);
    std::fclose(f);
  }
  return sample;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
      if (json_path.empty()) json_path = "BENCH_persistence.json";
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    }
  }

  BenchConfig cfg;
  if (smoke) {
    cfg.nx = 24;
    cfg.ny = 16;
    cfg.aps_per_floor = 28;
    cfg.churn_rounds = 2;
    cfg.queries = 256;
    cfg.serving_seconds = 0.25;
  }

  std::printf("=== persistence: mmap snapshot + delta WAL — %zu shards, "
              "%zux%zu refs/shard, %zu churn rounds ===\n",
              cfg.num_shards, cfg.nx, cfg.ny, cfg.churn_rounds);

  const Venue venue = MakeVenue(cfg);
  cluster::MarOnlyDifferentiator differentiator;
  imputers::MiceImputer imputer;

  const std::string persist_root =
      (fs::temp_directory_path() / "rmi_bench_persistence").string();
  fs::remove_all(persist_root);
  SeedPersistedState(cfg, venue, differentiator, imputer, persist_root);

  const RestartResult restart =
      MeasureRestart(cfg, venue, differentiator, imputer, persist_root);
  std::printf("restart: cold %.3f s, mmap+replay %.3f s -> %.1fx "
              "(%zu WAL records replayed, %zu/%zu shards restored)\n",
              restart.cold_seconds, restart.restore_seconds, restart.speedup,
              restart.wal_records_replayed, restart.shards_restored,
              cfg.num_shards);

  // Publish cost on a private scratch dir (the canary state above must not
  // absorb these rebuilds).
  const std::string publish_root =
      (fs::temp_directory_path() / "rmi_bench_persistence_pub").string();
  fs::remove_all(publish_root);
  PublishResult publish;
  publish.memory_only_ms =
      MedianRebuildMs(cfg, venue, differentiator, imputer, "");
  publish.persisted_ms =
      MedianRebuildMs(cfg, venue, differentiator, imputer, publish_root);
  publish.overhead_ratio = publish.memory_only_ms > 0.0
                               ? publish.persisted_ms / publish.memory_only_ms
                               : 0.0;
  std::printf("publish-to-visible: memory-only %.2f ms, persisted %.2f ms "
              "(x%.3f)\n",
              publish.memory_only_ms, publish.persisted_ms,
              publish.overhead_ratio);

  const std::string shard0_dir =
      persist_root + "/b" + std::to_string(venue.ids[0].building) + "_f" +
      std::to_string(venue.ids[0].floor);
  const ServingResult serving = MeasureServing(cfg, venue, shard0_dir);
  if (!serving.bit_identical) {
    std::fprintf(stderr,
                 "FATAL: zero-copy view answers differ from the heap "
                 "estimator\n");
    return 1;
  }
  std::printf("serving: heap %.0f qps, zero-copy view %.0f qps "
              "(view/heap %.3f, answers bit-identical)\n",
              serving.heap_qps, serving.view_qps, serving.view_over_heap);

  const SampleFile sample = EmitSampleArtifact(shard0_dir);
  std::printf("sample.rmsnap: %zu bytes, crc32c %08x\n", sample.bytes,
              sample.crc);

  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(
        f,
        "{\n"
        "  \"config\": {\"num_shards\": %zu, \"rps_per_shard\": %zu,"
        " \"aps_per_shard\": %zu, \"churn_rounds\": %zu, \"batch\": %zu,"
        " \"stranded\": %zu, \"queries\": %zu},\n"
        "  \"restart\": {\"cold_seconds\": %.4f, \"restore_seconds\": %.4f,"
        " \"speedup\": %.2f, \"wal_records_replayed\": %zu,"
        " \"shards_restored\": %zu},\n"
        "  \"publish\": {\"memory_only_ms\": %.3f, \"persisted_ms\": %.3f,"
        " \"overhead_ratio\": %.3f},\n"
        "  \"serving\": {\"heap_qps\": %.1f, \"view_qps\": %.1f,"
        " \"view_over_heap\": %.4f, \"bit_identical\": %s},\n"
        "  \"file\": {\"bytes\": %zu, \"crc32c\": \"%08x\"},\n",
        cfg.num_shards, cfg.nx * cfg.ny, cfg.aps_per_floor, cfg.churn_rounds,
        cfg.batch, cfg.stranded, cfg.queries, restart.cold_seconds,
        restart.restore_seconds, restart.speedup,
        restart.wal_records_replayed, restart.shards_restored,
        publish.memory_only_ms, publish.persisted_ms, publish.overhead_ratio,
        serving.heap_qps, serving.view_qps, serving.view_over_heap,
        serving.bit_identical ? "true" : "false", sample.bytes, sample.crc);
    rmi::bench::WriteObsMetricsJson(f);
    rmi::bench::WriteHardwareJson(f, 1);
    std::fprintf(f, "\n}\n");
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  }

  if (restart.speedup < 10.0) {
    std::fprintf(stderr,
                 "WARNING: restart speedup %.1fx below the 10x acceptance "
                 "bar\n",
                 restart.speedup);
  }
  if (serving.view_over_heap < 0.95) {
    std::fprintf(stderr,
                 "WARNING: view qps %.3fx of heap, below the 0.95 "
                 "acceptance bar\n",
                 serving.view_over_heap);
  }
  return 0;
}
