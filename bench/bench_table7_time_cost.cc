// Table VII: data-imputation wall-clock cost per imputer (google-benchmark,
// one iteration per imputer on each venue — imputation is an offline,
// run-once procedure).
//
// Paper shape: LI < SL << MICE ~ BRITS ~ *-BiSIM < SSGAN < MF (MF slowest:
// SGD convergence stalls under extreme sparsity). Absolute values are not
// comparable to the paper's GPU server; the relative ordering is.
#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "eval/pipeline.h"

namespace rmi {
namespace {

struct Shared {
  survey::SurveyDataset kaide;
  survey::SurveyDataset wanda;
  eval::BenchEnv env;

  Shared()
      : kaide(survey::MakeKaideDataset(
            bench::EnvWithDefaults(0.12, 15).scale)),
        wanda(survey::MakeWandaDataset(
            bench::EnvWithDefaults(0.12, 15).scale)),
        env(bench::EnvWithDefaults(0.12, 15)) {}
};

Shared& shared() {
  static Shared s;
  return s;
}

void BM_Impute(benchmark::State& state, const std::string& venue,
               const std::string& diff_name, const std::string& imp_name) {
  const auto& ds = venue == "Kaide" ? shared().kaide : shared().wanda;
  for (auto _ : state) {
    auto diff = eval::MakeDifferentiator(diff_name, &ds.venue);
    auto imputer = eval::MakeImputer(imp_name, ds.venue, shared().env);
    Rng rng(7);
    auto imputed = eval::DifferentiateAndImpute(ds.map, *diff, *imputer, rng);
    benchmark::DoNotOptimize(imputed);
  }
}

void RegisterAll() {
  struct Config {
    const char* label;
    const char* diff;
    const char* imp;
  };
  const std::vector<Config> configs = {
      {"LI", "MNAR-only", "LI"},      {"SL", "MNAR-only", "SL"},
      {"MICE", "TopoAC", "MICE"},     {"MF", "TopoAC", "MF"},
      {"BRITS", "TopoAC", "BRITS"},   {"SSGAN", "TopoAC", "SSGAN"},
      {"D-BiSIM", "DasaKM", "BiSIM"}, {"T-BiSIM", "TopoAC", "BiSIM"},
  };
  for (const char* venue : {"Kaide", "Wanda"}) {
    for (const auto& c : configs) {
      benchmark::RegisterBenchmark(
          (std::string("TableVII/") + venue + "/" + c.label).c_str(),
          [venue, c](benchmark::State& st) {
            BM_Impute(st, venue, c.diff, c.imp);
          })
          ->Unit(benchmark::kMillisecond)
          ->Iterations(1);
    }
  }
}

}  // namespace
}  // namespace rmi

int main(int argc, char** argv) {
  std::printf("=== Table VII — imputation time cost (relative ordering; "
              "paper unit: minutes on a GPU server) ===\n");
  rmi::RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
