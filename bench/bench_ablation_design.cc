// Design-choice ablations beyond the paper's Figs. 17-18 — the knobs
// DESIGN.md calls out:
//   * sequence length T (the paper tunes T = 5);
//   * latent size (the paper uses 64; we default to a CPU-scale 24);
//   * the location_weight that makes the clustering sample features
//     commensurate (Algorithm 2 concatenates raw meters; we scale them).
// Each sweep reports T-BiSIM APE with C = WKNN on Kaide.
#include "bench/bench_common.h"
#include "bisim/bisim.h"
#include "clustering/strategies.h"
#include "eval/pipeline.h"

namespace rmi {
namespace {

void Run() {
  const auto env = bench::EnvWithDefaults(/*scale=*/0.12, /*epochs=*/18);
  bench::Banner("Design ablations", "seq length / latent size / "
                "location weight (T-BiSIM + WKNN, Kaide)", env);
  const auto ds = bench::MakeDataset("Kaide", env.scale);
  auto topo = eval::MakeDifferentiator("TopoAC", &ds.venue);

  {
    Table t({"sequence length T", "APE (m)"});
    for (size_t seq_len : {2, 5, 8, 12}) {
      bisim::BiSimConfig cfg = eval::DefaultBiSimConfig(ds.venue, env);
      cfg.seq_len = seq_len;
      bisim::BiSimImputer imputer(cfg);
      auto wknn = eval::MakeEstimator("WKNN");
      t.AddRow({std::to_string(seq_len),
                Table::Num(bench::MeanApe(ds.map, *topo, imputer, *wknn, 210,
                                          /*repeats=*/2))});
    }
    std::printf("-- sequence length (paper-tuned optimum: 5) --\n");
    t.Print();
    t.MaybeWriteCsv("ablation_seq_len");
    std::printf("\n");
  }

  {
    Table t({"latent size", "APE (m)"});
    for (size_t hidden : {8, 24, 48}) {
      bisim::BiSimConfig cfg = eval::DefaultBiSimConfig(ds.venue, env);
      cfg.hidden = hidden;
      cfg.attention_hidden = hidden;
      bisim::BiSimImputer imputer(cfg);
      auto wknn = eval::MakeEstimator("WKNN");
      t.AddRow({std::to_string(hidden),
                Table::Num(bench::MeanApe(ds.map, *topo, imputer, *wknn, 220,
                                          /*repeats=*/2))});
    }
    std::printf("-- latent size (paper: 64 on GPU) --\n");
    t.Print();
    t.MaybeWriteCsv("ablation_latent");
    std::printf("\n");
  }

  {
    Table t({"location weight", "APE (m)"});
    for (double w : {0.0, 0.05, 0.1, 0.3}) {
      auto diff = std::make_shared<cluster::ClusteringDifferentiator>(
          std::make_shared<cluster::TopoACClusterer>(&ds.venue.walls),
          /*eta=*/0.1, /*location_weight=*/w);
      auto bisim = eval::MakeImputer("BiSIM", ds.venue, env);
      auto wknn = eval::MakeEstimator("WKNN");
      t.AddRow({Table::Num(w, 2),
                Table::Num(bench::MeanApe(ds.map, *diff, *bisim, *wknn, 230,
                                          /*repeats=*/2))});
    }
    std::printf("-- clustering location weight (Algorithm 2 sample "
                "construction) --\n");
    t.Print();
    t.MaybeWriteCsv("ablation_location_weight");
  }
}

}  // namespace
}  // namespace rmi

int main() {
  rmi::Run();
  return 0;
}
