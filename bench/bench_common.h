// Shared helpers for the paper-reproduction bench binaries.
//
// Every bench prints the corresponding paper table/figure as an aligned
// console table (and mirrors it to CSV when RMI_BENCH_CSV_DIR is set).
// Sizing knobs: RMI_BENCH_SCALE / RMI_BENCH_EPOCHS override each bench's
// built-in defaults (benches that sweep many configurations use smaller
// defaults so the whole harness stays laptop-friendly).
#ifndef RMI_BENCH_BENCH_COMMON_H_
#define RMI_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/table.h"
#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "eval/factories.h"
#include "eval/pipeline.h"
#include "survey/survey.h"

namespace rmi::bench {

/// Bench sizing with per-bench fallbacks (env still wins).
inline eval::BenchEnv EnvWithDefaults(double scale, size_t epochs) {
  eval::BenchEnv env;
  env.scale = scale;
  env.epochs = epochs;
  if (const char* s = std::getenv("RMI_BENCH_SCALE"); s != nullptr && *s) {
    env.scale = std::atof(s);
  }
  if (const char* s = std::getenv("RMI_BENCH_EPOCHS"); s != nullptr && *s) {
    env.epochs = static_cast<size_t>(std::atoi(s));
  }
  return env;
}

/// Dataset for a venue preset by name ("Kaide", "Wanda", "Longhu").
inline survey::SurveyDataset MakeDataset(const std::string& venue,
                                         double scale) {
  if (venue == "Kaide") return survey::MakeKaideDataset(scale);
  if (venue == "Wanda") return survey::MakeWandaDataset(scale);
  return survey::MakeLonghuDataset(scale);
}

/// Header banner shared by all benches.
inline void Banner(const char* exp_id, const char* what,
                   const eval::BenchEnv& env) {
  std::printf("=== %s — %s ===\n", exp_id, what);
  std::printf("(venue scale %.2f, neural epochs %zu; override with "
              "RMI_BENCH_SCALE / RMI_BENCH_EPOCHS)\n\n",
              env.scale, env.epochs);
}

/// Test-split sizing for benches. The paper holds out 10% of the
/// observed-RP records; at bench scale that is only a handful of points, so
/// we hold out 30% to keep APE estimates stable (both the proposed methods
/// and the baselines see the identical protocol).
inline constexpr double kBenchTestFraction = 0.3;

/// Average APE of (differentiator, imputer, WKNN) over `repeats` test
/// splits (seeds base_seed..base_seed+repeats-1).
inline double MeanApe(const rmap::RadioMap& map,
                      const cluster::Differentiator& diff,
                      const imputers::Imputer& imputer,
                      positioning::LocationEstimator& estimator,
                      uint64_t base_seed, size_t repeats = 1) {
  // The repeats are fully independent pipeline runs (each seeds its own
  // Rng and fits a private clone of the estimator), so they fan out over
  // a pool; summing the pre-sized slots in repeat order keeps the result
  // identical to the serial loop.
  std::vector<double> apes(repeats);
  ThreadPool pool(std::min(ThreadPool::DefaultThreads(),
                           std::max<size_t>(1, repeats)));
  pool.ParallelFor(repeats, [&](size_t /*worker*/, size_t r) {
    eval::PipelineOptions opt;
    opt.seed = base_seed + r;
    opt.test_fraction = kBenchTestFraction;
    auto private_estimator = estimator.Clone();
    apes[r] = eval::RunPipeline(map, diff, imputer, *private_estimator, opt).ape;
  });
  double sum = 0.0;
  for (double a : apes) sum += a;
  return sum / static_cast<double>(repeats);
}

/// CPU model string from /proc/cpuinfo ("unknown" off Linux or on parse
/// failure), sanitized for direct embedding in a JSON string literal.
inline std::string CpuModelName() {
  std::string model = "unknown";
  if (std::FILE* f = std::fopen("/proc/cpuinfo", "r")) {
    char line[512];
    while (std::fgets(line, sizeof(line), f) != nullptr) {
      if (std::strncmp(line, "model name", 10) != 0) continue;
      if (const char* colon = std::strchr(line, ':')) {
        model.assign(colon + 1);
        while (!model.empty() && model.front() == ' ') model.erase(0, 1);
        while (!model.empty() &&
               (model.back() == '\n' || model.back() == ' ')) {
          model.pop_back();
        }
      }
      break;
    }
    std::fclose(f);
  }
  if (model.empty()) model = "unknown";
  for (char& c : model) {
    if (c == '"' || c == '\\') c = '\'';
  }
  return model;
}

/// Writes the shared `"hardware"` JSON object (one line, no trailing
/// comma): the machine's hardware_concurrency, the thread count the bench
/// actually ran with, and the CPU model. Every BENCH_*.json carries it so
/// numbers are never compared across machines blind — and the regression
/// gate reads hardware_concurrency to skip multicore-scaling assertions on
/// small runners.
inline void WriteHardwareJson(std::FILE* f, size_t bench_threads) {
  std::fprintf(f,
               "  \"hardware\": {\"hardware_concurrency\": %u, "
               "\"bench_threads\": %zu, \"cpu_model\": \"%s\"}",
               std::thread::hardware_concurrency(), bench_threads,
               CpuModelName().c_str());
}

/// Writes the shared `"metrics"` JSON member (one line, trailing comma):
/// the observability registry's DumpJson() snapshot at the moment the
/// bench finishes. Every BENCH_*.json carries it so a regression report
/// can be cross-checked against what the engine actually did (batches
/// coalesced, rebuild phases, pool steals) instead of just the headline
/// qps. DumpJson() already emits a complete JSON object.
inline void WriteObsMetricsJson(std::FILE* f) {
  std::fprintf(f, "  \"metrics\": %s,\n", obs::DumpJson().c_str());
}

}  // namespace rmi::bench

#endif  // RMI_BENCH_BENCH_COMMON_H_
