// Serving-layer load generator: batched KNN matching vs the scalar loop,
// spatial-index pruning, and the LocalizationServer under concurrent
// clients with hot-swaps mid-load.
//
//   ./bench_serving_throughput            # full sizes, console table
//   ./bench_serving_throughput --smoke    # CI sizes + BENCH_serving.json
//   ./bench_serving_throughput --json=out.json
//   ./bench_serving_throughput --kernel=quant   # sweep one ranking kernel
//
// The headline number: EstimateBatch (one ranking pass over the reference
// matrix + exact rescore of the top candidates) vs per-query Estimate on a
// 2k-RP map at batch size 64. By default all three ranking kernels
// (gemm / fastnn / quant) are swept and their qps recorded side by side in
// the JSON, so the kernel trajectory stays comparable across PRs;
// --kernel=NAME restricts the sweep.
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "common/rng.h"
#include "common/timer.h"
#include "geometry/geometry.h"
#include "positioning/estimators.h"
#include "serving/batch_localizer.h"
#include "serving/server.h"
#include "serving/snapshot.h"
#include "serving/spatial_index.h"
#include "serving/synthetic.h"

namespace {

using namespace rmi;
using serving::MakeSyntheticQueries;
using serving::MakeSyntheticServingMap;
using serving::MatrixRow;

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_path;
  std::string kernel_filter;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
      if (json_path.empty()) json_path = "BENCH_serving.json";
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else if (std::strncmp(argv[i], "--kernel=", 9) == 0) {
      kernel_filter = argv[i] + 9;
      if (kernel_filter != "gemm" && kernel_filter != "fastnn" &&
          kernel_filter != "quant") {
        std::fprintf(stderr,
                     "unknown --kernel=%s (expected gemm|fastnn|quant)\n",
                     kernel_filter.c_str());
        return 2;
      }
    }
  }

  // 2000 reference points, ~100 APs — the acceptance configuration.
  const size_t nx = 50, ny = 40, num_aps = 96;
  const size_t batch_size = 64;
  const size_t num_queries = smoke ? 2048 : 8192;
  std::printf("=== serving throughput — %zu-RP map, %zu APs, batch %zu ===\n",
              nx * ny, num_aps, batch_size);

  const rmap::RadioMap map = MakeSyntheticServingMap(nx, ny, num_aps, 11);
  Rng rng(7);
  auto snapshot = serving::BuildSnapshot(
      map, std::make_unique<positioning::KnnEstimator>(5, true), rng);
  const auto* knn = dynamic_cast<const positioning::KnnEstimator*>(
      snapshot->estimator.get());
  const la::Matrix queries = MakeSyntheticQueries(map, num_queries, 0.0, 21);
  const la::Matrix partial_queries = MakeSyntheticQueries(map, num_queries, 0.3, 22);

  // --- scalar loop vs batched ranking kernels ---------------------------
  double scalar_qps = 0.0, batch_qps = 0.0, partial_batch_qps = 0.0;
  {
    std::vector<double> q(num_aps);
    Timer t;
    geom::Point sink;
    for (size_t i = 0; i < num_queries; ++i) {
      const double* src = queries.data().data() + i * num_aps;
      std::copy(src, src + num_aps, q.begin());
      sink = sink + knn->Estimate(q);
    }
    scalar_qps = double(num_queries) / t.ElapsedSeconds();
    std::printf("scalar Estimate loop:        %10.0f qps   (sink %.3f)\n",
                scalar_qps, sink.x);
  }
  // Kernel sweep on a private estimator (the snapshot's stays on the
  // serving default). Every kernel returns bit-identical answers — the
  // sink printout is the cheap cross-check.
  struct KernelRun {
    const char* name;
    positioning::RankingKernel kernel;
    double qps = 0.0;
    bool ran = false;
  };
  KernelRun sweep[] = {
      {"gemm", positioning::RankingKernel::kGemm, 0.0, false},
      {"fastnn", positioning::RankingKernel::kFastNN, 0.0, false},
      {"quant", positioning::RankingKernel::kQuant, 0.0, false},
  };
  positioning::KnnEstimator sweep_knn(knn->k(), knn->weighted());
  {
    Rng fit_rng(7);
    sweep_knn.Fit(map, fit_rng);
  }
  for (KernelRun& run : sweep) {
    if (!kernel_filter.empty() && kernel_filter != run.name) continue;
    sweep_knn.set_ranking_kernel(run.kernel);
    Timer t;
    geom::Point sink;
    for (size_t off = 0; off < num_queries; off += batch_size) {
      const la::Matrix block =
          queries.SliceRows(off, std::min(off + batch_size, num_queries));
      for (const geom::Point& p : sweep_knn.EstimateBatch(block)) {
        sink = sink + p;
      }
    }
    run.qps = double(num_queries) / t.ElapsedSeconds();
    run.ran = true;
    std::printf("EstimateBatch (%-6s):      %10.0f qps   (sink %.3f)\n",
                run.name, run.qps, sink.x);
    // The trajectory key tracks the serving default path (quant), or the
    // one swept kernel when --kernel narrows the run.
    if (run.kernel == positioning::RankingKernel::kQuant ||
        !kernel_filter.empty()) {
      batch_qps = run.qps;
    }
  }
  {
    // The partial-null measurement uses the same kernel as batch_qps (the
    // serving default, or the one --kernel selected), so the JSON never
    // mixes kernels between the two fields.
    positioning::RankingKernel partial_kernel =
        positioning::RankingKernel::kQuant;
    for (const KernelRun& run : sweep) {
      if (run.ran && kernel_filter == run.name) partial_kernel = run.kernel;
    }
    sweep_knn.set_ranking_kernel(partial_kernel);
    Timer t;
    for (size_t off = 0; off < num_queries; off += batch_size) {
      const la::Matrix block = partial_queries.SliceRows(
          off, std::min(off + batch_size, num_queries));
      sweep_knn.EstimateBatch(block);
    }
    partial_batch_qps = double(num_queries) / t.ElapsedSeconds();
    std::printf("EstimateBatch (30%% nulls):   %10.0f qps\n",
                partial_batch_qps);
  }
  const double speedup = batch_qps / scalar_qps;
  std::printf("batch vs scalar speedup:     %10.2fx\n\n", speedup);

  // --- spatial-index pruned single queries ------------------------------
  double pruned_qps = 0.0, scored_fraction = 0.0;
  {
    const size_t n = snapshot->num_refs();
    size_t scored = 0;
    Timer t;
    for (size_t i = 0; i < num_queries; ++i) {
      const std::vector<double> q = MatrixRow(queries, i);
      snapshot->index.Search(snapshot->fingerprints(), q, knn->k());
      scored += serving::SpatialIndex::last_scored();
    }
    pruned_qps = double(num_queries) / t.ElapsedSeconds();
    scored_fraction = double(scored) / double(num_queries * n);
    std::printf("index-pruned single query:   %10.0f qps   "
                "(%.1f%% of rows scored)\n\n",
                pruned_qps, 100.0 * scored_fraction);
  }

  // --- server under concurrent clients with hot-swaps -------------------
  serving::MapSnapshotStore store(snapshot);
  Rng swap_rng(77);
  auto alternate = serving::BuildSnapshot(
      map, std::make_unique<positioning::KnnEstimator>(5, true), swap_rng,
      serving::SnapshotOptions{/*version=*/1, /*cell_size_m=*/6.0});
  serving::ServerOptions server_opt;
  server_opt.max_batch = batch_size;
  server_opt.max_wait_us = 200.0;
  server_opt.num_workers = 2;
  serving::ServerStats stats;
  size_t hot_swaps = 0;
  {
    serving::LocalizationServer server(&store, server_opt);
    const size_t num_clients = 4;
    const size_t per_client = num_queries / num_clients;
    std::vector<std::thread> clients;
    for (size_t c = 0; c < num_clients; ++c) {
      clients.emplace_back([&, c] {
        // Windowed submission (16 in flight per client): keeps the
        // coalescer fed without measuring pure queue backlog as latency.
        const size_t window = 16;
        std::vector<std::future<geom::Point>> inflight;
        inflight.reserve(window);
        for (size_t i = 0; i < per_client; ++i) {
          inflight.push_back(
              server.Submit(MatrixRow(partial_queries, (c * per_client + i))));
          if (inflight.size() == window) {
            for (auto& f : inflight) f.get();
            inflight.clear();
          }
        }
        for (auto& f : inflight) f.get();
      });
    }
    // Publisher: re-publish alternating snapshots while clients hammer.
    std::thread publisher([&] {
      for (int s = 0; s < 20; ++s) {
        store.Publish(s % 2 == 0 ? alternate : snapshot);
        ++hot_swaps;
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
    });
    for (auto& t : clients) t.join();
    publisher.join();
    server.Stop();
    stats = server.Stats();
  }
  std::printf("server (4 clients, %zu hot-swaps in flight):\n", hot_swaps);
  std::printf("  completed %zu   qps %.0f   mean batch %.1f\n",
              stats.completed, stats.qps, stats.mean_batch_size);
  std::printf("  latency p50 %.0f us   p95 %.0f us   p99 %.0f us\n",
              stats.p50_latency_us, stats.p95_latency_us,
              stats.p99_latency_us);

  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(
        f,
        "{\n"
        "  \"map\": {\"rps\": %zu, \"aps\": %zu},\n"
        "  \"batch_size\": %zu,\n"
        "  \"scalar_qps\": %.1f,\n"
        "  \"batch_qps\": %.1f,\n"
        "  \"batch_speedup\": %.3f,\n"
        "  \"partial_batch_qps\": %.1f,\n",
        nx * ny, num_aps, batch_size, scalar_qps, batch_qps, speedup,
        partial_batch_qps);
    std::fprintf(f, "  \"kernels\": {");
    bool first = true;
    for (const KernelRun& run : sweep) {
      if (!run.ran) continue;
      std::fprintf(f, "%s\"%s\": %.1f", first ? "" : ", ", run.name,
                   run.qps);
      first = false;
    }
    std::fprintf(f, "},\n");
    std::fprintf(
        f,
        "  \"index_pruned_qps\": %.1f,\n"
        "  \"index_scored_fraction\": %.4f,\n"
        "  \"server\": {\"qps\": %.1f, \"p50_us\": %.1f, \"p95_us\": %.1f,"
        " \"p99_us\": %.1f, \"mean_batch\": %.2f, \"hot_swaps\": %zu},\n",
        pruned_qps, scored_fraction, stats.qps, stats.p50_latency_us,
        stats.p95_latency_us, stats.p99_latency_us, stats.mean_batch_size,
        hot_swaps);
    rmi::bench::WriteObsMetricsJson(f);
    rmi::bench::WriteHardwareJson(f, server_opt.num_workers);
    std::fprintf(f, "\n}\n");
    std::fclose(f);
    std::printf("\nwrote %s\n", json_path.c_str());
  }
  if (speedup < 3.0) {
    std::fprintf(stderr,
                 "WARNING: batch speedup %.2fx below the 3x acceptance bar\n",
                 speedup);
  }
  return 0;
}
