// Trace-driven venue-scale soak: walker sessions replayed open-loop
// against the full serving stack with mid-run churn, SLOs scraped from the
// observability registry.
//
//   ./bench_soak               # full soak: 50 shards, ~1M queries, churn
//   ./bench_soak --smoke       # CI sizes + BENCH_soak.json
//   ./bench_soak --json=out.json
//   ./bench_soak --scrape=out.txt   # final Prometheus scrape artifact
//
// Emits BENCH_soak.json (schema documented in docs/REPRODUCE.md): offered
// vs achieved load, open-loop latency percentiles (p50/p99/p999), APE vs
// trace ground truth, snapshot-staleness percentiles under churn, and the
// handover/floor-misclassification error rate. The CI gate
// (tools/check_bench_regression.py) holds achieved_qps within ratio bounds
// of bench/baselines/soak.json and enforces absolute ceilings on p999
// latency, staleness, and handover error.
#include <cstdio>
#include <cstring>
#include <string>

#include "bench_common.h"
#include "workload/soak.h"

using namespace rmi;

int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_path;
  std::string scrape_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
      if (json_path.empty()) json_path = "BENCH_soak.json";
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else if (std::strncmp(argv[i], "--scrape=", 9) == 0) {
      scrape_path = argv[i] + 9;
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--json=FILE] "
                           "[--scrape=FILE]\n", argv[0]);
      return 2;
    }
  }

  workload::SoakOptions opt;
  if (smoke) {
    // CI sizes: the same stack and churn schedule, shrunk to finish in a
    // few seconds on a small runner.
    opt.venue.num_buildings = 4;
    opt.venue.floors_per_building = 3;
    opt.walkers.num_walkers = 128;
    opt.walkers.duration_s = 120.0;
    opt.arrivals.duration_s = 120.0;
    opt.arrivals.expected_total = 60000.0;
    opt.time_scale = 8.0;  // ~15 s of wall pacing
  } else {
    // The acceptance-bar soak: >= 50 shards, ~1M queries, full churn.
    opt.venue.num_buildings = 10;
    opt.venue.floors_per_building = 5;
    opt.walkers.num_walkers = 512;
    opt.walkers.duration_s = 300.0;
    opt.arrivals.duration_s = 300.0;
    opt.arrivals.expected_total = 1000000.0;
    opt.time_scale = 5.0;  // ~60 s of wall pacing
  }

  std::printf("=== soak — trace-driven venue-scale endurance ===\n");
  std::printf("(%zu buildings x %zu floors, %zu walkers, ~%.0f queries "
              "over %.0f virtual s at %.0fx compression)\n\n",
              opt.venue.num_buildings, opt.venue.floors_per_building,
              opt.walkers.num_walkers, opt.arrivals.expected_total,
              opt.arrivals.duration_s, opt.time_scale);

  const workload::SoakReport r = workload::RunSoak(opt);

  std::printf("load:      %zu scheduled, %zu ok, %zu rejected, %zu "
              "unroutable in %.1f s (%.0f qps)\n",
              r.scheduled, r.ok, r.rejected, r.unroutable, r.wall_seconds,
              r.achieved_qps);
  std::printf("latency:   p50 %.2f ms   p99 %.2f ms   p999 %.2f ms "
              "(open-loop: scheduled arrival -> answer)\n",
              r.p50_ms, r.p99_ms, r.p999_ms);
  std::printf("accuracy:  APE p50 %.2f m   p95 %.2f m\n", r.ape_p50_m,
              r.ape_p95_m);
  std::printf("handover:  error rate %.4f (%zu wrong-shard answers; %zu "
              "session switches vs %zu true transitions)\n",
              r.handover_error_rate, r.wrong_shard, r.session_switches,
              r.true_transitions);
  std::printf("freshness: staleness p50 %.1f ms   p95 %.1f ms\n",
              r.staleness_p50_ms, r.staleness_p95_ms);
  std::printf("churn:     %zu rebuilds (%zu failed), %zu publishes, %zu "
              "dimension changes, %zu resurvey obs\n",
              r.rebuilds_completed, r.rebuild_failures, r.publishes,
              r.dimension_changes, r.resurvey_observations);

  if (!scrape_path.empty()) {
    std::FILE* f = std::fopen(scrape_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", scrape_path.c_str());
      return 1;
    }
    const std::string scrape = obs::DumpPrometheusText();
    std::fwrite(scrape.data(), 1, scrape.size(), f);
    std::fclose(f);
    std::printf("\nwrote %s\n", scrape_path.c_str());
  }

  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(
        f,
        "{\n"
        "  \"venue\": {\"shards\": %zu, \"aps\": %zu, \"walkers\": %zu},\n"
        "  \"load\": {\"scheduled\": %zu, \"sent\": %zu, \"ok\": %zu,"
        " \"rejected\": %zu, \"unroutable\": %zu, \"wall_seconds\": %.2f,"
        " \"achieved_qps\": %.1f},\n"
        "  \"slo\": {\"p50_ms\": %.3f, \"p99_ms\": %.3f, \"p999_ms\": %.3f,"
        " \"ape_p50_m\": %.3f, \"ape_p95_m\": %.3f,"
        " \"staleness_p50_ms\": %.2f, \"staleness_p95_ms\": %.2f,"
        " \"handover_error_rate\": %.5f},\n"
        "  \"handover\": {\"wrong_shard\": %zu, \"session_switches\": %zu,"
        " \"true_transitions\": %zu},\n"
        "  \"churn\": {\"rebuilds_completed\": %zu, \"rebuild_failures\":"
        " %zu, \"publishes\": %zu, \"dimension_changes\": %zu,"
        " \"resurvey_observations\": %zu},\n",
        r.num_shards, r.num_aps_initial, opt.walkers.num_walkers,
        r.scheduled, r.sent, r.ok, r.rejected, r.unroutable, r.wall_seconds,
        r.achieved_qps, r.p50_ms, r.p99_ms, r.p999_ms, r.ape_p50_m,
        r.ape_p95_m, r.staleness_p50_ms, r.staleness_p95_ms,
        r.handover_error_rate, r.wrong_shard, r.session_switches,
        r.true_transitions, r.rebuilds_completed, r.rebuild_failures,
        r.publishes, r.dimension_changes, r.resurvey_observations);
    rmi::bench::WriteObsMetricsJson(f);
    rmi::bench::WriteHardwareJson(f, opt.client_threads);
    std::fprintf(f, "\n}\n");
    std::fclose(f);
    std::printf("\nwrote %s\n", json_path.c_str());
  }

  // Hard sanity: a soak that served nothing, dropped a rebuild, or lost
  // every answer to misrouting is a failed run regardless of the gate.
  if (r.sent != r.scheduled) {
    std::fprintf(stderr, "FAIL: sent %zu != scheduled %zu\n", r.sent,
                 r.scheduled);
    return 1;
  }
  if (r.ok == 0 || r.ok < r.sent * 9 / 10) {
    std::fprintf(stderr, "FAIL: only %zu/%zu queries answered\n", r.ok,
                 r.sent);
    return 1;
  }
  if (r.rebuild_failures != 0) {
    std::fprintf(stderr, "FAIL: %zu rebuild failures\n", r.rebuild_failures);
    return 1;
  }
  if (r.dimension_changes != 2) {
    std::fprintf(stderr, "FAIL: expected 2 dimension changes, got %zu\n",
                 r.dimension_changes);
    return 1;
  }
  if (r.handover_error_rate > 0.10) {
    std::fprintf(stderr, "FAIL: handover error rate %.4f above 0.10\n",
                 r.handover_error_rate);
    return 1;
  }
  return 0;
}
