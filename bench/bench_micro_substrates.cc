// Micro-benchmarks of the substrates (google-benchmark): dense matmul,
// k-means, convex hull, TopoAC topological checks, WKNN queries, and one
// BiSIM forward/backward step. Useful for tracking performance regressions
// in the hand-rolled numeric kernels.
#include <benchmark/benchmark.h>

#include "bisim/bisim.h"
#include "clustering/differentiation.h"
#include "clustering/kmeans.h"
#include "clustering/strategies.h"
#include "geometry/geometry.h"
#include "la/matrix.h"
#include "positioning/estimators.h"
#include "survey/survey.h"

namespace rmi {
namespace {

void BM_MatMul(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(1);
  la::Matrix a = la::Matrix::Random(n, n, rng);
  la::Matrix b = la::Matrix::Random(n, n, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.MatMul(b));
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_MatMul)->Arg(16)->Arg(64)->Arg(128);

void BM_CholeskySolve(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(2);
  la::Matrix m = la::Matrix::Random(n, n, rng);
  la::Matrix a = m.Transpose().MatMul(m) + la::Matrix::Identity(n);
  la::Matrix b = la::Matrix::Random(n, 1, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(la::CholeskySolve(a, b));
  }
}
BENCHMARK(BM_CholeskySolve)->Arg(16)->Arg(64);

void BM_ConvexHull(benchmark::State& state) {
  Rng rng(3);
  std::vector<geom::Point> pts;
  for (int i = 0; i < state.range(0); ++i) {
    pts.push_back({rng.Uniform(0, 100), rng.Uniform(0, 100)});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(geom::ConvexHull(pts));
  }
}
BENCHMARK(BM_ConvexHull)->Arg(64)->Arg(1024);

void BM_KMeans(benchmark::State& state) {
  Rng rng(4);
  la::Matrix x = la::Matrix::Random(400, 64, rng);
  cluster::KMeansParams p;
  p.k = static_cast<size_t>(state.range(0));
  p.max_iters = 10;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cluster::KMeans(x, p, rng));
  }
}
BENCHMARK(BM_KMeans)->Arg(4)->Arg(32);

void BM_WknnQuery(benchmark::State& state) {
  const auto ds = survey::MakeKaideDataset(0.08);
  rmap::RadioMap complete = ds.map;
  for (size_t i = 0; i < complete.size(); ++i) {
    auto& r = complete.record(i);
    for (double& v : r.rssi) {
      if (IsNull(v)) v = kMnarFillDbm;
    }
    r.has_rp = true;
  }
  positioning::KnnEstimator wknn(3, true);
  Rng rng(5);
  wknn.Fit(complete, rng);
  const std::vector<double> probe = complete.record(0).rssi;
  for (auto _ : state) {
    benchmark::DoNotOptimize(wknn.Estimate(probe));
  }
}
BENCHMARK(BM_WknnQuery);

void BM_TopoEntityExist(benchmark::State& state) {
  const auto ds = survey::MakeKaideDataset(0.08);
  Rng rng(6);
  std::vector<geom::Point> pts;
  for (int i = 0; i < 40; ++i) {
    pts.push_back({rng.Uniform(0, ds.venue.width),
                   rng.Uniform(0, ds.venue.height)});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(cluster::EntityExist(pts, ds.venue.walls));
  }
}
BENCHMARK(BM_TopoEntityExist);

void BM_BiSimStep(benchmark::State& state) {
  const auto ds = survey::MakeKaideDataset(0.08);
  bisim::BiSimConfig cfg;
  cfg.loc_scale = 1.0 / 57.0;
  Rng rng(7);
  bisim::BiSimModel model(ds.map.num_aps(), cfg, rng);
  cluster::MarOnlyDifferentiator diff;
  Rng drng(8);
  const auto mask = diff.Differentiate(ds.map, drng);
  const auto seqs = bisim::BuildSequences(ds.map, mask, cfg);
  size_t i = 0;
  for (auto _ : state) {
    auto out = model.Forward(seqs[i % seqs.size()], /*compute_loss=*/true);
    out.loss.Backward();
    benchmark::DoNotOptimize(out);
    ++i;
  }
}
BENCHMARK(BM_BiSimStep);

}  // namespace
}  // namespace rmi

BENCHMARK_MAIN();
