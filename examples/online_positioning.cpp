// Online positioning with online fingerprint imputation — the paper's
// Section VII future-work item, implemented as bisim::OnlineBiSimImputer.
//
// Story: the offline radio map is differentiated + imputed once; a trained
// BiSIM model is kept around; at query time, the user's device delivers a
// partial scan (plus a couple of recent scans as temporal context), the
// model completes it, and WKNN estimates the position from the completed
// fingerprint.
#include <cstdio>

#include "bisim/bisim.h"
#include "eval/factories.h"
#include "eval/metrics.h"
#include "eval/pipeline.h"
#include "indoor/ascii_map.h"
#include "survey/survey.h"

int main() {
  using namespace rmi;
  const survey::SurveyDataset ds = survey::MakeKaideDataset(/*scale=*/0.10);
  std::printf("venue map ('#' walls, 'A' APs, 'o' RPs):\n%s\n",
              indoor::RenderVenueAscii(ds.venue,
                                       indoor::AsciiMapOptions{.width_chars = 64})
                  .c_str());

  // Offline: differentiate + fill MNARs + train the online imputer + build
  // the positioning radio map.
  auto diff = eval::MakeDifferentiator("TopoAC", &ds.venue);
  Rng rng(7);
  rmap::RadioMap working = ds.map;
  rmap::MaskMatrix mask = diff->Differentiate(working, rng);
  imputers::FillMnar(&working, &mask);

  eval::BenchEnv env;
  env.epochs = 20;
  bisim::BiSimConfig cfg = eval::DefaultBiSimConfig(ds.venue, env);
  bisim::OnlineBiSimImputer online_imputer(cfg);
  online_imputer.Fit(working, mask, rng);
  std::printf("online imputer trained (final loss %.4f)\n",
              online_imputer.training_loss());

  bisim::BiSimImputer offline_imputer(cfg);
  rmap::RadioMap radio_map = offline_imputer.Impute(working, mask, rng);
  auto wknn = eval::MakeEstimator("WKNN");
  wknn->Fit(radio_map, rng);

  // Online: simulate a user walking; their device scans are sparse (MNAR +
  // MAR mechanisms), the online imputer completes them.
  const radio::PropagationModel model = ds.Model();
  Rng device_rng(99);
  double err_completed = 0.0, err_floorfill = 0.0;
  const int kQueries = 25;
  for (int q = 0; q < kQueries; ++q) {
    const geom::Point truth = ds.venue.rps[device_rng.Index(ds.venue.rps.size())];
    bisim::OnlineBiSimImputer::TimedScan scan;
    scan.rssi.assign(ds.venue.aps.size(), kNull);
    scan.time = 0.0;
    for (size_t ap = 0; ap < ds.venue.aps.size(); ++ap) {
      if (!model.IsObservable(ap, truth)) continue;
      // Simulate a bad scan moment (body shadowing / crowd): the device
      // loses half of the otherwise-audible APs — exactly the situation
      // online imputation is for.
      if (device_rng.Bernoulli(0.5)) continue;
      scan.rssi[ap] = model.SampleRssi(ap, truth, device_rng);
    }
    // Completed fingerprint -> WKNN.
    const auto completed = online_imputer.ImputeFingerprint(scan);
    err_completed += geom::Distance(wknn->Estimate(completed), truth);
    // Naive -100-filled fingerprint -> WKNN.
    std::vector<double> floor = scan.rssi;
    for (double& v : floor) {
      if (IsNull(v)) v = kMnarFillDbm;
    }
    err_floorfill += geom::Distance(wknn->Estimate(floor), truth);
  }
  std::printf("mean positioning error over %d online queries:\n", kQueries);
  std::printf("  -100-filled online fingerprints: %.2f m\n",
              err_floorfill / kQueries);
  std::printf("  BiSIM-completed online fingerprints: %.2f m\n",
              err_completed / kQueries);
  return 0;
}
