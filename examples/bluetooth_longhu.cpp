// Bluetooth scenario (paper Section V-C "Generalizability", Table VIII):
// the same framework on a Bluetooth-beacon venue. Bluetooth beacons are
// weaker and lossier than Wi-Fi APs, so radio maps are sparser and
// positioning errors larger — but the differentiate-then-impute framework
// carries over unchanged.
#include <cstdio>

#include "eval/factories.h"
#include "eval/pipeline.h"
#include "survey/survey.h"

int main() {
  using namespace rmi;
  const survey::SurveyDataset ds = survey::MakeLonghuDataset(/*scale=*/0.2);
  std::printf("Longhu (Bluetooth): %.0f m^2, %zu beacons, %zu records, "
              "%.1f%% missing RSSIs\n",
              ds.venue.FloorArea(), ds.venue.aps.size(), ds.map.size(),
              100.0 * ds.map.MissingRssiRate());

  eval::BenchEnv env;
  env.epochs = 20;
  eval::PipelineOptions opt;
  opt.seed = 2023;

  for (const char* imp_name : {"LI", "BRITS", "BiSIM"}) {
    auto diff = eval::MakeDifferentiator(
        imp_name == std::string("LI") ? "MNAR-only" : "TopoAC", &ds.venue);
    auto imputer = eval::MakeImputer(imp_name, ds.venue, env);
    auto wknn = eval::MakeEstimator("WKNN");
    const auto res = eval::RunPipeline(ds.map, *diff, *imputer, *wknn, opt);
    std::printf("  %-6s APE = %.2f m (impute %.1f s)\n", imp_name, res.ape,
                res.impute_seconds);
  }
  std::printf("Expect LI > BRITS > BiSIM (paper Table VIII ordering).\n");
  return 0;
}
