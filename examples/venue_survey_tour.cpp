// Tour of the data-generation substrate: venue layout, radio propagation,
// the asynchronous Walking Survey Record Table, and the epsilon-merge
// radio-map creation of paper Section II-B.
#include <cstdio>

#include "radio/propagation.h"
#include "survey/survey.h"

int main() {
  using namespace rmi;

  // A small custom venue (not a preset) to show the spec knobs.
  indoor::VenueSpec spec;
  spec.name = "demo-mall";
  spec.width = 40;
  spec.height = 32;
  spec.rooms_x = 3;
  spec.rooms_y = 2;
  spec.hallway_width = 3.0;
  spec.num_aps = 60;
  spec.rp_spacing = 4.5;
  spec.room_visit_fraction = 0.5;
  spec.seed = 11;
  const indoor::Venue venue = indoor::GenerateVenue(spec);
  std::printf("venue '%s': %.0f m^2, %zu rooms, %zu wall polygons, %zu APs, "
              "%zu RPs on %zu survey paths (%.2f RPs / 100 m^2)\n",
              venue.name.c_str(), venue.FloorArea(), venue.rooms.size(),
              venue.walls.size(), venue.aps.size(), venue.rps.size(),
              venue.paths.size(), venue.RpDensityPer100m2());

  // Radio environment: how observable is AP 0 across the venue?
  radio::PropagationParams params;
  radio::PropagationModel model(&venue, params);
  std::printf("AP 0 at (%.1f, %.1f): observable at %.0f%% of RPs "
              "(venue-wide observable fraction %.1f%%)\n",
              venue.aps[0].position.x, venue.aps[0].position.y,
              [&] {
                size_t n = 0;
                for (const auto& rp : venue.rps) n += model.IsObservable(0, rp);
                return 100.0 * double(n) / double(venue.rps.size());
              }(),
              100.0 * model.ObservableFraction());

  // One walked path -> Walking Survey Record Table (paper Table II).
  survey::SurveySpec sspec;
  sspec.rounds = 1;
  Rng rng(3);
  const auto tables = survey::SimulateSurvey(venue, model, sspec, rng);
  const survey::PathRecordTable& first = tables.front();
  std::printf("\nWalking Survey Record Table (path 0, first 8 records):\n");
  std::printf("%8s  %-5s  %s\n", "time", "type", "measurement");
  for (size_t i = 0; i < first.records.size() && i < 8; ++i) {
    const auto& r = first.records[i];
    if (r.is_rp) {
      std::printf("%8.2f  RP     (%.1f, %.1f)\n", r.time, r.rp.x, r.rp.y);
    } else {
      std::printf("%8.2f  RSSI   %zu APs heard, e.g.", r.time, r.rssi.size());
      for (size_t j = 0; j < r.rssi.size() && j < 3; ++j) {
        std::printf(" r%zu:%.0f", r.rssi[j].first, r.rssi[j].second);
      }
      std::printf("\n");
    }
  }

  // Radio-map creation (Section II-B epsilon merge).
  std::vector<geom::Point> positions;
  const auto records = survey::CreateRadioMapRecords(
      first, venue.aps.size(), /*epsilon_s=*/1.0, &positions);
  size_t with_rp = 0;
  for (const auto& r : records) with_rp += r.has_rp;
  std::printf("\nradio-map creation: %zu raw records -> %zu radio map "
              "records (%zu with RP)\n",
              first.records.size(), records.size(), with_rp);

  // Full dataset with ground truth.
  const survey::SurveyDataset ds =
      survey::GenerateDataset(spec, params, sspec);
  std::printf("\nfull dataset: %zu records; ground truth: %zu observed / "
              "%zu MAR / %zu MNAR cells (MAR share of missing: %.2f%%)\n",
              ds.map.size(),
              ds.truth.mask.CountOf(rmap::MaskValue::kObserved),
              ds.truth.mask.CountOf(rmap::MaskValue::kMar),
              ds.truth.mask.CountOf(rmap::MaskValue::kMnar),
              100.0 * ds.truth.mask.MarShareOfMissing());
  return 0;
}
