// The online localization engine end to end: build a snapshot from an
// imputed radio map, serve concurrent partial-fingerprint queries through
// the batching LocalizationServer, and hot-swap a re-imputed snapshot under
// load without dropping a single request — with the observability layer
// on, so shutdown prints the Prometheus scrape and one sampled request
// trace the way a production sidecar would see them.
#include <algorithm>
#include <cstdio>
#include <future>
#include <thread>
#include <vector>

#include "eval/factories.h"
#include "eval/pipeline.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serving/server.h"
#include "serving/snapshot.h"
#include "survey/survey.h"

int main() {
  using namespace rmi;
  // Metrics are on by default; turn on request tracing too (1-in-16 —
  // the demo submits ~120 requests, so a handful get traced).
  obs::Tracer::Global().SetSampleEvery(16);
  const survey::SurveyDataset ds = survey::MakeKaideDataset(/*scale=*/0.12);
  std::printf("venue: %zu APs, %zu survey records (%.0f%% RSSIs missing)\n",
              ds.venue.aps.size(), ds.map.size(),
              100.0 * ds.map.MissingRssiRate());

  // Offline pipeline: differentiate + impute, then freeze a snapshot.
  auto diff = eval::MakeDifferentiator("TopoAC", &ds.venue);
  eval::BenchEnv env;
  env.epochs = 10;
  Rng rng(7);
  auto imputer_v0 = eval::MakeImputer("LI", ds.venue, env);
  rmap::RadioMap imputed_v0 =
      eval::DifferentiateAndImpute(ds.map, *diff, *imputer_v0, rng);
  auto snap_v0 = serving::BuildSnapshot(
      imputed_v0, std::make_unique<positioning::KnnEstimator>(4, true), rng,
      serving::SnapshotOptions{/*version=*/0, /*cell_size_m=*/6.0});
  std::printf("snapshot v0: %zu reference points, %zu grid cells\n",
              snap_v0->num_refs(), snap_v0->index.num_cells());

  serving::MapSnapshotStore store(snap_v0);
  serving::ServerOptions opt;
  opt.max_batch = 32;
  opt.max_wait_us = 300.0;
  opt.num_workers = 2;
  serving::LocalizationServer server(&store, opt);

  // Background re-imputation (a richer imputer) publishing v1 mid-load —
  // the production re-survey/re-fit cycle in miniature.
  std::thread republisher([&] {
    Rng bg_rng(13);
    auto imputer_v1 = eval::MakeImputer("SL", ds.venue, env);
    rmap::RadioMap imputed_v1 =
        eval::DifferentiateAndImpute(ds.map, *diff, *imputer_v1, bg_rng);
    auto snap_v1 = serving::BuildSnapshot(
        imputed_v1, std::make_unique<positioning::KnnEstimator>(4, true),
        bg_rng, serving::SnapshotOptions{/*version=*/1, /*cell_size_m=*/6.0});
    store.Publish(snap_v1);
    std::printf("hot-swapped snapshot v1 (publish #%llu)\n",
                static_cast<unsigned long long>(store.publish_count()));
  });

  // Online: simulated devices with lossy scans (half the audible APs).
  const radio::PropagationModel model = ds.Model();
  const size_t num_clients = 3, queries_per_client = 40;
  std::vector<std::thread> clients;
  std::vector<double> client_err(num_clients, 0.0);
  for (size_t c = 0; c < num_clients; ++c) {
    clients.emplace_back([&, c] {
      Rng device_rng(100 + c);
      double err = 0.0;
      for (size_t q = 0; q < queries_per_client; ++q) {
        const geom::Point truth =
            ds.venue.rps[device_rng.Index(ds.venue.rps.size())];
        std::vector<double> scan(ds.venue.aps.size(), kNull);
        bool heard_any = false;
        for (size_t ap = 0; ap < ds.venue.aps.size(); ++ap) {
          if (!model.IsObservable(ap, truth)) continue;
          if (device_rng.Bernoulli(0.5)) continue;  // lossy scan moment
          scan[ap] = model.SampleRssi(ap, truth, device_rng);
          heard_any = true;
        }
        if (!heard_any) {
          // A totally deaf scan has no distance signal — a real client
          // would rescan; fall back to the -100 dBm floor fingerprint.
          std::fill(scan.begin(), scan.end(), kMnarFillDbm);
        }
        err += geom::Distance(server.Localize(std::move(scan)), truth);
      }
      client_err[c] = err / double(queries_per_client);
    });
  }
  for (auto& t : clients) t.join();
  republisher.join();
  server.Stop();

  for (size_t c = 0; c < num_clients; ++c) {
    std::printf("client %zu mean positioning error: %.2f m\n", c,
                client_err[c]);
  }
  const serving::ServerStats stats = server.Stats();
  std::printf("server: %zu requests in %zu batches (mean %.1f), "
              "p50 %.0f us, p95 %.0f us, p99 %.0f us\n",
              stats.completed, stats.batches, stats.mean_batch_size,
              stats.p50_latency_us, stats.p95_latency_us,
              stats.p99_latency_us);

  // What a metrics sidecar would scrape from this process right now.
  std::printf("\n--- /metrics (Prometheus text format) ---\n%s",
              obs::DumpPrometheusText().c_str());

  // One sampled request, stage by stage (the most recent completed one).
  const std::vector<obs::Trace> traces = obs::Tracer::Global().Recent();
  if (!traces.empty()) {
    std::printf("--- sampled trace (%llu finished, ring keeps %zu) ---\n%s",
                static_cast<unsigned long long>(
                    obs::Tracer::Global().finished_total()),
                traces.size(), traces.back().ToString().c_str());
  }
  return 0;
}
