// Quickstart: the full framework in ~50 lines.
//
// 1. Generate a Kaide-like venue and simulate a walking survey (the sparse
//    radio map substitute for the paper's Microsoft Research data).
// 2. Differentiate missing RSSIs into MARs and MNARs with TopoAC.
// 3. Impute MARs and missing RPs jointly with BiSIM (T-BiSIM).
// 4. Estimate positions with WKNN and report the APE.
//
// Build: cmake -B build -G Ninja && cmake --build build
// Run:   ./build/examples/quickstart
#include <cstdio>

#include "eval/factories.h"
#include "eval/pipeline.h"
#include "survey/survey.h"

int main() {
  using namespace rmi;

  // --- Offline phase: walking survey -> sparse radio map.
  std::printf("Generating venue + walking survey (Kaide preset)...\n");
  const survey::SurveyDataset ds = survey::MakeKaideDataset(/*scale=*/0.12);
  std::printf("  venue %.0f m x %.0f m, %zu APs, %zu RPs\n", ds.venue.width,
              ds.venue.height, ds.venue.aps.size(), ds.venue.rps.size());
  std::printf("  radio map: %zu records, %.1f%% missing RSSIs, "
              "%.1f%% missing RPs\n",
              ds.map.size(), 100.0 * ds.map.MissingRssiRate(),
              100.0 * ds.map.MissingRpRate());

  // --- Module A: missing-RSSI differentiator (TopoAC uses the venue's
  // wall multipolygon).
  auto differentiator = eval::MakeDifferentiator("TopoAC", &ds.venue);

  // --- Module B: the BiSIM data imputer.
  eval::BenchEnv env;
  env.epochs = 25;
  auto imputer = eval::MakeImputer("BiSIM", ds.venue, env);

  // --- Module C: WKNN location estimation, evaluated on a held-out 10%
  // of the observed-RP records.
  auto estimator = eval::MakeEstimator("WKNN");
  eval::PipelineOptions options;
  options.seed = 42;

  std::printf("Running TopoAC + BiSIM + WKNN...\n");
  const eval::PipelineResult result =
      eval::RunPipeline(ds.map, *differentiator, *imputer, *estimator, options);

  std::printf("  MAR share of missing RSSIs: %.1f%%\n",
              100.0 * result.mar_share);
  std::printf("  imputation took %.1f s\n", result.impute_seconds);
  std::printf("  average positioning error over %zu test points: %.2f m\n",
              result.num_test, result.ape);
  return 0;
}
