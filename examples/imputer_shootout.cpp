// Imputer shootout: compares every data imputer on one venue, reporting
// positioning APE, imputation error against the simulator's ground truth,
// and wall-clock cost — a compact, single-binary version of the paper's
// evaluation story.
#include <cstdio>

#include "common/table.h"
#include "eval/factories.h"
#include "eval/metrics.h"
#include "eval/pipeline.h"
#include "survey/survey.h"

int main() {
  using namespace rmi;
  const survey::SurveyDataset ds = survey::MakeKaideDataset(/*scale=*/0.10);
  eval::BenchEnv env;
  env.epochs = 15;
  std::printf("Kaide-like venue: %zu records, %zu APs, %.1f%% missing "
              "RSSIs\n\n",
              ds.map.size(), ds.map.num_aps(),
              100.0 * ds.map.MissingRssiRate());

  struct Config {
    const char* label;
    const char* diff;
    const char* imp;
  };
  const std::vector<Config> configs = {
      {"CD", "MNAR-only", "CD"},      {"LI", "MNAR-only", "LI"},
      {"SL", "MNAR-only", "SL"},      {"MICE", "TopoAC", "MICE"},
      {"MF", "TopoAC", "MF"},         {"BRITS", "TopoAC", "BRITS"},
      {"SSGAN", "TopoAC", "SSGAN"},   {"T-BiSIM", "TopoAC", "BiSIM"},
  };
  Table table({"imputer", "APE (m)", "beta=20% RSSI MAE (dBm)",
               "beta=20% RP error (m)", "time (s)"});
  for (const auto& c : configs) {
    auto diff = eval::MakeDifferentiator(c.diff, &ds.venue);
    auto imputer = eval::MakeImputer(c.imp, ds.venue, env);
    auto wknn = eval::MakeEstimator("WKNN");
    eval::PipelineOptions opt;
    opt.seed = 4242;
    const auto pipeline = eval::RunPipeline(ds.map, *diff, *imputer, *wknn, opt);
    const auto beta =
        eval::RunBetaExperiment(ds.map, *diff, *imputer, 0.2, 0.2, 99);
    table.AddRow({c.label, Table::Num(pipeline.ape),
                  c.imp == std::string("CD") || c.imp == std::string("LI") ||
                          c.imp == std::string("SL")
                      ? "-100 fill"
                      : Table::Num(beta.rssi_mae),
                  std::string(c.imp) == "CD" ? "(deletes)"
                                             : Table::Num(beta.rp_euclidean),
                  Table::Num(pipeline.impute_seconds, 1)});
  }
  table.Print();
  std::printf("\n(The full per-table reproductions live in build/bench/.)\n");
  return 0;
}
