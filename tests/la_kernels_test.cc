// Kernel-layer tests: every Gemm transpose variant, beta accumulation, and
// the fused elementwise kernels, all validated against naive reference
// implementations on random matrices.
#include <gtest/gtest.h>

#include <cmath>

#include "la/kernels.h"
#include "la/matrix.h"

namespace rmi::la {
namespace {

/// Reference triple-loop product of (possibly transposed) operands.
Matrix NaiveGemm(double alpha, const Matrix& a, bool ta, const Matrix& b,
                 bool tb, double beta, const Matrix& c0) {
  const size_t m = ta ? a.cols() : a.rows();
  const size_t k = ta ? a.rows() : a.cols();
  const size_t n = tb ? b.rows() : b.cols();
  Matrix r(m, n);
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = 0; j < n; ++j) {
      double s = 0.0;
      for (size_t kk = 0; kk < k; ++kk) {
        const double av = ta ? a(kk, i) : a(i, kk);
        const double bv = tb ? b(j, kk) : b(kk, j);
        s += av * bv;
      }
      r(i, j) = alpha * s + (beta == 0.0 ? 0.0 : beta * c0(i, j));
    }
  }
  return r;
}

TEST(GemmTest, AllTransposeVariantsMatchNaive) {
  Rng rng(101);
  const size_t m = 7, k = 11, n = 5;
  for (bool ta : {false, true}) {
    for (bool tb : {false, true}) {
      Matrix a = ta ? Matrix::Random(k, m, rng) : Matrix::Random(m, k, rng);
      Matrix b = tb ? Matrix::Random(n, k, rng) : Matrix::Random(k, n, rng);
      Matrix c;
      Gemm(1.0, a, ta, b, tb, 0.0, &c);
      Matrix want = NaiveGemm(1.0, a, ta, b, tb, 0.0, Matrix(m, n));
      EXPECT_LT(Matrix::MaxAbsDiff(c, want), 1e-12)
          << "ta=" << ta << " tb=" << tb;
    }
  }
}

TEST(GemmTest, BetaAccumulatesIntoExistingOutput) {
  Rng rng(102);
  const size_t m = 6, k = 9, n = 4;
  Matrix a = Matrix::Random(m, k, rng);
  Matrix b = Matrix::Random(k, n, rng);
  for (double beta : {1.0, 0.5, -2.0}) {
    Matrix c0 = Matrix::Random(m, n, rng);
    Matrix c = c0;
    Gemm(0.75, a, false, b, false, beta, &c);
    Matrix want = NaiveGemm(0.75, a, false, b, false, beta, c0);
    EXPECT_LT(Matrix::MaxAbsDiff(c, want), 1e-12) << "beta=" << beta;
  }
}

TEST(GemmTest, BetaOneWithTransposesMatchesNaive) {
  Rng rng(103);
  const size_t m = 5, k = 8, n = 6;
  for (bool ta : {false, true}) {
    for (bool tb : {false, true}) {
      Matrix a = ta ? Matrix::Random(k, m, rng) : Matrix::Random(m, k, rng);
      Matrix b = tb ? Matrix::Random(n, k, rng) : Matrix::Random(k, n, rng);
      Matrix c0 = Matrix::Random(m, n, rng);
      Matrix c = c0;
      Gemm(1.0, a, ta, b, tb, 1.0, &c);
      Matrix want = NaiveGemm(1.0, a, ta, b, tb, 1.0, c0);
      EXPECT_LT(Matrix::MaxAbsDiff(c, want), 1e-12)
          << "ta=" << ta << " tb=" << tb;
    }
  }
}

TEST(GemmTest, LargeOperandsBitMatchStreamingOrder) {
  // The SIMD kernel strip-mines j into register lanes and tiles B panels;
  // per-entry accumulation still runs k ascending, so the result must
  // equal the plain streaming loop bit-for-bit.
  Rng rng(104);
  const size_t n = 160;  // several B panel tiles, many full lane strips
  Matrix a = Matrix::Random(n, n, rng);
  Matrix b = Matrix::Random(n, n, rng);
  Matrix c;
  Gemm(1.0, a, false, b, false, 0.0, &c);
  Matrix want(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t k = 0; k < n; ++k) {
      const double aik = a(i, k);
      for (size_t j = 0; j < n; ++j) want(i, j) += aik * b(k, j);
    }
  }
  EXPECT_DOUBLE_EQ(Matrix::MaxAbsDiff(c, want), 0.0);
}

TEST(GemmTest, SimdNNAndTNKernelsBitMatchScalarOrderEverywhere) {
  // The deterministic target_clones kernels (la/gemm_repro.cc) promise the
  // exact rounding sequence of the scalar reference loops — including the
  // alpha pre-multiply, the beta accumulate, the aik == 0 sparsity skip,
  // and the < 8-column lane remainder. Verified bit-for-bit over shapes
  // that exercise full lanes, remainders, and single columns.
  Rng rng(117);
  const size_t shapes[][3] = {{1, 1, 1},   {3, 5, 7},    {4, 9, 8},
                              {6, 13, 17}, {2, 31, 23},  {9, 4, 64}};
  for (const auto& s : shapes) {
    const size_t m = s[0], k = s[1], n = s[2];
    Matrix a = Matrix::Random(m, k, rng);
    Matrix b = Matrix::Random(k, n, rng);
    // Sparsity so the zero-skip branch is exercised identically.
    for (size_t i = 0; i < a.size(); ++i) {
      if (i % 3 == 0) a.data()[i] = 0.0;
    }
    const double alpha = 1.75;
    Matrix c0 = Matrix::Random(m, n, rng);

    // NN with beta = 1: acc starts from c0, terms added k ascending.
    Matrix c = c0;
    Gemm(alpha, a, false, b, false, 1.0, &c);
    Matrix want = c0;
    for (size_t i = 0; i < m; ++i) {
      for (size_t kk = 0; kk < k; ++kk) {
        const double aik = alpha * a(i, kk);
        if (aik == 0.0) continue;
        for (size_t j = 0; j < n; ++j) want(i, j) += aik * b(kk, j);
      }
    }
    for (size_t i = 0; i < c.size(); ++i) {
      EXPECT_EQ(c.data()[i], want.data()[i]) << m << "x" << k << "x" << n;
    }

    // TN (rank-1 update order), beta = 0.
    Matrix at(k, m);
    for (size_t i = 0; i < k; ++i) {
      for (size_t j = 0; j < m; ++j) at(i, j) = a(j, i);
    }
    Matrix ct;
    Gemm(alpha, at, true, b, false, 0.0, &ct);
    Matrix want_t(m, n);
    for (size_t kk = 0; kk < k; ++kk) {
      for (size_t i = 0; i < m; ++i) {
        const double aki = alpha * at(kk, i);
        if (aki == 0.0) continue;
        for (size_t j = 0; j < n; ++j) want_t(i, j) += aki * b(kk, j);
      }
    }
    for (size_t i = 0; i < ct.size(); ++i) {
      EXPECT_EQ(ct.data()[i], want_t.data()[i]) << m << "x" << k << "x" << n;
    }
  }
}

TEST(GemmTest, MatMulRoutesThroughGemm) {
  Rng rng(105);
  Matrix a = Matrix::Random(4, 6, rng);
  Matrix b = Matrix::Random(6, 3, rng);
  Matrix c;
  Gemm(1.0, a, false, b, false, 0.0, &c);
  EXPECT_DOUBLE_EQ(Matrix::MaxAbsDiff(a.MatMul(b), c), 0.0);
}

TEST(KernelsTest, AxpyAndScaleInPlace) {
  Rng rng(106);
  Matrix x = Matrix::Random(3, 5, rng);
  Matrix y0 = Matrix::Random(3, 5, rng);
  Matrix y = y0;
  Axpy(2.5, x, &y);
  Matrix want = y0 + x * 2.5;
  EXPECT_LT(Matrix::MaxAbsDiff(y, want), 1e-15);

  Matrix z = x;
  ScaleInPlace(-0.5, &z);
  EXPECT_LT(Matrix::MaxAbsDiff(z, x * -0.5), 1e-15);
}

TEST(KernelsTest, AddRowBroadcastVariants) {
  Rng rng(107);
  Matrix a = Matrix::Random(4, 6, rng);
  Matrix row = Matrix::Random(1, 6, rng);
  Matrix want = a.AddRowBroadcast(row);

  Matrix out;
  AddRowBroadcastInto(a, row, &out);
  EXPECT_DOUBLE_EQ(Matrix::MaxAbsDiff(out, want), 0.0);

  Matrix in_place = a;
  AddRowBroadcastInPlace(&in_place, row);
  EXPECT_DOUBLE_EQ(Matrix::MaxAbsDiff(in_place, want), 0.0);
}

TEST(KernelsTest, AccumulateColSums) {
  Rng rng(108);
  Matrix a = Matrix::Random(5, 4, rng);
  Matrix row0 = Matrix::Random(1, 4, rng);
  Matrix row = row0;
  AccumulateColSums(a, &row);
  for (size_t j = 0; j < 4; ++j) {
    double want = row0(0, j);
    for (size_t i = 0; i < 5; ++i) want += a(i, j);
    EXPECT_NEAR(row(0, j), want, 1e-12);
  }
}

TEST(KernelsTest, MaskCombineMatchesUnfusedExpression) {
  Rng rng(109);
  Matrix m(1, 8);
  for (size_t j = 0; j < 8; ++j) m(0, j) = (j % 3 == 0) ? 1.0 : 0.0;
  Matrix obs = Matrix::Random(1, 8, rng);
  Matrix pred = Matrix::Random(1, 8, rng);
  Matrix out;
  MaskCombineInto(m, obs, pred, &out);
  Matrix inv_m = m.Map([](double v) { return 1.0 - v; });
  Matrix want = m.CwiseProduct(obs) + inv_m.CwiseProduct(pred);
  EXPECT_DOUBLE_EQ(Matrix::MaxAbsDiff(out, want), 0.0);
}

TEST(KernelsTest, ConcatAndSlice) {
  Rng rng(110);
  Matrix a = Matrix::Random(3, 4, rng);
  Matrix b = Matrix::Random(3, 2, rng);
  Matrix cat;
  ConcatColsInto(a, b, &cat);
  EXPECT_DOUBLE_EQ(Matrix::MaxAbsDiff(cat, a.ConcatCols(b)), 0.0);

  Matrix slice;
  SliceColsInto(cat, 1, 5, &slice);
  EXPECT_DOUBLE_EQ(Matrix::MaxAbsDiff(slice, cat.SliceCols(1, 5)), 0.0);
}

TEST(KernelsTest, RowSquaredDistanceMatchesMatrixHelper) {
  Rng rng(111);
  Matrix x = Matrix::Random(6, 9, rng);
  for (size_t i = 0; i < 6; ++i) {
    for (size_t j = 0; j < 6; ++j) {
      const double want = Matrix::SquaredDistance(x.Row(i), x.Row(j));
      EXPECT_NEAR(RowSquaredDistance(x, i, x, j), want, 1e-12);
    }
  }
}

TEST(KernelsTest, CwiseTemplatesMatchMap) {
  Rng rng(112);
  Matrix x = Matrix::Random(2, 7, rng);
  Matrix y = Matrix::Random(2, 7, rng);

  Matrix out;
  CwiseUnaryInto(x, &out, [](double v) { return std::tanh(v); });
  EXPECT_DOUBLE_EQ(
      Matrix::MaxAbsDiff(out, x.Map([](double v) { return std::tanh(v); })),
      0.0);

  CwiseBinaryInto(x, y, &out, [](double a, double b) { return a * b; });
  EXPECT_DOUBLE_EQ(Matrix::MaxAbsDiff(out, x.CwiseProduct(y)), 0.0);

  Matrix acc0 = Matrix::Random(2, 7, rng);
  Matrix acc = acc0;
  CwiseBinaryAccumulate(x, y, &acc, [](double a, double b) { return a * b; });
  EXPECT_LT(Matrix::MaxAbsDiff(acc, acc0 + x.CwiseProduct(y)), 1e-15);

  Matrix ip = x;
  CwiseUnaryInPlace(&ip, [](double v) { return v * v; });
  EXPECT_DOUBLE_EQ(Matrix::MaxAbsDiff(ip, x.CwiseProduct(x)), 0.0);
}

TEST(KernelsTest, ResizeToReusesCapacity) {
  Matrix m(8, 8, 3.0);
  const double* before = m.data().data();
  ResizeTo(&m, 4, 16);  // same element count — must not reallocate
  EXPECT_EQ(m.data().data(), before);
  EXPECT_EQ(m.rows(), 4u);
  EXPECT_EQ(m.cols(), 16u);
  ResizeTo(&m, 2, 8);  // shrink — capacity retained by std::vector
  EXPECT_EQ(m.data().data(), before);
}

}  // namespace
}  // namespace rmi::la
