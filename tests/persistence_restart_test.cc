// MapUpdater persistence: restart without re-imputation.
//
//  * A fresh registration over a persisted shard dir restores the newest
//    snapshot — zero Impute calls, answers bit-identical to the pre-restart
//    estimator — and replays the WAL into the pending-delta buffer;
//  * an interrupted run (deltas ingested, crash before rebuild) converges
//    to the same bytes a never-crashed run produces: the next snapshot's
//    payload is byte-equal, because replayed deltas fold exactly like
//    live ones (same ids, same order, same RNG fork discipline);
//  * restore is strict — a width-mismatched snapshot is refused and the
//    shard rebuilds cold from the registered base;
//  * memory-only mode (empty persist_dir) keeps every persistence stat at
//    zero and writes nothing;
//  * keep_snapshot_files prunes, the newest file always survives;
//  * concurrent ingest against persisted rebuilds is clean under TSan
//    (this suite runs in the CI TSan job).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "clustering/differentiation.h"
#include "common/timer.h"
#include "imputers/traditional.h"
#include "obs/metrics.h"
#include "positioning/estimators.h"
#include "serving/map_updater.h"
#include "serving/synthetic.h"
#include "store/snapshot_format.h"

namespace rmi::serving {
namespace {

namespace fs = std::filesystem;

EstimatorFactory WknnFactory() {
  return [] { return std::make_unique<positioning::KnnEstimator>(3, true); };
}

template <typename Pred>
bool WaitFor(Pred pred, double timeout_s = 30.0) {
  Timer t;
  while (!pred()) {
    if (t.ElapsedSeconds() > timeout_s) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return true;
}

std::string ScratchDir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string(std::istreambuf_iterator<char>(in), {});
}

/// Delegates to LI and counts entries — the probe proving a restore ran
/// zero imputations.
class CountingImputer : public imputers::Imputer {
 public:
  rmap::RadioMap Impute(const rmap::RadioMap& map,
                        const rmap::MaskMatrix& amended_mask,
                        Rng& rng) const override {
    calls.fetch_add(1, std::memory_order_acq_rel);
    return inner_.Impute(map, amended_mask, rng);
  }
  std::string name() const override { return "Counting"; }

  mutable std::atomic<size_t> calls{0};

 private:
  imputers::LinearInterpolationImputer inner_;
};

rmap::Record ObservationLike(const rmap::RadioMap& map, double t) {
  rmap::Record r = map.record(0);
  r.id = rmap::Record::kUnassignedId;
  r.time = t;
  return r;
}

MapUpdaterOptions PersistedOptions(const std::string& dir) {
  MapUpdaterOptions opt;
  opt.min_new_observations = 1000000;  // manual RebuildNow only
  opt.persist_dir = dir;
  opt.wal_sync_every = 1;
  return opt;
}

/// The one shard subdirectory a single-shard run leaves under `root`.
std::string OnlyShardDir(const std::string& root) {
  std::string found;
  for (const auto& entry : fs::directory_iterator(root)) {
    if (!entry.is_directory()) continue;
    EXPECT_TRUE(found.empty()) << "expected one shard dir under " << root;
    found = entry.path().string();
  }
  EXPECT_FALSE(found.empty()) << "no shard dir under " << root;
  return found;
}

TEST(PersistenceRestart, RestoreSkipsImputationAndServesIdenticalAnswers) {
  const std::string root = ScratchDir("restart_restore");
  VenueOptions vopt;
  vopt.num_buildings = 1;
  vopt.floors_per_building = 2;
  const auto shards = MakeSyntheticVenue(vopt);
  const rmap::ShardId victim = shards[0].id;
  const la::Matrix queries =
      MakeSyntheticQueries(shards[0].map, 24, 0.2, 11);

  cluster::MarOnlyDifferentiator differentiator;
  CountingImputer imputer;

  // ---- run 1: build, churn, persist, shut down.
  ShardedSnapshotStore store1;
  std::vector<geom::Point> before;
  size_t imputes_run1 = 0;
  {
    MapUpdater updater(&store1, &differentiator, &imputer, WknnFactory(),
                       PersistedOptions(root));
    for (const VenueShard& shard : shards) {
      updater.RegisterShard(shard.id, shard.map);
    }
    // Fold one delta window so the persisted state is past version 1...
    for (int i = 0; i < 4; ++i) {
      updater.Ingest(victim, ObservationLike(shards[0].map, 100.0 + i));
    }
    ASSERT_TRUE(updater.RebuildNow(victim));
    // ...and strand three more in the WAL only (no rebuild after).
    for (int i = 0; i < 3; ++i) {
      updater.Ingest(victim, ObservationLike(shards[0].map, 200.0 + i));
    }

    const MapUpdaterStats stats = updater.Stats();
    EXPECT_EQ(stats.shards_restored, 0u);
    EXPECT_EQ(stats.wal_records_replayed, 0u);
    // Every publish persisted: one per registration plus the manual one.
    EXPECT_EQ(stats.snapshots_persisted, shards.size() + 1);
    EXPECT_EQ(stats.snapshot_persist_failures, 0u);
    EXPECT_GE(stats.per_shard.at(victim).persisted, 2u);

    before = store1.Current(victim)->estimator->EstimateBatch(queries);
    imputes_run1 = imputer.calls.load();
    EXPECT_GE(imputes_run1, shards.size() + 1);
  }

  // ---- run 2: fresh process over the same persist root.
  ShardedSnapshotStore store2;
  MapUpdater updater(&store2, &differentiator, &imputer, WknnFactory(),
                     PersistedOptions(root));
  for (const VenueShard& shard : shards) {
    updater.RegisterShard(shard.id, shard.map);
  }

  // Both shards restored from their files: not one Impute call ran.
  EXPECT_EQ(imputer.calls.load(), imputes_run1);
  const MapUpdaterStats stats = updater.Stats();
  EXPECT_EQ(stats.shards_restored, shards.size());
  EXPECT_EQ(stats.wal_records_replayed, 3u);
  EXPECT_EQ(updater.PendingObservations(victim), 3u);

  // The restored shard resumes at its persisted version and answers
  // bit-identically to the pre-restart estimator.
  const auto restored = store2.Current(victim);
  ASSERT_NE(restored, nullptr);
  EXPECT_EQ(restored->version, store1.Current(victim)->version);
  EXPECT_TRUE(restored->Consistent());
  const std::vector<geom::Point> after =
      restored->estimator->EstimateBatch(queries);
  ASSERT_EQ(before.size(), after.size());
  for (size_t i = 0; i < before.size(); ++i) {
    EXPECT_EQ(before[i].x, after[i].x) << "row " << i;
    EXPECT_EQ(before[i].y, after[i].y) << "row " << i;
  }

  // The replayed deltas fold on the next rebuild: version advances and
  // the three stranded observations are in the reference set.
  const size_t refs_before = restored->positions.size();
  ASSERT_TRUE(updater.RebuildNow(victim));
  EXPECT_EQ(store2.Current(victim)->positions.size(), refs_before + 3);
}

TEST(PersistenceRestart, CrashBeforeRebuildConvergesToUninterruptedBytes) {
  // Run A never crashes; run B "crashes" with its second delta window only
  // in the WAL, restarts, and rebuilds. Both version-3 snapshot files must
  // carry byte-equal payloads: replayed deltas get their ids at fold time,
  // RNG forks realign at restore, and the format writes no timestamps.
  // (Only the header's wal_watermark may differ — the restarted process
  // opens a fresh WAL segment, shifting the rotation sequence.)
  const std::string root_a = ScratchDir("restart_converge_a");
  const std::string root_b = ScratchDir("restart_converge_b");
  VenueOptions vopt;
  vopt.num_buildings = 1;
  vopt.floors_per_building = 1;
  const auto shards = MakeSyntheticVenue(vopt);
  const rmap::ShardId id = shards[0].id;

  cluster::MarOnlyDifferentiator differentiator;
  imputers::LinearInterpolationImputer imputer;
  auto options_for = [](const std::string& root) {
    MapUpdaterOptions opt = PersistedOptions(root);
    opt.incremental = false;  // cold rebuilds: no warm-state divergence
    return opt;
  };

  // Run A: register (v1), fold window 1 (v2), fold window 2 (v3).
  {
    ShardedSnapshotStore store;
    MapUpdater updater(&store, &differentiator, &imputer, WknnFactory(),
                       options_for(root_a));
    updater.RegisterShard(id, shards[0].map);
    for (int i = 0; i < 4; ++i) {
      updater.Ingest(id, ObservationLike(shards[0].map, 100.0 + i));
    }
    ASSERT_TRUE(updater.RebuildNow(id));
    for (int i = 0; i < 4; ++i) {
      updater.Ingest(id, ObservationLike(shards[0].map, 200.0 + i));
    }
    ASSERT_TRUE(updater.RebuildNow(id));
    ASSERT_EQ(store.Current(id)->version, 3u);
  }

  // Run B, process 1: identical up to v2, then window 2 reaches the WAL
  // only — the process dies before any rebuild.
  {
    ShardedSnapshotStore store;
    MapUpdater updater(&store, &differentiator, &imputer, WknnFactory(),
                       options_for(root_b));
    updater.RegisterShard(id, shards[0].map);
    for (int i = 0; i < 4; ++i) {
      updater.Ingest(id, ObservationLike(shards[0].map, 100.0 + i));
    }
    ASSERT_TRUE(updater.RebuildNow(id));
    for (int i = 0; i < 4; ++i) {
      updater.Ingest(id, ObservationLike(shards[0].map, 200.0 + i));
    }
  }

  // Run B, process 2: restore v2, replay window 2, rebuild v3.
  {
    ShardedSnapshotStore store;
    MapUpdater updater(&store, &differentiator, &imputer, WknnFactory(),
                       options_for(root_b));
    updater.RegisterShard(id, shards[0].map);
    EXPECT_EQ(updater.Stats().wal_records_replayed, 4u);
    ASSERT_TRUE(updater.RebuildNow(id));
    ASSERT_EQ(store.Current(id)->version, 3u);
  }

  const std::string file_a =
      OnlyShardDir(root_a) + "/" + store::SnapshotFileName(3);
  const std::string file_b =
      OnlyShardDir(root_b) + "/" + store::SnapshotFileName(3);
  const std::string bytes_a = ReadFile(file_a);
  const std::string bytes_b = ReadFile(file_b);
  ASSERT_EQ(bytes_a.size(), bytes_b.size());
  EXPECT_EQ(bytes_a.compare(store::kSnapshotHeaderBytes, std::string::npos,
                            bytes_b, store::kSnapshotHeaderBytes,
                            std::string::npos),
            0)
      << "restarted run's snapshot payload diverged from the uninterrupted "
         "run";

  std::string error;
  auto mapped_a = store::MappedSnapshot::Map(file_a, &error);
  ASSERT_NE(mapped_a, nullptr) << error;
  auto mapped_b = store::MappedSnapshot::Map(file_b, &error);
  ASSERT_NE(mapped_b, nullptr) << error;
  EXPECT_EQ(mapped_a->header().payload_crc, mapped_b->header().payload_crc);
  EXPECT_EQ(mapped_a->header().num_refs, mapped_b->header().num_refs);
  EXPECT_EQ(mapped_a->header().base_records, mapped_b->header().base_records);
}

TEST(PersistenceRestart, WidthMismatchedSnapshotIsRefusedAndRebuildsCold) {
  const std::string root = ScratchDir("restart_width");
  cluster::MarOnlyDifferentiator differentiator;
  CountingImputer imputer;
  const rmap::ShardId id{0, 0};

  // Persist a shard with a 12-AP map.
  {
    rmap::RadioMap map = MakeSyntheticServingMap(8, 6, 12, 5);
    map.set_shard(id);
    ShardedSnapshotStore store;
    MapUpdater updater(&store, &differentiator, &imputer, WknnFactory(),
                       PersistedOptions(root));
    updater.RegisterShard(id, map);
  }

  obs::Counter& rejected = obs::GetCounter(
      "rmi_store_restore_rejected_total",
      "Snapshot files refused at restore time (shard/width/ABI mismatch or "
      "missing base) — the shard fell back to a cold re-impute");
  const uint64_t rejected_before = rejected.Total();
  const size_t imputes_before = imputer.calls.load();

  // A new lineage with 16 APs must not restore the 12-AP file.
  rmap::RadioMap wider = MakeSyntheticServingMap(8, 6, 16, 6);
  wider.set_shard(id);
  ShardedSnapshotStore store;
  MapUpdater updater(&store, &differentiator, &imputer, WknnFactory(),
                     PersistedOptions(root));
  updater.RegisterShard(id, wider);

  EXPECT_GE(rejected.Total(), rejected_before + 1);
  EXPECT_EQ(imputer.calls.load(), imputes_before + 1);  // cold path ran
  EXPECT_EQ(updater.Stats().shards_restored, 0u);
  const auto snapshot = store.Current(id);
  ASSERT_NE(snapshot, nullptr);
  EXPECT_EQ(snapshot->version, 1u);
  EXPECT_EQ(snapshot->num_aps(), 16u);
}

TEST(PersistenceRestart, MemoryOnlyModeWritesNothingAndCountsNothing) {
  VenueOptions vopt;
  vopt.num_buildings = 1;
  vopt.floors_per_building = 1;
  const auto shards = MakeSyntheticVenue(vopt);
  cluster::MarOnlyDifferentiator differentiator;
  imputers::LinearInterpolationImputer imputer;

  ShardedSnapshotStore store;
  MapUpdaterOptions opt;
  opt.min_new_observations = 4;
  MapUpdater updater(&store, &differentiator, &imputer, WknnFactory(), opt);
  updater.RegisterShard(shards[0].id, shards[0].map);
  for (int i = 0; i < 4; ++i) {
    updater.Ingest(shards[0].id, ObservationLike(shards[0].map, 50.0 + i));
  }
  ASSERT_TRUE(updater.RebuildNow(shards[0].id));

  const MapUpdaterStats stats = updater.Stats();
  EXPECT_EQ(stats.snapshots_persisted, 0u);
  EXPECT_EQ(stats.snapshot_persist_failures, 0u);
  EXPECT_EQ(stats.wal_records_replayed, 0u);
  EXPECT_EQ(stats.shards_restored, 0u);
  EXPECT_EQ(stats.per_shard.at(shards[0].id).persisted, 0u);
}

TEST(PersistenceRestart, KeepSnapshotFilesPrunesAllButTheNewest) {
  const std::string root = ScratchDir("restart_prune");
  VenueOptions vopt;
  vopt.num_buildings = 1;
  vopt.floors_per_building = 1;
  const auto shards = MakeSyntheticVenue(vopt);
  cluster::MarOnlyDifferentiator differentiator;
  imputers::LinearInterpolationImputer imputer;

  ShardedSnapshotStore store;
  MapUpdaterOptions opt = PersistedOptions(root);
  opt.keep_snapshot_files = 2;
  MapUpdater updater(&store, &differentiator, &imputer, WknnFactory(), opt);
  updater.RegisterShard(shards[0].id, shards[0].map);
  for (int round = 0; round < 4; ++round) {
    ASSERT_TRUE(updater.RebuildNow(shards[0].id));
  }
  ASSERT_EQ(store.Current(shards[0].id)->version, 5u);

  const std::vector<std::string> files =
      store::ListSnapshotFiles(OnlyShardDir(root));
  ASSERT_EQ(files.size(), 2u);
  EXPECT_NE(files[0].find(store::SnapshotFileName(5)), std::string::npos);
  EXPECT_NE(files[1].find(store::SnapshotFileName(4)), std::string::npos);
}

TEST(PersistenceRestart, ConcurrentIngestAgainstPersistedRebuildsIsClean) {
  // TSan food: three ingest threads race the trigger loop's fold + WAL
  // rotation + snapshot writes across two persisted shards.
  const std::string root = ScratchDir("restart_concurrent");
  VenueOptions vopt;
  vopt.num_buildings = 1;
  vopt.floors_per_building = 2;
  const auto shards = MakeSyntheticVenue(vopt);
  cluster::MarOnlyDifferentiator differentiator;
  imputers::LinearInterpolationImputer imputer;

  ShardedSnapshotStore store;
  MapUpdaterOptions opt;
  opt.min_new_observations = 8;
  opt.poll_interval_ms = 1.0;
  opt.persist_dir = root;
  opt.wal_sync_every = 4;
  MapUpdater updater(&store, &differentiator, &imputer, WknnFactory(), opt);
  for (const VenueShard& shard : shards) {
    updater.RegisterShard(shard.id, shard.map);
  }
  updater.Start();

  std::vector<std::thread> feeders;
  for (int t = 0; t < 3; ++t) {
    feeders.emplace_back([&, t] {
      for (int i = 0; i < 40; ++i) {
        const VenueShard& target = shards[(t + i) % shards.size()];
        updater.Ingest(target.id,
                       ObservationLike(target.map, 1000.0 * t + i));
      }
    });
  }
  for (std::thread& f : feeders) f.join();
  ASSERT_TRUE(WaitFor([&] {
    return updater.Stats().snapshots_persisted >= shards.size() + 2;
  })) << "churn rebuilds never persisted";
  updater.Stop();

  const MapUpdaterStats stats = updater.Stats();
  EXPECT_EQ(stats.snapshot_persist_failures, 0u);
  EXPECT_EQ(stats.ingested, 120u);
  // Everything the run persisted is mappable and internally consistent.
  std::string error;
  for (const auto& entry : fs::directory_iterator(root)) {
    if (!entry.is_directory()) continue;
    auto mapped = store::MapNewestValid(entry.path().string(), &error);
    EXPECT_NE(mapped, nullptr) << entry.path() << ": " << error;
  }
}

}  // namespace
}  // namespace rmi::serving
