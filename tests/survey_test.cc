#include <gtest/gtest.h>

#include <cmath>

#include "common/missing.h"
#include "survey/survey.h"

namespace rmi::survey {
namespace {

/// The paper's walking-survey example (Table II): two RP records, five RSSI
/// records, epsilon = 1 s; expected radio map records are Table III.
PathRecordTable PaperTableII() {
  PathRecordTable table;
  table.path_id = 0;
  auto rp = [&](double t, double x, double y) {
    SurveyRecord r;
    r.time = t;
    r.is_rp = true;
    r.rp = {x, y};
    r.true_position = {x, y};
    table.records.push_back(r);
  };
  auto rssi = [&](double t, std::vector<std::pair<size_t, double>> vals) {
    SurveyRecord r;
    r.time = t;
    r.is_rp = false;
    r.rssi = std::move(vals);
    r.true_position = {t, 0.0};
    table.records.push_back(r);
  };
  rp(0, 1.0, 1.0);                                   // t1: (x1, y1)
  rssi(1, {{0, -70}, {1, -83}, {2, -76}});           // t2
  rssi(3, {{0, -71}, {2, -78}});                     // t3
  rssi(8, {{2, -80}, {3, -68}});                     // t4
  rp(9, 5.0, 5.0);                                   // t5: (x5, y5)
  rssi(12, {{0, -74}, {4, -80}});                    // t6
  rssi(13, {{1, -77}, {4, -82}});                    // t7
  rp(16, 8.0, 8.0);                                  // t8: (x8, y8)
  return table;
}

TEST(RadioMapCreationTest, ReproducesPaperTableIII) {
  std::vector<geom::Point> positions;
  const auto records =
      CreateRadioMapRecords(PaperTableII(), /*num_aps=*/5, /*epsilon_s=*/1.0,
                            &positions);
  ASSERT_EQ(records.size(), 5u);
  ASSERT_EQ(positions.size(), 5u);

  // Record 1: ((-70, -83, -76, null, null), (x1, y1)) at t2 = 1.
  EXPECT_DOUBLE_EQ(records[0].rssi[0], -70);
  EXPECT_DOUBLE_EQ(records[0].rssi[1], -83);
  EXPECT_DOUBLE_EQ(records[0].rssi[2], -76);
  EXPECT_TRUE(IsNull(records[0].rssi[3]));
  EXPECT_TRUE(IsNull(records[0].rssi[4]));
  ASSERT_TRUE(records[0].has_rp);
  EXPECT_DOUBLE_EQ(records[0].rp.x, 1.0);
  EXPECT_DOUBLE_EQ(records[0].time, 1.0);

  // Record 2: ((-71, null, -78, null, null), null) at t3 = 3.
  EXPECT_DOUBLE_EQ(records[1].rssi[0], -71);
  EXPECT_TRUE(IsNull(records[1].rssi[1]));
  EXPECT_DOUBLE_EQ(records[1].rssi[2], -78);
  EXPECT_FALSE(records[1].has_rp);
  EXPECT_DOUBLE_EQ(records[1].time, 3.0);

  // Record 3: ((null, null, -80, -68, null), (x5, y5)) at t4 = 8.
  EXPECT_TRUE(IsNull(records[2].rssi[0]));
  EXPECT_DOUBLE_EQ(records[2].rssi[2], -80);
  EXPECT_DOUBLE_EQ(records[2].rssi[3], -68);
  ASSERT_TRUE(records[2].has_rp);
  EXPECT_DOUBLE_EQ(records[2].rp.x, 5.0);
  EXPECT_DOUBLE_EQ(records[2].time, 8.0);

  // Record 4: ((-74, -77, null, null, -81), null) at t6 = 12 — Step 1
  // merged t6 and t7, averaging the common AP r5.
  EXPECT_DOUBLE_EQ(records[3].rssi[0], -74);
  EXPECT_DOUBLE_EQ(records[3].rssi[1], -77);
  EXPECT_TRUE(IsNull(records[3].rssi[2]));
  EXPECT_TRUE(IsNull(records[3].rssi[3]));
  EXPECT_DOUBLE_EQ(records[3].rssi[4], -81);
  EXPECT_FALSE(records[3].has_rp);
  EXPECT_DOUBLE_EQ(records[3].time, 12.0);

  // Record 5: ((null x5), (x8, y8)) at t8 = 16.
  for (size_t j = 0; j < 5; ++j) EXPECT_TRUE(IsNull(records[4].rssi[j]));
  ASSERT_TRUE(records[4].has_rp);
  EXPECT_DOUBLE_EQ(records[4].rp.x, 8.0);
  EXPECT_DOUBLE_EQ(records[4].time, 16.0);
}

TEST(RadioMapCreationTest, EmptyTable) {
  PathRecordTable table;
  std::vector<geom::Point> positions;
  EXPECT_TRUE(CreateRadioMapRecords(table, 3, 1.0, &positions).empty());
}

TEST(RadioMapCreationTest, LargeEpsilonMergesAggressively) {
  std::vector<geom::Point> positions;
  const auto records =
      CreateRadioMapRecords(PaperTableII(), 5, /*epsilon_s=*/100.0, &positions);
  // With epsilon = 100 every consecutive RSSI chain merges into one record.
  EXPECT_LT(records.size(), 5u);
}

TEST(RadioMapCreationTest, ZeroEpsilonMergesNothingApart) {
  std::vector<geom::Point> positions;
  const auto records =
      CreateRadioMapRecords(PaperTableII(), 5, /*epsilon_s=*/0.0, &positions);
  // Nothing within 0 s: every raw record survives on its own.
  EXPECT_EQ(records.size(), 8u);
}

class SurveySimTest : public ::testing::Test {
 protected:
  SurveySimTest() {
    indoor::VenueSpec vs;
    vs.width = 30;
    vs.height = 30;
    vs.rooms_x = 2;
    vs.rooms_y = 2;
    vs.hallway_width = 3;
    vs.num_aps = 25;
    vs.rp_spacing = 4;
    vs.seed = 3;
    venue_ = indoor::GenerateVenue(vs);
  }
  indoor::Venue venue_;
};

TEST_F(SurveySimTest, ProducesSortedTimestampedRecords) {
  radio::PropagationModel model(&venue_, radio::PropagationParams{});
  SurveySpec spec;
  spec.rounds = 1;
  Rng rng(4);
  const auto tables = SimulateSurvey(venue_, model, spec, rng);
  ASSERT_FALSE(tables.empty());
  for (const auto& t : tables) {
    for (size_t i = 1; i < t.records.size(); ++i) {
      EXPECT_LE(t.records[i - 1].time, t.records[i].time);
    }
  }
}

TEST_F(SurveySimTest, RoundsMultiplyTables) {
  radio::PropagationModel model(&venue_, radio::PropagationParams{});
  SurveySpec s1, s3;
  s1.rounds = 1;
  s3.rounds = 3;
  Rng r1(5), r3(5);
  const auto t1 = SimulateSurvey(venue_, model, s1, r1);
  const auto t3 = SimulateSurvey(venue_, model, s3, r3);
  EXPECT_NEAR(static_cast<double>(t3.size()),
              3.0 * static_cast<double>(t1.size()), 2.0);
}

TEST_F(SurveySimTest, RpKeepFractionThinsRpRecords) {
  radio::PropagationModel model(&venue_, radio::PropagationParams{});
  SurveySpec full, thin;
  full.rounds = 3;
  thin.rounds = 3;
  thin.rp_keep_fraction = 0.3;
  Rng ra(6), rb(6);
  auto count_rp = [](const std::vector<PathRecordTable>& ts) {
    size_t n = 0;
    for (const auto& t : ts) {
      for (const auto& r : t.records) n += r.is_rp;
    }
    return n;
  };
  const size_t full_n = count_rp(SimulateSurvey(venue_, model, full, ra));
  const size_t thin_n = count_rp(SimulateSurvey(venue_, model, thin, rb));
  EXPECT_LT(static_cast<double>(thin_n), 0.6 * static_cast<double>(full_n));
}

TEST(DatasetTest, GenerateDatasetInvariants) {
  indoor::VenueSpec vs;
  vs.width = 30;
  vs.height = 30;
  vs.rooms_x = 2;
  vs.rooms_y = 2;
  vs.hallway_width = 3;
  vs.num_aps = 30;
  vs.rp_spacing = 4;
  vs.seed = 7;
  SurveySpec ss;
  ss.rounds = 2;
  const SurveyDataset ds =
      GenerateDataset(vs, radio::PropagationParams{}, ss);

  ASSERT_GT(ds.map.size(), 20u);
  EXPECT_EQ(ds.map.num_aps(), 30u);
  EXPECT_EQ(ds.truth.positions.size(), ds.map.size());
  EXPECT_EQ(ds.truth.mask.rows(), ds.map.size());
  EXPECT_EQ(ds.truth.mask.cols(), ds.map.num_aps());
  EXPECT_EQ(ds.truth.mean_rssi.rows(), ds.map.size());

  // Mask consistency: observed cells are non-null, missing cells null.
  for (size_t i = 0; i < ds.map.size(); ++i) {
    for (size_t j = 0; j < ds.map.num_aps(); ++j) {
      const bool observed =
          ds.truth.mask.at(i, j) == rmap::MaskValue::kObserved;
      EXPECT_EQ(observed, !IsNull(ds.map.record(i).rssi[j]));
    }
  }
}

TEST(DatasetTest, SparsityMatchesPaperRegime) {
  // The paper's radio maps are 85.6%-93.7% missing in RSSIs and mostly
  // missing in RPs; the presets must land in the same regime.
  const SurveyDataset ds = MakeKaideDataset(/*scale=*/0.1);
  EXPECT_GT(ds.map.MissingRssiRate(), 0.75);
  EXPECT_LT(ds.map.MissingRssiRate(), 0.99);
  EXPECT_GT(ds.map.MissingRpRate(), 0.5);
  EXPECT_LT(ds.map.MissingRpRate(), 0.98);
}

TEST(DatasetTest, GroundTruthHasBothMissingKinds) {
  const SurveyDataset ds = MakeKaideDataset(/*scale=*/0.1);
  const size_t mars = ds.truth.mask.CountOf(rmap::MaskValue::kMar);
  const size_t mnars = ds.truth.mask.CountOf(rmap::MaskValue::kMnar);
  EXPECT_GT(mars, 0u);
  EXPECT_GT(mnars, 0u);
  // MNARs dominate (unobservability is the main cause of sparsity).
  EXPECT_GT(mnars, mars);
  // MAR share of missing should be small, in the paper's estimated range
  // (7-10%), loosely bounded here.
  const double share = ds.truth.mask.MarShareOfMissing();
  EXPECT_GT(share, 0.004);
  EXPECT_LT(share, 0.3);
}

TEST(DatasetTest, TruePositionsInsideVenue) {
  const SurveyDataset ds = MakeKaideDataset(/*scale=*/0.05);
  for (const auto& p : ds.truth.positions) {
    EXPECT_GE(p.x, -1.0);
    EXPECT_LE(p.x, ds.venue.width + 1.0);
    EXPECT_GE(p.y, -1.0);
    EXPECT_LE(p.y, ds.venue.height + 1.0);
  }
}

TEST(DatasetTest, DeterministicForSameSeed) {
  const SurveyDataset a = MakeKaideDataset(0.05, /*seed=*/9);
  const SurveyDataset b = MakeKaideDataset(0.05, /*seed=*/9);
  ASSERT_EQ(a.map.size(), b.map.size());
  for (size_t i = 0; i < a.map.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.map.record(i).time, b.map.record(i).time);
    EXPECT_EQ(a.map.record(i).has_rp, b.map.record(i).has_rp);
  }
}

TEST(DatasetTest, PresetsDiffer) {
  const SurveyDataset k = MakeKaideDataset(0.05);
  const SurveyDataset l = MakeLonghuDataset(0.05);
  EXPECT_NE(k.venue.name, l.venue.name);
  EXPECT_FALSE(k.venue.bluetooth);
  EXPECT_TRUE(l.venue.bluetooth);
}

}  // namespace
}  // namespace rmi::survey
