#include <gtest/gtest.h>

#include <set>

#include "clustering/differentiation.h"
#include "clustering/kmeans.h"
#include "clustering/strategies.h"
#include "common/missing.h"

namespace rmi::cluster {
namespace {

/// Two well-separated Gaussian blobs in 2-D feature space.
la::Matrix TwoBlobs(size_t per_blob, Rng& rng) {
  la::Matrix x(2 * per_blob, 2);
  for (size_t i = 0; i < per_blob; ++i) {
    x(i, 0) = rng.Gaussian(0.0, 0.3);
    x(i, 1) = rng.Gaussian(0.0, 0.3);
    x(per_blob + i, 0) = rng.Gaussian(10.0, 0.3);
    x(per_blob + i, 1) = rng.Gaussian(10.0, 0.3);
  }
  return x;
}

TEST(KMeansTest, SeparatesTwoBlobs) {
  Rng rng(1);
  la::Matrix x = TwoBlobs(30, rng);
  KMeansParams p;
  p.k = 2;
  const auto res = KMeans(x, p, rng);
  // All of blob 1 in one cluster, all of blob 2 in the other.
  for (size_t i = 1; i < 30; ++i) EXPECT_EQ(res.assignment[i], res.assignment[0]);
  for (size_t i = 31; i < 60; ++i) EXPECT_EQ(res.assignment[i], res.assignment[30]);
  EXPECT_NE(res.assignment[0], res.assignment[30]);
}

TEST(KMeansTest, WssDecreasesWithK) {
  Rng rng(2);
  la::Matrix x = TwoBlobs(25, rng);
  KMeansParams p1, p4;
  p1.k = 1;
  p4.k = 4;
  const double w1 = KMeans(x, p1, rng).wss;
  const double w4 = KMeans(x, p4, rng).wss;
  EXPECT_GT(w1, w4);
}

TEST(KMeansTest, KOneCenterIsMean) {
  Rng rng(3);
  la::Matrix x = TwoBlobs(10, rng);
  KMeansParams p;
  p.k = 1;
  const auto res = KMeans(x, p, rng);
  EXPECT_NEAR(res.centers(0, 0), x.Col(0).Mean(), 1e-9);
}

TEST(KMeansTest, KClampedToSampleCount) {
  Rng rng(4);
  la::Matrix x(3, 2);
  KMeansParams p;
  p.k = 10;
  const auto res = KMeans(x, p, rng);
  for (int a : res.assignment) EXPECT_LT(a, 3);
}

TEST(KMeansTest, ManhattanRuns) {
  Rng rng(5);
  la::Matrix x = TwoBlobs(10, rng);
  KMeansParams p;
  p.k = 2;
  p.manhattan = true;
  const auto res = KMeans(x, p, rng);
  EXPECT_NE(res.assignment[0], res.assignment[10]);
}

TEST(ElbowTest, FindsTwoBlobKnee) {
  Rng rng(6);
  la::Matrix x = TwoBlobs(30, rng);
  KMeansParams base;
  const size_t k = ChooseKElbow(x, {1, 2, 3, 4, 5, 6}, base, rng);
  EXPECT_EQ(k, 2u);
}

TEST(KCandidateLadderTest, CoversRangeAscending) {
  const auto ks = KCandidateLadder(60);
  EXPECT_EQ(ks.front(), 1u);
  EXPECT_EQ(ks.back(), 60u);
  for (size_t i = 1; i < ks.size(); ++i) EXPECT_GT(ks[i], ks[i - 1]);
}

/// A tiny radio map with two rooms: records 0-4 in the left area observe
/// AP0 and AP1; records 5-9 in the right area observe AP2 and AP3. One
/// record in each group randomly misses one of its "home" APs (a MAR).
rmap::RadioMap TwoAreaMap() {
  rmap::RadioMap map(4);
  auto add = [&](std::vector<double> rssi, double x, double t) {
    rmap::Record r;
    r.rssi = std::move(rssi);
    r.has_rp = true;
    r.rp = {x, 1.0};
    r.time = t;
    map.Add(r);
  };
  const double n = kNull;
  add({-50, -60, n, n}, 0.0, 0);
  add({-51, -61, n, n}, 0.5, 1);
  add({-52, n, n, n}, 1.0, 2);  // MAR: AP1 missing in the left area
  add({-53, -63, n, n}, 1.5, 3);
  add({-54, -64, n, n}, 2.0, 4);
  add({n, n, -70, -80}, 10.0, 5);
  add({n, n, -71, -81}, 10.5, 6);
  add({n, n, n, -82}, 11.0, 7);  // MAR: AP2 missing in the right area
  add({n, n, -73, -83}, 11.5, 8);
  add({n, n, -74, -84}, 12.0, 9);
  return map;
}

TEST(BuildSampleSetTest, ProfilesAndLocations) {
  const auto map = TwoAreaMap();
  const SampleSet s = BuildSampleSet(map, 0.1);
  EXPECT_EQ(s.size(), 10u);
  EXPECT_EQ(s.num_aps, 4u);
  EXPECT_EQ(s.features.cols(), 6u);
  EXPECT_EQ(s.profiles[0], (std::vector<uint8_t>{1, 1, 0, 0}));
  EXPECT_EQ(s.profiles[2], (std::vector<uint8_t>{1, 0, 0, 0}));
  EXPECT_DOUBLE_EQ(s.features(5, 4), 1.0);  // 10.0 * 0.1
}

TEST(DifferentiationTest, Algorithm2MarksMarAndMnar) {
  const auto map = TwoAreaMap();
  const SampleSet s = BuildSampleSet(map, 0.1);
  // Perfect clustering by construction.
  Clustering c;
  c.assignment = {0, 0, 0, 0, 0, 1, 1, 1, 1, 1};
  c.k = 2;
  const auto mask = DifferentiateWithClustering(s, c, 0.1);
  // Record 2's missing AP1: 4/5 of the left cluster observes AP1 -> MAR.
  EXPECT_EQ(mask.at(2, 1), rmap::MaskValue::kMar);
  // Record 7's missing AP2: 4/5 of the right cluster observes AP2 -> MAR.
  EXPECT_EQ(mask.at(7, 2), rmap::MaskValue::kMar);
  // Left cluster never sees AP2/AP3 -> MNAR there.
  EXPECT_EQ(mask.at(0, 2), rmap::MaskValue::kMnar);
  EXPECT_EQ(mask.at(3, 3), rmap::MaskValue::kMnar);
  // Observed cells stay observed.
  EXPECT_EQ(mask.at(0, 0), rmap::MaskValue::kObserved);
}

TEST(DifferentiationTest, EtaZeroMakesEverythingMar) {
  const auto map = TwoAreaMap();
  const SampleSet s = BuildSampleSet(map, 0.1);
  Clustering c;
  c.assignment.assign(10, 0);
  c.k = 1;
  const auto mask = DifferentiateWithClustering(s, c, /*eta=*/0.0);
  // With eta = 0, any AP observed at least once in the cluster flips all
  // its missing cells to MAR (every AP is observed somewhere here).
  EXPECT_EQ(mask.CountOf(rmap::MaskValue::kMnar), 0u);
}

TEST(DifferentiationTest, EtaOneMakesEverythingMnar) {
  const auto map = TwoAreaMap();
  const SampleSet s = BuildSampleSet(map, 0.1);
  Clustering c;
  c.assignment.assign(10, 0);
  c.k = 1;
  const auto mask = DifferentiateWithClustering(s, c, /*eta=*/1.0);
  EXPECT_EQ(mask.CountOf(rmap::MaskValue::kMar), 0u);
}

TEST(DifferentiationTest, MarOnlyAndMnarOnlyBaselines) {
  const auto map = TwoAreaMap();
  Rng rng(7);
  const auto mar_mask = MarOnlyDifferentiator().Differentiate(map, rng);
  EXPECT_EQ(mar_mask.CountOf(rmap::MaskValue::kMnar), 0u);
  EXPECT_EQ(mar_mask.CountOf(rmap::MaskValue::kMar), 22u);
  const auto mnar_mask = MnarOnlyDifferentiator().Differentiate(map, rng);
  EXPECT_EQ(mnar_mask.CountOf(rmap::MaskValue::kMar), 0u);
  EXPECT_EQ(mnar_mask.CountOf(rmap::MaskValue::kMnar), 22u);
}

TEST(GroundTruthSamplingTest, ProportionRespected) {
  const auto map = TwoAreaMap();
  const SampleSet s = BuildSampleSet(map, 0.1);
  Rng rng(8);
  const auto gt = SampleGroundTruth(s, /*gamma=*/2.0, /*num_mnar=*/4,
                                    /*group=*/2, rng);
  size_t mars = 0, mnars = 0;
  for (const auto& c : gt.cells) (c.is_mar ? mars : mnars) += 1;
  EXPECT_GT(mnars, 0u);
  EXPECT_GT(mars, 0u);
  EXPECT_NEAR(static_cast<double>(mnars) / static_cast<double>(mars), 2.0, 1.01);
  // Sampled MARs are nullified in the modified set.
  for (const auto& c : gt.cells) {
    if (c.is_mar) {
      EXPECT_EQ(gt.modified.profiles[c.sample][c.ap], 0);
      EXPECT_EQ(s.profiles[c.sample][c.ap], 1);  // original untouched
    } else {
      EXPECT_EQ(s.profiles[c.sample][c.ap], 0);  // MNARs were already missing
    }
  }
}

TEST(DifferentiationAccuracyTest, PerfectClusteringScoresHigh) {
  const auto map = TwoAreaMap();
  const SampleSet s = BuildSampleSet(map, 0.1);
  Rng rng(9);
  const auto gt = SampleGroundTruth(s, 1.0, 4, 2, rng);
  Clustering good;
  good.assignment = {0, 0, 0, 0, 0, 1, 1, 1, 1, 1};
  good.k = 2;
  Clustering bad;
  bad.assignment.assign(10, 0);
  bad.k = 1;
  const double da_good = DifferentiationAccuracy(gt.modified, good, gt.cells, 0.1);
  const double da_bad = DifferentiationAccuracy(gt.modified, bad, gt.cells, 0.1);
  EXPECT_GE(da_good, da_bad);
  EXPECT_GT(da_good, 0.7);
}

TEST(DasaKMTest, SelectsReasonableKOnBlobs) {
  const auto map = TwoAreaMap();
  const SampleSet s = BuildSampleSet(map, 0.1);
  DasaKMeansClusterer::Params p;
  p.max_k = 4;
  p.gammas = {1, 2};
  p.num_mnar = 4;
  p.mnar_group_size = 2;
  DasaKMeansClusterer dasa(p);
  Rng rng(10);
  const Clustering c = dasa.Cluster(s, rng);
  EXPECT_GE(c.k, 1u);
  EXPECT_LE(c.k, 4u);
  EXPECT_EQ(c.assignment.size(), 10u);
}

TEST(EntityExistTest, WallInsideHull) {
  geom::MultiPolygon walls({geom::Polygon::Rectangle(4.9, 0.0, 5.1, 3.0)});
  EXPECT_TRUE(EntityExist({{4, 1}, {6, 1}, {4, 2}, {6, 2}}, walls));
  EXPECT_FALSE(EntityExist({{0, 0}, {2, 0}, {0, 2}, {2, 2}}, walls));
  EXPECT_FALSE(EntityExist({}, walls));
}

TEST(TopoACTest, DoesNotMergeAcrossWall) {
  // Two groups of identical profiles separated by a wall at x = 5.
  rmap::RadioMap map(2);
  auto add = [&](double x) {
    rmap::Record r;
    r.rssi = {-50.0, -60.0};
    r.has_rp = true;
    r.rp = {x, 1.0};
    r.time = x;
    map.Add(r);
  };
  for (double x : {1.0, 1.5, 2.0, 8.0, 8.5, 9.0}) add(x);
  const SampleSet s = BuildSampleSet(map, 0.1);
  geom::MultiPolygon walls({geom::Polygon::Rectangle(4.9, 0.0, 5.1, 3.0)});
  TopoACClusterer topo(&walls);
  Rng rng(11);
  const Clustering c = topo.Cluster(s, rng);
  // Left trio merged, right trio merged, never across the wall.
  EXPECT_EQ(c.k, 2u);
  EXPECT_EQ(c.assignment[0], c.assignment[1]);
  EXPECT_EQ(c.assignment[1], c.assignment[2]);
  EXPECT_EQ(c.assignment[3], c.assignment[4]);
  EXPECT_NE(c.assignment[0], c.assignment[3]);
}

TEST(TopoACTest, NoWallsMergesEverythingNearby) {
  rmap::RadioMap map(1);
  for (double x : {1.0, 2.0, 3.0}) {
    rmap::Record r;
    r.rssi = {-40.0};
    r.has_rp = true;
    r.rp = {x, 0.0};
    r.time = x;
    map.Add(r);
  }
  const SampleSet s = BuildSampleSet(map, 0.1);
  geom::MultiPolygon no_walls;
  TopoACClusterer topo(&no_walls);
  Rng rng(12);
  EXPECT_EQ(topo.Cluster(s, rng).k, 1u);
}

TEST(DbscanTest, FindsDenseGroupsAndIsolatesNoise) {
  rmap::RadioMap map(1);
  auto add = [&](double x, double y) {
    rmap::Record r;
    r.rssi = {-40.0};
    r.has_rp = true;
    r.rp = {x, y};
    r.time = x + y;
    map.Add(r);
  };
  // Dense group near origin (features scaled by 0.1 -> eps small).
  for (double x : {0.0, 0.2, 0.4, 0.6}) add(x, 0.0);
  add(100.0, 100.0);  // isolated noise point
  const SampleSet s = BuildSampleSet(map, 0.1);
  DbscanClusterer db(/*eps=*/0.2, /*min_pts=*/3);
  Rng rng(13);
  const Clustering c = db.Cluster(s, rng);
  EXPECT_EQ(c.assignment[0], c.assignment[1]);
  EXPECT_EQ(c.assignment[1], c.assignment[2]);
  EXPECT_NE(c.assignment[0], c.assignment[4]);  // noise isolated
}

TEST(ClusteringGroupsTest, PartitionsIndices) {
  Clustering c;
  c.assignment = {0, 1, 0, 2};
  c.k = 3;
  const auto g = c.Groups();
  ASSERT_EQ(g.size(), 3u);
  EXPECT_EQ(g[0], (std::vector<size_t>{0, 2}));
  EXPECT_EQ(g[1], (std::vector<size_t>{1}));
  EXPECT_EQ(g[2], (std::vector<size_t>{3}));
}

TEST(ClusteringDifferentiatorTest, EndToEndOnTwoAreas) {
  const auto map = TwoAreaMap();
  geom::MultiPolygon walls({geom::Polygon::Rectangle(5.9, 0.0, 6.1, 3.0)});
  ClusteringDifferentiator diff(std::make_shared<TopoACClusterer>(&walls), 0.1);
  Rng rng(14);
  const auto mask = diff.Differentiate(map, rng);
  EXPECT_EQ(mask.at(2, 1), rmap::MaskValue::kMar);
  EXPECT_EQ(mask.at(0, 2), rmap::MaskValue::kMnar);
  EXPECT_GT(mask.MarShareOfMissing(), 0.0);
  EXPECT_LT(mask.MarShareOfMissing(), 0.5);
}

}  // namespace
}  // namespace rmi::cluster
