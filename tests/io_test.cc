#include <gtest/gtest.h>

#include <cstdio>

#include "common/missing.h"
#include "radiomap/io.h"

namespace rmi::rmap {
namespace {

RadioMap SampleMap() {
  RadioMap map(3);
  Record a;
  a.rssi = {-70.5, kNull, -88.25};
  a.has_rp = true;
  a.rp = {12.5, 3.75};
  a.time = 1.5;
  a.path_id = 2;
  map.Add(a);
  Record b;
  b.rssi = {kNull, kNull, kNull};
  b.has_rp = false;
  b.time = 3.0;
  b.path_id = 2;
  map.Add(b);
  return map;
}

TEST(RadioMapIoTest, RoundTripPreservesEverything) {
  const RadioMap original = SampleMap();
  RadioMap restored;
  const Status s = RadioMapFromCsv(RadioMapToCsv(original), &restored);
  ASSERT_TRUE(s.ok()) << s.message();
  ASSERT_EQ(restored.size(), original.size());
  ASSERT_EQ(restored.num_aps(), original.num_aps());
  for (size_t i = 0; i < original.size(); ++i) {
    const Record& o = original.record(i);
    const Record& r = restored.record(i);
    EXPECT_EQ(r.id, o.id);
    EXPECT_EQ(r.path_id, o.path_id);
    EXPECT_DOUBLE_EQ(r.time, o.time);
    EXPECT_EQ(r.has_rp, o.has_rp);
    if (o.has_rp) {
      EXPECT_DOUBLE_EQ(r.rp.x, o.rp.x);
      EXPECT_DOUBLE_EQ(r.rp.y, o.rp.y);
    }
    for (size_t j = 0; j < 3; ++j) {
      EXPECT_EQ(IsNull(r.rssi[j]), IsNull(o.rssi[j]));
      if (!IsNull(o.rssi[j])) EXPECT_DOUBLE_EQ(r.rssi[j], o.rssi[j]);
    }
  }
}

TEST(RadioMapIoTest, HeaderValidation) {
  RadioMap out;
  EXPECT_FALSE(RadioMapFromCsv("", &out).ok());
  EXPECT_FALSE(RadioMapFromCsv("not a header\n", &out).ok());
  EXPECT_FALSE(RadioMapFromCsv("# rmi-radio-map v1 num_aps=0\nid\n", &out).ok());
}

TEST(RadioMapIoTest, FieldCountValidation) {
  const std::string csv =
      "# rmi-radio-map v1 num_aps=2\nid,path_id,time,rp_x,rp_y,r0,r1\n"
      "0,0,1.0,,\n";  // too few fields
  RadioMap out;
  const Status s = RadioMapFromCsv(csv, &out);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("expected"), std::string::npos);
}

TEST(RadioMapIoTest, HalfSpecifiedRpRejected) {
  const std::string csv =
      "# rmi-radio-map v1 num_aps=1\nid,path_id,time,rp_x,rp_y,r0\n"
      "0,0,1.0,5.0,,-50\n";
  RadioMap out;
  EXPECT_FALSE(RadioMapFromCsv(csv, &out).ok());
}

TEST(RadioMapIoTest, EmptyMapRoundTrips) {
  RadioMap empty(4);
  RadioMap restored;
  ASSERT_TRUE(RadioMapFromCsv(RadioMapToCsv(empty), &restored).ok());
  EXPECT_EQ(restored.size(), 0u);
  EXPECT_EQ(restored.num_aps(), 4u);
}

TEST(RadioMapIoTest, FileRoundTrip) {
  const RadioMap original = SampleMap();
  const std::string path = "/tmp/rmi_io_test_map.csv";
  ASSERT_TRUE(SaveRadioMapCsv(original, path).ok());
  RadioMap restored;
  ASSERT_TRUE(LoadRadioMapCsv(path, &restored).ok());
  EXPECT_EQ(restored.size(), original.size());
  std::remove(path.c_str());
}

TEST(RadioMapIoTest, MissingFileReportsNotFound) {
  RadioMap out;
  const Status s = LoadRadioMapCsv("/nonexistent/rmi.csv", &out);
  EXPECT_EQ(s.code(), Status::Code::kNotFound);
}

}  // namespace
}  // namespace rmi::rmap
