#include <gtest/gtest.h>

#include <cmath>

#include "common/missing.h"
#include "common/rng.h"
#include "indoor/venue.h"
#include "radio/propagation.h"

namespace rmi::radio {
namespace {

indoor::Venue TestVenue() {
  indoor::VenueSpec s;
  s.width = 30;
  s.height = 30;
  s.rooms_x = 2;
  s.rooms_y = 2;
  s.hallway_width = 3;
  s.num_aps = 15;
  s.rp_spacing = 4;
  s.seed = 2;
  return indoor::GenerateVenue(s);
}

TEST(PropagationTest, DeterministicMeanRssi) {
  indoor::Venue v = TestVenue();
  PropagationModel m1(&v, PropagationParams{});
  PropagationModel m2(&v, PropagationParams{});
  for (size_t ap = 0; ap < 5; ++ap) {
    EXPECT_DOUBLE_EQ(m1.MeanRssi(ap, {10, 10}), m2.MeanRssi(ap, {10, 10}));
  }
}

TEST(PropagationTest, SignalDecaysWithDistanceOnAverage) {
  indoor::Venue v = TestVenue();
  PropagationParams p;
  p.shadowing_stddev = 0.0;  // isolate the path-loss term
  PropagationModel m(&v, p);
  const geom::Point ap_pos = v.aps[0].position;
  // Sample along a ray from the AP; mean RSSI must be non-increasing in
  // distance when wall counts are equal, and strictly lower far away.
  const double near = m.MeanRssi(0, {ap_pos.x + 1.0, ap_pos.y});
  const double far = m.MeanRssi(0, {ap_pos.x + 14.0, ap_pos.y});
  EXPECT_GT(near, far);
}

TEST(PropagationTest, WithinOneMeterUsesFloorDistance) {
  indoor::Venue v = TestVenue();
  PropagationParams p;
  p.shadowing_stddev = 0.0;
  PropagationModel m(&v, p);
  const geom::Point ap_pos = v.aps[0].position;
  // At the AP itself distance clamps to 1 m: close to TX power (modulo
  // walls at the quantized cell, normally zero at the AP's own cell).
  const double at_ap = m.MeanRssi(0, ap_pos);
  EXPECT_LE(at_ap, p.tx_power_1m_dbm + 1e-9);
  EXPECT_GT(at_ap, p.tx_power_1m_dbm - 3 * p.wall_attenuation_dbm);
}

TEST(PropagationTest, WallsAttenuate) {
  // Two-room venue with one AP; a point behind a wall sees a weaker mean
  // signal than an equidistant point with line of sight.
  indoor::VenueSpec s;
  s.width = 24;
  s.height = 24;
  s.rooms_x = 1;
  s.rooms_y = 1;
  s.hallway_width = 6;
  s.num_aps = 1;
  s.seed = 3;
  indoor::Venue v = indoor::GenerateVenue(s);
  // Place the AP in the hallway south of the room by overriding.
  v.aps[0].position = {12.0, 3.0};
  PropagationParams p;
  p.shadowing_stddev = 0.0;
  p.wall_attenuation_dbm = 10.0;
  PropagationModel m(&v, p);
  // Room interior point offset from the door (the door gap is at x = 12),
  // so the signal path crosses the room wall; the hallway point is at the
  // same distance with clear line of sight.
  const double through_wall = m.MeanRssi(0, {8.5, 13.0});
  const double open = m.MeanRssi(0, {1.5, 3.0});
  EXPECT_LT(through_wall, open - 5.0);
}

TEST(PropagationTest, ObservabilityThreshold) {
  indoor::Venue v = TestVenue();
  PropagationModel m(&v, PropagationParams{});
  for (size_t ap = 0; ap < v.aps.size(); ++ap) {
    for (const auto& rp : v.rps) {
      EXPECT_EQ(m.IsObservable(ap, rp),
                m.MeanRssi(ap, rp) >= m.params().sensitivity_dbm);
    }
  }
}

TEST(PropagationTest, SampleRssiClampedAndNoisy) {
  indoor::Venue v = TestVenue();
  PropagationModel m(&v, PropagationParams{});
  Rng rng(4);
  // Find an observable (ap, rp) pair.
  for (size_t ap = 0; ap < v.aps.size(); ++ap) {
    for (const auto& rp : v.rps) {
      if (!m.IsObservable(ap, rp)) continue;
      double min_v = 0, max_v = -200;
      for (int i = 0; i < 50; ++i) {
        const double s = m.SampleRssi(ap, rp, rng);
        EXPECT_GE(s, kMinObservableRssiDbm);
        EXPECT_LE(s, kMaxObservableRssiDbm);
        min_v = std::min(min_v, s);
        max_v = std::max(max_v, s);
      }
      EXPECT_GT(max_v - min_v, 0.0);  // noise present
      return;
    }
  }
  FAIL() << "no observable pair found";
}

TEST(PropagationTest, ObservableFractionIsSparse) {
  // The MNAR mechanism must make most (RP, AP) pairs unobservable —
  // otherwise radio maps would not be sparse like the paper's (85%+
  // missing).
  indoor::Venue v = indoor::GenerateVenue(indoor::KaideSpec(0.1));
  PropagationModel m(&v, PropagationParams{});
  const double frac = m.ObservableFraction();
  EXPECT_GT(frac, 0.01);
  EXPECT_LT(frac, 0.40);
}

TEST(PropagationTest, BluetoothProfileIsWeaker) {
  indoor::Venue v = TestVenue();
  PropagationParams wifi;
  wifi.shadowing_stddev = 0.0;
  PropagationParams bt = PropagationParams::Bluetooth();
  bt.shadowing_stddev = 0.0;
  PropagationModel mw(&v, wifi), mb(&v, bt);
  // At 10 m, Bluetooth mean RSSI is far below Wi-Fi's.
  const geom::Point p{v.aps[0].position.x + 10.0, v.aps[0].position.y};
  EXPECT_LT(mb.MeanRssi(0, p), mw.MeanRssi(0, p));
}

TEST(PropagationTest, ShadowingIsStaticPerCell) {
  indoor::Venue v = TestVenue();
  PropagationModel m(&v, PropagationParams{});
  // Same cell => identical mean (static environment), repeated calls too.
  const double a = m.MeanRssi(3, {10.3, 10.4});
  const double b = m.MeanRssi(3, {10.3, 10.4});
  EXPECT_DOUBLE_EQ(a, b);
}

TEST(PropagationTest, MarDropFrequencyMatchesParam) {
  indoor::Venue v = TestVenue();
  PropagationParams p;
  p.mar_drop_prob = 0.25;
  PropagationModel m(&v, p);
  Rng rng(5);
  int drops = 0;
  for (int i = 0; i < 20000; ++i) drops += m.SampleMarDrop(rng);
  EXPECT_NEAR(drops / 20000.0, 0.25, 0.02);
}

TEST(PropagationTest, SpatialClusteringOfObservability) {
  // MNAR regions are spatially coherent: two RPs within 2 m agree on
  // observability much more often than random RP pairs (cf. paper Fig. 3).
  indoor::Venue v = indoor::GenerateVenue(indoor::KaideSpec(0.05));
  PropagationModel m(&v, PropagationParams{});
  size_t near_agree = 0, near_total = 0, far_agree = 0, far_total = 0;
  for (size_t i = 0; i < v.rps.size(); ++i) {
    for (size_t j = i + 1; j < v.rps.size(); ++j) {
      const double d = geom::Distance(v.rps[i], v.rps[j]);
      for (size_t ap = 0; ap < v.aps.size(); ++ap) {
        const bool agree = m.IsObservable(ap, v.rps[i]) == m.IsObservable(ap, v.rps[j]);
        if (d < 3.0) {
          near_agree += agree;
          ++near_total;
        } else if (d > 20.0) {
          far_agree += agree;
          ++far_total;
        }
      }
    }
  }
  ASSERT_GT(near_total, 0u);
  ASSERT_GT(far_total, 0u);
  EXPECT_GT(static_cast<double>(near_agree) / near_total,
            static_cast<double>(far_agree) / far_total);
}

}  // namespace
}  // namespace rmi::radio
