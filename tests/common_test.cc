#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "common/missing.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/table.h"
#include "common/timer.h"

namespace rmi {
namespace {

TEST(MissingTest, NullSentinelRoundTrips) {
  EXPECT_TRUE(IsNull(kNull));
  EXPECT_FALSE(IsNull(0.0));
  EXPECT_FALSE(IsNull(-100.0));
  EXPECT_FALSE(IsNull(kMnarFillDbm));
}

TEST(MissingTest, ClampRssiBounds) {
  EXPECT_DOUBLE_EQ(ClampRssi(-150.0), kMinObservableRssiDbm);
  EXPECT_DOUBLE_EQ(ClampRssi(10.0), kMaxObservableRssiDbm);
  EXPECT_DOUBLE_EQ(ClampRssi(-55.5), -55.5);
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.Uniform(), b.Uniform());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.UniformInt(0, 1000) == b.UniformInt(0, 1000));
  EXPECT_LT(same, 10);
}

TEST(RngTest, UniformIntInRange) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.UniformInt(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, UniformInHalfOpenRange) {
  Rng rng(4);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.Uniform(2.0, 3.0);
    EXPECT_GE(v, 2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(RngTest, GaussianMoments) {
  Rng rng(5);
  RunningStats st;
  for (int i = 0; i < 20000; ++i) st.Add(rng.Gaussian(2.0, 3.0));
  EXPECT_NEAR(st.mean(), 2.0, 0.1);
  EXPECT_NEAR(st.stddev(), 3.0, 0.1);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(6);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(RngTest, SampleWithoutReplacementIsDistinct) {
  Rng rng(8);
  auto s = rng.SampleWithoutReplacement(50, 20);
  std::set<size_t> uniq(s.begin(), s.end());
  EXPECT_EQ(uniq.size(), 20u);
  for (size_t v : s) EXPECT_LT(v, 50u);
}

TEST(RngTest, SampleAllElements) {
  Rng rng(9);
  auto s = rng.SampleWithoutReplacement(10, 10);
  std::set<size_t> uniq(s.begin(), s.end());
  EXPECT_EQ(uniq.size(), 10u);
}

TEST(RngTest, ShufflePreservesMultiset) {
  Rng rng(10);
  std::vector<int> v = {1, 2, 3, 4, 5, 6};
  auto sorted = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(RngTest, ForkIsIndependent) {
  Rng a(11);
  Rng child = a.Fork();
  // Forked stream differs from parent continuation.
  int same = 0;
  for (int i = 0; i < 50; ++i) same += (a.UniformInt(0, 1 << 20) == child.UniformInt(0, 1 << 20));
  EXPECT_LT(same, 5);
}

TEST(RunningStatsTest, BasicMoments) {
  RunningStats st;
  for (double v : {1.0, 2.0, 3.0, 4.0}) st.Add(v);
  EXPECT_EQ(st.count(), 4u);
  EXPECT_DOUBLE_EQ(st.mean(), 2.5);
  EXPECT_NEAR(st.variance(), 5.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(st.min(), 1.0);
  EXPECT_DOUBLE_EQ(st.max(), 4.0);
}

TEST(StatsTest, MeanAndStddev) {
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(Mean({2.0, 4.0}), 3.0);
  EXPECT_DOUBLE_EQ(Stddev({5.0}), 0.0);
  EXPECT_NEAR(Stddev({1.0, 2.0, 3.0}), 1.0, 1e-12);
}

TEST(StatsTest, PercentileInterpolates) {
  std::vector<double> v = {4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(Percentile(v, 0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 100), 4.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 50), 2.5);
}

TEST(StatsTest, PearsonCorrelationEndpoints) {
  std::vector<double> a = {1, 2, 3, 4};
  std::vector<double> b = {2, 4, 6, 8};
  std::vector<double> c = {8, 6, 4, 2};
  EXPECT_NEAR(PearsonCorrelation(a, b), 1.0, 1e-12);
  EXPECT_NEAR(PearsonCorrelation(a, c), -1.0, 1e-12);
  std::vector<double> flat = {1, 1, 1, 1};
  EXPECT_DOUBLE_EQ(PearsonCorrelation(a, flat), 0.0);
}

TEST(TableTest, AlignedRendering) {
  Table t({"name", "value"});
  t.AddRow({"alpha", "1"});
  t.AddRow({"b", "22.5"});
  const std::string s = t.ToString();
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("22.5"), std::string::npos);
  // Header separator present.
  EXPECT_NE(s.find("|-"), std::string::npos);
}

TEST(TableTest, CsvEscapesCommas) {
  Table t({"a", "b"});
  t.AddRow({"x,y", "2"});
  EXPECT_NE(t.ToCsv().find("\"x,y\""), std::string::npos);
}

TEST(TableTest, NumFormatsPrecision) {
  EXPECT_EQ(Table::Num(1.23456, 2), "1.23");
  EXPECT_EQ(Table::Num(2.0, 0), "2");
}

TEST(TimerTest, MeasuresElapsed) {
  Timer t;
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink += std::sqrt(static_cast<double>(i));
  EXPECT_GE(t.ElapsedSeconds(), 0.0);
  EXPECT_GE(t.ElapsedMillis(), t.ElapsedSeconds());  // ms >= s numerically
}

}  // namespace
}  // namespace rmi
