#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <set>
#include <thread>
#include <vector>

#include "common/missing.h"
#include "common/mpmc_queue.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/table.h"
#include "common/timer.h"

namespace rmi {
namespace {

TEST(MissingTest, NullSentinelRoundTrips) {
  EXPECT_TRUE(IsNull(kNull));
  EXPECT_FALSE(IsNull(0.0));
  EXPECT_FALSE(IsNull(-100.0));
  EXPECT_FALSE(IsNull(kMnarFillDbm));
}

TEST(MissingTest, ClampRssiBounds) {
  EXPECT_DOUBLE_EQ(ClampRssi(-150.0), kMinObservableRssiDbm);
  EXPECT_DOUBLE_EQ(ClampRssi(10.0), kMaxObservableRssiDbm);
  EXPECT_DOUBLE_EQ(ClampRssi(-55.5), -55.5);
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.Uniform(), b.Uniform());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.UniformInt(0, 1000) == b.UniformInt(0, 1000));
  EXPECT_LT(same, 10);
}

TEST(RngTest, UniformIntInRange) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.UniformInt(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, UniformInHalfOpenRange) {
  Rng rng(4);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.Uniform(2.0, 3.0);
    EXPECT_GE(v, 2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(RngTest, GaussianMoments) {
  Rng rng(5);
  RunningStats st;
  for (int i = 0; i < 20000; ++i) st.Add(rng.Gaussian(2.0, 3.0));
  EXPECT_NEAR(st.mean(), 2.0, 0.1);
  EXPECT_NEAR(st.stddev(), 3.0, 0.1);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(6);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(RngTest, SampleWithoutReplacementIsDistinct) {
  Rng rng(8);
  auto s = rng.SampleWithoutReplacement(50, 20);
  std::set<size_t> uniq(s.begin(), s.end());
  EXPECT_EQ(uniq.size(), 20u);
  for (size_t v : s) EXPECT_LT(v, 50u);
}

TEST(RngTest, SampleAllElements) {
  Rng rng(9);
  auto s = rng.SampleWithoutReplacement(10, 10);
  std::set<size_t> uniq(s.begin(), s.end());
  EXPECT_EQ(uniq.size(), 10u);
}

TEST(RngTest, ShufflePreservesMultiset) {
  Rng rng(10);
  std::vector<int> v = {1, 2, 3, 4, 5, 6};
  auto sorted = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(RngTest, ForkIsIndependent) {
  Rng a(11);
  Rng child = a.Fork();
  // Forked stream differs from parent continuation.
  int same = 0;
  for (int i = 0; i < 50; ++i) same += (a.UniformInt(0, 1 << 20) == child.UniformInt(0, 1 << 20));
  EXPECT_LT(same, 5);
}

TEST(RunningStatsTest, BasicMoments) {
  RunningStats st;
  for (double v : {1.0, 2.0, 3.0, 4.0}) st.Add(v);
  EXPECT_EQ(st.count(), 4u);
  EXPECT_DOUBLE_EQ(st.mean(), 2.5);
  EXPECT_NEAR(st.variance(), 5.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(st.min(), 1.0);
  EXPECT_DOUBLE_EQ(st.max(), 4.0);
}

TEST(RunningStatsTest, MergeMatchesSingleStream) {
  // Two independently accumulated shards merged must match one accumulator
  // that saw every sample — the contract Histogram::Summary relies on.
  Rng rng(42);
  std::vector<double> all;
  RunningStats a, b, reference;
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.Uniform(-50.0, 150.0);
    all.push_back(v);
    reference.Add(v);
    (i % 3 == 0 ? a : b).Add(v);
  }
  RunningStats merged = a;
  merged.Merge(b);
  EXPECT_EQ(merged.count(), reference.count());
  EXPECT_NEAR(merged.mean(), reference.mean(), 1e-9);
  EXPECT_NEAR(merged.variance(), reference.variance(), 1e-6);
  EXPECT_DOUBLE_EQ(merged.min(), reference.min());
  EXPECT_DOUBLE_EQ(merged.max(), reference.max());
  // And against the closed-form moments of the raw samples.
  EXPECT_NEAR(merged.mean(), Mean(all), 1e-9);
  EXPECT_NEAR(merged.stddev(), Stddev(all), 1e-6);
}

TEST(RunningStatsTest, MergeEmptySides) {
  RunningStats empty, filled;
  for (double v : {1.0, 2.0, 3.0}) filled.Add(v);

  RunningStats a = filled;
  a.Merge(empty);  // no-op
  EXPECT_EQ(a.count(), 3u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);

  RunningStats b = empty;
  b.Merge(filled);  // adopt
  EXPECT_EQ(b.count(), 3u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
  EXPECT_DOUBLE_EQ(b.min(), 1.0);
  EXPECT_DOUBLE_EQ(b.max(), 3.0);

  RunningStats c;
  c.Merge(empty);  // empty + empty stays empty
  EXPECT_EQ(c.count(), 0u);
  EXPECT_DOUBLE_EQ(c.mean(), 0.0);
  EXPECT_DOUBLE_EQ(c.variance(), 0.0);
}

TEST(RunningStatsTest, FromMomentsReentersMergeChain) {
  RunningStats reference;
  for (double v : {2.0, 4.0, 6.0, 8.0}) reference.Add(v);
  // Rebuild from raw moments (the path a histogram shard takes: it keeps
  // count/sum/sumsq in atomics, m2 = sumsq - n*mean^2).
  const double n = 4.0, sum = 20.0, sumsq = 120.0;
  const double mean = sum / n;
  const double m2 = sumsq - n * mean * mean;
  const RunningStats rebuilt =
      RunningStats::FromMoments(4, mean, m2, 2.0, 8.0);
  EXPECT_EQ(rebuilt.count(), reference.count());
  EXPECT_DOUBLE_EQ(rebuilt.mean(), reference.mean());
  EXPECT_NEAR(rebuilt.variance(), reference.variance(), 1e-12);

  RunningStats merged = rebuilt;
  RunningStats other;
  for (double v : {1.0, 3.0}) other.Add(v);
  merged.Merge(other);
  RunningStats direct;
  for (double v : {2.0, 4.0, 6.0, 8.0, 1.0, 3.0}) direct.Add(v);
  EXPECT_EQ(merged.count(), direct.count());
  EXPECT_NEAR(merged.mean(), direct.mean(), 1e-12);
  EXPECT_NEAR(merged.variance(), direct.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(merged.min(), 1.0);
  EXPECT_DOUBLE_EQ(merged.max(), 8.0);
}

TEST(StatsTest, MeanAndStddev) {
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(Mean({2.0, 4.0}), 3.0);
  EXPECT_DOUBLE_EQ(Stddev({5.0}), 0.0);
  EXPECT_NEAR(Stddev({1.0, 2.0, 3.0}), 1.0, 1e-12);
}

TEST(StatsTest, PercentileInterpolates) {
  std::vector<double> v = {4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(Percentile(v, 0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 100), 4.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 50), 2.5);
}

TEST(StatsTest, PearsonCorrelationEndpoints) {
  std::vector<double> a = {1, 2, 3, 4};
  std::vector<double> b = {2, 4, 6, 8};
  std::vector<double> c = {8, 6, 4, 2};
  EXPECT_NEAR(PearsonCorrelation(a, b), 1.0, 1e-12);
  EXPECT_NEAR(PearsonCorrelation(a, c), -1.0, 1e-12);
  std::vector<double> flat = {1, 1, 1, 1};
  EXPECT_DOUBLE_EQ(PearsonCorrelation(a, flat), 0.0);
}

TEST(TableTest, AlignedRendering) {
  Table t({"name", "value"});
  t.AddRow({"alpha", "1"});
  t.AddRow({"b", "22.5"});
  const std::string s = t.ToString();
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("22.5"), std::string::npos);
  // Header separator present.
  EXPECT_NE(s.find("|-"), std::string::npos);
}

TEST(TableTest, CsvEscapesCommas) {
  Table t({"a", "b"});
  t.AddRow({"x,y", "2"});
  EXPECT_NE(t.ToCsv().find("\"x,y\""), std::string::npos);
}

TEST(TableTest, NumFormatsPrecision) {
  EXPECT_EQ(Table::Num(1.23456, 2), "1.23");
  EXPECT_EQ(Table::Num(2.0, 0), "2");
}

TEST(MpmcRingQueueTest, FifoSingleThreadAndBoundaries) {
  MpmcRingQueue<int> q(4);
  EXPECT_EQ(q.capacity(), 4u);
  EXPECT_TRUE(q.ApproxEmpty());
  int out = -1;
  EXPECT_FALSE(q.TryPop(&out));  // empty
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(q.TryPush(int(i)));
  EXPECT_FALSE(q.TryPush(99));  // full: bounded backpressure, not growth
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(q.TryPop(&out));
    EXPECT_EQ(out, i);  // FIFO
  }
  EXPECT_FALSE(q.TryPop(&out));
  // Wrap-around laps reuse cells correctly.
  for (int lap = 0; lap < 3; ++lap) {
    EXPECT_TRUE(q.TryPush(100 + lap));
    ASSERT_TRUE(q.TryPop(&out));
    EXPECT_EQ(out, 100 + lap);
  }
}

TEST(MpmcRingQueueTest, ConcurrentProducersConsumersLoseNothing) {
  // 4 producers x 2 consumers over a deliberately small ring so both the
  // full and the empty path are exercised constantly. Every pushed value
  // must be popped exactly once.
  MpmcRingQueue<size_t> q(64);
  const size_t kProducers = 4, kConsumers = 2, kPerProducer = 5000;
  const size_t kTotal = kProducers * kPerProducer;
  std::vector<std::atomic<int>> seen(kTotal);
  for (auto& s : seen) s.store(0);
  std::atomic<size_t> popped{0};

  std::vector<std::thread> threads;
  for (size_t p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      for (size_t i = 0; i < kPerProducer; ++i) {
        size_t value = p * kPerProducer + i;
        while (!q.TryPush(std::move(value))) std::this_thread::yield();
      }
    });
  }
  for (size_t c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      size_t value = 0;
      while (popped.load(std::memory_order_relaxed) < kTotal) {
        if (q.TryPop(&value)) {
          seen[value].fetch_add(1);
          popped.fetch_add(1, std::memory_order_relaxed);
        } else {
          std::this_thread::yield();
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(popped.load(), kTotal);
  for (size_t v = 0; v < kTotal; ++v) {
    ASSERT_EQ(seen[v].load(), 1) << "value " << v;
  }
  EXPECT_TRUE(q.ApproxEmpty());
}

TEST(TimerTest, MeasuresElapsed) {
  Timer t;
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink += std::sqrt(static_cast<double>(i));
  EXPECT_GE(t.ElapsedSeconds(), 0.0);
  EXPECT_GE(t.ElapsedMillis(), t.ElapsedSeconds());  // ms >= s numerically
}

}  // namespace
}  // namespace rmi
