// Property-based autodiff checks: randomly composed computation graphs are
// verified against central-difference numeric gradients.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <vector>

#include "autodiff/tensor.h"

namespace rmi::ad {
namespace {

/// Builds a random smooth computation graph over `params` and returns a
/// scalar. Uses only smooth ops (no ReLU kinks) so finite differences are
/// well-behaved.
Tensor RandomGraph(const std::vector<Tensor>& params, Rng& rng) {
  // Working set of same-shape (1 x c) intermediates.
  const size_t c = params[0].cols();
  std::vector<Tensor> pool = params;
  const size_t ops = 4 + rng.Index(6);
  for (size_t i = 0; i < ops; ++i) {
    const Tensor& a = pool[rng.Index(pool.size())];
    const Tensor& b = pool[rng.Index(pool.size())];
    switch (rng.Index(6)) {
      case 0:
        pool.push_back(Add(a, b));
        break;
      case 1:
        pool.push_back(Sub(a, b));
        break;
      case 2:
        pool.push_back(Mul(a, Sigmoid(b)));
        break;
      case 3:
        pool.push_back(Tanh(a));
        break;
      case 4:
        pool.push_back(Scale(a, rng.Uniform(-1.5, 1.5)));
        break;
      default:
        pool.push_back(Mul(SoftmaxRows(a), b));
        break;
    }
  }
  (void)c;
  Tensor out = Mean(Mul(pool.back(), pool.back()));
  // Mix in every param so all receive gradient.
  for (const Tensor& p : params) out = Add(out, Scale(Mean(p), 0.3));
  return out;
}

class AutodiffPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(AutodiffPropertyTest, RandomGraphsMatchNumericGradients) {
  Rng rng(4000 + GetParam());
  const size_t c = 1 + rng.Index(4);
  std::vector<Tensor> params;
  for (int p = 0; p < 3; ++p) {
    params.push_back(Tensor::Param(la::Matrix::Random(1, c, rng, -1.0, 1.0)));
  }
  // The graph construction itself must be deterministic across rebuilds:
  // rebuild with a forked, re-seeded rng each evaluation.
  const uint64_t graph_seed = rng.engine()();
  auto eval = [&]() {
    Rng graph_rng(graph_seed);
    return RandomGraph(params, graph_rng);
  };

  Tensor loss = eval();
  for (Tensor& p : params) p.ZeroGrad();
  loss.Backward();
  std::vector<la::Matrix> analytic;
  for (const Tensor& p : params) analytic.push_back(p.grad());

  const double eps = 1e-6;
  for (size_t pi = 0; pi < params.size(); ++pi) {
    la::Matrix& w = params[pi].mutable_value();
    for (size_t i = 0; i < w.size(); ++i) {
      const double orig = w.data()[i];
      w.data()[i] = orig + eps;
      const double up = eval().value()(0, 0);
      w.data()[i] = orig - eps;
      const double down = eval().value()(0, 0);
      w.data()[i] = orig;
      const double numeric = (up - down) / (2 * eps);
      EXPECT_NEAR(analytic[pi].data()[i], numeric, 2e-5)
          << "param " << pi << " entry " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AutodiffPropertyTest, ::testing::Range(0, 12));

TEST(AutodiffPropertyTest, DeepChainGradientsStayFinite) {
  // 200-step chain: iterative backward must not overflow the stack and the
  // gradient must stay finite (tanh keeps values bounded).
  Rng rng(5);
  Tensor x = Tensor::Param(la::Matrix::Random(1, 4, rng));
  Tensor h = x;
  for (int i = 0; i < 200; ++i) {
    h = Tanh(Scale(h, 1.1));
  }
  Tensor loss = Mean(h);
  loss.Backward();
  EXPECT_TRUE(x.grad().AllFinite());
}

TEST(AutodiffPropertyTest, WideFanOutAccumulates) {
  // y = sum of k copies of mean(x): gradient is k/n each.
  Rng rng(6);
  Tensor x = Tensor::Param(la::Matrix::Random(1, 5, rng));
  Tensor acc;
  const int k = 17;
  for (int i = 0; i < k; ++i) {
    Tensor m = Mean(x);
    acc = acc.defined() ? Add(acc, m) : m;
  }
  acc.Backward();
  for (size_t j = 0; j < 5; ++j) {
    EXPECT_NEAR(x.grad()(0, j), k / 5.0, 1e-12);
  }
}

}  // namespace
}  // namespace rmi::ad
