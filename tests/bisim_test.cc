#include <gtest/gtest.h>

#include <cmath>

#include "bisim/bisim.h"
#include "common/missing.h"

namespace rmi::bisim {
namespace {

/// Builds the paper's Table III radio map (5 records, 5 APs, one path) with
/// the times of Table III — the golden input for the Table IV time-lag test.
rmap::RadioMap PaperTableIIIMap() {
  rmap::RadioMap map(5);
  const double n = kNull;
  auto add = [&](std::vector<double> rssi, bool has_rp, geom::Point rp,
                 double time) {
    rmap::Record r;
    r.rssi = std::move(rssi);
    r.has_rp = has_rp;
    r.rp = rp;
    r.time = time;
    map.Add(r);
  };
  add({-70, -83, -76, n, n}, true, {1, 1}, 1);    // t2 = 1
  add({-71, n, -78, n, n}, false, {}, 3);         // t3 = 3
  add({n, n, -80, -68, n}, true, {5, 5}, 8);      // t4 = 8
  add({-74, -77, n, n, -81}, false, {}, 12);      // t6 = 12
  add({n, n, n, n, n}, true, {8, 8}, 16);         // t8 = 16
  return map;
}

/// Mask treating every missing cell as MAR (m = 0) so the time-lag vectors
/// match Table IV exactly.
rmap::MaskMatrix AllMarMask(const rmap::RadioMap& map) {
  rmap::MaskMatrix mask(map.size(), map.num_aps());
  for (size_t i = 0; i < map.size(); ++i) {
    for (size_t j = 0; j < map.num_aps(); ++j) {
      if (IsNull(map.record(i).rssi[j])) {
        mask.set(i, j, rmap::MaskValue::kMar);
      }
    }
  }
  return mask;
}

BiSimConfig TestConfig() {
  BiSimConfig cfg;
  cfg.hidden = 8;
  cfg.attention_hidden = 8;
  cfg.epochs = 3;
  cfg.loc_scale = 1.0 / 10.0;
  cfg.time_scale = 1.0;  // keep raw seconds so Table IV matches
  return cfg;
}

TEST(BuildSequencesTest, ReproducesPaperTableIV) {
  const auto map = PaperTableIIIMap();
  const auto mask = AllMarMask(map);
  BiSimConfig cfg = TestConfig();
  cfg.seq_len = 5;
  const auto seqs = BuildSequences(map, mask, cfg);
  ASSERT_EQ(seqs.size(), 1u);
  const Sequence& s = seqs[0];
  ASSERT_EQ(s.size(), 5u);

  // Mask vectors m1..m5 (Table IV).
  const double m_expect[5][5] = {{1, 1, 1, 0, 0},
                                 {1, 0, 1, 0, 0},
                                 {0, 0, 1, 1, 0},
                                 {1, 1, 0, 0, 1},
                                 {0, 0, 0, 0, 0}};
  for (size_t i = 0; i < 5; ++i) {
    for (size_t j = 0; j < 5; ++j) {
      EXPECT_DOUBLE_EQ(s[i].m(0, j), m_expect[i][j]) << i << "," << j;
    }
  }

  // Time-lag vectors delta1..delta5 (Table IV).
  const double d_expect[5][5] = {{0, 0, 0, 0, 0},
                                 {2, 2, 2, 2, 2},
                                 {5, 7, 5, 7, 7},
                                 {9, 11, 4, 4, 11},
                                 {4, 4, 8, 8, 4}};
  // Note: the paper's Table IV uses slightly different dt values (3, 5, ...)
  // because its delta2 assumes t3 - t1 = 3 while the radio-map record times
  // are t2 = 1 and t3 = 3 (dt = 2). The recurrence structure (Eq. 1) is what
  // is checked here: observed previous -> plain dt; missing previous ->
  // accumulated lag.
  for (size_t i = 0; i < 5; ++i) {
    for (size_t j = 0; j < 5; ++j) {
      EXPECT_DOUBLE_EQ(s[i].delta(0, j), d_expect[i][j]) << i << "," << j;
    }
  }

  // RP masks k1..k5 (Table IV): records 1, 3, 5 have RPs.
  EXPECT_DOUBLE_EQ(s[0].k(0, 0), 1);
  EXPECT_DOUBLE_EQ(s[1].k(0, 0), 0);
  EXPECT_DOUBLE_EQ(s[2].k(0, 0), 1);
  EXPECT_DOUBLE_EQ(s[3].k(0, 0), 0);
  EXPECT_DOUBLE_EQ(s[4].k(0, 0), 1);
}

TEST(BuildSequencesTest, NormalizesRssiAndLocation) {
  const auto map = PaperTableIIIMap();
  const auto seqs = BuildSequences(map, AllMarMask(map), TestConfig());
  const Sequence& s = seqs[0];
  EXPECT_NEAR(s[0].f(0, 0), (-70 + 100) / 100.0, 1e-12);
  EXPECT_DOUBLE_EQ(s[0].f(0, 3), 0.0);  // missing -> 0
  EXPECT_NEAR(s[0].l(0, 0), 0.1, 1e-12);  // 1 * 1/10
}

TEST(BuildSequencesTest, SlicesLongPaths) {
  const auto map = PaperTableIIIMap();
  BiSimConfig cfg = TestConfig();
  cfg.seq_len = 2;
  const auto seqs = BuildSequences(map, AllMarMask(map), cfg);
  ASSERT_EQ(seqs.size(), 3u);  // 2 + 2 + 1
  EXPECT_EQ(seqs[0].size(), 2u);
  EXPECT_EQ(seqs[2].size(), 1u);
  // Each slice restarts its time lags (first unit delta = 0).
  EXPECT_DOUBLE_EQ(seqs[1][0].delta(0, 0), 0.0);
}

TEST(BiSimModelTest, ForwardShapesAndFiniteness) {
  Rng rng(1);
  BiSimModel model(5, TestConfig(), rng);
  const auto map = PaperTableIIIMap();
  const auto seqs = BuildSequences(map, AllMarMask(map), TestConfig());
  const auto out = model.Forward(seqs[0], /*compute_loss=*/true);
  ASSERT_EQ(out.f_hat.size(), 5u);
  ASSERT_EQ(out.l_hat.size(), 5u);
  for (const auto& f : out.f_hat) {
    EXPECT_EQ(f.cols(), 5u);
    EXPECT_TRUE(f.AllFinite());
  }
  EXPECT_TRUE(out.loss.defined());
  EXPECT_GE(out.loss.value()(0, 0), 0.0);
}

TEST(BiSimModelTest, CombinationKeepsObservedValues) {
  // f^c must equal the input where observed (Eq. 3 applied in both
  // directions, then averaged: observed entries are identical in both).
  Rng rng(2);
  BiSimModel model(5, TestConfig(), rng);
  const auto map = PaperTableIIIMap();
  const auto seqs = BuildSequences(map, AllMarMask(map), TestConfig());
  const auto out = model.Forward(seqs[0], false);
  const Sequence& s = seqs[0];
  for (size_t t = 0; t < s.size(); ++t) {
    for (size_t j = 0; j < 5; ++j) {
      if (s[t].m(0, j) == 1.0) {
        EXPECT_NEAR(out.f_hat[t](0, j), s[t].f(0, j), 1e-12);
      }
    }
  }
}

TEST(BiSimModelTest, LossBackwardPopulatesAllParams) {
  Rng rng(3);
  BiSimConfig cfg = TestConfig();
  BiSimModel model(5, cfg, rng);
  const auto map = PaperTableIIIMap();
  const auto seqs = BuildSequences(map, AllMarMask(map), cfg);
  auto out = model.Forward(seqs[0], true);
  out.loss.Backward();
  size_t nonzero = 0;
  for (const auto& p : model.Params()) {
    if (p.grad().MaxAbs() > 0) ++nonzero;
  }
  // All but possibly the unused decoder-time-lag params receive gradient.
  EXPECT_GE(nonzero, model.Params().size() - 2);
}

class AblationTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(AblationTest, AllVariantsRunAndTrain) {
  auto [att, lag] = GetParam();
  BiSimConfig cfg = TestConfig();
  cfg.attention = static_cast<BiSimConfig::Attention>(att);
  cfg.time_lag = static_cast<BiSimConfig::TimeLag>(lag);
  Rng rng(4);
  BiSimModel model(5, cfg, rng);
  const auto map = PaperTableIIIMap();
  const auto seqs = BuildSequences(map, AllMarMask(map), cfg);
  auto out = model.Forward(seqs[0], true);
  EXPECT_TRUE(std::isfinite(out.loss.value()(0, 0)));
  out.loss.Backward();  // no crash, finite grads
  for (const auto& p : model.Params()) EXPECT_TRUE(p.grad().AllFinite());
}

INSTANTIATE_TEST_SUITE_P(
    Variants, AblationTest,
    ::testing::Combine(::testing::Range(0, 3),   // attention variants
                       ::testing::Range(0, 4))); // time-lag variants

TEST(BiSimImputerTest, ProducesCompleteMap) {
  const auto map = PaperTableIIIMap();
  auto mask = AllMarMask(map);
  BiSimImputer imputer(TestConfig());
  Rng rng(5);
  const auto imputed = imputer.Impute(map, mask, rng);
  ASSERT_EQ(imputed.size(), map.size());
  for (size_t i = 0; i < imputed.size(); ++i) {
    EXPECT_TRUE(imputed.record(i).has_rp);
    for (double v : imputed.record(i).rssi) {
      EXPECT_FALSE(IsNull(v));
      EXPECT_GE(v, -100.0);
      EXPECT_LE(v, 0.0);
    }
  }
  // Observed values unchanged.
  EXPECT_DOUBLE_EQ(imputed.record(0).rssi[0], -70);
  EXPECT_DOUBLE_EQ(imputed.record(0).rp.x, 1.0);
}

TEST(BiSimImputerTest, TrainingReducesLoss) {
  // Loss after 12 epochs should beat loss after 1 on a small synthetic map.
  rmap::RadioMap map(3);
  Rng gen(6);
  for (int p = 0; p < 6; ++p) {
    for (int t = 0; t < 10; ++t) {
      rmap::Record r;
      const double base = -60.0 + 2.0 * t;
      r.rssi = {base, base - 5, kNull};
      if (t % 3 == 0) r.rssi[0] = kNull;
      r.has_rp = (t % 2 == 0);
      r.rp = {double(t), double(p)};
      r.time = t * 2.0;
      r.path_id = p;
      map.Add(r);
    }
  }
  rmap::MaskMatrix mask(map.size(), 3);
  for (size_t i = 0; i < map.size(); ++i) {
    for (size_t j = 0; j < 3; ++j) {
      if (IsNull(map.record(i).rssi[j])) mask.set(i, j, rmap::MaskValue::kMar);
    }
  }
  BiSimConfig cfg = TestConfig();
  cfg.loc_scale = 0.1;
  cfg.epochs = 1;
  BiSimImputer one(cfg);
  Rng r1(7);
  one.Impute(map, mask, r1);
  cfg.epochs = 12;
  BiSimImputer many(cfg);
  Rng r2(7);
  many.Impute(map, mask, r2);
  EXPECT_LT(many.last_training_loss(), one.last_training_loss());
}

TEST(BiSimImputerTest, SingleRecordSequence) {
  // A path with one record must not crash (attention over T = 1).
  rmap::RadioMap map(2);
  rmap::Record r;
  r.rssi = {-50.0, kNull};
  r.has_rp = true;
  r.rp = {1, 1};
  r.time = 0;
  map.Add(r);
  rmap::MaskMatrix mask(1, 2);
  mask.set(0, 1, rmap::MaskValue::kMar);
  BiSimImputer imputer(TestConfig());
  Rng rng(8);
  const auto imputed = imputer.Impute(map, mask, rng);
  EXPECT_FALSE(IsNull(imputed.record(0).rssi[1]));
}

}  // namespace
}  // namespace rmi::bisim
